// Agesplit: the paper's §5.3 improvement. Infant failures (age <= 90
// days) have different, stronger symptoms than mature ones, so training
// separate models per age band beats one combined model on young drives.
// This example measures the combined model's AUC on young and old test
// rows, then the AUCs of separately trained age-band models.
//
//	go run ./examples/agesplit
package main

import (
	"fmt"
	"log"

	"ssdfail/internal/experiments"
	"ssdfail/internal/failure"
)

func main() {
	cfg := experiments.DefaultConfig()
	cfg.Seed = 42
	cfg.DrivesPerModel = 300
	cfg.CVFolds = 4
	cfg.ForestTrees = 100
	ctx, err := experiments.NewContext(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d drives, %d failures (%.0f%% infant)\n\n",
		len(ctx.Fleet.Drives), len(ctx.An.Events), 100*infantShare(ctx))

	// Combined model, evaluated separately on young and old rows.
	ps, err := ctx.PooledCV(nil, 1)
	if err != nil {
		log.Fatal(err)
	}
	tbl, _, err := experiments.Figure15(ctx, ps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tbl.String())

	// The same split helps error prediction too (paper Table 8).
	fmt.Println("(see Table 8 in cmd/ssdpredict for the per-error-type version)")
}

func infantShare(ctx *experiments.Context) float64 {
	young := 0
	for i := range ctx.An.Events {
		if ctx.An.Events[i].Age >= 0 && ctx.An.Events[i].Age <= failure.YoungAgeDays {
			young++
		}
	}
	if len(ctx.An.Events) == 0 {
		return 0
	}
	return float64(young) / float64(len(ctx.An.Events))
}
