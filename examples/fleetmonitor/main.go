// Fleetmonitor: an online monitoring scenario. A predictor is trained on
// the trace up to a cutoff, then the final 90 days are replayed day by
// day: each morning the monitor scores yesterday's reports and raises
// alerts at two discrimination thresholds — a conservative "critical"
// one (low false positive rate, as the paper recommends for production)
// and a looser "warning" one. At the end it scores both against the
// failures that actually happened, illustrating the paper's
// threshold/recall trade-off (Figures 14–15) and its proactive-
// management use case (early replacement, data migration).
//
//	go run ./examples/fleetmonitor
package main

import (
	"fmt"
	"log"

	"ssdfail/internal/core"
	"ssdfail/internal/failure"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/trace"
)

const (
	criticalThreshold = 0.90
	warningThreshold  = 0.80
	replayDays        = 90
)

func main() {
	cfg := fleetsim.DefaultConfig(11, 200)
	fleet, _, err := fleetsim.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	splitDay := cfg.HorizonDays - replayDays

	// Train only on history before the replay window, so the monitor
	// never sees the future.
	past := truncateFleet(fleet, splitDay)
	study := core.NewStudy(past)
	pred, err := study.TrainPredictor(core.PredictorOptions{Lookahead: 3, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d drive-days before day %d\n\n", past.DriveDays(), splitDay)

	// Ground truth for the replay window: failures happening inside it.
	an := failure.Analyze(fleet)
	failDay := map[int]int32{}
	for i := range an.Events {
		e := &an.Events[i]
		if e.FailDay >= splitDay {
			failDay[e.DriveIdx] = e.FailDay
		}
	}

	warned := map[int]int32{}   // driveIdx -> first warning day
	critical := map[int]int32{} // driveIdx -> first critical day
	printed := 0
	for day := splitDay; day < cfg.HorizonDays; day++ {
		for di := range fleet.Drives {
			d := &fleet.Drives[di]
			j := d.RecordOn(day)
			if j < 0 || !d.Days[j].Active() {
				continue
			}
			var prev *trace.DayRecord
			if j > 0 {
				prev = &d.Days[j-1]
			}
			score := pred.ScoreRecord(&d.Days[j], prev)
			if score >= warningThreshold {
				if _, seen := warned[di]; !seen {
					warned[di] = day
				}
			}
			if score >= criticalThreshold {
				if _, seen := critical[di]; !seen {
					critical[di] = day
					if printed < 10 {
						printed++
						fmt.Printf("day %4d: CRITICAL drive %-6d (%s, age %4dd, score %.3f)\n",
							day, d.ID, d.Model, d.Days[j].Age, score)
					}
				}
			}
		}
	}

	evaluate := func(name string, alerts map[int]int32) {
		caught, missed := 0, 0
		var totalWarning int32
		for di, fd := range failDay {
			if ad, ok := alerts[di]; ok && ad <= fd {
				caught++
				totalWarning += fd - ad
			} else {
				missed++
			}
		}
		falseAlerts := 0
		for di := range alerts {
			if _, failed := failDay[di]; !failed {
				falseAlerts++
			}
		}
		fmt.Printf("\n%s threshold:\n", name)
		fmt.Printf("  caught before failure: %d of %d", caught, len(failDay))
		if caught > 0 {
			fmt.Printf(" (mean warning %.1f days)", float64(totalWarning)/float64(caught))
		}
		fmt.Printf("\n  false alerts:          %d (%.2f%% of %d monitored drives)\n",
			falseAlerts, 100*float64(falseAlerts)/float64(len(fleet.Drives)), len(fleet.Drives))
	}
	fmt.Printf("\nreplay of final %d days: %d failures occurred\n", replayDays, len(failDay))
	evaluate(fmt.Sprintf("critical (score >= %.2f)", criticalThreshold), critical)
	evaluate(fmt.Sprintf("warning  (score >= %.2f)", warningThreshold), warned)
	fmt.Println("\nthe trade-off mirrors the paper's Figure 14: conservative thresholds")
	fmt.Println("protect against false alarms but catch mostly the loud (young) failures;")
	fmt.Println("old failures are quieter and need looser thresholds or longer lookaheads.")
}

// truncateFleet returns a copy of the fleet with all records and swaps
// after cutoff removed.
func truncateFleet(f *trace.Fleet, cutoff int32) *trace.Fleet {
	out := &trace.Fleet{Horizon: cutoff}
	for i := range f.Drives {
		d := f.Drives[i]
		var nd trace.Drive
		nd.ID, nd.Model = d.ID, d.Model
		for _, r := range d.Days {
			if r.Day < cutoff {
				nd.Days = append(nd.Days, r)
			}
		}
		for _, s := range d.Swaps {
			if s.Day < cutoff {
				nd.Swaps = append(nd.Swaps, s)
			}
		}
		if len(nd.Days) > 0 || len(nd.Swaps) > 0 {
			out.Drives = append(out.Drives, nd)
		}
	}
	return out
}
