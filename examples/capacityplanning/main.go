// Capacityplanning: size a spare-drive pool from the fleet's measured
// failure and repair behaviour. The paper motivates failure prediction
// with exactly this kind of proactive management: swaps need a spare on
// hand, repairs take months (half never return), so the spare pool must
// cover the failure inflow over the procurement lead time plus the
// drives stuck in the repair pipeline.
//
//	go run ./examples/capacityplanning
package main

import (
	"fmt"
	"log"
	"math"

	"ssdfail/internal/core"
	"ssdfail/internal/sparepool"
	"ssdfail/internal/stats"
	"ssdfail/internal/trace"
)

func main() {
	study, err := core.GenerateStudy(23, 250)
	if err != nil {
		log.Fatal(err)
	}
	an := study.Analysis
	horizonYears := float64(study.Fleet.Horizon) / 365

	fmt.Println("spare pool sizing per drive model")
	fmt.Println("=================================")
	for _, m := range trace.Models {
		var swaps int
		var returned int
		var repairDays []float64
		drives := 0
		for di := range study.Fleet.Drives {
			if study.Fleet.Drives[di].Model != m {
				continue
			}
			drives++
			for _, ei := range an.PerDrive[di] {
				e := an.Events[ei]
				swaps++
				if e.RepairDays >= 0 {
					returned++
					repairDays = append(repairDays, float64(e.RepairDays))
				}
			}
		}
		swapsPerWeek := float64(swaps) / (horizonYears * 52)

		// Procurement lead time: assume 4 weeks to receive new stock.
		const leadWeeks = 4.0
		demand := swapsPerWeek * leadWeeks
		// Poisson safety stock at ~99% service level (mean + 2.33*sqrt).
		spares := demand + 2.33*math.Sqrt(demand)

		// Repair pipeline: most swapped drives are out for months or
		// forever, so returns barely offset demand. Count the share of
		// swaps that come back within the lead time.
		backWithinLead := 0.0
		if len(repairDays) > 0 {
			e := stats.NewECDF(repairDays)
			backWithinLead = e.At(leadWeeks*7) * float64(returned) / float64(swaps)
		}

		fmt.Printf("\n%s: %d drives, %d swaps over %.1f years\n", m, drives, swaps, horizonYears)
		fmt.Printf("  swap rate:             %.2f per week\n", swapsPerWeek)
		fmt.Printf("  returned from repair:  %d of %d (%.0f%%)\n",
			returned, swaps, 100*float64(returned)/math.Max(float64(swaps), 1))
		fmt.Printf("  back within lead time: %.1f%% of swaps (repairs are too slow to count on)\n",
			100*backWithinLead)
		fmt.Printf("  spare pool (4-week lead, 99%% service): %d drives\n",
			int(math.Ceil(spares)))
	}

	// Validate the sizing with a discrete-event replay: run the actual
	// reconstructed swap/repair stream against candidate policies.
	fmt.Println("\npolicy validation (discrete-event replay of the whole trace)")
	fmt.Println("============================================================")
	minSpares, res, err := sparepool.MinimalSpares(an, 1.0, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  spares needed for 100%% service (no reordering, reuse repairs): %d\n", minSpares)
	fmt.Printf("  repairs returned to the pool: %d of %d swaps\n", res.RepairsReturned, res.Swaps)
	for _, pol := range []sparepool.Policy{
		{InitialSpares: 4, ReorderPoint: 2, OrderQty: 4, LeadTimeDays: 28, ReuseRepaired: true},
		{InitialSpares: 2, ReorderPoint: 1, OrderQty: 2, LeadTimeDays: 28, ReuseRepaired: true},
	} {
		r, err := sparepool.Simulate(an, pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  (s=%d,Q=%d,lead=%dd): service %.1f%%, %d orders, avg on-hand %.1f\n",
			pol.ReorderPoint, pol.OrderQty, pol.LeadTimeDays,
			100*r.ServiceLevel, r.OrdersPlaced, r.AvgOnHand)
	}

	// Prediction shrinks the emergency share: drives flagged N days in
	// advance can be drained and replaced on schedule instead of
	// triggering an urgent swap.
	pred, err := study.TrainPredictor(core.PredictorOptions{
		Lookahead: 3, Seed: 9, HoldoutFraction: 0.25,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith a 3-day-lookahead predictor (holdout AUC %.3f), flagged drives\n", pred.ValidationAUC)
	fmt.Println("can be drained and scheduled, converting emergency swaps into planned ones.")
	fmt.Println("top of today's watchlist:")
	for _, w := range pred.Watchlist(study, study.Fleet.Horizon-30, 5) {
		fmt.Printf("  drive %-6d (%s, age %4dd)  risk %.3f\n", w.DriveID, w.Model, w.Age, w.Score)
	}
}
