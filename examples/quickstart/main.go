// Quickstart: generate a small fleet, look at its failure statistics,
// train a failure predictor, and print the drives most at risk — the
// core library workflow in ~40 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ssdfail/internal/core"
)

func main() {
	// 1. Acquire a fleet. GenerateStudy simulates three drive models
	// over six years with statistics calibrated to the SC '19 study;
	// core.LoadStudy loads a trace file written by cmd/ssdgen instead.
	study, err := core.GenerateStudy(42, 150)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Inspect the reconstructed failure timeline.
	sum := study.Summarize()
	fmt.Printf("fleet:     %d drives, %d drive-days\n", sum.Drives, sum.DriveDays)
	fmt.Printf("failures:  %d swap events on %d drives (%.1f%%)\n",
		sum.Failures, sum.FailedDrives, sum.FailedPct)
	fmt.Printf("infant:    %.1f%% of failures within 90 days of age\n", sum.InfantPct)
	fmt.Printf("repaired:  %d drives returned from the repair process\n\n", sum.Repaired)

	// 3. Train a failure predictor (random forest, 1-day lookahead),
	// holding out 25% of drives to report an honest validation AUC.
	pred, err := study.TrainPredictor(core.PredictorOptions{
		Lookahead:       1,
		Seed:            7,
		HoldoutFraction: 0.25,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predictor: random forest, N=%d, holdout AUC %.3f\n\n",
		pred.Lookahead, pred.ValidationAUC)

	// 4. Rank the live fleet by failure risk.
	fmt.Println("highest-risk drives (latest report):")
	fmt.Println("  drive     model   age(d)  score")
	for _, w := range pred.Watchlist(study, 0, 10) {
		fmt.Printf("  %-8d  %-6s  %-6d  %.3f\n", w.DriveID, w.Model, w.Age, w.Score)
	}
}
