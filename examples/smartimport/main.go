// Smartimport: run the pipeline on real-world-format telemetry. This
// example writes a small Backblaze-style SMART daily-snapshot CSV,
// imports it with the smartio adapter, reconstructs the failure
// timeline, and scores the surviving drives with a predictor trained on
// a simulated fleet — demonstrating transfer from the synthetic
// calibration to external data.
//
//	go run ./examples/smartimport [file.csv]
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"ssdfail/internal/core"
	"ssdfail/internal/failure"
	"ssdfail/internal/smartio"
)

// demoCSV is a miniature SMART snapshot: three drives over five days,
// one of which fails on day four.
const demoCSV = `date,serial_number,model,capacity_bytes,failure,smart_5_raw,smart_9_raw,smart_187_raw,smart_241_raw,smart_242_raw
2024-03-01,Z1,ACME-SSD-480,480000000000,0,0,7200,0,800000000,1600000000
2024-03-02,Z1,ACME-SSD-480,480000000000,0,0,7224,0,808000000,1616000000
2024-03-03,Z1,ACME-SSD-480,480000000000,0,2,7248,14,816000000,1632000000
2024-03-04,Z1,ACME-SSD-480,480000000000,1,9,7272,120,818000000,1636000000
2024-03-01,Z2,ACME-SSD-480,480000000000,0,0,1200,0,300000000,500000000
2024-03-02,Z2,ACME-SSD-480,480000000000,0,0,1224,0,310000000,520000000
2024-03-03,Z2,ACME-SSD-480,480000000000,0,0,1248,0,320000000,540000000
2024-03-04,Z2,ACME-SSD-480,480000000000,0,0,1272,0,330000000,560000000
2024-03-05,Z2,ACME-SSD-480,480000000000,0,0,1296,0,340000000,580000000
2024-03-01,Z3,OTHER-SSD-960,960000000000,0,1,26000,2,2400000000,4100000000
2024-03-02,Z3,OTHER-SSD-960,960000000000,0,1,26024,2,2410000000,4120000000
2024-03-03,Z3,OTHER-SSD-960,960000000000,0,1,26048,3,2420000000,4140000000
2024-03-04,Z3,OTHER-SSD-960,960000000000,0,1,26072,3,2430000000,4160000000
2024-03-05,Z3,OTHER-SSD-960,960000000000,0,1,26096,3,2440000000,4180000000
`

func main() {
	path := ""
	if len(os.Args) > 1 {
		path = os.Args[1]
	} else {
		path = filepath.Join(os.TempDir(), "ssdfail-smart-demo.csv")
		if err := os.WriteFile(path, []byte(demoCSV), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("no CSV given; wrote demo snapshot to %s\n\n", path)
	}

	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	// SkipBadRows tolerates the mangled lines real exports contain; the
	// summary reports what was dropped so silent corruption can't hide.
	fleet, sum, err := smartio.ReadCSVSummary(f, smartio.Options{SkipBadRows: true})
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported %d drives, %d drive-days (%d rows", len(fleet.Drives), fleet.DriveDays(), sum.Rows)
	if sum.Skipped > 0 {
		fmt.Printf(", %d bad rows skipped — first: %v", sum.Skipped, sum.First[0])
	}
	fmt.Println(")")

	an := failure.Analyze(fleet)
	for i := range an.Events {
		e := &an.Events[i]
		d := &fleet.Drives[e.DriveIdx]
		fmt.Printf("failure: drive %d (%s) failed on day %d at age %d days\n",
			d.ID, d.Model, e.FailDay, e.Age)
	}

	// Train on simulated data, score the imported survivors. In
	// production you would train on your own historical SMART data via
	// the same adapter.
	study, err := core.GenerateStudy(42, 150)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := study.TrainPredictor(core.PredictorOptions{Lookahead: 3, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	imported := core.NewStudy(fleet)
	fmt.Println("\nrisk scores for imported drives (latest report):")
	for _, w := range pred.Watchlist(imported, 0, 0) {
		status := "healthy"
		if imported.Fleet.Drives[w.DriveIdx].Failed() {
			status = "FAILED in data"
		}
		fmt.Printf("  drive %-12d age %5dd  score %.3f  (%s)\n", w.DriveID, w.Age, w.Score, status)
	}
	fmt.Println(strings.Repeat("-", 50))
	fmt.Println("note: absolute scores from a simulator-trained model are only a demo;")
	fmt.Println("train on your own labeled history for production use.")
}
