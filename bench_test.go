package ssdfail_test

// One benchmark per table and figure of the paper (see DESIGN.md §4 for
// the index), plus generation/IO/microbenchmarks. Run with:
//
//	go test -bench=. -benchmem
//
// The prediction benchmarks report the measured AUC as a custom metric
// so the paper-shape can be checked from benchmark output alone.

import (
	"bytes"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"ssdfail/internal/core"
	"ssdfail/internal/dataset"
	"ssdfail/internal/eval"
	"ssdfail/internal/experiments"
	"ssdfail/internal/expgrid"
	"ssdfail/internal/failure"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/ml/forest"
	"ssdfail/internal/ml/gbdt"
	"ssdfail/internal/serve"
	"ssdfail/internal/sparepool"
	"ssdfail/internal/trace"
)

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
	benchErr  error
)

// benchScale reads SSDFAIL_BENCH_DRIVES (drives per model; default 150)
// so large machines can run the benches at paper-report scale.
func benchScale() int {
	if v := os.Getenv("SSDFAIL_BENCH_DRIVES"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 150
}

func getBenchCtx(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		cfg.Seed = 42
		cfg.DrivesPerModel = benchScale()
		cfg.CVFolds = 3
		cfg.ForestTrees = 50
		cfg.TestNegSampleProb = 0.2
		benchCtx, benchErr = experiments.NewContext(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCtx
}

// --- Substrate benchmarks ---

func BenchmarkFleetGeneration(b *testing.B) {
	cfg := fleetsim.DefaultConfig(1, 50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fleet, _, err := fleetsim.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(fleet.DriveDays()), "drive-days")
	}
}

func BenchmarkFailureReconstruction(b *testing.B) {
	ctx := getBenchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an := failure.Analyze(ctx.Fleet)
		if len(an.Events) == 0 {
			b.Fatal("no events")
		}
	}
}

func BenchmarkFeatureExtraction(b *testing.B) {
	ctx := getBenchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := dataset.Extract(ctx.Fleet, ctx.An, dataset.Options{
			Lookahead: 1, NegativeSampleProb: 0.1, Seed: uint64(i), AgeMax: -1,
		})
		if m.Len() == 0 {
			b.Fatal("empty matrix")
		}
	}
}

func BenchmarkBinaryCodecRoundTrip(b *testing.B) {
	ctx := getBenchCtx(b)
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, ctx.Fleet); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestTraining(b *testing.B) {
	ctx := getBenchCtx(b)
	train := dataset.Extract(ctx.Fleet, ctx.An, dataset.Options{Lookahead: 1, AgeMax: -1})
	train = dataset.Downsample(train, 1, 7)
	cfg := forest.DefaultConfig()
	cfg.Trees = 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := forest.New(cfg)
		if err := f.Fit(train); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGBDTTraining(b *testing.B) {
	ctx := getBenchCtx(b)
	train := dataset.Extract(ctx.Fleet, ctx.An, dataset.Options{Lookahead: 1, AgeMax: -1})
	train = dataset.Downsample(train, 1, 7)
	cfg := gbdt.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := gbdt.New(cfg)
		if err := m.Fit(train); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSparePoolSimulation(b *testing.B) {
	ctx := getBenchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sparepool.Simulate(ctx.An, sparepool.Policy{
			InitialSpares: 4, ReorderPoint: 2, OrderQty: 4,
			LeadTimeDays: 28, ReuseRepaired: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ServiceLevel, "service")
	}
}

func BenchmarkSurvivalKaplanMeier(b *testing.B) {
	ctx := getBenchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.SurvivalAnalysis(ctx); len(tbl.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkForestSerialization(b *testing.B) {
	ctx := getBenchCtx(b)
	train := dataset.Extract(ctx.Fleet, ctx.An, dataset.Options{Lookahead: 1, AgeMax: -1})
	train = dataset.Downsample(train, 1, 7)
	f := forest.New(forest.Config{Trees: 50, MaxDepth: 12, MinLeaf: 2, Seed: 1})
	if err := f.Fit(train); err != nil {
		b.Fatal(err)
	}
	data, err := f.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var g forest.Forest
		if err := g.UnmarshalBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeScoreFleet measures the serving daemon's batch-scoring
// hot path: a full-fleet scoring pass over the drive-state store's
// snapshot (latest + previous report per drive), as triggered by
// GET /v1/watchlist, at one worker and at GOMAXPROCS workers.
func BenchmarkServeScoreFleet(b *testing.B) {
	ctx := getBenchCtx(b)
	store := serve.NewStore(0, 0)
	for di := range ctx.Fleet.Drives {
		d := &ctx.Fleet.Drives[di]
		lo := len(d.Days) - 2
		if lo < 0 {
			lo = 0
		}
		for _, r := range d.Days[lo:] {
			if err := store.Upsert(d.ID, d.Model, r); err != nil {
				b.Fatal(err)
			}
		}
	}
	fcfg := forest.DefaultConfig()
	fcfg.Trees = 50
	fcfg.Seed = 7
	pred, err := core.NewStudy(ctx.Fleet).TrainPredictor(core.PredictorOptions{
		Lookahead: 3,
		Factory:   forest.NewFactory(fcfg),
		Seed:      7,
	})
	if err != nil {
		b.Fatal(err)
	}
	units := store.ScoreUnits(0)
	if len(units) == 0 {
		b.Fatal("empty fleet snapshot")
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			sc := serve.NewScorer(workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scored := sc.Score(pred, units)
				if len(scored) != len(units) {
					b.Fatal("short scoring pass")
				}
			}
			b.ReportMetric(float64(len(units))*float64(b.N)/b.Elapsed().Seconds(), "drives/s")
		})
	}
}

// --- Characterization: Tables 1-5, Figures 1, 3-11 ---

func BenchmarkTable1ErrorIncidence(b *testing.B) {
	ctx := getBenchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table1(ctx); len(tbl.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkTable2SpearmanMatrix(b *testing.B) {
	ctx := getBenchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table2(ctx); len(tbl.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkTable3FailureIncidence(b *testing.B) {
	ctx := getBenchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table3(ctx); len(tbl.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkTable4FailureCounts(b *testing.B) {
	ctx := getBenchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table4(ctx); len(tbl.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkTable5RepairReentry(b *testing.B) {
	ctx := getBenchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table5(ctx); len(tbl.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func benchFigure(b *testing.B, run func(*experiments.Context) bool) {
	ctx := getBenchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !run(ctx) {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFigure2Timeline(b *testing.B) {
	benchFigure(b, func(ctx *experiments.Context) bool {
		return len(experiments.Figure2(ctx).Rows) > 0
	})
}

func BenchmarkFigure1AgeDataCDF(b *testing.B) {
	benchFigure(b, func(ctx *experiments.Context) bool {
		tbl, _ := experiments.Figure1(ctx)
		return len(tbl.Rows) > 0
	})
}

func BenchmarkFigure3OperationalCDF(b *testing.B) {
	benchFigure(b, func(ctx *experiments.Context) bool {
		tbl, _ := experiments.Figure3(ctx)
		return len(tbl.Rows) > 0
	})
}

func BenchmarkFigure4NonOperationalCDF(b *testing.B) {
	benchFigure(b, func(ctx *experiments.Context) bool {
		tbl, _ := experiments.Figure4(ctx)
		return len(tbl.Rows) > 0
	})
}

func BenchmarkFigure5RepairCDF(b *testing.B) {
	benchFigure(b, func(ctx *experiments.Context) bool {
		tbl, _ := experiments.Figure5(ctx)
		return len(tbl.Rows) > 0
	})
}

func BenchmarkFigure6FailureAge(b *testing.B) {
	benchFigure(b, func(ctx *experiments.Context) bool {
		tbl, _ := experiments.Figure6(ctx)
		return len(tbl.Rows) > 0
	})
}

func BenchmarkFigure7WriteIntensity(b *testing.B) {
	benchFigure(b, func(ctx *experiments.Context) bool {
		tbl, _ := experiments.Figure7(ctx)
		return len(tbl.Rows) > 0
	})
}

func BenchmarkFigure8PECycles(b *testing.B) {
	benchFigure(b, func(ctx *experiments.Context) bool {
		tbl, _ := experiments.Figure8(ctx)
		return len(tbl.Rows) > 0
	})
}

func BenchmarkFigure9PEYoungOld(b *testing.B) {
	benchFigure(b, func(ctx *experiments.Context) bool {
		tbl, _ := experiments.Figure9(ctx)
		return len(tbl.Rows) > 0
	})
}

func BenchmarkFigure10ErrorCDFs(b *testing.B) {
	benchFigure(b, func(ctx *experiments.Context) bool {
		tbl, _ := experiments.Figure10(ctx)
		return len(tbl.Rows) > 0
	})
}

func BenchmarkFigure11PreFailureErrors(b *testing.B) {
	benchFigure(b, func(ctx *experiments.Context) bool {
		top, bottom := experiments.Figure11(ctx)
		return len(top.Rows) > 0 && len(bottom.Rows) > 0
	})
}

// --- Prediction: Tables 6-8, Figures 12-16 ---

// benchForestCV runs one forest cross-validation and reports the AUC.
func benchForestCV(b *testing.B, lookahead int) {
	ctx := getBenchCtx(b)
	cfg := forest.DefaultConfig()
	cfg.Trees = ctx.Cfg.ForestTrees
	cfg.Seed = ctx.Cfg.Seed
	opts := eval.CVOptions{
		Folds: ctx.Cfg.CVFolds, Lookahead: lookahead, Seed: ctx.Cfg.Seed,
		DownsampleRatio: 1, TestNegSampleProb: ctx.Cfg.TestNegSampleProb, AgeMax: -1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := eval.CrossValidate(ctx.Fleet, ctx.An, opts, forest.NewFactory(cfg))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Mean, "auc")
	}
}

// BenchmarkTable6ModelComparison cross-validates each of the six models
// at N=1 and reports its AUC (the full Table 6 sweeps N in {1,2,3,7};
// run cmd/ssdpredict for the complete grid).
func BenchmarkTable6ModelComparison(b *testing.B) {
	ctx := getBenchCtx(b)
	for _, gp := range experiments.ClassifierGrid(ctx) {
		gp := gp
		b.Run(gp.Label, func(b *testing.B) {
			opts := eval.CVOptions{
				Folds: ctx.Cfg.CVFolds, Lookahead: 1, Seed: ctx.Cfg.Seed,
				DownsampleRatio: 1, TestNegSampleProb: ctx.Cfg.TestNegSampleProb, AgeMax: -1,
			}
			for i := 0; i < b.N; i++ {
				r, err := eval.CrossValidate(ctx.Fleet, ctx.An, opts, gp.Factory)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Mean, "auc")
			}
		})
	}
}

func BenchmarkTable7Transfer(b *testing.B) {
	ctx := getBenchCtx(b)
	cfg := forest.DefaultConfig()
	cfg.Trees = ctx.Cfg.ForestTrees
	cfg.Seed = ctx.Cfg.Seed
	opts := eval.CVOptions{
		Folds: 3, Lookahead: 1, Seed: ctx.Cfg.Seed,
		DownsampleRatio: 1, TestNegSampleProb: ctx.Cfg.TestNegSampleProb, AgeMax: -1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		auc, err := eval.TrainTest(
			ctx.ModelFleet[trace.MLCA], ctx.ModelFleet[trace.MLCB],
			ctx.ModelAn[trace.MLCA], ctx.ModelAn[trace.MLCB],
			opts, forest.NewFactory(cfg))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(auc, "auc_A_to_B")
	}
}

func BenchmarkTable8ErrorPrediction(b *testing.B) {
	ctx := getBenchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Table8(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) != 10 {
			b.Fatal("incomplete Table 8")
		}
	}
}

func BenchmarkFigure12LookaheadSweep(b *testing.B) {
	for _, n := range []int{1, 7, 30} {
		b.Run("N="+strconv.Itoa(n), func(b *testing.B) {
			benchForestCV(b, n)
		})
	}
}

func BenchmarkFigure13PerModelROC(b *testing.B) {
	ctx := getBenchCtx(b)
	ps, err := ctx.PooledCV(nil, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, _ := experiments.Figure13(ctx, ps)
		if len(tbl.Rows) != 3 {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkFigure14TPRByAge(b *testing.B) {
	ctx := getBenchCtx(b)
	ps, err := ctx.PooledCV(nil, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, _ := experiments.Figure14(ctx, ps)
		if len(tbl.Rows) == 0 {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkFigure15YoungOldROC(b *testing.B) {
	ctx := getBenchCtx(b)
	ps, err := ctx.PooledCV(nil, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, _, err := experiments.Figure15(ctx, ps)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) != 4 {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkFigure16FeatureImportance(b *testing.B) {
	ctx := getBenchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Figure16(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) != 10 {
			b.Fatal("incomplete")
		}
	}
}

// gridBenchScale reads SSDFAIL_GRID_DRIVES (drives per model for the
// experiment-grid benchmark; default 600, the paper-scale target the
// speedup acceptance criterion is measured at).
func gridBenchScale() int {
	if v := os.Getenv("SSDFAIL_GRID_DRIVES"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 600
}

// BenchmarkExperimentGrid runs the Table 6 grid (six classifiers,
// N in {1, 7}, 5 folds) through the expgrid engine at 1, 2, and 4
// workers, verifies the AUC tables are byte-identical across worker
// counts, and writes the BENCH_train.json report with per-worker-count
// wall times, throughput, cache statistics, and speedups.
func BenchmarkExperimentGrid(b *testing.B) {
	cfg := experiments.DefaultConfig()
	cfg.Seed = 42
	cfg.DrivesPerModel = gridBenchScale()
	cfg.CVFolds = 5
	cfg.ForestTrees = 50
	cfg.TestNegSampleProb = 0.2
	ctx, err := experiments.NewContext(cfg)
	if err != nil {
		b.Fatal(err)
	}
	spec := ctx.GridSpec(1, 7)
	var (
		runs     []expgrid.BenchRun
		baseline []byte
		same     = true
	)
	for _, w := range []int{1, 2, 4} {
		s := spec
		s.Workers = w
		b.Run("workers="+strconv.Itoa(w), func(b *testing.B) {
			var last *expgrid.Result
			for i := 0; i < b.N; i++ {
				res, err := expgrid.Run(s)
				if err == nil {
					err = res.Err()
				}
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Stats.TasksPerSec, "tasks/s")
			b.ReportMetric(last.Stats.CacheHitRate, "cache-hit-rate")
			tbl := last.AUCTable()
			if baseline == nil {
				baseline = tbl
			} else if !bytes.Equal(baseline, tbl) {
				same = false
				b.Errorf("workers=%d produced a different AUC table than workers=1", w)
			}
			runs = append(runs, expgrid.BenchRun{Stats: last.Stats})
		})
	}
	if len(runs) == 3 {
		rep := experiments.TrainBenchReport(ctx, &spec, runs, same)
		if err := rep.WriteFile("BENCH_train.json"); err != nil {
			b.Fatal(err)
		}
		b.Logf("BENCH_train.json written: aucs_identical=%v", same)
	}
}

// --- Ablations (DESIGN.md §6) ---

func BenchmarkAblationFoldPartitioning(b *testing.B) {
	ctx := getBenchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSplit(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDownsampling(b *testing.B) {
	ctx := getBenchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationDownsampling(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFeatureSets(b *testing.B) {
	ctx := getBenchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFeatureSets(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationForestSize(b *testing.B) {
	ctx := getBenchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationForestSize(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extensions beyond the paper ---

func BenchmarkExtensionWindowedFeatures(b *testing.B) {
	ctx := getBenchCtx(b)
	cfg := forest.DefaultConfig()
	cfg.Trees = ctx.Cfg.ForestTrees
	cfg.Seed = ctx.Cfg.Seed
	opts := eval.CVOptions{
		Folds: ctx.Cfg.CVFolds, Lookahead: 15, Seed: ctx.Cfg.Seed,
		DownsampleRatio: 1, TestNegSampleProb: ctx.Cfg.TestNegSampleProb,
		AgeMax: -1, WindowDays: 7,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := eval.CrossValidate(ctx.Fleet, ctx.An, opts, forest.NewFactory(cfg))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Mean, "auc_windowed_N15")
	}
}

func BenchmarkExtensionGBDTCV(b *testing.B) {
	ctx := getBenchCtx(b)
	cfg := gbdt.DefaultConfig()
	cfg.Seed = ctx.Cfg.Seed
	opts := eval.CVOptions{
		Folds: ctx.Cfg.CVFolds, Lookahead: 1, Seed: ctx.Cfg.Seed,
		DownsampleRatio: 1, TestNegSampleProb: ctx.Cfg.TestNegSampleProb, AgeMax: -1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := eval.CrossValidate(ctx.Fleet, ctx.An, opts, gbdt.NewFactory(cfg))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Mean, "auc")
	}
}
