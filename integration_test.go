package ssdfail_test

// End-to-end integration test: the full workflow a downstream user runs,
// from generation through trace I/O, characterization, training,
// predictor persistence, and fleet scoring.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ssdfail/internal/core"
	"ssdfail/internal/experiments"
	"ssdfail/internal/failure"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/smartio"
	"ssdfail/internal/sparepool"
	"ssdfail/internal/trace"
)

func TestEndToEndWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test is slow")
	}
	dir := t.TempDir()

	// 1. Generate and persist a fleet.
	study, err := core.GenerateStudy(1234, 100)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	fleetPath := filepath.Join(dir, "fleet.bin")
	if err := study.SaveFleet(fleetPath); err != nil {
		t.Fatalf("save fleet: %v", err)
	}

	// 2. Reload and verify the reconstruction is identical.
	reloaded, err := core.LoadStudy(fleetPath)
	if err != nil {
		t.Fatalf("load fleet: %v", err)
	}
	if len(reloaded.Analysis.Events) != len(study.Analysis.Events) {
		t.Fatalf("event count changed across save/load: %d vs %d",
			len(reloaded.Analysis.Events), len(study.Analysis.Events))
	}

	// 3. Run the characterization experiments on the loaded fleet.
	cfg := experiments.DefaultConfig()
	ctx, err := experiments.NewContextFromFleet(cfg, reloaded.Fleet)
	if err != nil {
		t.Fatalf("context: %v", err)
	}
	for name, tbl := range map[string]interface{ String() string }{
		"table1":  experiments.Table1(ctx),
		"table3":  experiments.Table3(ctx),
		"table4":  experiments.Table4(ctx),
		"table5":  experiments.Table5(ctx),
		"figure2": experiments.Figure2(ctx),
	} {
		if out := tbl.String(); len(out) < 40 {
			t.Errorf("%s suspiciously short:\n%s", name, out)
		}
	}

	// 4. Train, persist, reload, and use a predictor.
	pred, err := reloaded.TrainPredictor(core.PredictorOptions{
		Lookahead: 2, Seed: 5, HoldoutFraction: 0.25,
	})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	predPath := filepath.Join(dir, "predictor.bin")
	if err := pred.Save(predPath); err != nil {
		t.Fatalf("save predictor: %v", err)
	}
	loadedPred, err := core.LoadPredictor(predPath)
	if err != nil {
		t.Fatalf("load predictor: %v", err)
	}
	watch := loadedPred.Watchlist(reloaded, 0, 5)
	if len(watch) != 5 {
		t.Fatalf("watchlist = %d entries", len(watch))
	}

	// 5. Feed the reconstruction into the spare-pool planner.
	spares, res, err := sparepool.MinimalSpares(reloaded.Analysis, 0.95, true)
	if err != nil {
		t.Fatalf("sparepool: %v", err)
	}
	if res.ServiceLevel < 0.95 {
		t.Errorf("planner returned %d spares but service = %.3f", spares, res.ServiceLevel)
	}

	// 6. Round-trip a SMART import through the same pipeline.
	smartCSV := "date,serial_number,model,failure,smart_241_raw,smart_187_raw\n" +
		"2024-01-01,A1,M,0,100,0\n" +
		"2024-01-02,A1,M,0,200,3\n" +
		"2024-01-03,A1,M,1,210,9\n"
	fleet2, err := smartio.ReadCSV(strings.NewReader(smartCSV), smartio.Options{})
	if err != nil {
		t.Fatalf("smart import: %v", err)
	}
	an2 := failure.Analyze(fleet2)
	if len(an2.Events) != 1 {
		t.Fatalf("smart events = %d", len(an2.Events))
	}
	if s := loadedPred.ScoreDrive(&fleet2.Drives[0]); s < 0 || s > 1 {
		t.Fatalf("smart-drive score = %v", s)
	}

	// 7. CSV trace export/import agrees with the binary format.
	csvPath := filepath.Join(dir, "fleet.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(f, reloaded.Fleet); err != nil {
		t.Fatal(err)
	}
	f.Close()
	f, err = os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	fromCSV, err := trace.ReadCSV(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if fromCSV.DriveDays() != reloaded.Fleet.DriveDays() {
		t.Fatalf("CSV round trip changed drive-days: %d vs %d",
			fromCSV.DriveDays(), reloaded.Fleet.DriveDays())
	}
}

func TestGeneratedFleetMatchesScaleKnobs(t *testing.T) {
	cfg := fleetsim.DefaultConfig(9, 30)
	cfg.HorizonDays = 800
	cfg.EarlyWindow = 200
	fleet, truth, err := fleetsim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Drives) != 90 || len(truth.Drives) != 90 {
		t.Fatalf("scale mismatch: %d drives", len(fleet.Drives))
	}
	if fleet.Horizon != 800 {
		t.Fatalf("horizon = %d", fleet.Horizon)
	}
}
