package ssdfail_test

// End-to-end integration test: the full workflow a downstream user runs,
// from generation through trace I/O, characterization, training,
// predictor persistence, and fleet scoring.

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ssdfail/internal/core"
	"ssdfail/internal/experiments"
	"ssdfail/internal/failure"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/loadgen"
	"ssdfail/internal/ml/forest"
	"ssdfail/internal/serve"
	"ssdfail/internal/smartio"
	"ssdfail/internal/sparepool"
	"ssdfail/internal/trace"
)

func TestEndToEndWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test is slow")
	}
	dir := t.TempDir()

	// 1. Generate and persist a fleet.
	study, err := core.GenerateStudy(1234, 100)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	fleetPath := filepath.Join(dir, "fleet.bin")
	if err := study.SaveFleet(fleetPath); err != nil {
		t.Fatalf("save fleet: %v", err)
	}

	// 2. Reload and verify the reconstruction is identical.
	reloaded, err := core.LoadStudy(fleetPath)
	if err != nil {
		t.Fatalf("load fleet: %v", err)
	}
	if len(reloaded.Analysis.Events) != len(study.Analysis.Events) {
		t.Fatalf("event count changed across save/load: %d vs %d",
			len(reloaded.Analysis.Events), len(study.Analysis.Events))
	}

	// 3. Run the characterization experiments on the loaded fleet.
	cfg := experiments.DefaultConfig()
	ctx, err := experiments.NewContextFromFleet(cfg, reloaded.Fleet)
	if err != nil {
		t.Fatalf("context: %v", err)
	}
	for name, tbl := range map[string]interface{ String() string }{
		"table1":  experiments.Table1(ctx),
		"table3":  experiments.Table3(ctx),
		"table4":  experiments.Table4(ctx),
		"table5":  experiments.Table5(ctx),
		"figure2": experiments.Figure2(ctx),
	} {
		if out := tbl.String(); len(out) < 40 {
			t.Errorf("%s suspiciously short:\n%s", name, out)
		}
	}

	// 4. Train, persist, reload, and use a predictor.
	pred, err := reloaded.TrainPredictor(core.PredictorOptions{
		Lookahead: 2, Seed: 5, HoldoutFraction: 0.25,
	})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	predPath := filepath.Join(dir, "predictor.bin")
	if err := pred.Save(predPath); err != nil {
		t.Fatalf("save predictor: %v", err)
	}
	loadedPred, err := core.LoadPredictor(predPath)
	if err != nil {
		t.Fatalf("load predictor: %v", err)
	}
	watch := loadedPred.Watchlist(reloaded, 0, 5)
	if len(watch) != 5 {
		t.Fatalf("watchlist = %d entries", len(watch))
	}

	// 5. Feed the reconstruction into the spare-pool planner.
	spares, res, err := sparepool.MinimalSpares(reloaded.Analysis, 0.95, true)
	if err != nil {
		t.Fatalf("sparepool: %v", err)
	}
	if res.ServiceLevel < 0.95 {
		t.Errorf("planner returned %d spares but service = %.3f", spares, res.ServiceLevel)
	}

	// 6. Round-trip a SMART import through the same pipeline.
	smartCSV := "date,serial_number,model,failure,smart_241_raw,smart_187_raw\n" +
		"2024-01-01,A1,M,0,100,0\n" +
		"2024-01-02,A1,M,0,200,3\n" +
		"2024-01-03,A1,M,1,210,9\n"
	fleet2, err := smartio.ReadCSV(strings.NewReader(smartCSV), smartio.Options{})
	if err != nil {
		t.Fatalf("smart import: %v", err)
	}
	an2 := failure.Analyze(fleet2)
	if len(an2.Events) != 1 {
		t.Fatalf("smart events = %d", len(an2.Events))
	}
	if s := loadedPred.ScoreDrive(&fleet2.Drives[0]); s < 0 || s > 1 {
		t.Fatalf("smart-drive score = %v", s)
	}

	// 7. CSV trace export/import agrees with the binary format.
	csvPath := filepath.Join(dir, "fleet.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(f, reloaded.Fleet); err != nil {
		t.Fatal(err)
	}
	f.Close()
	f, err = os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	fromCSV, err := trace.ReadCSV(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if fromCSV.DriveDays() != reloaded.Fleet.DriveDays() {
		t.Fatalf("CSV round trip changed drive-days: %d vs %d",
			fromCSV.DriveDays(), reloaded.Fleet.DriveDays())
	}
}

// TestServeLoadConformance is the end-to-end conformance pass for the
// serving stack: train a model, boot a daemon, drive a deterministic
// load schedule through loadgen over real HTTP, and require the daemon's
// end state and metrics to exactly account for everything driven —
// including a hot model swap mid-run. A second open-loop run against the
// same (now warm) daemon at a disjoint drive-ID range must also conform,
// proving the accounting is delta-based, not fresh-boot-only.
func TestServeLoadConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test is slow")
	}
	dir := t.TempDir()

	// Train a small but real predictor for the daemon to serve.
	fcfg := fleetsim.DefaultConfig(7, 60)
	fcfg.HorizonDays = 400
	fcfg.EarlyWindow = 150
	fleet, _, err := fleetsim.Generate(fcfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	forestCfg := forest.DefaultConfig()
	forestCfg.Trees = 10
	forestCfg.Seed = 7
	pred, err := core.NewStudy(fleet).TrainPredictor(core.PredictorOptions{
		Lookahead: 3, Factory: forest.NewFactory(forestCfg), Seed: 7,
	})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	modelPath := filepath.Join(dir, "model.bin")
	if err := pred.Save(modelPath); err != nil {
		t.Fatalf("save model: %v", err)
	}

	srv, err := serve.New(serve.Config{ModelPath: modelPath})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Schedule construction is deterministic: same config, same hash.
	lcfg := loadgen.DefaultConfig(21)
	lcfg.DrivesPerModel = 8
	lcfg.HorizonDays = 150
	lcfg.Days = 12
	lcfg.Streams = 4
	lcfg.BatchSize = 8
	lcfg.ProbeEvery = 3
	sched, err := loadgen.Build(lcfg)
	if err != nil {
		t.Fatalf("build schedule: %v", err)
	}
	again, err := loadgen.Build(lcfg)
	if err != nil {
		t.Fatalf("rebuild schedule: %v", err)
	}
	if sched.Hash != again.Hash {
		t.Fatalf("schedule not reproducible:\n%s\n%s", sched.Hash, again.Hash)
	}

	ctx := context.Background()
	runner := &loadgen.Runner{BaseURL: ts.URL}
	res, err := runner.Run(ctx, sched)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	violations, err := runner.Verify(ctx, res, loadgen.VerifyOptions{History: serve.DefaultHistory})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	for _, v := range violations {
		t.Errorf("conformance: %s", v)
	}
	if res.AcceptedRecords != uint64(sched.TotalRecords) {
		t.Errorf("accepted %d records, scheduled %d", res.AcceptedRecords, sched.TotalRecords)
	}
	if len(res.Reloads) != 1 {
		t.Errorf("observed %d hot reloads, scheduled 1", len(res.Reloads))
	}

	// The benchmark report must carry real, ordered latency quantiles.
	rep := loadgen.NewReport(res, violations, true)
	if rep.ScheduleSHA256 != sched.Hash {
		t.Errorf("report hash %s != schedule hash %s", rep.ScheduleSHA256, sched.Hash)
	}
	q := rep.Endpoints["ingest_batch"]
	if q.Count == 0 || q.P50 <= 0 || q.P99 <= 0 || q.P999 <= 0 {
		t.Errorf("degenerate ingest quantiles: %+v", q)
	}
	if q.P50 > q.P90 || q.P90 > q.P99 || q.P99 > q.P999 || q.P999 > q.Max {
		t.Errorf("quantiles out of order: %+v", q)
	}
	if !rep.Conformance.Pass {
		t.Error("report records a conformance failure")
	}

	// Second act: open-loop pacing against the warm daemon, disjoint
	// drive IDs. Exact accounting must hold as deltas over prior state.
	lcfg2 := lcfg
	lcfg2.Seed = 22
	lcfg2.Mode = loadgen.ModeOpen
	lcfg2.RatePerStream = 2000
	lcfg2.DriveIDOffset = 1 << 20
	sched2, err := loadgen.Build(lcfg2)
	if err != nil {
		t.Fatalf("build open schedule: %v", err)
	}
	res2, err := runner.Run(ctx, sched2)
	if err != nil {
		t.Fatalf("open run: %v", err)
	}
	violations2, err := runner.Verify(ctx, res2, loadgen.VerifyOptions{History: serve.DefaultHistory})
	if err != nil {
		t.Fatalf("open verify: %v", err)
	}
	for _, v := range violations2 {
		t.Errorf("open-loop conformance: %s", v)
	}

	// The daemon's own in-process snapshot agrees with everything both
	// runs drove into it.
	snap := srv.CounterSnapshot()
	wantAccepted := float64(res.AcceptedRecords + res2.AcceptedRecords)
	if got := snap["ssdserved_ingest_records_total"]; got != wantAccepted {
		t.Errorf("server snapshot ingest_records_total = %v, clients accepted %v", got, wantAccepted)
	}
}

func TestGeneratedFleetMatchesScaleKnobs(t *testing.T) {
	cfg := fleetsim.DefaultConfig(9, 30)
	cfg.HorizonDays = 800
	cfg.EarlyWindow = 200
	fleet, truth, err := fleetsim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Drives) != 90 || len(truth.Drives) != 90 {
		t.Fatalf("scale mismatch: %d drives", len(fleet.Drives))
	}
	if fleet.Horizon != 800 {
		t.Fatalf("horizon = %d", fleet.Horizon)
	}
}
