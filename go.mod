module ssdfail

go 1.22
