package wal

import (
	"errors"
	"fmt"
	"path/filepath"

	"ssdfail/internal/faultfs"
)

// ErrPruned reports that a requested stream position precedes the
// oldest retained segment: a snapshot has pruned the frames away, so a
// reader that far behind cannot catch up from the log alone.
var ErrPruned = errors.New("wal: requested LSN precedes retained segments")

// ReadFrom streams the durable log in dir, invoking fn for every
// intact frame with LSN >= fromLSN in LSN order, and returns the next
// LSN a subsequent call should resume from (last delivered + 1, or
// fromLSN when nothing qualified). It is the replication wire reader:
// each frame's CRC is re-verified by parseFrame before delivery, and
// the first torn or corrupt frame ends the stream silently — the same
// truncation posture Open takes at recovery, so a reader polling a
// live log simply retries once the writer completes the frame.
//
// A fromLSN of 0 reads from the beginning. When fromLSN is older than
// the oldest retained segment the error is ErrPruned (wrapped with the
// retained floor); the reader must bootstrap from a snapshot instead.
// Segments wholly before fromLSN are skipped by their names alone —
// ReadFrom trusts boundary continuity for segments it does not read,
// and verifies frame-level continuity within and across the segments
// it does (a discontinuity ends the stream, mirroring recovery's
// unreachable-segment rule).
//
// ReadFrom only sees bytes written through to the filesystem. Writers
// that buffer appends in process (SyncEvery > 1) should Flush before a
// read that must observe the latest accepted records. An fn error
// aborts the stream and is returned verbatim; maxRecord <= 0 means
// DefaultMaxRecordBytes.
func ReadFrom(fsys faultfs.FS, dir string, fromLSN uint64, maxRecord int, fn func(lsn uint64, payload []byte) error) (uint64, error) {
	if fsys == nil {
		fsys = faultfs.OS()
	}
	if maxRecord <= 0 {
		maxRecord = DefaultMaxRecordBytes
	}
	if fromLSN == 0 {
		fromLSN = 1
	}
	firsts, err := listSegments(fsys, dir)
	if err != nil {
		return fromLSN, fmt.Errorf("wal: listing segments: %w", err)
	}
	if len(firsts) == 0 {
		return fromLSN, nil
	}
	if fromLSN < firsts[0] {
		return fromLSN, fmt.Errorf("%w: want %d, oldest retained %d", ErrPruned, fromLSN, firsts[0])
	}
	// Start at the last segment whose first LSN is <= fromLSN; earlier
	// segments cannot contain a qualifying frame.
	start := 0
	for i, first := range firsts {
		if first <= fromLSN {
			start = i
		}
	}
	next := fromLSN
	var expected uint64
	for i := start; i < len(firsts); i++ {
		first := firsts[i]
		if i > start && first != expected {
			return next, nil
		}
		data, err := readAll(fsys, filepath.Join(dir, segName(first)))
		if err != nil {
			return next, fmt.Errorf("wal: reading %s: %w", segName(first), err)
		}
		lsn := first
		for len(data) > 0 {
			n, payload := parseFrame(data, maxRecord)
			if n == 0 {
				return next, nil
			}
			if lsn >= fromLSN {
				if err := fn(lsn, payload); err != nil {
					return next, err
				}
				next = lsn + 1
			}
			lsn++
			data = data[n:]
		}
		expected = lsn
	}
	return next, nil
}
