package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ssdfail/internal/faultfs"
)

func testOpts(fs faultfs.FS) Options {
	return Options{Dir: "/wal", FS: fs, SegmentBytes: 256, SyncEvery: 1, MaxRecordBytes: 1 << 16}
}

func collect(t *testing.T, opt Options) (*Log, []string, RecoveryStats) {
	t.Helper()
	var got []string
	l, stats, err := Open(opt, func(lsn uint64, payload []byte) {
		got = append(got, fmt.Sprintf("%d:%s", lsn, payload))
	})
	if err != nil {
		t.Fatal(err)
	}
	return l, got, stats
}

func TestAppendReplayRoundTripAcrossSegments(t *testing.T) {
	fs := faultfs.Mem()
	opt := testOpts(fs)
	l, got, _ := collect(t, opt)
	if len(got) != 0 {
		t.Fatalf("fresh log replayed %v", got)
	}
	const n = 40 // tiny segments force several rotations
	for i := 0; i < n; i++ {
		lsn, err := l.Append([]byte(fmt.Sprintf("record-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("append %d: lsn %d", i, lsn)
		}
	}
	if l.Stats().Rotations == 0 {
		t.Fatal("no rotations with 256-byte segments")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got, stats := collect(t, opt)
	defer l2.Close()
	if len(got) != n || stats.Records != n {
		t.Fatalf("replayed %d records (stats %d), want %d", len(got), stats.Records, n)
	}
	for i, g := range got {
		want := fmt.Sprintf("%d:record-%03d", i+1, i)
		if g != want {
			t.Fatalf("replay[%d] = %q, want %q", i, g, want)
		}
	}
	if stats.Truncations != 0 {
		t.Fatalf("clean log reported %d truncations", stats.Truncations)
	}
	// Appending after reopen continues the LSN sequence.
	lsn, err := l2.Append([]byte("after-reopen"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != n+1 {
		t.Fatalf("post-reopen lsn = %d, want %d", lsn, n+1)
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	fs := faultfs.Mem()
	opt := testOpts(fs)
	opt.SegmentBytes = 1 << 20 // single segment
	l, _, _ := collect(t, opt)
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last frame: drop its final byte.
	path := filepath.Join(opt.Dir, segName(1))
	fi, err := fs.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate(path, fi.Size()-1); err != nil {
		t.Fatal(err)
	}

	l2, got, stats := collect(t, opt)
	if len(got) != 4 {
		t.Fatalf("replayed %d records after tear, want 4", len(got))
	}
	if stats.Truncations != 1 || stats.TruncatedBytes == 0 {
		t.Fatalf("stats = %+v, want one truncation", stats)
	}
	// The log stays appendable and the torn LSN is reused.
	lsn, err := l2.Append([]byte("rec4-retry"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 5 {
		t.Fatalf("retry lsn = %d, want 5", lsn)
	}
	l2.Close()
	_, got, _ = collect(t, opt)
	if len(got) != 5 || got[4] != "5:rec4-retry" {
		t.Fatalf("after retry replay = %v", got)
	}
}

func TestRecoveryDropsSegmentsAfterCorruptFrame(t *testing.T) {
	fs := faultfs.Mem()
	opt := testOpts(fs)
	l, _, _ := collect(t, opt)
	for i := 0; i < 40; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	firsts, err := listSegments(fs, opt.Dir)
	if err != nil || len(firsts) < 3 {
		t.Fatalf("want >= 3 segments, got %d (err %v)", len(firsts), err)
	}
	// Flip a payload byte in the second segment's first frame.
	victim := filepath.Join(opt.Dir, segName(firsts[1]))
	f, err := fs.OpenFile(victim, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0xfe, 0xfd, 0xfc, 0xfb, 0xfa, 0xf9, 0xf8, 0xf7}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, got, stats := collect(t, opt)
	if uint64(len(got)) != firsts[1]-1 {
		t.Fatalf("replayed %d records, want %d (everything before the corrupt segment)",
			len(got), firsts[1]-1)
	}
	if stats.Truncations != 1 {
		t.Fatalf("truncations = %d, want 1", stats.Truncations)
	}
	if stats.SegmentsDropped == 0 {
		t.Fatal("segments after the corruption were kept")
	}
}

func TestSnapshotRoundTripAndPrune(t *testing.T) {
	fs := faultfs.Mem()
	opt := testOpts(fs)
	if _, _, found, err := LoadSnapshot(opt); found || err != nil {
		t.Fatalf("empty dir: found=%v err=%v", found, err)
	}
	l, _, _ := collect(t, opt)
	for i := 0; i < 30; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteSnapshot(l.LastLSN(), []byte("snapshot-state")); err != nil {
		t.Fatal(err)
	}
	payload, lsn, found, err := LoadSnapshot(opt)
	if err != nil || !found {
		t.Fatalf("load: found=%v err=%v", found, err)
	}
	if lsn != 30 || string(payload) != "snapshot-state" {
		t.Fatalf("snapshot = (%d, %q)", lsn, payload)
	}

	before, _ := listSegments(fs, opt.Dir)
	removed, err := l.Prune(lsn + 1)
	if err != nil {
		t.Fatal(err)
	}
	after, _ := listSegments(fs, opt.Dir)
	if removed == 0 || len(after) >= len(before) {
		t.Fatalf("prune removed %d segments (%d -> %d)", removed, len(before), len(after))
	}
	// Replay after pruning starts past the snapshot's coverage.
	l.Close()
	_, got, _ := collect(t, opt)
	for _, g := range got {
		var lsn int
		fmt.Sscanf(g, "%d:", &lsn)
		if lsn <= 0 {
			t.Fatalf("bad replayed entry %q", g)
		}
	}
	if len(got) == 30 {
		t.Fatal("prune removed nothing from replay")
	}
}

// TestRecoveryFloorsNextLSNAtSnapshot pins the MinLSN floor: when a
// crash loses the WAL tail a published snapshot already covers, reopen
// must hand out LSNs past the snapshot, never reuse covered ones (a
// reuse would make the next boot's snapshot filter drop fresh records).
func TestRecoveryFloorsNextLSNAtSnapshot(t *testing.T) {
	fs := faultfs.Mem()
	opt := testOpts(fs)
	opt.SegmentBytes = 1 << 20
	opt.SyncEvery = SyncNever // appends stay in the in-process buffer
	l, _, _ := collect(t, opt)
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("buffered-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// A snapshot claiming coverage through LSN 5 is published, but the
	// five frames were never flushed. Abandon the log without Close:
	// the crash loses the entire buffered tail.
	if err := l.WriteSnapshot(5, []byte("covers-1-through-5")); err != nil {
		t.Fatal(err)
	}

	opt.MinLSN = 5
	l2, got, stats := collect(t, opt)
	if len(got) != 0 {
		t.Fatalf("replayed %v from a log whose frames were never written", got)
	}
	if stats.SegmentsDropped == 0 {
		t.Fatal("stale snapshot-covered segment was kept")
	}
	lsn, err := l2.Append([]byte("post-recovery"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 6 {
		t.Fatalf("post-recovery lsn = %d, want 6 (past the snapshot)", lsn)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, _ = collect(t, opt)
	if len(got) != 1 || got[0] != "6:post-recovery" {
		t.Fatalf("replay after floor = %v, want [6:post-recovery]", got)
	}
}

// TestPeriodicSyncBoundsTrickleLatency checks the SyncInterval timer: a
// single record under a large group-commit policy must still be flushed
// and fsynced within the interval, not sit buffered indefinitely.
func TestPeriodicSyncBoundsTrickleLatency(t *testing.T) {
	fs := faultfs.Mem()
	opt := testOpts(fs)
	opt.SyncEvery = 64
	opt.SyncInterval = 2 * time.Millisecond
	l, _, _ := collect(t, opt)
	defer l.Close()
	if _, err := l.Append([]byte("trickle")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no timer-driven fsync within 5s of a trickle append")
		}
		time.Sleep(time.Millisecond)
	}
	// The fsync covered real bytes: the frame reached the segment file.
	data, err := readAll(fs, filepath.Join(opt.Dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if n, payload := parseFrame(data, opt.MaxRecordBytes); n == 0 || string(payload) != "trickle" {
		t.Fatalf("segment holds %d bytes without the trickle frame", len(data))
	}
}

func TestCorruptSnapshotIsReportedNotFatal(t *testing.T) {
	fs := faultfs.Mem()
	opt := testOpts(fs)
	l, _, _ := collect(t, opt)
	if err := l.WriteSnapshot(3, []byte("good")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	path := filepath.Join(opt.Dir, SnapshotName)
	f, err := fs.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("XXXX")) //nolint:errcheck
	f.Close()
	_, _, found, err := LoadSnapshot(opt)
	if found {
		t.Fatal("corrupt snapshot reported as found")
	}
	if !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("err = %v, want ErrSnapshotCorrupt", err)
	}
}

func TestAppendPoisonedAfterWriteError(t *testing.T) {
	mem := faultfs.Mem()
	inj := faultfs.New(mem)
	opt := testOpts(inj)
	opt.SegmentBytes = 1 << 20
	l, _, _ := collect(t, opt)
	if _, err := l.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	inj.Add(faultfs.Fault{Op: faultfs.OpWrite, N: 2, Mode: faultfs.ModeShortWrite, Bytes: 3})
	if _, err := l.Append([]byte("torn-record")); err == nil {
		t.Fatal("short write accepted")
	}
	if _, err := l.Append([]byte("after")); !errors.Is(err, ErrBroken) {
		t.Fatalf("append after write error: %v, want ErrBroken", err)
	}
	// Reopen on the raw fs: the torn frame is truncated away.
	opt.FS = mem
	_, got, stats := collect(t, opt)
	if len(got) != 1 || got[0] != "1:ok" {
		t.Fatalf("replay = %v", got)
	}
	if stats.Truncations != 1 {
		t.Fatalf("truncations = %d, want 1", stats.Truncations)
	}
}

func TestOpenOnRealFilesystem(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Dir: filepath.Join(dir, "wal"), SyncEvery: 2, SegmentBytes: 128}
	l, _, err := Open(opt, func(uint64, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("disk-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteSnapshot(4, []byte("disk-snap")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	payload, lsn, found, err := LoadSnapshot(opt)
	if err != nil || !found || lsn != 4 || string(payload) != "disk-snap" {
		t.Fatalf("snapshot = (%q, %d, %v, %v)", payload, lsn, found, err)
	}
	n := 0
	l2, _, err := Open(opt, func(uint64, []byte) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if n != 10 {
		t.Fatalf("replayed %d, want 10", n)
	}
	if got := l2.Stats().Fsyncs; got != 0 {
		t.Fatalf("fresh log fsyncs = %d", got)
	}
}

// TestConcurrentAppendWithAsyncSyncer hammers the group-commit path:
// SyncEvery > 1 runs policy fsyncs on the background syncer goroutine
// concurrently with appends, flushes, and rotations. Every append must
// survive a clean close and reopen, exactly once and in LSN order.
func TestConcurrentAppendWithAsyncSyncer(t *testing.T) {
	opt := Options{Dir: filepath.Join(t.TempDir(), "wal"), SyncEvery: 8, SegmentBytes: 4096}
	l, _, err := Open(opt, func(uint64, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%02d-%04d", w, i))); err != nil {
					t.Errorf("worker %d append %d: %v", w, i, err)
					return
				}
				if i%97 == 0 {
					if err := l.Sync(); err != nil {
						t.Errorf("worker %d sync: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if got := l.LastLSN(); got != workers*perWorker {
		t.Fatalf("last LSN = %d, want %d", got, workers*perWorker)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	seen := make(map[string]uint64)
	var prev uint64
	l2, stats, err := Open(opt, func(lsn uint64, payload []byte) {
		if lsn != prev+1 {
			t.Fatalf("replay LSN %d after %d", lsn, prev)
		}
		prev = lsn
		seen[string(payload)] = lsn
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if stats.Truncations != 0 || stats.SegmentsDropped != 0 {
		t.Fatalf("clean close left damage: %+v", stats)
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("replayed %d distinct records, want %d", len(seen), workers*perWorker)
	}
}
