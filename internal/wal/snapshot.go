package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Snapshot file layout: 8-byte magic, u64 LSN (every record with an LSN
// at or below it is included in the payload), u32 payload length, u32
// CRC32C of the payload, payload. The file is replaced atomically
// (write temp, fsync, rename, fsync dir), so a crash mid-snapshot
// leaves the previous snapshot intact.

const (
	snapMagic = "SSDWSNP1"
	// SnapshotName is the current-snapshot file inside Options.Dir.
	SnapshotName = "snapshot.snap"
	snapTmpName  = "snapshot.tmp"
	snapHeader   = len(snapMagic) + 8 + 4 + 4
)

// ErrSnapshotCorrupt marks a snapshot that exists but fails validation.
// Recovery should proceed as if no snapshot existed (replaying whatever
// WAL segments remain) and surface the corruption to the operator.
var ErrSnapshotCorrupt = errors.New("wal: snapshot corrupt")

// WriteSnapshot atomically replaces the snapshot file with payload,
// covering every record with an LSN at or below lsn. Concurrent calls
// are serialized; the log keeps appending meanwhile.
//
//ssdlint:allow lockheld snapMu exists to serialize exactly this blocking write-rename-fsync sequence; it is never taken on the append path
func (l *Log) WriteSnapshot(lsn uint64, payload []byte) error {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	fsys, dir := l.opt.FS, l.opt.Dir
	tmp := filepath.Join(dir, snapTmpName)
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot temp: %w", err)
	}
	buf := make([]byte, 0, snapHeader+len(payload))
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, lsn)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	buf = append(buf, payload...)
	if _, err := f.Write(buf); err != nil {
		f.Close() //ssdlint:allow droppederr error-path cleanup of a temp file; the write failure already aborts the snapshot
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close() //ssdlint:allow droppederr error-path cleanup of a temp file; the fsync failure already aborts the snapshot
		return fmt.Errorf("wal: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: snapshot close: %w", err)
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, SnapshotName)); err != nil {
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("wal: snapshot dir fsync: %w", err)
	}
	l.snapshots.Add(1)
	return nil
}

// LoadSnapshot reads and validates the snapshot in opt.Dir. found is
// false when none exists. A snapshot that exists but fails validation
// returns found=false and an error wrapping ErrSnapshotCorrupt; the
// caller may still recover from the WAL alone.
func LoadSnapshot(opt Options) (payload []byte, lsn uint64, found bool, err error) {
	opt = opt.withDefaults()
	data, err := readAll(opt.FS, filepath.Join(opt.Dir, SnapshotName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, false, nil
		}
		return nil, 0, false, fmt.Errorf("wal: reading snapshot: %w", err)
	}
	if len(data) < snapHeader || string(data[:len(snapMagic)]) != snapMagic {
		return nil, 0, false, fmt.Errorf("%w: bad header", ErrSnapshotCorrupt)
	}
	off := len(snapMagic)
	lsn = binary.LittleEndian.Uint64(data[off : off+8])
	length := binary.LittleEndian.Uint32(data[off+8 : off+12])
	sum := binary.LittleEndian.Uint32(data[off+12 : off+16])
	payload = data[snapHeader:]
	if int(length) != len(payload) {
		return nil, 0, false, fmt.Errorf("%w: length %d != %d payload bytes",
			ErrSnapshotCorrupt, length, len(payload))
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, 0, false, fmt.Errorf("%w: checksum mismatch", ErrSnapshotCorrupt)
	}
	return payload, lsn, true, nil
}
