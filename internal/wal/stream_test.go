package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ssdfail/internal/faultfs"
)

// collectFrom drains ReadFrom into a slice of (lsn, payload) pairs.
func collectFrom(t *testing.T, fsys faultfs.FS, dir string, from uint64) (lsns []uint64, payloads []string, next uint64) {
	t.Helper()
	next, err := ReadFrom(fsys, dir, from, 0, func(lsn uint64, payload []byte) error {
		lsns = append(lsns, lsn)
		payloads = append(payloads, string(payload))
		return nil
	})
	if err != nil {
		t.Fatalf("ReadFrom(%d): %v", from, err)
	}
	return lsns, payloads, next
}

func TestReadFromStreamsAcrossSegments(t *testing.T) {
	fsys := faultfs.Mem()
	dir := "wal"
	// Tiny segments force rotation every couple of records.
	l, _, err := Open(Options{Dir: dir, FS: fsys, SegmentBytes: 64, SyncEvery: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := listSegments(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments to exercise crossing, got %d", len(segs))
	}

	lsns, payloads, next := collectFrom(t, fsys, dir, 0)
	if len(lsns) != n {
		t.Fatalf("frames delivered = %d, want %d", len(lsns), n)
	}
	for i, lsn := range lsns {
		if lsn != uint64(i+1) {
			t.Fatalf("frame %d has lsn %d, want %d", i, lsn, i+1)
		}
		if want := fmt.Sprintf("record-%02d", i); payloads[i] != want {
			t.Fatalf("frame %d payload %q, want %q", i, payloads[i], want)
		}
	}
	if next != n+1 {
		t.Fatalf("next = %d, want %d", next, n+1)
	}

	// Resuming mid-log — including from inside a later segment — yields
	// exactly the suffix.
	for _, from := range []uint64{1, 5, uint64(n), uint64(n) + 1, uint64(n) + 7} {
		lsns, _, next := collectFrom(t, fsys, dir, from)
		want := n - int(from) + 1
		if want < 0 {
			want = 0
		}
		if len(lsns) != want {
			t.Fatalf("from %d: delivered %d frames, want %d", from, len(lsns), want)
		}
		if want > 0 && lsns[0] != from {
			t.Fatalf("from %d: first lsn %d", from, lsns[0])
		}
		wantNext := uint64(n) + 1
		if from > uint64(n) {
			wantNext = from
		}
		if next != wantNext {
			t.Fatalf("from %d: next = %d, want %d", from, next, wantNext)
		}
	}
}

func TestReadFromSeesFlushedButUnsyncedRecords(t *testing.T) {
	fsys := faultfs.Mem()
	dir := "wal"
	// Group commit: appends buffer in process until a sync boundary.
	l, _, err := Open(Options{Dir: dir, FS: fsys, SyncEvery: 1000, SyncInterval: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close() //ssdlint:allow droppederr test cleanup
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("buffered-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	lsns, _, _ := collectFrom(t, fsys, dir, 0)
	if len(lsns) != 0 {
		t.Fatalf("buffered frames visible before Flush: %d", len(lsns))
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	lsns, _, next := collectFrom(t, fsys, dir, 0)
	if len(lsns) != 5 || next != 6 {
		t.Fatalf("after Flush: delivered %d frames next %d, want 5 and 6", len(lsns), next)
	}
}

func TestReadFromStopsAtCorruptFrame(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, SyncEvery: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the fourth frame: CRC now mismatches, so
	// the stream must end after frame 3 even though frames 5..6 are
	// intact on disk (they are unreachable, as at recovery).
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for i := 0; i < 3; i++ {
		length := binary.LittleEndian.Uint32(data[off:])
		off += frameHeaderSize + int(length)
	}
	data[off+frameHeaderSize] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	lsns, _, next := collectFrom(t, nil, dir, 0)
	if len(lsns) != 3 || next != 4 {
		t.Fatalf("delivered %d frames next %d, want 3 and 4", len(lsns), next)
	}
}

func TestReadFromPrunedFloor(t *testing.T) {
	fsys := faultfs.Mem()
	dir := "wal"
	l, _, err := Open(Options{Dir: dir, FS: fsys, SegmentBytes: 64, SyncEvery: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Prune(7); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	floor := segs[0]
	if floor <= 1 {
		t.Fatalf("prune kept segment 1; floor %d", floor)
	}
	if _, err := ReadFrom(fsys, dir, 1, 0, func(uint64, []byte) error { return nil }); !errors.Is(err, ErrPruned) {
		t.Fatalf("ReadFrom below floor: err = %v, want ErrPruned", err)
	}
	lsns, _, _ := collectFrom(t, fsys, dir, floor)
	if len(lsns) == 0 || lsns[0] != floor {
		t.Fatalf("reading from the floor %d delivered %v", floor, lsns)
	}
}

func TestReadFromCallbackErrorAborts(t *testing.T) {
	fsys := faultfs.Mem()
	dir := "wal"
	l, _, err := Open(Options{Dir: dir, FS: fsys, SyncEvery: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	seen := 0
	next, err := ReadFrom(fsys, dir, 0, 0, func(lsn uint64, _ []byte) error {
		seen++
		if lsn == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if seen != 2 || next != 2 {
		t.Fatalf("seen %d next %d, want 2 and 2 (frame 2 not delivered)", seen, next)
	}
}
