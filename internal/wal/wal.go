// Package wal implements an append-only, segment-rotated write-ahead
// log with per-frame CRC32C checksums, plus atomic point-in-time
// snapshots, so the fleet-scoring daemon's in-memory state survives
// crashes. Recovery replays the newest snapshot and then the WAL tail;
// a torn or corrupt frame truncates the log at that point instead of
// failing the boot — exactly the lossy-telemetry posture the paper's
// field pipelines require.
//
// On-disk layout (all integers little-endian):
//
//	wal-<first LSN, 20 digits>.seg   frames: len u32 | crc32c u32 | payload
//	snapshot.snap                    "SSDWSNP1" | lsn u64 | len u32 | crc32c u32 | payload
//
// Log sequence numbers (LSNs) start at 1 and are implicit: frame i of a
// segment has LSN firstLSN+i. Payloads are opaque to this package and
// must be non-empty (a zero length marks a torn frame, so runs of
// zeroes from preallocated or zero-extended files never parse as
// records).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ssdfail/internal/faultfs"
)

const (
	frameHeaderSize = 8
	segPrefix       = "wal-"
	segSuffix       = ".seg"

	// DefaultSegmentBytes is the rotation threshold.
	DefaultSegmentBytes = 8 << 20
	// DefaultSyncEvery is the default fsync policy: flush to stable
	// storage every this many appends (and on rotation and close).
	DefaultSyncEvery = 64
	// SyncNever disables policy-driven fsyncs; only rotation, Close,
	// and explicit Sync calls flush.
	SyncNever = -1
	// DefaultSyncInterval bounds how long an accepted record can sit
	// buffered and un-fsynced under a SyncEvery > 1 policy: the
	// background syncer also fires this long after the last activity
	// whenever dirty bytes exist, so trickle traffic is made durable
	// within ~this latency instead of waiting for a full batch.
	DefaultSyncInterval = 100 * time.Millisecond
	// DefaultMaxRecordBytes caps one frame's payload; larger lengths in
	// a frame header are treated as corruption.
	DefaultMaxRecordBytes = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("wal: log closed")
	// ErrBroken marks a log poisoned by an earlier write error: the
	// tail may hold a torn frame, so further appends are refused until
	// the log is reopened (which truncates the tear).
	ErrBroken = errors.New("wal: log broken by earlier write error")
	// ErrTooLarge is returned for payloads above MaxRecordBytes.
	ErrTooLarge = errors.New("wal: record exceeds maximum size")
)

// Options configures a log.
type Options struct {
	// Dir holds the segments and snapshot.
	Dir string
	// FS is the filesystem; nil means the real one.
	FS faultfs.FS
	// SegmentBytes rotates segments above this size (0 = default).
	SegmentBytes int64
	// SyncEvery is the fsync policy: 1 fsyncs every append, n > 1 every
	// n appends, SyncNever only on rotation/close, 0 = default.
	SyncEvery int
	// SyncInterval bounds the durability latency of the SyncEvery > 1
	// group-commit path: when dirty bytes exist, the background syncer
	// flushes and fsyncs at least this often even if no sync boundary
	// is reached. 0 = DefaultSyncInterval; negative disables the timer
	// (batches then wait for a boundary, Sync, rotation, or Close).
	// It has no effect with SyncEvery == 1 (nothing is ever deferred)
	// or SyncNever (explicit-sync-only is that policy's contract).
	SyncInterval time.Duration
	// MaxRecordBytes caps payload size (0 = default).
	MaxRecordBytes int
	// MinLSN floors recovery: Open guarantees the next append receives
	// an LSN strictly greater than MinLSN. Callers pass the LSN of the
	// snapshot they recovered from, so that when the durable WAL tail
	// ends before the snapshot's coverage (a crash that lost buffered
	// frames after the snapshot was published), records accepted after
	// recovery can never reuse LSNs the snapshot claims to cover — a
	// reuse would make the next boot's replay filter silently drop
	// them. When the recovered tail is behind MinLSN every surviving
	// record is covered by that snapshot, so the stale segments are
	// deleted and a fresh segment starts at MinLSN+1.
	MinLSN uint64
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = faultfs.OS()
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.SyncEvery == 0 {
		o.SyncEvery = DefaultSyncEvery
	}
	if o.SyncInterval == 0 {
		o.SyncInterval = DefaultSyncInterval
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = DefaultMaxRecordBytes
	}
	return o
}

// RecoveryStats summarizes what Open found on disk.
type RecoveryStats struct {
	// Records is how many intact frames were replayed.
	Records uint64
	// Truncations counts recovery truncations: 1 when a torn or
	// corrupt frame cut the log short, 0 on a clean log.
	Truncations int
	// TruncatedBytes is how many bytes were dropped by the truncation.
	TruncatedBytes int64
	// SegmentsDropped counts whole segments discarded because they
	// followed a corrupt frame or broke LSN continuity.
	SegmentsDropped int
	// Segments is how many segments remain after recovery.
	Segments int
}

// Stats are cumulative operation counts for a live log.
type Stats struct {
	Appends   uint64
	Fsyncs    uint64
	Rotations uint64
	Snapshots uint64
}

// flushThreshold bounds how many buffered frame bytes accumulate
// before they are written through to the segment file even when no
// sync boundary has been reached. While the syncer goroutine has an
// fsync in flight, writes to the same file would stall on the inode
// lock, so appends keep buffering past the threshold up to
// maxBufferBytes — the hard cap that applies backpressure instead of
// letting a slow disk grow the buffer without bound.
const (
	flushThreshold = 64 << 10
	maxBufferBytes = 8 << 20
)

// Log is an open write-ahead log positioned after its last intact
// frame. All methods are safe for concurrent use.
//
// Appends accumulate in an in-process buffer and are written through at
// sync boundaries, rotation, close, or the flush threshold — one write
// syscall then covers a whole batch of frames. With SyncEvery == 1
// every append is flushed and fsynced before it returns; with larger
// policies the policy fsync is issued by a background syncer goroutine
// (group commit), so appends never wait on the disk. Either way a
// record is only guaranteed durable once its covering fsync completes,
// which is the contract Options.SyncEvery documents.
type Log struct {
	opt Options

	mu        sync.Mutex
	syncCond  *sync.Cond // signals async-fsync completion; tied to mu
	f         faultfs.File
	buf       []byte // appended frames not yet written to f
	segStart  uint64 // first LSN of the active segment
	segBytes  int64  // includes buffered bytes
	next      uint64 // LSN the next append receives
	sinceSync int
	dirty     bool  // bytes exist that no completed fsync covers
	flushed   int64 // total bytes written through to segment files
	syncBusy  bool  // the syncer goroutine is inside fsync
	closed    bool
	err       error // sticky write error

	syncCh     chan struct{} // coalesced async fsync requests
	syncerDone chan struct{}

	snapMu sync.Mutex // serializes WriteSnapshot

	appends   atomic.Uint64
	fsyncs    atomic.Uint64
	rotations atomic.Uint64
	snapshots atomic.Uint64
}

func segName(first uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, first, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listSegments returns the segment first-LSNs in dir, ascending.
func listSegments(fsys faultfs.FS, dir string) ([]uint64, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var firsts []uint64
	for _, e := range entries {
		if first, ok := parseSegName(e.Name()); ok && !e.IsDir() {
			firsts = append(firsts, first)
		}
	}
	sort.Slice(firsts, func(a, b int) bool { return firsts[a] < firsts[b] })
	return firsts, nil
}

// Open recovers the log in opt.Dir, invoking replay for every intact
// frame in LSN order, and returns a log positioned for appending. The
// first torn or corrupt frame truncates the log there: the broken
// frame, the rest of its segment, and any later segments are dropped.
// The payload passed to replay is only valid during the call.
func Open(opt Options, replay func(lsn uint64, payload []byte)) (*Log, RecoveryStats, error) {
	opt = opt.withDefaults()
	var stats RecoveryStats
	if err := opt.FS.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, stats, fmt.Errorf("wal: mkdir %s: %w", opt.Dir, err)
	}
	firsts, err := listSegments(opt.FS, opt.Dir)
	if err != nil {
		return nil, stats, fmt.Errorf("wal: listing segments: %w", err)
	}

	l := &Log{opt: opt, next: 1, segStart: 1}
	if len(firsts) > 0 {
		l.next = firsts[0]
		l.segStart = firsts[0]
	}
	corrupt := false
	for i, first := range firsts {
		path := filepath.Join(opt.Dir, segName(first))
		if corrupt || first != l.next {
			// Unreachable records: either a corrupt frame cut the
			// sequence earlier, or this segment's first LSN does not
			// continue it (a pruning gap mid-sequence). Keeping them
			// would break the accepted-prefix guarantee.
			if err := opt.FS.Remove(path); err != nil {
				return nil, stats, fmt.Errorf("wal: dropping unreachable segment: %w", err)
			}
			stats.SegmentsDropped++
			continue
		}
		data, err := readAll(opt.FS, path)
		if err != nil {
			return nil, stats, fmt.Errorf("wal: reading segment: %w", err)
		}
		off := 0
		for {
			n, payload := parseFrame(data[off:], opt.MaxRecordBytes)
			if n == 0 {
				break
			}
			replay(l.next, payload)
			stats.Records++
			l.next++
			off += n
		}
		if off < len(data) {
			// Torn or corrupt frame: cut here, drop the rest.
			if err := opt.FS.Truncate(path, int64(off)); err != nil {
				return nil, stats, fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			stats.Truncations++
			stats.TruncatedBytes += int64(len(data) - off)
			corrupt = true
		}
		if i == len(firsts)-1 || corrupt {
			l.segStart = first
			l.segBytes = int64(off)
		}
	}

	if l.next <= opt.MinLSN {
		// The durable tail ends before the caller's snapshot coverage:
		// every record still on disk is ≤ MinLSN and therefore inside
		// the snapshot. Drop the stale segments and restart numbering
		// just past the snapshot, so post-recovery appends can never
		// collide with LSNs the snapshot already claims.
		stale, err := listSegments(opt.FS, opt.Dir)
		if err != nil {
			return nil, stats, fmt.Errorf("wal: listing stale segments: %w", err)
		}
		for _, first := range stale {
			if err := opt.FS.Remove(filepath.Join(opt.Dir, segName(first))); err != nil {
				return nil, stats, fmt.Errorf("wal: dropping snapshot-covered segment: %w", err)
			}
			stats.SegmentsDropped++
		}
		if len(stale) > 0 {
			if err := opt.FS.SyncDir(opt.Dir); err != nil {
				return nil, stats, fmt.Errorf("wal: syncing dir: %w", err)
			}
		}
		l.next = opt.MinLSN + 1
		l.segStart = l.next
		l.segBytes = 0
	}

	path := filepath.Join(opt.Dir, segName(l.segStart))
	f, err := opt.FS.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, stats, fmt.Errorf("wal: opening active segment: %w", err)
	}
	l.f = f
	l.syncCond = sync.NewCond(&l.mu)
	if opt.SyncEvery > 1 {
		l.syncCh = make(chan struct{}, 1)
		l.syncerDone = make(chan struct{})
		go l.syncer()
	}
	remaining, err := listSegments(opt.FS, opt.Dir)
	if err == nil {
		stats.Segments = len(remaining)
	}
	return l, stats, nil
}

// parseFrame returns the total frame size and payload of the frame at
// the start of data, or (0, nil) when data holds no complete valid
// frame (torn tail, zero length, oversized length, or CRC mismatch).
func parseFrame(data []byte, maxRecord int) (int, []byte) {
	if len(data) < frameHeaderSize {
		return 0, nil
	}
	length := binary.LittleEndian.Uint32(data[0:4])
	if length == 0 || int(length) > maxRecord {
		return 0, nil
	}
	end := frameHeaderSize + int(length)
	if end > len(data) {
		return 0, nil
	}
	payload := data[frameHeaderSize:end]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[4:8]) {
		return 0, nil
	}
	return end, payload
}

func readAll(fsys faultfs.FS, path string) ([]byte, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close() //ssdlint:allow droppederr read-only descriptor; Close cannot lose data we have not already read
	return io.ReadAll(f)
}

// Append writes one record and returns its LSN. Depending on the fsync
// policy the record may not be durable until the next policy fsync, an
// explicit Sync, or Close. After a write error the log is poisoned
// (ErrBroken) because the tail may be torn; reopen to recover.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) == 0 {
		return 0, errors.New("wal: empty payload")
	}
	if len(payload) > l.opt.MaxRecordBytes {
		return 0, fmt.Errorf("%w: %d > %d", ErrTooLarge, len(payload), l.opt.MaxRecordBytes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, fmt.Errorf("%w: %w", ErrBroken, l.err)
	}
	frame := int64(frameHeaderSize + len(payload))
	if l.segBytes > 0 && l.segBytes+frame > l.opt.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.err = err
			return 0, err
		}
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, payload...)
	lsn := l.next
	l.next++
	l.segBytes += frame
	l.sinceSync++
	l.dirty = true
	l.appends.Add(1)
	switch {
	case l.opt.SyncEvery == 1:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case l.opt.SyncEvery > 1 && l.sinceSync >= l.opt.SyncEvery:
		// Group commit: hand the whole batch — flush and fsync — to the
		// syncer goroutine so appends never issue a syscall here.
		// Durability is still only promised once the policy fsync
		// completes.
		l.sinceSync = 0
		select {
		case l.syncCh <- struct{}{}:
		default: // a request is already queued; it will cover this batch
		}
	case len(l.buf) >= flushThreshold && (!l.syncBusy || len(l.buf) >= maxBufferBytes):
		if err := l.flushLocked(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// flushLocked writes buffered frames through to the active segment.
func (l *Log) flushLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	n, err := l.f.Write(l.buf)
	l.flushed += int64(n)
	if err != nil {
		l.err = err
		return fmt.Errorf("wal: append: %w", err)
	}
	l.buf = l.buf[:0]
	return nil
}

// syncer issues policy fsyncs off the append path. One in-flight fsync
// covers every byte flushed before it started; coalesced requests mean
// a slow disk degrades to fewer, larger group commits rather than a
// queue of fsyncs. A SyncInterval ticker additionally bounds how long
// dirty bytes can sit buffered under trickle traffic that never fills
// a batch.
func (l *Log) syncer() {
	defer close(l.syncerDone)
	var tickC <-chan time.Time
	if l.opt.SyncInterval > 0 {
		t := time.NewTicker(l.opt.SyncInterval)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case _, ok := <-l.syncCh:
			if !ok {
				return
			}
		case <-tickC:
		}
		l.mu.Lock()
		if l.closed || l.err != nil || !l.dirty {
			l.mu.Unlock()
			continue
		}
		if err := l.flushLocked(); err != nil {
			l.syncCond.Broadcast() // sticky error set; wake any waiter
			l.mu.Unlock()
			continue
		}
		f := l.f
		mark := l.flushed
		l.syncBusy = true
		l.mu.Unlock()

		err := f.Sync()

		l.mu.Lock()
		l.syncBusy = false
		if err != nil {
			if l.err == nil {
				l.err = err
			}
		} else {
			l.fsyncs.Add(1)
			// Only bytes flushed before the fsync started are covered.
			if l.flushed == mark && len(l.buf) == 0 {
				l.dirty = false
			}
		}
		l.syncCond.Broadcast()
		l.mu.Unlock()
	}
}

// rotateLocked syncs and closes the active segment and starts a new one
// whose name carries the next LSN.
//
//ssdlint:allow lockheld the -Locked suffix is the contract: rotation runs under l.mu so no append can land in a segment mid-swap
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: closing segment: %w", err)
	}
	path := filepath.Join(l.opt.Dir, segName(l.next))
	f, err := l.opt.FS.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening segment: %w", err)
	}
	if err := l.opt.FS.SyncDir(l.opt.Dir); err != nil {
		f.Close() //ssdlint:allow droppederr error-path cleanup of an empty just-opened segment; the dir fsync failure is returned
		return fmt.Errorf("wal: syncing dir: %w", err)
	}
	l.f = f
	l.segStart = l.next
	l.segBytes = 0
	l.rotations.Add(1)
	return nil
}

// syncLocked makes everything appended so far durable: it waits out an
// in-flight async fsync, flushes the buffer, and fsyncs inline.
//
//ssdlint:allow lockheld fsync-under-l.mu is the durability point by design; SyncEvery batching and the async syncer bound how often appends pay it
func (l *Log) syncLocked() error {
	for l.syncBusy {
		l.syncCond.Wait()
	}
	if l.err != nil {
		return fmt.Errorf("%w: %w", ErrBroken, l.err)
	}
	if err := l.flushLocked(); err != nil {
		return err
	}
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.err = err
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.dirty = false
	l.sinceSync = 0
	l.fsyncs.Add(1)
	return nil
}

// Flush writes buffered frames through to the active segment file
// without forcing an fsync. It makes every accepted record visible to
// same-filesystem readers (ReadFrom, replication pulls) at memory cost
// rather than disk cost; durability guarantees are unchanged and still
// governed by the SyncEvery policy.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return fmt.Errorf("%w: %w", ErrBroken, l.err)
	}
	return l.flushLocked()
}

// Sync flushes appended records to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return fmt.Errorf("%w: %w", ErrBroken, l.err)
	}
	return l.syncLocked()
}

// Close syncs and closes the active segment and stops the syncer.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	err := l.syncLocked()
	l.closed = true
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: close: %w", cerr)
	}
	l.mu.Unlock()
	if l.syncCh != nil {
		close(l.syncCh)
		<-l.syncerDone
	}
	return err
}

// LastLSN returns the LSN of the most recent append (0 when empty).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// Stats returns cumulative operation counts.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:   l.appends.Load(),
		Fsyncs:    l.fsyncs.Load(),
		Rotations: l.rotations.Load(),
		Snapshots: l.snapshots.Load(),
	}
}

// Prune removes segments whose every record is below beforeLSN (i.e.
// fully covered by a snapshot). The active segment is never removed.
// It returns how many segments were deleted.
func (l *Log) Prune(beforeLSN uint64) (int, error) {
	l.mu.Lock()
	segStart := l.segStart
	l.mu.Unlock()
	firsts, err := listSegments(l.opt.FS, l.opt.Dir)
	if err != nil {
		return 0, fmt.Errorf("wal: prune: %w", err)
	}
	removed := 0
	for i := 0; i+1 < len(firsts); i++ {
		if firsts[i] == segStart || firsts[i+1] > beforeLSN {
			continue
		}
		if err := l.opt.FS.Remove(filepath.Join(l.opt.Dir, segName(firsts[i]))); err != nil {
			return removed, fmt.Errorf("wal: prune: %w", err)
		}
		removed++
	}
	if removed > 0 {
		if err := l.opt.FS.SyncDir(l.opt.Dir); err != nil {
			return removed, fmt.Errorf("wal: prune: %w", err)
		}
	}
	return removed, nil
}
