// Package core is the high-level API of the library: it ties together
// fleet acquisition (simulation or trace files), failure-timeline
// reconstruction, and failure prediction into a small set of calls that
// cover the paper's workflow end to end:
//
//	study, _ := core.GenerateStudy(42, 300)        // or LoadStudy(file)
//	pred, _ := study.TrainPredictor(core.PredictorOptions{Lookahead: 1})
//	watch := pred.Watchlist(study, today, 20)      // drives to act on
//
// The lower-level packages (fleetsim, failure, dataset, ml/*, eval)
// remain available for custom pipelines.
package core

import (
	"encoding"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"ssdfail/internal/dataset"
	"ssdfail/internal/eval"
	"ssdfail/internal/failure"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/ml"
	"ssdfail/internal/ml/forest"
	"ssdfail/internal/trace"
)

// Study bundles a fleet trace with its reconstructed failure timeline.
type Study struct {
	Fleet    *trace.Fleet
	Analysis *failure.Analysis
}

// NewStudy wraps an existing fleet, reconstructing its failure timeline.
func NewStudy(f *trace.Fleet) *Study {
	return &Study{Fleet: f, Analysis: failure.Analyze(f)}
}

// GenerateStudy simulates a fleet with the calibrated default
// configuration (drivesPerModel drives of each MLC model over six
// years) and reconstructs it.
func GenerateStudy(seed uint64, drivesPerModel int) (*Study, error) {
	fleet, _, err := fleetsim.Generate(fleetsim.DefaultConfig(seed, drivesPerModel))
	if err != nil {
		return nil, err
	}
	return NewStudy(fleet), nil
}

// LoadStudy reads a fleet from a binary trace file written by SaveFleet
// (or cmd/ssdgen) and reconstructs it.
func LoadStudy(path string) (*Study, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadStudy(f)
}

// ReadStudy reads a binary fleet stream.
func ReadStudy(r io.Reader) (*Study, error) {
	fleet, err := trace.ReadBinary(r)
	if err != nil {
		return nil, err
	}
	if err := fleet.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid fleet: %w", err)
	}
	return NewStudy(fleet), nil
}

// SaveFleet writes the study's fleet to a binary trace file.
func (s *Study) SaveFleet(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteBinary(f, s.Fleet); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Summary aggregates headline statistics of the study.
type Summary struct {
	Drives       int
	DriveDays    int
	Failures     int
	FailedDrives int
	FailedPct    float64
	InfantPct    float64 // failures at age <= 90 days
	Repaired     int     // failures observed to re-enter the field
}

// Summarize computes the study summary.
func (s *Study) Summarize() Summary {
	sum := Summary{
		Drives:    len(s.Fleet.Drives),
		DriveDays: s.Fleet.DriveDays(),
		Failures:  len(s.Analysis.Events),
	}
	sum.FailedDrives = s.Analysis.FailedDriveCount()
	if sum.Drives > 0 {
		sum.FailedPct = 100 * float64(sum.FailedDrives) / float64(sum.Drives)
	}
	young := 0
	for i := range s.Analysis.Events {
		e := &s.Analysis.Events[i]
		if e.Young() {
			young++
		}
		if e.ReturnDay >= 0 {
			sum.Repaired++
		}
	}
	if sum.Failures > 0 {
		sum.InfantPct = 100 * float64(young) / float64(sum.Failures)
	}
	return sum
}

// PredictorOptions configures TrainPredictor.
type PredictorOptions struct {
	// Lookahead N: the predictor estimates P(failure within N days).
	// Default 1.
	Lookahead int
	// Factory builds the underlying classifier; default is the paper's
	// best model, a 100-tree random forest.
	Factory ml.Factory
	// DownsampleRatio is negatives per positive in training (default 1).
	DownsampleRatio float64
	Seed            uint64
	// HoldoutFraction reserves this share of drives (by count) for the
	// validation AUC reported on the returned predictor; 0 disables the
	// holdout and trains on everything.
	HoldoutFraction float64
	Workers         int
}

// Predictor is a trained failure predictor.
type Predictor struct {
	Lookahead int
	// ValidationAUC is the AUC on the held-out drives, or NaN when no
	// holdout was requested.
	ValidationAUC float64
	model         ml.Classifier
	// flat is the model's flattened-array form, cached at train/decode
	// time when the model is a random forest. Scoring prefers it: same
	// bits, contiguous traversal, no per-tree pointer chasing.
	flat *forest.Flat
}

// initFlat caches the flattened form of forest models. Flatten errors
// are impossible for a forest that passed training or deserialization
// validation; if one surfaces anyway the predictor just keeps the
// pointer-walking path.
func (p *Predictor) initFlat() {
	if f, ok := p.model.(*forest.Forest); ok {
		if fl, err := f.Flatten(); err == nil {
			p.flat = fl
		}
	}
}

// TrainPredictor trains a failure predictor on the study.
func (s *Study) TrainPredictor(opts PredictorOptions) (*Predictor, error) {
	if opts.Lookahead <= 0 {
		opts.Lookahead = 1
	}
	if opts.Factory == nil {
		cfg := forest.DefaultConfig()
		cfg.Seed = opts.Seed
		cfg.Workers = opts.Workers
		opts.Factory = forest.NewFactory(cfg)
	}
	if opts.DownsampleRatio == 0 {
		opts.DownsampleRatio = 1
	}
	nDrives := len(s.Fleet.Drives)
	holdout := make([]bool, nDrives)
	if opts.HoldoutFraction > 0 && opts.HoldoutFraction < 1 {
		k := int(opts.HoldoutFraction * float64(nDrives))
		folds := dataset.Folds(nDrives, nDrives, opts.Seed) // a permutation
		for di, pos := range folds {
			if pos < k {
				holdout[di] = true
			}
		}
	}
	train := dataset.Extract(s.Fleet, s.Analysis, dataset.Options{
		Lookahead:    opts.Lookahead,
		Seed:         opts.Seed,
		AgeMax:       -1,
		IncludeDrive: func(di int) bool { return !holdout[di] },
	})
	if opts.DownsampleRatio > 0 {
		train = dataset.Downsample(train, opts.DownsampleRatio, opts.Seed)
	}
	if train.Positives() == 0 {
		return nil, fmt.Errorf("core: no failures in training data; cannot train")
	}
	clf := opts.Factory()
	if err := clf.Fit(train); err != nil {
		return nil, err
	}
	p := &Predictor{Lookahead: opts.Lookahead, model: clf}
	p.initFlat()
	p.ValidationAUC = math.NaN()
	if opts.HoldoutFraction > 0 && opts.HoldoutFraction < 1 {
		test := dataset.Extract(s.Fleet, s.Analysis, dataset.Options{
			Lookahead:          opts.Lookahead,
			Seed:               opts.Seed + 1,
			NegativeSampleProb: 0.25,
			AgeMax:             -1,
			IncludeDrive:       func(di int) bool { return holdout[di] },
		})
		if test.Positives() > 0 {
			p.ValidationAUC = eval.AUC(ml.ScoreBatch(clf, test), test.Y)
		}
	}
	return p, nil
}

// ScoreRecord scores one daily report (higher = more failure-prone).
func (p *Predictor) ScoreRecord(r, prev *trace.DayRecord) float64 {
	m := &dataset.Matrix{}
	m.AppendFeatureRow(r, prev)
	return p.model.Score(m.Row(0))
}

// ScoreInto scores one daily report like ScoreRecord but reuses the
// caller's scratch matrix, so batch-scoring loops (e.g. the serving
// daemon's fleet scorer) allocate per worker instead of per drive. The
// scratch matrix is reset first and must not be shared across
// goroutines.
func (p *Predictor) ScoreInto(scratch *dataset.Matrix, r, prev *trace.DayRecord) float64 {
	scratch.Reset()
	scratch.AppendFeatureRow(r, prev)
	row := scratch.Row(0)
	if p.flat != nil && p.flat.Width() <= len(row) {
		return p.flat.Score(row)
	}
	return p.model.Score(row)
}

// ScoreMatrix scores every row of m into out, which must have length
// m.Len(). Forest models take the flattened block path (bit-identical
// to per-row Score, allocation-free); other models fall back to
// row-by-row scoring.
func (p *Predictor) ScoreMatrix(m *dataset.Matrix, out []float64) {
	if p.flat != nil && p.flat.Width() <= m.W() {
		p.flat.ScoreRows(m.X, m.W(), out)
		return
	}
	for i := range out {
		out[i] = p.model.Score(m.Row(i))
	}
}

// ScoreDrive scores a drive's most recent report, or returns 0 when the
// drive has no records.
func (p *Predictor) ScoreDrive(d *trace.Drive) float64 {
	n := len(d.Days)
	if n == 0 {
		return 0
	}
	var prev *trace.DayRecord
	if n > 1 {
		prev = &d.Days[n-2]
	}
	return p.ScoreRecord(&d.Days[n-1], prev)
}

// Encode serializes a trained predictor to the byte format Save writes
// and DecodePredictor reads, for callers that install models without
// touching disk first (the continuous-learning trainer hashes and
// atomically publishes these bytes). Only predictors whose underlying
// model supports binary marshaling (the default random forest does) can
// be encoded.
func (p *Predictor) Encode() ([]byte, error) {
	m, ok := p.model.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("core: %s does not support serialization", p.model.Name())
	}
	data, err := m.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var buf []byte
	buf = append(buf, "SSDP"...)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(p.Lookahead))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(data)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, data...)
	return buf, nil
}

// Save writes a trained predictor to disk in the Encode format.
func (p *Predictor) Save(path string) error {
	buf, err := p.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// TrainPredictorOnMatrix fits a predictor directly on a prepared
// training matrix. It is the classifier half of TrainPredictor for
// callers that own their extraction and evaluation pipeline — the
// continuous-learning trainer builds matrices through the expgrid
// feature-matrix cache and partitions holdout drives itself, so it
// needs fit + wrap without the study-level extraction. The returned
// predictor's ValidationAUC is NaN; evaluation is the caller's job.
func TrainPredictorOnMatrix(train *dataset.Matrix, opts PredictorOptions) (*Predictor, error) {
	if opts.Lookahead <= 0 {
		opts.Lookahead = 1
	}
	if opts.Factory == nil {
		cfg := forest.DefaultConfig()
		cfg.Seed = opts.Seed
		cfg.Workers = opts.Workers
		opts.Factory = forest.NewFactory(cfg)
	}
	if train.Positives() == 0 {
		return nil, fmt.Errorf("core: no failures in training data; cannot train")
	}
	clf := opts.Factory()
	if err := clf.Fit(train); err != nil {
		return nil, err
	}
	p := &Predictor{Lookahead: opts.Lookahead, ValidationAUC: math.NaN(), model: clf}
	p.initFlat()
	return p, nil
}

// LoadPredictor reads a predictor saved by Save. The model is restored
// as a random forest.
func LoadPredictor(path string) (*Predictor, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodePredictor(data)
}

// DecodePredictor parses a predictor from the byte format written by
// Save. The whole buffer must be consumed: trailing garbage is
// rejected, since the daemon loads these bytes from untrusted disk
// state at runtime.
func DecodePredictor(data []byte) (*Predictor, error) {
	if len(data) < 12 || string(data[:4]) != "SSDP" {
		return nil, fmt.Errorf("core: not a predictor file")
	}
	lookahead := int(binary.LittleEndian.Uint32(data[4:8]))
	n := int(binary.LittleEndian.Uint32(data[8:12]))
	if n < 0 || 12+n != len(data) {
		return nil, fmt.Errorf("core: predictor payload length %d does not match file size %d", n, len(data))
	}
	if lookahead < 1 {
		return nil, fmt.Errorf("core: invalid lookahead %d", lookahead)
	}
	f := forest.New(forest.DefaultConfig())
	if err := f.UnmarshalBinary(data[12 : 12+n]); err != nil {
		return nil, err
	}
	p := &Predictor{Lookahead: lookahead, ValidationAUC: math.NaN(), model: f}
	p.initFlat()
	return p, nil
}

// ModelName returns the name of the underlying classifier.
func (p *Predictor) ModelName() string { return p.model.Name() }

// FeatureWidth returns the feature-vector width the underlying model
// expects, or 0 when the model does not report one. Callers that build
// feature rows themselves (e.g. the serving daemon) use this to refuse
// models whose width does not match their pipeline instead of panicking
// at score time.
func (p *Predictor) FeatureWidth() int {
	if w, ok := p.model.(interface{ Width() int }); ok {
		return w.Width()
	}
	return 0
}

// WatchItem is one entry of a fleet watchlist.
type WatchItem struct {
	DriveIdx int
	DriveID  uint32
	Model    trace.Model
	Score    float64
	Age      int32
}

// Watchlist scores the latest report of every live drive (drives whose
// last report is at or after sinceDay) and returns the top K by score,
// descending. This is the paper's proactive-management use case: the
// returned drives are candidates for early replacement or data
// migration.
func (p *Predictor) Watchlist(s *Study, sinceDay int32, k int) []WatchItem {
	var items []WatchItem
	for di := range s.Fleet.Drives {
		d := &s.Fleet.Drives[di]
		last := d.Last()
		if last == nil || last.Day < sinceDay {
			continue
		}
		items = append(items, WatchItem{
			DriveIdx: di,
			DriveID:  d.ID,
			Model:    d.Model,
			Score:    p.ScoreDrive(d),
			Age:      last.Age,
		})
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].Score != items[b].Score {
			return items[a].Score > items[b].Score
		}
		return items[a].DriveID < items[b].DriveID
	})
	if k > 0 && len(items) > k {
		items = items[:k]
	}
	return items
}
