package core

import (
	"bytes"
	"math"
	"path/filepath"
	"sync"
	"testing"

	"ssdfail/internal/ml/knn"
	"ssdfail/internal/ml/tree"
	"ssdfail/internal/trace"
)

var (
	studyOnce sync.Once
	study     *Study
	studyErr  error
)

func getStudy(t *testing.T) *Study {
	t.Helper()
	studyOnce.Do(func() {
		study, studyErr = GenerateStudy(5, 120)
	})
	if studyErr != nil {
		t.Fatal(studyErr)
	}
	return study
}

func TestGenerateStudy(t *testing.T) {
	s := getStudy(t)
	if len(s.Fleet.Drives) != 360 {
		t.Fatalf("drives = %d", len(s.Fleet.Drives))
	}
	if s.Analysis == nil || len(s.Analysis.Events) == 0 {
		t.Fatal("no failures reconstructed")
	}
}

func TestSummarize(t *testing.T) {
	s := getStudy(t)
	sum := s.Summarize()
	if sum.Drives != 360 || sum.DriveDays == 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.FailedPct < 2 || sum.FailedPct > 25 {
		t.Errorf("failed pct = %.2f", sum.FailedPct)
	}
	if sum.InfantPct < 5 || sum.InfantPct > 60 {
		t.Errorf("infant pct = %.2f", sum.InfantPct)
	}
	if sum.Failures < sum.FailedDrives {
		t.Error("failures < failed drives")
	}
	if sum.Repaired > sum.Failures {
		t.Error("repaired > failures")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := getStudy(t)
	path := filepath.Join(t.TempDir(), "fleet.bin")
	if err := s.SaveFleet(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStudy(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Fleet.Drives) != len(s.Fleet.Drives) {
		t.Fatal("loaded drive count differs")
	}
	if len(loaded.Analysis.Events) != len(s.Analysis.Events) {
		t.Fatal("loaded analysis differs")
	}
}

func TestLoadStudyMissingFile(t *testing.T) {
	if _, err := LoadStudy("/nonexistent/fleet.bin"); err == nil {
		t.Error("LoadStudy should fail on missing file")
	}
}

func TestReadStudyRejectsGarbage(t *testing.T) {
	if _, err := ReadStudy(bytes.NewBufferString("garbage")); err == nil {
		t.Error("ReadStudy should reject garbage")
	}
}

func TestTrainPredictorWithHoldout(t *testing.T) {
	s := getStudy(t)
	p, err := s.TrainPredictor(PredictorOptions{
		Lookahead:       1,
		Seed:            3,
		HoldoutFraction: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Lookahead != 1 {
		t.Errorf("lookahead = %d", p.Lookahead)
	}
	if math.IsNaN(p.ValidationAUC) {
		t.Fatal("expected a validation AUC with holdout")
	}
	if p.ValidationAUC < 0.6 {
		t.Errorf("validation AUC = %.3f, want >= 0.6", p.ValidationAUC)
	}
}

func TestTrainPredictorNoHoldout(t *testing.T) {
	s := getStudy(t)
	p, err := s.TrainPredictor(PredictorOptions{
		Seed:    4,
		Factory: tree.NewFactory(tree.DefaultConfig()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(p.ValidationAUC) {
		t.Error("without holdout the validation AUC should be NaN")
	}
}

func TestScoreDrive(t *testing.T) {
	s := getStudy(t)
	p, err := s.TrainPredictor(PredictorOptions{Seed: 5,
		Factory: tree.NewFactory(tree.DefaultConfig())})
	if err != nil {
		t.Fatal(err)
	}
	scored := 0
	for di := range s.Fleet.Drives {
		d := &s.Fleet.Drives[di]
		if len(d.Days) == 0 {
			continue
		}
		v := p.ScoreDrive(d)
		if v < 0 || v > 1 {
			t.Fatalf("score %v outside [0,1]", v)
		}
		scored++
		if scored > 50 {
			break
		}
	}
	var empty trace.Drive
	if p.ScoreDrive(&empty) != 0 {
		t.Error("empty drive should score 0")
	}
}

func TestWatchlist(t *testing.T) {
	s := getStudy(t)
	p, err := s.TrainPredictor(PredictorOptions{Seed: 6,
		Factory: tree.NewFactory(tree.DefaultConfig())})
	if err != nil {
		t.Fatal(err)
	}
	watch := p.Watchlist(s, 0, 10)
	if len(watch) != 10 {
		t.Fatalf("watchlist size = %d", len(watch))
	}
	for i := 1; i < len(watch); i++ {
		if watch[i].Score > watch[i-1].Score {
			t.Fatal("watchlist not sorted by score")
		}
	}
	// sinceDay beyond the horizon filters everything.
	if got := p.Watchlist(s, s.Fleet.Horizon+1, 10); len(got) != 0 {
		t.Errorf("future watchlist should be empty, got %d", len(got))
	}
	// k = 0 returns all live drives.
	all := p.Watchlist(s, 0, 0)
	if len(all) == 0 || len(all) < len(watch) {
		t.Errorf("unbounded watchlist = %d entries", len(all))
	}
}

func TestPredictorSaveLoad(t *testing.T) {
	s := getStudy(t)
	p, err := s.TrainPredictor(PredictorOptions{Lookahead: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "predictor.bin")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPredictor(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Lookahead != 2 {
		t.Errorf("lookahead = %d", loaded.Lookahead)
	}
	// Scores must match the original exactly.
	for di := 0; di < 30; di++ {
		d := &s.Fleet.Drives[di]
		if len(d.Days) == 0 {
			continue
		}
		if p.ScoreDrive(d) != loaded.ScoreDrive(d) {
			t.Fatalf("drive %d scores differ after reload", d.ID)
		}
	}
	if _, err := LoadPredictor(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Error("missing file should error")
	}
}

func TestPredictorSaveUnsupportedModel(t *testing.T) {
	s := getStudy(t)
	// k-NN has no binary marshaling; Save must refuse cleanly.
	p, err := s.TrainPredictor(PredictorOptions{Seed: 9,
		Factory: knn.NewFactory(knn.Config{K: 3})})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Save(filepath.Join(t.TempDir(), "x.bin")); err == nil {
		t.Error("saving a k-NN predictor should error")
	}
}

func TestTrainPredictorErrorOnNoFailures(t *testing.T) {
	f := &trace.Fleet{Horizon: 100}
	f.Drives = append(f.Drives, trace.Drive{ID: 1, Model: trace.MLCA,
		Days: []trace.DayRecord{{Day: 1, Reads: 5, Writes: 5}}})
	s := NewStudy(f)
	if _, err := s.TrainPredictor(PredictorOptions{}); err == nil {
		t.Error("training without failures should error")
	}
}
