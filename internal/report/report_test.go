package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "Table X: demo",
		Columns: []string{"Model", "AUC"},
	}
	tbl.AddRow("MLC-A", "0.905")
	tbl.AddRow("MLC-B", "0.900")
	tbl.Notes = append(tbl.Notes, "demo note")
	out := tbl.String()
	for _, want := range []string{"Table X: demo", "Model", "AUC", "MLC-A", "0.905", "note: demo note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestTableAlignment(t *testing.T) {
	tbl := &Table{Columns: []string{"name", "v"}}
	tbl.AddRow("a", "1.5")
	tbl.AddRow("longer", "10.25")
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// All lines should have equal or shorter width than the header line
	// plus padding; numeric column right-aligned means "1.5" is indented.
	if !strings.Contains(lines[2], "  1.5") && !strings.Contains(lines[2], "   1.5") {
		t.Errorf("numeric cell not right-aligned:\n%s", out)
	}
}

func TestLooksNumeric(t *testing.T) {
	yes := []string{"1", "0.905", "-3.2", "1e-5", "95%", "0.905 ± 0.008", "∞", "17.4 (2.61)"}
	no := []string{"", "MLC-A", "drive age", "N/A"}
	for _, s := range yes {
		if !looksNumeric(s) {
			t.Errorf("looksNumeric(%q) = false", s)
		}
	}
	for _, s := range no {
		if looksNumeric(s) {
			t.Errorf("looksNumeric(%q) = true", s)
		}
	}
}

func TestF(t *testing.T) {
	if got := F(1.23456, 3); got != "1.235" {
		t.Errorf("F = %q", got)
	}
	if got := F(math.NaN(), 2); got != "-" {
		t.Errorf("F(NaN) = %q", got)
	}
	if got := F(math.Inf(1), 2); got != "∞" {
		t.Errorf("F(+Inf) = %q", got)
	}
	if got := F(math.Inf(-1), 2); got != "-∞" {
		t.Errorf("F(-Inf) = %q", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.143, 1); got != "14.3%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(math.NaN(), 1); got != "-" {
		t.Errorf("Pct(NaN) = %q", got)
	}
}

func TestPlotRender(t *testing.T) {
	p := &Plot{
		Title:  "Figure X",
		XLabel: "days",
		YLabel: "cdf",
		Series: []Series{
			{Name: "young", X: []float64{1, 2, 3}, Y: []float64{0.1, 0.5, 0.9}},
			{Name: "old", X: []float64{1, 2, 3}, Y: []float64{0.2, 0.4, 0.6}},
		},
	}
	var b strings.Builder
	p.Render(&b, 40, 10)
	out := b.String()
	for _, want := range []string{"Figure X", "young", "old", "*", "o", "x: days"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
}

func TestPlotLogXSkipsNonPositive(t *testing.T) {
	p := &Plot{
		LogX: true,
		Series: []Series{
			{Name: "s", X: []float64{0, 1, 10, 100}, Y: []float64{0.5, 0.1, 0.5, 0.9}},
		},
	}
	var b strings.Builder
	p.Render(&b, 40, 8) // must not panic on x=0
	if !strings.Contains(b.String(), "*") {
		t.Error("log plot rendered no points")
	}
}

func TestPlotEmpty(t *testing.T) {
	p := &Plot{Title: "empty"}
	out := p.String()
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty plot output: %q", out)
	}
}

func TestPlotNaNSkipped(t *testing.T) {
	p := &Plot{Series: []Series{{Name: "s", X: []float64{1, 2}, Y: []float64{math.NaN(), 0.5}}}}
	out := p.String()
	// One plotted point plus one legend marker.
	if strings.Count(out, "*") != 2 {
		t.Errorf("NaN point should be skipped:\n%s", out)
	}
}

func TestPlotConstantSeries(t *testing.T) {
	p := &Plot{Series: []Series{{Name: "s", X: []float64{5, 5}, Y: []float64{1, 1}}}}
	// Degenerate ranges must not divide by zero.
	_ = p.String()
}
