// Package report renders experiment results as aligned ASCII tables and
// terminal line plots, so every table and figure of the paper can be
// regenerated as text by the command-line tools and the benchmarks.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string // free-form footnotes rendered under the table
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table to w with aligned columns.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			// Right-align numeric-looking cells, left-align the rest.
			if looksNumeric(cell) {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(cell)
			} else {
				b.WriteString(cell)
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if total > 2 {
		fmt.Fprintln(w, strings.Repeat("-", total-2))
	}
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintln(w, "  note: "+n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func looksNumeric(s string) bool {
	if s == "" {
		return false
	}
	digits := 0
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
			digits++
		case strings.ContainsRune(".-+eE%±() ", r):
		case r == '∞':
			digits++
		default:
			return false
		}
	}
	return digits > 0
}

// F formats a float with the given precision, rendering NaN as "-" and
// infinities as "∞".
func F(v float64, prec int) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case math.IsInf(v, 1):
		return "∞"
	case math.IsInf(v, -1):
		return "-∞"
	}
	return fmt.Sprintf("%.*f", prec, v)
}

// Pct formats a fraction as a percentage with the given precision.
func Pct(v float64, prec int) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.*f%%", prec, 100*v)
}

// Series is one named line for plotting.
type Series struct {
	Name string
	X, Y []float64
}

// Plot is a titled collection of series with axis labels.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	Series []Series
}

var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the plot as ASCII art of the given size. NaN points are
// skipped; with LogX, non-positive x values are skipped.
func (p *Plot) Render(w io.Writer, width, height int) {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	// Determine data ranges.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	tx := func(x float64) float64 {
		if p.LogX {
			return math.Log10(x)
		}
		return x
	}
	for _, s := range p.Series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			if p.LogX && x <= 0 {
				continue
			}
			x = tx(x)
			if x < xmin {
				xmin = x
			}
			if x > xmax {
				xmax = x
			}
			if y < ymin {
				ymin = y
			}
			if y > ymax {
				ymax = y
			}
		}
	}
	if p.Title != "" {
		fmt.Fprintln(w, p.Title)
	}
	if xmin > xmax || ymin > ymax {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range p.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			if p.LogX && x <= 0 {
				continue
			}
			cx := int((tx(x) - xmin) / (xmax - xmin) * float64(width-1))
			cy := int((y - ymin) / (ymax - ymin) * float64(height-1))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				grid[row][cx] = mark
			}
		}
	}
	for r, rowBytes := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%7.3g ", ymax)
		} else if r == height-1 {
			label = fmt.Sprintf("%7.3g ", ymin)
		}
		fmt.Fprintf(w, "%s|%s|\n", label, string(rowBytes))
	}
	lo, hi := xmin, xmax
	if p.LogX {
		lo, hi = math.Pow(10, xmin), math.Pow(10, xmax)
	}
	fmt.Fprintf(w, "        %-*.4g%*.4g\n", width/2, lo, width-width/2, hi)
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(w, "        x: %s   y: %s\n", p.XLabel, p.YLabel)
	}
	for si, s := range p.Series {
		fmt.Fprintf(w, "        %c %s\n", seriesMarks[si%len(seriesMarks)], s.Name)
	}
}

// String renders the plot to a string at a default size.
func (p *Plot) String() string {
	var b strings.Builder
	p.Render(&b, 64, 16)
	return b.String()
}
