// Package mltest provides shared fixtures for testing the classifiers:
// synthetic Gaussian-blob datasets over the real feature space and a
// reference AUC implementation.
package mltest

import (
	"sort"

	"ssdfail/internal/dataset"
	"ssdfail/internal/fleetsim"
)

// TwoBlobs builds a binary dataset of 2n rows: positives centered at
// +sep/2 and negatives at -sep/2 along the first three features, with
// unit Gaussian noise on every feature. Larger sep means easier.
func TwoBlobs(n int, sep float64, seed uint64) *dataset.Matrix {
	rng := fleetsim.NewRNG(seed)
	m := &dataset.Matrix{}
	for i := 0; i < 2*n; i++ {
		label := int8(i % 2)
		center := -sep / 2
		if label == 1 {
			center = sep / 2
		}
		base := len(m.X)
		m.X = append(m.X, make([]float64, dataset.NumFeatures)...)
		row := m.X[base : base+dataset.NumFeatures]
		for f := range row {
			row[f] = rng.NormFloat64()
			if f < 3 {
				row[f] += center
			}
		}
		m.Y = append(m.Y, label)
		m.DriveIdx = append(m.DriveIdx, int32(i))
		m.Day = append(m.Day, int32(i))
		m.Age = append(m.Age, int32(i))
	}
	return m
}

// XOR builds a dataset that is not linearly separable: the label is the
// XOR of the signs of the first two features. Only the first six
// features carry noise (the rest are constant) so the test exercises
// nonlinearity rather than the curse of dimensionality — greedy trees
// and distance-based methods legitimately fail XOR when it is buried in
// thirty noise dimensions. Nonlinear models should beat 0.5 AUC
// comfortably; linear ones cannot.
func XOR(n int, seed uint64) *dataset.Matrix {
	rng := fleetsim.NewRNG(seed)
	m := &dataset.Matrix{}
	for i := 0; i < n; i++ {
		base := len(m.X)
		m.X = append(m.X, make([]float64, dataset.NumFeatures)...)
		row := m.X[base : base+dataset.NumFeatures]
		for f := 0; f < 6; f++ {
			row[f] = rng.NormFloat64()
		}
		label := int8(0)
		if (row[0] > 0) != (row[1] > 0) {
			label = 1
		}
		m.Y = append(m.Y, label)
		m.DriveIdx = append(m.DriveIdx, int32(i))
		m.Day = append(m.Day, int32(i))
		m.Age = append(m.Age, int32(i))
	}
	return m
}

// Band builds a nonlinear but axis-aligned dataset: the label is 1 when
// the first feature lies in (-0.7, 0.7). Not linearly separable, but a
// greedy tree captures it with two splits; a fair test of nonlinearity
// for CART-style models, which legitimately struggle on XOR.
func Band(n int, seed uint64) *dataset.Matrix {
	rng := fleetsim.NewRNG(seed)
	m := &dataset.Matrix{}
	for i := 0; i < n; i++ {
		base := len(m.X)
		m.X = append(m.X, make([]float64, dataset.NumFeatures)...)
		row := m.X[base : base+dataset.NumFeatures]
		for f := 0; f < 6; f++ {
			row[f] = rng.NormFloat64()
		}
		label := int8(0)
		if row[0] > -0.7 && row[0] < 0.7 {
			label = 1
		}
		m.Y = append(m.Y, label)
		m.DriveIdx = append(m.DriveIdx, int32(i))
		m.Day = append(m.Day, int32(i))
		m.Age = append(m.Age, int32(i))
	}
	return m
}

// AUC computes the area under the ROC curve by the rank (Mann-Whitney)
// method with midrank tie handling. It is the reference implementation
// the eval package is tested against.
func AUC(scores []float64, y []int8) float64 {
	type pair struct {
		s float64
		y int8
	}
	ps := make([]pair, len(scores))
	for i := range scores {
		ps[i] = pair{scores[i], y[i]}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].s < ps[b].s })
	var rankSumPos float64
	var nPos, nNeg float64
	i := 0
	for i < len(ps) {
		j := i
		for j+1 < len(ps) && ps[j+1].s == ps[i].s {
			j++
		}
		midrank := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			if ps[k].y == 1 {
				rankSumPos += midrank
				nPos++
			} else {
				nNeg++
			}
		}
		i = j + 1
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	return (rankSumPos - nPos*(nPos+1)/2) / (nPos * nNeg)
}
