package neuralnet

import (
	"testing"

	"ssdfail/internal/dataset"
	"ssdfail/internal/ml/mltest"
)

func TestLearnsSeparableBlobs(t *testing.T) {
	train := mltest.TwoBlobs(300, 3, 1)
	test := mltest.TwoBlobs(150, 3, 2)
	m := New(DefaultConfig())
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, test.Len())
	for i := range scores {
		scores[i] = m.Score(test.Row(i))
	}
	if auc := mltest.AUC(scores, test.Y); auc < 0.95 {
		t.Errorf("AUC = %.3f, want >= 0.95", auc)
	}
}

func TestHandlesNonlinearXOR(t *testing.T) {
	train := mltest.XOR(1000, 1)
	test := mltest.XOR(400, 2)
	cfg := DefaultConfig()
	cfg.Epochs = 150
	m := New(cfg)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, test.Len())
	for i := range scores {
		scores[i] = m.Score(test.Row(i))
	}
	if auc := mltest.AUC(scores, test.Y); auc < 0.80 {
		t.Errorf("XOR AUC = %.3f; an MLP should solve XOR", auc)
	}
}

func TestScoreRange(t *testing.T) {
	train := mltest.TwoBlobs(100, 2, 3)
	m := New(DefaultConfig())
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < train.Len(); i++ {
		if s := m.Score(train.Row(i)); s < 0 || s > 1 {
			t.Fatalf("score %v outside [0,1]", s)
		}
	}
}

func TestEmptyTrainingSetErrors(t *testing.T) {
	m := New(DefaultConfig())
	if err := m.Fit(&dataset.Matrix{}); err == nil {
		t.Error("Fit on empty set should error")
	}
	if s := m.Score(make([]float64, dataset.NumFeatures)); s != 0.5 {
		t.Errorf("untrained Score = %v", s)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	train := mltest.TwoBlobs(120, 2, 4)
	cfg := DefaultConfig()
	cfg.Epochs = 10
	a, b := New(cfg), New(cfg)
	if err := a.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(train); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if a.Score(train.Row(i)) != b.Score(train.Row(i)) {
			t.Fatal("same-seed networks disagree")
		}
	}
}

func TestSingleHiddenLayer(t *testing.T) {
	train := mltest.TwoBlobs(200, 3, 5)
	m := New(Config{Hidden: []int{8}, LearnRate: 3e-3, Epochs: 40, BatchSize: 32, Seed: 1})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, train.Len())
	for i := range scores {
		scores[i] = m.Score(train.Row(i))
	}
	if auc := mltest.AUC(scores, train.Y); auc < 0.9 {
		t.Errorf("single-hidden-layer train AUC = %.3f", auc)
	}
}
