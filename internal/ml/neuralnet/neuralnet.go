// Package neuralnet implements a small multilayer perceptron for binary
// classification: fully connected layers with ReLU activations, a
// logistic output, binary cross-entropy loss, and Adam optimization.
package neuralnet

import (
	"errors"
	"math"

	"ssdfail/internal/dataset"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/ml"
)

// Config holds the MLP hyperparameters. Hidden layer sizes are the knob
// the paper reports tuning by grid search.
type Config struct {
	Hidden    []int // hidden layer widths, e.g. {32, 16}
	LearnRate float64
	Epochs    int
	BatchSize int
	L2        float64
	Seed      uint64
}

// DefaultConfig returns the configuration used by the Table 6 harness.
func DefaultConfig() Config {
	return Config{Hidden: []int{32, 16}, LearnRate: 3e-3, Epochs: 80, BatchSize: 32, L2: 1e-4, Seed: 1}
}

// layer is one dense layer with Adam state.
type layer struct {
	in, out int
	w       []float64 // out x in, row-major
	b       []float64
	// Adam moments.
	mw, vw []float64
	mb, vb []float64
}

func newLayer(in, out int, rng *fleetsim.RNG) *layer {
	l := &layer{
		in: in, out: out,
		w: make([]float64, in*out), b: make([]float64, out),
		mw: make([]float64, in*out), vw: make([]float64, in*out),
		mb: make([]float64, out), vb: make([]float64, out),
	}
	// He initialization for ReLU layers.
	scale := math.Sqrt(2 / float64(in))
	for i := range l.w {
		l.w[i] = rng.NormFloat64() * scale
	}
	return l
}

// Model is a trained MLP.
type Model struct {
	cfg    Config
	scaler *dataset.Scaler
	layers []*layer
}

// New returns an untrained model.
func New(cfg Config) *Model { return &Model{cfg: cfg} }

// NewFactory adapts New to the harness Factory signature.
func NewFactory(cfg Config) ml.Factory {
	return func() ml.Classifier { return New(cfg) }
}

// Name implements ml.Classifier.
func (m *Model) Name() string { return "Neural Network" }

// forwardBuffers holds per-layer activations and deltas for one pass.
type forwardBuffers struct {
	acts   [][]float64 // acts[0] is the input; acts[L] pre-output
	deltas [][]float64
}

func (m *Model) newBuffers() *forwardBuffers {
	fb := &forwardBuffers{}
	in := dataset.NumFeatures
	if len(m.layers) > 0 {
		in = m.layers[0].in
	}
	fb.acts = append(fb.acts, make([]float64, in))
	for _, l := range m.layers {
		fb.acts = append(fb.acts, make([]float64, l.out))
		fb.deltas = append(fb.deltas, make([]float64, l.out))
	}
	return fb
}

// forward runs the network on fb.acts[0], filling activations; the final
// activation (single unit) is returned as a probability.
func (m *Model) forward(fb *forwardBuffers) float64 {
	for li, l := range m.layers {
		in := fb.acts[li]
		out := fb.acts[li+1]
		last := li == len(m.layers)-1
		for o := 0; o < l.out; o++ {
			s := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i, v := range in {
				s += row[i] * v
			}
			if !last && s < 0 {
				s = 0 // ReLU on hidden layers
			}
			out[o] = s
		}
	}
	return ml.Sigmoid(fb.acts[len(m.layers)][0])
}

// Fit implements ml.Classifier.
func (m *Model) Fit(data *dataset.Matrix) error {
	n := data.Len()
	if n == 0 {
		return errors.New("neuralnet: empty training set")
	}
	m.scaler = dataset.FitScaler(data)
	scaled := m.scaler.Apply(data)

	rng := fleetsim.NewRNG(m.cfg.Seed ^ 0x4e7)
	sizes := append([]int{data.W()}, m.cfg.Hidden...)
	sizes = append(sizes, 1)
	m.layers = nil
	for i := 0; i+1 < len(sizes); i++ {
		m.layers = append(m.layers, newLayer(sizes[i], sizes[i+1], rng))
	}

	fb := m.newBuffers()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	bs := m.cfg.BatchSize
	if bs <= 0 {
		bs = 32
	}
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	step := 0
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		for i := n - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for start := 0; start < n; start += bs {
			end := start + bs
			if end > n {
				end = n
			}
			// Accumulate gradients over the mini-batch.
			gw := make([][]float64, len(m.layers))
			gb := make([][]float64, len(m.layers))
			for li, l := range m.layers {
				gw[li] = make([]float64, len(l.w))
				gb[li] = make([]float64, len(l.b))
			}
			for _, idx := range order[start:end] {
				copy(fb.acts[0], scaled.Row(idx))
				p := m.forward(fb)
				// Output delta for BCE + sigmoid.
				fb.deltas[len(m.layers)-1][0] = p - float64(scaled.Y[idx])
				// Backpropagate.
				for li := len(m.layers) - 1; li >= 0; li-- {
					l := m.layers[li]
					delta := fb.deltas[li]
					in := fb.acts[li]
					for o := 0; o < l.out; o++ {
						d := delta[o]
						if d == 0 {
							continue
						}
						gb[li][o] += d
						row := gw[li][o*l.in : (o+1)*l.in]
						for i2, v := range in {
							row[i2] += d * v
						}
					}
					if li > 0 {
						prev := fb.deltas[li-1]
						act := fb.acts[li]
						for i2 := range prev {
							var s float64
							for o := 0; o < l.out; o++ {
								s += l.w[o*l.in+i2] * delta[o]
							}
							if act[i2] <= 0 { // ReLU derivative
								s = 0
							}
							prev[i2] = s
						}
					}
				}
			}
			// Adam update.
			step++
			lr := m.cfg.LearnRate
			bc1 := 1 - math.Pow(beta1, float64(step))
			bc2 := 1 - math.Pow(beta2, float64(step))
			inv := 1 / float64(end-start)
			for li, l := range m.layers {
				for i2 := range l.w {
					g := gw[li][i2]*inv + m.cfg.L2*l.w[i2]
					l.mw[i2] = beta1*l.mw[i2] + (1-beta1)*g
					l.vw[i2] = beta2*l.vw[i2] + (1-beta2)*g*g
					l.w[i2] -= lr * (l.mw[i2] / bc1) / (math.Sqrt(l.vw[i2]/bc2) + eps)
				}
				for o := range l.b {
					g := gb[li][o] * inv
					l.mb[o] = beta1*l.mb[o] + (1-beta1)*g
					l.vb[o] = beta2*l.vb[o] + (1-beta2)*g*g
					l.b[o] -= lr * (l.mb[o] / bc1) / (math.Sqrt(l.vb[o]/bc2) + eps)
				}
			}
		}
	}
	return nil
}

// Score implements ml.Classifier.
func (m *Model) Score(x []float64) float64 {
	if m.layers == nil {
		return 0.5
	}
	fb := m.newBuffers()
	copy(fb.acts[0], x)
	m.scaler.Transform(fb.acts[0])
	return m.forward(fb)
}
