package ml_test

import (
	"math"
	"testing"

	"ssdfail/internal/ml"
	"ssdfail/internal/ml/mltest"
)

func TestDot(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := ml.Dot(a, b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := ml.Dot(nil, nil); got != 0 {
		t.Errorf("Dot(nil) = %v", got)
	}
}

func TestSigmoid(t *testing.T) {
	if got := ml.Sigmoid(0); got != 0.5 {
		t.Errorf("Sigmoid(0) = %v", got)
	}
	if got := ml.Sigmoid(100); got != 1 {
		t.Errorf("Sigmoid(100) = %v", got)
	}
	if got := ml.Sigmoid(-100); got != 0 {
		t.Errorf("Sigmoid(-100) = %v", got)
	}
	if got := ml.Sigmoid(2); math.Abs(got-1/(1+math.Exp(-2))) > 1e-12 {
		t.Errorf("Sigmoid(2) = %v", got)
	}
	// Monotonicity.
	prev := 0.0
	for z := -10.0; z <= 10; z += 0.5 {
		v := ml.Sigmoid(z)
		if v < prev {
			t.Fatalf("sigmoid not monotone at %v", z)
		}
		prev = v
	}
}

func TestMltestAUC(t *testing.T) {
	// Perfect ranking.
	if got := mltest.AUC([]float64{0.1, 0.9, 0.2, 0.8}, []int8{0, 1, 0, 1}); got != 1 {
		t.Errorf("perfect AUC = %v", got)
	}
	// Inverted ranking.
	if got := mltest.AUC([]float64{0.9, 0.1}, []int8{0, 1}); got != 0 {
		t.Errorf("inverted AUC = %v", got)
	}
	// All ties -> 0.5.
	if got := mltest.AUC([]float64{0.5, 0.5, 0.5, 0.5}, []int8{0, 1, 0, 1}); got != 0.5 {
		t.Errorf("tied AUC = %v", got)
	}
	// Degenerate single-class input.
	if got := mltest.AUC([]float64{0.5, 0.7}, []int8{1, 1}); got != 0.5 {
		t.Errorf("single-class AUC = %v", got)
	}
}

func TestTwoBlobsShape(t *testing.T) {
	m := mltest.TwoBlobs(50, 2, 1)
	if m.Len() != 100 {
		t.Fatalf("len = %d", m.Len())
	}
	if p := m.Positives(); p != 50 {
		t.Fatalf("positives = %d", p)
	}
}

func TestXORBalance(t *testing.T) {
	m := mltest.XOR(400, 2)
	p := m.Positives()
	if p < 140 || p > 260 {
		t.Fatalf("XOR positives = %d, want ~200", p)
	}
}
