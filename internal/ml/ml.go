// Package ml defines the common classifier interface shared by the six
// prediction models the paper compares (Table 6): logistic regression,
// k-nearest neighbors, support vector machine, neural network, decision
// tree, and random forest. All are implemented from scratch on the
// standard library; subpackages hold the individual models.
package ml

import (
	"math"

	"ssdfail/internal/dataset"
)

// Classifier is a binary classifier producing a continuous failure score.
type Classifier interface {
	// Name returns a short display name ("Random Forest").
	Name() string
	// Fit trains on the given matrix. Implementations must not retain
	// the matrix beyond what their model structure requires.
	Fit(m *dataset.Matrix) error
	// Score returns the estimated probability (or a monotone surrogate)
	// that the row is a positive, in [0, 1]. The input must have
	// dataset.NumFeatures entries and be in the original feature space;
	// models that need standardization handle it internally.
	Score(x []float64) float64
}

// Factory constructs a fresh, untrained classifier; the evaluation
// harness uses factories so each cross-validation fold trains a new
// model.
type Factory func() Classifier

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Sigmoid is the logistic function with guarded tails.
func Sigmoid(z float64) float64 {
	switch {
	case z > 35:
		return 1
	case z < -35:
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}

// ScoreBatch scores every row of a matrix.
func ScoreBatch(c Classifier, m *dataset.Matrix) []float64 {
	out := make([]float64, m.Len())
	for i := range out {
		out[i] = c.Score(m.Row(i))
	}
	return out
}
