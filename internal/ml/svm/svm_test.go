package svm

import (
	"testing"

	"ssdfail/internal/dataset"
	"ssdfail/internal/ml/mltest"
)

func TestLearnsSeparableBlobs(t *testing.T) {
	train := mltest.TwoBlobs(300, 3, 1)
	test := mltest.TwoBlobs(200, 3, 2)
	m := New(DefaultConfig())
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, test.Len())
	for i := range scores {
		scores[i] = m.Score(test.Row(i))
	}
	if auc := mltest.AUC(scores, test.Y); auc < 0.95 {
		t.Errorf("AUC on separable blobs = %.3f, want >= 0.95", auc)
	}
}

func TestScoreRange(t *testing.T) {
	train := mltest.TwoBlobs(100, 2, 3)
	m := New(DefaultConfig())
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < train.Len(); i++ {
		if s := m.Score(train.Row(i)); s < 0 || s > 1 {
			t.Fatalf("score %v outside [0,1]", s)
		}
	}
}

func TestEmptyTrainingSetErrors(t *testing.T) {
	m := New(DefaultConfig())
	if err := m.Fit(&dataset.Matrix{}); err == nil {
		t.Error("Fit on empty set should error")
	}
	if s := m.Score(make([]float64, dataset.NumFeatures)); s != 0.5 {
		t.Errorf("untrained Score = %v", s)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	train := mltest.TwoBlobs(150, 2, 4)
	a, b := New(DefaultConfig()), New(DefaultConfig())
	if err := a.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(train); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		x := train.Row(i)
		if a.Score(x) != b.Score(x) {
			t.Fatal("same-seed models disagree")
		}
	}
}

func TestDefaultLambdaGuard(t *testing.T) {
	// A zero lambda must not divide by zero.
	train := mltest.TwoBlobs(50, 2, 5)
	m := New(Config{Lambda: 0, Epochs: 2, Seed: 1})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
}

func TestFactory(t *testing.T) {
	c := NewFactory(DefaultConfig())()
	if c.Name() != "SVM" {
		t.Errorf("Name = %q", c.Name())
	}
}
