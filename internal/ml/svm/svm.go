// Package svm implements a linear support vector machine trained with
// the Pegasos stochastic sub-gradient algorithm (Shalev-Shwartz et al.).
// Scores are mapped through a logistic link so they land in [0, 1]; the
// mapping is monotone in the margin, which is all ROC analysis needs.
package svm

import (
	"errors"
	"math"

	"ssdfail/internal/dataset"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/ml"
)

// Config holds the SVM hyperparameters.
type Config struct {
	Lambda float64 // regularization (Pegasos lambda)
	Epochs int
	Seed   uint64
}

// DefaultConfig returns the configuration used by the Table 6 harness.
func DefaultConfig() Config {
	return Config{Lambda: 1e-4, Epochs: 40, Seed: 1}
}

// Model is a trained linear SVM.
type Model struct {
	cfg    Config
	scaler *dataset.Scaler
	w      []float64
	b      float64
}

// New returns an untrained model.
func New(cfg Config) *Model { return &Model{cfg: cfg} }

// NewFactory adapts New to the harness Factory signature.
func NewFactory(cfg Config) ml.Factory {
	return func() ml.Classifier { return New(cfg) }
}

// Name implements ml.Classifier.
func (m *Model) Name() string { return "SVM" }

// Fit implements ml.Classifier.
func (m *Model) Fit(data *dataset.Matrix) error {
	n := data.Len()
	if n == 0 {
		return errors.New("svm: empty training set")
	}
	m.scaler = dataset.FitScaler(data)
	scaled := m.scaler.Apply(data)

	m.w = make([]float64, data.W())
	m.b = 0
	rng := fleetsim.NewRNG(m.cfg.Seed ^ 0x57a7e)
	t := 1
	lambda := m.cfg.Lambda
	if lambda <= 0 {
		lambda = 1e-4
	}
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		for step := 0; step < n; step++ {
			i := rng.Intn(n)
			row := scaled.Row(i)
			y := float64(scaled.Y[i])*2 - 1 // {0,1} -> {-1,+1}
			eta := 1 / (lambda * float64(t))
			margin := y * (ml.Dot(m.w, row) + m.b)
			scale := 1 - eta*lambda
			if scale < 0 {
				scale = 0
			}
			for f := range m.w {
				m.w[f] *= scale
			}
			if margin < 1 {
				for f, v := range row {
					m.w[f] += eta * y * v
				}
				m.b += eta * y
			}
			// Pegasos projection onto the ball of radius 1/sqrt(lambda).
			norm := math.Sqrt(ml.Dot(m.w, m.w))
			if limit := 1 / math.Sqrt(lambda); norm > limit {
				shrink := limit / norm
				for f := range m.w {
					m.w[f] *= shrink
				}
			}
			t++
		}
	}
	return nil
}

// Score implements ml.Classifier. The logistic link makes the margin a
// [0,1] score; it is monotone, so ROC/AUC are unaffected by the choice.
func (m *Model) Score(x []float64) float64 {
	if m.w == nil {
		return 0.5
	}
	row := make([]float64, len(x))
	copy(row, x)
	m.scaler.Transform(row)
	return ml.Sigmoid(2 * (ml.Dot(m.w, row) + m.b))
}
