// Package tree implements a CART-style binary decision tree for
// classification with Gini impurity, depth and leaf-size controls, and
// per-feature random candidate subsets (the building block the random
// forest reuses).
package tree

import (
	"errors"
	"sort"

	"ssdfail/internal/dataset"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/ml"
)

// Config holds the tree hyperparameters. The maximum depth is the
// regularization knob the paper reports tuning for its tree models.
type Config struct {
	MaxDepth    int    // 0 = unlimited
	MinLeaf     int    // minimum samples in each child (default 1)
	MinSplit    int    // minimum samples to attempt a split (default 2)
	MaxFeatures int    // candidate features per split; 0 = all
	Seed        uint64 // used only when MaxFeatures narrows the candidates
}

// DefaultConfig returns the configuration used by the Table 6 harness.
func DefaultConfig() Config {
	return Config{MaxDepth: 12, MinLeaf: 3, MinSplit: 6}
}

type node struct {
	feature     int32 // -1 for leaves
	threshold   float64
	left, right int32
	prob        float64 // leaf probability (Laplace-smoothed)
}

// Tree is a trained decision tree.
type Tree struct {
	cfg        Config
	nodes      []node
	importance []float64
	rng        *fleetsim.RNG
	width      int // feature-vector width seen at fit time
}

// New returns an untrained tree.
func New(cfg Config) *Tree { return &Tree{cfg: cfg} }

// NewFactory adapts New to the harness Factory signature.
func NewFactory(cfg Config) ml.Factory {
	return func() ml.Classifier { return New(cfg) }
}

// Name implements ml.Classifier.
func (t *Tree) Name() string { return "Decision Tree" }

// Fit implements ml.Classifier, training on all rows.
func (t *Tree) Fit(m *dataset.Matrix) error {
	rows := make([]int32, m.Len())
	for i := range rows {
		rows[i] = int32(i)
	}
	return t.FitRows(m, rows)
}

// FitRows trains on a subset of rows (with repetition allowed), which is
// how the random forest feeds bootstrap samples to its trees.
func (t *Tree) FitRows(m *dataset.Matrix, rows []int32) error {
	if len(rows) == 0 {
		return errors.New("tree: empty training set")
	}
	t.nodes = t.nodes[:0]
	t.width = m.W()
	t.importance = make([]float64, t.width)
	t.rng = fleetsim.NewRNG(t.cfg.Seed ^ 0x7ee5)
	minLeaf := t.cfg.MinLeaf
	if minLeaf < 1 {
		minLeaf = 1
	}
	minSplit := t.cfg.MinSplit
	if minSplit < 2 {
		minSplit = 2
	}
	b := &builder{
		t: t, m: m, total: float64(len(rows)),
		minLeaf: minLeaf, minSplit: minSplit,
		scratch: make([]int32, len(rows)),
	}
	b.grow(rows, 0)
	// Normalize importances to sum to 1 when any split occurred.
	var sum float64
	for _, v := range t.importance {
		sum += v
	}
	if sum > 0 {
		for f := range t.importance {
			t.importance[f] /= sum
		}
	}
	return nil
}

type builder struct {
	t                 *Tree
	m                 *dataset.Matrix
	total             float64
	minLeaf, minSplit int
	scratch           []int32
}

// gini returns the Gini impurity for pos positives out of n.
func gini(pos, n float64) float64 {
	if n == 0 {
		return 0
	}
	p := pos / n
	return 2 * p * (1 - p)
}

func countPos(m *dataset.Matrix, rows []int32) int {
	pos := 0
	for _, r := range rows {
		if m.Y[r] == 1 {
			pos++
		}
	}
	return pos
}

// grow recursively builds the subtree over rows and returns its index.
func (b *builder) grow(rows []int32, depth int) int32 {
	t := b.t
	pos := countPos(b.m, rows)
	n := len(rows)
	ni := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{
		feature: -1,
		prob:    (float64(pos) + 1) / (float64(n) + 2),
	})
	if pos == 0 || pos == n || n < b.minSplit ||
		(t.cfg.MaxDepth > 0 && depth >= t.cfg.MaxDepth) {
		return ni
	}

	feat, thresh, gain := b.bestSplit(rows, float64(pos))
	if feat < 0 {
		return ni
	}
	// Partition rows in place around the threshold.
	lo, hi := 0, n
	for lo < hi {
		if b.m.Row(int(rows[lo]))[feat] <= thresh {
			lo++
		} else {
			hi--
			rows[lo], rows[hi] = rows[hi], rows[lo]
		}
	}
	if lo < b.minLeaf || n-lo < b.minLeaf {
		return ni
	}
	t.importance[feat] += (float64(n) / b.total) * gain
	left := b.grow(rows[:lo], depth+1)
	right := b.grow(rows[lo:], depth+1)
	t.nodes[ni].feature = int32(feat)
	t.nodes[ni].threshold = thresh
	t.nodes[ni].left = left
	t.nodes[ni].right = right
	return ni
}

// bestSplit scans candidate features for the split with the largest Gini
// decrease. Returns feature -1 when no valid split exists.
func (b *builder) bestSplit(rows []int32, pos float64) (int, float64, float64) {
	n := float64(len(rows))
	parent := gini(pos, n)
	bestFeat := -1
	var bestThresh, bestGain float64

	feats := b.candidateFeatures()
	idx := b.scratch[:len(rows)]
	for _, f := range feats {
		copy(idx, rows)
		m := b.m
		sort.Slice(idx, func(a, c int) bool {
			return m.Row(int(idx[a]))[f] < m.Row(int(idx[c]))[f]
		})
		var leftPos, leftN float64
		for i := 0; i < len(idx)-1; i++ {
			if m.Y[idx[i]] == 1 {
				leftPos++
			}
			leftN++
			v, next := m.Row(int(idx[i]))[f], m.Row(int(idx[i+1]))[f]
			if v == next {
				continue
			}
			if int(leftN) < b.minLeaf || len(idx)-int(leftN) < b.minLeaf {
				continue
			}
			rightPos := pos - leftPos
			rightN := n - leftN
			gain := parent - (leftN*gini(leftPos, leftN)+rightN*gini(rightPos, rightN))/n
			if gain > bestGain+1e-15 {
				bestGain = gain
				bestFeat = f
				bestThresh = v + (next-v)/2
			}
		}
	}
	if bestGain <= 1e-12 {
		return -1, 0, 0
	}
	return bestFeat, bestThresh, bestGain
}

// candidateFeatures returns the feature subset for this split.
func (b *builder) candidateFeatures() []int {
	width := b.t.width
	k := b.t.cfg.MaxFeatures
	if k <= 0 || k >= width {
		all := make([]int, width)
		for i := range all {
			all[i] = i
		}
		return all
	}
	// Partial Fisher-Yates over a fresh index slice.
	perm := make([]int, width)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + b.t.rng.Intn(width-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:k]
}

// Score implements ml.Classifier.
func (t *Tree) Score(x []float64) float64 {
	if len(t.nodes) == 0 {
		return 0.5
	}
	ni := int32(0)
	for {
		nd := &t.nodes[ni]
		if nd.feature < 0 {
			return nd.prob
		}
		if x[nd.feature] <= nd.threshold {
			ni = nd.left
		} else {
			ni = nd.right
		}
	}
}

// Importance returns the normalized Gini importances (summing to 1 when
// the tree has at least one split).
func (t *Tree) Importance() []float64 {
	out := make([]float64, len(t.importance))
	copy(out, t.importance)
	return out
}

// NodeCount returns the number of nodes in the trained tree.
func (t *Tree) NodeCount() int { return len(t.nodes) }

// NodeView is a read-only copy of one tree node, exposed for flatteners
// that repack trees into contiguous arrays (forest.Flat). Node indices
// are in append order: a split node's children always have indices
// strictly greater than their parent's, with node 0 the root.
type NodeView struct {
	Feature     int32 // -1 for leaves
	Threshold   float64
	Left, Right int32 // meaningful only when Feature >= 0
	Prob        float64
}

// Node returns the i-th node.
func (t *Tree) Node(i int) NodeView {
	n := &t.nodes[i]
	return NodeView{Feature: n.feature, Threshold: n.threshold,
		Left: n.left, Right: n.right, Prob: n.prob}
}

// Width returns the feature-vector width the tree was trained (or
// deserialized) with, or 0 for an untrained tree. Score must be called
// with vectors at least this long.
func (t *Tree) Width() int { return t.width }
