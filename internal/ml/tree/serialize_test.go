package tree

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"ssdfail/internal/ml/mltest"
)

func TestTreeSerializationRoundTrip(t *testing.T) {
	train := mltest.TwoBlobs(200, 3, 1)
	tr := New(Config{MaxDepth: 8, MinLeaf: 2})
	if err := tr.Fit(train); err != nil {
		t.Fatal(err)
	}
	data, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Tree
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.NodeCount() != tr.NodeCount() || got.Width() != tr.Width() {
		t.Fatalf("shape mismatch: %d/%d nodes, %d/%d width",
			got.NodeCount(), tr.NodeCount(), got.Width(), tr.Width())
	}
	for i := 0; i < train.Len(); i += 7 {
		x := train.Row(i)
		if tr.Score(x) != got.Score(x) {
			t.Fatalf("score mismatch at row %d", i)
		}
	}
}

// craftTree builds a syntactically valid serialized tree (width 2, a
// root split and two leaves) that corrupt-input cases mutate.
func craftTree() []byte {
	var b []byte
	w32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	w64 := func(v float64) { b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v)) }
	b = append(b, treeMagic...)
	w32(treeVersion)
	w32(2) // width
	w32(3) // node count
	// node 0: split on feature 0 at 0.5
	w32(0)
	w64(0.5)
	w32(1)
	w32(2)
	w64(0)
	// nodes 1, 2: leaves
	for _, p := range []float64{0.1, 0.9} {
		w32(^uint32(0)) // feature -1
		w64(0)
		w32(0)
		w32(0)
		w64(p)
	}
	w64(1) // importance[0]
	w64(0) // importance[1]
	return b
}

func TestTreeUnmarshalCraftedRoundTrip(t *testing.T) {
	var tr Tree
	if err := tr.UnmarshalBinary(craftTree()); err != nil {
		t.Fatal(err)
	}
	if got := tr.Score([]float64{0, 0}); got != 0.1 {
		t.Fatalf("left leaf score = %v, want 0.1", got)
	}
	if got := tr.Score([]float64{1, 0}); got != 0.9 {
		t.Fatalf("right leaf score = %v, want 0.9", got)
	}
}

func TestTreeUnmarshalCorruptInputs(t *testing.T) {
	put32 := func(b []byte, off int, v uint32) []byte {
		binary.LittleEndian.PutUint32(b[off:], v)
		return b
	}
	cases := []struct {
		name string
		data []byte
		want string // substring of the expected error
	}{
		{"nil", nil, "bad magic"},
		{"empty", []byte{}, "bad magic"},
		{"short", []byte("TRE"), "bad magic"},
		{"bad magic", append([]byte("TREX"), craftTree()[4:]...), "bad magic"},
		{"wrong version", put32(craftTree(), 4, treeVersion+1), "unsupported version"},
		{"header only", craftTree()[:treeHeaderSize], "declares"},
		{"truncated node payload", craftTree()[:treeHeaderSize+treeNodeSize+5], "declares"},
		{"truncated importances", craftTree()[:len(craftTree())-8], "declares"},
		{"trailing garbage", append(craftTree(), 0xde, 0xad), "declares"},
		// A count far beyond the buffer must be rejected before any
		// allocation sized from it (alloc bomb).
		{"node count bomb", put32(craftTree(), 12, 1<<27), "declares"},
		{"node count implausible", put32(craftTree(), 12, 1<<29), "implausible node count"},
		// A width bomb would allocate width*8 bytes of importances.
		{"width bomb", put32(craftTree(), 8, 1<<24), "implausible width"},
		{"feature outside width", put32(craftTree(), treeHeaderSize, 7), "outside width"},
		// Children must point strictly forward; a self/backward edge
		// would make Score loop forever.
		{"cyclic child self", put32(craftTree(), treeHeaderSize+12, 0), "cyclic"},
		{"dangling child", put32(craftTree(), treeHeaderSize+16, 9), "dangling"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var tr Tree
			err := tr.UnmarshalBinary(tc.data)
			if err == nil {
				t.Fatalf("accepted corrupt input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}
