package tree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// Binary serialization of a trained tree, so predictors can be deployed
// without retraining. Layout (little-endian):
//
//	magic "TREE" | version u32 | width u32 | nodeCount u32
//	nodeCount * (feature i32, threshold f64, left i32, right i32, prob f64)
//	width * importance f64

const (
	treeMagic   = "TREE"
	treeVersion = 1
)

// MarshalBinary implements encoding.BinaryMarshaler.
func (t *Tree) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(treeMagic)
	w32 := func(v uint32) { var b [4]byte; binary.LittleEndian.PutUint32(b[:], v); buf.Write(b[:]) }
	w64 := func(v float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		buf.Write(b[:])
	}
	w32(treeVersion)
	w32(uint32(t.width))
	w32(uint32(len(t.nodes)))
	for i := range t.nodes {
		n := &t.nodes[i]
		w32(uint32(n.feature))
		w64(n.threshold)
		w32(uint32(n.left))
		w32(uint32(n.right))
		w64(n.prob)
	}
	for _, v := range t.importance {
		w64(v)
	}
	return buf.Bytes(), nil
}

// Serialized sizes: the fixed header and one node record
// (feature i32, threshold f64, left i32, right i32, prob f64).
const (
	treeHeaderSize = 4 + 4 + 4 + 4 // magic, version, width, nodeCount
	treeNodeSize   = 4 + 8 + 4 + 4 + 8
)

// maxTreeWidth bounds the feature-vector width accepted from disk; it
// is far above any real feature pipeline but keeps a corrupt header
// from demanding a multi-gigabyte importance slice.
const maxTreeWidth = 1 << 20

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The payload is
// untrusted (the serving daemon loads it from disk at runtime), so the
// decoder validates the declared sizes against the actual buffer before
// allocating, consumes the buffer exactly (no trailing garbage), and
// checks the node graph is a well-formed tree: child indices in range
// and strictly increasing — the builder always appends children after
// their parent — which guarantees Score terminates.
func (t *Tree) UnmarshalBinary(data []byte) error {
	if len(data) < treeHeaderSize || string(data[:4]) != treeMagic {
		return fmt.Errorf("tree: bad magic")
	}
	u32 := func(off int) uint32 { return binary.LittleEndian.Uint32(data[off:]) }
	f64 := func(off int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
	}
	if ver := u32(4); ver != treeVersion {
		return fmt.Errorf("tree: unsupported version %d", ver)
	}
	width := u32(8)
	count := u32(12)
	if width > maxTreeWidth {
		return fmt.Errorf("tree: implausible width %d", width)
	}
	if count > 1<<28 {
		return fmt.Errorf("tree: implausible node count %d", count)
	}
	need := treeHeaderSize + int(count)*treeNodeSize + int(width)*8
	if len(data) != need {
		return fmt.Errorf("tree: payload is %d bytes, header declares %d", len(data), need)
	}
	t.width = int(width)
	t.nodes = make([]node, count)
	off := treeHeaderSize
	for i := range t.nodes {
		n := &t.nodes[i]
		n.feature = int32(u32(off))
		n.threshold = f64(off + 4)
		n.left = int32(u32(off + 12))
		n.right = int32(u32(off + 16))
		n.prob = f64(off + 20)
		off += treeNodeSize
		if n.feature >= 0 {
			if int(n.feature) >= t.width {
				return fmt.Errorf("tree: node %d feature %d outside width %d", i, n.feature, t.width)
			}
			if n.left <= int32(i) || n.right <= int32(i) ||
				n.left >= int32(count) || n.right >= int32(count) {
				return fmt.Errorf("tree: node %d has dangling or cyclic children", i)
			}
		}
	}
	t.importance = make([]float64, width)
	for i := range t.importance {
		t.importance[i] = f64(off)
		off += 8
	}
	return nil
}
