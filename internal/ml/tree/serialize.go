package tree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// Binary serialization of a trained tree, so predictors can be deployed
// without retraining. Layout (little-endian):
//
//	magic "TREE" | version u32 | width u32 | nodeCount u32
//	nodeCount * (feature i32, threshold f64, left i32, right i32, prob f64)
//	width * importance f64

const (
	treeMagic   = "TREE"
	treeVersion = 1
)

// MarshalBinary implements encoding.BinaryMarshaler.
func (t *Tree) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(treeMagic)
	w32 := func(v uint32) { var b [4]byte; binary.LittleEndian.PutUint32(b[:], v); buf.Write(b[:]) }
	w64 := func(v float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		buf.Write(b[:])
	}
	w32(treeVersion)
	w32(uint32(t.width))
	w32(uint32(len(t.nodes)))
	for i := range t.nodes {
		n := &t.nodes[i]
		w32(uint32(n.feature))
		w64(n.threshold)
		w32(uint32(n.left))
		w32(uint32(n.right))
		w64(n.prob)
	}
	for _, v := range t.importance {
		w64(v)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (t *Tree) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic := make([]byte, 4)
	if _, err := r.Read(magic); err != nil || string(magic) != treeMagic {
		return fmt.Errorf("tree: bad magic")
	}
	r32 := func() (uint32, error) {
		var b [4]byte
		if _, err := r.Read(b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	r64 := func() (float64, error) {
		var b [8]byte
		if _, err := r.Read(b[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
	}
	ver, err := r32()
	if err != nil || ver != treeVersion {
		return fmt.Errorf("tree: unsupported version")
	}
	width, err := r32()
	if err != nil {
		return err
	}
	count, err := r32()
	if err != nil {
		return err
	}
	if count > 1<<28 {
		return fmt.Errorf("tree: implausible node count %d", count)
	}
	t.width = int(width)
	t.nodes = make([]node, count)
	for i := range t.nodes {
		n := &t.nodes[i]
		var v uint32
		if v, err = r32(); err != nil {
			return err
		}
		n.feature = int32(v)
		if n.threshold, err = r64(); err != nil {
			return err
		}
		if v, err = r32(); err != nil {
			return err
		}
		n.left = int32(v)
		if v, err = r32(); err != nil {
			return err
		}
		n.right = int32(v)
		if n.prob, err = r64(); err != nil {
			return err
		}
		if n.feature >= 0 {
			if int(n.feature) >= t.width {
				return fmt.Errorf("tree: node %d feature %d outside width %d", i, n.feature, t.width)
			}
			if n.left < 0 || n.right < 0 || n.left >= int32(count) || n.right >= int32(count) {
				return fmt.Errorf("tree: node %d has dangling children", i)
			}
		}
	}
	t.importance = make([]float64, width)
	for i := range t.importance {
		if t.importance[i], err = r64(); err != nil {
			return err
		}
	}
	return nil
}
