package tree

import (
	"testing"

	"ssdfail/internal/dataset"
	"ssdfail/internal/ml/mltest"
)

func TestLearnsSeparableBlobs(t *testing.T) {
	train := mltest.TwoBlobs(300, 3, 1)
	test := mltest.TwoBlobs(150, 3, 2)
	m := New(DefaultConfig())
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, test.Len())
	for i := range scores {
		scores[i] = m.Score(test.Row(i))
	}
	if auc := mltest.AUC(scores, test.Y); auc < 0.90 {
		t.Errorf("AUC = %.3f, want >= 0.90", auc)
	}
}

func TestHandlesNonlinearBand(t *testing.T) {
	// The band target is not linearly separable but is axis-aligned, so
	// a greedy tree should carve it with two splits. (XOR, by contrast,
	// defeats greedy split selection by construction.)
	train := mltest.Band(800, 1)
	test := mltest.Band(400, 2)
	m := New(Config{MaxDepth: 8, MinLeaf: 3, MinSplit: 6})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, test.Len())
	for i := range scores {
		scores[i] = m.Score(test.Row(i))
	}
	if auc := mltest.AUC(scores, test.Y); auc < 0.90 {
		t.Errorf("band AUC = %.3f; a tree should carve the band", auc)
	}
	// XOR: a deep tree must at least memorize the training set, proving
	// the split machinery handles zero-first-order-gain targets when
	// given depth.
	xor := mltest.XOR(600, 3)
	deep := New(Config{MaxDepth: 0, MinLeaf: 1, MinSplit: 2})
	if err := deep.Fit(xor); err != nil {
		t.Fatal(err)
	}
	scores = make([]float64, xor.Len())
	for i := range scores {
		scores[i] = deep.Score(xor.Row(i))
	}
	if auc := mltest.AUC(scores, xor.Y); auc < 0.99 {
		t.Errorf("deep tree XOR train AUC = %.3f, want ~1", auc)
	}
}

func TestPureNodeBecomesLeaf(t *testing.T) {
	// A single-class training set must produce a single leaf.
	m := mltest.TwoBlobs(20, 1, 3)
	for i := range m.Y {
		m.Y[i] = 1
	}
	tr := New(DefaultConfig())
	if err := tr.Fit(m); err != nil {
		t.Fatal(err)
	}
	if tr.NodeCount() != 1 {
		t.Errorf("pure training set grew %d nodes, want 1", tr.NodeCount())
	}
	// Laplace-smoothed probability stays below 1.
	if s := tr.Score(m.Row(0)); s <= 0.9 || s >= 1 {
		t.Errorf("pure-leaf score = %v", s)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	train := mltest.TwoBlobs(500, 1, 4)
	shallow := New(Config{MaxDepth: 1, MinLeaf: 1, MinSplit: 2})
	if err := shallow.Fit(train); err != nil {
		t.Fatal(err)
	}
	// Depth-1 tree has at most 3 nodes (root + 2 leaves).
	if shallow.NodeCount() > 3 {
		t.Errorf("depth-1 tree has %d nodes", shallow.NodeCount())
	}
	deep := New(Config{MaxDepth: 10, MinLeaf: 1, MinSplit: 2})
	if err := deep.Fit(train); err != nil {
		t.Fatal(err)
	}
	if deep.NodeCount() <= shallow.NodeCount() {
		t.Error("deeper budget should grow a larger tree on noisy data")
	}
}

func TestImportanceIdentifiesSignalFeatures(t *testing.T) {
	train := mltest.TwoBlobs(500, 3, 5) // signal on features 0..2
	m := New(DefaultConfig())
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	imp := m.Importance()
	var sum, signal float64
	for f, v := range imp {
		sum += v
		if f < 3 {
			signal += v
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("importances sum to %v, want 1", sum)
	}
	if signal < 0.8 {
		t.Errorf("signal features carry %.3f importance, want >= 0.8", signal)
	}
}

func TestEmptyTrainingSetErrors(t *testing.T) {
	m := New(DefaultConfig())
	if err := m.Fit(&dataset.Matrix{}); err == nil {
		t.Error("Fit on empty set should error")
	}
	if s := m.Score(make([]float64, dataset.NumFeatures)); s != 0.5 {
		t.Errorf("untrained Score = %v", s)
	}
}

func TestFitRowsBootstrapSubset(t *testing.T) {
	train := mltest.TwoBlobs(100, 3, 6)
	m := New(DefaultConfig())
	rows := []int32{0, 1, 2, 3, 4, 5, 6, 7, 0, 0} // repetition allowed
	if err := m.FitRows(train, rows); err != nil {
		t.Fatal(err)
	}
	if m.NodeCount() == 0 {
		t.Error("no tree grown")
	}
	if err := m.FitRows(train, nil); err == nil {
		t.Error("empty rows should error")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	train := mltest.TwoBlobs(200, 2, 7)
	cfg := Config{MaxDepth: 6, MinLeaf: 2, MinSplit: 4, MaxFeatures: 4, Seed: 9}
	a, b := New(cfg), New(cfg)
	if err := a.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(train); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if a.Score(train.Row(i)) != b.Score(train.Row(i)) {
			t.Fatal("same-seed trees disagree")
		}
	}
}

func TestMinLeafRespected(t *testing.T) {
	train := mltest.TwoBlobs(100, 3, 8)
	big := New(Config{MaxDepth: 0, MinLeaf: 40, MinSplit: 80})
	if err := big.Fit(train); err != nil {
		t.Fatal(err)
	}
	small := New(Config{MaxDepth: 0, MinLeaf: 1, MinSplit: 2})
	if err := small.Fit(train); err != nil {
		t.Fatal(err)
	}
	if big.NodeCount() >= small.NodeCount() {
		t.Errorf("MinLeaf=40 tree (%d nodes) should be smaller than MinLeaf=1 (%d)",
			big.NodeCount(), small.NodeCount())
	}
}
