// Package logreg implements ridge-regularized logistic regression
// trained by mini-batch gradient descent with an adaptive step size.
package logreg

import (
	"errors"

	"ssdfail/internal/dataset"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/ml"
)

// Config holds the hyperparameters; the ridge coefficient L2 is the one
// the paper reports tuning by grid search.
type Config struct {
	L2        float64 // ridge regularization strength
	LearnRate float64 // initial step size
	Epochs    int
	BatchSize int
	Seed      uint64
}

// DefaultConfig returns the configuration used by the Table 6 harness.
func DefaultConfig() Config {
	return Config{L2: 1e-3, LearnRate: 0.1, Epochs: 60, BatchSize: 64, Seed: 1}
}

// Model is a trained logistic regression classifier.
type Model struct {
	cfg    Config
	scaler *dataset.Scaler
	w      []float64
	b      float64
}

// New returns an untrained model.
func New(cfg Config) *Model { return &Model{cfg: cfg} }

// NewFactory adapts New to the harness Factory signature.
func NewFactory(cfg Config) ml.Factory {
	return func() ml.Classifier { return New(cfg) }
}

// Name implements ml.Classifier.
func (m *Model) Name() string { return "Logistic Reg." }

// Fit implements ml.Classifier.
func (m *Model) Fit(data *dataset.Matrix) error {
	n := data.Len()
	if n == 0 {
		return errors.New("logreg: empty training set")
	}
	m.scaler = dataset.FitScaler(data)
	scaled := m.scaler.Apply(data)

	m.w = make([]float64, data.W())
	m.b = 0
	grad := make([]float64, data.W())
	rng := fleetsim.NewRNG(m.cfg.Seed ^ 0x10618e6)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	bs := m.cfg.BatchSize
	if bs <= 0 {
		bs = 64
	}
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		// Decaying step size keeps late epochs stable.
		lr := m.cfg.LearnRate / (1 + 0.1*float64(epoch))
		for i := n - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for start := 0; start < n; start += bs {
			end := start + bs
			if end > n {
				end = n
			}
			for f := range grad {
				grad[f] = 0
			}
			var gradB float64
			for _, idx := range order[start:end] {
				row := scaled.Row(idx)
				p := ml.Sigmoid(ml.Dot(m.w, row) + m.b)
				diff := p - float64(scaled.Y[idx])
				for f, v := range row {
					grad[f] += diff * v
				}
				gradB += diff
			}
			inv := 1 / float64(end-start)
			for f := range m.w {
				m.w[f] -= lr * (grad[f]*inv + m.cfg.L2*m.w[f])
			}
			m.b -= lr * gradB * inv
		}
	}
	return nil
}

// Score implements ml.Classifier.
func (m *Model) Score(x []float64) float64 {
	if m.w == nil {
		return 0.5
	}
	row := make([]float64, len(x))
	copy(row, x)
	m.scaler.Transform(row)
	return ml.Sigmoid(ml.Dot(m.w, row) + m.b)
}

// Weights returns a copy of the trained coefficients (in standardized
// feature space), useful for interpretation.
func (m *Model) Weights() []float64 {
	out := make([]float64, len(m.w))
	copy(out, m.w)
	return out
}
