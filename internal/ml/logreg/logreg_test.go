package logreg

import (
	"testing"

	"ssdfail/internal/dataset"
	"ssdfail/internal/ml/mltest"
)

func TestLearnsSeparableBlobs(t *testing.T) {
	train := mltest.TwoBlobs(300, 3, 1)
	test := mltest.TwoBlobs(200, 3, 2)
	m := New(DefaultConfig())
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, test.Len())
	for i := range scores {
		scores[i] = m.Score(test.Row(i))
	}
	if auc := mltest.AUC(scores, test.Y); auc < 0.95 {
		t.Errorf("AUC on separable blobs = %.3f, want >= 0.95", auc)
	}
}

func TestScoresAreProbabilities(t *testing.T) {
	train := mltest.TwoBlobs(100, 2, 3)
	m := New(DefaultConfig())
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < train.Len(); i++ {
		s := m.Score(train.Row(i))
		if s < 0 || s > 1 {
			t.Fatalf("score %v outside [0,1]", s)
		}
	}
}

func TestEmptyTrainingSetErrors(t *testing.T) {
	m := New(DefaultConfig())
	if err := m.Fit(&dataset.Matrix{}); err == nil {
		t.Error("Fit on empty set should error")
	}
	if s := m.Score(make([]float64, dataset.NumFeatures)); s != 0.5 {
		t.Errorf("untrained Score = %v, want 0.5", s)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	train := mltest.TwoBlobs(100, 2, 4)
	a, b := New(DefaultConfig()), New(DefaultConfig())
	if err := a.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(train); err != nil {
		t.Fatal(err)
	}
	x := train.Row(0)
	if a.Score(x) != b.Score(x) {
		t.Error("same seed should give identical models")
	}
	wa, wb := a.Weights(), b.Weights()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("weights differ across identical fits")
		}
	}
}

func TestRegularizationShrinksWeights(t *testing.T) {
	train := mltest.TwoBlobs(200, 2, 5)
	weak := New(Config{L2: 1e-5, LearnRate: 0.1, Epochs: 40, BatchSize: 64, Seed: 1})
	strong := New(Config{L2: 1.0, LearnRate: 0.1, Epochs: 40, BatchSize: 64, Seed: 1})
	if err := weak.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := strong.Fit(train); err != nil {
		t.Fatal(err)
	}
	norm := func(w []float64) float64 {
		var s float64
		for _, v := range w {
			s += v * v
		}
		return s
	}
	if norm(strong.Weights()) >= norm(weak.Weights()) {
		t.Error("stronger L2 should shrink weights")
	}
}

func TestFactory(t *testing.T) {
	f := NewFactory(DefaultConfig())
	c := f()
	if c.Name() != "Logistic Reg." {
		t.Errorf("Name = %q", c.Name())
	}
	if c == f() {
		t.Error("factory must return fresh instances")
	}
}
