// Package knn implements a k-nearest-neighbor classifier backed by a
// KD-tree over standardized features, with inverse-distance-weighted
// voting.
package knn

import (
	"container/heap"
	"errors"
	"sort"

	"ssdfail/internal/dataset"
	"ssdfail/internal/ml"
)

// Config holds the k-NN hyperparameters.
type Config struct {
	K int // number of neighbors
}

// DefaultConfig returns the configuration used by the Table 6 harness.
func DefaultConfig() Config { return Config{K: 15} }

// Model is a fitted k-NN classifier.
type Model struct {
	cfg    Config
	scaler *dataset.Scaler
	tree   *kdTree
}

// New returns an unfitted model.
func New(cfg Config) *Model { return &Model{cfg: cfg} }

// NewFactory adapts New to the harness Factory signature.
func NewFactory(cfg Config) ml.Factory {
	return func() ml.Classifier { return New(cfg) }
}

// Name implements ml.Classifier.
func (m *Model) Name() string { return "k-NN" }

// Fit implements ml.Classifier. k-NN "training" standardizes the data
// and builds the KD-tree.
func (m *Model) Fit(data *dataset.Matrix) error {
	if data.Len() == 0 {
		return errors.New("knn: empty training set")
	}
	m.scaler = dataset.FitScaler(data)
	scaled := m.scaler.Apply(data)
	pts := make([][]float64, scaled.Len())
	labels := make([]int8, scaled.Len())
	for i := range pts {
		pts[i] = scaled.Row(i)
		labels[i] = scaled.Y[i]
	}
	m.tree = buildKD(pts, labels)
	return nil
}

// Score implements ml.Classifier: the inverse-distance-weighted fraction
// of positive labels among the K nearest neighbors.
func (m *Model) Score(x []float64) float64 {
	if m.tree == nil {
		return 0.5
	}
	row := make([]float64, len(x))
	copy(row, x)
	m.scaler.Transform(row)
	k := m.cfg.K
	if k <= 0 {
		k = 15
	}
	nn := m.tree.kNearest(row, k)
	var wPos, wAll float64
	for _, h := range nn {
		w := 1 / (1e-9 + h.dist)
		wAll += w
		if h.label == 1 {
			wPos += w
		}
	}
	if wAll == 0 {
		return 0.5
	}
	return wPos / wAll
}

// kdTree is a static KD-tree over fixed-dimension points.
type kdTree struct {
	points [][]float64
	labels []int8
	nodes  []kdNode
	root   int32
	dims   int
}

type kdNode struct {
	point       int32 // index into points
	axis        int16
	left, right int32 // -1 = none
}

func buildKD(points [][]float64, labels []int8) *kdTree {
	t := &kdTree{points: points, labels: labels, dims: dataset.NumFeatures}
	if len(points) > 0 {
		t.dims = len(points[0])
	}
	idx := make([]int32, len(points))
	for i := range idx {
		idx[i] = int32(i)
	}
	t.root = t.build(idx, 0)
	return t
}

func (t *kdTree) build(idx []int32, depth int) int32 {
	if len(idx) == 0 {
		return -1
	}
	axis := depth % t.dims
	mid := len(idx) / 2
	// nth_element-style partial sort: full sort is fine at our sizes and
	// keeps the code simple and deterministic.
	sort.Slice(idx, func(a, b int) bool {
		return t.points[idx[a]][axis] < t.points[idx[b]][axis]
	})
	node := kdNode{point: idx[mid], axis: int16(axis)}
	ni := int32(len(t.nodes))
	t.nodes = append(t.nodes, node)
	left := t.build(idx[:mid], depth+1)
	right := t.build(idx[mid+1:], depth+1)
	t.nodes[ni].left = left
	t.nodes[ni].right = right
	return ni
}

// hit is one neighbor candidate.
type hit struct {
	dist  float64
	label int8
}

// maxHeap over distances keeps the current k best.
type maxHeap []hit

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].dist > h[j].dist }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(hit)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// kNearest returns the k nearest stored points to q (squared distances).
func (t *kdTree) kNearest(q []float64, k int) []hit {
	h := make(maxHeap, 0, k+1)
	t.search(t.root, q, k, &h)
	out := make([]hit, len(h))
	copy(out, h)
	return out
}

func (t *kdTree) search(ni int32, q []float64, k int, h *maxHeap) {
	if ni < 0 {
		return
	}
	n := &t.nodes[ni]
	p := t.points[n.point]
	d := sqDist(q, p)
	if h.Len() < k {
		heap.Push(h, hit{dist: d, label: t.labels[n.point]})
	} else if d < (*h)[0].dist {
		heap.Pop(h)
		heap.Push(h, hit{dist: d, label: t.labels[n.point]})
	}
	diff := q[n.axis] - p[n.axis]
	first, second := n.left, n.right
	if diff > 0 {
		first, second = n.right, n.left
	}
	t.search(first, q, k, h)
	// Prune the far side unless the splitting plane is closer than the
	// current k-th best.
	if h.Len() < k || diff*diff < (*h)[0].dist {
		t.search(second, q, k, h)
	}
}
