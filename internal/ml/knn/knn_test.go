package knn

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"ssdfail/internal/dataset"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/ml/mltest"
)

func TestLearnsSeparableBlobs(t *testing.T) {
	train := mltest.TwoBlobs(300, 3, 1)
	test := mltest.TwoBlobs(150, 3, 2)
	m := New(DefaultConfig())
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, test.Len())
	for i := range scores {
		scores[i] = m.Score(test.Row(i))
	}
	if auc := mltest.AUC(scores, test.Y); auc < 0.93 {
		t.Errorf("AUC = %.3f, want >= 0.93", auc)
	}
}

func TestHandlesNonlinearXOR(t *testing.T) {
	train := mltest.XOR(600, 1)
	test := mltest.XOR(300, 2)
	m := New(Config{K: 9})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, test.Len())
	for i := range scores {
		scores[i] = m.Score(test.Row(i))
	}
	if auc := mltest.AUC(scores, test.Y); auc < 0.60 {
		t.Errorf("XOR AUC = %.3f; k-NN should beat chance", auc)
	}
}

func TestEmptyTrainingSetErrors(t *testing.T) {
	m := New(DefaultConfig())
	if err := m.Fit(&dataset.Matrix{}); err == nil {
		t.Error("Fit on empty set should error")
	}
	if s := m.Score(make([]float64, dataset.NumFeatures)); s != 0.5 {
		t.Errorf("unfitted Score = %v", s)
	}
}

func TestExactNeighborRecall(t *testing.T) {
	// Querying a training point with K=1 must return its own label.
	train := mltest.TwoBlobs(100, 4, 3)
	m := New(Config{K: 1})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		got := m.Score(train.Row(i))
		want := float64(train.Y[i])
		if got != want {
			t.Fatalf("row %d: K=1 self score = %v, want %v", i, got, want)
		}
	}
}

// TestKDTreeMatchesBruteForce verifies the KD-tree against a brute-force
// k-nearest scan on random data.
func TestKDTreeMatchesBruteForce(t *testing.T) {
	prop := func(seed uint64, kRaw uint8) bool {
		rng := fleetsim.NewRNG(seed)
		n := 60 + int(seed%40)
		k := int(kRaw%10) + 1
		pts := make([][]float64, n)
		labels := make([]int8, n)
		for i := range pts {
			pts[i] = make([]float64, dataset.NumFeatures)
			for f := range pts[i] {
				pts[i][f] = rng.NormFloat64()
			}
			labels[i] = int8(i % 2)
		}
		tree := buildKD(pts, labels)
		q := make([]float64, dataset.NumFeatures)
		for f := range q {
			q[f] = rng.NormFloat64()
		}
		got := tree.kNearest(q, k)
		gotD := make([]float64, len(got))
		for i, h := range got {
			gotD[i] = h.dist
		}
		sort.Float64s(gotD)

		all := make([]float64, n)
		for i := range pts {
			all[i] = sqDist(q, pts[i])
		}
		sort.Float64s(all)
		if len(gotD) != k {
			return false
		}
		for i := 0; i < k; i++ {
			if math.Abs(gotD[i]-all[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFactory(t *testing.T) {
	c := NewFactory(DefaultConfig())()
	if c.Name() != "k-NN" {
		t.Errorf("Name = %q", c.Name())
	}
}
