package gbdt

import (
	"testing"

	"ssdfail/internal/dataset"
	"ssdfail/internal/ml/mltest"
)

func TestLearnsSeparableBlobs(t *testing.T) {
	train := mltest.TwoBlobs(300, 3, 1)
	test := mltest.TwoBlobs(150, 3, 2)
	m := New(DefaultConfig())
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, test.Len())
	for i := range scores {
		scores[i] = m.Score(test.Row(i))
	}
	if auc := mltest.AUC(scores, test.Y); auc < 0.95 {
		t.Errorf("AUC = %.3f, want >= 0.95", auc)
	}
}

func TestHandlesNonlinearXOR(t *testing.T) {
	// Unlike a single greedy tree, boosting with depth-2+ trees can
	// carve XOR given enough rounds.
	train := mltest.XOR(800, 1)
	test := mltest.XOR(400, 2)
	m := New(Config{Rounds: 200, MaxDepth: 3, MinLeaf: 3, LearnRate: 0.15, Subsample: 1, Seed: 1})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, test.Len())
	for i := range scores {
		scores[i] = m.Score(test.Row(i))
	}
	if auc := mltest.AUC(scores, test.Y); auc < 0.80 {
		t.Errorf("XOR AUC = %.3f, want >= 0.80", auc)
	}
}

func TestHandlesBand(t *testing.T) {
	train := mltest.Band(600, 3)
	test := mltest.Band(300, 4)
	m := New(DefaultConfig())
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, test.Len())
	for i := range scores {
		scores[i] = m.Score(test.Row(i))
	}
	if auc := mltest.AUC(scores, test.Y); auc < 0.93 {
		t.Errorf("band AUC = %.3f", auc)
	}
}

func TestScoreRange(t *testing.T) {
	train := mltest.TwoBlobs(100, 2, 5)
	m := New(DefaultConfig())
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < train.Len(); i++ {
		if s := m.Score(train.Row(i)); s < 0 || s > 1 {
			t.Fatalf("score %v outside [0,1]", s)
		}
	}
	if m.Rounds() == 0 {
		t.Error("no trees fitted")
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	m := New(DefaultConfig())
	if err := m.Fit(&dataset.Matrix{}); err == nil {
		t.Error("empty training set should error")
	}
	single := mltest.TwoBlobs(20, 1, 6)
	for i := range single.Y {
		single.Y[i] = 1
	}
	if err := m.Fit(single); err == nil {
		t.Error("single-class training set should error")
	}
	if s := m.Score(make([]float64, dataset.NumFeatures)); s != 0.5 {
		t.Errorf("untrained score = %v", s)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	train := mltest.TwoBlobs(150, 2, 7)
	a, b := New(DefaultConfig()), New(DefaultConfig())
	if err := a.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(train); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if a.Score(train.Row(i)) != b.Score(train.Row(i)) {
			t.Fatal("same-seed boosters disagree")
		}
	}
}

func TestMoreRoundsFitTrainingBetter(t *testing.T) {
	train := mltest.TwoBlobs(300, 1.5, 8) // noisy
	few := New(Config{Rounds: 5, MaxDepth: 3, MinLeaf: 3, LearnRate: 0.1, Subsample: 1, Seed: 1})
	many := New(Config{Rounds: 150, MaxDepth: 3, MinLeaf: 3, LearnRate: 0.1, Subsample: 1, Seed: 1})
	if err := few.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := many.Fit(train); err != nil {
		t.Fatal(err)
	}
	aucOf := func(m *Model) float64 {
		s := make([]float64, train.Len())
		for i := range s {
			s[i] = m.Score(train.Row(i))
		}
		return mltest.AUC(s, train.Y)
	}
	if aucOf(many) <= aucOf(few) {
		t.Errorf("more rounds should fit training data better: %.3f vs %.3f",
			aucOf(many), aucOf(few))
	}
}
