// Package gbdt implements gradient-boosted decision trees for binary
// classification with the logistic loss — an extension beyond the
// paper's six models. Each round fits a small regression tree to the
// negative gradient (residual) of the loss and leaf values are set by a
// single Newton step, as in standard GBM/XGBoost formulations.
package gbdt

import (
	"errors"
	"math"
	"sort"

	"ssdfail/internal/dataset"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/ml"
)

// Config holds the boosting hyperparameters.
type Config struct {
	Rounds    int     // number of boosting rounds (trees)
	MaxDepth  int     // per-tree depth
	MinLeaf   int     // minimum rows per leaf
	LearnRate float64 // shrinkage
	Subsample float64 // row subsampling per round (stochastic GB); 1 = all
	Seed      uint64
}

// DefaultConfig returns a configuration competitive with the paper's
// random forest on this task.
func DefaultConfig() Config {
	return Config{Rounds: 120, MaxDepth: 4, MinLeaf: 5, LearnRate: 0.1, Subsample: 0.8, Seed: 1}
}

// regression tree node over residuals.
type node struct {
	feature     int32 // -1 for leaves
	threshold   float64
	left, right int32
	value       float64 // leaf output (log-odds increment)
}

type regTree struct {
	nodes []node
}

func (t *regTree) predict(x []float64) float64 {
	ni := int32(0)
	for {
		nd := &t.nodes[ni]
		if nd.feature < 0 {
			return nd.value
		}
		if x[nd.feature] <= nd.threshold {
			ni = nd.left
		} else {
			ni = nd.right
		}
	}
}

// Model is a trained boosted ensemble.
type Model struct {
	cfg   Config
	base  float64 // initial log-odds
	trees []*regTree
	width int
}

// New returns an untrained model.
func New(cfg Config) *Model { return &Model{cfg: cfg} }

// NewFactory adapts New to the harness Factory signature.
func NewFactory(cfg Config) ml.Factory {
	return func() ml.Classifier { return New(cfg) }
}

// Name implements ml.Classifier.
func (m *Model) Name() string { return "Gradient Boosting" }

// treeBuilder grows one regression tree on gradients/hessians.
type treeBuilder struct {
	m       *dataset.Matrix
	grad    []float64 // negative gradient per row
	hess    []float64
	minLeaf int
	maxDep  int
	tree    *regTree
	scratch []int32
}

const lambda = 1.0 // L2 regularization on leaf values

// leafValue is the Newton-step optimum sum(g)/(sum(h)+lambda).
func leafValue(g, h float64) float64 { return g / (h + lambda) }

// gainFor computes the split gain (simplified XGBoost objective).
func gainFor(gl, hl, gr, hr float64) float64 {
	return gl*gl/(hl+lambda) + gr*gr/(hr+lambda) - (gl+gr)*(gl+gr)/(hl+hr+lambda)
}

func (b *treeBuilder) grow(rows []int32, depth int) int32 {
	var gSum, hSum float64
	for _, r := range rows {
		gSum += b.grad[r]
		hSum += b.hess[r]
	}
	ni := int32(len(b.tree.nodes))
	b.tree.nodes = append(b.tree.nodes, node{feature: -1, value: leafValue(gSum, hSum)})
	if depth >= b.maxDep || len(rows) < 2*b.minLeaf {
		return ni
	}

	bestFeat := -1
	var bestThresh, bestGain float64
	width := b.m.W()
	idx := b.scratch[:len(rows)]
	for f := 0; f < width; f++ {
		copy(idx, rows)
		mm := b.m
		sort.Slice(idx, func(a, c int) bool {
			return mm.Row(int(idx[a]))[f] < mm.Row(int(idx[c]))[f]
		})
		var gl, hl float64
		for i := 0; i < len(idx)-1; i++ {
			gl += b.grad[idx[i]]
			hl += b.hess[idx[i]]
			v, next := mm.Row(int(idx[i]))[f], mm.Row(int(idx[i+1]))[f]
			if v == next {
				continue
			}
			if i+1 < b.minLeaf || len(idx)-i-1 < b.minLeaf {
				continue
			}
			gain := gainFor(gl, hl, gSum-gl, hSum-hl)
			if gain > bestGain+1e-12 {
				bestGain = gain
				bestFeat = f
				bestThresh = v + (next-v)/2
			}
		}
	}
	if bestFeat < 0 {
		return ni
	}
	lo, hi := 0, len(rows)
	for lo < hi {
		if b.m.Row(int(rows[lo]))[bestFeat] <= bestThresh {
			lo++
		} else {
			hi--
			rows[lo], rows[hi] = rows[hi], rows[lo]
		}
	}
	if lo < b.minLeaf || len(rows)-lo < b.minLeaf {
		return ni
	}
	left := b.grow(rows[:lo], depth+1)
	right := b.grow(rows[lo:], depth+1)
	b.tree.nodes[ni].feature = int32(bestFeat)
	b.tree.nodes[ni].threshold = bestThresh
	b.tree.nodes[ni].left = left
	b.tree.nodes[ni].right = right
	return ni
}

// Fit implements ml.Classifier.
func (m *Model) Fit(data *dataset.Matrix) error {
	n := data.Len()
	if n == 0 {
		return errors.New("gbdt: empty training set")
	}
	m.width = data.W()
	pos := float64(data.Positives())
	neg := float64(n) - pos
	if pos == 0 || neg == 0 {
		return errors.New("gbdt: training set needs both classes")
	}
	m.base = math.Log(pos / neg)
	m.trees = nil

	rounds := m.cfg.Rounds
	if rounds <= 0 {
		rounds = 100
	}
	depth := m.cfg.MaxDepth
	if depth <= 0 {
		depth = 4
	}
	minLeaf := m.cfg.MinLeaf
	if minLeaf < 1 {
		minLeaf = 1
	}
	lr := m.cfg.LearnRate
	if lr <= 0 {
		lr = 0.1
	}
	sub := m.cfg.Subsample
	if sub <= 0 || sub > 1 {
		sub = 1
	}
	rng := fleetsim.NewRNG(m.cfg.Seed ^ 0x9bd7)

	score := make([]float64, n)
	for i := range score {
		score[i] = m.base
	}
	grad := make([]float64, n)
	hess := make([]float64, n)
	rows := make([]int32, 0, n)
	for round := 0; round < rounds; round++ {
		rows = rows[:0]
		for i := 0; i < n; i++ {
			p := ml.Sigmoid(score[i])
			grad[i] = float64(data.Y[i]) - p // negative gradient
			hess[i] = p * (1 - p)
			if sub >= 1 || rng.Float64() < sub {
				rows = append(rows, int32(i))
			}
		}
		if len(rows) < 2*minLeaf {
			break
		}
		b := &treeBuilder{
			m: data, grad: grad, hess: hess,
			minLeaf: minLeaf, maxDep: depth,
			tree:    &regTree{},
			scratch: make([]int32, len(rows)),
		}
		b.grow(rows, 0)
		m.trees = append(m.trees, b.tree)
		for i := 0; i < n; i++ {
			score[i] += lr * b.tree.predict(data.Row(i))
		}
	}
	return nil
}

// Score implements ml.Classifier.
func (m *Model) Score(x []float64) float64 {
	if m.trees == nil {
		return 0.5
	}
	s := m.base
	lr := m.cfg.LearnRate
	if lr <= 0 {
		lr = 0.1
	}
	for _, t := range m.trees {
		s += lr * t.predict(x)
	}
	return ml.Sigmoid(s)
}

// Rounds returns the number of fitted trees.
func (m *Model) Rounds() int { return len(m.trees) }
