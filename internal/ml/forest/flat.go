package forest

import "fmt"

// Flat is a forest repacked into contiguous per-field node arrays: one
// struct-of-arrays pool holding every tree's nodes with child indices
// rebased to absolute positions. Traversal touches four flat slices
// instead of pointer-chasing per-tree node slices, and ScoreRows walks
// feature-matrix blocks so the node arrays stay cache-hot across rows.
// Scores are bit-identical to the pointer-walked Forest: per row, leaf
// probabilities accumulate in tree index order and the sum is divided
// by the tree count, exactly like Forest.Score.
//
// A Flat is immutable after Flatten and safe for concurrent use.
type Flat struct {
	width     int
	roots     []int32
	feature   []int32 // -1 for leaves
	threshold []float64
	left      []int32
	right     []int32
	prob      []float64
}

// Flatten repacks the trained forest. It re-validates the structural
// invariants the tree decoder guarantees — child indices strictly
// greater than their parent and inside the tree — so a Flat can never
// loop or index out of its arrays even if handed a corrupt forest, and
// an error here means the forest itself is malformed. A tree with no
// nodes becomes a single 0.5 leaf, matching tree.Score on an empty
// tree.
func (f *Forest) Flatten() (*Flat, error) {
	fl := &Flat{}
	total := 0
	for _, t := range f.trees {
		n := t.NodeCount()
		if n == 0 {
			n = 1 // synthetic 0.5 leaf
		}
		total += n
		if t.Width() > fl.width {
			fl.width = t.Width()
		}
	}
	fl.roots = make([]int32, 0, len(f.trees))
	fl.feature = make([]int32, 0, total)
	fl.threshold = make([]float64, 0, total)
	fl.left = make([]int32, 0, total)
	fl.right = make([]int32, 0, total)
	fl.prob = make([]float64, 0, total)
	base := int32(0)
	for ti, t := range f.trees {
		count := int32(t.NodeCount())
		fl.roots = append(fl.roots, base)
		if count == 0 {
			fl.feature = append(fl.feature, -1)
			fl.threshold = append(fl.threshold, 0)
			fl.left = append(fl.left, 0)
			fl.right = append(fl.right, 0)
			fl.prob = append(fl.prob, 0.5)
			base++
			continue
		}
		for i := int32(0); i < count; i++ {
			nv := t.Node(int(i))
			l, r := int32(0), int32(0)
			if nv.Feature >= 0 {
				if int(nv.Feature) >= fl.width {
					return nil, fmt.Errorf("forest: flatten: tree %d node %d feature %d outside width %d",
						ti, i, nv.Feature, fl.width)
				}
				if nv.Left <= i || nv.Right <= i || nv.Left >= count || nv.Right >= count {
					return nil, fmt.Errorf("forest: flatten: tree %d node %d has dangling or cyclic children", ti, i)
				}
				l, r = base+nv.Left, base+nv.Right
			}
			fl.feature = append(fl.feature, nv.Feature)
			fl.threshold = append(fl.threshold, nv.Threshold)
			fl.left = append(fl.left, l)
			fl.right = append(fl.right, r)
			fl.prob = append(fl.prob, nv.Prob)
		}
		base += count
	}
	return fl, nil
}

// Width returns the feature-vector width scoring requires; x (or the
// matrix stride) must be at least this long.
func (fl *Flat) Width() int { return fl.width }

// NodeCount returns the total flattened node count across all trees.
func (fl *Flat) NodeCount() int { return len(fl.feature) }

// TreeCount returns the number of trees.
func (fl *Flat) TreeCount() int { return len(fl.roots) }

// Score scores one feature vector, bit-identical to Forest.Score.
func (fl *Flat) Score(x []float64) float64 {
	if len(fl.roots) == 0 {
		return 0.5
	}
	var s float64
	for _, root := range fl.roots {
		ni := root
		for {
			f := fl.feature[ni]
			if f < 0 {
				s += fl.prob[ni]
				break
			}
			if x[f] <= fl.threshold[ni] {
				ni = fl.left[ni]
			} else {
				ni = fl.right[ni]
			}
		}
	}
	return s / float64(len(fl.roots))
}

// flatBlockRows is the row-block size of ScoreRows: small enough that a
// block's feature rows fit in cache alongside the node arrays, large
// enough to amortize the per-tree loop overhead.
const flatBlockRows = 64

// ScoreRows scores len(out) rows of the row-major matrix X with stride
// w (which must be >= Width), writing out[i] for row X[i*w : i*w+w].
// It allocates nothing and is bit-identical to calling Score per row:
// within a block the tree loop is outermost, but each row still
// accumulates its leaf probabilities in tree index order.
func (fl *Flat) ScoreRows(X []float64, w int, out []float64) {
	n := len(out)
	if len(fl.roots) == 0 {
		for i := range out {
			out[i] = 0.5
		}
		return
	}
	for i := range out {
		out[i] = 0
	}
	for lo := 0; lo < n; lo += flatBlockRows {
		hi := min(lo+flatBlockRows, n)
		for _, root := range fl.roots {
			for i := lo; i < hi; i++ {
				x := X[i*w : i*w+w]
				ni := root
				for {
					f := fl.feature[ni]
					if f < 0 {
						out[i] += fl.prob[ni]
						break
					}
					if x[f] <= fl.threshold[ni] {
						ni = fl.left[ni]
					} else {
						ni = fl.right[ni]
					}
				}
			}
		}
	}
	nt := float64(len(fl.roots))
	for i := range out {
		out[i] /= nt
	}
}
