// Package forest implements a random forest: bagged CART trees with
// per-split random feature subsets, parallel tree growth, and averaged
// Gini feature importances. The paper finds this model the most accurate
// for swap prediction (Table 6) and uses its importances to explain
// which symptoms matter for infant versus mature failures (Figure 16).
package forest

import (
	"errors"
	"math"

	"ssdfail/internal/dataset"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/ml"
	"ssdfail/internal/ml/tree"
	"ssdfail/internal/parallel"
)

// Config holds the forest hyperparameters.
type Config struct {
	Trees       int
	MaxDepth    int // per-tree depth cap (the paper's tuned knob)
	MinLeaf     int
	MaxFeatures int // candidate features per split; 0 = sqrt(NumFeatures)
	Seed        uint64
	Workers     int // parallel tree growth; <= 0 = all CPUs
}

// DefaultConfig returns the configuration used by the Table 6 harness.
func DefaultConfig() Config {
	return Config{Trees: 100, MaxDepth: 14, MinLeaf: 2}
}

// Forest is a trained random forest.
type Forest struct {
	cfg   Config
	trees []*tree.Tree
}

// New returns an untrained forest.
func New(cfg Config) *Forest { return &Forest{cfg: cfg} }

// NewFactory adapts New to the harness Factory signature.
func NewFactory(cfg Config) ml.Factory {
	return func() ml.Classifier { return New(cfg) }
}

// Name implements ml.Classifier.
func (f *Forest) Name() string { return "Random Forest" }

// Fit implements ml.Classifier. Trees grow in parallel; each consumes an
// RNG stream derived from (Seed, treeIndex) so results are identical at
// any worker count.
func (f *Forest) Fit(m *dataset.Matrix) error {
	n := m.Len()
	if n == 0 {
		return errors.New("forest: empty training set")
	}
	nTrees := f.cfg.Trees
	if nTrees <= 0 {
		nTrees = 100
	}
	maxFeat := f.cfg.MaxFeatures
	if maxFeat <= 0 {
		maxFeat = int(math.Sqrt(float64(m.W())))
		if maxFeat < 1 {
			maxFeat = 1
		}
	}
	root := fleetsim.NewRNG(f.cfg.Seed ^ 0xf0ee57)
	f.trees = make([]*tree.Tree, nTrees)
	errs := make([]error, nTrees)
	parallel.For(f.cfg.Workers, nTrees, func(ti int) {
		rng := root.Derive(uint64(ti))
		rows := make([]int32, n)
		for i := range rows {
			rows[i] = int32(rng.Intn(n)) // bootstrap sample
		}
		tr := tree.New(tree.Config{
			MaxDepth:    f.cfg.MaxDepth,
			MinLeaf:     f.cfg.MinLeaf,
			MinSplit:    2 * f.cfg.MinLeaf,
			MaxFeatures: maxFeat,
			Seed:        rng.Uint64(),
		})
		errs[ti] = tr.FitRows(m, rows)
		f.trees[ti] = tr
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Score implements ml.Classifier: the mean of the trees' leaf
// probabilities.
func (f *Forest) Score(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0.5
	}
	var s float64
	for _, t := range f.trees {
		s += t.Score(x)
	}
	return s / float64(len(f.trees))
}

// Importances returns the forest's feature importances: the per-tree
// normalized Gini importances averaged over trees, summing to ~1. The
// length matches the feature width seen at fit time.
func (f *Forest) Importances() []float64 {
	if len(f.trees) == 0 {
		return make([]float64, dataset.NumFeatures)
	}
	out := make([]float64, len(f.trees[0].Importance()))
	for _, t := range f.trees {
		for i, v := range t.Importance() {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(f.trees))
	}
	return out
}

// TreeCount returns the number of trained trees.
func (f *Forest) TreeCount() int { return len(f.trees) }

// Width returns the feature-vector width the forest was trained (or
// deserialized) with, or 0 for an untrained forest. Score must be
// called with vectors at least this long.
func (f *Forest) Width() int {
	if len(f.trees) == 0 {
		return 0
	}
	return f.trees[0].Width()
}
