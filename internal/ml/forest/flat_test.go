package forest

import (
	"math"
	"testing"

	"ssdfail/internal/dataset"
	"ssdfail/internal/ml/mltest"
)

func trainedForest(t *testing.T) (*Forest, *dataset.Matrix) {
	t.Helper()
	train := mltest.TwoBlobs(300, 3, 1)
	f := New(Config{Trees: 24, MaxDepth: 10, MinLeaf: 2, Seed: 9})
	if err := f.Fit(train); err != nil {
		t.Fatal(err)
	}
	return f, mltest.TwoBlobs(130, 3, 2)
}

// TestFlattenScoreGolden is the flat-vs-pointer golden: every row must
// score bit-identically through Forest.Score, Flat.Score, and the
// blocked Flat.ScoreRows — not merely close, since the serving path
// swaps between them based on availability and any drift would make
// watchlists depend on which path ran.
func TestFlattenScoreGolden(t *testing.T) {
	f, test := trainedForest(t)
	fl, err := f.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if fl.TreeCount() != f.TreeCount() {
		t.Fatalf("TreeCount = %d, want %d", fl.TreeCount(), f.TreeCount())
	}
	if fl.NodeCount() == 0 {
		t.Fatal("flattened forest has no nodes")
	}
	out := make([]float64, test.Len())
	fl.ScoreRows(test.X, test.W(), out)
	for i := 0; i < test.Len(); i++ {
		want := f.Score(test.Row(i))
		if got := fl.Score(test.Row(i)); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("row %d: Flat.Score = %v (%#x), Forest.Score = %v (%#x)",
				i, got, math.Float64bits(got), want, math.Float64bits(want))
		}
		if math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Fatalf("row %d: ScoreRows = %v (%#x), Forest.Score = %v (%#x)",
				i, out[i], math.Float64bits(out[i]), want, math.Float64bits(want))
		}
	}
}

func TestFlattenUntrainedForest(t *testing.T) {
	fl, err := New(DefaultConfig()).Flatten()
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, dataset.NumFeatures)
	if s := fl.Score(x); s != 0.5 {
		t.Errorf("untrained Flat.Score = %v, want 0.5", s)
	}
	out := make([]float64, 3)
	fl.ScoreRows(make([]float64, 3*dataset.NumFeatures), dataset.NumFeatures, out)
	for i, s := range out {
		if s != 0.5 {
			t.Errorf("untrained ScoreRows[%d] = %v, want 0.5", i, s)
		}
	}
}

// TestFlatScoreAllocs pins the zero-allocation contract of the flat
// scoring hot path.
func TestFlatScoreAllocs(t *testing.T) {
	f, test := trainedForest(t)
	fl, err := f.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	row := test.Row(0)
	var sink float64
	if a := testing.AllocsPerRun(200, func() { sink += fl.Score(row) }); a != 0 {
		t.Errorf("Flat.Score: %.1f allocs/op, want 0", a)
	}
	out := make([]float64, test.Len())
	if a := testing.AllocsPerRun(50, func() { fl.ScoreRows(test.X, test.W(), out) }); a != 0 {
		t.Errorf("Flat.ScoreRows: %.1f allocs/op, want 0", a)
	}
	_ = sink
}

// FuzzFlatForestLoad holds the decoder/flattener pair to a joint
// invariant: any byte string UnmarshalBinary accepts must also Flatten
// — the tree decoder's structural validation (feature inside width,
// children strictly below their parent and inside the tree) is exactly
// what Flatten re-checks — and the flat form must score bit-identically
// to the pointer walk. No input may panic, loop, or index out of range.
func FuzzFlatForestLoad(f *testing.F) {
	train := mltest.TwoBlobs(120, 3, 1)
	small := New(Config{Trees: 3, MaxDepth: 4, MinLeaf: 2, Seed: 2})
	if err := small.Fit(train); err != nil {
		f.Fatal(err)
	}
	seed, err := small.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	for _, i := range []int{0, 8, len(seed) / 3, len(seed) - 1} {
		mut := append([]byte(nil), seed...)
		mut[i] ^= 0x40
		f.Add(mut)
	}
	empty, err := New(DefaultConfig()).MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)

	f.Fuzz(func(t *testing.T, data []byte) {
		var forest Forest
		if err := forest.UnmarshalBinary(data); err != nil {
			return
		}
		fl, err := forest.Flatten()
		if err != nil {
			t.Fatalf("decode accepted but Flatten rejected: %v", err)
		}
		width := fl.Width()
		if width > 1<<12 {
			// Structurally valid but absurdly wide; scoring it proves
			// nothing beyond what a capped width already covers.
			return
		}
		x := make([]float64, width)
		for i := range x {
			x[i] = float64(i%7)*0.37 - 1
		}
		want := forest.Score(x)
		if got := fl.Score(x); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Flat.Score = %v, Forest.Score = %v", got, want)
		}
		out := make([]float64, 1)
		fl.ScoreRows(x, width, out)
		if width > 0 && math.Float64bits(out[0]) != math.Float64bits(want) {
			t.Fatalf("ScoreRows = %v, Forest.Score = %v", out[0], want)
		}
	})
}
