package forest

import (
	"testing"

	"ssdfail/internal/dataset"
	"ssdfail/internal/ml/mltest"
)

func TestLearnsSeparableBlobs(t *testing.T) {
	train := mltest.TwoBlobs(300, 3, 1)
	test := mltest.TwoBlobs(150, 3, 2)
	m := New(Config{Trees: 40, MaxDepth: 10, MinLeaf: 2, Seed: 1})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, test.Len())
	for i := range scores {
		scores[i] = m.Score(test.Row(i))
	}
	if auc := mltest.AUC(scores, test.Y); auc < 0.95 {
		t.Errorf("AUC = %.3f, want >= 0.95", auc)
	}
}

func TestHandlesNonlinearXOR(t *testing.T) {
	train := mltest.XOR(800, 1)
	test := mltest.XOR(400, 2)
	m := New(Config{Trees: 60, MaxDepth: 10, MinLeaf: 2, Seed: 1})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, test.Len())
	for i := range scores {
		scores[i] = m.Score(test.Row(i))
	}
	if auc := mltest.AUC(scores, test.Y); auc < 0.85 {
		t.Errorf("XOR AUC = %.3f", auc)
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	train := mltest.TwoBlobs(200, 2, 3)
	a := New(Config{Trees: 16, MaxDepth: 8, MinLeaf: 2, Seed: 5, Workers: 1})
	b := New(Config{Trees: 16, MaxDepth: 8, MinLeaf: 2, Seed: 5, Workers: 8})
	if err := a.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(train); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if a.Score(train.Row(i)) != b.Score(train.Row(i)) {
			t.Fatal("forest differs across worker counts")
		}
	}
}

func TestImportancesIdentifySignal(t *testing.T) {
	train := mltest.TwoBlobs(500, 3, 4)
	m := New(Config{Trees: 30, MaxDepth: 10, MinLeaf: 2, Seed: 2})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	imp := m.Importances()
	if len(imp) != dataset.NumFeatures {
		t.Fatalf("importances len = %d", len(imp))
	}
	var signal, sum float64
	for f, v := range imp {
		sum += v
		if f < 3 {
			signal += v
		}
	}
	if sum < 0.9 || sum > 1.1 {
		t.Errorf("importances sum = %v", sum)
	}
	if signal/sum < 0.6 {
		t.Errorf("signal share = %.3f, want >= 0.6", signal/sum)
	}
}

func TestEmptyTrainingSetErrors(t *testing.T) {
	m := New(DefaultConfig())
	if err := m.Fit(&dataset.Matrix{}); err == nil {
		t.Error("Fit on empty set should error")
	}
	if s := m.Score(make([]float64, dataset.NumFeatures)); s != 0.5 {
		t.Errorf("untrained Score = %v", s)
	}
	if imp := m.Importances(); len(imp) != dataset.NumFeatures {
		t.Error("untrained Importances should still be sized")
	}
}

func TestForestBeatsSingleTreeOnNoisyData(t *testing.T) {
	// With weak signal, bagging should not do worse than one tree.
	train := mltest.TwoBlobs(400, 1.0, 6)
	test := mltest.TwoBlobs(400, 1.0, 7)
	f := New(Config{Trees: 80, MaxDepth: 12, MinLeaf: 1, Seed: 1})
	if err := f.Fit(train); err != nil {
		t.Fatal(err)
	}
	single := New(Config{Trees: 1, MaxDepth: 12, MinLeaf: 1, Seed: 1})
	if err := single.Fit(train); err != nil {
		t.Fatal(err)
	}
	score := func(m *Forest) float64 {
		s := make([]float64, test.Len())
		for i := range s {
			s[i] = m.Score(test.Row(i))
		}
		return mltest.AUC(s, test.Y)
	}
	fa, sa := score(f), score(single)
	if fa+0.02 < sa {
		t.Errorf("forest AUC %.3f clearly below single tree %.3f", fa, sa)
	}
	if f.TreeCount() != 80 {
		t.Errorf("TreeCount = %d", f.TreeCount())
	}
}
