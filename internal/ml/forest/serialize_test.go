package forest

import (
	"encoding/binary"
	"strings"
	"testing"

	"ssdfail/internal/ml/mltest"
)

func TestForestSerializationRoundTrip(t *testing.T) {
	train := mltest.TwoBlobs(200, 3, 1)
	f := New(Config{Trees: 20, MaxDepth: 8, MinLeaf: 2, Seed: 3})
	if err := f.Fit(train); err != nil {
		t.Fatal(err)
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Forest
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.TreeCount() != f.TreeCount() {
		t.Fatalf("tree count %d vs %d", g.TreeCount(), f.TreeCount())
	}
	for i := 0; i < train.Len(); i += 7 {
		x := train.Row(i)
		if f.Score(x) != g.Score(x) {
			t.Fatalf("score mismatch at row %d", i)
		}
	}
	fi, gi := f.Importances(), g.Importances()
	for i := range fi {
		if fi[i] != gi[i] {
			t.Fatal("importances differ after round trip")
		}
	}
}

func TestForestUnmarshalRejectsGarbage(t *testing.T) {
	var f Forest
	cases := [][]byte{
		nil,
		[]byte("junk"),
		[]byte("FRSTxxxxxxxxxxxx"),
	}
	for _, c := range cases {
		if err := f.UnmarshalBinary(c); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
	// Truncation of a valid stream must fail, not panic.
	train := mltest.TwoBlobs(50, 3, 2)
	g := New(Config{Trees: 3, MaxDepth: 4, MinLeaf: 2, Seed: 1})
	if err := g.Fit(train); err != nil {
		t.Fatal(err)
	}
	data, _ := g.MarshalBinary()
	for _, cut := range []int{5, 13, len(data) / 2, len(data) - 3} {
		if err := f.UnmarshalBinary(data[:cut]); err == nil {
			t.Errorf("accepted truncation at %d", cut)
		}
	}
}

func TestForestUnmarshalCorruptInputs(t *testing.T) {
	train := mltest.TwoBlobs(50, 3, 2)
	g := New(Config{Trees: 3, MaxDepth: 4, MinLeaf: 2, Seed: 1})
	if err := g.Fit(train); err != nil {
		t.Fatal(err)
	}
	valid, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	fresh := func() []byte { return append([]byte(nil), valid...) }
	put32 := func(b []byte, off int, v uint32) []byte {
		binary.LittleEndian.PutUint32(b[off:], v)
		return b
	}
	cases := []struct {
		name string
		data []byte
		want string // substring of the expected error
	}{
		{"bad magic", append([]byte("FRSX"), fresh()[4:]...), "bad magic"},
		{"wrong version", put32(fresh(), 4, forestVersion+1), "unsupported version"},
		{"header only", fresh()[:12], "exceeds payload size"},
		// A tree count the remaining bytes cannot possibly hold must be
		// rejected before allocating count pointers (alloc bomb).
		{"tree count bomb", put32(fresh(), 8, 1<<19), "exceeds payload size"},
		{"tree count implausible", put32(fresh(), 8, 1<<21), "implausible tree count"},
		{"tree length past end", put32(fresh(), 12, 1<<30), "truncated tree 0"},
		{"trailing garbage", append(fresh(), 0xca, 0xfe), "trailing"},
		// Corrupting an inner tree's magic must fail with the tree's
		// position in the message, not be skipped.
		{"inner tree corrupt", put32(fresh(), 16, 0), "tree 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var f Forest
			err := f.UnmarshalBinary(tc.data)
			if err == nil {
				t.Fatalf("accepted corrupt input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}
