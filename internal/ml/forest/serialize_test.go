package forest

import (
	"testing"

	"ssdfail/internal/ml/mltest"
)

func TestForestSerializationRoundTrip(t *testing.T) {
	train := mltest.TwoBlobs(200, 3, 1)
	f := New(Config{Trees: 20, MaxDepth: 8, MinLeaf: 2, Seed: 3})
	if err := f.Fit(train); err != nil {
		t.Fatal(err)
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Forest
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.TreeCount() != f.TreeCount() {
		t.Fatalf("tree count %d vs %d", g.TreeCount(), f.TreeCount())
	}
	for i := 0; i < train.Len(); i += 7 {
		x := train.Row(i)
		if f.Score(x) != g.Score(x) {
			t.Fatalf("score mismatch at row %d", i)
		}
	}
	fi, gi := f.Importances(), g.Importances()
	for i := range fi {
		if fi[i] != gi[i] {
			t.Fatal("importances differ after round trip")
		}
	}
}

func TestForestUnmarshalRejectsGarbage(t *testing.T) {
	var f Forest
	cases := [][]byte{
		nil,
		[]byte("junk"),
		[]byte("FRSTxxxxxxxxxxxx"),
	}
	for _, c := range cases {
		if err := f.UnmarshalBinary(c); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
	// Truncation of a valid stream must fail, not panic.
	train := mltest.TwoBlobs(50, 3, 2)
	g := New(Config{Trees: 3, MaxDepth: 4, MinLeaf: 2, Seed: 1})
	if err := g.Fit(train); err != nil {
		t.Fatal(err)
	}
	data, _ := g.MarshalBinary()
	for _, cut := range []int{5, 13, len(data) / 2, len(data) - 3} {
		if err := f.UnmarshalBinary(data[:cut]); err == nil {
			t.Errorf("accepted truncation at %d", cut)
		}
	}
}
