package forest

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"ssdfail/internal/ml/tree"
)

// Binary serialization of a trained forest. Layout (little-endian):
//
//	magic "FRST" | version u32 | treeCount u32
//	treeCount * (byteLen u32, tree bytes)

const (
	forestMagic   = "FRST"
	forestVersion = 1
)

// MarshalBinary implements encoding.BinaryMarshaler.
func (f *Forest) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(forestMagic)
	w32 := func(v uint32) { var b [4]byte; binary.LittleEndian.PutUint32(b[:], v); buf.Write(b[:]) }
	w32(forestVersion)
	w32(uint32(len(f.trees)))
	for _, t := range f.trees {
		tb, err := t.MarshalBinary()
		if err != nil {
			return nil, err
		}
		w32(uint32(len(tb)))
		buf.Write(tb)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The payload is
// untrusted (the serving daemon loads it from disk at runtime): the
// declared tree count is checked against the bytes actually present
// before allocating, every tree must decode from exactly its declared
// span, and trailing garbage after the last tree is rejected.
func (f *Forest) UnmarshalBinary(data []byte) error {
	if len(data) < 12 || string(data[:4]) != forestMagic {
		return fmt.Errorf("forest: bad magic")
	}
	off := 4
	r32 := func() (uint32, error) {
		if off+4 > len(data) {
			return 0, fmt.Errorf("forest: truncated")
		}
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return v, nil
	}
	ver, err := r32()
	if err != nil || ver != forestVersion {
		return fmt.Errorf("forest: unsupported version")
	}
	count, err := r32()
	if err != nil {
		return err
	}
	if count > 1<<20 {
		return fmt.Errorf("forest: implausible tree count %d", count)
	}
	// Each tree costs at least a length prefix; a count the remaining
	// bytes cannot hold is corrupt — reject before allocating for it.
	if int(count) > (len(data)-off)/4 {
		return fmt.Errorf("forest: tree count %d exceeds payload size %d", count, len(data))
	}
	f.trees = make([]*tree.Tree, count)
	for i := range f.trees {
		n, err := r32()
		if err != nil {
			return err
		}
		if int(n) < 0 || off+int(n) > len(data) {
			return fmt.Errorf("forest: truncated tree %d", i)
		}
		t := &tree.Tree{}
		if err := t.UnmarshalBinary(data[off : off+int(n)]); err != nil {
			return fmt.Errorf("forest: tree %d: %w", i, err)
		}
		f.trees[i] = t
		off += int(n)
	}
	if off != len(data) {
		return fmt.Errorf("forest: %d trailing bytes after last tree", len(data)-off)
	}
	return nil
}
