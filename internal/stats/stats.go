// Package stats implements the nonparametric statistics used by the
// paper's characterization: empirical CDFs (including CDFs with an
// infinity mass, as in Figures 3 and 5), quantiles, rank transforms,
// Spearman and Pearson correlation, histograms, and binned rates.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN if len < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the common default).
// It returns NaN for empty input and does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile for already-sorted input, without copying.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Quantiles returns the quantiles of xs at each probability in qs,
// sorting xs only once.
func Quantiles(xs []float64, qs ...float64) []float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = QuantileSorted(sorted, q)
	}
	return out
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Ranks returns the fractional ranks of xs (average rank for ties),
// with ranks starting at 1. This is the rank transform underlying the
// Spearman correlation.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Pearson returns the Pearson correlation coefficient of (xs, ys).
// It returns NaN if the lengths differ, are < 2, or either side has
// zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of (xs, ys): the
// Pearson correlation of the fractional ranks. The paper uses Spearman
// correlations (Table 2) because they capture arbitrary monotonic
// relationships, not just linear ones.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// CorrelationMatrix computes the matrix of pairwise correlations among
// the given named columns using the supplied correlation function
// (Spearman or Pearson). All columns must have equal length.
func CorrelationMatrix(cols [][]float64, corr func(a, b []float64) float64) [][]float64 {
	n := len(cols)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			c := corr(cols[i], cols[j])
			m[i][j], m[j][i] = c, c
		}
	}
	return m
}

// Histogram counts xs into nbins equal-width bins over [min, max].
// Values outside the range are clamped into the edge bins.
func Histogram(xs []float64, min, max float64, nbins int) []int {
	counts := make([]int, nbins)
	if nbins == 0 || max <= min {
		return counts
	}
	w := (max - min) / float64(nbins)
	for _, x := range xs {
		b := int((x - min) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}

// BinnedRate computes, for each bin, events[i]/exposure[i] (NaN when the
// exposure is zero). It is the normalization the paper applies in
// Figures 6 and 8 to turn raw counts into unbiased failure rates.
func BinnedRate(events, exposure []float64) []float64 {
	n := len(events)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if i < len(exposure) && exposure[i] > 0 {
			out[i] = events[i] / exposure[i]
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// Summary holds the five-number summary plus mean of a sample.
type Summary struct {
	N                    int
	Min, Q1, Median      float64
	Q3, Max, Mean, Stdev float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		nan := math.NaN()
		s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean, s.Stdev = nan, nan, nan, nan, nan, nan, nan
		return s
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Q1 = QuantileSorted(sorted, 0.25)
	s.Median = QuantileSorted(sorted, 0.5)
	s.Q3 = QuantileSorted(sorted, 0.75)
	s.Mean = Mean(xs)
	s.Stdev = StdDev(xs)
	return s
}
