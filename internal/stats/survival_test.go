package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// newTestRand returns a seeded math/rand source for property tests.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestKaplanMeierNoCensoring(t *testing.T) {
	// Without censoring, KM equals the empirical survival function.
	obs := []Observation{{1, false}, {2, false}, {3, false}, {4, false}}
	km := NewKaplanMeier(obs)
	cases := []struct{ t, want float64 }{
		{0.5, 1}, {1, 0.75}, {2.5, 0.5}, {4, 0}, {10, 0},
	}
	for _, c := range cases {
		if got := km.Survival(c.t); !almostEq(got, c.want, 1e-12) {
			t.Errorf("S(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestKaplanMeierTextbookExample(t *testing.T) {
	// Classic worked example: events at 6 (3x), 7, 10, 13, 16, 22, 23;
	// censored at 6, 9, 10, 11, 17, 19, 20, 25, 32, 32, 34, 35
	// (Freireich leukemia data, 6-MP arm). S(6) = 0.857, S(10) = 0.753.
	obs := []Observation{
		{6, false}, {6, false}, {6, false}, {6, true},
		{7, false}, {9, true}, {10, false}, {10, true}, {11, true},
		{13, false}, {16, false}, {17, true}, {19, true}, {20, true},
		{22, false}, {23, false}, {25, true}, {32, true}, {32, true},
		{34, true}, {35, true},
	}
	km := NewKaplanMeier(obs)
	if got := km.Survival(6); !almostEq(got, 0.857, 0.001) {
		t.Errorf("S(6) = %.4f, want 0.857", got)
	}
	if got := km.Survival(10); !almostEq(got, 0.753, 0.001) {
		t.Errorf("S(10) = %.4f, want 0.753", got)
	}
	if got := km.Median(); got != 23 {
		t.Errorf("median = %v, want 23", got)
	}
}

func TestKaplanMeierAllCensored(t *testing.T) {
	obs := []Observation{{5, true}, {10, true}}
	km := NewKaplanMeier(obs)
	if got := km.Survival(100); got != 1 {
		t.Errorf("all-censored survival = %v, want 1", got)
	}
	if got := km.Median(); !math.IsInf(got, 1) {
		t.Errorf("all-censored median = %v, want +Inf", got)
	}
	ts, _ := km.Points()
	if len(ts) != 0 {
		t.Error("all-censored curve should have no steps")
	}
}

func TestKaplanMeierEmpty(t *testing.T) {
	km := NewKaplanMeier(nil)
	if km.Survival(1) != 1 || km.CDF(1) != 0 {
		t.Error("empty estimator should be the unit survival function")
	}
}

func TestNelsonAalenMatchesHandComputation(t *testing.T) {
	// Events at 1 (n=4 at risk), 2 (3 at risk), censor at 3, event at 4
	// (1 at risk): H = 1/4, then +1/3, then +1/1.
	obs := []Observation{{1, false}, {2, false}, {3, true}, {4, false}}
	got := NelsonAalen(obs, []float64{0.5, 1, 2, 3.9, 4, 100})
	want := []float64{0, 0.25, 0.25 + 1.0/3, 0.25 + 1.0/3, 0.25 + 1.0/3 + 1, 0.25 + 1.0/3 + 1}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Fatalf("H at %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// Property: the KM survival function is nonincreasing in t and within
// [0, 1]; censoring can only raise it pointwise relative to treating
// censored observations as events.
func TestKaplanMeierMonotoneProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := newTestRand(seed)
		n := 5 + rng.Intn(50)
		obs := make([]Observation, n)
		asEvents := make([]Observation, n)
		for i := range obs {
			tm := float64(1 + rng.Intn(30))
			cens := rng.Intn(3) == 0
			obs[i] = Observation{tm, cens}
			asEvents[i] = Observation{tm, false}
		}
		km := NewKaplanMeier(obs)
		kmAll := NewKaplanMeier(asEvents)
		prev := 1.0
		for tt := 0.0; tt <= 31; tt++ {
			s := km.Survival(tt)
			if s < -1e-12 || s > 1+1e-12 || s > prev+1e-12 {
				return false
			}
			if s+1e-12 < kmAll.Survival(tt) {
				return false // censoring must not lower survival
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
