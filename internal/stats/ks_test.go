package stats

import (
	"math"
	"testing"
)

func TestKSStatisticIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := KSStatistic(xs, xs); got > 0.2 {
		t.Errorf("KS of identical samples = %v", got)
	}
}

func TestKSStatisticDisjointSamples(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{10, 11, 12}
	if got := KSStatistic(xs, ys); got != 1 {
		t.Errorf("KS of disjoint samples = %v, want 1", got)
	}
}

func TestKSStatisticEmpty(t *testing.T) {
	if !math.IsNaN(KSStatistic(nil, []float64{1})) {
		t.Error("empty sample should give NaN")
	}
}

func TestKSSameDistributionLargeSamples(t *testing.T) {
	rng := newTestRand(4)
	xs := make([]float64, 3000)
	ys := make([]float64, 3000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	d := KSStatistic(xs, ys)
	p := KSPValue(d, len(xs), len(ys))
	if p < 0.001 {
		t.Errorf("same-distribution KS rejected: d=%v p=%v", d, p)
	}
	// Shifted distribution must be strongly rejected.
	for i := range ys {
		ys[i] += 1
	}
	d = KSStatistic(xs, ys)
	if p = KSPValue(d, len(xs), len(ys)); p > 1e-6 {
		t.Errorf("shifted distribution not rejected: d=%v p=%v", d, p)
	}
}

func TestKSPValueBounds(t *testing.T) {
	if p := KSPValue(0, 100, 100); p < 0.99 {
		t.Errorf("p for d=0 should be ~1, got %v", p)
	}
	if p := KSPValue(1, 100, 100); p > 1e-10 {
		t.Errorf("p for d=1 should be ~0, got %v", p)
	}
	if !math.IsNaN(KSPValue(math.NaN(), 10, 10)) {
		t.Error("NaN d should give NaN p")
	}
}

func TestKSUniform(t *testing.T) {
	// A uniform grid should have a tiny KS statistic.
	n := 1000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = (float64(i) + 0.5) / float64(n)
	}
	if d := KSUniform(xs); d > 0.01 {
		t.Errorf("uniform grid KS = %v", d)
	}
	// A squashed sample is far from uniform.
	for i := range xs {
		xs[i] = xs[i] * 0.5
	}
	if d := KSUniform(xs); d < 0.4 {
		t.Errorf("squashed sample KS = %v, want ~0.5", d)
	}
	if !math.IsNaN(KSUniform(nil)) {
		t.Error("empty KSUniform should be NaN")
	}
}
