package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v", got)
	}
	if got := StdDev(xs); !almostEq(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of singleton should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty should be NaN")
	}
	if !math.IsNaN(Quantile(xs, math.NaN())) {
		t.Error("Quantile at NaN should be NaN")
	}
	// Input must not be modified.
	if xs[0] != 3 {
		t.Error("Quantile modified its input")
	}
}

func TestQuantilesBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	qs := []float64{0.1, 0.25, 0.5, 0.75, 0.9}
	batch := Quantiles(xs, qs...)
	for i, q := range qs {
		if got := Quantile(xs, q); !almostEq(got, batch[i], 1e-12) {
			t.Errorf("Quantiles[%v] = %v, want %v", q, batch[i], got)
		}
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("Median = %v, want 3", got)
	}
}

func TestRanksNoTies(t *testing.T) {
	got := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksWithTies(t *testing.T) {
	got := Ranks([]float64{1, 2, 2, 3})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
	// All equal: every rank is the average (n+1)/2.
	got = Ranks([]float64{7, 7, 7})
	for _, r := range got {
		if r != 2 {
			t.Fatalf("Ranks of constant = %v", got)
		}
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Errorf("perfect linear Pearson = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEq(got, -1, 1e-12) {
		t.Errorf("perfect negative Pearson = %v", got)
	}
	if !math.IsNaN(Pearson(xs, []float64{1, 1, 1, 1, 1})) {
		t.Error("Pearson with zero variance should be NaN")
	}
	if !math.IsNaN(Pearson(xs, xs[:3])) {
		t.Error("Pearson with mismatched lengths should be NaN")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Spearman detects any monotone relationship as 1, even nonlinear.
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x) // monotone, very nonlinear
	}
	if got := Spearman(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Errorf("Spearman of monotone = %v, want 1", got)
	}
	// Pearson of the same data is well below 1.
	if p := Pearson(xs, ys); p > 0.95 {
		t.Errorf("Pearson of convex monotone unexpectedly high: %v", p)
	}
}

func TestSpearmanIndependentNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 5000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	if got := Spearman(xs, ys); math.Abs(got) > 0.05 {
		t.Errorf("Spearman of independent samples = %v, want ~0", got)
	}
}

func TestCorrelationMatrix(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{4, 3, 2, 1}
	c := []float64{1, 3, 2, 4}
	m := CorrelationMatrix([][]float64{a, b, c}, Spearman)
	if len(m) != 3 {
		t.Fatalf("matrix size %d", len(m))
	}
	for i := 0; i < 3; i++ {
		if m[i][i] != 1 {
			t.Errorf("diagonal [%d][%d] = %v", i, i, m[i][i])
		}
		for j := 0; j < 3; j++ {
			if m[i][j] != m[j][i] {
				t.Errorf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
	if !almostEq(m[0][1], -1, 1e-12) {
		t.Errorf("m[0][1] = %v, want -1", m[0][1])
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.5, 1.5, 1.6, 2.5, -10, 99}
	got := Histogram(xs, 0, 3, 3)
	want := []int{2, 2, 2} // -10 clamps into bin 0, 99 into bin 2
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Histogram = %v, want %v", got, want)
		}
	}
	if got := Histogram(xs, 3, 3, 3); got[0] != 0 {
		t.Error("degenerate range should give zero counts")
	}
}

func TestBinnedRate(t *testing.T) {
	got := BinnedRate([]float64{1, 2, 3}, []float64{10, 0, 6})
	if got[0] != 0.1 || !math.IsNaN(got[1]) || got[2] != 0.5 {
		t.Errorf("BinnedRate = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Median) {
		t.Errorf("empty Summarize = %+v", empty)
	}
}

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 0.75}, {4, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almostEq(got, c.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.N() != 4 {
		t.Errorf("N = %d", e.N())
	}
	if e.CensoredFraction() != 0 {
		t.Errorf("CensoredFraction = %v", e.CensoredFraction())
	}
}

func TestECDFCensored(t *testing.T) {
	// 2 finite + 2 censored: finite mass tops out at 0.5.
	e := NewCensoredECDF([]float64{1, 2}, 2)
	if got := e.At(100); got != 0.5 {
		t.Errorf("At(100) = %v, want 0.5", got)
	}
	if got := e.CensoredFraction(); got != 0.5 {
		t.Errorf("CensoredFraction = %v, want 0.5", got)
	}
	if got := e.Quantile(0.25); got != 1 {
		t.Errorf("Quantile(0.25) = %v, want 1", got)
	}
	if got := e.Quantile(0.75); !math.IsInf(got, 1) {
		t.Errorf("Quantile(0.75) = %v, want +Inf", got)
	}
	if got := NewCensoredECDF(nil, -3).infMass; got != 0 {
		t.Errorf("negative censored clamped to %d", got)
	}
}

func TestECDFQuantileEdges(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30})
	if got := e.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := e.Quantile(1); got != 30 {
		t.Errorf("Quantile(1) = %v", got)
	}
	if !math.IsNaN(e.Quantile(-0.1)) || !math.IsNaN(e.Quantile(1.1)) {
		t.Error("out-of-range quantile should be NaN")
	}
	var empty ECDF
	if !math.IsNaN(empty.At(1)) {
		t.Error("At on empty ECDF should be NaN")
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{2, 1, 2, 3})
	xs, ps := e.Points()
	wantX := []float64{1, 2, 3}
	wantP := []float64{0.25, 0.75, 1}
	if len(xs) != 3 {
		t.Fatalf("Points returned %d xs", len(xs))
	}
	for i := range wantX {
		if xs[i] != wantX[i] || !almostEq(ps[i], wantP[i], 1e-12) {
			t.Fatalf("Points = %v %v", xs, ps)
		}
	}
}

func TestECDFEval(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3})
	got := e.Eval([]float64{0, 2, 5})
	want := []float64{0, 2.0 / 3, 1}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Fatalf("Eval = %v", got)
		}
	}
}

func TestLogSpace(t *testing.T) {
	got := LogSpace(1, 100, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-9) {
			t.Fatalf("LogSpace = %v", got)
		}
	}
	if LogSpace(0, 10, 3) != nil {
		t.Error("LogSpace with lo=0 should be nil")
	}
	if LogSpace(10, 5, 3) != nil {
		t.Error("LogSpace with hi<lo should be nil")
	}
	if got := LogSpace(5, 50, 1); len(got) != 1 || got[0] != 5 {
		t.Errorf("LogSpace n=1 = %v", got)
	}
}

func TestLinSpace(t *testing.T) {
	got := LinSpace(0, 10, 5)
	want := []float64{0, 2.5, 5, 7.5, 10}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Fatalf("LinSpace = %v", got)
		}
	}
	if got := LinSpace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("LinSpace n=1 = %v", got)
	}
	if LinSpace(0, 1, 0) != nil {
		t.Error("LinSpace n=0 should be nil")
	}
}

// Property: Spearman is invariant under strictly monotone transforms.
func TestSpearmanMonotoneInvarianceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = xs[i]*0.5 + rng.NormFloat64()
		}
		base := Spearman(xs, ys)
		tx := make([]float64, n)
		for i, x := range xs {
			tx[i] = math.Exp(x) // strictly increasing
		}
		return almostEq(base, Spearman(tx, ys), 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: ECDF.At is nondecreasing and bounded by 1 - censoredFraction.
func TestECDFMonotoneProperty(t *testing.T) {
	prop := func(seed int64, censoredRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		censored := int(censoredRaw % 20)
		e := NewCensoredECDF(xs, censored)
		prev := 0.0
		for _, x := range LinSpace(-40, 40, 81) {
			p := e.At(x)
			if p < prev-1e-12 || p > 1-e.CensoredFraction()+1e-12 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantile is the inverse of At up to sample resolution.
func TestQuantileInverseProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(30))
		}
		e := NewECDF(xs)
		sort.Float64s(xs)
		for _, q := range []float64{0.1, 0.3, 0.5, 0.9, 1.0} {
			x := e.Quantile(q)
			if e.At(x) < q-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
