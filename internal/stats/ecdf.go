package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over a finite
// sample, optionally carrying a point mass at +infinity for censored
// observations ("not observed to end", as in the paper's Figures 3 and 5
// where operational periods and repairs outlive the six-year trace).
type ECDF struct {
	sorted  []float64 // finite observations, ascending
	infMass int       // number of observations at +infinity (censored)
}

// NewECDF builds an ECDF from a finite sample. The input is copied.
func NewECDF(xs []float64) *ECDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// NewCensoredECDF builds an ECDF from finite observations plus a count of
// censored (infinite) observations.
func NewCensoredECDF(finite []float64, censored int) *ECDF {
	e := NewECDF(finite)
	if censored < 0 {
		censored = 0
	}
	e.infMass = censored
	return e
}

// N returns the total number of observations, including censored ones.
func (e *ECDF) N() int { return len(e.sorted) + e.infMass }

// CensoredFraction returns the share of probability mass at +infinity.
func (e *ECDF) CensoredFraction() float64 {
	if e.N() == 0 {
		return 0
	}
	return float64(e.infMass) / float64(e.N())
}

// At returns P(X <= x). Censored mass is never included for finite x.
func (e *ECDF) At(x float64) float64 {
	if e.N() == 0 {
		return math.NaN()
	}
	// Count of sorted values <= x.
	k := sort.SearchFloat64s(e.sorted, x)
	for k < len(e.sorted) && e.sorted[k] == x {
		k++
	}
	return float64(k) / float64(e.N())
}

// Quantile returns the smallest x with P(X <= x) >= q, or +Inf when the
// q-th quantile falls in the censored mass. q outside [0,1] yields NaN.
func (e *ECDF) Quantile(q float64) float64 {
	if e.N() == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	k := int(math.Ceil(q * float64(e.N())))
	if k <= 0 {
		k = 1
	}
	if k > len(e.sorted) {
		return math.Inf(1)
	}
	return e.sorted[k-1]
}

// Points returns the step points of the ECDF as (x, P(X <= x)) pairs at
// each distinct finite observation, suitable for plotting.
func (e *ECDF) Points() (xs, ps []float64) {
	n := e.N()
	for i := 0; i < len(e.sorted); {
		j := i
		for j+1 < len(e.sorted) && e.sorted[j+1] == e.sorted[i] {
			j++
		}
		xs = append(xs, e.sorted[i])
		ps = append(ps, float64(j+1)/float64(n))
		i = j + 1
	}
	return xs, ps
}

// Eval evaluates the ECDF at each of the given points.
func (e *ECDF) Eval(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = e.At(x)
	}
	return out
}

// LogSpace returns n points log-uniformly spaced between lo and hi
// (inclusive), for evaluating CDFs plotted on logarithmic axes
// (Figures 4, 5, 10).
func LogSpace(lo, hi float64, n int) []float64 {
	if n <= 0 || lo <= 0 || hi <= lo {
		return nil
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = lo
		return out
	}
	ratio := math.Log(hi / lo)
	for i := 0; i < n; i++ {
		out[i] = lo * math.Exp(ratio*float64(i)/float64(n-1))
	}
	return out
}

// LinSpace returns n evenly spaced points between lo and hi inclusive.
func LinSpace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = lo
		return out
	}
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + step*float64(i)
	}
	return out
}
