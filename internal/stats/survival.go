package stats

import (
	"math"
	"sort"
)

// Survival analysis for right-censored durations. The paper's Figures 3
// and 5 display censored mass as a bar at infinity; the Kaplan-Meier
// estimator is the principled alternative: it uses censored operational
// periods and repairs as partial information instead of discarding them,
// which matters because more than 80% of operational periods and half of
// the repairs outlive the trace.

// Observation is one (possibly censored) duration.
type Observation struct {
	Time     float64
	Censored bool // true when the event was not observed by Time
}

// KaplanMeier is the product-limit estimate of the survival function.
type KaplanMeier struct {
	times    []float64 // distinct event times, ascending
	survival []float64 // S(t) just after each event time
}

// NewKaplanMeier fits the estimator to the observations.
func NewKaplanMeier(obs []Observation) *KaplanMeier {
	sorted := make([]Observation, len(obs))
	copy(sorted, obs)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Time < sorted[b].Time })

	km := &KaplanMeier{}
	atRisk := float64(len(sorted))
	s := 1.0
	i := 0
	for i < len(sorted) {
		t := sorted[i].Time
		var events, removed float64
		for i < len(sorted) && sorted[i].Time == t {
			if !sorted[i].Censored {
				events++
			}
			removed++
			i++
		}
		if events > 0 && atRisk > 0 {
			s *= 1 - events/atRisk
			km.times = append(km.times, t)
			km.survival = append(km.survival, s)
		}
		atRisk -= removed
	}
	return km
}

// Survival returns S(t) = P(T > t).
func (km *KaplanMeier) Survival(t float64) float64 {
	if len(km.times) == 0 {
		return 1
	}
	// Find the last event time <= t.
	idx := sort.SearchFloat64s(km.times, t)
	for idx < len(km.times) && km.times[idx] == t {
		idx++
	}
	if idx == 0 {
		return 1
	}
	return km.survival[idx-1]
}

// CDF returns F(t) = 1 - S(t), the event probability by time t.
func (km *KaplanMeier) CDF(t float64) float64 { return 1 - km.Survival(t) }

// Median returns the smallest event time with S(t) <= 0.5, or +Inf when
// the survival curve never reaches one half (heavy censoring).
func (km *KaplanMeier) Median() float64 {
	for i, s := range km.survival {
		if s <= 0.5 {
			return km.times[i]
		}
	}
	return math.Inf(1)
}

// Points returns the step points (t, S(t)) of the survival curve.
func (km *KaplanMeier) Points() (ts, ss []float64) {
	ts = append(ts, km.times...)
	ss = append(ss, km.survival...)
	return ts, ss
}

// NelsonAalen returns the Nelson-Aalen estimate of the cumulative hazard
// H(t) evaluated at each of the given times.
func NelsonAalen(obs []Observation, at []float64) []float64 {
	sorted := make([]Observation, len(obs))
	copy(sorted, obs)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Time < sorted[b].Time })

	type step struct{ t, h float64 }
	var steps []step
	atRisk := float64(len(sorted))
	h := 0.0
	i := 0
	for i < len(sorted) {
		t := sorted[i].Time
		var events, removed float64
		for i < len(sorted) && sorted[i].Time == t {
			if !sorted[i].Censored {
				events++
			}
			removed++
			i++
		}
		if events > 0 && atRisk > 0 {
			h += events / atRisk
			steps = append(steps, step{t, h})
		}
		atRisk -= removed
	}
	out := make([]float64, len(at))
	for j, t := range at {
		v := 0.0
		for _, s := range steps {
			if s.t > t {
				break
			}
			v = s.h
		}
		out[j] = v
	}
	return out
}
