package stats

import (
	"math"
	"sort"
)

// KSStatistic returns the two-sample Kolmogorov-Smirnov statistic: the
// maximum absolute difference between the empirical CDFs of xs and ys.
func KSStatistic(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return math.NaN()
	}
	a := make([]float64, len(xs))
	copy(a, xs)
	sort.Float64s(a)
	b := make([]float64, len(ys))
	copy(b, ys)
	sort.Float64s(b)
	var d float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		// Advance both sides through the smaller value (and all ties)
		// before comparing the CDFs, so equal observations never create
		// a spurious gap.
		x := a[i]
		if b[j] < x {
			x = b[j]
		}
		for i < len(a) && a[i] == x {
			i++
		}
		for j < len(b) && b[j] == x {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(a)) - float64(j)/float64(len(b)))
		if diff > d {
			d = diff
		}
	}
	return d
}

// KSPValue returns the asymptotic p-value for the two-sample KS
// statistic d with sample sizes n and m (Kolmogorov distribution tail).
func KSPValue(d float64, n, m int) float64 {
	if math.IsNaN(d) || n == 0 || m == 0 {
		return math.NaN()
	}
	ne := float64(n) * float64(m) / float64(n+m)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	if lambda < 0.2 {
		return 1 // the Kolmogorov tail sum does not converge near zero
	}
	// Two-sided Kolmogorov tail sum.
	var sum float64
	for k := 1; k <= 100; k++ {
		term := math.Exp(-2 * float64(k*k) * lambda * lambda)
		if k%2 == 1 {
			sum += term
		} else {
			sum -= term
		}
		if term < 1e-12 {
			break
		}
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// KSTwoSample runs the full two-sample test in one call: the KS
// statistic of xs against ys and its asymptotic p-value. This is the
// drift-detection primitive of the continuous-learning trainer, which
// compares a reference window of ingested feature values against the
// most recent window.
func KSTwoSample(xs, ys []float64) (d, p float64) {
	d = KSStatistic(xs, ys)
	return d, KSPValue(d, len(xs), len(ys))
}

// KSUniform returns the one-sample KS statistic of xs against the
// Uniform(0,1) distribution, for RNG validation.
func KSUniform(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	a := make([]float64, len(xs))
	copy(a, xs)
	sort.Float64s(a)
	var d float64
	n := float64(len(a))
	for i, x := range a {
		lo := math.Abs(x - float64(i)/n)
		hi := math.Abs(float64(i+1)/n - x)
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}
