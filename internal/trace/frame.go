package trace

// Length-prefixed frame codec shared by every binary surface that moves
// records: the WAL's on-disk segments, the follower replication stream,
// and the /v1/ingest/bin wire format. A frame is
//
//	len u32 LE | crc32c u32 LE | payload (len bytes)
//
// — byte-for-byte the WAL's frame layout, with the CRC computed over the
// payload using the Castagnoli polynomial. Sharing the layout is a load-
// bearing contract, not a convenience: an ingest frame that passes
// NextFrame carries exactly the bytes the daemon appends to its WAL, so
// the accept path never re-encodes a record.

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// FrameOverhead is the byte cost of one frame header (length + CRC).
const FrameOverhead = 8

var frameTable = crc32.MakeTable(crc32.Castagnoli)

// Frame decode failures are static sentinels so hot-path callers can
// classify them without allocating.
var (
	ErrFrameTruncated = errors.New("trace: frame truncated")
	ErrFrameEmpty     = errors.New("trace: zero-length frame")
	ErrFrameTooLarge  = errors.New("trace: frame exceeds payload limit")
	ErrFrameCRC       = errors.New("trace: frame CRC mismatch")
)

// FrameCRC returns the checksum stored in a frame header for payload.
func FrameCRC(payload []byte) uint32 {
	return crc32.Checksum(payload, frameTable)
}

// AppendFrame appends one complete frame wrapping payload.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, FrameCRC(payload))
	return append(dst, payload...)
}

// BeginFrame reserves a frame header at the end of dst and returns the
// extended slice; the caller appends the payload in place and seals it
// with EndFrame(dst, start) where start = len(dst) before BeginFrame.
// The pair lets encoders build framed records without an intermediate
// payload buffer.
func BeginFrame(dst []byte) []byte {
	return append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
}

// EndFrame back-fills the header reserved by BeginFrame at start, using
// everything appended since as the payload.
func EndFrame(dst []byte, start int) []byte {
	payload := dst[start+FrameOverhead:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], FrameCRC(payload))
	return dst
}

// NextFrame decodes the frame at the front of b, returning its payload
// (aliasing b, not copied) and the remainder. maxPayload bounds the
// declared length before any allocation or checksum work, so a corrupt
// length prefix cannot drive a huge read. Errors are the ErrFrame*
// sentinels; payload and rest are nil on error.
func NextFrame(b []byte, maxPayload int) (payload, rest []byte, err error) {
	if len(b) < FrameOverhead {
		return nil, nil, ErrFrameTruncated
	}
	n := binary.LittleEndian.Uint32(b)
	if n == 0 {
		return nil, nil, ErrFrameEmpty
	}
	if uint64(n) > uint64(maxPayload) {
		return nil, nil, ErrFrameTooLarge
	}
	want := binary.LittleEndian.Uint32(b[4:])
	body := b[FrameOverhead:]
	if uint64(len(body)) < uint64(n) {
		return nil, nil, ErrFrameTruncated
	}
	payload = body[:n]
	if FrameCRC(payload) != want {
		return nil, nil, ErrFrameCRC
	}
	return payload, body[n:], nil
}
