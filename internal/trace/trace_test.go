package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestModelString(t *testing.T) {
	cases := map[Model]string{MLCA: "MLC-A", MLCB: "MLC-B", MLCD: "MLC-D"}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Model(%d).String() = %q, want %q", m, got, want)
		}
	}
	if got := Model(9).String(); !strings.Contains(got, "?") {
		t.Errorf("invalid model should stringify with ?, got %q", got)
	}
}

func TestParseModelRoundTrip(t *testing.T) {
	for _, m := range Models {
		got, err := ParseModel(m.String())
		if err != nil {
			t.Fatalf("ParseModel(%q): %v", m.String(), err)
		}
		if got != m {
			t.Errorf("ParseModel(%q) = %v, want %v", m.String(), got, m)
		}
	}
	if _, err := ParseModel("MLC-Z"); err == nil {
		t.Error("ParseModel should reject unknown models")
	}
}

func TestErrorKindStringRoundTrip(t *testing.T) {
	for _, k := range ErrorKinds {
		got, err := ParseErrorKind(k.String())
		if err != nil {
			t.Fatalf("ParseErrorKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("round trip %v -> %q -> %v", k, k.String(), got)
		}
	}
	if _, err := ParseErrorKind("bogus"); err == nil {
		t.Error("ParseErrorKind should reject unknown names")
	}
}

func TestTransparentPartition(t *testing.T) {
	if len(TransparentKinds)+len(NonTransparentKinds) != NumErrorKinds {
		t.Fatalf("partition sizes %d + %d != %d",
			len(TransparentKinds), len(NonTransparentKinds), NumErrorKinds)
	}
	for _, k := range TransparentKinds {
		if !k.Transparent() {
			t.Errorf("%v should be transparent", k)
		}
	}
	for _, k := range NonTransparentKinds {
		if k.Transparent() {
			t.Errorf("%v should be non-transparent", k)
		}
	}
}

func TestDayRecordActive(t *testing.T) {
	var r DayRecord
	if r.Active() {
		t.Error("zero record should be inactive")
	}
	r.Reads = 1
	if !r.Active() {
		t.Error("record with reads should be active")
	}
	r = DayRecord{Writes: 5}
	if !r.Active() {
		t.Error("record with writes should be active")
	}
	r = DayRecord{Erases: 5}
	if r.Active() {
		t.Error("erase-only record should not count as active (paper: read/write provisioning)")
	}
}

func TestNonTransparentErrorCounts(t *testing.T) {
	var r DayRecord
	r.Errors[ErrUncorrectable] = 3
	r.Errors[ErrCorrectable] = 100 // transparent, excluded
	r.Errors[ErrMeta] = 2
	r.CumErrors[ErrUncorrectable] = 30
	r.CumErrors[ErrTimeout] = 1
	r.CumErrors[ErrRead] = 99 // transparent, excluded
	if got := r.NonTransparentErrors(); got != 5 {
		t.Errorf("NonTransparentErrors = %d, want 5", got)
	}
	if got := r.CumNonTransparentErrors(); got != 31 {
		t.Errorf("CumNonTransparentErrors = %d, want 31", got)
	}
}

func TestBadBlocks(t *testing.T) {
	r := DayRecord{FactoryBadBlocks: 4, GrownBadBlocks: 7}
	if got := r.BadBlocks(); got != 11 {
		t.Errorf("BadBlocks = %d, want 11", got)
	}
}

// makeDrive builds a valid drive with records on the given fleet days.
func makeDrive(id uint32, model Model, days ...int32) Drive {
	d := Drive{ID: id, Model: model}
	for i, day := range days {
		var rec DayRecord
		rec.Day = day
		rec.Age = day - days[0]
		rec.Reads = uint64(10 * (i + 1))
		rec.Writes = uint64(20 * (i + 1))
		rec.CumReads = uint64(100 * (i + 1))
		rec.CumWrites = uint64(200 * (i + 1))
		rec.PECycles = float64(i)
		rec.Errors[ErrCorrectable] = uint32(i)
		rec.CumErrors[ErrCorrectable] = uint64(i * (i + 1) / 2)
		d.Days = append(d.Days, rec)
	}
	return d
}

func TestDriveAccessors(t *testing.T) {
	d := makeDrive(7, MLCB, 5, 6, 9, 12)
	if got := d.MaxAge(); got != 7 {
		t.Errorf("MaxAge = %d, want 7", got)
	}
	if got := d.DataCount(); got != 4 {
		t.Errorf("DataCount = %d, want 4", got)
	}
	if d.Failed() {
		t.Error("drive without swaps should not be failed")
	}
	d.Swaps = append(d.Swaps, SwapEvent{Day: 14})
	if !d.Failed() {
		t.Error("drive with swaps should be failed")
	}
	if d.Last().Day != 12 {
		t.Errorf("Last().Day = %d, want 12", d.Last().Day)
	}
	var empty Drive
	if empty.Last() != nil {
		t.Error("Last of empty drive should be nil")
	}
	if empty.MaxAge() != 0 {
		t.Error("MaxAge of empty drive should be 0")
	}
}

func TestRecordOn(t *testing.T) {
	d := makeDrive(1, MLCA, 5, 6, 9, 12)
	cases := []struct {
		day  int32
		want int
	}{{5, 0}, {6, 1}, {9, 2}, {12, 3}, {4, -1}, {7, -1}, {13, -1}}
	for _, c := range cases {
		if got := d.RecordOn(c.day); got != c.want {
			t.Errorf("RecordOn(%d) = %d, want %d", c.day, got, c.want)
		}
	}
}

func TestLastRecordBefore(t *testing.T) {
	d := makeDrive(1, MLCA, 5, 6, 9, 12)
	cases := []struct {
		day  int32
		want int
	}{{5, -1}, {6, 0}, {9, 1}, {10, 2}, {100, 3}, {0, -1}}
	for _, c := range cases {
		if got := d.LastRecordBefore(c.day); got != c.want {
			t.Errorf("LastRecordBefore(%d) = %d, want %d", c.day, got, c.want)
		}
	}
}

func TestFleetAggregates(t *testing.T) {
	f := &Fleet{Horizon: 100}
	f.Drives = append(f.Drives, makeDrive(1, MLCA, 1, 2, 3))
	f.Drives = append(f.Drives, makeDrive(2, MLCB, 4, 5))
	f.Drives = append(f.Drives, makeDrive(3, MLCB, 6))
	f.Drives[1].Swaps = []SwapEvent{{Day: 9}, {Day: 50}}
	if got := f.DriveDays(); got != 6 {
		t.Errorf("DriveDays = %d, want 6", got)
	}
	counts := f.CountByModel()
	if counts[MLCA] != 1 || counts[MLCB] != 2 || counts[MLCD] != 0 {
		t.Errorf("CountByModel = %v", counts)
	}
	if got := f.SwapCount(); got != 2 {
		t.Errorf("SwapCount = %d, want 2", got)
	}
	sub := f.FilterModel(MLCB)
	if len(sub.Drives) != 2 || sub.Horizon != 100 {
		t.Errorf("FilterModel: %d drives, horizon %d", len(sub.Drives), sub.Horizon)
	}
	for i := range sub.Drives {
		if sub.Drives[i].Model != MLCB {
			t.Errorf("FilterModel returned model %v", sub.Drives[i].Model)
		}
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	f := &Fleet{Horizon: 20}
	f.Drives = append(f.Drives, makeDrive(1, MLCA, 1, 2, 3))
	f.Drives[0].Swaps = []SwapEvent{{Day: 5}, {Day: 10}}
	if err := f.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	mk := func(mutate func(f *Fleet)) *Fleet {
		f := &Fleet{Horizon: 20}
		f.Drives = append(f.Drives, makeDrive(1, MLCA, 1, 2, 3))
		mutate(f)
		return f
	}
	cases := map[string]*Fleet{
		"duplicate id": func() *Fleet {
			f := mk(func(*Fleet) {})
			f.Drives = append(f.Drives, makeDrive(1, MLCB, 4))
			return f
		}(),
		"bad model":         mk(func(f *Fleet) { f.Drives[0].Model = Model(99) }),
		"day over horizon":  mk(func(f *Fleet) { f.Drives[0].Days[2].Day = 25; f.Drives[0].Days[2].Age = 24 }),
		"negative age":      mk(func(f *Fleet) { f.Drives[0].Days[0].Age = -1 }),
		"unsorted days":     mk(func(f *Fleet) { f.Drives[0].Days[1].Day = 1 }),
		"age mismatch":      mk(func(f *Fleet) { f.Drives[0].Days[1].Age = 5 }),
		"pe decrease":       mk(func(f *Fleet) { f.Drives[0].Days[2].PECycles = 0.5 }),
		"grown bb decrease": mk(func(f *Fleet) { f.Drives[0].Days[0].GrownBadBlocks = 9 }),
		"factory change":    mk(func(f *Fleet) { f.Drives[0].Days[1].FactoryBadBlocks = 9 }),
		"cum op decrease":   mk(func(f *Fleet) { f.Drives[0].Days[2].CumReads = 0 }),
		"cum err decrease":  mk(func(f *Fleet) { f.Drives[0].Days[2].CumErrors[ErrCorrectable] = 0 }),
		"daily over cum":    mk(func(f *Fleet) { f.Drives[0].Days[1].Errors[ErrMeta] = 7 }),
		"swap over horizon": mk(func(f *Fleet) { f.Drives[0].Swaps = []SwapEvent{{Day: 21}} }),
		"unsorted swaps":    mk(func(f *Fleet) { f.Drives[0].Swaps = []SwapEvent{{Day: 9}, {Day: 9}} }),
	}
	for name, f := range cases {
		if err := f.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid fleet", name)
		}
	}
}

// randomFleet builds a structurally valid pseudorandom fleet for codec tests.
func randomFleet(rng *rand.Rand, drives int) *Fleet {
	f := &Fleet{Horizon: 400}
	for id := 0; id < drives; id++ {
		d := Drive{ID: uint32(id + 1), Model: Model(rng.Intn(NumModels))}
		day := int32(rng.Intn(30))
		first := day
		var cum DayRecord
		n := 1 + rng.Intn(40)
		for j := 0; j < n && day < 399; j++ {
			var r DayRecord
			r.Day = day
			r.Age = day - first
			r.Reads = uint64(rng.Intn(1000))
			r.Writes = uint64(rng.Intn(1000))
			r.Erases = uint64(rng.Intn(100))
			cum.CumReads += r.Reads
			cum.CumWrites += r.Writes
			cum.CumErases += r.Erases
			r.CumReads, r.CumWrites, r.CumErases = cum.CumReads, cum.CumWrites, cum.CumErases
			cum.PECycles += rng.Float64()
			r.PECycles = cum.PECycles
			r.FactoryBadBlocks = 3
			cum.GrownBadBlocks += uint32(rng.Intn(2))
			r.GrownBadBlocks = cum.GrownBadBlocks
			for k := 0; k < NumErrorKinds; k++ {
				e := uint32(rng.Intn(5))
				r.Errors[k] = e
				cum.CumErrors[k] += uint64(e)
				r.CumErrors[k] = cum.CumErrors[k]
			}
			r.Dead = rng.Intn(50) == 0
			r.ReadOnly = rng.Intn(50) == 0
			d.Days = append(d.Days, r)
			day += int32(1 + rng.Intn(3))
		}
		if rng.Intn(4) == 0 {
			d.Swaps = append(d.Swaps, SwapEvent{Day: day})
		}
		f.Drives = append(f.Drives, d)
	}
	return f
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := randomFleet(rng, 25)
	if err := f.Validate(); err != nil {
		t.Fatalf("generated fleet invalid: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, f); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatal("binary round trip is not identity")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a fleet at all")); err == nil {
		t.Error("ReadBinary should reject non-fleet data")
	}
	if _, err := ReadBinary(strings.NewReader("SS")); err == nil {
		t.Error("ReadBinary should reject truncated magic")
	}
}

func TestBinaryRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := randomFleet(rng, 5)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, f); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 10, len(full) / 2, len(full) - 1} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("ReadBinary accepted truncation at %d bytes", cut)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	f := randomFleet(rng, 15)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, f); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatal("CSV round trip is not identity")
	}
}

func TestCSVRejectsMalformed(t *testing.T) {
	bad := []string{
		"X,1,MLC-A,5\n",
		"D,notanumber,MLC-A,5\n",
		"D,1,MLC-Z,5\n",
		"D,1,MLC-A,5\n", // too few fields for a D row
		"S,1,MLC-A,xyz\n",
	}
	for _, s := range bad {
		if _, err := ReadCSV(strings.NewReader(s)); err == nil {
			t.Errorf("ReadCSV accepted malformed input %q", s)
		}
	}
}

func TestCSVSkipsCommentsAndBlank(t *testing.T) {
	in := "#comment\n\n#horizon,77\nS,3,MLC-D,12\n"
	f, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.Horizon != 77 {
		t.Errorf("horizon = %d, want 77", f.Horizon)
	}
	if len(f.Drives) != 1 || len(f.Drives[0].Swaps) != 1 {
		t.Fatalf("unexpected parse result: %+v", f)
	}
}

func TestSplitComma(t *testing.T) {
	cases := map[string][]string{
		"a,b,c": {"a", "b", "c"},
		"":      {""},
		",":     {"", ""},
		"x":     {"x"},
		"a,,b":  {"a", "", "b"},
	}
	for in, want := range cases {
		if got := splitComma(in); !reflect.DeepEqual(got, want) {
			t.Errorf("splitComma(%q) = %v, want %v", in, got, want)
		}
	}
}

// Property: both codecs are identity on arbitrary valid fleets.
func TestCodecsRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := randomFleet(rng, 1+rng.Intn(10))
		var bbuf, cbuf bytes.Buffer
		if err := WriteBinary(&bbuf, f); err != nil {
			return false
		}
		fb, err := ReadBinary(&bbuf)
		if err != nil {
			return false
		}
		if err := WriteCSV(&cbuf, f); err != nil {
			return false
		}
		fc, err := ReadCSV(&cbuf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(f, fb) && reflect.DeepEqual(f, fc)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: RecordOn agrees with a linear scan.
func TestRecordOnMatchesLinearScan(t *testing.T) {
	prop := func(seed int64, probe int32) bool {
		rng := rand.New(rand.NewSource(seed))
		f := randomFleet(rng, 1)
		d := &f.Drives[0]
		day := probe % 450
		if day < 0 {
			day = -day
		}
		want := -1
		for i := range d.Days {
			if d.Days[i].Day == day {
				want = i
				break
			}
		}
		return d.RecordOn(day) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
