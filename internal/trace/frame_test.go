package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("a"),
		[]byte("hello frame"),
		bytes.Repeat([]byte{0xAB}, 1024),
	}
	var buf []byte
	for _, p := range payloads {
		buf = AppendFrame(buf, p)
	}
	rest := buf
	for i, want := range payloads {
		payload, next, err := NextFrame(rest, 4096)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(payload, want) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
		rest = next
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestBeginEndFrameMatchesAppendFrame(t *testing.T) {
	payload := []byte("in-place encoded payload")
	want := AppendFrame(nil, payload)

	got := []byte("prefix")
	start := len(got)
	got = BeginFrame(got)
	got = append(got, payload...)
	got = EndFrame(got, start)
	if !bytes.Equal(got[start:], want) {
		t.Fatalf("BeginFrame/EndFrame = %x, want %x", got[start:], want)
	}
}

func TestNextFrameRejectsCorruption(t *testing.T) {
	valid := AppendFrame(nil, []byte("payload"))

	for cut := 0; cut < len(valid); cut++ {
		if _, _, err := NextFrame(valid[:cut], 64); !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("truncation at %d: err = %v, want ErrFrameTruncated", cut, err)
		}
	}

	for bit := 0; bit < len(valid)*8; bit += 7 {
		flipped := bytes.Clone(valid)
		flipped[bit/8] ^= 1 << (bit % 8)
		if _, _, err := NextFrame(flipped, 64); err == nil {
			// A length-field flip that still fits maxPayload shrinks the
			// payload, which the CRC must then catch — no flip may pass.
			t.Fatalf("bit flip at %d accepted", bit)
		}
	}

	zero := AppendFrame(nil, nil)
	if _, _, err := NextFrame(zero, 64); !errors.Is(err, ErrFrameEmpty) {
		t.Fatalf("zero-length frame: err = %v, want ErrFrameEmpty", err)
	}

	huge := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(huge, 0xFFFFFFFF)
	if _, _, err := NextFrame(huge, 64); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized length prefix: err = %v, want ErrFrameTooLarge", err)
	}
	// The limit check must happen on the declared length, not a
	// truncated int conversion of it: with a limit above u32 range the
	// huge prefix is admissible but the body is short.
	if _, _, err := NextFrame(huge, 1<<33); !errors.Is(err, ErrFrameTruncated) {
		t.Fatalf("oversized-but-allowed length: err = %v, want ErrFrameTruncated", err)
	}
}

func TestFrameLayoutMatchesWAL(t *testing.T) {
	// The WAL writes len | crc32c(payload) | payload little-endian; the
	// shared codec must produce exactly those bytes so ingest frames can
	// be appended to the log verbatim.
	payload := []byte{1, 2, 3, 4, 5}
	frame := AppendFrame(nil, payload)
	if got := binary.LittleEndian.Uint32(frame); got != uint32(len(payload)) {
		t.Fatalf("length field = %d, want %d", got, len(payload))
	}
	if got := binary.LittleEndian.Uint32(frame[4:]); got != FrameCRC(payload) {
		t.Fatalf("crc field = %#x, want %#x", got, FrameCRC(payload))
	}
	if !bytes.Equal(frame[8:], payload) {
		t.Fatal("payload bytes not verbatim")
	}
}
