package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Binary codec
//
// The binary format is a compact little-endian stream:
//
//	magic "SSDT" | version u32 | horizon i32 | driveCount u32
//	per drive: id u32 | model u8 | dayCount u32 | swapCount u32
//	           dayCount * DayRecord | swapCount * i32
//
// It exists so multi-gigabyte fleets round-trip quickly between the
// generator and the analysis tools without reparsing text.

const (
	binaryMagic   = "SSDT"
	binaryVersion = 1
)

var errBadMagic = errors.New("trace: bad magic; not a binary fleet stream")

// WriteBinary serializes the fleet to w in the binary format.
func WriteBinary(w io.Writer, f *Fleet) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	writeU32 := func(v uint32) { var b [4]byte; binary.LittleEndian.PutUint32(b[:], v); bw.Write(b[:]) }
	writeU64 := func(v uint64) { var b [8]byte; binary.LittleEndian.PutUint64(b[:], v); bw.Write(b[:]) }
	writeU32(binaryVersion)
	writeU32(uint32(f.Horizon))
	writeU32(uint32(len(f.Drives)))
	for i := range f.Drives {
		d := &f.Drives[i]
		writeU32(d.ID)
		bw.WriteByte(byte(d.Model))
		writeU32(uint32(len(d.Days)))
		writeU32(uint32(len(d.Swaps)))
		for j := range d.Days {
			r := &d.Days[j]
			writeU32(uint32(r.Day))
			writeU32(uint32(r.Age))
			writeU64(r.Reads)
			writeU64(r.Writes)
			writeU64(r.Erases)
			writeU64(r.CumReads)
			writeU64(r.CumWrites)
			writeU64(r.CumErases)
			writeU64(math.Float64bits(r.PECycles))
			writeU32(r.FactoryBadBlocks)
			writeU32(r.GrownBadBlocks)
			for k := 0; k < NumErrorKinds; k++ {
				writeU32(r.Errors[k])
			}
			for k := 0; k < NumErrorKinds; k++ {
				writeU64(r.CumErrors[k])
			}
			var flags byte
			if r.Dead {
				flags |= 1
			}
			if r.ReadOnly {
				flags |= 2
			}
			bw.WriteByte(flags)
		}
		for _, s := range d.Swaps {
			writeU32(uint32(s.Day))
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a fleet previously written by WriteBinary.
func ReadBinary(r io.Reader) (*Fleet, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != binaryMagic {
		return nil, errBadMagic
	}
	var scratch [8]byte
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:8]), nil
	}
	ver, err := readU32()
	if err != nil {
		return nil, err
	}
	if ver != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported binary version %d", ver)
	}
	horizon, err := readU32()
	if err != nil {
		return nil, err
	}
	nd, err := readU32()
	if err != nil {
		return nil, err
	}
	f := &Fleet{Horizon: int32(horizon), Drives: make([]Drive, nd)}
	for i := range f.Drives {
		d := &f.Drives[i]
		if d.ID, err = readU32(); err != nil {
			return nil, err
		}
		mb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		d.Model = Model(mb)
		ndays, err := readU32()
		if err != nil {
			return nil, err
		}
		nswaps, err := readU32()
		if err != nil {
			return nil, err
		}
		if ndays > 0 {
			d.Days = make([]DayRecord, ndays)
		}
		for j := range d.Days {
			rec := &d.Days[j]
			var v uint32
			var w uint64
			if v, err = readU32(); err != nil {
				return nil, err
			}
			rec.Day = int32(v)
			if v, err = readU32(); err != nil {
				return nil, err
			}
			rec.Age = int32(v)
			if rec.Reads, err = readU64(); err != nil {
				return nil, err
			}
			if rec.Writes, err = readU64(); err != nil {
				return nil, err
			}
			if rec.Erases, err = readU64(); err != nil {
				return nil, err
			}
			if rec.CumReads, err = readU64(); err != nil {
				return nil, err
			}
			if rec.CumWrites, err = readU64(); err != nil {
				return nil, err
			}
			if rec.CumErases, err = readU64(); err != nil {
				return nil, err
			}
			if w, err = readU64(); err != nil {
				return nil, err
			}
			rec.PECycles = math.Float64frombits(w)
			if rec.FactoryBadBlocks, err = readU32(); err != nil {
				return nil, err
			}
			if rec.GrownBadBlocks, err = readU32(); err != nil {
				return nil, err
			}
			for k := 0; k < NumErrorKinds; k++ {
				if rec.Errors[k], err = readU32(); err != nil {
					return nil, err
				}
			}
			for k := 0; k < NumErrorKinds; k++ {
				if rec.CumErrors[k], err = readU64(); err != nil {
					return nil, err
				}
			}
			flags, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			rec.Dead = flags&1 != 0
			rec.ReadOnly = flags&2 != 0
		}
		if nswaps > 0 {
			d.Swaps = make([]SwapEvent, nswaps)
		}
		for j := range d.Swaps {
			v, err := readU32()
			if err != nil {
				return nil, err
			}
			d.Swaps[j].Day = int32(v)
		}
	}
	return f, nil
}

// CSV codec
//
// Two row kinds share one file, distinguished by the first column:
//
//	D,driveID,model,day,age,reads,writes,erases,cumReads,cumWrites,
//	  cumErases,peCycles,factoryBB,grownBB,e0..e9,c0..c9,dead,readonly
//	S,driveID,model,day
//
// Rows for one drive are contiguous and sorted; this is the
// interchange format for inspecting fleets with external tools.

// csvHeader documents the column layout of D rows.
var csvHeader = "#kind,drive,model,day,age,reads,writes,erases,cum_reads,cum_writes,cum_erases,pe_cycles,factory_bb,grown_bb," +
	"e_correctable,e_erase,e_final_read,e_final_write,e_meta,e_read,e_response,e_timeout,e_uncorrectable,e_write," +
	"c_correctable,c_erase,c_final_read,c_final_write,c_meta,c_read,c_response,c_timeout,c_uncorrectable,c_write,dead,read_only"

// WriteCSV serializes the fleet as CSV rows, preceded by a header comment
// and a fleet pragma line carrying the horizon.
func WriteCSV(w io.Writer, f *Fleet) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintln(bw, csvHeader)
	fmt.Fprintf(bw, "#horizon,%d\n", f.Horizon)
	var buf []byte
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	for i := range f.Drives {
		d := &f.Drives[i]
		for j := range d.Days {
			r := &d.Days[j]
			buf = buf[:0]
			buf = append(buf, 'D', ',')
			buf = strconv.AppendUint(buf, uint64(d.ID), 10)
			buf = append(buf, ',')
			buf = append(buf, d.Model.String()...)
			for _, v := range []int64{int64(r.Day), int64(r.Age)} {
				buf = append(buf, ',')
				buf = strconv.AppendInt(buf, v, 10)
			}
			for _, v := range []uint64{r.Reads, r.Writes, r.Erases, r.CumReads, r.CumWrites, r.CumErases} {
				buf = append(buf, ',')
				buf = strconv.AppendUint(buf, v, 10)
			}
			buf = append(buf, ',')
			buf = strconv.AppendFloat(buf, r.PECycles, 'g', -1, 64)
			buf = append(buf, ',')
			buf = strconv.AppendUint(buf, uint64(r.FactoryBadBlocks), 10)
			buf = append(buf, ',')
			buf = strconv.AppendUint(buf, uint64(r.GrownBadBlocks), 10)
			for k := 0; k < NumErrorKinds; k++ {
				buf = append(buf, ',')
				buf = strconv.AppendUint(buf, uint64(r.Errors[k]), 10)
			}
			for k := 0; k < NumErrorKinds; k++ {
				buf = append(buf, ',')
				buf = strconv.AppendUint(buf, r.CumErrors[k], 10)
			}
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, int64(b2i(r.Dead)), 10)
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, int64(b2i(r.ReadOnly)), 10)
			buf = append(buf, '\n')
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
		for _, s := range d.Swaps {
			if _, err := fmt.Fprintf(bw, "S,%d,%s,%d\n", d.ID, d.Model, s.Day); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadCSV parses a fleet from the CSV format emitted by WriteCSV. Rows may
// arrive in any drive order, but rows within a drive must be sorted by day
// (as WriteCSV emits them).
func ReadCSV(r io.Reader) (*Fleet, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	f := &Fleet{}
	index := map[uint32]int{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if line[0] == '#' {
			var h int32
			if n, _ := fmt.Sscanf(line, "#horizon,%d", &h); n == 1 {
				f.Horizon = h
			}
			continue
		}
		fields := splitComma(line)
		if len(fields) < 4 {
			return nil, fmt.Errorf("trace: line %d: too few fields", lineNo)
		}
		id64, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: drive id: %v", lineNo, err)
		}
		id := uint32(id64)
		model, err := ParseModel(fields[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
		}
		di, ok := index[id]
		if !ok {
			di = len(f.Drives)
			index[id] = di
			f.Drives = append(f.Drives, Drive{ID: id, Model: model})
		}
		d := &f.Drives[di]
		switch fields[0] {
		case "S":
			day, err := strconv.ParseInt(fields[3], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: swap day: %v", lineNo, err)
			}
			d.Swaps = append(d.Swaps, SwapEvent{Day: int32(day)})
		case "D":
			if len(fields) != 36 {
				return nil, fmt.Errorf("trace: line %d: want 36 fields for D row, got %d", lineNo, len(fields))
			}
			var rec DayRecord
			ints := make([]uint64, 0, 34)
			for fi := 3; fi < 36; fi++ {
				if fi == 11 { // pe_cycles is float
					pe, err := strconv.ParseFloat(fields[fi], 64)
					if err != nil {
						return nil, fmt.Errorf("trace: line %d: pe_cycles: %v", lineNo, err)
					}
					rec.PECycles = pe
					continue
				}
				v, err := strconv.ParseUint(fields[fi], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("trace: line %d field %d: %v", lineNo, fi, err)
				}
				ints = append(ints, v)
			}
			rec.Day = int32(ints[0])
			rec.Age = int32(ints[1])
			rec.Reads, rec.Writes, rec.Erases = ints[2], ints[3], ints[4]
			rec.CumReads, rec.CumWrites, rec.CumErases = ints[5], ints[6], ints[7]
			rec.FactoryBadBlocks = uint32(ints[8])
			rec.GrownBadBlocks = uint32(ints[9])
			for k := 0; k < NumErrorKinds; k++ {
				rec.Errors[k] = uint32(ints[10+k])
			}
			for k := 0; k < NumErrorKinds; k++ {
				rec.CumErrors[k] = ints[20+k]
			}
			rec.Dead = ints[30] != 0
			rec.ReadOnly = ints[31] != 0
			d.Days = append(d.Days, rec)
		default:
			return nil, fmt.Errorf("trace: line %d: unknown row kind %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

// splitComma splits on commas without allocating a new string per field
// beyond the slice header; trace CSV never contains quoted fields.
func splitComma(s string) []string {
	n := 1
	for i := 0; i < len(s); i++ {
		if s[i] == ',' {
			n++
		}
	}
	out := make([]string, 0, n)
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == ',' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}
