// Package trace defines the SSD field-log schema used throughout this
// repository: per-drive daily performance records, swap events, and the
// fleet-level container that holds them.
//
// The schema mirrors the proprietary Google log described in Section 2 of
// "SSD Failures in the Field" (SC '19): for each day of operation a drive
// reports its read/write/erase activity, cumulative program–erase (P/E)
// cycles, dead and read-only status flags, factory and grown bad-block
// counts, and per-day counts of ten error types. Swap events mark the
// moment a failed drive is physically extracted for repair.
package trace

import "fmt"

// Model identifies one of the three MLC drive models in the study.
type Model uint8

// The three drive models, named as in the paper (which follows the naming
// of Schroeder et al., FAST '16).
const (
	MLCA Model = iota
	MLCB
	MLCD
	numModels
)

// NumModels is the number of distinct drive models.
const NumModels = int(numModels)

// Models lists all drive models in canonical order.
var Models = [NumModels]Model{MLCA, MLCB, MLCD}

// String returns the paper's name for the model.
func (m Model) String() string {
	switch m {
	case MLCA:
		return "MLC-A"
	case MLCB:
		return "MLC-B"
	case MLCD:
		return "MLC-D"
	}
	return fmt.Sprintf("MLC-?(%d)", uint8(m))
}

// ParseModel converts a model name ("MLC-A", "MLC-B", "MLC-D") to a Model.
func ParseModel(s string) (Model, error) {
	switch s {
	case "MLC-A", "mlc-a", "A", "a":
		return MLCA, nil
	case "MLC-B", "mlc-b", "B", "b":
		return MLCB, nil
	case "MLC-D", "mlc-d", "D", "d":
		return MLCD, nil
	}
	return 0, fmt.Errorf("trace: unknown drive model %q", s)
}

// ErrorKind enumerates the ten error counters reported in the daily log.
type ErrorKind uint8

// Error kinds, in the order used for the per-record counter arrays.
const (
	ErrCorrectable   ErrorKind = iota // bits corrected by drive-internal ECC
	ErrErase                          // failed erase operations
	ErrFinalRead                      // reads that failed even after retries
	ErrFinalWrite                     // writes that failed even after retries
	ErrMeta                           // errors reading drive-internal metadata
	ErrRead                           // reads that erred but succeeded on retry
	ErrResponse                       // bad responses from the drive
	ErrTimeout                        // operations that timed out
	ErrUncorrectable                  // uncorrectable ECC errors during reads
	ErrWrite                          // writes that erred but succeeded on retry
	numErrorKinds
)

// NumErrorKinds is the number of distinct error counters per record.
const NumErrorKinds = int(numErrorKinds)

// ErrorKinds lists all error kinds in canonical order.
var ErrorKinds = [NumErrorKinds]ErrorKind{
	ErrCorrectable, ErrErase, ErrFinalRead, ErrFinalWrite, ErrMeta,
	ErrRead, ErrResponse, ErrTimeout, ErrUncorrectable, ErrWrite,
}

var errorKindNames = [NumErrorKinds]string{
	"correctable", "erase", "final_read", "final_write", "meta",
	"read", "response", "timeout", "uncorrectable", "write",
}

// String returns the snake_case name of the error kind.
func (k ErrorKind) String() string {
	if int(k) < NumErrorKinds {
		return errorKindNames[k]
	}
	return fmt.Sprintf("error_kind_%d", uint8(k))
}

// ParseErrorKind converts a snake_case error name back to an ErrorKind.
func ParseErrorKind(s string) (ErrorKind, error) {
	for i, n := range errorKindNames {
		if n == s {
			return ErrorKind(i), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown error kind %q", s)
}

// Transparent reports whether the error kind is transparent to the user
// (correctable, read, write, and erase errors); the remaining kinds are
// non-transparent and indicate aberrant behaviour the user can observe.
func (k ErrorKind) Transparent() bool {
	switch k {
	case ErrCorrectable, ErrRead, ErrWrite, ErrErase:
		return true
	}
	return false
}

// TransparentKinds and NonTransparentKinds partition ErrorKinds per §2.
var (
	TransparentKinds    = []ErrorKind{ErrCorrectable, ErrErase, ErrRead, ErrWrite}
	NonTransparentKinds = []ErrorKind{ErrFinalRead, ErrFinalWrite, ErrMeta, ErrResponse, ErrTimeout, ErrUncorrectable}
)

// DayRecord is one daily performance summary for one drive. Days are
// numbered from a fleet-wide epoch (day 0). Age is days since the drive's
// first operational day; the paper's logs report a microsecond timestamp
// since the beginning of drive life, which this field summarizes at the
// daily granularity of the analysis.
type DayRecord struct {
	Day int32 // fleet day of this report
	Age int32 // drive age in days at this report

	Reads  uint64 // read operations performed this day
	Writes uint64 // write operations performed this day
	Erases uint64 // erase operations performed this day

	CumReads  uint64 // lifetime read operations through this day
	CumWrites uint64 // lifetime write operations through this day
	CumErases uint64 // lifetime erase operations through this day

	PECycles float64 // cumulative program–erase cycles (device wear)

	FactoryBadBlocks uint32 // bad blocks present at purchase (constant)
	GrownBadBlocks   uint32 // cumulative blocks retired after errors

	Errors    [NumErrorKinds]uint32 // error counts for this day
	CumErrors [NumErrorKinds]uint64 // lifetime error counts through this day

	Dead     bool // drive reports itself dead
	ReadOnly bool // drive is operating in read-only mode
}

// Active reports whether the drive performed any read or write operations
// on this day. The paper treats a run of inactive days before a swap as a
// "soft" removal from production.
func (r *DayRecord) Active() bool { return r.Reads > 0 || r.Writes > 0 }

// BadBlocks returns the total bad-block count (factory + grown).
func (r *DayRecord) BadBlocks() uint32 { return r.FactoryBadBlocks + r.GrownBadBlocks }

// NonTransparentErrors returns the count of non-transparent errors on this
// day (final read, final write, meta, response, timeout, uncorrectable).
func (r *DayRecord) NonTransparentErrors() uint64 {
	var n uint64
	for _, k := range NonTransparentKinds {
		n += uint64(r.Errors[k])
	}
	return n
}

// CumNonTransparentErrors returns the lifetime count of non-transparent
// errors through this day.
func (r *DayRecord) CumNonTransparentErrors() uint64 {
	var n uint64
	for _, k := range NonTransparentKinds {
		n += r.CumErrors[k]
	}
	return n
}

// SwapEvent marks the extraction of a failed drive from production on a
// given fleet day. Every swap corresponds to a single catastrophic failure
// (§3); the failure itself precedes the swap by the non-operational period.
type SwapEvent struct {
	Day int32 // fleet day the drive was physically swapped out
}

// Drive is the full observational record for one drive: its identity, its
// daily reports (sorted by day, possibly with gaps where the drive did not
// report), and its swap events (sorted by day).
type Drive struct {
	ID    uint32
	Model Model
	Days  []DayRecord
	Swaps []SwapEvent
}

// MaxAge returns the oldest observed age of the drive in days, or 0 if the
// drive has no records ("Max Age" in Figure 1).
func (d *Drive) MaxAge() int32 {
	if len(d.Days) == 0 {
		return 0
	}
	return d.Days[len(d.Days)-1].Age
}

// DataCount returns the number of daily reports present in the log for
// this drive ("Data Count" in Figure 1).
func (d *Drive) DataCount() int { return len(d.Days) }

// Failed reports whether the drive was swapped at least once.
func (d *Drive) Failed() bool { return len(d.Swaps) > 0 }

// Last returns the drive's final report, or nil if there is none.
func (d *Drive) Last() *DayRecord {
	if len(d.Days) == 0 {
		return nil
	}
	return &d.Days[len(d.Days)-1]
}

// RecordOn returns the index of the record for the given fleet day using
// binary search, or -1 if the drive did not report that day.
func (d *Drive) RecordOn(day int32) int {
	lo, hi := 0, len(d.Days)
	for lo < hi {
		mid := (lo + hi) / 2
		if d.Days[mid].Day < day {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(d.Days) && d.Days[lo].Day == day {
		return lo
	}
	return -1
}

// LastRecordBefore returns the index of the last record with Day < day,
// or -1 if there is none.
func (d *Drive) LastRecordBefore(day int32) int {
	lo, hi := 0, len(d.Days)
	for lo < hi {
		mid := (lo + hi) / 2
		if d.Days[mid].Day < day {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// Fleet is a collection of drives — the full trace for one simulated or
// recorded data center deployment.
type Fleet struct {
	Drives []Drive
	// Horizon is the number of fleet days covered by the trace; reports
	// and swaps all fall in [0, Horizon).
	Horizon int32
}

// DriveDays returns the total number of daily reports across all drives.
func (f *Fleet) DriveDays() int {
	var n int
	for i := range f.Drives {
		n += len(f.Drives[i].Days)
	}
	return n
}

// CountByModel returns the number of drives of each model.
func (f *Fleet) CountByModel() [NumModels]int {
	var c [NumModels]int
	for i := range f.Drives {
		c[f.Drives[i].Model]++
	}
	return c
}

// SwapCount returns the total number of swap events in the fleet.
func (f *Fleet) SwapCount() int {
	var n int
	for i := range f.Drives {
		n += len(f.Drives[i].Swaps)
	}
	return n
}

// FilterModel returns a shallow fleet containing only drives of model m.
// Drive slices are shared with the original fleet, not copied.
func (f *Fleet) FilterModel(m Model) *Fleet {
	out := &Fleet{Horizon: f.Horizon}
	for i := range f.Drives {
		if f.Drives[i].Model == m {
			out.Drives = append(out.Drives, f.Drives[i])
		}
	}
	return out
}

// Validate checks structural invariants of the fleet: records sorted and
// unique per drive, monotone cumulative counters, ages consistent with
// days, and events within the horizon. It returns the first violation
// found, or nil if the fleet is well formed.
func (f *Fleet) Validate() error {
	seen := make(map[uint32]bool, len(f.Drives))
	for i := range f.Drives {
		d := &f.Drives[i]
		if seen[d.ID] {
			return fmt.Errorf("trace: duplicate drive ID %d", d.ID)
		}
		seen[d.ID] = true
		if err := d.Validate(f.Horizon); err != nil {
			return fmt.Errorf("drive %d: %w", d.ID, err)
		}
	}
	return nil
}

// Validate checks the per-drive invariants described under Fleet.Validate.
func (d *Drive) Validate(horizon int32) error {
	if int(d.Model) >= NumModels {
		return fmt.Errorf("invalid model %d", d.Model)
	}
	for j := range d.Days {
		r := &d.Days[j]
		if r.Day < 0 || (horizon > 0 && r.Day >= horizon) {
			return fmt.Errorf("record %d: day %d outside horizon %d", j, r.Day, horizon)
		}
		if r.Age < 0 {
			return fmt.Errorf("record %d: negative age %d", j, r.Age)
		}
		if j > 0 {
			p := &d.Days[j-1]
			if r.Day <= p.Day {
				return fmt.Errorf("record %d: day %d not after previous day %d", j, r.Day, p.Day)
			}
			if r.Age <= p.Age {
				return fmt.Errorf("record %d: age %d not after previous age %d", j, r.Age, p.Age)
			}
			if r.Day-p.Day != r.Age-p.Age {
				return fmt.Errorf("record %d: day delta %d != age delta %d", j, r.Day-p.Day, r.Age-p.Age)
			}
			if r.PECycles < p.PECycles {
				return fmt.Errorf("record %d: P/E cycles decreased %.2f -> %.2f", j, p.PECycles, r.PECycles)
			}
			if r.GrownBadBlocks < p.GrownBadBlocks {
				return fmt.Errorf("record %d: grown bad blocks decreased", j)
			}
			if r.FactoryBadBlocks != p.FactoryBadBlocks {
				return fmt.Errorf("record %d: factory bad blocks changed", j)
			}
			if r.CumReads < p.CumReads || r.CumWrites < p.CumWrites || r.CumErases < p.CumErases {
				return fmt.Errorf("record %d: cumulative op counter decreased", j)
			}
			for k := 0; k < NumErrorKinds; k++ {
				if r.CumErrors[k] < p.CumErrors[k] {
					return fmt.Errorf("record %d: cumulative %s count decreased", j, ErrorKind(k))
				}
			}
		}
		for k := 0; k < NumErrorKinds; k++ {
			if uint64(r.Errors[k]) > r.CumErrors[k] {
				return fmt.Errorf("record %d: daily %s count %d exceeds cumulative %d",
					j, ErrorKind(k), r.Errors[k], r.CumErrors[k])
			}
		}
	}
	for j, s := range d.Swaps {
		if s.Day < 0 || (horizon > 0 && s.Day >= horizon) {
			return fmt.Errorf("swap %d: day %d outside horizon %d", j, s.Day, horizon)
		}
		if j > 0 && s.Day <= d.Swaps[j-1].Day {
			return fmt.Errorf("swap %d: day %d not after previous swap", j, s.Day)
		}
	}
	return nil
}
