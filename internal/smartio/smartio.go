// Package smartio imports standard SMART telemetry into the trace
// schema, so the library can run on real field data. The paper's Google
// drives report through custom firmware rather than SMART, but public
// datasets (most prominently the Backblaze drive-stats snapshots) use
// daily CSV rows of SMART attributes; this package maps those onto
// trace.Fleet so the whole pipeline — reconstruction, characterization,
// prediction — runs unmodified on them.
//
// The expected input is one CSV with a header row and one row per drive
// per day:
//
//	date,serial_number,model,capacity_bytes,failure,smart_5_raw,...
//
// Only date, serial_number, model, and failure are required; every
// SMART column is optional and mapped through an AttributeMap.
package smartio

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"ssdfail/internal/trace"
)

// AttributeMap names the CSV columns used for each trace field. Empty
// entries are skipped. DefaultAttributeMap covers the usual SSD
// attributes in Backblaze-style exports.
type AttributeMap struct {
	PowerOnHours    string // drive age fallback (smart_9_raw)
	Reallocated     string // grown bad blocks (smart_5_raw)
	ReportedUncorr  string // uncorrectable errors, cumulative (smart_187_raw)
	CommandTimeout  string // timeout errors, cumulative (smart_188_raw)
	PendingSectors  string // treated as additional grown bad blocks (smart_197_raw)
	TotalLBAWritten string // cumulative writes (smart_241_raw)
	TotalLBARead    string // cumulative reads (smart_242_raw)
	WearLeveling    string // P/E cycle proxy (smart_173_raw or smart_177_raw)
	ProgramFail     string // final write errors, cumulative (smart_181_raw)
	EraseFail       string // erase errors, cumulative (smart_182_raw)
	CRCErrors       string // interface CRC -> response errors (smart_199_raw)
}

// DefaultAttributeMap returns the standard column names.
func DefaultAttributeMap() AttributeMap {
	return AttributeMap{
		PowerOnHours:    "smart_9_raw",
		Reallocated:     "smart_5_raw",
		ReportedUncorr:  "smart_187_raw",
		CommandTimeout:  "smart_188_raw",
		PendingSectors:  "smart_197_raw",
		TotalLBAWritten: "smart_241_raw",
		TotalLBARead:    "smart_242_raw",
		WearLeveling:    "smart_173_raw",
		ProgramFail:     "smart_181_raw",
		EraseFail:       "smart_182_raw",
		CRCErrors:       "smart_199_raw",
	}
}

// Options configures the import.
type Options struct {
	Attrs AttributeMap
	// ModelMap assigns a trace.Model to each SMART model string; nil
	// hashes the string over the three models so multi-vendor datasets
	// split deterministically.
	ModelMap func(model string) trace.Model
	// WritesPerPECycle converts cumulative written LBAs into P/E cycles
	// when no wear-leveling attribute is present; <= 0 uses 2.2e8.
	WritesPerPECycle float64
	// SkipBadRows drops unparseable data rows instead of failing the
	// import. Dropped rows are counted in the Summary; real exports
	// routinely contain a handful of mangled lines.
	SkipBadRows bool
}

// maxBadRowDetail bounds how many rejected rows are itemized in a
// ParseError or Summary; the total is always counted.
const maxBadRowDetail = 8

// maxSMARTValue caps parsed SMART attribute values at 2^53: large
// enough for any real counter (an exabyte of LBAs), exactly
// representable as a float64, and safely inside every integer type the
// importer converts into — so conversions are exact and identical on
// every architecture.
const maxSMARTValue = 1 << 53

// RowError locates one rejected CSV data row.
type RowError struct {
	Line   int    // 1-based line number in the input (header is line 1)
	Reason string // why the row was rejected
}

func (e RowError) String() string {
	return fmt.Sprintf("line %d: %s", e.Line, e.Reason)
}

// ParseError reports every rejected data row in one pass, rather than
// failing on the first: the caller sees how broken the file is and
// where, instead of fixing rows one import at a time.
type ParseError struct {
	BadRows int        // total rejected rows
	First   []RowError // the first maxBadRowDetail of them
}

func (e *ParseError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "smartio: %d bad row(s):", e.BadRows)
	for i, r := range e.First {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteByte(' ')
		b.WriteString(r.String())
	}
	if e.BadRows > len(e.First) {
		fmt.Fprintf(&b, "; and %d more", e.BadRows-len(e.First))
	}
	return b.String()
}

// Summary describes what an import consumed and, in SkipBadRows mode,
// what it dropped.
type Summary struct {
	Rows    int        // data rows imported
	Drives  int        // distinct serial numbers seen
	Skipped int        // bad rows dropped (always 0 unless SkipBadRows)
	First   []RowError // the first maxBadRowDetail dropped rows
}

// hashModel deterministically buckets a model string.
func hashModel(s string) trace.Model {
	h := fnv.New32a()
	h.Write([]byte(s))
	return trace.Model(h.Sum32() % uint32(trace.NumModels))
}

// row is one parsed CSV record.
type row struct {
	day     int32
	failure bool
	vals    [numFields]float64
	has     [numFields]bool
}

// field indices into row.vals.
const (
	fPOH = iota
	fRealloc
	fUncorr
	fTimeout
	fPending
	fLBAW
	fLBAR
	fWear
	fProgFail
	fEraseFail
	fCRC
	numFields
)

// ReadCSV parses a SMART daily-snapshot CSV into a Fleet. Malformed
// data rows fail the import with a *ParseError listing them, unless
// Options.SkipBadRows is set; use ReadCSVSummary to also observe what
// was imported and dropped.
func ReadCSV(r io.Reader, o Options) (*trace.Fleet, error) {
	fleet, _, err := ReadCSVSummary(r, o)
	return fleet, err
}

// ReadCSVSummary is ReadCSV plus an import Summary. The Summary is
// valid whenever the returned fleet is.
func ReadCSVSummary(r io.Reader, o Options) (*trace.Fleet, Summary, error) {
	if o.Attrs == (AttributeMap{}) {
		o.Attrs = DefaultAttributeMap()
	}
	if o.ModelMap == nil {
		o.ModelMap = hashModel
	}
	if o.WritesPerPECycle <= 0 {
		o.WritesPerPECycle = 2.2e8
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, Summary{}, fmt.Errorf("smartio: empty input")
	}
	header := strings.Split(sc.Text(), ",")
	col := map[string]int{}
	for i, h := range header {
		col[strings.TrimSpace(h)] = i
	}
	for _, req := range []string{"date", "serial_number", "model", "failure"} {
		if _, ok := col[req]; !ok {
			return nil, Summary{}, fmt.Errorf("smartio: missing required column %q", req)
		}
	}
	attrCols := [numFields]int{}
	attrNames := [numFields]string{
		o.Attrs.PowerOnHours, o.Attrs.Reallocated, o.Attrs.ReportedUncorr,
		o.Attrs.CommandTimeout, o.Attrs.PendingSectors, o.Attrs.TotalLBAWritten,
		o.Attrs.TotalLBARead, o.Attrs.WearLeveling, o.Attrs.ProgramFail,
		o.Attrs.EraseFail, o.Attrs.CRCErrors,
	}
	for f, name := range attrNames {
		attrCols[f] = -1
		if name == "" {
			continue
		}
		if c, ok := col[name]; ok {
			attrCols[f] = c
		}
	}

	type driveAcc struct {
		model string
		rows  []row
	}
	drives := map[string]*driveAcc{}
	var minDate, maxDate int64
	var sum Summary
	var bad []RowError
	badRows := 0
	reject := func(lineNo int, reason string) {
		badRows++
		if len(bad) < maxBadRowDetail {
			bad = append(bad, RowError{Line: lineNo, Reason: reason})
		}
	}
	first := true
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		get := func(name string) string {
			i := col[name]
			if i < len(fields) {
				return strings.TrimSpace(fields[i])
			}
			return ""
		}
		t, err := time.Parse("2006-01-02", get("date"))
		if err != nil {
			reject(lineNo, fmt.Sprintf("bad date %q", get("date")))
			continue
		}
		serial := get("serial_number")
		if serial == "" {
			reject(lineNo, "empty serial")
			continue
		}
		epochDay := t.Unix() / 86400
		if first || epochDay < minDate {
			minDate = epochDay
		}
		if first || epochDay > maxDate {
			maxDate = epochDay
		}
		first = false
		sum.Rows++

		acc := drives[serial]
		if acc == nil {
			acc = &driveAcc{model: get("model")}
			drives[serial] = acc
		}
		var rec row
		rec.day = int32(epochDay) // rebased after the scan
		rec.failure = get("failure") == "1"
		for f := 0; f < numFields; f++ {
			if attrCols[f] < 0 || attrCols[f] >= len(fields) {
				continue
			}
			s := strings.TrimSpace(fields[attrCols[f]])
			if s == "" {
				continue
			}
			v, err := strconv.ParseFloat(s, 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				// Tolerate junk in SMART columns, as real exports require.
				// Non-finite and negative values are junk too: a raw SMART
				// counter is a non-negative integer, and letting NaN or a
				// negative through would reach float→uint conversions whose
				// out-of-range behavior differs across architectures.
				continue
			}
			if v > maxSMARTValue {
				v = maxSMARTValue
			}
			rec.vals[f] = v
			rec.has[f] = true
		}
		acc.rows = append(acc.rows, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, Summary{}, err
	}
	if badRows > 0 && !o.SkipBadRows {
		return nil, Summary{}, &ParseError{BadRows: badRows, First: bad}
	}
	sum.Skipped = badRows
	sum.First = bad
	if first {
		return nil, Summary{}, fmt.Errorf("smartio: no data rows")
	}
	sum.Drives = len(drives)

	fleet := &trace.Fleet{Horizon: int32(maxDate-minDate) + 2}
	serials := make([]string, 0, len(drives))
	for s := range drives {
		serials = append(serials, s)
	}
	sort.Strings(serials)
	for _, serial := range serials {
		acc := drives[serial]
		d := buildDrive(serial, acc.model, acc.rows, int32(minDate), o)
		fleet.Drives = append(fleet.Drives, d)
	}
	if err := fleet.Validate(); err != nil {
		return nil, Summary{}, fmt.Errorf("smartio: converted fleet invalid: %w", err)
	}
	return fleet, sum, nil
}

// buildDrive converts one drive's rows into a trace.Drive.
func buildDrive(serial, model string, rows []row, minDate int32, o Options) trace.Drive {
	h := fnv.New32a()
	h.Write([]byte(serial))
	d := trace.Drive{ID: h.Sum32(), Model: o.ModelMap(model)}

	sort.Slice(rows, func(a, b int) bool { return rows[a].day < rows[b].day })
	// Deduplicate days (keep the last row for a day).
	dedup := rows[:0]
	for i := 0; i < len(rows); i++ {
		if len(dedup) > 0 && dedup[len(dedup)-1].day == rows[i].day {
			dedup[len(dedup)-1] = rows[i]
			continue
		}
		dedup = append(dedup, rows[i])
	}
	rows = dedup

	firstDay := rows[0].day
	// Prefer power-on hours for the age origin when present: a drive
	// may enter the dataset mid-life. A century is already absurd for a
	// drive age; capping there keeps the later int32 day arithmetic far
	// from overflow no matter what the column claimed.
	const maxAgeOffsetDays = 36500
	ageOffset := int32(0)
	if rows[0].has[fPOH] {
		if days := rows[0].vals[fPOH] / 24; days > maxAgeOffsetDays {
			ageOffset = maxAgeOffsetDays
		} else {
			ageOffset = int32(days)
		}
	}

	var prev *row
	var prevRec *trace.DayRecord
	failed := false
	for i := range rows {
		rw := &rows[i]
		var rec trace.DayRecord
		rec.Day = rw.day - minDate
		rec.Age = rw.day - firstDay + ageOffset

		cumW := monotone(rw, prev, fLBAW)
		cumR := monotone(rw, prev, fLBAR)
		rec.CumWrites = uint64(cumW)
		rec.CumReads = uint64(cumR)
		if prevRec != nil {
			rec.Writes = delta(rec.CumWrites, prevRec.CumWrites)
			rec.Reads = delta(rec.CumReads, prevRec.CumReads)
		} else {
			// First observation: attribute nominal activity so the day
			// counts as operational.
			rec.Writes = 1
			rec.Reads = 1
		}
		if rw.has[fWear] {
			rec.PECycles = rw.vals[fWear]
		} else {
			rec.PECycles = cumW / o.WritesPerPECycle
		}
		grown := monotone(rw, prev, fRealloc) + monotone(rw, prev, fPending)
		rec.GrownBadBlocks = satU32(grown)

		setCum := func(kind trace.ErrorKind, field int) {
			cum := monotone(rw, prev, field)
			rec.CumErrors[kind] = uint64(cum)
			if prevRec != nil {
				d := delta(rec.CumErrors[kind], prevRec.CumErrors[kind])
				if d > math.MaxUint32 {
					d = math.MaxUint32
				}
				rec.Errors[kind] = uint32(d)
			}
		}
		setCum(trace.ErrUncorrectable, fUncorr)
		setCum(trace.ErrTimeout, fTimeout)
		setCum(trace.ErrFinalWrite, fProgFail)
		setCum(trace.ErrErase, fEraseFail)
		setCum(trace.ErrResponse, fCRC)

		// Keep cumulative counters monotone even when SMART resets.
		if prevRec != nil {
			if rec.PECycles < prevRec.PECycles {
				rec.PECycles = prevRec.PECycles
			}
			if rec.GrownBadBlocks < prevRec.GrownBadBlocks {
				rec.GrownBadBlocks = prevRec.GrownBadBlocks
			}
		}
		rec.Dead = rw.failure
		d.Days = append(d.Days, rec)
		prev = rw
		prevRec = &d.Days[len(d.Days)-1]
		if rw.failure {
			failed = true
		}
	}
	if failed {
		// Backblaze marks the last operational day with failure=1; the
		// physical replacement is the next day.
		d.Swaps = append(d.Swaps, trace.SwapEvent{Day: d.Days[len(d.Days)-1].Day + 1})
	}
	return d
}

// monotone returns the cumulative value of field at rw, carrying the
// previous value forward when the column is missing and clamping
// decreases (SMART counters occasionally reset).
func monotone(rw, prev *row, field int) float64 {
	v := 0.0
	if rw.has[field] {
		v = rw.vals[field]
	} else if prev != nil && prev.has[field] {
		v = prev.vals[field]
		rw.vals[field] = v
		rw.has[field] = true
	}
	if prev != nil && prev.has[field] && v < prev.vals[field] {
		v = prev.vals[field]
		rw.vals[field] = v
	}
	return v
}

// satU32 converts a sanitized (finite, non-negative) float to uint32,
// saturating instead of relying on out-of-range conversion behavior.
func satU32(v float64) uint32 {
	if v >= math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(v)
}

// delta returns a-b clamped at 0 for unsigned counters.
func delta(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}
