package smartio

import (
	"errors"
	"strings"
	"testing"
)

// fuzzHeader exposes every mapped SMART column, so fuzzed rows can reach
// each conversion path in buildDrive.
const fuzzHeader = "date,serial_number,model,failure," +
	"smart_9_raw,smart_5_raw,smart_187_raw,smart_188_raw,smart_197_raw," +
	"smart_241_raw,smart_242_raw,smart_173_raw,smart_181_raw,smart_182_raw,smart_199_raw"

// checkImport runs one import and enforces the properties fuzzing
// guards: no panic (implicit), errors are typed, and any fleet that
// comes back satisfies every trace invariant.
func checkImport(t *testing.T, input string, skipBad bool) {
	t.Helper()
	fleet, sum, err := ReadCSVSummary(strings.NewReader(input), Options{SkipBadRows: skipBad})
	if err != nil {
		var pe *ParseError
		if errors.As(err, &pe) {
			if skipBad {
				t.Fatalf("ParseError despite SkipBadRows: %v", pe)
			}
			if pe.BadRows <= 0 || len(pe.First) == 0 || len(pe.First) > maxBadRowDetail {
				t.Fatalf("malformed ParseError: %+v", pe)
			}
		}
		return
	}
	if fleet == nil {
		t.Fatal("nil fleet with nil error")
	}
	if err := fleet.Validate(); err != nil {
		t.Fatalf("import returned invalid fleet: %v\ninput:\n%s", err, input)
	}
	if sum.Drives != len(fleet.Drives) {
		t.Fatalf("summary drives %d, fleet has %d", sum.Drives, len(fleet.Drives))
	}
	if fleet.DriveDays() > sum.Rows {
		t.Fatalf("fleet has %d drive-days from %d rows", fleet.DriveDays(), sum.Rows)
	}
	for i := range fleet.Drives {
		for _, rec := range fleet.Drives[i].Days {
			for k := range rec.Errors {
				if uint64(rec.Errors[k]) > rec.CumErrors[k] {
					t.Fatalf("drive %d: daily error %d exceeds cumulative %d",
						fleet.Drives[i].ID, rec.Errors[k], rec.CumErrors[k])
				}
			}
		}
	}
}

// FuzzParseRecord fuzzes a single data row under a fixed header: the
// per-record parse and conversion path (dates, counters, every SMART
// attribute column, including non-finite and out-of-range values).
func FuzzParseRecord(f *testing.F) {
	// The corrupt-row corpus from the structured-ParseError tests, plus
	// healthy rows and adversarial SMART values.
	for _, row := range []string{
		"2023-01-01,A,M,0,24,0,0,0,0,100,100,1,0,0,0",
		"nope,BAD,M,0",
		"2023-01-02,,M,0",
		"garbage-row-with,no,date,0",
		"2023-01-01,A,M,1,24,5,9,0,3,210,200,2,1,1,4",
		"2023-01-01,A,M,0,NaN,Inf,-Inf,-5,1e308,9e18,1e300,-0,Infinity,nan,+Inf",
		"2023-01-01,A,M,0,9007199254740993,18446744073709551615,4294967296,99999999999,1,1,1,1,1,1,1",
		"2023-01-01,A,M,0,1e15,,,,,,,,,,",
		"9999-12-31,Z,M,0,1,1,1,1,1,1,1,1,1,1,1",
		"2023-01-01,A,M,2,x,y,z,,,,,,,,",
	} {
		f.Add(row)
	}
	f.Fuzz(func(t *testing.T, row string) {
		input := fuzzHeader + "\n" + row + "\n"
		checkImport(t, input, false)
		checkImport(t, input, true)
	})
}

// FuzzParseCSV fuzzes whole documents: header handling, multi-row
// multi-drive accumulation, day dedup, and cross-row monotone clamping.
func FuzzParseCSV(f *testing.F) {
	f.Add("date,serial_number,model,failure\n2023-01-01,A,M,0\n")
	f.Add("date,serial_number,model,failure\nnope,BAD,M,0\n2023-01-02,,M,0\n")
	f.Add("date,serial_number,model,failure\ngarbage-row-with,no,date,0\n2023-01-03,B,M,1\n")
	f.Add(fuzzHeader + "\n" +
		"2023-01-01,A,M,0,24,0,0,0,0,100,100,1,0,0,0\n" +
		"2023-01-02,A,M,0,48,0,3,0,0,200,150,1,0,0,0\n" +
		"2023-01-02,A,M,0,48,0,2,0,0,190,150,1,0,0,0\n" + // same-day dedup
		"2023-01-03,A,M,1,72,1,9,1,0,210,160,2,1,0,1\n")
	f.Add(fuzzHeader + "\n" +
		"2023-01-01,A,M,0,1,1e300,NaN,-1,Inf,5e17,1,1,1,1,1\n" +
		"2023-01-02,A,M,0,1,0,0,0,0,1,1,1,1,1,1\n") // SMART reset after junk
	f.Add("serial_number,model,failure\n1,2,3\n") // missing required column
	f.Add("")
	f.Add("date,serial_number,model,failure")
	f.Fuzz(func(t *testing.T, doc string) {
		checkImport(t, doc, false)
		checkImport(t, doc, true)
	})
}
