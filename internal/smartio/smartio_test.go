package smartio

import (
	"errors"
	"strings"
	"testing"

	"ssdfail/internal/failure"
	"ssdfail/internal/trace"
)

const sampleCSV = `date,serial_number,model,capacity_bytes,failure,smart_5_raw,smart_9_raw,smart_187_raw,smart_241_raw,smart_242_raw
2023-01-01,SER1,VendorX SSD,480000000000,0,0,2400,0,1000000,2000000
2023-01-02,SER1,VendorX SSD,480000000000,0,1,2424,2,1100000,2200000
2023-01-03,SER1,VendorX SSD,480000000000,1,3,2448,5,1150000,2300000
2023-01-01,SER2,VendorY SSD,480000000000,0,0,48,0,500000,900000
2023-01-02,SER2,VendorY SSD,480000000000,0,0,72,0,600000,1000000
2023-01-03,SER2,VendorY SSD,480000000000,0,0,96,0,700000,1100000
`

func TestReadCSVBasic(t *testing.T) {
	fleet, err := ReadCSV(strings.NewReader(sampleCSV), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Drives) != 2 {
		t.Fatalf("drives = %d, want 2", len(fleet.Drives))
	}
	if err := fleet.Validate(); err != nil {
		t.Fatalf("fleet invalid: %v", err)
	}
	// Drives are sorted by serial: SER1 then SER2.
	d1 := &fleet.Drives[0]
	if len(d1.Days) != 3 {
		t.Fatalf("SER1 days = %d", len(d1.Days))
	}
	if len(d1.Swaps) != 1 || d1.Swaps[0].Day != d1.Days[2].Day+1 {
		t.Fatalf("SER1 swaps = %+v", d1.Swaps)
	}
	d2 := &fleet.Drives[1]
	if len(d2.Swaps) != 0 {
		t.Fatal("SER2 should not have failed")
	}
}

func TestReadCSVCounters(t *testing.T) {
	fleet, err := ReadCSV(strings.NewReader(sampleCSV), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d1 := &fleet.Drives[0]
	// Day 2: cumulative writes 1.1e6, daily delta 1e5.
	if d1.Days[1].CumWrites != 1100000 || d1.Days[1].Writes != 100000 {
		t.Errorf("day2 writes: cum %d daily %d", d1.Days[1].CumWrites, d1.Days[1].Writes)
	}
	// Day 2: uncorrectable cumulative 2, daily 2; day 3: cumulative 5, daily 3.
	if d1.Days[1].CumErrors[trace.ErrUncorrectable] != 2 ||
		d1.Days[1].Errors[trace.ErrUncorrectable] != 2 {
		t.Errorf("day2 UE = %d/%d", d1.Days[1].Errors[trace.ErrUncorrectable],
			d1.Days[1].CumErrors[trace.ErrUncorrectable])
	}
	if d1.Days[2].Errors[trace.ErrUncorrectable] != 3 {
		t.Errorf("day3 daily UE = %d", d1.Days[2].Errors[trace.ErrUncorrectable])
	}
	// Reallocated + pending -> grown bad blocks.
	if d1.Days[2].GrownBadBlocks != 3 {
		t.Errorf("grown BB = %d, want 3", d1.Days[2].GrownBadBlocks)
	}
	// Age: SER1 entered with 2400 power-on hours = 100 days.
	if d1.Days[0].Age != 100 || d1.Days[2].Age != 102 {
		t.Errorf("ages = %d..%d, want 100..102", d1.Days[0].Age, d1.Days[2].Age)
	}
	// SER2 entered with 48h = 2 days.
	if fleet.Drives[1].Days[0].Age != 2 {
		t.Errorf("SER2 age = %d, want 2", fleet.Drives[1].Days[0].Age)
	}
}

func TestReadCSVRequiresColumns(t *testing.T) {
	bad := "serial_number,model,failure\nX,Y,0\n"
	if _, err := ReadCSV(strings.NewReader(bad), Options{}); err == nil {
		t.Error("missing date column should fail")
	}
	if _, err := ReadCSV(strings.NewReader(""), Options{}); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadCSV(strings.NewReader("date,serial_number,model,failure\n"), Options{}); err == nil {
		t.Error("header-only input should fail")
	}
}

func TestReadCSVBadDate(t *testing.T) {
	bad := "date,serial_number,model,failure\nnot-a-date,S,M,0\n"
	if _, err := ReadCSV(strings.NewReader(bad), Options{}); err == nil {
		t.Error("bad date should fail")
	}
}

func TestReadCSVStructuredParseError(t *testing.T) {
	// Ten bad rows interleaved with good ones: the error must count all
	// ten, itemize the first maxBadRowDetail with line numbers, and not
	// stop at the first.
	var b strings.Builder
	b.WriteString("date,serial_number,model,failure\n")
	for i := 0; i < 10; i++ {
		b.WriteString("2023-01-01,GOOD,M,0\n") // odd lines good
		if i%2 == 0 {
			b.WriteString("nope,BAD,M,0\n")
		} else {
			b.WriteString("2023-01-02,,M,0\n")
		}
	}
	_, err := ReadCSV(strings.NewReader(b.String()), Options{})
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ParseError", err)
	}
	if pe.BadRows != 10 {
		t.Errorf("BadRows = %d, want 10", pe.BadRows)
	}
	if len(pe.First) != maxBadRowDetail {
		t.Errorf("First has %d entries, want %d", len(pe.First), maxBadRowDetail)
	}
	// First bad row is input line 3 (header, good, bad).
	if pe.First[0].Line != 3 || !strings.Contains(pe.First[0].Reason, "bad date") {
		t.Errorf("First[0] = %+v", pe.First[0])
	}
	if pe.First[1].Line != 5 || pe.First[1].Reason != "empty serial" {
		t.Errorf("First[1] = %+v", pe.First[1])
	}
	if msg := pe.Error(); !strings.Contains(msg, "10 bad row(s)") ||
		!strings.Contains(msg, "line 3:") || !strings.Contains(msg, "and 2 more") {
		t.Errorf("Error() = %q", msg)
	}
}

func TestReadCSVSkipBadRows(t *testing.T) {
	in := "date,serial_number,model,failure,smart_241_raw\n" +
		"2023-01-01,S,M,0,100\n" +
		"garbage-row-with,no,date,0\n" +
		"2023-01-02,,M,0,150\n" +
		"2023-01-02,S,M,0,200\n"
	fleet, sum, err := ReadCSVSummary(strings.NewReader(in), Options{SkipBadRows: true})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Rows != 2 || sum.Skipped != 2 || sum.Drives != 1 {
		t.Errorf("summary = %+v, want 2 rows / 2 skipped / 1 drive", sum)
	}
	if len(sum.First) != 2 || sum.First[0].Line != 3 || sum.First[1].Line != 4 {
		t.Errorf("summary.First = %+v", sum.First)
	}
	if len(fleet.Drives) != 1 || len(fleet.Drives[0].Days) != 2 {
		t.Fatalf("fleet shape wrong: %d drives", len(fleet.Drives))
	}
	if fleet.Drives[0].Days[1].CumWrites != 200 {
		t.Errorf("good rows altered by skipping: cum = %d", fleet.Drives[0].Days[1].CumWrites)
	}

	// All rows bad: still "no data rows", not a partial fleet.
	allBad := "date,serial_number,model,failure\nnope,S,M,0\n"
	if _, _, err := ReadCSVSummary(strings.NewReader(allBad), Options{SkipBadRows: true}); err == nil {
		t.Error("all-bad input should fail even in skip mode")
	}
}

func TestReadCSVToleratesJunkSmartValues(t *testing.T) {
	in := "date,serial_number,model,failure,smart_5_raw\n" +
		"2023-01-01,S,M,0,garbage\n" +
		"2023-01-02,S,M,0,7\n"
	fleet, err := ReadCSV(strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Drives[0].Days[1].GrownBadBlocks != 7 {
		t.Errorf("grown = %d", fleet.Drives[0].Days[1].GrownBadBlocks)
	}
}

func TestReadCSVCounterResetClamped(t *testing.T) {
	// SMART counters occasionally reset; cumulative fields must stay
	// monotone so the fleet validates.
	in := "date,serial_number,model,failure,smart_187_raw,smart_241_raw\n" +
		"2023-01-01,S,M,0,10,1000\n" +
		"2023-01-02,S,M,0,3,900\n" + // reset
		"2023-01-03,S,M,0,12,1100\n"
	fleet, err := ReadCSV(strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := &fleet.Drives[0]
	if d.Days[1].CumErrors[trace.ErrUncorrectable] != 10 {
		t.Errorf("reset not clamped: %d", d.Days[1].CumErrors[trace.ErrUncorrectable])
	}
	if d.Days[2].CumErrors[trace.ErrUncorrectable] != 12 {
		t.Errorf("post-reset cum = %d", d.Days[2].CumErrors[trace.ErrUncorrectable])
	}
}

func TestReadCSVDuplicateDaysDeduplicated(t *testing.T) {
	in := "date,serial_number,model,failure,smart_241_raw\n" +
		"2023-01-01,S,M,0,100\n" +
		"2023-01-01,S,M,0,200\n" +
		"2023-01-02,S,M,0,300\n"
	fleet, err := ReadCSV(strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Drives[0].Days) != 2 {
		t.Fatalf("days = %d, want 2", len(fleet.Drives[0].Days))
	}
	if fleet.Drives[0].Days[0].CumWrites != 200 {
		t.Errorf("dedup should keep the last row, got %d", fleet.Drives[0].Days[0].CumWrites)
	}
}

func TestModelMap(t *testing.T) {
	in := "date,serial_number,model,failure\n2023-01-01,S,AnyModel,0\n"
	fleet, err := ReadCSV(strings.NewReader(in), Options{
		ModelMap: func(string) trace.Model { return trace.MLCD },
	})
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Drives[0].Model != trace.MLCD {
		t.Errorf("model = %v", fleet.Drives[0].Model)
	}
	// Default hashing is deterministic.
	if hashModel("abc") != hashModel("abc") {
		t.Error("hashModel not deterministic")
	}
}

// TestPipelineRunsOnSMARTImport is the end-to-end check: the failure
// reconstruction must work on an imported fleet.
func TestPipelineRunsOnSMARTImport(t *testing.T) {
	fleet, err := ReadCSV(strings.NewReader(sampleCSV), Options{})
	if err != nil {
		t.Fatal(err)
	}
	an := failure.Analyze(fleet)
	if len(an.Events) != 1 {
		t.Fatalf("events = %d, want 1", len(an.Events))
	}
	e := an.Events[0]
	// Failure day = the marked last operational day.
	if e.NonOpDays != 1 {
		t.Errorf("non-op days = %d, want 1", e.NonOpDays)
	}
	if e.Age != 102 {
		t.Errorf("failure age = %d, want 102", e.Age)
	}
}
