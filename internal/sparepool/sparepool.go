// Package sparepool simulates spare-drive inventory against a fleet's
// failure and repair processes with a discrete-event model: swaps
// consume spares, procurement replenishes them after a lead time, and
// repaired drives re-enter the pool. It turns the paper's motivation
// ("being able to predict an upcoming retirement could allow early
// action") into a quantitative planning tool: given a replay of swap
// events, it reports stockout days, service level, and average inventory
// for a candidate policy.
package sparepool

import (
	"errors"
	"sort"

	"ssdfail/internal/failure"
)

// Policy is a (s, Q) reorder policy: when on-hand plus on-order
// inventory falls to ReorderPoint or below, order OrderQty spares that
// arrive after LeadTimeDays.
type Policy struct {
	InitialSpares int
	ReorderPoint  int
	OrderQty      int
	LeadTimeDays  int32
	// ReuseRepaired adds drives returning from repair back into the
	// spare pool (the paper finds only ~half ever return).
	ReuseRepaired bool
}

// Result summarizes one simulation run.
type Result struct {
	Days            int32
	Swaps           int   // demand events
	Stockouts       int   // swaps that found no spare on hand
	StockoutDays    int32 // days with zero on-hand inventory
	OrdersPlaced    int
	SparesConsumed  int
	RepairsReturned int
	AvgOnHand       float64
	ServiceLevel    float64 // fraction of swaps served immediately
}

// event kinds in the queue.
type evKind uint8

const (
	evSwap evKind = iota
	evOrderArrival
	evRepairReturn
)

type event struct {
	day  int32
	kind evKind
	qty  int
}

// Simulate replays the fleet's reconstructed swap and repair events
// against the policy. Demand is one spare per swap; repaired drives
// return on their observed re-entry day when ReuseRepaired is set.
func Simulate(an *failure.Analysis, p Policy) (Result, error) {
	if p.InitialSpares < 0 || p.OrderQty < 0 || p.LeadTimeDays < 0 {
		return Result{}, errors.New("sparepool: negative policy parameter")
	}
	horizon := an.Fleet.Horizon
	var events []event
	for i := range an.Events {
		e := &an.Events[i]
		events = append(events, event{day: e.SwapDay, kind: evSwap})
		if p.ReuseRepaired && e.ReturnDay >= 0 {
			events = append(events, event{day: e.ReturnDay, kind: evRepairReturn, qty: 1})
		}
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].day < events[b].day })

	res := Result{Days: horizon}
	onHand := p.InitialSpares
	onOrder := 0
	var pending []event // order arrivals, kept sorted by day

	var inventoryIntegral float64
	lastDay := int32(0)
	advance := func(to int32) {
		if to > lastDay {
			inventoryIntegral += float64(onHand) * float64(to-lastDay)
			if onHand == 0 {
				res.StockoutDays += to - lastDay
			}
			lastDay = to
		}
	}
	reorder := func(day int32) {
		for onHand+onOrder <= p.ReorderPoint && p.OrderQty > 0 {
			onOrder += p.OrderQty
			res.OrdersPlaced++
			pending = append(pending, event{day: day + p.LeadTimeDays, kind: evOrderArrival, qty: p.OrderQty})
		}
	}
	reorder(0)

	ei := 0
	for ei < len(events) || len(pending) > 0 {
		// Next event across both queues.
		nextDay := horizon
		src := -1
		if ei < len(events) && events[ei].day < nextDay {
			nextDay = events[ei].day
			src = 0
		}
		if len(pending) > 0 {
			// pending is append-ordered by arrival day because lead
			// time is constant; its head is the earliest arrival.
			if pending[0].day < nextDay || (pending[0].day == nextDay && src == -1) {
				nextDay = pending[0].day
				src = 1
			} else if pending[0].day == nextDay {
				src = 1 // arrivals land before same-day demand
			}
		}
		if src == -1 || nextDay >= horizon {
			break
		}
		advance(nextDay)
		if src == 1 {
			onHand += pending[0].qty
			onOrder -= pending[0].qty
			pending = pending[1:]
			continue
		}
		ev := events[ei]
		ei++
		switch ev.kind {
		case evSwap:
			res.Swaps++
			if onHand > 0 {
				onHand--
				res.SparesConsumed++
			} else {
				res.Stockouts++
			}
			reorder(ev.day)
		case evRepairReturn:
			res.RepairsReturned++
			onHand += ev.qty
		}
	}
	advance(horizon)

	if horizon > 0 {
		res.AvgOnHand = inventoryIntegral / float64(horizon)
	}
	if res.Swaps > 0 {
		res.ServiceLevel = float64(res.Swaps-res.Stockouts) / float64(res.Swaps)
	} else {
		res.ServiceLevel = 1
	}
	return res, nil
}

// MinimalSpares searches for the smallest initial spare count achieving
// the target service level under the policy (holding the other fields
// fixed and disabling reordering), by linear scan. It answers the
// planner's question "how many spares must be on the shelf to survive
// the horizon".
func MinimalSpares(an *failure.Analysis, target float64, reuseRepaired bool) (int, Result, error) {
	if target <= 0 || target > 1 {
		return 0, Result{}, errors.New("sparepool: target service level outside (0, 1]")
	}
	for spares := 0; spares <= len(an.Events)+1; spares++ {
		res, err := Simulate(an, Policy{
			InitialSpares: spares,
			ReuseRepaired: reuseRepaired,
		})
		if err != nil {
			return 0, Result{}, err
		}
		if res.ServiceLevel >= target {
			return spares, res, nil
		}
	}
	res, err := Simulate(an, Policy{InitialSpares: len(an.Events) + 1, ReuseRepaired: reuseRepaired})
	return len(an.Events) + 1, res, err
}
