package sparepool

import (
	"errors"
	"sync"
	"testing"
)

func TestPoolAllocateRelease(t *testing.T) {
	p, err := NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := p.Allocate(10)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Allocate(11)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != 1 || s2 != 2 {
		t.Fatalf("spare IDs = %d, %d, want 1, 2 (sequential in allocation order)", s1, s2)
	}
	st := p.Stats()
	if st.Free != 0 || st.InUse != 2 || st.Capacity != 2 || st.Allocations != 2 {
		t.Fatalf("stats after allocations = %+v", st)
	}
	if spare, ok := p.Holder(10); !ok || spare != 1 {
		t.Fatalf("Holder(10) = %d, %v", spare, ok)
	}
	if err := p.Release(10); err != nil {
		t.Fatal(err)
	}
	st = p.Stats()
	if st.Free != 1 || st.InUse != 1 || st.Releases != 1 {
		t.Fatalf("stats after release = %+v", st)
	}
}

func TestPoolDoubleAllocateIsError(t *testing.T) {
	p, _ := NewPool(5)
	if _, err := p.Allocate(7); err != nil {
		t.Fatal(err)
	}
	_, err := p.Allocate(7)
	if !errors.Is(err, ErrDoubleAllocate) {
		t.Fatalf("second allocate = %v, want ErrDoubleAllocate", err)
	}
	// The refused allocation consumed nothing.
	st := p.Stats()
	if st.Free != 4 || st.InUse != 1 || st.DoubleAllocates != 1 {
		t.Fatalf("stats after double allocate = %+v", st)
	}
}

func TestPoolDoubleReleaseIsError(t *testing.T) {
	p, _ := NewPool(1)
	if err := p.Release(3); !errors.Is(err, ErrDoubleRelease) {
		t.Fatalf("release of unallocated drive = %v, want ErrDoubleRelease", err)
	}
	if _, err := p.Allocate(3); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(3); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(3); !errors.Is(err, ErrDoubleRelease) {
		t.Fatalf("second release = %v, want ErrDoubleRelease", err)
	}
	st := p.Stats()
	if st.Free != 1 || st.InUse != 0 || st.DoubleReleases != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolExhaustionAndRestock(t *testing.T) {
	p, _ := NewPool(1)
	if _, err := p.Allocate(1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate(2); !errors.Is(err, ErrExhausted) {
		t.Fatalf("allocate from empty pool = %v, want ErrExhausted", err)
	}
	if st := p.Stats(); st.Exhaustions != 1 {
		t.Fatalf("stats = %+v, want 1 exhaustion", st)
	}
	if err := p.Restock(2); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate(2); err != nil {
		t.Fatalf("allocate after restock: %v", err)
	}
	st := p.Stats()
	if st.Capacity != 3 || st.Free != 1 || st.InUse != 2 {
		t.Fatalf("stats after restock = %+v", st)
	}
	if err := p.Restock(-1); err == nil {
		t.Fatal("negative restock should error")
	}
}

func TestPoolRejectsNegativeInitial(t *testing.T) {
	if _, err := NewPool(-1); err == nil {
		t.Fatal("negative initial stock should error")
	}
}

// TestPoolConcurrentActuation hammers the pool from many goroutines
// under -race: every drive allocates then releases in a loop, and the
// books must balance exactly at the end — no spare lost, none minted.
func TestPoolConcurrentActuation(t *testing.T) {
	const (
		drives = 32
		rounds = 200
		stock  = 8
	)
	p, _ := NewPool(stock)
	var wg sync.WaitGroup
	for d := 0; d < drives; d++ {
		wg.Add(1)
		go func(id uint32) {
			defer wg.Done()
			held := false
			for r := 0; r < rounds; r++ {
				if held {
					if err := p.Release(id); err != nil {
						t.Errorf("drive %d: release: %v", id, err)
						return
					}
					held = false
					continue
				}
				_, err := p.Allocate(id)
				switch {
				case err == nil:
					held = true
				case errors.Is(err, ErrExhausted):
					// Contention, not corruption; try again next round.
				default:
					t.Errorf("drive %d: allocate: %v", id, err)
					return
				}
			}
			if held {
				if err := p.Release(id); err != nil {
					t.Errorf("drive %d: final release: %v", id, err)
				}
			}
		}(uint32(d))
	}
	wg.Wait()
	st := p.Stats()
	if st.InUse != 0 || st.Free != stock {
		t.Fatalf("pool did not balance: %+v", st)
	}
	if st.Allocations != st.Releases {
		t.Fatalf("allocations %d != releases %d", st.Allocations, st.Releases)
	}
	if st.DoubleAllocates != 0 || st.DoubleReleases != 0 {
		t.Fatalf("spurious duplicate actuations: %+v", st)
	}
}

// TestPoolConcurrentExhaustion drives far more claimants than stock and
// verifies the pool never over-allocates: at every moment at most
// `stock` spares are out, which the final books confirm.
func TestPoolConcurrentExhaustion(t *testing.T) {
	const (
		claimants = 64
		stock     = 4
	)
	p, _ := NewPool(stock)
	var wg sync.WaitGroup
	var mu sync.Mutex
	winners := 0
	for d := 0; d < claimants; d++ {
		wg.Add(1)
		go func(id uint32) {
			defer wg.Done()
			if _, err := p.Allocate(id); err == nil {
				mu.Lock()
				winners++
				mu.Unlock()
			} else if !errors.Is(err, ErrExhausted) {
				t.Errorf("drive %d: %v", id, err)
			}
		}(uint32(d))
	}
	wg.Wait()
	if winners != stock {
		t.Fatalf("%d allocations succeeded, want exactly %d", winners, stock)
	}
	st := p.Stats()
	if st.Free != 0 || st.InUse != stock || st.Exhaustions != claimants-stock {
		t.Fatalf("stats = %+v", st)
	}
}
