package sparepool

import (
	"testing"

	"ssdfail/internal/failure"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/trace"
)

// manualAnalysis builds an Analysis with hand-placed swaps/returns.
func manualAnalysis(horizon int32, events []failure.Event) *failure.Analysis {
	f := &trace.Fleet{Horizon: horizon}
	an := &failure.Analysis{Fleet: f, Events: events}
	return an
}

func TestSimulateBasicConsumption(t *testing.T) {
	an := manualAnalysis(100, []failure.Event{
		{SwapDay: 10, ReturnDay: -1},
		{SwapDay: 20, ReturnDay: -1},
		{SwapDay: 30, ReturnDay: -1},
	})
	res, err := Simulate(an, Policy{InitialSpares: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Swaps != 3 || res.SparesConsumed != 2 || res.Stockouts != 1 {
		t.Fatalf("result = %+v", res)
	}
	if res.ServiceLevel < 0.66 || res.ServiceLevel > 0.67 {
		t.Errorf("service level = %v", res.ServiceLevel)
	}
	if res.StockoutDays == 0 {
		t.Error("expected stockout days after spares ran out")
	}
}

func TestSimulateReordering(t *testing.T) {
	an := manualAnalysis(100, []failure.Event{
		{SwapDay: 10, ReturnDay: -1},
		{SwapDay: 40, ReturnDay: -1}, // order placed at day 10 arrives day 20
	})
	res, err := Simulate(an, Policy{
		InitialSpares: 1, ReorderPoint: 0, OrderQty: 1, LeadTimeDays: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stockouts != 0 {
		t.Fatalf("reordering should prevent stockouts: %+v", res)
	}
	if res.OrdersPlaced == 0 {
		t.Error("no orders placed")
	}
}

func TestSimulateLeadTimeTooLong(t *testing.T) {
	an := manualAnalysis(100, []failure.Event{
		{SwapDay: 10, ReturnDay: -1},
		{SwapDay: 12, ReturnDay: -1}, // arrives before the day-40 order
	})
	res, err := Simulate(an, Policy{
		InitialSpares: 1, ReorderPoint: 0, OrderQty: 1, LeadTimeDays: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stockouts != 1 {
		t.Fatalf("slow order should stock out once: %+v", res)
	}
}

func TestSimulateRepairReuse(t *testing.T) {
	an := manualAnalysis(100, []failure.Event{
		{SwapDay: 10, ReturnDay: 20},
		{SwapDay: 30, ReturnDay: -1}, // served by the returned drive
	})
	with, err := Simulate(an, Policy{InitialSpares: 1, ReuseRepaired: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Stockouts != 0 || with.RepairsReturned != 1 {
		t.Fatalf("with reuse: %+v", with)
	}
	without, err := Simulate(an, Policy{InitialSpares: 1, ReuseRepaired: false})
	if err != nil {
		t.Fatal(err)
	}
	if without.Stockouts != 1 {
		t.Fatalf("without reuse: %+v", without)
	}
}

func TestSimulateRejectsNegativePolicy(t *testing.T) {
	an := manualAnalysis(10, nil)
	if _, err := Simulate(an, Policy{InitialSpares: -1}); err == nil {
		t.Error("negative spares should error")
	}
}

func TestSimulateNoEvents(t *testing.T) {
	an := manualAnalysis(50, nil)
	res, err := Simulate(an, Policy{InitialSpares: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.ServiceLevel != 1 || res.AvgOnHand != 3 {
		t.Fatalf("idle pool: %+v", res)
	}
}

func TestMinimalSpares(t *testing.T) {
	an := manualAnalysis(100, []failure.Event{
		{SwapDay: 10, ReturnDay: -1},
		{SwapDay: 20, ReturnDay: -1},
		{SwapDay: 30, ReturnDay: -1},
	})
	n, res, err := MinimalSpares(an, 1.0, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || res.Stockouts != 0 {
		t.Fatalf("minimal spares = %d (%+v), want 3", n, res)
	}
	// 2/3 service level needs only 2.
	n, _, err = MinimalSpares(an, 0.66, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("minimal spares at 66%% = %d, want 2", n)
	}
	if _, _, err := MinimalSpares(an, 1.5, false); err == nil {
		t.Error("invalid target should error")
	}
}

// TestSimulateOnRealFleet exercises the simulator end-to-end on a
// generated fleet: repair reuse must never hurt, and more spares must
// never lower the service level.
func TestSimulateOnRealFleet(t *testing.T) {
	cfg := fleetsim.DefaultConfig(3, 100)
	cfg.HorizonDays = 1500
	cfg.EarlyWindow = 400
	fleet, _, err := fleetsim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	an := failure.Analyze(fleet)
	if len(an.Events) == 0 {
		t.Skip("no failures in sample")
	}
	prev := -1.0
	for _, spares := range []int{0, 2, 5, 10, 50} {
		res, err := Simulate(an, Policy{InitialSpares: spares})
		if err != nil {
			t.Fatal(err)
		}
		if res.ServiceLevel < prev-1e-12 {
			t.Fatalf("service level decreased with more spares: %v -> %v", prev, res.ServiceLevel)
		}
		prev = res.ServiceLevel
	}
	base, err := Simulate(an, Policy{InitialSpares: 3})
	if err != nil {
		t.Fatal(err)
	}
	reuse, err := Simulate(an, Policy{InitialSpares: 3, ReuseRepaired: true})
	if err != nil {
		t.Fatal(err)
	}
	if reuse.ServiceLevel+1e-12 < base.ServiceLevel {
		t.Errorf("repair reuse lowered service: %v vs %v", reuse.ServiceLevel, base.ServiceLevel)
	}
}
