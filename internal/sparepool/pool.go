package sparepool

// The live actuation half of the package: where Simulate replays
// historical swap demand against a candidate policy, Pool is the
// inventory a remediation control plane draws on *now*. The remedy
// engine (internal/remedy) allocates a spare when a drain completes and
// releases it if the swapped drive's original body returns from repair.
//
// The actuation path is hardened rather than forgiving: allocating a
// spare twice for the same drive, or releasing a drive that holds no
// spare, is an operator-visible returned error — never a silent no-op
// and never a panic — because a double actuation in a real fleet means
// two technicians were dispatched to the same slot.

import (
	"errors"
	"fmt"
	"sync"
)

// Sentinel errors for the actuation path. Callers branch on these with
// errors.Is; the wrapped forms carry the drive ID.
var (
	// ErrExhausted reports an allocation against an empty pool.
	ErrExhausted = errors.New("sparepool: no spares on hand")
	// ErrDoubleAllocate reports a second allocation for a drive that
	// already holds a spare.
	ErrDoubleAllocate = errors.New("sparepool: drive already holds a spare")
	// ErrDoubleRelease reports a release for a drive that holds none.
	ErrDoubleRelease = errors.New("sparepool: drive holds no spare")
)

// PoolStats is a consistent snapshot of pool occupancy and lifetime
// activity, suitable for direct export as metrics.
type PoolStats struct {
	// Capacity is spares ever added (initial stock plus restocks).
	Capacity int
	// Free is spares on hand right now.
	Free int
	// InUse is spares currently allocated to drives.
	InUse int
	// Allocations and Releases count successful actuations.
	Allocations uint64
	Releases    uint64
	// Exhaustions counts allocations refused for lack of stock.
	Exhaustions uint64
	// DoubleAllocates and DoubleReleases count refused duplicate
	// actuations — each one is a caller bug surfaced, not swallowed.
	DoubleAllocates uint64
	DoubleReleases  uint64
}

// Pool is a live spare-drive inventory. All methods are safe for
// concurrent use. Spare IDs are assigned sequentially from 1 in
// allocation order, so a single-threaded caller sees deterministic IDs.
type Pool struct {
	mu        sync.Mutex
	free      int
	nextSpare int
	allocated map[uint32]int // drive ID -> spare ID
	stats     PoolStats
}

// NewPool builds a pool holding initial spares.
func NewPool(initial int) (*Pool, error) {
	if initial < 0 {
		return nil, fmt.Errorf("sparepool: negative initial stock %d", initial)
	}
	return &Pool{
		free:      initial,
		nextSpare: 1,
		allocated: make(map[uint32]int),
		stats:     PoolStats{Capacity: initial},
	}, nil
}

// Allocate takes one spare for the given drive and returns its spare
// ID. It fails with ErrDoubleAllocate if the drive already holds a
// spare and ErrExhausted if the pool is empty; both are counted.
func (p *Pool) Allocate(driveID uint32) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if spare, ok := p.allocated[driveID]; ok {
		p.stats.DoubleAllocates++
		return 0, fmt.Errorf("%w: drive %d holds spare %d", ErrDoubleAllocate, driveID, spare)
	}
	if p.free == 0 {
		p.stats.Exhaustions++
		return 0, fmt.Errorf("%w: drive %d must wait for restock", ErrExhausted, driveID)
	}
	spare := p.nextSpare
	p.nextSpare++
	p.free--
	p.allocated[driveID] = spare
	p.stats.Allocations++
	return spare, nil
}

// Release returns the spare held by the given drive to the pool (the
// original drive came back from repair, or the slot was decommissioned).
// Releasing a drive that holds no spare fails with ErrDoubleRelease.
func (p *Pool) Release(driveID uint32) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.allocated[driveID]; !ok {
		p.stats.DoubleReleases++
		return fmt.Errorf("%w: drive %d", ErrDoubleRelease, driveID)
	}
	delete(p.allocated, driveID)
	p.free++
	p.stats.Releases++
	return nil
}

// Restock adds n spares to the pool (procurement arrival).
func (p *Pool) Restock(n int) error {
	if n < 0 {
		return fmt.Errorf("sparepool: negative restock %d", n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free += n
	p.stats.Capacity += n
	return nil
}

// Holder reports the spare ID allocated to a drive, if any.
func (p *Pool) Holder(driveID uint32) (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	spare, ok := p.allocated[driveID]
	return spare, ok
}

// Stats returns a consistent occupancy snapshot.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	st.Free = p.free
	st.InUse = len(p.allocated)
	return st
}
