package experiments

import (
	"fmt"

	"ssdfail/internal/dataset"
	"ssdfail/internal/eval"
	"ssdfail/internal/expgrid"
	"ssdfail/internal/failure"
	"ssdfail/internal/ml"
	"ssdfail/internal/ml/forest"
	"ssdfail/internal/ml/knn"
	"ssdfail/internal/ml/logreg"
	"ssdfail/internal/ml/neuralnet"
	"ssdfail/internal/ml/svm"
	"ssdfail/internal/ml/tree"
	"ssdfail/internal/report"
	"ssdfail/internal/trace"
)

// forestFactory builds the standard random-forest factory at the
// experiment scale.
func (ctx *Context) forestFactory() ml.Factory {
	cfg := forest.DefaultConfig()
	cfg.Trees = ctx.Cfg.ForestTrees
	cfg.Seed = ctx.Cfg.Seed
	cfg.Workers = ctx.Cfg.Workers
	return forest.NewFactory(cfg)
}

// ClassifierGrid returns the six models of Table 6 configured for the
// context, in the paper's order.
func ClassifierGrid(ctx *Context) []eval.GridPoint { return ctx.classifierGrid() }

// classifierGrid returns the six models of Table 6, in the paper's order.
func (ctx *Context) classifierGrid() []eval.GridPoint {
	return []eval.GridPoint{
		{Label: "Logistic Reg.", Factory: logreg.NewFactory(logreg.DefaultConfig())},
		{Label: "k-NN", Factory: knn.NewFactory(knn.DefaultConfig())},
		{Label: "SVM", Factory: svm.NewFactory(svm.DefaultConfig())},
		{Label: "Neural Network", Factory: neuralnet.NewFactory(neuralnet.DefaultConfig())},
		{Label: "Decision Tree", Factory: tree.NewFactory(tree.DefaultConfig())},
		{Label: "Random Forest", Factory: ctx.forestFactory()},
	}
}

// cvOptions builds the standard CV options for a lookahead.
func (ctx *Context) cvOptions(lookahead int) eval.CVOptions {
	return eval.CVOptions{
		Folds:             ctx.Cfg.CVFolds,
		Lookahead:         lookahead,
		Seed:              ctx.Cfg.Seed,
		DownsampleRatio:   1,
		TestNegSampleProb: ctx.Cfg.TestNegSampleProb,
		AgeMax:            -1,
		Workers:           ctx.Cfg.Workers,
	}
}

// Table6 cross-validates all six classifiers at lookaheads 1, 2, 3, 7
// (paper Table 6) through the expgrid engine and returns the results
// table plus the raw AUC results indexed [model][lookahead].
func Table6(ctx *Context) (*report.Table, map[string][]eval.Result, error) {
	res, err := RunTable6Grid(ctx)
	if err != nil {
		return nil, nil, fmt.Errorf("table 6: %w", err)
	}
	tbl := &report.Table{
		Title:   "Table 6: cross-validated ROC AUC per model and lookahead N",
		Columns: []string{"Model", "N=1", "N=2", "N=3", "N=7", "paper N=1", "paper N=7"},
	}
	results := make(map[string][]eval.Result)
	for _, cs := range ctx.classifierSpecs() {
		row := []string{cs.Label}
		var rs []eval.Result
		for _, n := range PaperTable6Lookaheads {
			aucs, ok := res.Cell("all", cs.Label, n)
			if !ok {
				return nil, nil, fmt.Errorf("table 6: missing cell (%s, N=%d)", cs.Label, n)
			}
			r := eval.Summarize(aucs)
			rs = append(rs, r)
			row = append(row, fmt.Sprintf("%.3f ± %.3f", r.Mean, r.Std))
		}
		ref := PaperTable6[cs.Label]
		row = append(row, report.F(ref[0], 3), report.F(ref[3], 3))
		tbl.AddRow(row...)
		results[cs.Label] = rs
	}
	tbl.Notes = append(tbl.Notes,
		"paper: random forest best at every N; AUC decreases with N for all models",
		fmt.Sprintf("engine: %d tasks, %.1f tasks/s, cache hit rate %.0f%%, peak matrices %.0f MiB",
			res.Stats.Tasks, res.Stats.TasksPerSec, 100*res.Stats.CacheHitRate,
			float64(res.Stats.PeakMatrixBytes)/(1<<20)))
	return tbl, results, nil
}

// Figure12Lookaheads is the lookahead sweep of paper Figure 12.
var Figure12Lookaheads = []int{1, 2, 3, 5, 7, 10, 15, 20, 30}

// Figure12 sweeps the random-forest AUC over lookahead windows
// (paper Figure 12) as a forest-only engine grid.
func Figure12(ctx *Context) (*report.Table, *report.Plot, error) {
	spec := ctx.baseSpec(ctx.allScope(), Figure12Lookaheads)
	spec.Classifiers = ctx.forestSpec()
	res, err := expgrid.Run(spec)
	if err == nil {
		err = res.Err()
	}
	if err != nil {
		return nil, nil, fmt.Errorf("figure 12: %w", err)
	}
	tbl := &report.Table{
		Title:   "Figure 12: random forest AUC vs lookahead window N",
		Columns: []string{"N", "AUC", "std"},
	}
	plot := &report.Plot{Title: "Figure 12", XLabel: "N (days)", YLabel: "ROC AUC"}
	var s report.Series
	s.Name = "random forest"
	for _, n := range Figure12Lookaheads {
		aucs, ok := res.Cell("all", "Random Forest", n)
		if !ok {
			return nil, nil, fmt.Errorf("figure 12: missing cell N=%d", n)
		}
		r := eval.Summarize(aucs)
		tbl.AddRow(fmt.Sprintf("%d", n), report.F(r.Mean, 3), report.F(r.Std, 3))
		s.X = append(s.X, float64(n))
		s.Y = append(s.Y, r.Mean)
	}
	plot.Series = []report.Series{s}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("paper: %.2f at N=1 declining to %.2f at N=30",
			PaperFigure12[1], PaperFigure12[30]))
	return tbl, plot, nil
}

// PooledScores carries out-of-fold test scores pooled across all CV
// folds, with per-row provenance for slicing by model or age.
type PooledScores struct {
	Scores []float64
	Y      []int8
	Ages   []int32
	Models []trace.Model
}

// PooledCV cross-validates one classifier through the engine and pools
// test-fold scores in fold order, the raw material for Figures 13, 14,
// and 15. A nil factory uses the standard random forest with per-task
// key-derived seeds; a non-nil factory is wrapped as-is (its own seed
// configuration applies to every fold).
func (ctx *Context) PooledCV(factory ml.Factory, lookahead int) (*PooledScores, error) {
	spec := ctx.baseSpec(ctx.allScope(), []int{lookahead})
	if factory == nil {
		spec.Classifiers = ctx.forestSpec()
	} else {
		spec.Classifiers = []expgrid.ClassifierSpec{{
			Label: "pooled",
			New:   func(uint64) ml.Classifier { return factory() },
		}}
	}
	spec.KeepScores = true
	res, err := expgrid.Run(spec)
	if err == nil {
		err = res.Err()
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: pooled CV: %w", err)
	}
	ps := &PooledScores{}
	for i := range res.Tasks {
		tr := &res.Tasks[i]
		ps.Scores = append(ps.Scores, tr.Scores...)
		ps.Y = append(ps.Y, tr.Y...)
		ps.Ages = append(ps.Ages, tr.Ages...)
		for _, di := range tr.DriveIdx {
			ps.Models = append(ps.Models, ctx.Fleet.Drives[di].Model)
		}
	}
	return ps, nil
}

// filter returns the subset of pooled scores matching keep.
func (ps *PooledScores) filter(keep func(i int) bool) ([]float64, []int8) {
	var s []float64
	var y []int8
	for i := range ps.Scores {
		if keep(i) {
			s = append(s, ps.Scores[i])
			y = append(y, ps.Y[i])
		}
	}
	return s, y
}

// Figure13 evaluates the pooled random-forest scores separately per
// drive model (paper Figure 13) and returns a ROC summary.
func Figure13(ctx *Context, ps *PooledScores) (*report.Table, *report.Plot) {
	tbl := &report.Table{
		Title:   "Figure 13: per-model ROC (random forest, N=1)",
		Columns: []string{"Model", "AUC", "TPR@FPR=0.1", "paper AUC"},
	}
	plot := &report.Plot{Title: "Figure 13", XLabel: "FPR", YLabel: "TPR"}
	for _, m := range trace.Models {
		s, y := ps.filter(func(i int) bool { return ps.Models[i] == m })
		roc := eval.ComputeROC(s, y)
		tbl.AddRow(m.String(), report.F(eval.AUC(s, y), 3),
			report.F(roc.TPRAtFPR(0.1), 3), report.F(PaperFigure13AUC[m.String()], 3))
		var series report.Series
		series.Name = m.String()
		for i := 0; i < len(roc.FPR); i += 1 + len(roc.FPR)/64 {
			series.X = append(series.X, roc.FPR[i])
			series.Y = append(series.Y, roc.TPR[i])
		}
		plot.Series = append(plot.Series, series)
	}
	tbl.Notes = append(tbl.Notes, "paper: nearly identical performance across the three MLC models")
	return tbl, plot
}

// Figure14 computes the true positive rate by drive-age month at three
// conservative probability thresholds (paper Figure 14).
func Figure14(ctx *Context, ps *PooledScores) (*report.Table, *report.Plot) {
	thresholds := []float64{0.85, 0.90, 0.95}
	months := 25
	tbl := &report.Table{
		Title:   "Figure 14: TPR by drive age at conservative thresholds (random forest, N=1)",
		Columns: []string{"Age (months)", "thr 0.85", "thr 0.90", "thr 0.95"},
	}
	plot := &report.Plot{Title: "Figure 14", XLabel: "age (months)", YLabel: "TPR"}
	curves := eval.TPRByAgeMonths(ps.Scores, ps.Y, ps.Ages, thresholds, months)
	for ti, thr := range thresholds {
		var s report.Series
		s.Name = fmt.Sprintf("thr %.2f", thr)
		for m, v := range curves[ti] {
			s.X = append(s.X, float64(m))
			s.Y = append(s.Y, v)
		}
		plot.Series = append(plot.Series, s)
	}
	for m := 0; m < months; m += 2 {
		tbl.AddRow(fmt.Sprintf("%d", m),
			report.F(curves[0][m], 3), report.F(curves[1][m], 3), report.F(curves[2][m], 3))
	}
	tbl.Notes = append(tbl.Notes, "paper: TPR is markedly higher for drives under three months old")
	return tbl, plot
}

// Figure15 compares ROC on young vs old rows of the pooled scores, then
// trains fully separate age-partitioned models (paper Figure 15, §5.3).
func Figure15(ctx *Context, ps *PooledScores) (*report.Table, *report.Plot, error) {
	sYoung, yYoung := ps.filter(func(i int) bool { return ps.Ages[i] <= failure.YoungAgeDays })
	sOld, yOld := ps.filter(func(i int) bool { return ps.Ages[i] > failure.YoungAgeDays })
	aucYoung := eval.AUC(sYoung, yYoung)
	aucOld := eval.AUC(sOld, yOld)

	// Separate training per age band.
	optsYoung := ctx.cvOptions(1)
	optsYoung.AgeMin, optsYoung.AgeMax = 0, failure.YoungAgeDays
	optsYoung.Folds = 3 // fewer young positives; keep folds populated
	rYoung, err := eval.CrossValidate(ctx.Fleet, ctx.An, optsYoung, ctx.forestFactory())
	if err != nil {
		return nil, nil, fmt.Errorf("figure 15 young split: %w", err)
	}
	optsOld := ctx.cvOptions(1)
	optsOld.AgeMin, optsOld.AgeMax = failure.YoungAgeDays+1, -1
	rOld, err := eval.CrossValidate(ctx.Fleet, ctx.An, optsOld, ctx.forestFactory())
	if err != nil {
		return nil, nil, fmt.Errorf("figure 15 old split: %w", err)
	}

	tbl := &report.Table{
		Title:   "Figure 15 / §5.3: young vs old predictability (random forest, N=1)",
		Columns: []string{"Slice", "AUC", "paper"},
	}
	tbl.AddRow("young rows (combined model)", report.F(aucYoung, 3), report.F(PaperFigure15.YoungEval, 3))
	tbl.AddRow("old rows (combined model)", report.F(aucOld, 3), report.F(PaperFigure15.OldEval, 3))
	tbl.AddRow("young (separately trained)",
		fmt.Sprintf("%.3f ± %.3f", rYoung.Mean, rYoung.Std), report.F(PaperFigure15.YoungSplit, 3))
	tbl.AddRow("old (separately trained)",
		fmt.Sprintf("%.3f ± %.3f", rOld.Mean, rOld.Std), report.F(PaperFigure15.OldSplit, 3))
	tbl.Notes = append(tbl.Notes, "paper: young failures are fundamentally more predictable")

	plot := &report.Plot{Title: "Figure 15", XLabel: "FPR", YLabel: "TPR"}
	for _, c := range []struct {
		name string
		s    []float64
		y    []int8
	}{{"young", sYoung, yYoung}, {"old", sOld, yOld}} {
		roc := eval.ComputeROC(c.s, c.y)
		var series report.Series
		series.Name = c.name
		for i := 0; i < len(roc.FPR); i += 1 + len(roc.FPR)/64 {
			series.X = append(series.X, roc.FPR[i])
			series.Y = append(series.Y, roc.TPR[i])
		}
		plot.Series = append(plot.Series, series)
	}
	return tbl, plot, nil
}

// Figure16 trains age-partitioned random forests and reports their top
// feature importances (paper Figure 16).
func Figure16(ctx *Context) (*report.Table, error) {
	names := dataset.FeatureNames()
	trainBand := func(ageMin, ageMax int32) ([]float64, error) {
		train := dataset.Extract(ctx.Fleet, ctx.An, dataset.Options{
			Lookahead: 1,
			Seed:      ctx.Cfg.Seed,
			AgeMin:    ageMin, AgeMax: ageMax,
		})
		train = dataset.Downsample(train, 1, ctx.Cfg.Seed)
		if train.Positives() == 0 {
			return nil, fmt.Errorf("experiments: no positives in age band [%d, %d]", ageMin, ageMax)
		}
		cfg := forest.DefaultConfig()
		cfg.Trees = ctx.Cfg.ForestTrees
		cfg.Seed = ctx.Cfg.Seed
		cfg.Workers = ctx.Cfg.Workers
		f := forest.New(cfg)
		if err := f.Fit(train); err != nil {
			return nil, err
		}
		return f.Importances(), nil
	}
	young, err := trainBand(0, failure.YoungAgeDays)
	if err != nil {
		return nil, err
	}
	old, err := trainBand(failure.YoungAgeDays+1, -1)
	if err != nil {
		return nil, err
	}
	top := func(imp []float64, k int) []int {
		idx := make([]int, len(imp))
		for i := range idx {
			idx[i] = i
		}
		for a := 0; a < k && a < len(idx); a++ {
			best := a
			for b := a + 1; b < len(idx); b++ {
				if imp[idx[b]] > imp[idx[best]] {
					best = b
				}
			}
			idx[a], idx[best] = idx[best], idx[a]
		}
		return idx[:k]
	}
	tbl := &report.Table{
		Title:   "Figure 16: top-10 random forest feature importances, young vs old models",
		Columns: []string{"rank", "young feature", "importance", "old feature", "importance"},
	}
	yTop, oTop := top(young, 10), top(old, 10)
	for r := 0; r < 10; r++ {
		tbl.AddRow(fmt.Sprintf("%d", r+1),
			names[yTop[r]], report.F(young[yTop[r]], 4),
			names[oTop[r]], report.F(old[oTop[r]], 4))
	}
	tbl.Notes = append(tbl.Notes,
		"paper: young models are dominated by drive age and non-transparent error counts; old models by wear-and-tear (read/write/correctable counts)")
	return tbl, nil
}

// Table7 trains a random forest on each model's drives and tests on each
// other model's, plus a final column trained on all drives
// (paper Table 7; diagonal and All-column entries use cross-validation).
func Table7(ctx *Context) (*report.Table, error) {
	tbl := &report.Table{
		Title:   "Table 7: random forest transfer across drive models (N=1)",
		Columns: []string{"Test \\ Train", "MLC-A", "MLC-B", "MLC-D", "All", "paper All"},
	}
	opts := ctx.cvOptions(1)
	opts.Folds = 3 // per-model fleets are a third of the drives
	// The diagonal (train and test share a model) is one engine grid: a
	// forest CV per drive-model scope.
	diag, err := expgrid.Run(ctx.ModelGridSpec(opts.Folds, 1))
	if err == nil {
		err = diag.Err()
	}
	if err != nil {
		return nil, fmt.Errorf("table 7 diagonal: %w", err)
	}
	for _, testM := range trace.Models {
		row := []string{testM.String()}
		for _, trainM := range trace.Models {
			if trainM == testM {
				aucs, ok := diag.Cell(testM.String(), "Random Forest", 1)
				if !ok {
					return nil, fmt.Errorf("table 7: missing diagonal cell %v", testM)
				}
				row = append(row, fmt.Sprintf("%.3f*", eval.Summarize(aucs).Mean))
				continue
			}
			auc, err := eval.TrainTest(
				ctx.ModelFleet[trainM], ctx.ModelFleet[testM],
				ctx.ModelAn[trainM], ctx.ModelAn[testM],
				opts, ctx.forestFactory())
			if err != nil {
				return nil, fmt.Errorf("table 7 (%v->%v): %w", trainM, testM, err)
			}
			row = append(row, report.F(auc, 3))
		}
		// "All" column: hold the test model's drives out per fold by
		// cross-validating on the full fleet and slicing pooled scores
		// would be costly; the paper cross-validates, so reuse CV on the
		// full fleet restricted to test rows of this model.
		auc, err := ctx.allModelAUC(testM)
		if err != nil {
			return nil, err
		}
		row = append(row, fmt.Sprintf("%.3f*", auc))
		ref := PaperTable7[testM.String()]
		row = append(row, report.F(ref[3], 3))
		tbl.AddRow(row...)
	}
	tbl.Notes = append(tbl.Notes, "* cross-validated (train and test share a model; drives never overlap)")
	return tbl, nil
}

// allModelAUC cross-validates on the full fleet and scores only the test
// rows belonging to the given model (Table 7's All column).
func (ctx *Context) allModelAUC(testM trace.Model) (float64, error) {
	ps, err := ctx.PooledCV(ctx.forestFactory(), 1)
	if err != nil {
		return 0, err
	}
	s, y := ps.filter(func(i int) bool { return ps.Models[i] == testM })
	return eval.AUC(s, y), nil
}

// table8Kinds lists the error targets of Table 8 in paper order; -1
// denotes bad-block growth.
var table8Kinds = []struct {
	name string
	kind int // trace.ErrorKind, or -1 for bad block growth
}{
	{"bad_block", -1},
	{"erase", int(trace.ErrErase)},
	{"final_read", int(trace.ErrFinalRead)},
	{"final_write", int(trace.ErrFinalWrite)},
	{"meta", int(trace.ErrMeta)},
	{"read", int(trace.ErrRead)},
	{"response", int(trace.ErrResponse)},
	{"timeout", int(trace.ErrTimeout)},
	{"uncorrectable", int(trace.ErrUncorrectable)},
	{"write", int(trace.ErrWrite)},
}

// relabelErrorOccurrence rewrites the labels of m in place: row i becomes
// positive when the drive reports the target event within the next n
// days after the row's day (exclusive of the row's own day).
func relabelErrorOccurrence(m *dataset.Matrix, f *trace.Fleet, kind int, n int32) {
	for i := 0; i < m.Len(); i++ {
		d := &f.Drives[m.DriveIdx[i]]
		day := m.Day[i]
		label := int8(0)
		j := d.LastRecordBefore(day + 1) // index of the row's own record
		var prevBB uint32
		if j >= 0 {
			prevBB = d.Days[j].GrownBadBlocks
		}
		for j2 := j + 1; j2 < len(d.Days) && d.Days[j2].Day <= day+n; j2++ {
			if kind < 0 {
				if d.Days[j2].GrownBadBlocks > prevBB {
					label = 1
					break
				}
			} else if d.Days[j2].Errors[kind] > 0 {
				label = 1
				break
			}
		}
		m.Y[i] = label
	}
}

// Table8 predicts each error type two days ahead with random forests,
// for the combined population and for young/old age bands
// (paper Table 8). Targets with too few positives in a band are marked
// "-", as the paper does for response errors.
func Table8(ctx *Context) (*report.Table, error) {
	const lookahead = 2
	tbl := &report.Table{
		Title:   "Table 8: random forest AUC predicting error events (N=2)",
		Columns: []string{"Error", "Combined", "Young", "Old", "paper C", "paper Y", "paper O"},
	}
	// One base extraction, uniformly subsampled; labels rewritten per
	// target. (Uniform row sampling is label-independent here because
	// Lookahead=1 failure positives are a negligible share.)
	base := dataset.Extract(ctx.Fleet, ctx.An, dataset.Options{
		Lookahead:          1,
		Seed:               ctx.Cfg.Seed + 7,
		NegativeSampleProb: 0.5,
		AgeMax:             -1,
	})
	folds := dataset.Folds(len(ctx.Fleet.Drives), 3, ctx.Cfg.Seed)
	cfg := forest.DefaultConfig()
	cfg.Trees = ctx.Cfg.ForestTrees / 2
	if cfg.Trees < 20 {
		cfg.Trees = 20
	}
	cfg.Seed = ctx.Cfg.Seed
	cfg.Workers = ctx.Cfg.Workers

	evalBand := func(m *dataset.Matrix, ageMin, ageMax int32) string {
		// Row indices within the band.
		var rows []int
		for i := 0; i < m.Len(); i++ {
			if m.Age[i] < ageMin || (ageMax >= 0 && m.Age[i] > ageMax) {
				continue
			}
			rows = append(rows, i)
		}
		band := m.Subset(rows)
		var aucs []float64
		for k := 0; k < 3; k++ {
			var trainRows, testRows []int
			for i := 0; i < band.Len(); i++ {
				if folds[band.DriveIdx[i]] == k {
					testRows = append(testRows, i)
				} else {
					trainRows = append(trainRows, i)
				}
			}
			train := dataset.Downsample(band.Subset(trainRows), 1, ctx.Cfg.Seed+uint64(k))
			test := band.Subset(testRows)
			if train.Positives() < 10 || test.Positives() < 5 {
				return "-"
			}
			f := forest.New(cfg)
			if err := f.Fit(train); err != nil {
				return "-"
			}
			aucs = append(aucs, eval.AUC(ml.ScoreBatch(f, test), test.Y))
		}
		var mean float64
		for _, a := range aucs {
			mean += a
		}
		return report.F(mean/float64(len(aucs)), 3)
	}

	for _, target := range table8Kinds {
		relabelErrorOccurrence(base, ctx.Fleet, target.kind, lookahead)
		row := []string{target.name,
			evalBand(base, 0, -1),
			evalBand(base, 0, failure.YoungAgeDays),
			evalBand(base, failure.YoungAgeDays+1, -1),
		}
		ref := PaperTable8[target.name]
		for _, v := range ref {
			if v < 0 {
				row = append(row, "-")
			} else {
				row = append(row, report.F(v, 3))
			}
		}
		tbl.AddRow(row...)
	}
	tbl.Notes = append(tbl.Notes,
		"paper: age-partitioned training improves young-band error prediction; response errors too rare to evaluate")
	return tbl, nil
}
