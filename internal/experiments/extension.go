package experiments

import (
	"fmt"

	"ssdfail/internal/eval"
	"ssdfail/internal/ml/gbdt"
	"ssdfail/internal/report"
)

// ExtensionWindowedFeatures evaluates the repository's extension of the
// paper's stated future work (§7: improving prediction for large
// lookahead N): trailing-window aggregate features give the models a
// short history of each drive instead of a single day, which mostly
// helps exactly where the paper's single-day features degrade.
func ExtensionWindowedFeatures(ctx *Context) (*report.Table, error) {
	tbl := &report.Table{
		Title:   "Extension: trailing-window features vs single-day features (random forest)",
		Columns: []string{"N (days)", "single-day AUC", "windowed (7d) AUC", "delta"},
	}
	for _, n := range []int{1, 7, 15, 30} {
		base, err := eval.CrossValidate(ctx.Fleet, ctx.An, ctx.cvOptions(n), ctx.forestFactory())
		if err != nil {
			return nil, fmt.Errorf("extension (base, N=%d): %w", n, err)
		}
		opts := ctx.cvOptions(n)
		opts.WindowDays = 7
		win, err := eval.CrossValidate(ctx.Fleet, ctx.An, opts, ctx.forestFactory())
		if err != nil {
			return nil, fmt.Errorf("extension (windowed, N=%d): %w", n, err)
		}
		tbl.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f ± %.3f", base.Mean, base.Std),
			fmt.Sprintf("%.3f ± %.3f", win.Mean, win.Std),
			report.F(win.Mean-base.Mean, 3))
	}
	tbl.Notes = append(tbl.Notes,
		"extension beyond the paper: §7 names large-N prediction as future work")
	return tbl, nil
}

// ExtensionGBDT adds a seventh model beyond the paper's six: gradient-
// boosted trees, the post-2019 default for tabular prediction, compared
// against the paper's winner under the identical protocol.
func ExtensionGBDT(ctx *Context) (*report.Table, error) {
	cfg := gbdt.DefaultConfig()
	cfg.Seed = ctx.Cfg.Seed
	tbl := &report.Table{
		Title:   "Extension: gradient boosting vs the paper's best model",
		Columns: []string{"N (days)", "Random Forest AUC", "Gradient Boosting AUC"},
	}
	for _, n := range []int{1, 7} {
		rf, err := eval.CrossValidate(ctx.Fleet, ctx.An, ctx.cvOptions(n), ctx.forestFactory())
		if err != nil {
			return nil, fmt.Errorf("extension gbdt (rf, N=%d): %w", n, err)
		}
		gb, err := eval.CrossValidate(ctx.Fleet, ctx.An, ctx.cvOptions(n), gbdt.NewFactory(cfg))
		if err != nil {
			return nil, fmt.Errorf("extension gbdt (gb, N=%d): %w", n, err)
		}
		tbl.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f ± %.3f", rf.Mean, rf.Std),
			fmt.Sprintf("%.3f ± %.3f", gb.Mean, gb.Std))
	}
	tbl.Notes = append(tbl.Notes, "extension beyond the paper's six classifiers")
	return tbl, nil
}
