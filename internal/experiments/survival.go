package experiments

import (
	"fmt"

	"ssdfail/internal/report"
	"ssdfail/internal/stats"
)

// SurvivalAnalysis refines Figures 3 and 5 with Kaplan-Meier estimates.
// The paper displays censored mass as a bar at infinity; the
// product-limit estimator instead uses every censored operational period
// and repair as partial information, which shifts the curves upward —
// the correct reading when >80% of operational periods and ~half the
// repairs outlive the six-year trace.
func SurvivalAnalysis(ctx *Context) *report.Table {
	// Operational periods (time to failure).
	var opObs []stats.Observation
	for i := range ctx.An.Periods {
		p := &ctx.An.Periods[i]
		opObs = append(opObs, stats.Observation{
			Time: float64(p.Length()), Censored: p.Censored,
		})
	}
	opKM := stats.NewKaplanMeier(opObs)
	opNaive := func() *stats.ECDF {
		fin, cens := ctx.An.OperationalLengths()
		return stats.NewCensoredECDF(fin, cens)
	}()

	// Repairs (time to re-entry).
	var repObs []stats.Observation
	for i := range ctx.An.Events {
		e := &ctx.An.Events[i]
		if e.RepairDays >= 0 {
			repObs = append(repObs, stats.Observation{Time: float64(e.RepairDays)})
		} else {
			// Censored at the remaining trace length after the swap.
			rem := float64(ctx.Fleet.Horizon - e.SwapDay)
			if rem < 1 {
				rem = 1
			}
			repObs = append(repObs, stats.Observation{Time: rem, Censored: true})
		}
	}
	repKM := stats.NewKaplanMeier(repObs)
	repNaive := func() *stats.ECDF {
		obs, cens := ctx.An.RepairTimes()
		return stats.NewCensoredECDF(obs, cens)
	}()

	tbl := &report.Table{
		Title:   "Survival refinement of Figures 3 and 5 (Kaplan-Meier vs censored ECDF)",
		Columns: []string{"Quantity", "t", "naive CDF", "KM CDF"},
	}
	for _, years := range []float64{1, 2, 4, 6} {
		t := years * 365
		tbl.AddRow("P(failure by t)", fmt.Sprintf("%gy", years),
			report.F(opNaive.At(t), 3), report.F(opKM.CDF(t), 3))
	}
	for _, days := range []float64{10, 30, 100, 365, 1095} {
		tbl.AddRow("P(repaired by t)", fmt.Sprintf("%gd", days),
			report.F(repNaive.At(days), 3), report.F(repKM.CDF(days), 3))
	}
	tbl.AddRow("median repair (KM)", "", "", report.F(repKM.Median(), 0))
	tbl.Notes = append(tbl.Notes,
		"KM treats censored periods as at-risk exposure; the naive ECDF discards them into an infinity bar")
	return tbl
}
