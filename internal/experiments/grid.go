package experiments

import (
	"runtime"

	"ssdfail/internal/expgrid"
	"ssdfail/internal/ml"
	"ssdfail/internal/ml/forest"
	"ssdfail/internal/ml/knn"
	"ssdfail/internal/ml/logreg"
	"ssdfail/internal/ml/neuralnet"
	"ssdfail/internal/ml/svm"
	"ssdfail/internal/ml/tree"
	"ssdfail/internal/trace"
)

// This file wires the §5 prediction experiments onto the expgrid engine:
// the grid is decomposed into (scope, classifier, lookahead, fold) tasks
// whose seeds derive from stable task keys, so every table below is
// bit-identical at any worker count (see DESIGN.md §11).

// classifierSpecs returns the six Table 6 classifiers as engine specs.
// Each constructor receives the task seed; the forest caps its internal
// workers at 1 because parallelism comes from task-level scheduling.
func (ctx *Context) classifierSpecs() []expgrid.ClassifierSpec {
	forestTrees := ctx.Cfg.ForestTrees
	return []expgrid.ClassifierSpec{
		{Label: "Logistic Reg.", New: func(seed uint64) ml.Classifier {
			cfg := logreg.DefaultConfig()
			cfg.Seed = seed
			return logreg.New(cfg)
		}},
		{Label: "k-NN", New: func(uint64) ml.Classifier {
			return knn.New(knn.DefaultConfig())
		}},
		{Label: "SVM", New: func(seed uint64) ml.Classifier {
			cfg := svm.DefaultConfig()
			cfg.Seed = seed
			return svm.New(cfg)
		}},
		{Label: "Neural Network", New: func(seed uint64) ml.Classifier {
			cfg := neuralnet.DefaultConfig()
			cfg.Seed = seed
			return neuralnet.New(cfg)
		}},
		{Label: "Decision Tree", New: func(seed uint64) ml.Classifier {
			cfg := tree.DefaultConfig()
			cfg.Seed = seed
			return tree.New(cfg)
		}},
		{Label: "Random Forest", New: func(seed uint64) ml.Classifier {
			cfg := forest.DefaultConfig()
			cfg.Trees = forestTrees
			cfg.Seed = seed
			cfg.Workers = 1
			return forest.New(cfg)
		}},
	}
}

// forestSpec returns a single-classifier spec list for forest-only grids.
func (ctx *Context) forestSpec() []expgrid.ClassifierSpec {
	specs := ctx.classifierSpecs()
	return specs[len(specs)-1:]
}

// baseSpec fills the spec fields shared by every grid in this package.
func (ctx *Context) baseSpec(scopes []expgrid.Scope, lookaheads []int) expgrid.Spec {
	return expgrid.Spec{
		Scopes:            scopes,
		Lookaheads:        lookaheads,
		Folds:             ctx.Cfg.CVFolds,
		Seed:              ctx.Cfg.Seed,
		DownsampleRatio:   1,
		TestNegSampleProb: ctx.Cfg.TestNegSampleProb,
		AgeMax:            -1,
		Workers:           ctx.Cfg.Workers,
	}
}

// allScope wraps the full fleet as the engine's "all" scope.
func (ctx *Context) allScope() []expgrid.Scope {
	return []expgrid.Scope{{Name: "all", Fleet: ctx.Fleet, An: ctx.An}}
}

// GridSpec builds the full Table 6 grid specification: six classifiers
// over the given lookaheads on the whole fleet. Exported for the grid
// benchmark and cmd/ssdpredict.
func (ctx *Context) GridSpec(lookaheads ...int) expgrid.Spec {
	spec := ctx.baseSpec(ctx.allScope(), lookaheads)
	spec.Classifiers = ctx.classifierSpecs()
	return spec
}

// ModelGridSpec builds the Table 7 diagonal grid: a random-forest CV per
// drive-model scope at the given lookaheads.
func (ctx *Context) ModelGridSpec(folds int, lookaheads ...int) expgrid.Spec {
	scopes := make([]expgrid.Scope, 0, trace.NumModels)
	for _, m := range trace.Models {
		scopes = append(scopes, expgrid.Scope{
			Name:  m.String(),
			Fleet: ctx.ModelFleet[m],
			An:    ctx.ModelAn[m],
		})
	}
	spec := ctx.baseSpec(scopes, lookaheads)
	spec.Folds = folds
	spec.Classifiers = ctx.forestSpec()
	return spec
}

// RunTable6Grid executes the full Table 6 grid through the engine and
// returns the raw result (per-task AUCs plus engine statistics).
func RunTable6Grid(ctx *Context) (*expgrid.Result, error) {
	res, err := expgrid.Run(ctx.GridSpec(PaperTable6Lookaheads[:]...))
	if err != nil {
		return nil, err
	}
	if err := res.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// TrainBenchReport assembles the BENCH_train.json payload for one or
// more engine runs over this context's grid.
func TrainBenchReport(ctx *Context, spec *expgrid.Spec, runs []expgrid.BenchRun, aucsIdentical bool) *expgrid.BenchReport {
	rep := &expgrid.BenchReport{
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		DrivesPerModel: ctx.Cfg.DrivesPerModel,
		TotalDrives:    len(ctx.Fleet.Drives),
		DriveDays:      ctx.Fleet.DriveDays(),
		Scopes:         len(spec.Scopes),
		Classifiers:    len(spec.Classifiers),
		Lookaheads:     spec.Lookaheads,
		Folds:          spec.Folds,
		Runs:           runs,
		AUCsIdentical:  aucsIdentical,
	}
	if len(runs) > 0 {
		rep.TasksPerRun = runs[0].Tasks
	}
	rep.FillSpeedups()
	return rep
}
