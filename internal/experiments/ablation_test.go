package experiments

import (
	"testing"

	"ssdfail/internal/dataset"
)

func TestAblationSplit(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	ctx := getCtx(t)
	tbl, err := AblationSplit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestAblationDownsampling(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	ctx := getCtx(t)
	tbl, err := AblationDownsampling(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestAblationFeatureSets(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	ctx := getCtx(t)
	tbl, err := AblationFeatureSets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestAblationForestSize(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	ctx := getCtx(t)
	tbl, err := AblationForestSize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestExtensionWindowedFeatures(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	ctx := getCtx(t)
	tbl, err := ExtensionWindowedFeatures(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != 4 || row[1] == "" || row[2] == "" {
			t.Fatalf("malformed row %v", row)
		}
	}
}

func TestExtensionGBDT(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	ctx := getCtx(t)
	tbl, err := ExtensionGBDT(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
}

func TestMaskedModelZeroesFeatures(t *testing.T) {
	keep := featureSet(func(f int) bool { return f == dataset.FDriveAge })
	if keep[dataset.FReadCount] || !keep[dataset.FDriveAge] {
		t.Fatal("featureSet mask wrong")
	}
	m := &maskedModel{keep: keep}
	x := make([]float64, dataset.NumFeatures)
	for i := range x {
		x[i] = 1
	}
	masked := m.mask(x)
	for f, v := range masked {
		want := 0.0
		if f == dataset.FDriveAge {
			want = 1
		}
		if v != want {
			t.Fatalf("mask[%d] = %v, want %v", f, v, want)
		}
	}
}
