package experiments

// Published values from "SSD Failures in the Field" (SC '19), embedded
// so reports can print paper-vs-measured comparisons. All values are
// transcribed from the paper's tables and figure captions.

// PaperTable1 lists the proportion of drive days exhibiting each error
// type (Table 1), indexed by error name then model.
var PaperTable1 = map[string][3]float64{
	"correctable":   {0.828895, 0.776308, 0.767593},
	"final_read":    {0.001077, 0.001805, 0.001552},
	"final_write":   {0.000026, 0.000027, 0.000034},
	"meta":          {0.000014, 0.000016, 0.000028},
	"read":          {0.000090, 0.000103, 0.000133},
	"response":      {0.000001, 0.000004, 0.000002},
	"timeout":       {0.000009, 0.000010, 0.000014},
	"uncorrectable": {0.002176, 0.002349, 0.002583},
	"write":         {0.000117, 0.001309, 0.000162},
}

// PaperTable3 holds failure incidence (Table 3): failures and % failed.
var PaperTable3 = map[string]struct {
	Failures int
	PctFail  float64
}{
	"MLC-A": {734, 6.95},
	"MLC-B": {1565, 14.3},
	"MLC-D": {1580, 12.5},
	"All":   {3879, 11.29},
}

// PaperTable4 is the lifetime failure-count distribution (Table 4):
// percentage of all drives with k failures, k = 0..4.
var PaperTable4 = [5]float64{88.71, 10.10, 1.038, 0.133, 0.001}

// PaperTable5 gives the percentage of swapped drives re-entering within
// n days (Table 5), per model, for n = 10, 30, 100, 365, 730, 1095, ∞.
var PaperTable5 = map[string][7]float64{
	"MLC-A": {3.4, 5.0, 6.1, 17.4, 37.6, 43.6, 53.4},
	"MLC-B": {6.8, 9.4, 12.7, 25.3, 36.1, 42.7, 43.9},
	"MLC-D": {4.9, 8.1, 15.8, 28.1, 43.5, 50.2, 57.6},
}

// PaperTable6 holds the cross-validated ROC AUC of each model for each
// lookahead window N in {1, 2, 3, 7} (Table 6).
var PaperTable6 = map[string][4]float64{
	"Logistic Reg.":  {0.796, 0.765, 0.745, 0.713},
	"k-NN":           {0.816, 0.791, 0.772, 0.716},
	"SVM":            {0.821, 0.795, 0.778, 0.728},
	"Neural Network": {0.857, 0.828, 0.803, 0.770},
	"Decision Tree":  {0.872, 0.840, 0.819, 0.780},
	"Random Forest":  {0.905, 0.859, 0.839, 0.803},
}

// PaperTable6Lookaheads are the N values of Table 6's columns.
var PaperTable6Lookaheads = [4]int{1, 2, 3, 7}

// PaperTable7 is the random-forest transfer matrix for N=1 (Table 7):
// rows = test model, columns = training model (A, B, D, All).
var PaperTable7 = map[string][4]float64{
	"MLC-A": {0.891, 0.871, 0.887, 0.901},
	"MLC-B": {0.832, 0.892, 0.849, 0.893},
	"MLC-D": {0.868, 0.857, 0.897, 0.901},
}

// PaperTable8 holds the random-forest ROC AUCs for predicting each error
// type at N=2 (Table 8): combined, young, old. NaN-like -1 marks the
// entries the paper leaves blank (response errors are too rare).
var PaperTable8 = map[string][3]float64{
	"bad_block":     {0.877, 0.878, 0.873},
	"erase":         {0.889, 0.934, 0.882},
	"final_read":    {0.906, 0.959, 0.852},
	"final_write":   {0.841, 0.937, 0.780},
	"meta":          {0.854, 0.890, 0.842},
	"read":          {0.971, 0.917, 0.973},
	"response":      {0.806, -1, -1},
	"timeout":       {0.755, 0.812, 0.735},
	"uncorrectable": {0.933, 0.960, 0.931},
	"write":         {0.916, 0.911, 0.914},
}

// PaperFigure12 samples the random-forest AUC versus lookahead trend
// (Figure 12): ~0.90 at N=1 declining to ~0.77 at N=30.
var PaperFigure12 = map[int]float64{1: 0.905, 7: 0.803, 30: 0.77}

// PaperFigure13AUC holds the per-model ROC AUCs at N=1 (Figure 13).
var PaperFigure13AUC = map[string]float64{
	"MLC-A": 0.905, "MLC-B": 0.900, "MLC-D": 0.918,
}

// PaperFigure15 holds the young/old evaluation AUCs (Figure 15) and the
// AUCs when training separate age-partitioned models (§5.3).
var PaperFigure15 = struct {
	YoungEval, OldEval   float64
	YoungSplit, OldSplit float64
}{0.961, 0.894, 0.970, 0.890}

// PaperFigure6 summarizes the infancy findings (Figure 6): share of
// failures within 30 and 90 days of age.
var PaperFigure6 = struct {
	Within30, Within90 float64
}{0.15, 0.25}

// PaperObservations summarizes headline characterization numbers used in
// notes: fraction of swaps preceded by non-reporting days, fraction
// preceded by inactivity, fraction of failed drives never repaired, and
// fraction of failures with no non-transparent errors or bad blocks.
var PaperObservations = struct {
	SwapsAfterNonReporting float64
	SwapsAfterInactivity   float64
	NeverRepaired          float64
	AsymptomaticFailures   float64
}{0.80, 0.36, 0.50, 0.26}
