// Package experiments regenerates every table and figure of the paper's
// evaluation on a simulated fleet: Tables 1–8 and Figures 1, 3–16 (see
// DESIGN.md §4 for the index). Each experiment returns report tables
// and/or plots; cmd/ssdreport runs them all and writes the
// paper-vs-measured comparison into EXPERIMENTS.md.
package experiments

import (
	"fmt"

	"ssdfail/internal/failure"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/trace"
)

// Config scales the experiment run. Defaults reproduce the paper's
// qualitative results in a few minutes on a laptop; raise DrivesPerModel
// for tighter confidence intervals.
type Config struct {
	Seed           uint64
	DrivesPerModel int
	HorizonDays    int32
	Workers        int

	// Prediction-harness knobs.
	CVFolds           int
	ForestTrees       int
	TestNegSampleProb float64 // uniform negative subsampling in test folds
}

// DefaultConfig returns the standard experiment scale.
func DefaultConfig() Config {
	return Config{
		Seed:              42,
		DrivesPerModel:    300,
		HorizonDays:       2190, // six years, as in the trace
		CVFolds:           5,
		ForestTrees:       100,
		TestNegSampleProb: 0.25,
	}
}

// Context carries the generated fleet and its reconstruction, shared by
// all experiments.
type Context struct {
	Cfg   Config
	Fleet *trace.Fleet
	Truth *fleetsim.Truth
	An    *failure.Analysis

	// Per-model views (shared drive slices, fresh analyses).
	ModelFleet [trace.NumModels]*trace.Fleet
	ModelAn    [trace.NumModels]*failure.Analysis
}

// NewContext generates the fleet and reconstructs its failure timeline.
func NewContext(cfg Config) (*Context, error) {
	fc := fleetsim.DefaultConfig(cfg.Seed, cfg.DrivesPerModel)
	if cfg.HorizonDays > 0 {
		fc.HorizonDays = cfg.HorizonDays
		if fc.EarlyWindow >= fc.HorizonDays-60 {
			fc.EarlyWindow = (fc.HorizonDays - 60) / 3
		}
	}
	fc.Workers = cfg.Workers
	fleet, truth, err := fleetsim.Generate(fc)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	ctx := &Context{Cfg: cfg, Fleet: fleet, Truth: truth, An: failure.Analyze(fleet)}
	for _, m := range trace.Models {
		ctx.ModelFleet[m] = fleet.FilterModel(m)
		ctx.ModelAn[m] = failure.Analyze(ctx.ModelFleet[m])
	}
	return ctx, nil
}

// NewContextFromFleet wraps an existing fleet (e.g. loaded from a trace
// file) in an experiment context; the Truth field stays nil because only
// the simulator can provide ground truth.
func NewContextFromFleet(cfg Config, fleet *trace.Fleet) (*Context, error) {
	if err := fleet.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: invalid fleet: %w", err)
	}
	ctx := &Context{Cfg: cfg, Fleet: fleet, An: failure.Analyze(fleet)}
	for _, m := range trace.Models {
		ctx.ModelFleet[m] = fleet.FilterModel(m)
		ctx.ModelAn[m] = failure.Analyze(ctx.ModelFleet[m])
	}
	return ctx, nil
}

// finalRecords returns the last day record of every drive (nil entries
// are skipped), used for lifetime cumulative statistics.
func (ctx *Context) finalRecords() []*trace.DayRecord {
	var out []*trace.DayRecord
	for i := range ctx.Fleet.Drives {
		if r := ctx.Fleet.Drives[i].Last(); r != nil {
			out = append(out, r)
		}
	}
	return out
}
