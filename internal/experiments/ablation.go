package experiments

import (
	"fmt"
	"time"

	"ssdfail/internal/dataset"
	"ssdfail/internal/eval"
	"ssdfail/internal/ml"
	"ssdfail/internal/ml/forest"
	"ssdfail/internal/report"
)

// Ablations for the design choices called out in DESIGN.md §6. These are
// not paper tables; they justify the methodology the paper (and this
// reproduction) uses.

// AblationSplit contrasts drive-partitioned folds with naive row-level
// splits. Because a drive's days are highly correlated, row splits leak
// drive identity across train/test and inflate the AUC — the reason the
// paper partitions folds by drive ID (§5.1). The effect is measured at
// N=7, where each failure contributes several positive days that a row
// split scatters across train and test.
func AblationSplit(ctx *Context) (*report.Table, error) {
	const lookahead = 7
	// Drive-partitioned baseline.
	driveRes, err := eval.CrossValidate(ctx.Fleet, ctx.An, ctx.cvOptions(lookahead), ctx.forestFactory())
	if err != nil {
		return nil, err
	}
	// Row-level split: extract everything once, then split rows round-
	// robin regardless of drive.
	full := dataset.Extract(ctx.Fleet, ctx.An, dataset.Options{
		Lookahead:          lookahead,
		Seed:               ctx.Cfg.Seed,
		NegativeSampleProb: ctx.Cfg.TestNegSampleProb,
		AgeMax:             -1,
	})
	folds := ctx.Cfg.CVFolds
	var aucs []float64
	for k := 0; k < folds; k++ {
		var trainRows, testRows []int
		for i := 0; i < full.Len(); i++ {
			if i%folds == k {
				testRows = append(testRows, i)
			} else {
				trainRows = append(trainRows, i)
			}
		}
		train := dataset.Downsample(full.Subset(trainRows), 1, ctx.Cfg.Seed+uint64(k))
		test := full.Subset(testRows)
		if train.Positives() == 0 || test.Positives() == 0 {
			continue
		}
		clf := ctx.forestFactory()()
		if err := clf.Fit(train); err != nil {
			return nil, err
		}
		aucs = append(aucs, eval.AUC(ml.ScoreBatch(clf, test), test.Y))
	}
	var rowMean float64
	for _, a := range aucs {
		rowMean += a
	}
	if len(aucs) > 0 {
		rowMean /= float64(len(aucs))
	}
	tbl := &report.Table{
		Title:   "Ablation: fold partitioning (random forest, N=7)",
		Columns: []string{"Partitioning", "AUC"},
	}
	tbl.AddRow("by drive ID (paper)", report.F(driveRes.Mean, 3))
	tbl.AddRow("by row (leaky)", report.F(rowMean, 3))
	tbl.Notes = append(tbl.Notes,
		"row-level splits leak per-drive signal into the test set and overstate accuracy")
	return tbl, nil
}

// AblationDownsampling sweeps the training negative:positive ratio
// (the paper settles on 1:1 after testing alternatives, §5.1).
func AblationDownsampling(ctx *Context) (*report.Table, error) {
	tbl := &report.Table{
		Title:   "Ablation: training downsampling ratio (random forest, N=1)",
		Columns: []string{"Negatives per positive", "AUC", "std"},
	}
	for _, ratio := range []float64{0.5, 1, 2, 5, 20} {
		opts := ctx.cvOptions(1)
		opts.DownsampleRatio = ratio
		r, err := eval.CrossValidate(ctx.Fleet, ctx.An, opts, ctx.forestFactory())
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprintf("%g:1", ratio), report.F(r.Mean, 3), report.F(r.Std, 3))
	}
	tbl.Notes = append(tbl.Notes, "paper: ratios beyond 1:1 gave miniscule gains or losses")
	return tbl, nil
}

// maskedFactory wraps a factory so that only the selected features are
// visible to the model (others are zeroed before fit and score).
type maskedModel struct {
	inner ml.Classifier
	keep  []bool
}

func (m *maskedModel) Name() string { return m.inner.Name() + " (masked)" }

func (m *maskedModel) mask(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		if m.keep[i] {
			out[i] = v
		}
	}
	return out
}

func (m *maskedModel) Fit(d *dataset.Matrix) error {
	masked := &dataset.Matrix{
		X:        make([]float64, len(d.X)),
		Y:        d.Y,
		DriveIdx: d.DriveIdx,
		Day:      d.Day,
		Age:      d.Age,
	}
	copy(masked.X, d.X)
	for i := 0; i < masked.Len(); i++ {
		row := masked.Row(i)
		for f := range row {
			if !m.keep[f] {
				row[f] = 0
			}
		}
	}
	return m.inner.Fit(masked)
}

func (m *maskedModel) Score(x []float64) float64 { return m.inner.Score(m.mask(x)) }

// featureSet builds a keep-mask from a predicate over feature indices.
func featureSet(pred func(f int) bool) []bool {
	keep := make([]bool, dataset.NumFeatures)
	for f := range keep {
		keep[f] = pred(f)
	}
	return keep
}

// AblationFeatureSets contrasts daily-only, cumulative-only, and
// combined feature vectors (the paper's §5.1 design includes both).
func AblationFeatureSets(ctx *Context) (*report.Table, error) {
	daily := featureSet(func(f int) bool {
		switch {
		case f >= dataset.FErrBase && f < dataset.FCumErrBase:
			return true
		case f == dataset.FReadCount || f == dataset.FWriteCount || f == dataset.FEraseCount:
			return true
		case f == dataset.FBadBlockDelta || f == dataset.FStatusDead || f == dataset.FStatusReadOnly:
			return true
		case f == dataset.FCorrErrRate:
			return true
		}
		return false
	})
	cumulative := featureSet(func(f int) bool {
		switch {
		case f >= dataset.FCumErrBase && f < dataset.FDriveAge:
			return true
		case f == dataset.FCumReadCount || f == dataset.FCumWriteCount || f == dataset.FCumEraseCount:
			return true
		case f == dataset.FPECycles || f == dataset.FCumBadBlockCount || f == dataset.FDriveAge:
			return true
		}
		return false
	})
	all := featureSet(func(int) bool { return true })

	tbl := &report.Table{
		Title:   "Ablation: feature sets (random forest, N=1)",
		Columns: []string{"Features", "AUC", "std"},
	}
	for _, c := range []struct {
		name string
		keep []bool
	}{{"daily only", daily}, {"cumulative only", cumulative}, {"daily + cumulative (paper)", all}} {
		keep := c.keep
		factory := func() ml.Classifier {
			return &maskedModel{inner: ctx.forestFactory()(), keep: keep}
		}
		r, err := eval.CrossValidate(ctx.Fleet, ctx.An, ctx.cvOptions(1), factory)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(c.name, report.F(r.Mean, 3), report.F(r.Std, 3))
	}
	return tbl, nil
}

// gridSearchForestDepth sweeps the forest depth via eval.GridSearch and
// marks the winner, mirroring the paper's hyperparameter methodology.
func gridSearchForestDepth(ctx *Context) (*report.Table, error) {
	var grid []eval.GridPoint
	depths := []int{4, 8, 14, 20}
	for _, d := range depths {
		cfg := forest.DefaultConfig()
		cfg.MaxDepth = d
		cfg.Trees = ctx.Cfg.ForestTrees
		cfg.Seed = ctx.Cfg.Seed
		cfg.Workers = ctx.Cfg.Workers
		grid = append(grid, eval.GridPoint{
			Label:   fmt.Sprintf("depth=%d", d),
			Factory: forest.NewFactory(cfg),
		})
	}
	best, results, err := eval.GridSearch(ctx.Fleet, ctx.An, ctx.cvOptions(1), grid)
	if err != nil {
		return nil, err
	}
	tbl := &report.Table{
		Title:   "Grid search: random-forest depth (the paper's tuned regularizer, §5.2)",
		Columns: []string{"Max depth", "AUC", "std", "selected"},
	}
	for i, r := range results {
		sel := ""
		if i == best {
			sel = "<- best"
		}
		tbl.AddRow(fmt.Sprintf("%d", depths[i]), report.F(r.Mean, 3), report.F(r.Std, 3), sel)
	}
	return tbl, nil
}

// AblationForestSize sweeps the number of trees, reporting AUC and
// training time per fold.
func AblationForestSize(ctx *Context) (*report.Table, error) {
	tbl := &report.Table{
		Title:   "Ablation: forest size (N=1)",
		Columns: []string{"Trees", "AUC", "std", "CV wall time"},
	}
	for _, trees := range []int{5, 25, 50, 100, 200} {
		cfg := forest.DefaultConfig()
		cfg.Trees = trees
		cfg.Seed = ctx.Cfg.Seed
		cfg.Workers = ctx.Cfg.Workers
		start := time.Now() //ssdlint:allow nondeterminism CV wall time is a reported diagnostic, not a model input
		r, err := eval.CrossValidate(ctx.Fleet, ctx.An, ctx.cvOptions(1), forest.NewFactory(cfg))
		if err != nil {
			return nil, err
		}
		//ssdlint:allow nondeterminism CV wall time is a reported diagnostic, not a model input
		elapsed := time.Since(start).Round(time.Millisecond)
		tbl.AddRow(fmt.Sprintf("%d", trees), report.F(r.Mean, 3), report.F(r.Std, 3),
			elapsed.String())
	}
	return tbl, nil
}
