package experiments

import (
	"fmt"
	"math"

	"ssdfail/internal/failure"
	"ssdfail/internal/report"
	"ssdfail/internal/stats"
	"ssdfail/internal/trace"
)

// Table1 computes the proportion of drive days exhibiting each error
// type, per model (paper Table 1).
func Table1(ctx *Context) *report.Table {
	tbl := &report.Table{
		Title:   "Table 1: proportion of drive days that exhibit each error type",
		Columns: []string{"Error type", "MLC-A", "MLC-B", "MLC-D", "paper A", "paper B", "paper D"},
	}
	var days [trace.NumModels]float64
	var with [trace.NumModels][trace.NumErrorKinds]float64
	for i := range ctx.Fleet.Drives {
		d := &ctx.Fleet.Drives[i]
		for j := range d.Days {
			days[d.Model]++
			for k := 0; k < trace.NumErrorKinds; k++ {
				if d.Days[j].Errors[k] > 0 {
					with[d.Model][k]++
				}
			}
		}
	}
	for k := 0; k < trace.NumErrorKinds; k++ {
		kind := trace.ErrorKind(k)
		if kind == trace.ErrErase {
			continue // Table 1 in the paper omits erase errors
		}
		ref, hasRef := PaperTable1[kind.String()]
		row := []string{kind.String()}
		for _, m := range trace.Models {
			row = append(row, report.F(with[m][k]/days[m], 6))
		}
		for mi := 0; mi < 3; mi++ {
			if hasRef {
				row = append(row, report.F(ref[mi], 6))
			} else {
				row = append(row, "-")
			}
		}
		tbl.AddRow(row...)
	}
	return tbl
}

// table2Labels names the columns/rows of the Spearman matrix, in the
// paper's order.
var table2Labels = []string{
	"erase", "final read", "final write", "meta", "read", "response",
	"timeout", "uncorrect.", "write", "P/E cycle", "bad block", "drive age",
}

// Table2Matrix computes the Spearman correlation matrix among per-drive
// lifetime cumulative error counts, P/E cycles, bad blocks, and age
// (paper Table 2). It returns the matrix alongside the rendered table.
func Table2Matrix(ctx *Context) ([][]float64, *report.Table) {
	kinds := []trace.ErrorKind{
		trace.ErrErase, trace.ErrFinalRead, trace.ErrFinalWrite, trace.ErrMeta,
		trace.ErrRead, trace.ErrResponse, trace.ErrTimeout,
		trace.ErrUncorrectable, trace.ErrWrite,
	}
	finals := ctx.finalRecords()
	nCols := len(kinds) + 3
	cols := make([][]float64, nCols)
	for c := range cols {
		cols[c] = make([]float64, len(finals))
	}
	for i, r := range finals {
		for ki, k := range kinds {
			cols[ki][i] = float64(r.CumErrors[k])
		}
		cols[len(kinds)][i] = r.PECycles
		cols[len(kinds)+1][i] = float64(r.BadBlocks())
		cols[len(kinds)+2][i] = float64(r.Age)
	}
	m := stats.CorrelationMatrix(cols, stats.Spearman)

	tbl := &report.Table{
		Title:   "Table 2: Spearman correlations among cumulative counts (lower triangle)",
		Columns: append([]string{""}, table2Labels...),
	}
	for i, name := range table2Labels {
		row := []string{name}
		for j := 0; j <= i && j < nCols; j++ {
			row = append(row, report.F(m[i][j], 2))
		}
		tbl.AddRow(row...)
	}
	tbl.Notes = append(tbl.Notes,
		"paper highlights: uncorrectable~final read 0.97, age~P/E 0.73, erase~P/E 0.32, bad block~uncorrectable 0.37")
	return m, tbl
}

// Table2 renders the Spearman matrix.
func Table2(ctx *Context) *report.Table {
	_, tbl := Table2Matrix(ctx)
	return tbl
}

// Table3 reports failure incidence per model (paper Table 3).
func Table3(ctx *Context) *report.Table {
	tbl := &report.Table{
		Title:   "Table 3: failure incidence",
		Columns: []string{"Model", "#Failures", "%Failed", "paper #", "paper %"},
	}
	addRow := func(name string, an *failure.Analysis, drives int) {
		failed := an.FailedDriveCount()
		ref := PaperTable3[name]
		tbl.AddRow(name,
			fmt.Sprintf("%d", len(an.Events)),
			report.Pct(float64(failed)/float64(drives), 2),
			fmt.Sprintf("%d", ref.Failures),
			fmt.Sprintf("%.2f%%", ref.PctFail),
		)
	}
	for _, m := range trace.Models {
		addRow(m.String(), ctx.ModelAn[m], len(ctx.ModelFleet[m].Drives))
	}
	addRow("All", ctx.An, len(ctx.Fleet.Drives))
	return tbl
}

// Table4 reports the distribution of lifetime failure counts (Table 4).
func Table4(ctx *Context) *report.Table {
	dist := ctx.An.FailureCountDistribution(4)
	total := len(ctx.Fleet.Drives)
	failed := total - dist[0]
	tbl := &report.Table{
		Title:   "Table 4: distribution of lifetime failure counts",
		Columns: []string{"#Failures", "% of drives", "% of failed drives", "paper % of drives"},
	}
	for k, n := range dist {
		ofFailed := "-"
		if k > 0 && failed > 0 {
			ofFailed = report.Pct(float64(n)/float64(failed), 3)
		}
		tbl.AddRow(fmt.Sprintf("%d", k),
			report.Pct(float64(n)/float64(total), 3),
			ofFailed,
			fmt.Sprintf("%.3f%%", PaperTable4[k]))
	}
	return tbl
}

// table5Windows are Table 5's repair-time horizons in days (∞ last).
var table5Windows = []int32{10, 30, 100, 365, 730, 1095}

// Table5 reports the percentage of swapped drives that re-enter the
// workflow within n days (paper Table 5); parentheses show repaired
// drives as a share of all drives.
func Table5(ctx *Context) *report.Table {
	tbl := &report.Table{
		Title:   "Table 5: % of swapped drives re-entering within n days (and % of all drives)",
		Columns: []string{"Model", "10d", "30d", "100d", "1y", "2y", "3y", "ever"},
	}
	for _, m := range trace.Models {
		an := ctx.ModelAn[m]
		drives := len(ctx.ModelFleet[m].Drives)
		swapped := len(an.Events)
		row := []string{m.String()}
		if swapped == 0 {
			for range table5Windows {
				row = append(row, "-")
			}
			tbl.AddRow(append(row, "-")...)
			continue
		}
		count := func(limit int32) int {
			c := 0
			for i := range an.Events {
				rd := an.Events[i].RepairDays
				if rd >= 0 && (limit < 0 || rd <= limit) {
					c++
				}
			}
			return c
		}
		for _, w := range table5Windows {
			c := count(w)
			row = append(row, fmt.Sprintf("%.1f (%.2f)",
				100*float64(c)/float64(swapped), 100*float64(c)/float64(drives)))
		}
		c := count(-1)
		row = append(row, fmt.Sprintf("%.1f (%.2f)",
			100*float64(c)/float64(swapped), 100*float64(c)/float64(drives)))
		tbl.AddRow(row...)
	}
	ref := func(name string) string {
		r := PaperTable5[name]
		return fmt.Sprintf("paper %s: 10d %.1f, 30d %.1f, 100d %.1f, 1y %.1f, 2y %.1f, 3y %.1f, ever %.1f",
			name, r[0], r[1], r[2], r[3], r[4], r[5], r[6])
	}
	tbl.Notes = append(tbl.Notes, ref("MLC-A"), ref("MLC-B"), ref("MLC-D"))
	return tbl
}

// Figure1 computes the CDFs of maximum observed drive age and of the
// per-drive data count (paper Figure 1), evaluated yearly.
func Figure1(ctx *Context) (*report.Table, *report.Plot) {
	var maxAges, dataCounts []float64
	for i := range ctx.Fleet.Drives {
		d := &ctx.Fleet.Drives[i]
		if len(d.Days) == 0 {
			continue
		}
		maxAges = append(maxAges, float64(d.MaxAge()))
		dataCounts = append(dataCounts, float64(d.DataCount()))
	}
	ageCDF := stats.NewECDF(maxAges)
	cntCDF := stats.NewECDF(dataCounts)
	tbl := &report.Table{
		Title:   "Figure 1: CDFs of max observed age and data count",
		Columns: []string{"Years", "P(max age <= t)", "P(data count <= t)"},
	}
	xs := stats.LinSpace(0, float64(ctx.Fleet.Horizon), 13)
	plot := &report.Plot{Title: "Figure 1", XLabel: "years", YLabel: "CDF"}
	var s1, s2 report.Series
	s1.Name, s2.Name = "max age", "data count"
	for _, x := range xs {
		tbl.AddRow(report.F(x/365, 2), report.F(ageCDF.At(x), 3), report.F(cntCDF.At(x), 3))
		s1.X = append(s1.X, x/365)
		s1.Y = append(s1.Y, ageCDF.At(x))
		s2.X = append(s2.X, x/365)
		s2.Y = append(s2.Y, cntCDF.At(x))
	}
	plot.Series = []report.Series{s1, s2}
	tbl.Notes = append(tbl.Notes, "paper: >50% of drives observed 4-6 years")
	return tbl, plot
}

// Figure3 computes the CDF of operational-period lengths with the
// censored (never-ending) mass (paper Figure 3).
func Figure3(ctx *Context) (*report.Table, *report.Plot) {
	finished, censored := ctx.An.OperationalLengths()
	cdf := stats.NewCensoredECDF(finished, censored)
	tbl := &report.Table{
		Title:   "Figure 3: CDF of time to failure (operational period length)",
		Columns: []string{"Years", "CDF"},
	}
	plot := &report.Plot{Title: "Figure 3", XLabel: "years", YLabel: "CDF"}
	var s report.Series
	s.Name = "time to failure"
	for _, x := range stats.LinSpace(0, float64(ctx.Fleet.Horizon), 13) {
		tbl.AddRow(report.F(x/365, 2), report.F(cdf.At(x), 3))
		s.X = append(s.X, x/365)
		s.Y = append(s.Y, cdf.At(x))
	}
	plot.Series = []report.Series{s}
	tbl.AddRow("∞ (censored)", report.Pct(cdf.CensoredFraction(), 1))
	tbl.Notes = append(tbl.Notes, "paper: >80% of operational periods not observed to end")
	return tbl, plot
}

// Figure4 computes the CDF of the non-operational period between failure
// and swap (paper Figure 4; log-scaled x-axis).
func Figure4(ctx *Context) (*report.Table, *report.Plot) {
	durations := ctx.An.NonOpDurations()
	cdf := stats.NewECDF(durations)
	tbl := &report.Table{
		Title:   "Figure 4: CDF of non-operational period before swap",
		Columns: []string{"Days", "CDF"},
	}
	plot := &report.Plot{Title: "Figure 4", XLabel: "days (log)", YLabel: "CDF", LogX: true}
	var s report.Series
	s.Name = "non-op period"
	for _, x := range []float64{1, 2, 3, 5, 7, 14, 30, 60, 100, 200, 400, 700} {
		tbl.AddRow(report.F(x, 0), report.F(cdf.At(x), 3))
		s.X = append(s.X, x)
		s.Y = append(s.Y, cdf.At(x))
	}
	plot.Series = []report.Series{s}
	tbl.Notes = append(tbl.Notes,
		"paper: ~20% swapped within a day, ~80% within 7 days, ~8% beyond 100 days")
	return tbl, plot
}

// Figure5 computes the CDF of time to repair with its censored mass
// (paper Figure 5).
func Figure5(ctx *Context) (*report.Table, *report.Plot) {
	observed, censored := ctx.An.RepairTimes()
	cdf := stats.NewCensoredECDF(observed, censored)
	tbl := &report.Table{
		Title:   "Figure 5: CDF of time to repair",
		Columns: []string{"Days", "CDF"},
	}
	plot := &report.Plot{Title: "Figure 5", XLabel: "days (log)", YLabel: "CDF", LogX: true}
	var s report.Series
	s.Name = "time to repair"
	for _, x := range []float64{1, 3, 10, 30, 100, 365, 730, 1095, 1770} {
		tbl.AddRow(report.F(x, 0), report.F(cdf.At(x), 3))
		s.X = append(s.X, x)
		s.Y = append(s.Y, cdf.At(x))
	}
	plot.Series = []report.Series{s}
	tbl.AddRow("∞ (censored)", report.Pct(cdf.CensoredFraction(), 1))
	tbl.Notes = append(tbl.Notes, "paper: ~half of swapped drives never observed to re-enter")
	return tbl, plot
}

// Figure6 computes the CDF of drive age at failure and the
// population-normalized monthly failure rate (paper Figure 6).
func Figure6(ctx *Context) (*report.Table, *report.Plot) {
	ages := ctx.An.FailureAges()
	cdf := stats.NewECDF(ages)

	// Exposure: drive-days observed at each month of age.
	months := int(ctx.Fleet.Horizon/30) + 1
	exposure := make([]float64, months)
	for i := range ctx.Fleet.Drives {
		for j := range ctx.Fleet.Drives[i].Days {
			m := int(ctx.Fleet.Drives[i].Days[j].Age / 30)
			if m < months {
				exposure[m]++
			}
		}
	}
	failures := make([]float64, months)
	for _, a := range ages {
		m := int(a / 30)
		if m < months {
			failures[m]++
		}
	}
	// Rate per drive-month: failures / (drive-days / 30).
	rate := make([]float64, months)
	for m := range rate {
		if exposure[m] > 0 {
			rate[m] = failures[m] / (exposure[m] / 30)
		} else {
			rate[m] = math.NaN()
		}
	}

	tbl := &report.Table{
		Title:   "Figure 6: failure age CDF and monthly failure rate",
		Columns: []string{"Age (months)", "CDF of failure age", "failure rate"},
	}
	plot := &report.Plot{Title: "Figure 6", XLabel: "age (months)", YLabel: "CDF / rate"}
	var sc, sr report.Series
	sc.Name, sr.Name = "CDF", "rate (x10)"
	for m := 0; m < months; m += 2 {
		x := float64(m)
		c := cdf.At(float64((m + 1) * 30))
		tbl.AddRow(fmt.Sprintf("%d", m), report.F(c, 3), report.F(rate[m], 4))
		sc.X = append(sc.X, x)
		sc.Y = append(sc.Y, c)
		if !math.IsNaN(rate[m]) {
			sr.X = append(sr.X, x)
			sr.Y = append(sr.Y, rate[m]*10)
		}
	}
	plot.Series = []report.Series{sc, sr}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("measured: %.0f%% of failures within 30 days, %.0f%% within 90 days; paper: %.0f%% and %.0f%%",
			100*cdf.At(30), 100*cdf.At(90),
			100*PaperFigure6.Within30, 100*PaperFigure6.Within90))
	return tbl, plot
}

// Figure7 computes quartiles of daily write intensity per month of drive
// age (paper Figure 7).
func Figure7(ctx *Context) (*report.Table, *report.Plot) {
	months := int(ctx.Fleet.Horizon/30) + 1
	byMonth := make([][]float64, months)
	for i := range ctx.Fleet.Drives {
		d := &ctx.Fleet.Drives[i]
		for j := range d.Days {
			r := &d.Days[j]
			if !r.Active() {
				continue
			}
			m := int(r.Age / 30)
			if m < months {
				byMonth[m] = append(byMonth[m], float64(r.Writes))
			}
		}
	}
	tbl := &report.Table{
		Title:   "Figure 7: daily write intensity quartiles by age month",
		Columns: []string{"Age (months)", "Q1", "median", "Q3", "n days"},
	}
	plot := &report.Plot{Title: "Figure 7", XLabel: "age (months)", YLabel: "writes/day"}
	var q1s, meds, q3s report.Series
	q1s.Name, meds.Name, q3s.Name = "Q1", "median", "Q3"
	for m := 0; m < months; m += 2 {
		if len(byMonth[m]) == 0 {
			continue
		}
		qs := stats.Quantiles(byMonth[m], 0.25, 0.5, 0.75)
		tbl.AddRow(fmt.Sprintf("%d", m),
			fmt.Sprintf("%.3g", qs[0]), fmt.Sprintf("%.3g", qs[1]), fmt.Sprintf("%.3g", qs[2]),
			fmt.Sprintf("%d", len(byMonth[m])))
		x := float64(m)
		q1s.X = append(q1s.X, x)
		q1s.Y = append(q1s.Y, qs[0])
		meds.X = append(meds.X, x)
		meds.Y = append(meds.Y, qs[1])
		q3s.X = append(q3s.X, x)
		q3s.Y = append(q3s.Y, qs[2])
	}
	plot.Series = []report.Series{q1s, meds, q3s}
	tbl.Notes = append(tbl.Notes, "paper: young drives see markedly fewer writes (no burn-in)")
	return tbl, plot
}

// failurePE returns the P/E cycle count at each failure, split young/old.
func (ctx *Context) failurePE() (young, old []float64) {
	for i := range ctx.An.Events {
		e := &ctx.An.Events[i]
		rec := ctx.An.FailureRecord(e)
		if rec == nil {
			continue
		}
		if e.Young() {
			young = append(young, rec.PECycles)
		} else {
			old = append(old, rec.PECycles)
		}
	}
	return young, old
}

// Figure8 computes the CDF of P/E cycles at failure and the failure rate
// per 250-cycle bin (paper Figure 8).
func Figure8(ctx *Context) (*report.Table, *report.Plot) {
	young, old := ctx.failurePE()
	all := append(append([]float64{}, young...), old...)
	cdf := stats.NewECDF(all)

	// Exposure per 250-cycle bin: drive-days observed in that bin.
	const binW = 250
	nbins := 25
	exposure := make([]float64, nbins)
	failures := make([]float64, nbins)
	for i := range ctx.Fleet.Drives {
		for j := range ctx.Fleet.Drives[i].Days {
			b := int(ctx.Fleet.Drives[i].Days[j].PECycles / binW)
			if b < nbins {
				exposure[b]++
			}
		}
	}
	for _, pe := range all {
		b := int(pe / binW)
		if b < nbins {
			failures[b]++
		}
	}
	rate := stats.BinnedRate(failures, exposure)

	tbl := &report.Table{
		Title:   "Figure 8: P/E cycles at failure (CDF) and failure rate per 250-cycle bin",
		Columns: []string{"P/E", "CDF", "rate per drive-day"},
	}
	plot := &report.Plot{Title: "Figure 8", XLabel: "P/E cycles", YLabel: "CDF"}
	var sc report.Series
	sc.Name = "CDF of P/E at failure"
	for b := 0; b < nbins; b += 2 {
		x := float64(b * binW)
		tbl.AddRow(report.F(x, 0), report.F(cdf.At(x+binW), 3), report.F(rate[b], 6))
		sc.X = append(sc.X, x)
		sc.Y = append(sc.Y, cdf.At(x+binW))
	}
	plot.Series = []report.Series{sc}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("measured: %.1f%% of failures below 1500 P/E; paper: ~98%%", 100*cdf.At(1500)))
	return tbl, plot
}

// Figure9 splits the Figure 8 CDF across young and old failures.
func Figure9(ctx *Context) (*report.Table, *report.Plot) {
	young, old := ctx.failurePE()
	yc, oc := stats.NewECDF(young), stats.NewECDF(old)
	tbl := &report.Table{
		Title:   "Figure 9: P/E-at-failure CDF, young (<=90d) vs old failures",
		Columns: []string{"P/E", "young CDF", "old CDF"},
	}
	plot := &report.Plot{Title: "Figure 9", XLabel: "P/E cycles", YLabel: "CDF"}
	var sy, so report.Series
	sy.Name, so.Name = "young", "old"
	for _, x := range stats.LinSpace(0, 2000, 11) {
		tbl.AddRow(report.F(x, 0), report.F(yc.At(x), 3), report.F(oc.At(x), 3))
		sy.X = append(sy.X, x)
		sy.Y = append(sy.Y, yc.At(x))
		so.X = append(so.X, x)
		so.Y = append(so.Y, oc.At(x))
	}
	plot.Series = []report.Series{sy, so}
	tbl.Notes = append(tbl.Notes, "paper: young failures occupy a small, distinct P/E range")
	return tbl, plot
}

// Figure10 computes CDFs of cumulative grown bad blocks and cumulative
// uncorrectable errors at failure for young/old failures, against the
// final counts of drives that never failed (paper Figure 10).
func Figure10(ctx *Context) (*report.Table, *report.Plot) {
	var youngBB, oldBB, okBB []float64
	var youngUE, oldUE, okUE []float64
	failedDrive := make([]bool, len(ctx.Fleet.Drives))
	for i := range ctx.An.Events {
		e := &ctx.An.Events[i]
		failedDrive[e.DriveIdx] = true
		rec := ctx.An.FailureRecord(e)
		if rec == nil {
			continue
		}
		bb := float64(rec.GrownBadBlocks)
		ue := float64(rec.CumErrors[trace.ErrUncorrectable])
		if e.Young() {
			youngBB = append(youngBB, bb)
			youngUE = append(youngUE, ue)
		} else {
			oldBB = append(oldBB, bb)
			oldUE = append(oldUE, ue)
		}
	}
	for i := range ctx.Fleet.Drives {
		if failedDrive[i] {
			continue
		}
		if r := ctx.Fleet.Drives[i].Last(); r != nil {
			okBB = append(okBB, float64(r.GrownBadBlocks))
			okUE = append(okUE, float64(r.CumErrors[trace.ErrUncorrectable]))
		}
	}
	tbl := &report.Table{
		Title:   "Figure 10: cumulative bad blocks / uncorrectable errors at failure",
		Columns: []string{"Count >=", "young BB", "old BB", "not-failed BB", "young UE", "old UE", "not-failed UE"},
	}
	cdfs := []*stats.ECDF{
		stats.NewECDF(youngBB), stats.NewECDF(oldBB), stats.NewECDF(okBB),
		stats.NewECDF(youngUE), stats.NewECDF(oldUE), stats.NewECDF(okUE),
	}
	plot := &report.Plot{Title: "Figure 10 (UE)", XLabel: "cumulative UE (log)", YLabel: "CDF", LogX: true}
	names := []string{"young UE", "old UE", "not failed UE"}
	series := make([]report.Series, 3)
	for _, x := range []float64{0, 1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7} {
		row := []string{fmt.Sprintf("%.0g", x)}
		for _, c := range cdfs {
			row = append(row, report.F(c.At(x), 3))
		}
		tbl.AddRow(row...)
		for si := 0; si < 3; si++ {
			if x > 0 {
				series[si].X = append(series[si].X, x)
				series[si].Y = append(series[si].Y, cdfs[3+si].At(x))
			}
		}
	}
	for si := range series {
		series[si].Name = names[si]
	}
	plot.Series = series
	tbl.Notes = append(tbl.Notes,
		"paper: ~80% of non-failed drives saw no UE; zero-UE share 68% young / 45% old failures; young tails are orders of magnitude heavier")
	return tbl, plot
}

// Figure11 computes (top) the probability of a UE within the last n days
// before a failure versus an arbitrary-window baseline and (bottom)
// upper percentiles of the nonzero UE counts per day before failure
// (paper Figure 11).
func Figure11(ctx *Context) (*report.Table, *report.Table) {
	const window = 7
	// Baseline: probability of >=1 UE day within an arbitrary n-day
	// window, estimated from overall day incidence.
	var days, ueDays float64
	for i := range ctx.Fleet.Drives {
		for j := range ctx.Fleet.Drives[i].Days {
			days++
			if ctx.Fleet.Drives[i].Days[j].Errors[trace.ErrUncorrectable] > 0 {
				ueDays++
			}
		}
	}
	pDay := ueDays / days

	// For each failure, check which of the last n days had UEs and
	// record their counts.
	type acc struct {
		hadWithin [window + 1]float64
		total     float64
		counts    [window + 1][]float64
	}
	var young, old acc
	for i := range ctx.An.Events {
		e := &ctx.An.Events[i]
		if e.FailRecIdx < 0 {
			continue
		}
		d := &ctx.Fleet.Drives[e.DriveIdx]
		a := &old
		if e.Young() {
			a = &young
		}
		a.total++
		firstUE := -1
		for off := 0; off <= window; off++ {
			idx := d.RecordOn(e.FailDay - int32(off))
			if idx < 0 {
				continue
			}
			ue := d.Days[idx].Errors[trace.ErrUncorrectable]
			if ue > 0 {
				if firstUE < 0 || off < firstUE {
					firstUE = off
				}
				a.counts[off] = append(a.counts[off], float64(ue))
			}
		}
		if firstUE >= 0 {
			for off := firstUE; off <= window; off++ {
				a.hadWithin[off]++
			}
		}
	}

	top := &report.Table{
		Title:   "Figure 11 (top): P(uncorrectable error within last n days before failure)",
		Columns: []string{"n (days)", "young", "old", "baseline"},
	}
	for n := 0; n <= window; n++ {
		baseline := 1 - math.Pow(1-pDay, float64(n+1))
		top.AddRow(fmt.Sprintf("%d", n),
			report.F(young.hadWithin[n]/math.Max(young.total, 1), 3),
			report.F(old.hadWithin[n]/math.Max(old.total, 1), 3),
			report.F(baseline, 3))
	}
	top.Notes = append(top.Notes, "paper: failed drives see UEs far above baseline, concentrated in the last 2 days")

	bottom := &report.Table{
		Title:   "Figure 11 (bottom): percentiles of nonzero UE counts by day before failure",
		Columns: []string{"days before", "75% young", "75% old", "85% young", "85% old", "95% young", "95% old"},
	}
	for off := 0; off <= window; off++ {
		row := []string{fmt.Sprintf("%d", off)}
		for _, q := range []float64{0.75, 0.85, 0.95} {
			for _, a := range []*acc{&young, &old} {
				if len(a.counts[off]) == 0 {
					row = append(row, "-")
				} else {
					row = append(row, fmt.Sprintf("%.3g", stats.Quantile(a.counts[off], q)))
				}
			}
		}
		bottom.AddRow(row...)
	}
	bottom.Notes = append(bottom.Notes, "paper: young failures see orders of magnitude more UEs when they see any")
	return top, bottom
}
