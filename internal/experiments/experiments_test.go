package experiments

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"ssdfail/internal/dataset"
	"ssdfail/internal/eval"
	"ssdfail/internal/trace"
)

// aucOf delegates to the eval package's rank AUC.
func aucOf(s []float64, y []int8) float64 { return eval.AUC(s, y) }

// extractForRelabelTest pulls a uniformly sampled matrix for relabeling
// checks.
func extractForRelabelTest(ctx *Context) *dataset.Matrix {
	return dataset.Extract(ctx.Fleet, ctx.An, dataset.Options{
		Lookahead:          1,
		Seed:               99,
		NegativeSampleProb: 0.1,
		AgeMax:             -1,
	})
}

var (
	ctxOnce sync.Once
	testCtx *Context
	ctxErr  error
)

// getCtx builds one small shared context for all experiment tests.
func getCtx(t *testing.T) *Context {
	t.Helper()
	ctxOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.Seed = 77
		cfg.DrivesPerModel = 120
		cfg.HorizonDays = 2190
		cfg.CVFolds = 3
		cfg.ForestTrees = 40
		cfg.TestNegSampleProb = 0.15
		testCtx, ctxErr = NewContext(cfg)
	})
	if ctxErr != nil {
		t.Fatal(ctxErr)
	}
	return testCtx
}

func TestNewContextBuildsModelViews(t *testing.T) {
	ctx := getCtx(t)
	if got := len(ctx.Fleet.Drives); got != 360 {
		t.Fatalf("drives = %d", got)
	}
	for _, m := range trace.Models {
		if len(ctx.ModelFleet[m].Drives) != 120 {
			t.Errorf("model %v view has %d drives", m, len(ctx.ModelFleet[m].Drives))
		}
		if ctx.ModelAn[m] == nil {
			t.Errorf("model %v analysis missing", m)
		}
	}
	if len(ctx.An.Events) == 0 {
		t.Fatal("no failures reconstructed; experiments need failures")
	}
}

func TestTable1Shape(t *testing.T) {
	ctx := getCtx(t)
	tbl := Table1(ctx)
	if len(tbl.Rows) != 9 { // 10 kinds minus erase
		t.Fatalf("Table 1 rows = %d, want 9", len(tbl.Rows))
	}
	out := tbl.String()
	for _, want := range []string{"correctable", "uncorrectable", "final_read"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestTable2SpearmanStructure(t *testing.T) {
	ctx := getCtx(t)
	m, tbl := Table2Matrix(ctx)
	if len(m) != 12 {
		t.Fatalf("matrix size = %d", len(m))
	}
	// Diagonal ones, symmetry, range.
	for i := range m {
		if m[i][i] != 1 {
			t.Errorf("diag[%d] = %v", i, m[i][i])
		}
		for j := range m {
			// NaN entries (a constant column, e.g. zero response errors
			// in a small fleet) are mirrored as NaN.
			if math.IsNaN(m[i][j]) {
				if !math.IsNaN(m[j][i]) {
					t.Errorf("asymmetric NaN at (%d,%d)", i, j)
				}
				continue
			}
			if m[i][j] != m[j][i] {
				t.Errorf("asymmetry at (%d,%d)", i, j)
			}
			if m[i][j] < -1.000001 || m[i][j] > 1.000001 {
				t.Errorf("correlation out of range at (%d,%d): %v", i, j, m[i][j])
			}
		}
	}
	// Key structural facts from the paper's Table 2:
	// uncorrectable (idx 7) ~ final read (idx 1) very high,
	// age (idx 11) ~ P/E (idx 9) high,
	// P/E (idx 9) ~ uncorrectable (idx 7) low.
	if m[7][1] < 0.7 {
		t.Errorf("UE~final-read Spearman = %.2f, want high (paper 0.97)", m[7][1])
	}
	if m[11][9] < 0.4 {
		t.Errorf("age~P/E Spearman = %.2f, want high (paper 0.73)", m[11][9])
	}
	if m[9][7] > 0.5 {
		t.Errorf("P/E~UE Spearman = %.2f, want low (paper 0.19)", m[9][7])
	}
	if tbl == nil || len(tbl.Rows) != 12 {
		t.Error("Table 2 rendering incomplete")
	}
}

func TestTable3And4(t *testing.T) {
	ctx := getCtx(t)
	t3 := Table3(ctx)
	if len(t3.Rows) != 4 {
		t.Fatalf("Table 3 rows = %d", len(t3.Rows))
	}
	t4 := Table4(ctx)
	if len(t4.Rows) != 5 {
		t.Fatalf("Table 4 rows = %d", len(t4.Rows))
	}
	if !strings.Contains(t4.Rows[0][1], "%") {
		t.Errorf("Table 4 cell not a percentage: %q", t4.Rows[0][1])
	}
}

func TestTable5(t *testing.T) {
	ctx := getCtx(t)
	tbl := Table5(ctx)
	if len(tbl.Rows) != 3 {
		t.Fatalf("Table 5 rows = %d", len(tbl.Rows))
	}
	if len(tbl.Columns) != 8 {
		t.Fatalf("Table 5 columns = %d", len(tbl.Columns))
	}
}

func TestCharacterizationFigures(t *testing.T) {
	ctx := getCtx(t)
	type fig struct {
		name string
		run  func() bool
	}
	figs := []fig{
		{"Figure1", func() bool { tb, p := Figure1(ctx); return tb != nil && p != nil && len(tb.Rows) > 0 }},
		{"Figure3", func() bool { tb, p := Figure3(ctx); return tb != nil && p != nil && len(tb.Rows) > 0 }},
		{"Figure4", func() bool { tb, p := Figure4(ctx); return tb != nil && p != nil && len(tb.Rows) > 0 }},
		{"Figure5", func() bool { tb, p := Figure5(ctx); return tb != nil && p != nil && len(tb.Rows) > 0 }},
		{"Figure6", func() bool { tb, p := Figure6(ctx); return tb != nil && p != nil && len(tb.Rows) > 0 }},
		{"Figure7", func() bool { tb, p := Figure7(ctx); return tb != nil && p != nil && len(tb.Rows) > 0 }},
		{"Figure8", func() bool { tb, p := Figure8(ctx); return tb != nil && p != nil && len(tb.Rows) > 0 }},
		{"Figure9", func() bool { tb, p := Figure9(ctx); return tb != nil && p != nil && len(tb.Rows) > 0 }},
		{"Figure10", func() bool { tb, p := Figure10(ctx); return tb != nil && p != nil && len(tb.Rows) > 0 }},
	}
	for _, f := range figs {
		if !f.run() {
			t.Errorf("%s produced empty output", f.name)
		}
	}
	top, bottom := Figure11(ctx)
	if top == nil || bottom == nil || len(top.Rows) != 8 {
		t.Error("Figure 11 incomplete")
	}
}

func TestFigure2Timeline(t *testing.T) {
	ctx := getCtx(t)
	tbl := Figure2(ctx)
	if len(tbl.Rows) < 4 {
		t.Fatalf("Figure 2 rows = %d", len(tbl.Rows))
	}
	out := tbl.String()
	for _, want := range []string{"failure (last operational day)", "swap (sent to repairs)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 2 missing %q:\n%s", want, out)
		}
	}
}

func TestHyperparameterGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	ctx := getCtx(t)
	tbl, err := HyperparameterGrid(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	selected := 0
	for _, row := range tbl.Rows {
		if row[3] != "" {
			selected++
		}
	}
	if selected != 1 {
		t.Errorf("grid search selected %d rows, want exactly 1", selected)
	}
}

func TestSurvivalAnalysis(t *testing.T) {
	ctx := getCtx(t)
	tbl := SurvivalAnalysis(ctx)
	if len(tbl.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(tbl.Rows))
	}
	// KM failure CDF must never sit below the naive CDF evaluated on
	// the same horizon grid (censoring only adds at-risk exposure).
	for _, row := range tbl.Rows[:4] {
		var naive, km float64
		if _, err := fmt.Sscanf(row[2], "%f", &naive); err != nil {
			continue
		}
		if _, err := fmt.Sscanf(row[3], "%f", &km); err != nil {
			continue
		}
		if km+1e-9 < naive {
			t.Errorf("KM CDF %v below naive %v at %s", km, naive, row[1])
		}
	}
}

func TestFigure6InfantMortalityShape(t *testing.T) {
	ctx := getCtx(t)
	ages := ctx.An.FailureAges()
	if len(ages) < 20 {
		t.Skipf("only %d failures; too few for shape test", len(ages))
	}
	within90, total := 0, 0
	for _, a := range ages {
		total++
		if a <= 90 {
			within90++
		}
	}
	frac := float64(within90) / float64(total)
	if frac < 0.10 || frac > 0.50 {
		t.Errorf("failures within 90 days = %.2f, want ~0.25", frac)
	}
}

func TestPredictionPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("prediction experiments are slow")
	}
	ctx := getCtx(t)

	// Figure 12 subset: forest AUC at N=1 must beat N=7 (trend check).
	r1, err := ctx.forestCV(t, 1)
	if err != nil {
		t.Fatal(err)
	}
	r7, err := ctx.forestCV(t, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r1 < 0.70 {
		t.Errorf("forest AUC at N=1 = %.3f, want >= 0.70", r1)
	}
	if r1 <= r7-0.03 {
		t.Errorf("AUC should decline with lookahead: N=1 %.3f vs N=7 %.3f", r1, r7)
	}
}

// forestCV is a test helper running one forest CV at lookahead n.
func (ctx *Context) forestCV(t *testing.T, n int) (float64, error) {
	t.Helper()
	ps, err := ctx.PooledCV(ctx.forestFactory(), n)
	if err != nil {
		return 0, err
	}
	s, y := ps.filter(func(int) bool { return true })
	return aucOf(s, y), nil
}

func TestPooledCVAndAgeFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("prediction experiments are slow")
	}
	ctx := getCtx(t)
	ps, err := ctx.PooledCV(ctx.forestFactory(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Scores) != len(ps.Y) || len(ps.Y) != len(ps.Ages) || len(ps.Ages) != len(ps.Models) {
		t.Fatal("pooled slices disagree in length")
	}
	tbl13, plot13 := Figure13(ctx, ps)
	if len(tbl13.Rows) != 3 || plot13 == nil {
		t.Error("Figure 13 incomplete")
	}
	tbl14, plot14 := Figure14(ctx, ps)
	if len(tbl14.Rows) == 0 || plot14 == nil {
		t.Error("Figure 14 incomplete")
	}
	tbl15, _, err := Figure15(ctx, ps)
	if err != nil {
		t.Fatalf("Figure 15: %v", err)
	}
	if len(tbl15.Rows) != 4 {
		t.Error("Figure 15 incomplete")
	}
	tbl16, err := Figure16(ctx)
	if err != nil {
		t.Fatalf("Figure 16: %v", err)
	}
	if len(tbl16.Rows) != 10 {
		t.Error("Figure 16 incomplete")
	}
	// Shape: the young model's features must include symptom/lifetime
	// counters; at the small test scale (tens of young positives) the
	// exact ranking is noisy, so only structural validity is asserted
	// here. The full-scale report checks the ranking qualitatively in
	// EXPERIMENTS.md.
	for _, row := range tbl16.Rows {
		if len(row) != 5 || row[1] == "" || row[3] == "" {
			t.Fatalf("Figure 16 malformed row: %v", row)
		}
	}
}

func TestTable8Relabeling(t *testing.T) {
	ctx := getCtx(t)
	// Spot-check the relabeling helper on the real fleet.
	m := extractForRelabelTest(ctx)
	relabelErrorOccurrence(m, ctx.Fleet, int(trace.ErrUncorrectable), 2)
	checked := 0
	for i := 0; i < m.Len() && checked < 2000; i++ {
		d := &ctx.Fleet.Drives[m.DriveIdx[i]]
		day := m.Day[i]
		want := int8(0)
		for j := range d.Days {
			if d.Days[j].Day > day && d.Days[j].Day <= day+2 &&
				d.Days[j].Errors[trace.ErrUncorrectable] > 0 {
				want = 1
			}
		}
		if m.Y[i] != want {
			t.Fatalf("row %d (drive %d day %d): label %d, want %d",
				i, m.DriveIdx[i], day, m.Y[i], want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no rows checked")
	}
}

func TestPaperReferenceTablesComplete(t *testing.T) {
	if len(PaperTable1) != 9 {
		t.Errorf("PaperTable1 entries = %d", len(PaperTable1))
	}
	if len(PaperTable6) != 6 {
		t.Errorf("PaperTable6 entries = %d", len(PaperTable6))
	}
	if len(PaperTable8) != 10 {
		t.Errorf("PaperTable8 entries = %d", len(PaperTable8))
	}
	for name, row := range PaperTable6 {
		prev := 1.0
		for i, v := range row {
			if v > prev {
				t.Errorf("%s: paper AUC increases from N=%d to N=%d",
					name, PaperTable6Lookaheads[max(0, i-1)], PaperTable6Lookaheads[i])
			}
			prev = v
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
