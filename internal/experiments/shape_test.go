package experiments

// Golden "shape" tests: the simulated fleet must reproduce the
// qualitative structure of the paper's headline results (paperref.go),
// not just render non-empty tables. Each test recomputes the quantity
// directly from the shared context — the same arithmetic the table
// builders use — so a regression in fleetsim or failure reconstruction
// breaks here with numbers, not with a diffed string.

import (
	"testing"

	"ssdfail/internal/failure"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/trace"
)

// writeErrorIncidence returns, per model, the proportion of drive days
// with at least one transparent write error (Table 1's "write" row).
func writeErrorIncidence(ctx *Context) [trace.NumModels]float64 {
	var days, with [trace.NumModels]float64
	for i := range ctx.Fleet.Drives {
		d := &ctx.Fleet.Drives[i]
		for j := range d.Days {
			days[d.Model]++
			if d.Days[j].Errors[trace.ErrWrite] > 0 {
				with[d.Model]++
			}
		}
	}
	var out [trace.NumModels]float64
	for m := range out {
		if days[m] > 0 {
			out[m] = with[m] / days[m]
		}
	}
	return out
}

// TestTable1WriteIncidenceOrdering pins the paper's most distinctive
// Table 1 feature: MLC-B's write-error incidence dwarfs the other two
// models (0.001309 vs 0.000117 / 0.000162 — roughly an order of
// magnitude). The simulation must keep B clearly on top; we require a
// 4x margin rather than the paper's ~10x so the test tolerates seed
// variance without ever letting the ordering silently flip.
func TestTable1WriteIncidenceOrdering(t *testing.T) {
	ctx := getCtx(t)
	inc := writeErrorIncidence(ctx)
	a, b, d := inc[trace.MLCA], inc[trace.MLCB], inc[trace.MLCD]
	t.Logf("write-error incidence: A=%.6f B=%.6f D=%.6f (paper %.6f/%.6f/%.6f)",
		a, b, d, PaperTable1["write"][0], PaperTable1["write"][1], PaperTable1["write"][2])
	if b <= 0 {
		t.Fatal("MLC-B shows no write errors at all")
	}
	if b < 4*a || b < 4*d {
		t.Errorf("MLC-B write incidence %.6f not dominant over A=%.6f D=%.6f (want ≥4x both)", b, a, d)
	}
	// The paper's reference row itself must have the shape we assert —
	// guards against someone editing paperref.go inconsistently.
	ref := PaperTable1["write"]
	if !(ref[1] > ref[0] && ref[1] > ref[2]) {
		t.Errorf("paper reference lost its B-dominant shape: %v", ref)
	}
}

// TestTable3FailedFractionOrdering pins Table 3's %failed ordering:
// MLC-B (14.3%) > MLC-D (12.5%) > MLC-A (6.95%). The shared 120-drive
// fixture is too small to resolve the D-vs-A gap (~5 points, σ≈3%), so
// the full ordering is checked on a dedicated 600-drives-per-model
// fleet where the gap is ≈4σ; the shared fixture only has to keep
// MLC-B on top. Absolute rates are simulation-calibrated, so ordering
// plus a coarse magnitude band is asserted instead of point values.
func TestTable3FailedFractionOrdering(t *testing.T) {
	ctx := getCtx(t)
	var small [trace.NumModels]float64
	for _, m := range trace.Models {
		n := len(ctx.ModelFleet[m].Drives)
		if n == 0 {
			t.Fatalf("model %v view is empty", m)
		}
		small[m] = float64(ctx.ModelAn[m].FailedDriveCount()) / float64(n)
	}
	if small[trace.MLCB] <= small[trace.MLCA] || small[trace.MLCB] <= small[trace.MLCD] {
		t.Errorf("fixture %%failed: MLC-B %.4f not the maximum (A=%.4f D=%.4f)",
			small[trace.MLCB], small[trace.MLCA], small[trace.MLCD])
	}

	if testing.Short() {
		t.Skip("full-ordering fleet is slow")
	}
	fleet, _, err := fleetsim.Generate(fleetsim.DefaultConfig(4242, 600))
	if err != nil {
		t.Fatal(err)
	}
	an := failure.Analyze(fleet)
	var failed, total [trace.NumModels]float64
	for i := range fleet.Drives {
		m := fleet.Drives[i].Model
		total[m]++
		if len(an.PerDrive[i]) > 0 {
			failed[m]++
		}
	}
	var frac [trace.NumModels]float64
	for m := range frac {
		frac[m] = failed[m] / total[m]
	}
	a, b, d := frac[trace.MLCA], frac[trace.MLCB], frac[trace.MLCD]
	t.Logf("%%failed (n=600/model): A=%.3f B=%.3f D=%.3f (paper %.4f/%.3f/%.3f)",
		a, b, d, PaperTable3["MLC-A"].PctFail/100,
		PaperTable3["MLC-B"].PctFail/100, PaperTable3["MLC-D"].PctFail/100)
	if !(b > d && d > a) {
		t.Errorf("%%failed ordering B > D > A violated: A=%.4f B=%.4f D=%.4f", a, b, d)
	}
	// Every model fails some but nowhere near all of its drives; the
	// paper's fleet-wide rate is 11.3%, so a [1%, 40%] band is generous
	// but still catches a broken failure model in either direction.
	for _, m := range trace.Models {
		if frac[m] < 0.01 || frac[m] > 0.40 {
			t.Errorf("model %v %%failed = %.4f outside plausible band [0.01, 0.40]", m, frac[m])
		}
	}
}

// TestFigure6InfantMortality pins Figure 6's qualitative claim: failures
// concentrate early in drive life (≈15% within 30 days, ≈25% within 90
// days per the paper), far above what a uniform-in-lifetime hazard
// would produce. With a 2190-day horizon, uniform failure ages would
// put only 90/2190 ≈ 4.1% of failures inside the first 90 days; the
// simulated fleet must show a clear multiple of that.
func TestFigure6InfantMortality(t *testing.T) {
	ctx := getCtx(t)
	ages := ctx.An.FailureAges()
	if len(ages) < 10 {
		t.Fatalf("only %d failure ages; fixture too small to test shape", len(ages))
	}
	var w30, w90 int
	for _, a := range ages {
		if a <= 30 {
			w30++
		}
		if a <= 90 {
			w90++
		}
	}
	f30 := float64(w30) / float64(len(ages))
	f90 := float64(w90) / float64(len(ages))
	t.Logf("failures within 30d: %.3f (paper %.2f), within 90d: %.3f (paper %.2f), n=%d",
		f30, PaperFigure6.Within30, f90, PaperFigure6.Within90, len(ages))

	uniform90 := 90 / float64(ctx.Fleet.Horizon)
	if f90 < 3*uniform90 {
		t.Errorf("within-90d failure share %.3f < 3x uniform baseline %.3f; infant mortality missing", f90, 3*uniform90)
	}
	// The early spike must also resemble the paper's scale: at least
	// half its reported 90-day mass, and monotone (30d ≤ 90d share).
	if f90 < PaperFigure6.Within90/2 {
		t.Errorf("within-90d share %.3f below half the paper's %.2f", f90, PaperFigure6.Within90)
	}
	if f30 > f90 {
		t.Errorf("within-30d share %.3f exceeds within-90d share %.3f", f30, f90)
	}
	if f30 <= 0 {
		t.Error("no failures at all within the first 30 days")
	}
}
