package experiments

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the committed experiment golden files")

const table6GoldenPath = "testdata/table6_golden.json"

// goldenTol absorbs cross-platform floating-point noise (libm, FMA
// contraction) without letting a real methodology change slip through:
// any seed, sampling, or classifier change moves AUCs by far more.
const goldenTol = 1e-9

// TestTable6GridGolden is the seed-stability regression: the full
// Table 6 grid at the fixture seed must reproduce the committed
// per-task AUCs exactly. Run with -update after an intentional change
// to the pipeline's numerical behaviour, and review the diff.
func TestTable6GridGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid; skipped in -short mode")
	}
	ctx := getCtx(t)
	res, err := RunTable6Grid(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]float64, len(res.Tasks))
	for i := range res.Tasks {
		got[res.Tasks[i].Key.String()] = res.Tasks[i].AUC
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(table6GoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(table6GoldenPath, res.AUCTable(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cells)", table6GoldenPath, len(got))
		return
	}

	data, err := os.ReadFile(table6GoldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	var want map[string]float64
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing %s: %v", table6GoldenPath, err)
	}
	if len(got) != len(want) {
		t.Errorf("grid has %d tasks, golden has %d", len(got), len(want))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("golden task %q missing from grid", key)
			continue
		}
		if math.Abs(g-w) > goldenTol {
			t.Errorf("%s: AUC = %.17g, golden %.17g (Δ %.3g)", key, g, w, g-w)
		}
	}
	for key := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("grid task %q missing from golden (run with -update?)", key)
		}
	}
}
