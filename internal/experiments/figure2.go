package experiments

import (
	"fmt"
	"strings"

	"ssdfail/internal/report"
)

// Figure2 reproduces the paper's failure-timeline diagram as a concrete
// ASCII rendering of an actual drive from the trace: operational period,
// failure, soft-removal inactivity, non-reporting gap, swap, repair, and
// (when observed) re-entry. The paper's Figure 2 is schematic; grounding
// it in a real reconstructed drive doubles as a worked example of the
// Section 3 definitions.
func Figure2(ctx *Context) *report.Table {
	tbl := &report.Table{
		Title:   "Figure 2: failure timeline, rendered from a reconstructed drive",
		Columns: []string{"event", "fleet day", "detail"},
	}
	// Pick the first failure that was repaired and re-entered, falling
	// back to any failure.
	best := -1
	for i := range ctx.An.Events {
		if ctx.An.Events[i].ReturnDay >= 0 {
			best = i
			break
		}
		if best < 0 {
			best = i
		}
	}
	if best < 0 {
		tbl.AddRow("(no failures in trace)", "-", "-")
		return tbl
	}
	e := &ctx.An.Events[best]
	d := &ctx.Fleet.Drives[e.DriveIdx]

	var periodStart int32 = -1
	for j := range d.Days {
		if d.Days[j].Day <= e.FailDay {
			if periodStart < 0 {
				periodStart = d.Days[j].Day
			}
		}
	}
	lastReport := int32(-1)
	for j := range d.Days {
		if d.Days[j].Day < e.SwapDay && d.Days[j].Day > e.FailDay {
			lastReport = d.Days[j].Day
		}
	}

	tbl.AddRow("enters production", fmt.Sprintf("%d", periodStart),
		fmt.Sprintf("drive %d (%s)", d.ID, d.Model))
	tbl.AddRow("failure (last operational day)", fmt.Sprintf("%d", e.FailDay),
		fmt.Sprintf("age %d days", e.Age))
	if lastReport >= 0 {
		tbl.AddRow("inactive reports end", fmt.Sprintf("%d", lastReport),
			"zero read/write activity ('soft' removal)")
	} else {
		tbl.AddRow("reporting stops", fmt.Sprintf("%d", e.FailDay),
			"no performance summaries before the swap")
	}
	tbl.AddRow("swap (sent to repairs)", fmt.Sprintf("%d", e.SwapDay),
		fmt.Sprintf("non-operational period: %d days", e.NonOpDays))
	if e.ReturnDay >= 0 {
		tbl.AddRow("re-enters the field", fmt.Sprintf("%d", e.ReturnDay),
			fmt.Sprintf("time to repair: %d days", e.RepairDays))
	} else {
		tbl.AddRow("never returns", "∞", "repair not observed to complete")
	}

	// A compact one-line visual of the same timeline.
	span := e.SwapDay - periodStart
	if e.ReturnDay >= 0 {
		span = e.ReturnDay - periodStart
	}
	if span > 0 {
		const width = 60
		line := []byte(strings.Repeat("-", width+1))
		mark := func(day int32, c byte) {
			pos := int(int64(day-periodStart) * int64(width) / int64(span))
			if pos >= 0 && pos < len(line) {
				line[pos] = c
			}
		}
		mark(periodStart, '|')
		mark(e.FailDay, 'F')
		mark(e.SwapDay, 'S')
		if e.ReturnDay >= 0 {
			mark(e.ReturnDay, 'R')
		}
		tbl.Notes = append(tbl.Notes, string(line),
			"| production start   F failure   S swap   R repair re-entry")
	}
	return tbl
}

// HyperparameterGrid demonstrates the paper's §5.2 methodology of grid-
// searching regularization hyperparameters: the random-forest depth is
// swept and the best configuration selected by cross-validated AUC.
func HyperparameterGrid(ctx *Context) (*report.Table, error) {
	// Reuse the ablation machinery through eval.GridSearch so the
	// experiment exercises the public search API.
	tbl, err := gridSearchForestDepth(ctx)
	if err != nil {
		return nil, err
	}
	return tbl, nil
}
