package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ssdfail/internal/serve"
	"ssdfail/internal/trace"
)

// Follower pulls a primary's WAL over GET /v1/wal/stream and applies
// every frame through the local node's durable path. The wire is the
// WAL's own frame format with explicit LSNs; the follower re-verifies
// each frame's CRC and LSN continuity before applying, so a damaged or
// reordered byte stream stops the cursor rather than corrupting the
// replica. The cursor is in-memory only: after a follower restart it
// re-pulls from zero and the store's duplicate rejection makes the
// overlap benign (counted, not applied twice).
type Follower struct {
	// Upstream is the primary's base URL.
	Upstream string
	// Apply applies one replicated record; serve.(*Server).ApplyReplicated
	// is the production implementation.
	Apply func(id uint32, model trace.Model, rec trace.DayRecord) (bool, error)
	// Client is the HTTP client (nil = a dedicated client with sane
	// timeouts).
	Client *http.Client
	// PollInterval is the idle re-poll cadence (0 = 50ms).
	PollInterval time.Duration
	// MaxBytes caps one pull response (0 = server default).
	MaxBytes int

	next    atomic.Uint64 // LSN the next pull starts from
	applied atomic.Uint64
	skipped atomic.Uint64
	pulls   atomic.Uint64

	mu      sync.Mutex
	lastErr error
}

// FollowerStats snapshots replication progress.
type FollowerStats struct {
	// NextLSN is where the next pull resumes (last applied + 1).
	NextLSN uint64
	// Applied and Skipped count records newly applied vs already
	// present; Pulls counts catch-up requests issued.
	Applied uint64
	Skipped uint64
	Pulls   uint64
	// LastErr is the most recent pull/apply error (nil when healthy).
	LastErr error
}

// Stats returns a consistent-enough snapshot for health reporting.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	err := f.lastErr
	f.mu.Unlock()
	return FollowerStats{
		NextLSN: f.next.Load() + 1,
		Applied: f.applied.Load(),
		Skipped: f.skipped.Load(),
		Pulls:   f.pulls.Load(),
		LastErr: err,
	}
}

func (f *Follower) setErr(err error) {
	f.mu.Lock()
	f.lastErr = err
	f.mu.Unlock()
}

// Run pulls until ctx is canceled. Transient pull failures (primary
// down, partitioned, mid-write torn frames) are retried forever at the
// poll cadence — a follower's job during a primary outage is to keep
// trying so promotion hands it a caught-up store.
func (f *Follower) Run(ctx context.Context) error {
	client := f.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	interval := f.PollInterval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		progressed, err := f.pullOnce(ctx, client)
		f.setErr(err)
		if err == nil && progressed {
			// More frames may be waiting; pull again immediately.
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// PullOnce issues a single catch-up pull and applies its frames,
// reporting whether the cursor advanced. It is the step-wise form of
// Run, for callers that interleave tailing with their own work between
// pulls — the continuous-learning trainer pulls a batch, runs drift
// checks over the applied records, and only then pulls again — while
// reusing the same frame verification (CRC via ParseStreamFrame, LSN
// continuity) as the run loop. A nil Client is populated with the run
// loop's default on first use; PullOnce is not safe to use concurrently
// with Run.
func (f *Follower) PullOnce(ctx context.Context) (bool, error) {
	if f.Client == nil {
		f.Client = &http.Client{Timeout: 10 * time.Second}
	}
	progressed, err := f.pullOnce(ctx, f.Client)
	f.setErr(err)
	return progressed, err
}

// pullOnce issues one catch-up request and applies its frames,
// reporting whether the cursor advanced.
func (f *Follower) pullOnce(ctx context.Context, client *http.Client) (bool, error) {
	from := f.next.Load() + 1
	url := fmt.Sprintf("%s/v1/wal/stream?from=%d", f.Upstream, from)
	if f.MaxBytes > 0 {
		url += fmt.Sprintf("&max_bytes=%d", f.MaxBytes)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	f.pulls.Add(1)
	resp, err := client.Do(req)
	if err != nil {
		return false, err
	}
	//ssdlint:allow droppederr response body close on a fully-read or abandoned pull; the next poll re-pulls from the cursor
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return false, fmt.Errorf("cluster: pull from %s: status %d: %s", f.Upstream, resp.StatusCode, body)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return false, err
	}
	progressed := false
	expect := from
	for len(data) > 0 {
		n, lsn, payload := serve.ParseStreamFrame(data)
		if n == 0 {
			// Torn or checksum-failed frame: stop here, keep what was
			// applied, re-poll from the cursor.
			return progressed, errors.New("cluster: damaged frame on catch-up wire")
		}
		if lsn != expect {
			return progressed, fmt.Errorf("cluster: catch-up wire skipped from %d to %d", expect, lsn)
		}
		id, model, rec, err := serve.DecodeWALRecord(payload)
		if err != nil {
			// Version skew: the primary logged a record this build cannot
			// decode. Skipping would silently lose it on the replica, so
			// stop the cursor and surface the error instead.
			return progressed, fmt.Errorf("cluster: undecodable replicated record at lsn %d: %w", lsn, err)
		}
		applied, err := f.Apply(id, model, rec)
		if err != nil {
			return progressed, err
		}
		if applied {
			f.applied.Add(1)
		} else {
			f.skipped.Add(1)
		}
		f.next.Store(lsn)
		progressed = true
		expect = lsn + 1
		data = data[n:]
	}
	return progressed, nil
}
