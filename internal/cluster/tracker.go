package cluster

import (
	"bytes"
	"fmt"
	"sort"
)

// Tracker is the deterministic failover state machine: probe outcomes
// go in, node up/down transitions and sticky follower promotions come
// out. It is pure state — no clocks, no goroutines, no I/O — so the
// same probe history always yields the same event log, which is what
// the committed partition scenarios under scenarios/cluster/ replay
// and diff byte for byte. The live prober feeds it real probe results
// under the router's lock.
//
// Hysteresis mirrors the remediation engine's: an endpoint is marked
// down after DownAfter consecutive failed probes and up again after
// UpAfter consecutive successes. Promotion is one-way ("sticky"):
// once a partition's primary is down and its follower is up, writes
// and reads for that partition target the follower until the process
// is reconfigured — flapping a half-recovered primary back into
// rotation is how split-brain ingest happens, and the WAL stream only
// flows primary→follower.
type Tracker struct {
	downAfter int
	upAfter   int

	order []string // endpoint names in declaration order (probe order)
	eps   map[string]*endpoint
	parts []*partitionState

	events []Event
	log    bytes.Buffer
}

// Partition declares one ring partition: a primary endpoint and an
// optional follower endpoint that replicates the primary's WAL.
type Partition struct {
	Primary  string
	Follower string // empty = no failover target
}

type endpoint struct {
	name       string
	up         bool
	consecFail int
	consecOK   int
}

type partitionState struct {
	Partition
	promoted bool
}

// Event is one tracker state transition.
type Event struct {
	Tick int
	Node string
	Kind string // "down", "up", "promote"
	// Target is the promotion target (promote events only).
	Target string
}

func (e Event) String() string {
	if e.Kind == "promote" {
		return fmt.Sprintf("t=%d node=%s event=promote target=%s", e.Tick, e.Node, e.Target)
	}
	return fmt.Sprintf("t=%d node=%s event=%s", e.Tick, e.Node, e.Kind)
}

// NewTracker builds a tracker over the given partitions. Every
// endpoint starts up — a router boots optimistic and lets the first
// probe round correct it. downAfter/upAfter <= 0 default to 3 and 2.
func NewTracker(parts []Partition, downAfter, upAfter int) (*Tracker, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("cluster: tracker needs at least one partition")
	}
	if downAfter <= 0 {
		downAfter = 3
	}
	if upAfter <= 0 {
		upAfter = 2
	}
	t := &Tracker{downAfter: downAfter, upAfter: upAfter, eps: make(map[string]*endpoint)}
	add := func(name string) error {
		if name == "" {
			return fmt.Errorf("cluster: empty endpoint name")
		}
		if _, dup := t.eps[name]; dup {
			return fmt.Errorf("cluster: endpoint %q declared twice", name)
		}
		t.eps[name] = &endpoint{name: name, up: true}
		t.order = append(t.order, name)
		return nil
	}
	for _, p := range parts {
		if err := add(p.Primary); err != nil {
			return nil, err
		}
		if p.Follower != "" {
			if err := add(p.Follower); err != nil {
				return nil, err
			}
		}
		t.parts = append(t.parts, &partitionState{Partition: p})
	}
	return t, nil
}

// Endpoints returns the endpoint names in declaration order — the
// canonical probe order, so concurrent probers that apply results in
// this order produce identical logs.
func (t *Tracker) Endpoints() []string { return append([]string(nil), t.order...) }

// Observe feeds one probe outcome and returns the transitions it
// caused. Tick is the probe round (1-based); it only labels events.
func (t *Tracker) Observe(tick int, name string, ok bool) []Event {
	ep := t.eps[name]
	if ep == nil {
		return nil
	}
	var out []Event
	emit := func(e Event) {
		t.events = append(t.events, e)
		fmt.Fprintf(&t.log, "%s\n", e.String())
		out = append(out, e)
	}
	if ok {
		ep.consecFail = 0
		ep.consecOK++
		if !ep.up && ep.consecOK >= t.upAfter {
			ep.up = true
			emit(Event{Tick: tick, Node: name, Kind: "up"})
		}
	} else {
		ep.consecOK = 0
		ep.consecFail++
		if ep.up && ep.consecFail >= t.downAfter {
			ep.up = false
			emit(Event{Tick: tick, Node: name, Kind: "down"})
		}
	}
	// Promotion is re-checked on every transition, not just the
	// primary's down event: a partition whose primary died while the
	// follower was also unreachable promotes the moment the follower
	// comes back.
	for _, p := range t.parts {
		if p.promoted || p.Follower == "" {
			continue
		}
		if !t.eps[p.Primary].up && t.eps[p.Follower].up {
			p.promoted = true
			emit(Event{Tick: tick, Node: p.Primary, Kind: "promote", Target: p.Follower})
		}
	}
	return out
}

// Up reports whether an endpoint is currently considered healthy.
func (t *Tracker) Up(name string) bool {
	ep := t.eps[name]
	return ep != nil && ep.up
}

// Active returns the endpoint requests for a partition should target:
// the follower once promoted, the primary otherwise.
func (t *Tracker) Active(primary string) string {
	for _, p := range t.parts {
		if p.Primary == primary {
			if p.promoted {
				return p.Follower
			}
			return p.Primary
		}
	}
	return primary
}

// Promoted reports whether a partition has failed over.
func (t *Tracker) Promoted(primary string) bool {
	for _, p := range t.parts {
		if p.Primary == primary {
			return p.promoted
		}
	}
	return false
}

// EventLog returns the canonical event log: one line per transition,
// in the order they were observed.
func (t *Tracker) EventLog() []byte {
	return append([]byte(nil), t.log.Bytes()...)
}

// Events returns all transitions so far.
func (t *Tracker) Events() []Event { return append([]Event(nil), t.events...) }

// EndpointStatus is one endpoint's health snapshot.
type EndpointStatus struct {
	Name     string `json:"name"`
	Up       bool   `json:"up"`
	Role     string `json:"role"` // "primary" or "follower"
	Active   bool   `json:"active"`
	Promoted bool   `json:"promoted,omitempty"`
}

// Status snapshots every endpoint, sorted by name.
func (t *Tracker) Status() []EndpointStatus {
	var out []EndpointStatus
	for _, p := range t.parts {
		active := t.Active(p.Primary)
		out = append(out, EndpointStatus{
			Name: p.Primary, Up: t.eps[p.Primary].up, Role: "primary",
			Active: active == p.Primary, Promoted: p.promoted,
		})
		if p.Follower != "" {
			out = append(out, EndpointStatus{
				Name: p.Follower, Up: t.eps[p.Follower].up, Role: "follower",
				Active: active == p.Follower,
			})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}
