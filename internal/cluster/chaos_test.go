package cluster

// The cluster chaos suite: a 3-node ssdserved fleet behind ssdrouter's
// routing tier, driven by a deterministic loadgen schedule while the
// harness kill -9s one node mid-run and partitions another at the
// network layer. The pass criterion is the clustered zero-loss
// contract: every record the cluster ever acknowledged is present in
// per-drive end state read back through the router, and fleet queries
// during the partition degrade explicitly instead of erroring or
// silently truncating.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"testing"
	"time"

	"ssdfail/internal/faultfs"
	"ssdfail/internal/loadgen"
	"ssdfail/internal/serve"
)

// chaosNode is an ssdserved node the harness can kill -9 and restart:
// the HTTP server is closed abruptly and the serve.Server — journal
// included — is abandoned without any shutdown path, exactly like a
// SIGKILL. Restart rebinds the same address behind a readiness Gate and
// recovers from the same WAL directory.
type chaosNode struct {
	name   string
	walDir string
	addr   string

	srv     *serve.Server
	httpSrv *http.Server
}

func startChaosNode(t *testing.T, n *chaosNode) {
	t.Helper()
	addr := n.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("node %s: listen %s: %v", n.name, addr, err)
	}
	n.addr = ln.Addr().String()

	// The listener answers before recovery begins — as the starting
	// phase of the readiness contract, not as a ready node.
	gate := NewGate()
	n.httpSrv = &http.Server{Handler: gate}
	go n.httpSrv.Serve(ln) //nolint — Serve returns ErrServerClosed on kill

	srv, err := serve.New(serve.Config{
		ModelPath:    fixModelPath,
		WALDir:       n.walDir,
		NodeName:     n.name,
		WALSyncEvery: 1, // every ack durable before it is sent
	})
	if err != nil {
		t.Fatalf("node %s: serve.New: %v", n.name, err)
	}
	n.srv = srv
	gate.Ready(srv.Handler())
}

func (n *chaosNode) url() string { return "http://" + n.addr }

// kill closes the listener and every open connection immediately and
// abandons the server state — no journal close, no flush, no drain.
func (n *chaosNode) kill() {
	n.httpSrv.Close()
	n.srv = nil
}

// getHealth fetches /v1/health and returns (code, status field).
func getHealth(url string) (int, string, error) {
	resp, err := http.Get(url + "/v1/health")
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return resp.StatusCode, "", err
	}
	return resp.StatusCode, body.Status, nil
}

func TestClusterChaosZeroAcceptedRecordLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is slow")
	}

	// --- Topology: n1 (kill target, no follower), n2 (partition target
	// behind a faultfs proxy, replicated to follower f2), n3 (plain).
	n1 := &chaosNode{name: "n1", walDir: t.TempDir()}
	startChaosNode(t, n1)
	t.Cleanup(func() {
		if n1.httpSrv != nil {
			n1.httpSrv.Close()
		}
	})

	srv2, ts2 := newNode(t, "n2")
	_ = srv2
	proxy, err := faultfs.NewProxy(ts2.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	f2srv, f2ts := newNode(t, "f2")
	// f2 replicates from n2's direct address: the proxy models a client-
	// facing network fault, not a replication-link fault, so promotion
	// onto f2 is lossless.
	fol := &Follower{Upstream: ts2.URL, Apply: f2srv.ApplyReplicated, PollInterval: 10 * time.Millisecond}
	folCtx, folCancel := context.WithCancel(context.Background())
	defer folCancel()
	go fol.Run(folCtx)

	_, ts3 := newNode(t, "n3")

	rt, rts := newTestRouter(t, RouterConfig{
		Nodes: []Node{
			{Name: "n1", URL: n1.url()},
			{Name: "n2", URL: "http://" + proxy.Addr(), FollowerName: "f2", FollowerURL: f2ts.URL},
			{Name: "n3", URL: ts3.URL},
		},
		ProbeInterval:   20 * time.Millisecond,
		PerNodeDeadline: 300 * time.Millisecond,
		HedgeAfter:      50 * time.Millisecond,
	})
	waitFor(t, 5*time.Second, "initial probes to settle", rt.AllUp)

	// --- Deterministic schedule. Days == DefaultHistory so the exact
	// per-drive day-count check is the loss oracle: any accepted-then-
	// lost record leaves a drive one day short.
	lcfg := loadgen.DefaultConfig(31)
	lcfg.DrivesPerModel = 24
	lcfg.HorizonDays = 150
	lcfg.Days = int32(serve.DefaultHistory)
	lcfg.BatchSize = 8
	lcfg.ProbeEvery = 4
	lcfg.ReloadMidRun = false // a broadcast reload during an outage is a different test
	sched, err := loadgen.Build(lcfg)
	if err != nil {
		t.Fatal(err)
	}

	runner := &loadgen.Runner{
		BaseURL:        rts.URL,
		RetryTransient: true, // cluster mode: re-sends are benign duplicates
		Seed:           7,
		MaxShedRetries: 128,
	}

	// --- The chaos plan, keyed to accepted-record fractions.
	var degradedWatch struct {
		Count    int      `json:"count"`
		Degraded []string `json:"degraded"`
	}
	plan := &loadgen.ChaosPlan{Actions: []loadgen.ChaosAction{
		{AtFraction: 0.25, Name: "kill-n1-restart", Do: func() error {
			n1.kill()
			// Every batch spanning n1's partition now fails; the
			// clients bridge the outage with capped backoff while the
			// node is gone. kill -9 semantics: no flush, no close.
			time.Sleep(1500 * time.Millisecond)
			startChaosNode(t, n1)
			return nil
		}},
		{AtFraction: 0.55, Name: "partition-n2", Do: func() error {
			proxy.Partition()
			// A fleet query scattered before failover must come back
			// degraded — 200 with the dark node named — within the
			// per-node deadline, never an error or a silent truncation.
			resp, err := http.Get(rts.URL + "/v1/watchlist?threshold=0&k=100000")
			if err != nil {
				return fmt.Errorf("watchlist during partition: %w", err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("watchlist during partition: status %d, want 200", resp.StatusCode)
			}
			return json.NewDecoder(resp.Body).Decode(&degradedWatch)
		}},
		{AtFraction: 0.80, Name: "heal-n2", Do: func() error {
			proxy.Heal()
			return nil
		}},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	chaosDone := make(chan error, 1)
	go func() { chaosDone <- plan.RunChaos(ctx, runner, sched.TotalRecords) }()

	res, err := runner.Run(ctx, sched)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := <-chaosDone; err != nil {
		t.Fatalf("chaos plan: %v", err)
	}
	if plan.Fired() != len(plan.Actions) {
		t.Fatalf("only %d/%d chaos actions fired", plan.Fired(), len(plan.Actions))
	}

	// The mid-partition fleet query degraded explicitly.
	if len(degradedWatch.Degraded) == 0 {
		t.Error("watchlist during partition reported no degraded endpoints")
	}
	if degradedWatch.Count == 0 {
		t.Error("watchlist during partition silently dropped the healthy partitions' items")
	}

	// The chaos actually exercised the retry machinery.
	if res.ShedRetries+res.TransientRetries == 0 {
		t.Error("no retries recorded — the chaos plan did not disturb the run")
	}
	if res.DroppedRecords != 0 {
		t.Fatalf("%d records dropped: the retry budget did not bridge the chaos window", res.DroppedRecords)
	}

	// --- The zero-loss oracle: per-drive end state through the router,
	// exact to the day, for every drive the schedule replayed.
	violations, err := runner.Verify(ctx, res, loadgen.VerifyOptions{
		History: serve.DefaultHistory,
		Cluster: true,
	})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	for _, v := range violations {
		t.Errorf("conformance: %s", v)
	}

	// The partitioned node's traffic failed over to its follower and
	// stayed there (sticky promotion), which is where the verified state
	// now lives.
	promoted := false
	for _, s := range rt.TrackerStatus() {
		if s.Name == "f2" && s.Active {
			promoted = true
		}
	}
	if !promoted {
		t.Error("n2's partition did not fail over to f2")
	}

	// CI artifact: the cluster conformance report.
	if path := os.Getenv("SSDFAIL_CLUSTER_REPORT"); path != "" {
		full := struct {
			*loadgen.Report
			Chaos         []loadgen.ChaosLogEntry `json:"chaos"`
			DegradedProbe []string                `json:"degraded_probe"`
		}{loadgen.NewReport(res, violations, true), plan.Log(), degradedWatch.Degraded}
		data, err := json.MarshalIndent(full, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRouterBinaryWireIngest drives the binary ingest wire end to end
// through the router — frames split by ring owner without re-encoding —
// across a kill -9 and recovery of one node, and holds the run to the
// same zero-loss contract as the JSON wire: every acknowledged record
// present in per-drive end state, exact to the day.
func TestRouterBinaryWireIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is slow")
	}

	n1 := &chaosNode{name: "b1", walDir: t.TempDir()}
	startChaosNode(t, n1)
	t.Cleanup(func() {
		if n1.httpSrv != nil {
			n1.httpSrv.Close()
		}
	})
	_, ts2 := newNode(t, "b2")

	rt, rts := newTestRouter(t, RouterConfig{
		Nodes: []Node{
			{Name: "b1", URL: n1.url()},
			{Name: "b2", URL: ts2.URL},
		},
		ProbeInterval:   20 * time.Millisecond,
		PerNodeDeadline: 300 * time.Millisecond,
	})
	waitFor(t, 5*time.Second, "initial probes to settle", rt.AllUp)

	lcfg := loadgen.DefaultConfig(43)
	lcfg.DrivesPerModel = 16
	lcfg.HorizonDays = 150
	lcfg.Days = int32(serve.DefaultHistory)
	lcfg.BatchSize = 8
	lcfg.ProbeEvery = 4
	lcfg.ReloadMidRun = false
	lcfg.Wire = loadgen.WireBinary
	sched, err := loadgen.Build(lcfg)
	if err != nil {
		t.Fatal(err)
	}

	runner := &loadgen.Runner{
		BaseURL:        rts.URL,
		RetryTransient: true, // cluster mode: re-sends are benign duplicates
		Seed:           7,
		MaxShedRetries: 128,
	}

	plan := &loadgen.ChaosPlan{Actions: []loadgen.ChaosAction{
		{AtFraction: 0.4, Name: "kill-b1-restart", Do: func() error {
			n1.kill()
			time.Sleep(1 * time.Second)
			startChaosNode(t, n1)
			return nil
		}},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	chaosDone := make(chan error, 1)
	go func() { chaosDone <- plan.RunChaos(ctx, runner, sched.TotalRecords) }()

	res, err := runner.Run(ctx, sched)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := <-chaosDone; err != nil {
		t.Fatalf("chaos plan: %v", err)
	}
	if plan.Fired() != len(plan.Actions) {
		t.Fatalf("only %d/%d chaos actions fired", plan.Fired(), len(plan.Actions))
	}

	if res.ShedRetries+res.TransientRetries == 0 {
		t.Error("no retries recorded — the kill did not disturb the run")
	}
	if res.DroppedRecords != 0 {
		t.Fatalf("%d records dropped: the retry budget did not bridge the outage", res.DroppedRecords)
	}

	violations, err := runner.Verify(ctx, res, loadgen.VerifyOptions{
		History: serve.DefaultHistory,
		Cluster: true,
	})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	for _, v := range violations {
		t.Errorf("conformance: %s", v)
	}
}

// TestReadinessGateHoldsUntilRecovery pins the starting-phase contract
// on its own: a gated listener answers 503 {"status":"starting"} with a
// Retry-After hint until the handler is swapped in.
func TestReadinessGateHoldsUntilRecovery(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gate := NewGate()
	hs := &http.Server{Handler: gate}
	go hs.Serve(ln)
	defer hs.Close()
	url := "http://" + ln.Addr().String()

	code, status, err := getHealth(url)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusServiceUnavailable || status != "starting" {
		t.Fatalf("gated health = %d %q, want 503 starting", code, status)
	}

	resp, err := http.Get(url + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	ra := resp.Header.Get("Retry-After")
	resp.Body.Close()
	if ra == "" {
		t.Fatal("starting response carries no Retry-After hint")
	}

	gate.Ready(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"ready"}`)
	}))
	code, status, err = getHealth(url)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || status != "ready" {
		t.Fatalf("ready health = %d %q", code, status)
	}
}
