package cluster

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite partition-scenario golden event logs")

// clusterScenariosDir is the committed partition-scenario corpus,
// relative to this package.
const clusterScenariosDir = "../../scenarios/cluster"

func listClusterScenarios(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(clusterScenariosDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no scenarios under %s", clusterScenariosDir)
	}
	sort.Strings(paths)
	return paths
}

// TestPartitionScenariosAgainstGoldens replays every committed
// partition scenario through the tracker, requires every assertion to
// hold, and diffs the failover event log byte for byte against
// scenarios/cluster/golden/<name>.eventlog. Run with -update to
// rewrite the goldens after an intentional tracker change.
func TestPartitionScenariosAgainstGoldens(t *testing.T) {
	for _, path := range listClusterScenarios(t) {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			sc, err := LoadClusterScenario(path)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("assertion violations:\n  %s", strings.Join(res.Violations, "\n  "))
			}
			golden := filepath.Join(clusterScenariosDir, "golden", sc.Name+".eventlog")
			if *updateGolden {
				if err := os.WriteFile(golden, res.EventLog, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create it)", err)
			}
			if !bytes.Equal(res.EventLog, want) {
				t.Fatalf("event log drifted from golden %s:\n--- got ---\n%s--- want ---\n%s",
					golden, res.EventLog, want)
			}
		})
	}
}

// TestPartitionScenariosAreDeterministic replays each scenario twice
// and requires byte-identical logs — the tracker is pure state, so any
// divergence means hidden nondeterminism crept into the failover path.
func TestPartitionScenariosAreDeterministic(t *testing.T) {
	for _, path := range listClusterScenarios(t) {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			sc, err := LoadClusterScenario(path)
			if err != nil {
				t.Fatal(err)
			}
			a, err := RunScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.EventLog, b.EventLog) {
				t.Fatal("same scenario produced two different event logs")
			}
		})
	}
}

func TestClusterScenarioValidationRejectsBadDocuments(t *testing.T) {
	bad := []string{
		`{"name":"x","rounds":0,"partitions":[{"primary":"a"}]}`,
		`{"name":"x","rounds":5,"partitions":[]}`,
		`{"name":"x","rounds":5,"partitions":[{"primary":"a"},{"primary":"a"}]}`,
		`{"name":"x","rounds":5,"partitions":[{"primary":"a"}],"events":[{"at":9,"partition":"a"}]}`,
		`{"name":"x","rounds":5,"partitions":[{"primary":"a"}],"events":[{"at":1,"partition":"zz"}]}`,
		`{"name":"x","rounds":5,"partitions":[{"primary":"a"}],"assertions":[{"type":"active","node":"a","want":"follower"},{"type":"nope"}]}`,
		`{"name":"x","rounds":5,"partitions":[{"primary":"a"}],"unknown_key":1}`,
	}
	for i, doc := range bad {
		if _, err := ParseClusterScenario([]byte(doc)); err == nil {
			t.Errorf("bad document %d accepted", i)
		}
	}
}
