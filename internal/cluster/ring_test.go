package cluster

import (
	"testing"
)

func TestRingAssignmentsAreDeterministic(t *testing.T) {
	names := []string{"n1", "n2", "n3"}
	a, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n3", "n1", "n2"}, 0) // declaration order must not matter
	if err != nil {
		t.Fatal(err)
	}
	for id := uint32(0); id < 10000; id++ {
		if a.Owner(id) != b.Owner(id) {
			t.Fatalf("drive %d: ring disagreement %s vs %s — two routers would split writes",
				id, a.Owner(id), b.Owner(id))
		}
	}
}

func TestRingSpreadsLoad(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 30000
	for id := uint32(0); id < n; id++ {
		counts[r.Owner(id)]++
	}
	if len(counts) != 3 {
		t.Fatalf("only %d partitions received drives: %v", len(counts), counts)
	}
	for name, c := range counts {
		frac := float64(c) / n
		if frac < 0.20 || frac > 0.47 {
			t.Errorf("partition %s owns %.1f%% of drives, want roughly a third (%v)",
				name, frac*100, counts)
		}
	}
}

func TestRingMinimalRemapOnGrowth(t *testing.T) {
	three, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	four, err := NewRing([]string{"n1", "n2", "n3", "n4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	moved := 0
	for id := uint32(0); id < n; id++ {
		before, after := three.Owner(id), four.Owner(id)
		if before != after {
			moved++
			if after != "n4" {
				t.Fatalf("drive %d moved %s -> %s; growth may only move drives to the new partition",
					id, before, after)
			}
		}
	}
	// Consistent hashing moves ~1/4 of keys when going 3 -> 4.
	if frac := float64(moved) / n; frac < 0.10 || frac > 0.40 {
		t.Errorf("adding a partition moved %.1f%% of drives, want ~25%%", frac*100)
	}
}

func TestRingRejectsBadTopology(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate partition accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Error("empty partition name accepted")
	}
}
