package cluster

import (
	"strings"
	"testing"
)

func twoPartTracker(t *testing.T) *Tracker {
	t.Helper()
	tr, err := NewTracker([]Partition{
		{Primary: "n1", Follower: "f1"},
		{Primary: "n2"},
	}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTrackerHysteresis(t *testing.T) {
	tr := twoPartTracker(t)
	// Two misses: still up (down_after = 3).
	tr.Observe(1, "n2", false)
	tr.Observe(2, "n2", false)
	if !tr.Up("n2") {
		t.Fatal("n2 marked down after 2 of 3 misses")
	}
	// A success resets the streak.
	tr.Observe(3, "n2", true)
	tr.Observe(4, "n2", false)
	tr.Observe(5, "n2", false)
	if !tr.Up("n2") {
		t.Fatal("n2 down though the failure streak was reset")
	}
	// Third consecutive miss: down.
	tr.Observe(6, "n2", false)
	tr.Observe(7, "n2", false)
	if tr.Up("n2") {
		t.Fatal("n2 still up after 3 consecutive misses")
	}
	// One success is not enough to come back (up_after = 2).
	tr.Observe(8, "n2", true)
	if tr.Up("n2") {
		t.Fatal("n2 up after a single good probe")
	}
	tr.Observe(9, "n2", true)
	if !tr.Up("n2") {
		t.Fatal("n2 still down after 2 consecutive good probes")
	}
}

func TestTrackerPromotionIsSticky(t *testing.T) {
	tr := twoPartTracker(t)
	for tick := 1; tick <= 3; tick++ {
		tr.Observe(tick, "n1", false)
		tr.Observe(tick, "f1", true)
	}
	if !tr.Promoted("n1") || tr.Active("n1") != "f1" {
		t.Fatalf("n1 not failed over: promoted=%v active=%s", tr.Promoted("n1"), tr.Active("n1"))
	}
	// The primary recovering must NOT move traffic back: the WAL stream
	// only flows primary -> follower, so flapping back splits the brain.
	for tick := 4; tick <= 8; tick++ {
		tr.Observe(tick, "n1", true)
	}
	if !tr.Up("n1") {
		t.Fatal("n1 not marked up after recovery")
	}
	if tr.Active("n1") != "f1" {
		t.Fatalf("promotion reverted to %s; it must be sticky", tr.Active("n1"))
	}
}

func TestTrackerPromotesWhenFollowerReturnsLate(t *testing.T) {
	// The follower is known-down before the primary crosses its own
	// threshold; promotion must fire the moment the follower comes
	// back, not only on the primary's down edge.
	tr := twoPartTracker(t)
	for tick := 1; tick <= 3; tick++ {
		tr.Observe(tick, "f1", false)
	}
	for tick := 2; tick <= 4; tick++ {
		tr.Observe(tick, "n1", false)
	}
	if tr.Promoted("n1") {
		t.Fatal("promoted onto a known-dead follower")
	}
	tr.Observe(5, "f1", true)
	evs := tr.Observe(6, "f1", true)
	found := false
	for _, e := range evs {
		if e.Kind == "promote" && e.Node == "n1" && e.Target == "f1" {
			found = true
		}
	}
	if !found || !tr.Promoted("n1") {
		t.Fatalf("no promotion when the follower recovered: events %v", evs)
	}
}

func TestTrackerEventLogIsCanonical(t *testing.T) {
	tr := twoPartTracker(t)
	for tick := 1; tick <= 3; tick++ {
		tr.Observe(tick, "n1", false)
		tr.Observe(tick, "f1", true)
	}
	log := string(tr.EventLog())
	want := "t=3 node=n1 event=down\nt=3 node=n1 event=promote target=f1\n"
	if log != want {
		t.Fatalf("event log:\n%q\nwant:\n%q", log, want)
	}
	if !strings.HasSuffix(log, "\n") {
		t.Fatal("log must end with a newline")
	}
}

func TestTrackerStatusRoles(t *testing.T) {
	tr := twoPartTracker(t)
	st := tr.Status()
	if len(st) != 3 {
		t.Fatalf("status has %d endpoints, want 3", len(st))
	}
	byName := map[string]EndpointStatus{}
	for _, s := range st {
		byName[s.Name] = s
	}
	if byName["n1"].Role != "primary" || !byName["n1"].Active {
		t.Errorf("n1 status wrong: %+v", byName["n1"])
	}
	if byName["f1"].Role != "follower" || byName["f1"].Active {
		t.Errorf("f1 status wrong: %+v", byName["f1"])
	}
}
