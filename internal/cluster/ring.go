package cluster

import (
	"fmt"
	"sort"
)

// Ring assigns drive IDs to partitions by consistent hashing. Each
// partition contributes vnodes points hashed from its name, and a
// drive ID is spread with the store's own multiplicative scheme
// (id * 2654435761, the same mix internal/serve uses to shard its
// map) before walking clockwise to the first point. Adding or removing
// one partition therefore remaps only ~1/N of the ID space, and two
// routers configured with the same partition names agree on every
// assignment without talking to each other.
type Ring struct {
	names  []string
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	idx  int // into names
}

// DefaultVnodes is the per-partition point count; at 128 points the
// max/min partition load ratio stays within a few percent.
const DefaultVnodes = 128

// fnv1a is FNV-1a over a byte string, inlined so the hot Owner path
// allocates nothing. The raw FNV state is finished with a splitmix64
// finalizer: FNV alone leaves the high bits of short, similar strings
// ("n1#0", "n1#1", ...) correlated, which makes ring arcs — and thus
// partition load — wildly uneven.
func fnv1a(data []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// NewRing builds a ring over the given partition names (vnodes <= 0
// means DefaultVnodes). Names must be unique and non-empty.
func NewRing(names []string, vnodes int) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one partition")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(names))
	r := &Ring{names: append([]string(nil), names...)}
	r.points = make([]ringPoint, 0, len(names)*vnodes)
	for i, name := range r.names {
		if name == "" {
			return nil, fmt.Errorf("cluster: empty partition name")
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate partition %q", name)
		}
		seen[name] = true
		for v := 0; v < vnodes; v++ {
			point := fnv1a([]byte(fmt.Sprintf("%s#%d", name, v)))
			r.points = append(r.points, ringPoint{hash: point, idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		pa, pb := r.points[a], r.points[b]
		if pa.hash != pb.hash {
			return pa.hash < pb.hash
		}
		// Hash ties break on the stable name order so every router
		// resolves them identically.
		return r.names[pa.idx] < r.names[pb.idx]
	})
	return r, nil
}

// Owner returns the partition name owning a drive ID.
func (r *Ring) Owner(id uint32) string {
	// The store's multiplicative mix spreads sequential IDs; folding it
	// through FNV-1a decorrelates the key from the point hashes.
	mixed := id * 2654435761
	key := fnv1a([]byte{byte(mixed), byte(mixed >> 8), byte(mixed >> 16), byte(mixed >> 24)})
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.names[r.points[i].idx]
}

// Partitions returns the partition names in declaration order.
func (r *Ring) Partitions() []string { return append([]string(nil), r.names...) }
