package cluster

// Shared fixture for the cluster tests: a simulated fleet and a small
// trained predictor on disk, built once, plus helpers that boot real
// ssdserved nodes over httptest and front them with a Router.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ssdfail/internal/core"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/ml/forest"
	"ssdfail/internal/serve"
	"ssdfail/internal/trace"
)

var (
	fixFleet     *trace.Fleet
	fixModelPath string
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "ssdcluster-test")
	if err != nil {
		log.Fatal(err)
	}
	cfg := fleetsim.DefaultConfig(7, 60)
	cfg.HorizonDays = 400
	cfg.EarlyWindow = 150
	fleet, _, err := fleetsim.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fixFleet = fleet
	fcfg := forest.DefaultConfig()
	fcfg.Trees = 10
	fcfg.Seed = 7
	pred, err := core.NewStudy(fleet).TrainPredictor(core.PredictorOptions{
		Lookahead: 3, Factory: forest.NewFactory(fcfg), Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fixModelPath = filepath.Join(dir, "model.bin")
	if err := pred.Save(fixModelPath); err != nil {
		log.Fatal(err)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// newNode boots a WAL-backed ssdserved with the fixture model.
func newNode(t *testing.T, name string) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv, err := serve.New(serve.Config{
		ModelPath: fixModelPath,
		WALDir:    t.TempDir(),
		NodeName:  name,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// newTestRouter builds and starts a router with a fast probe cadence;
// the probe loop stops at test cleanup.
func newTestRouter(t *testing.T, cfg RouterConfig) (*Router, *httptest.Server) {
	t.Helper()
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 20 * time.Millisecond
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	rt.Start(ctx)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

// fleetRecords collects, for every fixture drive with at least offset+1
// reports, the report offset steps back from its last one.
func fleetRecords(offset int) []serve.IngestRecord {
	var out []serve.IngestRecord
	for di := range fixFleet.Drives {
		d := &fixFleet.Drives[di]
		j := len(d.Days) - 1 - offset
		if j < 0 {
			continue
		}
		out = append(out, serve.WireRecord(d.ID, d.Model, &d.Days[j]))
	}
	return out
}

func postJSON(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(b, out); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
	}
	return resp.StatusCode
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
