package cluster

import (
	"context"
	"net/http"
	"strconv"
	"testing"
	"time"
)

// TestFollowerReplicatesWAL drives real records into a WAL-backed
// primary and proves a Follower pulling its stream over HTTP converges
// the replica to the same drive states.
func TestFollowerReplicatesWAL(t *testing.T) {
	primary, pts := newNode(t, "n1")
	replica, rts := newNode(t, "f1")

	code, body := postJSON(t, pts.URL+"/v1/ingest/batch", fleetRecords(1))
	if code != http.StatusAccepted {
		t.Fatalf("batch status %d: %s", code, body)
	}

	fol := &Follower{
		Upstream:     pts.URL,
		Apply:        replica.ApplyReplicated,
		PollInterval: 5 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- fol.Run(ctx) }()

	want := primary.CounterSnapshot()["ssdserved_ingest_records_total"]
	waitFor(t, 5*time.Second, "replica to catch up", func() bool {
		return float64(fol.Stats().Applied) == want
	})

	// More records accepted while the follower is live must flow too.
	code, body = postJSON(t, pts.URL+"/v1/ingest/batch", fleetRecords(0))
	if code != http.StatusAccepted {
		t.Fatalf("second batch status %d: %s", code, body)
	}
	want = primary.CounterSnapshot()["ssdserved_ingest_records_total"]
	waitFor(t, 5*time.Second, "replica to stream the live tail", func() bool {
		return float64(fol.Stats().Applied) == want
	})

	st := fol.Stats()
	if st.LastErr != nil {
		t.Fatalf("follower unhealthy: %v", st.LastErr)
	}
	if st.Skipped != 0 {
		t.Fatalf("replica skipped %d records on a clean stream", st.Skipped)
	}
	if st.NextLSN != uint64(want)+1 {
		t.Fatalf("cursor at %d, want %d", st.NextLSN, uint64(want)+1)
	}

	cancel()
	if err := <-done; err != nil && err != context.Canceled {
		t.Fatalf("follower run: %v", err)
	}

	// Both sides agree on a spot-checked drive's served state.
	var pd, rd struct {
		DriveID uint32  `json:"drive_id"`
		Days    int     `json:"days"`
		Score   float64 `json:"score"`
	}
	id := fixFleet.Drives[0].ID
	idStr := strconv.FormatUint(uint64(id), 10)
	if code := getJSON(t, pts.URL+"/v1/drive/"+idStr, &pd); code != http.StatusOK {
		t.Fatalf("primary drive lookup: %d", code)
	}
	if code := getJSON(t, rts.URL+"/v1/drive/"+idStr, &rd); code != http.StatusOK {
		t.Fatalf("replica drive lookup: %d", code)
	}
	if pd != rd {
		t.Fatalf("replica diverged:\nprimary %+v\nreplica %+v", pd, rd)
	}
}

// TestFollowerRestartOverlapIsBenign re-runs a second follower from LSN
// zero against a caught-up replica: every record skips, none double-
// applies, and the cursor still converges.
func TestFollowerRestartOverlapIsBenign(t *testing.T) {
	primary, pts := newNode(t, "n1")
	replica, _ := newNode(t, "f1")

	if code, body := postJSON(t, pts.URL+"/v1/ingest/batch", fleetRecords(0)); code != http.StatusAccepted {
		t.Fatalf("batch status %d: %s", code, body)
	}
	want := primary.CounterSnapshot()["ssdserved_ingest_records_total"]

	run := func() *Follower {
		fol := &Follower{Upstream: pts.URL, Apply: replica.ApplyReplicated, PollInterval: 5 * time.Millisecond}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go fol.Run(ctx)
		waitFor(t, 5*time.Second, "cursor to converge", func() bool {
			return fol.Stats().NextLSN == uint64(want)+1
		})
		return fol
	}
	first := run()
	if st := first.Stats(); float64(st.Applied) != want || st.Skipped != 0 {
		t.Fatalf("first pass applied=%d skipped=%d, want applied=%v", st.Applied, st.Skipped, want)
	}
	second := run()
	if st := second.Stats(); st.Applied != 0 || float64(st.Skipped) != want {
		t.Fatalf("restart overlap applied=%d skipped=%d, want all skipped", st.Applied, st.Skipped)
	}
}
