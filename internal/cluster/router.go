package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ssdfail/internal/serve"
	"ssdfail/internal/trace"
)

// Node declares one ring partition's endpoints for the router: the
// primary ssdserved and an optional follower replicating its WAL.
type Node struct {
	Name string
	URL  string
	// FollowerName/FollowerURL declare the failover target (optional).
	FollowerName string
	FollowerURL  string
}

// RouterConfig configures a Router.
type RouterConfig struct {
	// Nodes are the ring partitions, in declaration order.
	Nodes []Node
	// Vnodes is the consistent-hash point count per partition
	// (0 = DefaultVnodes).
	Vnodes int
	// DownAfter and UpAfter are the tracker hysteresis (0 = 3 and 2).
	DownAfter int
	UpAfter   int
	// ProbeInterval is the health-probe cadence (0 = 100ms);
	// ProbeTimeout bounds one probe (0 = ProbeInterval).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// PerNodeDeadline bounds each scatter-gather leg (0 = 2s). A leg
	// that misses it degrades the response instead of failing it.
	PerNodeDeadline time.Duration
	// HedgeAfter fires a second identical request for read legs still
	// unanswered after this long — the slow-tail hedge (0 = 250ms,
	// negative disables).
	HedgeAfter time.Duration
	// MaxBodyBytes caps request bodies (0 = 8 MiB).
	MaxBodyBytes int64
	// Client overrides the HTTP client (nil = dedicated client).
	Client *http.Client
}

const (
	defaultProbeInterval   = 100 * time.Millisecond
	defaultPerNodeDeadline = 2 * time.Second
	defaultHedgeAfter      = 250 * time.Millisecond
	defaultRouterMaxBody   = 8 << 20
	maxLegRespBytes        = 32 << 20
)

// Router fans client requests out across the ring: single-partition
// requests (ingest, drive lookups) go to the owning partition's active
// endpoint, fleet-wide queries scatter to every partition with a
// per-node deadline and hedged retries, and unreachable partitions
// degrade the response — a `degraded` node list — rather than erroring
// it. All methods are safe for concurrent use.
type Router struct {
	cfg     RouterConfig
	ring    *Ring
	client  *http.Client
	metrics *serve.Metrics
	urls    map[string]string // endpoint name -> base URL

	mu      sync.Mutex
	tracker *Tracker
	round   int

	reqs       *serve.CounterVec
	hedges     *serve.Counter
	degraded   *serve.CounterVec
	probes     *serve.CounterVec
	promotions *serve.Counter
}

// NewRouter validates the topology and builds a router. Start must be
// called for health probing and failover to function.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one node")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = defaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.ProbeInterval
	}
	if cfg.PerNodeDeadline <= 0 {
		cfg.PerNodeDeadline = defaultPerNodeDeadline
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = defaultHedgeAfter
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultRouterMaxBody
	}
	names := make([]string, 0, len(cfg.Nodes))
	parts := make([]Partition, 0, len(cfg.Nodes))
	urls := make(map[string]string)
	for _, n := range cfg.Nodes {
		if n.Name == "" || n.URL == "" {
			return nil, fmt.Errorf("cluster: node needs a name and URL")
		}
		if (n.FollowerName == "") != (n.FollowerURL == "") {
			return nil, fmt.Errorf("cluster: node %s: follower needs both a name and a URL", n.Name)
		}
		names = append(names, n.Name)
		parts = append(parts, Partition{Primary: n.Name, Follower: n.FollowerName})
		urls[n.Name] = strings.TrimSuffix(n.URL, "/")
		if n.FollowerName != "" {
			urls[n.FollowerName] = strings.TrimSuffix(n.FollowerURL, "/")
		}
	}
	ring, err := NewRing(names, cfg.Vnodes)
	if err != nil {
		return nil, err
	}
	tracker, err := NewTracker(parts, cfg.DownAfter, cfg.UpAfter)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.PerNodeDeadline + time.Second}
	}
	rt := &Router{
		cfg: cfg, ring: ring, tracker: tracker, client: client,
		metrics: serve.NewMetrics(), urls: urls,
	}
	m := rt.metrics
	rt.reqs = m.NewCounterVec("ssdrouter_http_requests_total",
		"Router HTTP requests served, by handler and status code.", "handler", "code")
	rt.hedges = m.NewCounter("ssdrouter_hedged_requests_total",
		"Second requests fired because a read leg was still unanswered after the hedge delay.")
	rt.degraded = m.NewCounterVec("ssdrouter_degraded_legs_total",
		"Scatter-gather legs that failed or missed their deadline, by endpoint.", "node")
	rt.probes = m.NewCounterVec("ssdrouter_probes_total",
		"Health probes issued, by endpoint and outcome.", "node", "outcome")
	rt.promotions = m.NewCounter("ssdrouter_promotions_total",
		"Partitions failed over to their follower.")
	m.NewGaugeFunc("ssdrouter_partitions",
		"Ring partitions configured.",
		func() float64 { return float64(len(cfg.Nodes)) })
	m.NewGaugeFunc("ssdrouter_endpoints_up",
		"Endpoints currently passing health probes.",
		func() float64 {
			rt.mu.Lock()
			defer rt.mu.Unlock()
			n := 0
			for _, name := range rt.tracker.Endpoints() {
				if rt.tracker.Up(name) {
					n++
				}
			}
			return float64(n)
		})
	return rt, nil
}

// Start launches the background health prober; it stops when ctx is
// canceled.
func (rt *Router) Start(ctx context.Context) {
	go rt.probeLoop(ctx)
}

func (rt *Router) probeLoop(ctx context.Context) {
	ticker := time.NewTicker(rt.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			rt.probeRound(ctx)
		}
	}
}

// probeRound probes every endpoint concurrently and applies the
// results in the tracker's canonical endpoint order, so the event log
// never depends on network timing within a round.
func (rt *Router) probeRound(ctx context.Context) {
	rt.mu.Lock()
	rt.round++
	round := rt.round
	eps := rt.tracker.Endpoints()
	rt.mu.Unlock()

	results := make([]bool, len(eps))
	var wg sync.WaitGroup
	for i, name := range eps {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			results[i] = rt.probe(ctx, rt.urls[name])
		}(i, name)
	}
	wg.Wait()

	rt.mu.Lock()
	defer rt.mu.Unlock()
	for i, name := range eps {
		outcome := "fail"
		if results[i] {
			outcome = "ok"
		}
		rt.probes.With(name, outcome).Inc()
		for _, ev := range rt.tracker.Observe(round, name, results[i]) {
			if ev.Kind == "promote" {
				rt.promotions.Inc()
			}
		}
	}
}

// probe checks one endpoint: a 200 with status "ready" within the
// probe timeout. A gate answering "starting", a shed, a hung
// connection, and a refused one all count as missed.
func (rt *Router) probe(ctx context.Context, baseURL string) bool {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/health", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	//ssdlint:allow droppederr probe body close; the probe result is already decided
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&health); err != nil {
		return false
	}
	return health.Status == "ready"
}

// target resolves a partition to the endpoint requests should hit.
func (rt *Router) target(partition string) (name, url string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	name = rt.tracker.Active(partition)
	return name, rt.urls[name]
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, name string, h func(http.ResponseWriter, *http.Request)) {
		mux.HandleFunc(pattern, rt.instrument(name, h))
	}
	route("POST /v1/ingest", "ingest", rt.handleIngest)
	route("POST /v1/ingest/batch", "ingest_batch", rt.handleIngestBatch)
	route("POST /v1/ingest/bin", "ingest_bin", rt.handleIngestBin)
	route("GET /v1/watchlist", "watchlist", rt.handleWatchlist)
	route("GET /v1/drive/{id}", "drive", rt.handleDrive)
	route("GET /v1/model", "model", rt.handleModel)
	route("POST /v1/model/reload", "model_reload", rt.handleBroadcastPOST("/v1/model/reload"))
	route("POST /v1/snapshot", "snapshot", rt.handleBroadcastPOST("/v1/snapshot"))
	route("POST /v1/remedy/evaluate", "remedy_evaluate", rt.handleBroadcastPOST("/v1/remedy/evaluate"))
	route("GET /metrics", "metrics", rt.handleMetrics)
	route("GET /v1/cluster/status", "cluster_status", rt.handleStatus)
	route("GET /healthz", "healthz", rt.handleHealth)
	route("GET /v1/health", "health", rt.handleHealth)
	return mux
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (rt *Router) instrument(name string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		rt.reqs.With(name, strconv.Itoa(sw.code)).Inc()
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//ssdlint:allow droppederr client gone; nothing durable is at stake
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

const (
	contentTypeJSON   = "application/json"
	contentTypeBinary = "application/octet-stream"
)

// do issues one request and reads the full response. A nil error with
// code 0 never happens: transport failures return the error, HTTP
// responses return their code and body.
func (rt *Router) do(ctx context.Context, method, url, contentType string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	//ssdlint:allow droppederr leg body close after a full read; the gather already has the bytes
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxLegRespBytes))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

// doHedged runs one leg under the per-node deadline. For reads
// (hedge=true) a second identical request fires once the hedge delay
// passes — or immediately when the first attempt fails — and the
// first success wins; the deadline bounds the whole leg either way.
func (rt *Router) doHedged(ctx context.Context, method, url, contentType string, body []byte, hedge bool) (int, []byte, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.PerNodeDeadline)
	defer cancel()
	type result struct {
		code int
		body []byte
		err  error
	}
	ch := make(chan result, 2)
	fire := func() {
		code, b, err := rt.do(ctx, method, url, contentType, body)
		ch <- result{code, b, err}
	}
	//ssdlint:allow goroleak request-scoped: rt.do is bounded by the per-node deadline ctx and the buffered channel absorbs the send
	go fire()
	canHedge := hedge && rt.cfg.HedgeAfter > 0
	var hedgeC <-chan time.Time
	if canHedge {
		timer := time.NewTimer(rt.cfg.HedgeAfter)
		defer timer.Stop()
		hedgeC = timer.C
	}
	outstanding := 1
	var last result
	for {
		select {
		case res := <-ch:
			if res.err == nil {
				return res.code, res.body, nil
			}
			last = res
			outstanding--
			if canHedge {
				canHedge = false
				hedgeC = nil
				rt.hedges.Inc()
				outstanding++
				//ssdlint:allow goroleak request-scoped hedge: bounded by the same per-node deadline ctx as the first attempt
				go fire()
				continue
			}
			if outstanding == 0 {
				return last.code, last.body, last.err
			}
		case <-hedgeC:
			hedgeC = nil
			canHedge = false
			rt.hedges.Inc()
			outstanding++
			//ssdlint:allow goroleak request-scoped hedge: bounded by the same per-node deadline ctx as the first attempt
			go fire()
		}
	}
}

// leg is one partition's share of a scatter-gather.
type leg struct {
	part string // partition (primary name)
	node string // endpoint actually targeted
	code int
	body []byte
	err  error
}

// failed reports whether the leg produced no usable answer: transport
// error, deadline, or a 5xx/429 from the node.
func (l *leg) failed() bool {
	return l.err != nil || l.code >= 500 || l.code == http.StatusTooManyRequests
}

// scatter fans a request to every partition's active endpoint and
// gathers the legs in partition order.
func (rt *Router) scatter(ctx context.Context, method, pathAndQuery string, body []byte, hedge bool) []leg {
	parts := rt.ring.Partitions()
	legs := make([]leg, len(parts))
	var wg sync.WaitGroup
	for i, part := range parts {
		wg.Add(1)
		go func(i int, part string) {
			defer wg.Done()
			node, url := rt.target(part)
			code, b, err := rt.doHedged(ctx, method, url+pathAndQuery, contentTypeJSON, body, hedge)
			legs[i] = leg{part: part, node: node, code: code, body: b, err: err}
		}(i, part)
	}
	wg.Wait()
	for i := range legs {
		if legs[i].failed() {
			rt.degraded.With(legs[i].node).Inc()
		}
	}
	return legs
}

// degradedList returns the sorted endpoint names of failed legs.
func degradedList(legs []leg) []string {
	out := []string{}
	for i := range legs {
		if legs[i].failed() {
			out = append(out, legs[i].node)
		}
	}
	sort.Strings(out)
	return out
}

func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	r.Body = http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)
	return io.ReadAll(r.Body)
}

func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	body, err := rt.readBody(w, r)
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, err.Error())
		return
	}
	var probe struct {
		DriveID *uint32 `json:"drive_id"`
	}
	if err := json.Unmarshal(body, &probe); err != nil || probe.DriveID == nil {
		writeError(w, http.StatusBadRequest, "malformed record: drive_id required")
		return
	}
	part := rt.ring.Owner(*probe.DriveID)
	node, url := rt.target(part)
	code, b, err := rt.doHedged(r.Context(), http.MethodPost, url+"/v1/ingest", contentTypeJSON, body, false)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":    fmt.Sprintf("partition %s unreachable: %v", part, err),
			"degraded": []string{node},
		})
		return
	}
	relay(w, code, b)
}

// relay forwards a node's response verbatim.
func relay(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(code)
	//ssdlint:allow droppederr client gone; nothing durable is at stake
	w.Write(body)
}

// nodeBatchReply is the slice of a node's batch response the router
// aggregates.
type nodeBatchReply struct {
	Accepted int             `json:"accepted"`
	Rejected int             `json:"rejected"`
	Dropped  int             `json:"dropped"`
	Errors   json.RawMessage `json:"errors"`
}

// batchLeg is one partition's share of a split ingest batch: the
// pre-built request body going out and the node's reply coming back.
type batchLeg struct {
	leg
	sub     []byte // request body for this partition
	records int
	reply   nodeBatchReply
}

// forwardBatchLegs posts each leg's pre-built body to its partition's
// active endpoint concurrently, aggregates the node replies, and writes
// the router's batch response. Both ingest wires share this tail: a
// failed or unparseable leg degrades the response and counts its
// records as dropped (the whole batch is safe to retry — duplicates are
// rejected benignly), and the status policy is dropped/degraded → 503,
// nothing accepted of a non-empty batch → 422, otherwise → 202.
func (rt *Router) forwardBatchLegs(w http.ResponseWriter, r *http.Request, path, contentType string, legs []batchLeg, rejected, total int) {
	var wg sync.WaitGroup
	for i := range legs {
		wg.Add(1)
		go func(bl *batchLeg) {
			defer wg.Done()
			node, url := rt.target(bl.part)
			bl.node = node
			bl.code, bl.body, bl.err = rt.doHedged(r.Context(), http.MethodPost, url+path, contentType, bl.sub, false)
		}(&legs[i])
	}
	wg.Wait()

	accepted, dropped := 0, 0
	var errList []json.RawMessage
	degraded := []string{}
	for i := range legs {
		bl := &legs[i]
		if bl.failed() {
			rt.degraded.With(bl.node).Inc()
			degraded = append(degraded, bl.node)
			dropped += bl.records
			continue
		}
		if err := json.Unmarshal(bl.body, &bl.reply); err != nil {
			degraded = append(degraded, bl.node)
			dropped += bl.records
			continue
		}
		accepted += bl.reply.Accepted
		rejected += bl.reply.Rejected
		dropped += bl.reply.Dropped
		if len(errList) < 10 && len(bl.reply.Errors) > 0 && string(bl.reply.Errors) != "null" {
			errList = append(errList, bl.reply.Errors)
		}
	}
	sort.Strings(degraded)
	resp := map[string]any{
		"accepted": accepted,
		"rejected": rejected,
		"dropped":  dropped,
		"errors":   errList,
		"degraded": degraded,
	}
	switch {
	case dropped > 0 || len(degraded) > 0:
		// Some records did not reach a durable node. The batch is safe
		// to retry wholesale: re-sent duplicates are rejected benignly.
		resp["error"] = "one or more partitions unreachable; retry the batch"
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, resp)
	case accepted == 0 && total > 0:
		writeJSON(w, http.StatusUnprocessableEntity, resp)
	default:
		writeJSON(w, http.StatusAccepted, resp)
	}
}

func (rt *Router) handleIngestBatch(w http.ResponseWriter, r *http.Request) {
	body, err := rt.readBody(w, r)
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, err.Error())
		return
	}
	var raws []json.RawMessage
	if err := json.Unmarshal(body, &raws); err != nil {
		writeError(w, http.StatusBadRequest, "malformed batch: "+err.Error())
		return
	}
	// Split the batch by ring owner, preserving intra-partition order
	// (per-drive day order is the store's invariant, and all of one
	// drive's records land in one partition).
	groups := make(map[string][]json.RawMessage)
	rejected := 0
	for _, raw := range raws {
		var probe struct {
			DriveID *uint32 `json:"drive_id"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil || probe.DriveID == nil {
			rejected++
			continue
		}
		part := rt.ring.Owner(*probe.DriveID)
		groups[part] = append(groups[part], raw)
	}
	parts := rt.ring.Partitions()
	legs := make([]batchLeg, 0, len(parts))
	for _, part := range parts {
		if len(groups[part]) == 0 {
			continue
		}
		sub, err := json.Marshal(groups[part])
		if err != nil {
			writeError(w, http.StatusInternalServerError, "re-encoding batch: "+err.Error())
			return
		}
		legs = append(legs, batchLeg{leg: leg{part: part}, sub: sub, records: len(groups[part])})
	}
	rt.forwardBatchLegs(w, r, "/v1/ingest/batch", contentTypeJSON, legs, rejected, len(raws))
}

// handleIngestBin splits a binary ingest batch by ring owner without
// re-encoding: each accepted frame's raw bytes are sliced out of the
// request body and concatenated into the owning partition's sub-batch
// behind a fresh header, so the bytes a node receives — and appends to
// its WAL — are exactly the bytes the client framed. Any framing
// violation (bad header, length/count mismatch, short or corrupt frame)
// fails the whole batch with a 400 before anything is forwarded: the
// fixed-size frame invariant the nodes enforce cannot hold for a
// partial split.
func (rt *Router) handleIngestBin(w http.ResponseWriter, r *http.Request) {
	body, err := rt.readBody(w, r)
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, err.Error())
		return
	}
	count, rest, err := serve.ParseBinHeader(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if int64(count)*int64(serve.BinFrameSize) != int64(len(rest)) {
		writeError(w, http.StatusBadRequest, "batch length does not match declared record count")
		return
	}
	type binGroup struct {
		n      int
		frames []byte // raw frame bytes, client order preserved
	}
	groups := make(map[string]*binGroup)
	for i := 0; i < count; i++ {
		payload, next, err := trace.NextFrame(rest, serve.BinRecordSize)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("corrupt frame: record %d: %v", i, err))
			return
		}
		if len(payload) != serve.BinRecordSize {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("corrupt frame: record %d: short payload", i))
			return
		}
		frame := rest[:len(rest)-len(next)]
		part := rt.ring.Owner(binary.LittleEndian.Uint32(payload))
		g := groups[part]
		if g == nil {
			g = &binGroup{}
			groups[part] = g
		}
		g.n++
		g.frames = append(g.frames, frame...)
		rest = next
	}
	parts := rt.ring.Partitions()
	legs := make([]batchLeg, 0, len(parts))
	for _, part := range parts {
		g := groups[part]
		if g == nil {
			continue
		}
		sub := serve.AppendBinHeader(make([]byte, 0, serve.BinHeaderSize+len(g.frames)), g.n)
		sub = append(sub, g.frames...)
		legs = append(legs, batchLeg{leg: leg{part: part}, sub: sub, records: g.n})
	}
	rt.forwardBatchLegs(w, r, "/v1/ingest/bin", contentTypeBinary, legs, 0, count)
}

// watchItem mirrors the node watchlist entry; the router re-ranks the
// merged set.
type watchItem struct {
	DriveID   uint32  `json:"drive_id"`
	Model     string  `json:"model"`
	Score     float64 `json:"score"`
	Day       int32   `json:"day"`
	Age       int32   `json:"age"`
	Threshold float64 `json:"threshold"`
	Margin    float64 `json:"margin"`
}

func (rt *Router) handleWatchlist(w http.ResponseWriter, r *http.Request) {
	k := 50
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad k: "+err.Error())
			return
		}
		k = n
	}
	path := "/v1/watchlist"
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	legs := rt.scatter(r.Context(), http.MethodGet, path, nil, true)

	type nodeReply struct {
		ModelVersion int         `json:"model_version"`
		Lookahead    int32       `json:"lookahead"`
		Threshold    float64     `json:"threshold"`
		FleetSize    int         `json:"fleet_size"`
		Items        []watchItem `json:"items"`
	}
	var (
		items      []watchItem
		fleetSize  int
		minVersion = 0
		lookahead  int32
		threshold  float64
		haveReply  bool
	)
	for i := range legs {
		l := &legs[i]
		if l.failed() || l.code != http.StatusOK {
			continue
		}
		var nr nodeReply
		if err := json.Unmarshal(l.body, &nr); err != nil {
			continue
		}
		if !haveReply {
			lookahead, threshold = nr.Lookahead, nr.Threshold
			minVersion = nr.ModelVersion
			haveReply = true
		} else if nr.ModelVersion < minVersion {
			minVersion = nr.ModelVersion
		}
		fleetSize += nr.FleetSize
		items = append(items, nr.Items...)
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].Score != items[b].Score {
			return items[a].Score > items[b].Score
		}
		return items[a].DriveID < items[b].DriveID
	})
	if k >= 0 && len(items) > k {
		items = items[:k]
	}
	if items == nil {
		items = []watchItem{}
	}
	// Partial results are explicitly degraded, never silently
	// truncated: the response is a 200 whose degraded list names every
	// partition endpoint missing from the merge.
	writeJSON(w, http.StatusOK, map[string]any{
		"model_version": minVersion,
		"lookahead":     lookahead,
		"threshold":     threshold,
		"fleet_size":    fleetSize,
		"count":         len(items),
		"items":         items,
		"degraded":      degradedList(legs),
	})
}

func (rt *Router) handleDrive(w http.ResponseWriter, r *http.Request) {
	id64, err := strconv.ParseUint(r.PathValue("id"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad drive id: %v", err))
		return
	}
	part := rt.ring.Owner(uint32(id64))
	node, url := rt.target(part)
	code, b, err := rt.doHedged(r.Context(), http.MethodGet, url+"/v1/drive/"+r.PathValue("id"), contentTypeJSON, nil, true)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":    fmt.Sprintf("partition %s unreachable: %v", part, err),
			"degraded": []string{node},
		})
		return
	}
	relay(w, code, b)
}

func (rt *Router) handleModel(w http.ResponseWriter, r *http.Request) {
	legs := rt.scatter(r.Context(), http.MethodGet, "/v1/model", nil, true)
	nodes := map[string]json.RawMessage{}
	minVersion := 0
	have := false
	for i := range legs {
		l := &legs[i]
		if l.failed() || l.code != http.StatusOK {
			continue
		}
		nodes[l.node] = json.RawMessage(l.body)
		var info struct {
			Version int `json:"version"`
		}
		if err := json.Unmarshal(l.body, &info); err == nil {
			if !have || info.Version < minVersion {
				minVersion = info.Version
			}
			have = true
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"version":  minVersion,
		"nodes":    nodes,
		"degraded": degradedList(legs),
	})
}

// handleBroadcastPOST fans a POST to every partition and returns each
// node's raw reply plus the degraded list — used for model reloads,
// snapshots, and remediation ticks, whose per-node responses matter
// individually.
func (rt *Router) handleBroadcastPOST(path string) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		legs := rt.scatter(r.Context(), http.MethodPost, path, nil, false)
		nodes := map[string]json.RawMessage{}
		for i := range legs {
			l := &legs[i]
			if l.failed() {
				continue
			}
			nodes[l.node] = json.RawMessage(l.body)
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"nodes":    nodes,
			"degraded": degradedList(legs),
		})
	}
}

// parseExposition splits Prometheus text format into series -> value.
func parseExposition(text string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] += v
	}
	return out
}

// handleMetrics serves the fleet rollup: every node series summed
// across reachable partitions, then the router's own series. A
// degraded scrape is visible both in the ssdrouter_degraded_legs_total
// counters and in the rollup coverage gauge emitted here.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	legs := rt.scatter(r.Context(), http.MethodGet, "/metrics", nil, true)
	sums := make(map[string]float64)
	covered := 0
	for i := range legs {
		l := &legs[i]
		if l.failed() || l.code != http.StatusOK {
			continue
		}
		covered++
		for series, v := range parseExposition(string(l.body)) {
			sums[series] += v
		}
	}
	keys := make([]string, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Header().Set("Content-Type", serve.MetricsContentType)
	var b strings.Builder
	fmt.Fprintf(&b, "# Fleet rollup: %d/%d partitions\n", covered, len(legs))
	fmt.Fprintf(&b, "ssdrouter_rollup_partitions_covered %d\n", covered)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %s\n", k, strconv.FormatFloat(sums[k], 'g', -1, 64))
	}
	//ssdlint:allow droppederr scrape write failed means the client hung up; nothing durable is at stake
	io.WriteString(w, b.String())
	//ssdlint:allow droppederr same scrape write; router-side series follow the rollup
	rt.metrics.WriteTo(w)
}

func (rt *Router) handleStatus(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	status := rt.tracker.Status()
	events := rt.tracker.Events()
	round := rt.round
	rt.mu.Unlock()
	if len(events) > 100 {
		events = events[len(events)-100:]
	}
	lines := make([]string, len(events))
	for i, e := range events {
		lines[i] = e.String()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"partitions":   rt.ring.Partitions(),
		"endpoints":    status,
		"probe_rounds": round,
		"events":       lines,
	})
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ready",
		"role":       "router",
		"partitions": len(rt.cfg.Nodes),
	})
}

// Metrics exposes the router's metrics registry.
func (rt *Router) Metrics() *serve.Metrics { return rt.metrics }

// Tracker returns the failover state machine guarded by the router's
// lock; use TrackerStatus for a safe snapshot.
func (rt *Router) TrackerStatus() []EndpointStatus {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.tracker.Status()
}

// AllUp reports whether every endpoint currently passes probes — the
// chaos harness polls this before running end-state conformance.
func (rt *Router) AllUp() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, name := range rt.tracker.Endpoints() {
		if !rt.tracker.Up(name) {
			return false
		}
	}
	return true
}
