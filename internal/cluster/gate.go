// Package cluster is the coordinator tier that turns N ssdserved
// processes into one fleet-scoring service: a consistent-hash ring
// partitions drive IDs across nodes, each node's WAL is streamed to a
// follower for fast failover, a deterministic tracker turns missed
// health probes into sticky promotions, and fleet-wide queries are
// answered by scatter-gather with per-node deadlines, hedged retries
// on the slow tail, and explicit partial-result degradation — a
// `degraded` node list instead of an error when a partition is
// unreachable.
package cluster

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
)

// Gate is the readiness shim a node serves while it is still
// recovering its WAL: the listener is bound (so probes connect instead
// of getting refused) but every request — including GET /v1/health —
// answers 503 with status "starting" until the real handler is swapped
// in. Routers only route to a node whose health probe returns 200 with
// status "ready", so a restarting node is never handed traffic it
// would serve from a half-replayed store.
type Gate struct {
	h atomic.Pointer[http.Handler]
}

// NewGate returns a gate in the starting state.
func NewGate() *Gate { return &Gate{} }

// Ready swaps the real handler in; subsequent requests are served by h.
func (g *Gate) Ready(h http.Handler) { g.h.Store(&h) }

func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if hp := g.h.Load(); hp != nil {
		(*hp).ServeHTTP(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusServiceUnavailable)
	//ssdlint:allow droppederr probe client gone; the gate has nothing durable to lose
	json.NewEncoder(w).Encode(map[string]string{"status": "starting"})
}
