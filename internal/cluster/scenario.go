package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Partition scenarios replay a scripted probe history through the
// Tracker and assert on the resulting topology, in the style of the
// remediation scenarios under scenarios/: strict JSON in, a canonical
// event log out, diffed byte for byte against a committed golden. They
// pin the failover semantics — when exactly a node is declared down,
// when a follower is promoted, and that promotion never reverts — so a
// tracker change that shifts any of those shows up as a golden diff,
// not a silent behavior change under chaos.

// ClusterScenario is one scenario file, decoded and validated.
type ClusterScenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Partitions declares the topology: primaries and their followers.
	Partitions []ScenarioPartition `json:"partitions"`
	// DownAfter/UpAfter override the tracker hysteresis (0 = defaults).
	DownAfter int `json:"down_after,omitempty"`
	UpAfter   int `json:"up_after,omitempty"`
	// Rounds is how many probe rounds to run. Each round probes every
	// endpoint once, in declaration order.
	Rounds int `json:"rounds"`
	// Events partition and heal endpoints at given rounds: from round
	// `at` (inclusive) a partitioned endpoint fails its probes until a
	// heal event names it again.
	Events []ClusterEvent `json:"events"`
	// Assertions are checked after the run.
	Assertions []ClusterAssertion `json:"assertions"`
}

// ScenarioPartition mirrors Partition with JSON tags.
type ScenarioPartition struct {
	Primary  string `json:"primary"`
	Follower string `json:"follower,omitempty"`
}

// ClusterEvent cuts or restores one endpoint's probe reachability.
// Exactly one of Partition/Heal must be set.
type ClusterEvent struct {
	At        int    `json:"at"`
	Partition string `json:"partition,omitempty"`
	Heal      string `json:"heal,omitempty"`
}

// ClusterAssertion is one post-run check:
//
//	"state"   — endpoint `node` ends the run with health `want` (up|down)
//	"active"  — partition with primary `node` ends routed to `want`
//	            (primary|follower)
//	"events"  — count of `kind` events ends within [min, max]
type ClusterAssertion struct {
	Type string `json:"type"`
	Node string `json:"node,omitempty"`
	Want string `json:"want,omitempty"`
	Kind string `json:"kind,omitempty"`
	Min  *int   `json:"min,omitempty"`
	Max  *int   `json:"max,omitempty"`
}

// ParseClusterScenario decodes and validates one scenario document.
func ParseClusterScenario(data []byte) (*ClusterScenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc ClusterScenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("cluster: parsing scenario: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return nil, fmt.Errorf("cluster: trailing data after scenario document")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// LoadClusterScenario reads and parses a scenario file.
func LoadClusterScenario(path string) (*ClusterScenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := ParseClusterScenario(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// Validate checks structural invariants.
func (sc *ClusterScenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("cluster: scenario has no name")
	}
	if sc.Rounds <= 0 {
		return fmt.Errorf("cluster: scenario %s: rounds must be positive", sc.Name)
	}
	if len(sc.Partitions) == 0 {
		return fmt.Errorf("cluster: scenario %s: no partitions", sc.Name)
	}
	eps := make(map[string]bool)
	primaries := make(map[string]bool)
	for i, p := range sc.Partitions {
		for _, name := range []string{p.Primary, p.Follower} {
			if name == "" {
				continue
			}
			if eps[name] {
				return fmt.Errorf("cluster: scenario %s: endpoint %q declared twice", sc.Name, name)
			}
			eps[name] = true
		}
		if p.Primary == "" {
			return fmt.Errorf("cluster: scenario %s: partition %d has no primary", sc.Name, i)
		}
		primaries[p.Primary] = true
	}
	for i, ev := range sc.Events {
		if ev.At < 1 || ev.At > sc.Rounds {
			return fmt.Errorf("cluster: scenario %s: event %d at round %d outside [1, %d]",
				sc.Name, i, ev.At, sc.Rounds)
		}
		set := 0
		for _, name := range []string{ev.Partition, ev.Heal} {
			if name == "" {
				continue
			}
			set++
			if !eps[name] {
				return fmt.Errorf("cluster: scenario %s: event %d names undeclared endpoint %q",
					sc.Name, i, name)
			}
		}
		if set != 1 {
			return fmt.Errorf("cluster: scenario %s: event %d must set exactly one of partition/heal",
				sc.Name, i)
		}
	}
	for i, a := range sc.Assertions {
		switch a.Type {
		case "state":
			if !eps[a.Node] {
				return fmt.Errorf("cluster: scenario %s: assertion %d names undeclared endpoint %q",
					sc.Name, i, a.Node)
			}
			if a.Want != "up" && a.Want != "down" {
				return fmt.Errorf("cluster: scenario %s: assertion %d: want must be up or down", sc.Name, i)
			}
		case "active":
			if !primaries[a.Node] {
				return fmt.Errorf("cluster: scenario %s: assertion %d names non-primary %q",
					sc.Name, i, a.Node)
			}
			if a.Want != "primary" && a.Want != "follower" {
				return fmt.Errorf("cluster: scenario %s: assertion %d: want must be primary or follower",
					sc.Name, i)
			}
		case "events":
			switch a.Kind {
			case "down", "up", "promote":
			default:
				return fmt.Errorf("cluster: scenario %s: assertion %d: unknown event kind %q",
					sc.Name, i, a.Kind)
			}
		default:
			return fmt.Errorf("cluster: scenario %s: assertion %d: unknown type %q", sc.Name, i, a.Type)
		}
		if a.Min != nil && a.Max != nil && *a.Min > *a.Max {
			return fmt.Errorf("cluster: scenario %s: assertion %d: min %d > max %d",
				sc.Name, i, *a.Min, *a.Max)
		}
	}
	return nil
}

// ScenarioResult is one scenario run's outcome.
type ScenarioResult struct {
	// EventLog is the canonical tracker log, golden-diffable.
	EventLog []byte
	// Violations lists failed assertions (empty = pass).
	Violations []string
}

// RunScenario replays the scripted probe history: round r probes every
// endpoint once in declaration order, an endpoint currently cut by a
// partition event fails its probe, everything else succeeds.
func RunScenario(sc *ClusterScenario) (*ScenarioResult, error) {
	parts := make([]Partition, len(sc.Partitions))
	for i, p := range sc.Partitions {
		parts[i] = Partition{Primary: p.Primary, Follower: p.Follower}
	}
	tr, err := NewTracker(parts, sc.DownAfter, sc.UpAfter)
	if err != nil {
		return nil, err
	}
	// Index events by round; within a round they apply in file order
	// before any probe fires.
	byRound := make(map[int][]ClusterEvent)
	for _, ev := range sc.Events {
		byRound[ev.At] = append(byRound[ev.At], ev)
	}
	cut := make(map[string]bool)
	for round := 1; round <= sc.Rounds; round++ {
		for _, ev := range byRound[round] {
			if ev.Partition != "" {
				cut[ev.Partition] = true
			} else {
				delete(cut, ev.Heal)
			}
		}
		for _, name := range tr.Endpoints() {
			tr.Observe(round, name, !cut[name])
		}
	}
	res := &ScenarioResult{EventLog: tr.EventLog()}
	counts := map[string]int{}
	for _, e := range tr.Events() {
		counts[e.Kind]++
	}
	for i, a := range sc.Assertions {
		switch a.Type {
		case "state":
			got := "down"
			if tr.Up(a.Node) {
				got = "up"
			}
			if got != a.Want {
				res.Violations = append(res.Violations,
					fmt.Sprintf("assertion %d: endpoint %s ends %s, want %s", i, a.Node, got, a.Want))
			}
		case "active":
			got := "primary"
			if tr.Promoted(a.Node) {
				got = "follower"
			}
			if got != a.Want {
				res.Violations = append(res.Violations,
					fmt.Sprintf("assertion %d: partition %s ends routed to %s, want %s", i, a.Node, got, a.Want))
			}
		case "events":
			n := counts[a.Kind]
			if a.Min != nil && n < *a.Min {
				res.Violations = append(res.Violations,
					fmt.Sprintf("assertion %d: %d %s events < min %d", i, n, a.Kind, *a.Min))
			}
			if a.Max != nil && n > *a.Max {
				res.Violations = append(res.Violations,
					fmt.Sprintf("assertion %d: %d %s events > max %d", i, n, a.Kind, *a.Max))
			}
		}
	}
	return res, nil
}
