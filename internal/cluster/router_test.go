package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestRouterRoutesIngestByOwner(t *testing.T) {
	srvA, tsA := newNode(t, "nA")
	srvB, tsB := newNode(t, "nB")
	rt, rts := newTestRouter(t, RouterConfig{Nodes: []Node{
		{Name: "nA", URL: tsA.URL},
		{Name: "nB", URL: tsB.URL},
	}})

	recs := fleetRecords(0)
	code, body := postJSON(t, rts.URL+"/v1/ingest/batch", recs)
	if code != http.StatusAccepted {
		t.Fatalf("batch through router: %d %s", code, body)
	}
	gotA := srvA.CounterSnapshot()["ssdserved_ingest_records_total"]
	gotB := srvB.CounterSnapshot()["ssdserved_ingest_records_total"]
	if gotA+gotB != float64(len(recs)) {
		t.Fatalf("nodes hold %v+%v records, router accepted %d", gotA, gotB, len(recs))
	}
	if gotA == 0 || gotB == 0 {
		t.Fatalf("batch not split across partitions: nA=%v nB=%v", gotA, gotB)
	}

	// Every drive must be reachable through the router at its owner.
	for _, r := range recs[:10] {
		var d struct {
			DriveID uint32 `json:"drive_id"`
			Days    int    `json:"days"`
		}
		if code := getJSON(t, rts.URL+"/v1/drive/"+strconv.FormatUint(uint64(r.DriveID), 10), &d); code != http.StatusOK {
			t.Fatalf("drive %d unreachable through router: %d", r.DriveID, code)
		}
		if d.DriveID != r.DriveID || d.Days != 1 {
			t.Fatalf("drive %d: %+v", r.DriveID, d)
		}
	}
	_ = rt
}

func TestRouterWatchlistMergesAcrossPartitions(t *testing.T) {
	_, tsA := newNode(t, "nA")
	_, tsB := newNode(t, "nB")
	_, rts := newTestRouter(t, RouterConfig{Nodes: []Node{
		{Name: "nA", URL: tsA.URL},
		{Name: "nB", URL: tsB.URL},
	}})

	for _, off := range []int{1, 0} {
		if code, body := postJSON(t, rts.URL+"/v1/ingest/batch", fleetRecords(off)); code != http.StatusAccepted {
			t.Fatalf("batch: %d %s", code, body)
		}
	}

	var wl struct {
		ModelVersion int      `json:"model_version"`
		FleetSize    int      `json:"fleet_size"`
		Count        int      `json:"count"`
		Degraded     []string `json:"degraded"`
		Items        []struct {
			DriveID uint32  `json:"drive_id"`
			Score   float64 `json:"score"`
		} `json:"items"`
	}
	if code := getJSON(t, rts.URL+"/v1/watchlist?threshold=0&k=100000", &wl); code != http.StatusOK {
		t.Fatalf("watchlist: %d", code)
	}
	if len(wl.Degraded) != 0 {
		t.Fatalf("healthy cluster reports degraded %v", wl.Degraded)
	}
	// Every drive carries at least its final day, so the merged fleet
	// size is exactly the fixture's drive count.
	wantFleet := len(fleetRecords(0))
	if wl.FleetSize != wantFleet {
		t.Fatalf("merged fleet_size %d, nodes hold %d", wl.FleetSize, wantFleet)
	}
	if wl.Count == 0 || wl.Count != len(wl.Items) {
		t.Fatalf("count=%d items=%d", wl.Count, len(wl.Items))
	}
	for i := 1; i < len(wl.Items); i++ {
		a, b := wl.Items[i-1], wl.Items[i]
		if a.Score < b.Score || (a.Score == b.Score && a.DriveID > b.DriveID) {
			t.Fatalf("merge order broken at %d: %+v then %+v", i, a, b)
		}
	}
	if wl.ModelVersion == 0 {
		t.Fatal("merged model_version missing")
	}
}

// TestRouterWatchlistDegradesOnSlowLeg is the partial-result contract:
// when one partition's watchlist leg hangs past the per-node deadline,
// the router must still answer 200 within the deadline, carry the
// healthy partitions' items, and name the missing endpoint in
// `degraded` — never silently truncate.
func TestRouterWatchlistDegradesOnSlowLeg(t *testing.T) {
	_, tsA := newNode(t, "nA")

	// nB answers health probes instantly but hangs every watchlist leg
	// (and its hedge) well past the router's deadline.
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/health") {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"status":"ready"}`)
			return
		}
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	}))
	defer slow.Close()

	deadline := 300 * time.Millisecond
	_, rts := newTestRouter(t, RouterConfig{
		Nodes: []Node{
			{Name: "nA", URL: tsA.URL},
			{Name: "nB", URL: slow.URL},
		},
		PerNodeDeadline: deadline,
		HedgeAfter:      50 * time.Millisecond,
	})

	if code, body := postJSON(t, rts.URL+"/v1/ingest/batch", fleetRecords(0)); code != http.StatusAccepted && code != http.StatusServiceUnavailable {
		t.Fatalf("seeding batch: %d %s", code, body)
	}

	var wl struct {
		Count    int      `json:"count"`
		Degraded []string `json:"degraded"`
	}
	start := time.Now()
	code := getJSON(t, rts.URL+"/v1/watchlist?threshold=0&k=100000", &wl)
	elapsed := time.Since(start)
	if code != http.StatusOK {
		t.Fatalf("degraded watchlist must still be 200, got %d", code)
	}
	if elapsed > deadline+700*time.Millisecond {
		t.Fatalf("watchlist took %v; the slow leg leaked past its %v deadline", elapsed, deadline)
	}
	if len(wl.Degraded) != 1 || wl.Degraded[0] != "nB" {
		t.Fatalf("degraded = %v, want [nB]", wl.Degraded)
	}
	if wl.Count == 0 {
		t.Fatal("healthy partition's items silently dropped from degraded watchlist")
	}
}

func TestRouterFailsOverToFollower(t *testing.T) {
	_, tsA := newNode(t, "nA")
	_, tsF := newNode(t, "fA")
	rt, rts := newTestRouter(t, RouterConfig{
		Nodes: []Node{
			{Name: "nA", URL: tsA.URL, FollowerName: "fA", FollowerURL: tsF.URL},
		},
		ProbeInterval: 10 * time.Millisecond,
	})
	waitFor(t, 5*time.Second, "initial probes to settle", rt.AllUp)

	// No live replication in this test — both nodes were seeded
	// identically, the point is the routing flip.
	if code, body := postJSON(t, tsF.URL+"/v1/ingest/batch", fleetRecords(0)); code != http.StatusAccepted {
		t.Fatalf("seed follower: %d %s", code, body)
	}

	tsA.Close()
	waitFor(t, 5*time.Second, "promotion", func() bool {
		for _, s := range rt.TrackerStatus() {
			if s.Name == "fA" && s.Active {
				return true
			}
		}
		return false
	})

	id := fleetRecords(0)[0].DriveID
	var d struct {
		DriveID uint32 `json:"drive_id"`
	}
	if code := getJSON(t, rts.URL+"/v1/drive/"+strconv.FormatUint(uint64(id), 10), &d); code != http.StatusOK {
		t.Fatalf("lookup after failover: %d", code)
	}
	if d.DriveID != id {
		t.Fatalf("wrong drive after failover: %+v", d)
	}

	var st struct {
		Endpoints []struct { // shape check only
			Name   string `json:"name"`
			Role   string `json:"role"`
			Up     bool   `json:"up"`
			Active bool   `json:"active"`
		} `json:"endpoints"`
	}
	if code := getJSON(t, rts.URL+"/v1/cluster/status", &st); code != http.StatusOK {
		t.Fatalf("cluster status: %d", code)
	}
	if len(st.Endpoints) != 2 {
		t.Fatalf("status endpoints: %+v", st.Endpoints)
	}
}

func TestRouterMetricsRollup(t *testing.T) {
	_, tsA := newNode(t, "nA")
	_, tsB := newNode(t, "nB")
	_, rts := newTestRouter(t, RouterConfig{Nodes: []Node{
		{Name: "nA", URL: tsA.URL},
		{Name: "nB", URL: tsB.URL},
	}})
	if code, body := postJSON(t, rts.URL+"/v1/ingest/batch", fleetRecords(0)); code != http.StatusAccepted {
		t.Fatalf("batch: %d %s", code, body)
	}

	resp, err := http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	text := string(buf[:n])
	if !strings.Contains(text, "ssdrouter_rollup_partitions_covered 2") {
		t.Fatalf("rollup coverage missing or partial:\n%s", text)
	}
	want := "ssdserved_ingest_records_total " + strconv.Itoa(len(fleetRecords(0)))
	if !strings.Contains(text, want) {
		t.Fatalf("rollup does not sum node counters (want %q):\n%s", want, text)
	}
}
