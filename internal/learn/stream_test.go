package learn

import (
	"fmt"

	"ssdfail/internal/expgrid"
	"ssdfail/internal/trace"
)

// streamRec is one WAL-ordered report of the synthetic test stream.
type streamRec struct {
	id    uint32
	model trace.Model
	rec   trace.DayRecord
}

// synthConfig parameterizes the hand-built test stream. All randomness
// is derived from seed through expgrid's key-derivation, so equal
// configs produce byte-identical streams.
type synthConfig struct {
	drives    int     // drive count; IDs 1..drives, all MLC-A
	days      int32   // reports cover days 0..days
	shiftDay  int32   // first day of the write-volume shift; <0 = never
	shiftMult float64 // write multiplier from shiftDay on
	seed      uint64
}

// failDayOf returns the failure day of a synthetic drive, or -1 for the
// healthy ones. Every fourth drive fails, with failure days spread over
// [40, 80) so the labels are final well before the frontier.
func failDayOf(id uint32) int32 {
	if id%4 != 0 {
		return -1
	}
	return 40 + int32(id*13%40)
}

// synthStream builds a deterministic fleet stream in (day, id) order —
// the order a daemon's WAL carries it. Healthy drives report a
// stationary write/read workload every day. Failing drives develop the
// paper's failure signature over their last ten days (a correctable
// error ramp plus grown bad blocks), report Dead on the failure day,
// and then go silent — exactly the cessation signature synthesizeSwaps
// reconstructs a swap from. From shiftDay on, every surviving drive's
// write volume is multiplied by shiftMult: the injected distribution
// shift the KS drift channels watch for.
func synthStream(c synthConfig) []streamRec {
	perDrive := make([][]trace.DayRecord, c.drives+1)
	for id := uint32(1); id <= uint32(c.drives); id++ {
		dseed := expgrid.DeriveSeed(c.seed, fmt.Sprintf("synth/drive=%d", id))
		fail := failDayOf(id)
		var cum trace.DayRecord
		for day := int32(0); day <= c.days; day++ {
			if fail >= 0 && day > fail {
				break // silent after failure
			}
			writes := uint64(1e6 * (0.75 + 0.5*expgrid.Hash01(dseed, int(day))))
			if c.shiftDay >= 0 && day >= c.shiftDay {
				writes = uint64(float64(writes) * c.shiftMult)
			}
			reads := uint64(2e6 * (0.75 + 0.5*expgrid.Hash01(dseed^0xbeef, int(day))))
			r := trace.DayRecord{
				Day:    day,
				Age:    day,
				Reads:  reads,
				Writes: writes,
				Erases: writes / 64,
			}
			r.Errors[trace.ErrCorrectable] = uint32(1 + 3*expgrid.Hash01(dseed^0x7e57, int(day)))
			if fail >= 0 && day > fail-10 {
				sev := uint32(10 - (fail - day))
				r.Errors[trace.ErrCorrectable] += 2000 * sev
				r.Errors[trace.ErrUncorrectable] = sev / 3
				r.GrownBadBlocks = cum.GrownBadBlocks + sev
			} else {
				r.GrownBadBlocks = cum.GrownBadBlocks
			}
			if day == fail {
				r.Dead = true
			}
			cum.CumReads += r.Reads
			cum.CumWrites += r.Writes
			cum.CumErases += r.Erases
			cum.GrownBadBlocks = r.GrownBadBlocks
			for k := range r.Errors {
				cum.CumErrors[k] += uint64(r.Errors[k])
			}
			r.CumReads = cum.CumReads
			r.CumWrites = cum.CumWrites
			r.CumErases = cum.CumErases
			r.CumErrors = cum.CumErrors
			r.PECycles = float64(cum.CumWrites) / 2.2e8
			r.FactoryBadBlocks = 3
			perDrive[id] = append(perDrive[id], r)
		}
	}
	var out []streamRec
	for day := int32(0); day <= c.days; day++ {
		for id := uint32(1); id <= uint32(c.drives); id++ {
			if int(day) < len(perDrive[id]) {
				out = append(out, streamRec{id, trace.MLCA, perDrive[id][day]})
			}
		}
	}
	return out
}

// feed replays the stream through the loop, in order.
func feed(l *Loop, recs []streamRec) {
	for i := range recs {
		l.Observe(recs[i].id, recs[i].model, recs[i].rec)
	}
}
