package learn

import (
	"ssdfail/internal/stats"
	"ssdfail/internal/trace"
)

// Channel is one monitored dimension of the ingested feature
// distribution. Value must be a pure function of the record.
type Channel struct {
	Name  string
	Value func(r *trace.DayRecord) float64
}

// DefaultChannels returns the monitored dimensions: daily write volume
// (the workload knob that drives wear), daily read volume, and the
// correctable-error rate (the paper's strongest failure symptom). A
// shifted workload mix or an error-regime change moves at least one of
// them.
func DefaultChannels() []Channel {
	return []Channel{
		{Name: "writes", Value: func(r *trace.DayRecord) float64 { return float64(r.Writes) }},
		{Name: "reads", Value: func(r *trace.DayRecord) float64 { return float64(r.Reads) }},
		{Name: "corr_err_rate", Value: func(r *trace.DayRecord) float64 {
			return float64(r.Errors[trace.ErrCorrectable]) / (float64(r.Reads+r.Writes) + 1)
		}},
	}
}

// channelState holds one channel's two windows: a frozen reference
// distribution (the regime the serving model was trained/validated
// under) and a ring of the most recent window samples. After every
// retrain attempt the reference is rebaselined to the current window,
// so one genuine shift triggers one retrain instead of refiring
// forever.
type channelState struct {
	ch    Channel
	ref   []float64 // frozen once len == window
	cur   []float64 // ring buffer, cap == window
	pos   int       // ring write position
	fresh int       // samples pushed since the last (re)baseline
}

// push feeds one sample. The first window of samples builds the initial
// reference; everything after flows through the current-window ring.
func (c *channelState) push(v float64, window int) {
	if len(c.ref) < window {
		c.ref = append(c.ref, v)
		return
	}
	if len(c.cur) < window {
		c.cur = append(c.cur, v)
	} else {
		c.cur[c.pos] = v
		c.pos = (c.pos + 1) % window
	}
	c.fresh++
}

// ready reports whether both windows are populated and the current
// window holds only samples newer than the last baseline, so a KS
// rejection cannot be an artifact of comparing a window against itself.
func (c *channelState) ready(window int) bool {
	return len(c.ref) == window && len(c.cur) == window && c.fresh >= window
}

// test runs the two-sample KS test of reference vs. current window.
func (c *channelState) test() (d, p float64) {
	return stats.KSTwoSample(c.ref, c.cur)
}

// rebaseline freezes the current window as the new reference. Sample
// order within a window is irrelevant to KS, so the ring is copied
// as-is.
func (c *channelState) rebaseline() {
	if len(c.cur) == len(c.ref) {
		copy(c.ref, c.cur)
	}
	c.fresh = 0
}
