package learn

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"sync"

	"ssdfail/internal/core"
	"ssdfail/internal/dataset"
	"ssdfail/internal/eval"
	"ssdfail/internal/expgrid"
	"ssdfail/internal/failure"
	"ssdfail/internal/ml/forest"
	"ssdfail/internal/trace"
)

// Config parameterizes the learning loop. The zero value is not usable;
// unset fields take the documented defaults via withDefaults.
type Config struct {
	// Scope restricts training to one drive model ("" or "all" trains
	// on every model). Out-of-scope stream records still advance the
	// cursor but feed neither the fleet state nor the drift windows.
	Scope string
	// Lookahead N: the retrained predictor estimates P(failure within N
	// days). Default 7.
	Lookahead int
	// Seed is the base seed; every random choice is derived from it and
	// a canonical key via expgrid.DeriveSeed. The retrain key includes
	// the snapshot LSN, so a given WAL prefix reproduces a given model.
	Seed uint64
	// Workers parallelizes classifier training. Results are worker-count
	// independent (per-tree seeds); default 1.
	Workers int
	// Trees is the challenger forest size. Default 25 — a quarter of
	// the offline Table 6 forest, sized for frequent retrains.
	Trees int
	// HoldoutFraction of drives (by stable ID hash) is never trained
	// on and scores both champion and challenger. Default 0.25.
	HoldoutFraction float64
	// Margin is the non-inferiority gate: promote when
	// challengerAUC >= championAUC - Margin. Default 0.01.
	Margin float64
	// Window is the drift window size in records; CheckEvery is the
	// check cadence. Defaults 256 and 64.
	Window     int
	CheckEvery int
	// Alpha is the KS p-value threshold. Default 1e-3.
	Alpha float64
	// MinTrainRows gates retraining until enough labeled rows exist.
	// Default 256.
	MinTrainRows int
	// CooldownRecords suppresses drift checks for this many records
	// after a retrain attempt. Default 2*Window.
	CooldownRecords int
	// QuietDays: a drive silent for more than this many days behind the
	// fleet frontier is deemed failed (see synthesizeSwaps). Default 14.
	QuietDays int32
	// DownsampleRatio is negatives per positive in training. Default 5.
	DownsampleRatio float64
	// ObserveEvery emits a progress event every that many records.
	// Default 1024; negative disables.
	ObserveEvery int
	// StartLSN is the stream cursor before the first record, so the
	// k-th record fed has LSN StartLSN+k. Default 0 (a from-genesis
	// tail, where the first WAL record is LSN 1).
	StartLSN uint64
	// CacheBytes bounds the per-drive feature-matrix cache (0 = 64 MiB).
	CacheBytes int64
	// Channels are the drift dimensions (nil = DefaultChannels).
	Channels []Channel
	// Champion is the currently serving predictor (nil = none yet: the
	// first viable challenger is promoted unconditionally).
	Champion *core.Predictor
	// Donor, when Champion is nil, seeds the champion slot with another
	// drive model's predictor — the paper's Table 8 cross-model
	// transfer as a live bootstrap: the donor serves (and sets the bar)
	// until a locally trained challenger beats it on local holdout.
	Donor *core.Predictor
	// Promote installs a passed challenger (write bytes + trigger the
	// daemon's reload). nil = record the decision but skip the side
	// effect (replay/analysis mode). A Promote error rejects the
	// challenger and keeps the champion.
	Promote func(encoded []byte, o Outcome) error
	// MutateTrain, when set, is applied to the assembled training matrix
	// before downsampling. It is a test seam: scrambling the labels here
	// produces a deliberately crippled challenger, which the
	// non-inferiority gate must reject while the champion keeps serving.
	MutateTrain func(m *dataset.Matrix)
	// Sink receives canonical event lines (nil = ring only); RingCap
	// bounds the queryable tail.
	Sink    io.Writer
	RingCap int
}

func (c Config) withDefaults() Config {
	if c.Scope == "" {
		c.Scope = "all"
	}
	if c.Lookahead <= 0 {
		c.Lookahead = 7
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Trees <= 0 {
		c.Trees = 25
	}
	if c.HoldoutFraction <= 0 || c.HoldoutFraction >= 1 {
		c.HoldoutFraction = 0.25
	}
	if c.Margin <= 0 {
		c.Margin = 0.01
	}
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 64
	}
	if c.Alpha <= 0 {
		c.Alpha = 1e-3
	}
	if c.MinTrainRows <= 0 {
		c.MinTrainRows = 256
	}
	if c.CooldownRecords <= 0 {
		c.CooldownRecords = 2 * c.Window
	}
	if c.QuietDays <= 0 {
		c.QuietDays = 14
	}
	if c.DownsampleRatio <= 0 {
		c.DownsampleRatio = 5
	}
	if c.ObserveEvery == 0 {
		c.ObserveEvery = 1024
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.Channels == nil {
		c.Channels = DefaultChannels()
	}
	return c
}

// Outcome summarizes one retrain attempt.
type Outcome struct {
	LSN           uint64
	Seed          uint64
	TrainRows     int
	TrainPos      int
	HoldoutRows   int
	HoldoutPos    int
	TrainDrives   int
	HoldoutDrives int
	ChampionAUC   float64 // NaN when no champion was serving
	ChallengerAUC float64
	ModelSHA      string // hex SHA-256 of the encoded challenger bytes
	Promoted      bool
	Reason        string // reject/skip reason when not promoted
}

// Stats is a point-in-time snapshot for metrics export.
type Stats struct {
	Records       uint64
	LSN           uint64
	Drives        int
	Frontier      int32
	DriftEvents   uint64
	Retrains      uint64
	Promotions    uint64
	Rejections    uint64
	Skips         uint64
	RowsExtracted uint64 // labeled rows assembled across all retrains
	ChampionAUC   float64
	ChallengerAUC float64
	// DriftP[i] is the last KS p-value of Channels[i] (NaN before the
	// first check).
	DriftP []float64
}

// Loop is the deterministic learning engine. It is fed stream records
// in order via Observe and is not safe for concurrent Observe calls;
// Stats and the event log are safe to read from other goroutines.
type Loop struct {
	cfg      Config
	scope    trace.Model // parsed scope; valid when scoped
	scoped   bool
	log      *EventLog
	state    *fleetState
	channels []channelState
	cache    *expgrid.MatrixCache
	champion *core.Predictor

	t           uint64 // records fed (in- and out-of-scope)
	lastAttempt uint64 // t at the last retrain attempt; 0 = none
	stats       Stats
	statsMu     sync.Mutex
}

// NewLoop builds an engine. A donor-seeded champion emits a bootstrap
// event at t=0, so the transfer provenance is part of the decision log.
func NewLoop(cfg Config) (*Loop, error) {
	cfg = cfg.withDefaults()
	l := &Loop{
		cfg:   cfg,
		log:   NewEventLog(cfg.Sink, cfg.RingCap),
		state: newFleetState(),
		cache: expgrid.NewMatrixCache(cfg.CacheBytes),
	}
	if cfg.Scope != "all" {
		m, err := trace.ParseModel(cfg.Scope)
		if err != nil {
			return nil, fmt.Errorf("learn: scope: %w", err)
		}
		l.scope, l.scoped = m, true
	}
	for _, ch := range cfg.Channels {
		l.channels = append(l.channels, channelState{ch: ch})
	}
	l.stats.ChampionAUC = math.NaN()
	l.stats.ChallengerAUC = math.NaN()
	l.stats.DriftP = make([]float64, len(l.channels))
	for i := range l.stats.DriftP {
		l.stats.DriftP[i] = math.NaN()
	}
	l.champion = cfg.Champion
	if l.champion == nil && cfg.Donor != nil {
		l.champion = cfg.Donor
		l.emit(Event{Tick: 0, Kind: EventBootstrap, LSN: cfg.StartLSN, Fields: []Field{
			F("source", "donor"),
			Fint("lookahead", int64(cfg.Donor.Lookahead)),
		}})
	}
	return l, nil
}

// Log returns the decision log.
func (l *Loop) Log() *EventLog { return l.log }

// Champion returns the predictor currently holding the champion slot.
func (l *Loop) Champion() *core.Predictor { return l.champion }

// Stats returns a snapshot of the loop's counters.
func (l *Loop) Stats() Stats {
	l.statsMu.Lock()
	defer l.statsMu.Unlock()
	s := l.stats
	s.DriftP = append([]float64(nil), l.stats.DriftP...)
	return s
}

func (l *Loop) mutateStats(f func(*Stats)) {
	l.statsMu.Lock()
	f(&l.stats)
	l.statsMu.Unlock()
}

// lsn returns the stream position: the LSN of the last record fed.
func (l *Loop) lsn() uint64 { return l.cfg.StartLSN + l.t }

func (l *Loop) emit(e Event) { l.log.Append(e) }

// inScope reports whether records of this drive model feed the trainer.
func (l *Loop) inScope(m trace.Model) bool { return !l.scoped || m == l.scope }

// Observe feeds one stream record, in WAL order. All trainer behavior —
// drift checks, retrains, promotions — happens synchronously inside
// Observe at deterministic record counts.
func (l *Loop) Observe(id uint32, model trace.Model, rec trace.DayRecord) {
	l.t++
	if l.inScope(model) {
		if l.state.add(id, model, rec) {
			for i := range l.channels {
				l.channels[i].push(l.channels[i].ch.Value(&rec), l.cfg.Window)
			}
		}
	}
	l.mutateStats(func(s *Stats) {
		s.Records = l.t
		s.LSN = l.lsn()
		s.Drives = len(l.state.drives)
		s.Frontier = l.state.frontier
	})
	if l.cfg.ObserveEvery > 0 && l.t%uint64(l.cfg.ObserveEvery) == 0 {
		l.emit(Event{Tick: l.t, Kind: EventObserve, LSN: l.lsn(), Fields: []Field{
			Fint("drives", int64(len(l.state.drives))),
			Fint("records", int64(l.state.records)),
			Fint("frontier", int64(l.state.frontier)),
		}})
	}
	if l.t%uint64(l.cfg.CheckEvery) == 0 {
		l.maybeDrift()
	}
}

// driftHit is one channel's KS rejection.
type driftHit struct {
	idx  int
	d, p float64
}

// maybeDrift runs the KS checks and, when any channel rejects, the full
// retrain → evaluate → gate sequence.
func (l *Loop) maybeDrift() {
	if l.lastAttempt > 0 && l.t-l.lastAttempt < uint64(l.cfg.CooldownRecords) {
		return
	}
	var hits []driftHit
	for i := range l.channels {
		c := &l.channels[i]
		if !c.ready(l.cfg.Window) {
			continue
		}
		d, p := c.test()
		l.mutateStats(func(s *Stats) { s.DriftP[i] = p })
		if p < l.cfg.Alpha {
			hits = append(hits, driftHit{i, d, p})
		}
	}
	if len(hits) == 0 {
		return
	}
	for _, h := range hits {
		l.emit(Event{Tick: l.t, Kind: EventDrift, LSN: l.lsn(), Fields: []Field{
			F("channel", l.channels[h.idx].ch.Name),
			Ffloat("d", h.d),
			Ffloat("p", h.p),
		}})
	}
	l.mutateStats(func(s *Stats) { s.DriftEvents += uint64(len(hits)) })
	l.Retrain()
}

// appendRows copies src rows with Day <= cutoff into dst.
func appendRows(dst, src *dataset.Matrix, cutoff int32) int {
	w := src.W()
	n := 0
	for i := 0; i < src.Len(); i++ {
		if src.Day[i] > cutoff {
			continue
		}
		dst.X = append(dst.X, src.X[i*w:(i+1)*w]...)
		dst.Y = append(dst.Y, src.Y[i])
		dst.DriveIdx = append(dst.DriveIdx, src.DriveIdx[i])
		dst.Day = append(dst.Day, src.Day[i])
		dst.Age = append(dst.Age, src.Age[i])
		n++
	}
	return n
}

// aucOn scores the matrix with p and returns the ROC AUC.
func aucOn(p *core.Predictor, m *dataset.Matrix) float64 {
	scores := make([]float64, m.Len())
	p.ScoreMatrix(m, scores)
	return eval.AUC(scores, m.Y)
}

// Retrain runs one full retrain attempt at the current stream position:
// rebuild the labeled dataset (through the per-drive matrix cache),
// train a challenger seeded from the snapshot LSN, evaluate champion
// and challenger on the held-out drive partition, and promote the
// challenger only when its AUC is non-inferior. Drift triggers call it
// automatically; callers may also force an attempt (cmd/ssdtrain
// -retrain-now). Every path rebaselines the drift windows and starts
// the cooldown.
func (l *Loop) Retrain() Outcome {
	l.lastAttempt = l.t
	defer func() {
		for i := range l.channels {
			l.channels[i].rebaseline()
		}
	}()

	o := Outcome{LSN: l.lsn(), ChampionAUC: math.NaN(), ChallengerAUC: math.NaN()}

	// Assemble train and holdout matrices drive by drive, in ID order.
	// Rows within lookahead+quiet of the frontier are excluded: their
	// labels are not final yet (a failure there may still surface as a
	// synthesized swap later).
	cutoff := l.state.frontier - int32(l.cfg.Lookahead) - l.cfg.QuietDays
	holdSeed := expgrid.DeriveSeed(l.cfg.Seed, "learn/holdout")
	train, hold := &dataset.Matrix{}, &dataset.Matrix{}
	for _, id := range l.state.sortedIDs() {
		ds := l.state.drives[id]
		drive := l.state.buildDrive(ds, l.cfg.QuietDays)
		key := fmt.Sprintf("learn/%s/N=%d/drive=%d/recs=%d/swaps=%d",
			l.cfg.Scope, l.cfg.Lookahead, id, len(drive.Days), len(drive.Swaps))
		m, err := l.cache.GetOrBuild(key, func() (*dataset.Matrix, error) {
			single := &trace.Fleet{Horizon: l.state.frontier + 1, Drives: []trace.Drive{drive}}
			an := failure.Analyze(single)
			return dataset.Extract(single, an, dataset.Options{
				Lookahead: l.cfg.Lookahead,
				AgeMax:    -1,
			}), nil
		})
		if err != nil {
			return l.skip(o, "extract_error")
		}
		dst := train
		holdout := expgrid.Hash01(holdSeed, int(id)) < l.cfg.HoldoutFraction
		if holdout {
			dst = hold
		}
		if appendRows(dst, m, cutoff) > 0 {
			if holdout {
				o.HoldoutDrives++
			} else {
				o.TrainDrives++
			}
		}
	}
	o.TrainRows, o.TrainPos = train.Len(), train.Positives()
	o.HoldoutRows, o.HoldoutPos = hold.Len(), hold.Positives()
	l.mutateStats(func(s *Stats) { s.RowsExtracted += uint64(train.Len() + hold.Len()) })

	if o.TrainRows < l.cfg.MinTrainRows || o.TrainPos == 0 {
		return l.skip(o, "insufficient_train")
	}
	if o.HoldoutPos == 0 || o.HoldoutPos == o.HoldoutRows {
		return l.skip(o, "no_holdout_signal")
	}

	// Train the challenger. The seed is derived from the snapshot LSN:
	// same WAL prefix, same model bytes, at any worker count.
	o.Seed = expgrid.DeriveSeed(l.cfg.Seed, fmt.Sprintf("learn/retrain/lsn=%d", o.LSN))
	if l.cfg.MutateTrain != nil {
		l.cfg.MutateTrain(train)
	}
	sampled := dataset.Downsample(train, l.cfg.DownsampleRatio, o.Seed)
	fc := forest.DefaultConfig()
	fc.Trees = l.cfg.Trees
	fc.Seed = o.Seed
	fc.Workers = l.cfg.Workers
	challenger, err := core.TrainPredictorOnMatrix(sampled, core.PredictorOptions{
		Lookahead: l.cfg.Lookahead,
		Factory:   forest.NewFactory(fc),
	})
	if err != nil {
		return l.skip(o, "train_error")
	}
	l.mutateStats(func(s *Stats) { s.Retrains++ })
	l.emit(Event{Tick: l.t, Kind: EventRetrain, LSN: o.LSN, Fields: []Field{
		Fuint("seed", o.Seed),
		Fint("rows", int64(sampled.Len())),
		Fint("pos", int64(sampled.Positives())),
		Fint("train_drives", int64(o.TrainDrives)),
		Fint("holdout_rows", int64(o.HoldoutRows)),
		Fint("holdout_pos", int64(o.HoldoutPos)),
		Fint("holdout_drives", int64(o.HoldoutDrives)),
	}})

	// Evaluate both contenders on the same held-out drives.
	o.ChallengerAUC = aucOn(challenger, hold)
	if l.champion != nil {
		o.ChampionAUC = aucOn(l.champion, hold)
	}
	l.mutateStats(func(s *Stats) {
		s.ChampionAUC = o.ChampionAUC
		s.ChallengerAUC = o.ChallengerAUC
	})
	l.emit(Event{Tick: l.t, Kind: EventEvaluate, LSN: o.LSN, Fields: []Field{
		Ffloat("champion", o.ChampionAUC),
		Ffloat("challenger", o.ChallengerAUC),
		Ffloat("margin", l.cfg.Margin),
	}})

	// The non-inferiority gate. A NaN challenger AUC never passes; a
	// missing champion always loses.
	pass := o.ChallengerAUC >= 0 && // NaN guard
		(l.champion == nil || o.ChallengerAUC >= o.ChampionAUC-l.cfg.Margin)
	if !pass {
		o.Reason = "inferior"
		l.mutateStats(func(s *Stats) { s.Rejections++ })
		l.emit(Event{Tick: l.t, Kind: EventReject, LSN: o.LSN, Fields: []Field{
			F("reason", o.Reason),
			Ffloat("challenger", o.ChallengerAUC),
			Ffloat("champion", o.ChampionAUC),
		}})
		return o
	}

	encoded, err := challenger.Encode()
	if err != nil {
		return l.skip(o, "encode_error")
	}
	sum := sha256.Sum256(encoded)
	o.ModelSHA = hex.EncodeToString(sum[:])
	if l.cfg.Promote != nil {
		if err := l.cfg.Promote(encoded, o); err != nil {
			// The side effect failed (reload rejected, daemon away):
			// the champion keeps serving. The error text is not logged
			// — it can carry nondeterministic detail (ports, paths).
			o.Reason = "promote_failed"
			l.mutateStats(func(s *Stats) { s.Rejections++ })
			l.emit(Event{Tick: l.t, Kind: EventReject, LSN: o.LSN, Fields: []Field{
				F("reason", o.Reason),
				Ffloat("challenger", o.ChallengerAUC),
				Ffloat("champion", o.ChampionAUC),
			}})
			return o
		}
	}
	o.Promoted = true
	l.champion = challenger
	l.mutateStats(func(s *Stats) { s.Promotions++ })
	l.emit(Event{Tick: l.t, Kind: EventPromote, LSN: o.LSN, Fields: []Field{
		Ffloat("challenger", o.ChallengerAUC),
		Ffloat("champion", o.ChampionAUC),
		F("sha256", o.ModelSHA[:12]),
	}})
	return o
}

// skip records a retrain attempt that could not produce a challenger.
func (l *Loop) skip(o Outcome, reason string) Outcome {
	o.Reason = reason
	l.mutateStats(func(s *Stats) { s.Skips++ })
	l.emit(Event{Tick: l.t, Kind: EventSkip, LSN: o.LSN, Fields: []Field{
		F("reason", reason),
		Fint("rows", int64(o.TrainRows)),
		Fint("pos", int64(o.TrainPos)),
		Fint("holdout_rows", int64(o.HoldoutRows)),
		Fint("holdout_pos", int64(o.HoldoutPos)),
	}})
	return o
}
