// Package learn closes the ingest → train → serve loop: a trainer that
// tails a serving daemon's WAL stream, reconstructs the fleet trace it
// describes, watches the ingested feature distribution for drift with
// the two-sample KS test, retrains the paper's predictor through the
// expgrid seed-derivation and matrix-cache machinery, and promotes the
// challenger over the serving champion only when its held-out AUC is
// non-inferior.
//
// The engine owns no clock and draws no sequential randomness: its
// entire behavior is a function of (config, WAL prefix), with every
// random choice seeded from the snapshot LSN through
// expgrid.DeriveSeed. Two runs over the same stream produce the same
// decisions, the same model bytes, and the same event log — byte for
// byte, at any worker count.
package learn

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// EventKind is the kind of one trainer decision.
type EventKind string

const (
	// EventObserve: periodic progress mark — stream position, fleet
	// size, frontier day.
	EventObserve EventKind = "observe"
	// EventBootstrap: the champion slot was seeded from a donor model's
	// predictor (the Table 8 cross-model transfer as a live operation).
	EventBootstrap EventKind = "bootstrap"
	// EventDrift: a KS check rejected "same distribution" for one
	// feature channel (reference window vs. current window).
	EventDrift EventKind = "drift"
	// EventSkip: a triggered retrain could not run (not enough labeled
	// rows, no holdout positives, ...); the trigger rebaselines and the
	// trainer keeps tailing.
	EventSkip EventKind = "skip"
	// EventRetrain: a challenger was trained; carries the snapshot LSN
	// and the derived seed, the reproducibility contract.
	EventRetrain EventKind = "retrain"
	// EventEvaluate: champion vs. challenger AUC on the held-out drive
	// partition.
	EventEvaluate EventKind = "evaluate"
	// EventPromote: the challenger passed the non-inferiority gate and
	// was installed; carries the SHA-256 of the published model bytes.
	EventPromote EventKind = "promote"
	// EventReject: the challenger failed the gate (or the promotion
	// side effect failed); the champion keeps serving.
	EventReject EventKind = "reject"
)

// fmtFloat renders a float in the shortest round-trippable form, so
// encoded events are canonical.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Event is one trainer decision, the unit of the replayable log. Time
// is the count of stream records applied so far, not a wall clock: the
// engine owns no clock, so two runs over the same WAL prefix produce
// the same events — byte for byte once encoded.
type Event struct {
	Tick uint64 // records applied when the event fired
	Kind EventKind
	LSN  uint64 // stream position (last applied record's LSN)

	// Fields is the kind-specific payload, already in canonical order.
	// Values are pre-rendered (fmtFloat for floats) so String is pure
	// concatenation.
	Fields []Field
}

// Field is one key=value pair of an event's payload.
type Field struct{ Key, Value string }

// F builds a string field.
func F(k, v string) Field { return Field{k, v} }

// Fint builds an integer field.
func Fint(k string, v int64) Field { return Field{k, strconv.FormatInt(v, 10)} }

// Fuint builds an unsigned integer field.
func Fuint(k string, v uint64) Field { return Field{k, strconv.FormatUint(v, 10)} }

// Ffloat builds a float field in canonical shortest form.
func Ffloat(k string, v float64) Field { return Field{k, fmtFloat(v)} }

// String renders the canonical single-line encoding:
//
//	t=4096 event=drift lsn=4096 channel=writes d=0.61 p=1.2e-10
//
// t, event, and lsn always lead; the rest is the kind's fixed field
// order. The encoding is pinned by the committed decision-log goldens.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%d event=%s lsn=%d", e.Tick, e.Kind, e.LSN)
	for _, f := range e.Fields {
		b.WriteByte(' ')
		b.WriteString(f.Key)
		b.WriteByte('=')
		b.WriteString(f.Value)
	}
	return b.String()
}

// EventLog collects the trainer's decisions: every event goes to the
// optional sink as one canonical line, and the most recent ringCap
// events stay queryable in memory. Safe for concurrent use.
type EventLog struct {
	mu      sync.Mutex
	sink    io.Writer
	ring    []Event
	ringCap int
	start   int
	total   uint64
	sinkErr error
}

// DefaultRingCap bounds the in-memory tail when none is given.
const DefaultRingCap = 256

// NewEventLog builds a log writing lines to sink (nil = in-memory ring
// only) keeping the last ringCap events queryable (0 = DefaultRingCap).
func NewEventLog(sink io.Writer, ringCap int) *EventLog {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &EventLog{sink: sink, ring: make([]Event, 0, ringCap), ringCap: ringCap}
}

// Append records one event.
func (l *EventLog) Append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.ring) < l.ringCap {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.start] = e
		l.start = (l.start + 1) % l.ringCap
	}
	if l.sink != nil && l.sinkErr == nil {
		_, err := io.WriteString(l.sink, e.String()+"\n")
		if err != nil {
			// Latch the first sink error; the ring keeps working.
			l.sinkErr = err
		}
	}
}

// Recent returns up to n most recent events, oldest first.
func (l *EventLog) Recent(n int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > len(l.ring) {
		n = len(l.ring)
	}
	out := make([]Event, 0, n)
	for i := len(l.ring) - n; i < len(l.ring); i++ {
		out = append(out, l.ring[(l.start+i)%len(l.ring)])
	}
	return out
}

// Total returns the number of events appended over the log's lifetime.
func (l *EventLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// SinkErr returns the latched sink write error, if any.
func (l *EventLog) SinkErr() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinkErr
}
