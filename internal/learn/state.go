package learn

import (
	"sort"

	"ssdfail/internal/trace"
)

// driveState accumulates one drive's stream of daily reports in arrival
// (= day) order.
type driveState struct {
	id    uint32
	model trace.Model
	recs  []trace.DayRecord
}

// fleetState reconstructs a trace.Fleet from the WAL stream. The WAL
// carries only (drive, model, day record) tuples — no swap events — so
// failure labels have to be resynthesized from the reports themselves:
// a drive that reports Dead, or that goes silent while the rest of the
// fleet's frontier advances, failed; a drive that reports again after a
// long gap came back from repair. This mirrors the paper's Section 3
// reconstruction (failure day = last day of operational activity), with
// the swap day approximated as the day after the drive's last report.
type fleetState struct {
	drives   map[uint32]*driveState
	ids      []uint32 // sorted; rebuilt lazily
	sorted   bool
	frontier int32 // max day observed across the fleet
	records  int   // total accumulated records
}

func newFleetState() *fleetState {
	return &fleetState{drives: make(map[uint32]*driveState), frontier: -1}
}

// add accumulates one report. Records that do not extend the drive's
// day sequence (duplicates, regressions — possible on a re-pulled WAL
// overlap) are dropped; the daemon's store enforced the interesting
// invariants before the record ever reached the WAL.
func (s *fleetState) add(id uint32, model trace.Model, rec trace.DayRecord) bool {
	d, ok := s.drives[id]
	if !ok {
		d = &driveState{id: id, model: model}
		s.drives[id] = d
		s.sorted = false
	}
	if n := len(d.recs); n > 0 && rec.Day <= d.recs[n-1].Day {
		return false
	}
	d.recs = append(d.recs, rec)
	s.records++
	if rec.Day > s.frontier {
		s.frontier = rec.Day
	}
	return true
}

// sortedIDs returns the drive IDs in ascending order — the iteration
// order of every rebuild, so matrix assembly is map-order independent.
func (s *fleetState) sortedIDs() []uint32 {
	if !s.sorted {
		s.ids = s.ids[:0]
		for id := range s.drives {
			s.ids = append(s.ids, id)
		}
		sort.Slice(s.ids, func(a, b int) bool { return s.ids[a] < s.ids[b] })
		s.sorted = true
	}
	return s.ids
}

// synthesizeSwaps reconstructs the drive's swap events from its report
// stream, viewed at the fleet frontier:
//
//   - a run of Dead reports followed by a live report again means the
//     drive was swapped and returned from repair;
//   - a mid-stream report gap longer than quietDays means the drive
//     failed without reporting (the paper's symptom-free cessation) and
//     returned;
//   - a trailing Dead report, or trailing silence longer than quietDays
//     behind the frontier, means the drive failed and has not returned.
//
// The synthesized swap day is the day after the last report of the
// ended period, which keeps failure.Analyze's FailDay (last active day
// before the swap) exact. Drives whose silence is still shorter than
// quietDays are right-censored: no swap, no positive labels yet.
func synthesizeSwaps(recs []trace.DayRecord, frontier int32, quietDays int32) []trace.SwapEvent {
	var swaps []trace.SwapEvent
	for i := 0; i+1 < len(recs); i++ {
		cur, next := &recs[i], &recs[i+1]
		if next.Day-cur.Day > quietDays || (cur.Dead && !next.Dead) {
			swaps = append(swaps, trace.SwapEvent{Day: cur.Day + 1})
		}
	}
	if n := len(recs); n > 0 {
		last := &recs[n-1]
		if last.Dead || frontier-last.Day > quietDays {
			swaps = append(swaps, trace.SwapEvent{Day: last.Day + 1})
		}
	}
	return swaps
}

// buildDrive materializes one drive's trace view: its accumulated
// records plus the swaps synthesized at the current frontier. The
// record and swap counts key the per-drive matrix cache — a new report
// or a newly detected failure invalidates the drive's cached matrix;
// anything else is a hit, which is what makes re-extraction
// incremental.
func (s *fleetState) buildDrive(d *driveState, quietDays int32) trace.Drive {
	swaps := synthesizeSwaps(d.recs, s.frontier, quietDays)
	return trace.Drive{ID: d.id, Model: d.model, Days: d.recs, Swaps: swaps}
}
