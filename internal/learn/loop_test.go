package learn

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"ssdfail/internal/core"
	"ssdfail/internal/dataset"
	"ssdfail/internal/expgrid"
	"ssdfail/internal/trace"
)

// testConfig is the shared unit-test loop configuration: small windows
// so drift resolves quickly, an alpha far below anything a stationary
// stream can reach (at window 128 the KS p-value for identical
// distributions essentially never dips under 1e-6), and a forest small
// enough to train in milliseconds.
func testConfig() Config {
	return Config{
		Seed:         42,
		Trees:        10,
		Window:       128,
		CheckEvery:   64,
		Alpha:        1e-9,
		ObserveEvery: -1,
	}
}

// driftStream is the canonical test stream: 48 drives over 120 days
// with the write-volume shift injected at day 100.
func driftStream() []streamRec {
	return synthStream(synthConfig{drives: 48, days: 120, shiftDay: 100, shiftMult: 8, seed: 7})
}

// steadyStream is the same fleet with no shift.
func steadyStream() []streamRec {
	return synthStream(synthConfig{drives: 48, days: 120, shiftDay: -1, seed: 7})
}

func TestSynthesizeSwaps(t *testing.T) {
	rec := func(day int32, dead bool) trace.DayRecord {
		return trace.DayRecord{Day: day, Reads: 1, Dead: dead}
	}
	cases := []struct {
		name     string
		recs     []trace.DayRecord
		frontier int32
		want     []int32 // swap days
	}{
		{"healthy", []trace.DayRecord{rec(0, false), rec(1, false)}, 1, nil},
		{"trailing dead", []trace.DayRecord{rec(0, false), rec(1, true)}, 30, []int32{2}},
		{"trailing silence", []trace.DayRecord{rec(0, false), rec(1, false)}, 30, []int32{2}},
		{"censored silence", []trace.DayRecord{rec(0, false), rec(10, false)}, 20, nil},
		{"mid-stream gap", []trace.DayRecord{rec(0, false), rec(40, false), rec(41, false)}, 41, []int32{1}},
		{"dead then return", []trace.DayRecord{rec(0, false), rec(1, true), rec(3, false)}, 3, []int32{2}},
		{"two failures", []trace.DayRecord{rec(0, false), rec(40, false), rec(41, true)}, 60, []int32{1, 42}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			swaps := synthesizeSwaps(tc.recs, tc.frontier, 14)
			var got []int32
			for _, s := range swaps {
				got = append(got, s.Day)
			}
			if fmt.Sprint(got) != fmt.Sprint(tc.want) {
				t.Fatalf("swaps %v, want %v", got, tc.want)
			}
		})
	}
}

func TestFleetStateDropsNonIncreasingDays(t *testing.T) {
	s := newFleetState()
	r := trace.DayRecord{Day: 5, Reads: 1}
	if !s.add(1, trace.MLCA, r) {
		t.Fatal("first record rejected")
	}
	if s.add(1, trace.MLCA, r) {
		t.Fatal("duplicate day accepted")
	}
	if s.add(1, trace.MLCA, trace.DayRecord{Day: 4}) {
		t.Fatal("regressing day accepted")
	}
	if s.records != 1 || s.frontier != 5 {
		t.Fatalf("records=%d frontier=%d after dedup", s.records, s.frontier)
	}
}

func TestEventCanonicalEncoding(t *testing.T) {
	e := Event{Tick: 4096, Kind: EventDrift, LSN: 4100, Fields: []Field{
		F("channel", "writes"),
		Ffloat("d", 0.5),
		Ffloat("p", 1.25e-10),
		Fint("n", -3),
		Fuint("seed", 18446744073709551615),
	}}
	want := "t=4096 event=drift lsn=4100 channel=writes d=0.5 p=1.25e-10 n=-3 seed=18446744073709551615"
	if got := e.String(); got != want {
		t.Fatalf("encoding\n got %q\nwant %q", got, want)
	}
	// NaN renders canonically too (champion AUC before any champion).
	if got := fmtFloat(math.NaN()); got != "NaN" {
		t.Fatalf("NaN rendered %q", got)
	}
}

func TestEventLogRingAndSink(t *testing.T) {
	var sink bytes.Buffer
	l := NewEventLog(&sink, 4)
	for i := 1; i <= 6; i++ {
		l.Append(Event{Tick: uint64(i), Kind: EventObserve})
	}
	if l.Total() != 6 {
		t.Fatalf("total %d, want 6", l.Total())
	}
	recent := l.Recent(0)
	if len(recent) != 4 || recent[0].Tick != 3 || recent[3].Tick != 6 {
		t.Fatalf("ring kept %v", recent)
	}
	if got := strings.Count(sink.String(), "\n"); got != 6 {
		t.Fatalf("sink got %d lines, want 6", got)
	}

	failing := NewEventLog(failWriter{}, 0)
	failing.Append(Event{Tick: 1, Kind: EventObserve})
	if failing.SinkErr() == nil {
		t.Fatal("sink error not latched")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("sink down") }

// TestDriftDetectRetrainPromote closes the loop on the synthetic
// stream: a stationary prefix must trigger nothing, the injected
// write-volume shift must trip the KS check, and the resulting retrain
// must promote a first challenger whose published bytes hash to the
// SHA the promote event records.
func TestDriftDetectRetrainPromote(t *testing.T) {
	recs := driftStream()
	var published []byte
	cfg := testConfig()
	cfg.Promote = func(encoded []byte, o Outcome) error {
		published = append([]byte(nil), encoded...)
		return nil
	}
	l, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(l, recs)

	st := l.Stats()
	if st.DriftEvents == 0 {
		t.Fatal("no drift detected across the injected shift")
	}
	if st.Retrains == 0 || st.Promotions == 0 {
		t.Fatalf("retrains=%d promotions=%d, want >= 1 each (skips=%d)", st.Retrains, st.Promotions, st.Skips)
	}
	if l.Champion() == nil {
		t.Fatal("no champion after promotion")
	}
	if st.ChallengerAUC < 0.7 {
		t.Fatalf("challenger AUC %.3f implausibly low for the synthetic signature", st.ChallengerAUC)
	}

	// Drift must postdate the shift: the stationary prefix is clean.
	preShift := 0
	for i := range recs {
		if recs[i].rec.Day < 100 {
			preShift++
		}
	}
	var sawPromote bool
	for _, e := range l.Log().Recent(0) {
		if e.Kind == EventDrift && e.Tick <= uint64(preShift) {
			t.Fatalf("drift event at tick %d, before the day-100 shift (%d pre-shift records)", e.Tick, preShift)
		}
		if e.Kind == EventPromote {
			sawPromote = true
			sum := sha256.Sum256(published)
			want := "sha256=" + hex.EncodeToString(sum[:])[:12]
			if !strings.Contains(e.String(), want) {
				t.Fatalf("promote event %q does not carry %s", e.String(), want)
			}
		}
	}
	if !sawPromote {
		t.Fatal("no promote event in the log")
	}
	if len(published) == 0 {
		t.Fatal("promote hook never received model bytes")
	}
}

// TestSteadyStreamTriggersNothing pins the false-positive side: the
// same fleet without the shift must never drift, retrain, or promote.
func TestSteadyStreamTriggersNothing(t *testing.T) {
	l, err := NewLoop(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	feed(l, steadyStream())
	st := l.Stats()
	if st.DriftEvents != 0 || st.Retrains != 0 || st.Promotions != 0 || st.Skips != 0 {
		t.Fatalf("stationary stream triggered drift=%d retrains=%d promotions=%d skips=%d",
			st.DriftEvents, st.Retrains, st.Promotions, st.Skips)
	}
}

// trainedChampion builds a competent predictor by running one clean
// retrain over the steady stream.
func trainedChampion(t *testing.T) *core.Predictor {
	t.Helper()
	l, err := NewLoop(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	feed(l, steadyStream())
	o := l.Retrain()
	if !o.Promoted {
		t.Fatalf("champion training retrain not promoted: %+v", o)
	}
	return l.Champion()
}

// TestCrippledChallengerRejected is the champion/challenger safety
// property: a challenger trained on scrambled labels must fail the
// non-inferiority gate, leave the champion serving, and never reach the
// Promote side effect.
func TestCrippledChallengerRejected(t *testing.T) {
	champion := trainedChampion(t)

	cfg := testConfig()
	cfg.Champion = champion
	cfg.MutateTrain = func(m *dataset.Matrix) {
		// Rotate the labels by a large offset: same class balance, but
		// features and labels are decorrelated, so the challenger's
		// holdout AUC collapses to coin-flipping.
		rotated := make([]int8, len(m.Y))
		for i := range m.Y {
			rotated[i] = m.Y[(i+997)%len(m.Y)]
		}
		copy(m.Y, rotated)
	}
	cfg.Promote = func([]byte, Outcome) error {
		t.Fatal("promote side effect ran for a crippled challenger")
		return nil
	}
	l, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(l, driftStream())
	st := l.Stats()
	if st.Promotions != 0 {
		t.Fatalf("crippled challenger promoted %d times", st.Promotions)
	}
	if st.Rejections == 0 {
		t.Fatalf("no rejection recorded (retrains=%d skips=%d)", st.Retrains, st.Skips)
	}
	if l.Champion() != champion {
		t.Fatal("champion replaced despite rejection")
	}
	var sawReject bool
	for _, e := range l.Log().Recent(0) {
		if e.Kind == EventReject && strings.Contains(e.String(), "reason=inferior") {
			sawReject = true
		}
	}
	if !sawReject {
		t.Fatal("no reason=inferior reject event in the log")
	}
}

// TestPromoteFailureKeepsChampion: a failed promotion side effect (the
// daemon refused the reload) must count as a rejection and keep the old
// champion, and the decision log must record reason=promote_failed.
func TestPromoteFailureKeepsChampion(t *testing.T) {
	champion := trainedChampion(t)
	cfg := testConfig()
	cfg.Champion = champion
	cfg.Promote = func([]byte, Outcome) error { return errors.New("daemon away") }
	l, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(l, driftStream())
	st := l.Stats()
	if st.Promotions != 0 || st.Rejections == 0 {
		t.Fatalf("promotions=%d rejections=%d after failing promote", st.Promotions, st.Rejections)
	}
	if l.Champion() != champion {
		t.Fatal("champion replaced despite failed promotion")
	}
	var sawReason bool
	for _, e := range l.Log().Recent(0) {
		if e.Kind == EventReject && strings.Contains(e.String(), "reason=promote_failed") {
			sawReason = true
		}
	}
	if !sawReason {
		t.Fatal("no reason=promote_failed reject event")
	}
}

// TestDonorBootstrap is the Table 8 transfer path: with no champion but
// a donor predictor, the loop starts from the donor (logging the
// bootstrap), the donor sets the bar at evaluation time, and a local
// challenger that clears it takes the slot.
func TestDonorBootstrap(t *testing.T) {
	donor := trainedChampion(t)
	cfg := testConfig()
	cfg.Donor = donor
	l, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l.Champion() != donor {
		t.Fatal("donor did not seed the champion slot")
	}
	events := l.Log().Recent(0)
	if len(events) == 0 || events[0].Kind != EventBootstrap {
		t.Fatalf("first event %v, want bootstrap", events)
	}
	if !strings.Contains(events[0].String(), "source=donor") {
		t.Fatalf("bootstrap event %q lacks source=donor", events[0].String())
	}

	feed(l, driftStream())
	o := l.Retrain()
	if math.IsNaN(o.ChampionAUC) {
		t.Fatal("donor champion not evaluated")
	}
	st := l.Stats()
	if st.Promotions+st.Rejections == 0 {
		t.Fatalf("no evaluation against the donor (skips=%d)", st.Skips)
	}
}

// TestRetrainSkipsOnThinData: a stream too short to label must skip,
// not train, and say why.
func TestRetrainSkipsOnThinData(t *testing.T) {
	cfg := testConfig()
	l, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(l, synthStream(synthConfig{drives: 8, days: 30, shiftDay: -1, seed: 3}))
	o := l.Retrain()
	if o.Promoted || o.Reason != "insufficient_train" {
		t.Fatalf("outcome %+v, want insufficient_train skip", o)
	}
	if st := l.Stats(); st.Skips != 1 {
		t.Fatalf("skips=%d, want 1", st.Skips)
	}
}

// TestSeedDerivationContract pins the reproducibility contract: the
// retrain seed is DeriveSeed(base, "learn/retrain/lsn=<lsn>"), so the
// same WAL prefix names the same seed at any StartLSN offset, and
// different prefixes name different seeds.
func TestSeedDerivationContract(t *testing.T) {
	recs := driftStream()
	mk := func(start uint64) Outcome {
		cfg := testConfig()
		cfg.StartLSN = start
		l, err := NewLoop(cfg)
		if err != nil {
			t.Fatal(err)
		}
		feed(l, recs)
		return l.Retrain()
	}
	a, b := mk(0), mk(0)
	if a.Seed == 0 || a.Seed != b.Seed {
		t.Fatalf("same prefix, different seeds: %d vs %d", a.Seed, b.Seed)
	}
	want := expgrid.DeriveSeed(42, fmt.Sprintf("learn/retrain/lsn=%d", a.LSN))
	if a.Seed != want {
		t.Fatalf("seed %d, want DeriveSeed contract %d", a.Seed, want)
	}
	c := mk(1000)
	if c.LSN != a.LSN+1000 {
		t.Fatalf("LSN %d, want %d", c.LSN, a.LSN+1000)
	}
	if c.Seed == a.Seed {
		t.Fatal("different stream positions derived the same retrain seed")
	}
}
