package learn

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"ssdfail/internal/cluster"
	"ssdfail/internal/core"
	"ssdfail/internal/serve"
	"ssdfail/internal/trace"
)

// TrainerConfig wires a Loop to a live daemon.
type TrainerConfig struct {
	// Upstream is the daemon's base URL; its WAL stream is tailed and
	// its /v1/model/reload is the promotion side effect.
	Upstream string
	// ModelPath is the model file shared with the daemon (its -model
	// flag). A promotion atomically replaces it, then triggers the
	// reload. When the file exists it seeds the champion slot.
	ModelPath string
	// DonorPath optionally seeds the champion from another drive
	// model's predictor when ModelPath does not exist yet (the Table 8
	// transfer bootstrap).
	DonorPath string
	// Client is the HTTP client (nil = 10s-timeout default).
	Client *http.Client
	// PollInterval is the idle re-poll cadence (0 = 250ms).
	PollInterval time.Duration
	// MaxBytes caps one WAL pull (0 = server default).
	MaxBytes int
	// Loop is the engine configuration. Champion, Donor, and Promote
	// are populated by NewTrainer.
	Loop Config
}

// Trainer tails the daemon's WAL through the cluster Follower's frame
// reader and feeds every record to the learning loop. The loop decides;
// the trainer performs the promotion side effect (publish bytes, POST
// /v1/model/reload, verify the daemon loaded exactly those bytes).
type Trainer struct {
	Loop     *Loop
	Follower *cluster.Follower

	cfg    TrainerConfig
	client *http.Client
}

// NewTrainer builds the trainer and its loop. The champion is loaded
// from ModelPath when present, else from DonorPath (emitting the
// bootstrap event), else the slot starts empty and the first viable
// challenger wins it.
func NewTrainer(cfg TrainerConfig) (*Trainer, error) {
	if cfg.Upstream == "" {
		return nil, fmt.Errorf("learn: upstream URL required")
	}
	if cfg.ModelPath == "" {
		return nil, fmt.Errorf("learn: model path required")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 250 * time.Millisecond
	}
	lc := cfg.Loop
	if p, err := core.LoadPredictor(cfg.ModelPath); err == nil {
		lc.Champion = p
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("learn: loading champion %s: %w", cfg.ModelPath, err)
	} else if cfg.DonorPath != "" {
		donor, err := core.LoadPredictor(cfg.DonorPath)
		if err != nil {
			return nil, fmt.Errorf("learn: loading donor %s: %w", cfg.DonorPath, err)
		}
		lc.Donor = donor
	}
	tr := &Trainer{cfg: cfg, client: cfg.Client}
	lc.Promote = tr.promote
	loop, err := NewLoop(lc)
	if err != nil {
		return nil, err
	}
	tr.Loop = loop
	tr.Follower = &cluster.Follower{
		Upstream: cfg.Upstream,
		Client:   cfg.Client,
		MaxBytes: cfg.MaxBytes,
		Apply: func(id uint32, model trace.Model, rec trace.DayRecord) (bool, error) {
			loop.Observe(id, model, rec)
			return true, nil
		},
	}
	return tr, nil
}

// promote publishes the challenger: atomically replace the shared model
// file, trigger the daemon's reload, and require the daemon to confirm
// it loaded exactly these bytes (the returned ModelInfo's SHA-256 must
// match), so a racing writer cannot be mistaken for a successful
// promotion.
func (tr *Trainer) promote(encoded []byte, o Outcome) error {
	dir := filepath.Dir(tr.cfg.ModelPath)
	tmp, err := os.CreateTemp(dir, ".challenger-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) //ssdlint:allow droppederr best-effort cleanup of an already-renamed or failed temp file
	if _, err := tmp.Write(encoded); err != nil {
		tmp.Close() //ssdlint:allow droppederr the write error already aborts the promotion
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close() //ssdlint:allow droppederr the sync error already aborts the promotion
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), tr.cfg.ModelPath); err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, tr.cfg.Upstream+"/v1/model/reload", nil)
	if err != nil {
		return err
	}
	resp, err := tr.client.Do(req)
	if err != nil {
		return err
	}
	//ssdlint:allow droppederr response body close on a fully-read reload response
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("learn: reload: status %d: %s", resp.StatusCode, body)
	}
	var info serve.ModelInfo
	if err := json.Unmarshal(body, &info); err != nil {
		return fmt.Errorf("learn: reload: parsing response: %w", err)
	}
	if info.SHA256 != o.ModelSHA {
		return fmt.Errorf("learn: reload raced: daemon loaded sha %.12s, published %.12s",
			info.SHA256, o.ModelSHA)
	}
	return nil
}

// CatchUp pulls until the stream is drained (an empty 200) or ctx ends.
// Because the loop runs synchronously inside each pull, a CatchUp over
// a quiesced daemon leaves the trainer in the exact state the WAL
// prefix dictates.
func (tr *Trainer) CatchUp(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		progressed, err := tr.Follower.PullOnce(ctx)
		if err != nil {
			return err
		}
		if !progressed {
			return nil
		}
	}
}

// Run tails until ctx is canceled, retrying transient pull errors at
// the poll cadence like the cluster follower does.
func (tr *Trainer) Run(ctx context.Context) error {
	ticker := time.NewTicker(tr.cfg.PollInterval)
	defer ticker.Stop()
	for {
		progressed, err := tr.Follower.PullOnce(ctx)
		if err == nil && progressed {
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// RegisterMetrics exposes the loop's state as ssdtrain_* families on a
// serve metrics registry. Values are read at scrape time.
func (tr *Trainer) RegisterMetrics(m *serve.Metrics) {
	stat := tr.Loop.Stats
	m.NewCounterFunc("ssdtrain_records_applied_total",
		"Stream records fed to the learning loop.",
		func() uint64 { return stat().Records })
	m.NewGaugeFunc("ssdtrain_stream_lsn",
		"LSN of the last applied WAL record.",
		func() float64 { return float64(stat().LSN) })
	m.NewGaugeFunc("ssdtrain_fleet_drives",
		"Drives reconstructed from the stream (in scope).",
		func() float64 { return float64(stat().Drives) })
	m.NewGaugeFunc("ssdtrain_frontier_day",
		"Maximum fleet day observed on the stream.",
		func() float64 { return float64(stat().Frontier) })
	m.NewCounterFunc("ssdtrain_drift_events_total",
		"KS drift rejections (one per triggering channel).",
		func() uint64 { return stat().DriftEvents })
	m.NewCounterFunc("ssdtrain_retrains_total",
		"Challengers trained.",
		func() uint64 { return stat().Retrains })
	m.NewCounterFunc("ssdtrain_promotions_total",
		"Challengers promoted through /v1/model/reload.",
		func() uint64 { return stat().Promotions })
	m.NewCounterFunc("ssdtrain_rejections_total",
		"Challengers rejected by the non-inferiority gate (or a failed promotion).",
		func() uint64 { return stat().Rejections })
	m.NewCounterFunc("ssdtrain_retrain_skips_total",
		"Retrain attempts skipped for lack of labeled data.",
		func() uint64 { return stat().Skips })
	m.NewCounterFunc("ssdtrain_rows_extracted_total",
		"Labeled feature rows assembled across retrains.",
		func() uint64 { return stat().RowsExtracted })
	m.NewGaugeFunc("ssdtrain_champion_auc",
		"Champion AUC on the held-out drive partition at the last evaluation.",
		func() float64 { return stat().ChampionAUC })
	m.NewGaugeFunc("ssdtrain_challenger_auc",
		"Challenger AUC on the held-out drive partition at the last evaluation.",
		func() float64 { return stat().ChallengerAUC })
	for i, ch := range tr.Loop.cfg.Channels {
		i := i
		m.NewGaugeFunc("ssdtrain_drift_p_"+ch.Name,
			"Last KS p-value of the "+ch.Name+" drift channel.",
			func() float64 { return stat().DriftP[i] })
	}
}
