package learn

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"ssdfail/internal/core"
	"ssdfail/internal/dataset"
	"ssdfail/internal/loadgen"
	"ssdfail/internal/serve"
)

// invertLabels is the strongest possible crippling: the mutated
// trainee learns the anti-signal, so its holdout AUC lands well below
// coin-flip — strictly inferior to any champion worth its slot.
func invertLabels(m *dataset.Matrix) {
	for i := range m.Y {
		m.Y[i] = 1 - m.Y[i]
	}
}

// weakChampion trains a deliberately stale predictor: real features,
// scrambled labels. It is what a champion looks like after the world
// has drifted away from its training regime — scoring near coin-flip —
// so a freshly retrained challenger clears the non-inferiority gate.
func weakChampion(t *testing.T) *core.Predictor {
	t.Helper()
	cfg := testConfig()
	cfg.MutateTrain = invertLabels
	l, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(l, steadyStream())
	if o := l.Retrain(); !o.Promoted {
		t.Fatalf("weak champion training failed: %+v", o)
	}
	return l.Champion()
}

// modelInfo fetches the daemon's current model identity.
func modelInfo(t *testing.T, baseURL string) serve.ModelInfo {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info serve.ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// metricValue scrapes one counter/gauge from the daemon's /metrics.
func metricValue(t *testing.T, baseURL, name string) float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

// e2eLoopConfig is the trainer tuning shared by both legs of the end-
// to-end test: windows sized for the replay volume, an alpha only a
// genuine shift can cross, and a forest small enough to keep the test
// wall fast.
func e2eLoopConfig() Config {
	return Config{
		Seed:         42,
		Trees:        15,
		Window:       128,
		CheckEvery:   64,
		Alpha:        1e-9,
		QuietDays:    7,
		MinTrainRows: 200,
		Margin:       0.05,
		ObserveEvery: -1,
	}
}

// TestEndToEndPromotionLoop closes the full loop against live
// processes: ssdload drives a WAL-enabled ssdserved with a fleetsim
// replay whose drift cohort comes online mid-run; the trainer tails
// that daemon's WAL, detects the shift, retrains, and promotes through
// a real POST /v1/model/reload. A second, deliberately crippled trainer
// over the same WAL must then be rejected with the promoted champion
// left serving. With SSDFAIL_LEARN_REPORT set, a machine-readable
// benchmark report is written to that path.
func TestEndToEndPromotionLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end promotion loop skipped in -short mode")
	}

	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.bin")
	if err := weakChampion(t).Save(modelPath); err != nil {
		t.Fatal(err)
	}

	srv, err := serve.New(serve.Config{
		ModelPath: modelPath,
		WALDir:    filepath.Join(dir, "wal"),
		// The trainer tails the WAL from genesis: snapshots would prune
		// the record history it labels from.
		SnapshotEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Drive the daemon: a 100-day replay window with boosted failure
	// hazards (so the window carries labeled failures) and a 6x-write
	// drift cohort entering at the midpoint.
	sched, err := loadgen.Build(loadgen.Config{
		Seed:           11,
		Mode:           loadgen.ModeClosed,
		Streams:        2,
		DrivesPerModel: 48,
		HorizonDays:    180,
		Days:           120,
		BatchSize:      32,
		ProbeEvery:     64,
		HazardMult:     15,
		DriftWriteMult: 6,
		DriftAfterFrac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	runner := &loadgen.Runner{BaseURL: ts.URL}
	res, err := runner.Run(ctx, sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.AcceptedRecords == 0 {
		t.Fatal("load run ingested nothing")
	}

	// Leg 1: the live trainer. Catch up on the full WAL (drift fires
	// and retrains run synchronously inside the catch-up), then one
	// forced final attempt — exactly cmd/ssdtrain -once.
	tr, err := NewTrainer(TrainerConfig{
		Upstream:  ts.URL,
		ModelPath: modelPath,
		Loop:      e2eLoopConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	catchUpStart := time.Now()
	if err := tr.CatchUp(ctx); err != nil {
		t.Fatal(err)
	}
	catchUpWall := time.Since(catchUpStart)
	retrainStart := time.Now()
	if tr.Loop.Stats().Promotions == 0 {
		tr.Loop.Retrain()
	}
	retrainWall := time.Since(retrainStart)

	st := tr.Loop.Stats()
	t.Logf("leg 1: records=%d drives=%d frontier=%d drift=%d retrains=%d promotions=%d rejections=%d skips=%d champion=%.3f challenger=%.3f",
		st.Records, st.Drives, st.Frontier, st.DriftEvents, st.Retrains,
		st.Promotions, st.Rejections, st.Skips, st.ChampionAUC, st.ChallengerAUC)
	if st.Records == 0 || uint64(res.AcceptedRecords) != st.Records {
		t.Fatalf("trainer applied %d records, daemon accepted %d", st.Records, res.AcceptedRecords)
	}
	if st.DriftEvents == 0 {
		t.Fatal("the mid-run distribution shift was never detected")
	}
	if st.Promotions == 0 {
		t.Fatalf("no promotion: retrains=%d rejections=%d skips=%d champion=%.3f challenger=%.3f",
			st.Retrains, st.Rejections, st.Skips, st.ChampionAUC, st.ChallengerAUC)
	}

	// The daemon must be serving exactly what the trainer published:
	// one startup load plus one version per promotion, and the live
	// model file must hash to the daemon's reported SHA.
	info := modelInfo(t, ts.URL)
	if want := 1 + int(st.Promotions); info.Version != want {
		t.Fatalf("daemon at model version %d, want %d (1 startup + %d promotions)",
			info.Version, want, st.Promotions)
	}
	if got := metricValue(t, ts.URL, "ssdserved_model_reloads_total"); got != float64(st.Promotions) {
		t.Fatalf("ssdserved_model_reloads_total %v, want %d", got, st.Promotions)
	}
	if got := metricValue(t, ts.URL, "ssdserved_model_loads_total"); got != float64(1+st.Promotions) {
		t.Fatalf("ssdserved_model_loads_total %v, want %d", got, 1+st.Promotions)
	}
	published, err := core.LoadPredictor(modelPath)
	if err != nil {
		t.Fatalf("promoted model file unreadable: %v", err)
	}
	if published.Lookahead != tr.Loop.cfg.Lookahead {
		t.Fatalf("published model lookahead %d, want %d", published.Lookahead, tr.Loop.cfg.Lookahead)
	}

	// Leg 2: a crippled challenger pipeline over the same WAL. The
	// champion slot now holds the freshly promoted model (loaded from
	// the shared file); the label-scrambled challenger must lose to it,
	// and the daemon must keep serving the promoted version.
	crippled := e2eLoopConfig()
	crippled.MutateTrain = invertLabels
	tr2, err := NewTrainer(TrainerConfig{
		Upstream:  ts.URL,
		ModelPath: modelPath,
		Loop:      crippled,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.CatchUp(ctx); err != nil {
		t.Fatal(err)
	}
	if tr2.Loop.Stats().Retrains == 0 {
		tr2.Loop.Retrain()
	}
	st2 := tr2.Loop.Stats()
	t.Logf("leg 2: retrains=%d promotions=%d rejections=%d skips=%d champion=%.3f challenger=%.3f",
		st2.Retrains, st2.Promotions, st2.Rejections, st2.Skips, st2.ChampionAUC, st2.ChallengerAUC)
	if st2.Promotions != 0 {
		t.Fatalf("crippled challenger promoted %d times", st2.Promotions)
	}
	if st2.Rejections == 0 {
		t.Fatalf("crippled challenger never rejected: retrains=%d skips=%d", st2.Retrains, st2.Skips)
	}
	if after := modelInfo(t, ts.URL); after.Version != info.Version || after.SHA256 != info.SHA256 {
		t.Fatalf("daemon model changed under a rejected challenger: %d/%s -> %d/%s",
			info.Version, info.SHA256[:12], after.Version, after.SHA256[:12])
	}

	if out := os.Getenv("SSDFAIL_LEARN_REPORT"); out != "" {
		writeBenchReport(t, out, res, st, catchUpWall, retrainWall)
	}
}

// writeBenchReport emits the train-loop benchmark artifact: retrain
// wall time, re-extraction throughput, and the champion/challenger AUC
// gap, in the BENCH_*.json house format CI uploads.
func writeBenchReport(t *testing.T, path string, res *loadgen.Result, st Stats, catchUp, retrain time.Duration) {
	t.Helper()
	wall := catchUp + retrain
	rowsPerSec := 0.0
	if s := wall.Seconds(); s > 0 {
		rowsPerSec = float64(st.RowsExtracted) / s
	}
	report := map[string]any{
		"records_streamed":    st.Records,
		"accepted_records":    res.AcceptedRecords,
		"fleet_drives":        st.Drives,
		"drift_events":        st.DriftEvents,
		"retrains":            st.Retrains,
		"promotions":          st.Promotions,
		"rejections":          st.Rejections,
		"skips":               st.Skips,
		"rows_extracted":      st.RowsExtracted,
		"catchup_ms":          catchUp.Milliseconds(),
		"final_retrain_ms":    retrain.Milliseconds(),
		"extraction_rows_sec": rowsPerSec,
		"champion_auc":        st.ChampionAUC,
		"challenger_auc":      st.ChallengerAUC,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("benchmark report: %s", path)
}
