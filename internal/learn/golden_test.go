package learn

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the committed decision-log goldens")

const goldenDir = "../../scenarios/learn/golden"

// runScenario replays the canonical drift stream through a loop at the
// given worker count and returns the decision-log bytes plus the bytes
// of every model the loop published.
func runScenario(t *testing.T, workers int) (logBytes []byte, models [][]byte) {
	t.Helper()
	var sink bytes.Buffer
	cfg := testConfig()
	cfg.Workers = workers
	cfg.Sink = &sink
	cfg.ObserveEvery = 1024
	cfg.Promote = func(encoded []byte, o Outcome) error {
		models = append(models, append([]byte(nil), encoded...))
		return nil
	}
	l, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(l, driftStream())
	l.Retrain() // one forced final attempt, like cmd/ssdtrain -once
	if err := l.Log().SinkErr(); err != nil {
		t.Fatal(err)
	}
	return sink.Bytes(), models
}

// TestDecisionLogWorkerCountIndependence is the determinism property:
// the same snapshot LSN and WAL prefix must yield a byte-identical
// decision log AND byte-identical retrained model files at 1 and 4
// workers — parallelism is an implementation detail, never an input.
func TestDecisionLogWorkerCountIndependence(t *testing.T) {
	log1, models1 := runScenario(t, 1)
	log4, models4 := runScenario(t, 4)
	if !bytes.Equal(log1, log4) {
		t.Fatalf("decision logs differ across worker counts:\n--- workers=1\n%s\n--- workers=4\n%s", log1, log4)
	}
	if len(models1) == 0 {
		t.Fatal("scenario published no models; the golden would pin nothing")
	}
	if len(models1) != len(models4) {
		t.Fatalf("published %d models at 1 worker, %d at 4", len(models1), len(models4))
	}
	for i := range models1 {
		if !bytes.Equal(models1[i], models4[i]) {
			t.Fatalf("model %d differs across worker counts", i)
		}
	}
}

// TestDecisionLogGolden diffs the replayed decision log against the
// committed golden, so any drift in event encoding, seed derivation,
// trigger timing, or gate arithmetic fails loudly. Refresh with
// `go test ./internal/learn -run Golden -update` after an intentional
// change, and review the diff like code.
func TestDecisionLogGolden(t *testing.T) {
	got, _ := runScenario(t, 1)
	path := filepath.Join(goldenDir, "drift.eventlog")
	if *updateGolden {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("decision log deviates from golden %s:\n%s", path, diffLines(want, got))
	}
}

// diffLines renders a first-divergence diff of two event logs.
func diffLines(want, got []byte) string {
	w := bytes.Split(want, []byte("\n"))
	g := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(w) && i < len(g); i++ {
		if !bytes.Equal(w[i], g[i]) {
			return fmt.Sprintf("line %d:\n-%s\n+%s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("length differs: golden %d lines, got %d", len(w), len(g))
}
