package fleetsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(123)
	b := NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := NewRNG(124)
	same := 0
	a = NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds matched %d/1000 draws", same)
	}
}

func TestDeriveIndependentStreams(t *testing.T) {
	root := NewRNG(7)
	a := root.Derive(1)
	b := root.Derive(2)
	a2 := root.Derive(1)
	if a.Uint64() != a2.Uint64() {
		t.Error("Derive with same stream should be deterministic")
	}
	matches := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			matches++
		}
	}
	if matches > 2 {
		t.Errorf("derived streams overlapped %d/1000", matches)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(2)
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if m := sum / float64(n); math.Abs(m-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", m)
	}
}

func TestIntn(t *testing.T) {
	r := NewRNG(3)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[r.Intn(10)]++
	}
	for b, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("Intn bin %d count %d far from uniform", b, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(4)
	n := 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sum2 += x * x
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(5)
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		x := r.Exp(3.5)
		if x < 0 {
			t.Fatal("Exp produced negative value")
		}
		sum += x
	}
	if m := sum / float64(n); math.Abs(m-3.5) > 0.1 {
		t.Errorf("Exp mean = %v, want ~3.5", m)
	}
}

func TestWeibullShapeOne(t *testing.T) {
	// Weibull with shape 1 is exponential with the same scale.
	r := NewRNG(6)
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Weibull(2.0, 1.0)
	}
	if m := sum / float64(n); math.Abs(m-2.0) > 0.1 {
		t.Errorf("Weibull(2,1) mean = %v, want ~2", m)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRNG(7)
	n := 50001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.LogNormal(1.0, 0.7)
	}
	// Median of LN(mu, sigma) is exp(mu).
	lt := 0
	for _, x := range xs {
		if x < math.E {
			lt++
		}
	}
	frac := float64(lt) / float64(n)
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("P(LN < e^mu) = %v, want ~0.5", frac)
	}
}

func TestParetoSupport(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 10000; i++ {
		if x := r.Pareto(5, 1.2); x < 5 {
			t.Fatalf("Pareto below minimum: %v", x)
		}
	}
	// P(X > 10) for Pareto(5, 1) is 0.5.
	over := 0
	n := 100000
	for i := 0; i < n; i++ {
		if r.Pareto(5, 1) > 10 {
			over++
		}
	}
	if frac := float64(over) / float64(n); math.Abs(frac-0.5) > 0.02 {
		t.Errorf("Pareto tail fraction = %v, want ~0.5", frac)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(9)
	for _, mean := range []float64{0.1, 2, 25, 100} {
		var sum float64
		n := 50000
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / float64(n)
		if math.Abs(got-mean) > mean*0.05+0.02 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive mean should be 0")
	}
}

func TestBinomial(t *testing.T) {
	r := NewRNG(10)
	for _, c := range []struct {
		n uint64
		p float64
	}{{10, 0.3}, {100, 0.7}, {1000, 0.01}} {
		var sum float64
		trials := 20000
		for i := 0; i < trials; i++ {
			k := r.Binomial(c.n, c.p)
			if k > c.n {
				t.Fatalf("Binomial(%d,%v) = %d exceeds n", c.n, c.p, k)
			}
			sum += float64(k)
		}
		want := float64(c.n) * c.p
		if got := sum / float64(trials); math.Abs(got-want) > want*0.05+0.1 {
			t.Errorf("Binomial(%d,%v) mean = %v, want %v", c.n, c.p, got, want)
		}
	}
	if r.Binomial(0, 0.5) != 0 || r.Binomial(10, 0) != 0 {
		t.Error("degenerate binomial should be 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Error("Binomial(n, 1) should be n")
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(11)
	p := 0.25
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	want := (1 - p) / p
	if got := sum / float64(n); math.Abs(got-want) > 0.1 {
		t.Errorf("Geometric(%v) mean = %v, want %v", p, got, want)
	}
	if r.Geometric(1) != 0 {
		t.Error("Geometric(1) should be 0")
	}
}

func TestBernoulliEdge(t *testing.T) {
	r := NewRNG(12)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

// Property: derived streams are reproducible functions of (seed, stream).
func TestDeriveReproducibleProperty(t *testing.T) {
	prop := func(seed, stream uint64) bool {
		a := NewRNG(seed).Derive(stream)
		b := NewRNG(seed).Derive(stream)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
