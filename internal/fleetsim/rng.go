// Package fleetsim generates synthetic SSD fleet traces whose statistical
// structure follows the proprietary Google trace characterized in "SSD
// Failures in the Field" (SC '19): per-model failure incidence, a ~90-day
// infant-mortality period, age-dependent write intensity, error-type
// incidence and correlation structure, pre-failure symptom ramps, and the
// swap/repair pipeline. See DESIGN.md §2 for the substitution argument.
package fleetsim

import "math"

// RNG is a small, fast, seedable pseudorandom generator (xoshiro256**)
// with helpers for the distributions the simulator draws from. Each
// simulated drive gets its own RNG derived from the fleet seed and the
// drive ID, so generation is deterministic and embarrassingly parallel.
type RNG struct {
	s [4]uint64
}

// splitMix64 is the recommended seeding generator for xoshiro.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns an RNG seeded from seed via SplitMix64.
func NewRNG(seed uint64) *RNG {
	var r RNG
	r.Seed(seed)
	return &r
}

// Seed resets the generator state from a single 64-bit seed.
func (r *RNG) Seed(seed uint64) {
	x := seed
	for i := range r.s {
		r.s[i] = splitMix64(&x)
	}
	// Avoid the all-zero state (cannot occur from SplitMix64, but keep
	// the invariant explicit).
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
}

// Derive returns a new RNG whose stream is independent of r for distinct
// stream IDs; used to give each drive its own deterministic stream.
func (r *RNG) Derive(stream uint64) *RNG {
	x := r.s[0] ^ (stream+1)*0x9e3779b97f4a7c15
	var out RNG
	for i := range out.s {
		out.s[i] = splitMix64(&x)
	}
	return &out
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("fleetsim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a standard normal deviate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Exp returns an exponential deviate with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	return -mean * math.Log(1-r.Float64())
}

// Weibull returns a Weibull deviate with the given scale and shape.
// Shape < 1 gives a decreasing hazard — the classic infant-mortality
// regime of reliability engineering.
func (r *RNG) Weibull(scale, shape float64) float64 {
	return scale * math.Pow(-math.Log(1-r.Float64()), 1/shape)
}

// LogNormal returns exp(N(mu, sigma^2)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Pareto returns a Pareto (type I) deviate with minimum xm and tail index
// alpha; small alpha gives the heavy, orders-of-magnitude tails seen in
// pre-failure error bursts.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	return xm / math.Pow(1-r.Float64(), 1/alpha)
}

// Poisson returns a Poisson deviate with the given mean. It uses Knuth's
// product method for small means and a normal approximation for large
// ones (the simulator only needs counts, not exact tail behaviour, above
// ~30 events/day).
func (r *RNG) Poisson(mean float64) uint64 {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := mean + math.Sqrt(mean)*r.NormFloat64()
		if v < 0 {
			return 0
		}
		return uint64(v + 0.5)
	}
	l := math.Exp(-mean)
	var k uint64
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Binomial returns a Binomial(n, p) deviate. Small n uses direct
// simulation; large n uses a normal approximation clamped to [0, n].
func (r *RNG) Binomial(n uint64, p float64) uint64 {
	if n == 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 32 {
		var k uint64
		for i := uint64(0); i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	v := mean + sd*r.NormFloat64()
	if v < 0 {
		return 0
	}
	if v > float64(n) {
		return n
	}
	return uint64(v + 0.5)
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials (support {0, 1, 2, ...}).
func (r *RNG) Geometric(p float64) uint64 {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("fleetsim: Geometric with p <= 0")
	}
	return uint64(math.Floor(math.Log(1-r.Float64()) / math.Log(1-p)))
}
