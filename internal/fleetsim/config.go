package fleetsim

import (
	"fmt"

	"ssdfail/internal/trace"
)

// ModelConfig holds the generative parameters for one drive model. The
// defaults are calibrated so the simulated fleet reproduces the published
// statistics of the corresponding MLC model (see DESIGN.md §2 for the
// target list and EXPERIMENTS.md for measured agreement).
type ModelConfig struct {
	Model  trace.Model
	Drives int // number of drives of this model

	// Failure process. The per-day failure hazard is
	//
	//	h(age) = InfantHazard * exp(-age/InfantDecayDays)
	//	       + BaseHazard * (1 + WearCoef * PE/1500)
	//
	// scaled by UEProneHazardMult for error-prone drives. The infant
	// term produces the paper's 90-day infant-mortality period
	// (Figure 6); the base term gives the roughly constant mature
	// failure rate (Observation #7); WearCoef adds the mild
	// wear-and-tear dependence that makes mature failures partially
	// predictable from usage features (Figure 16, bottom).
	BaseHazard        float64
	InfantHazard      float64
	InfantDecayDays   float64
	WearCoef          float64
	UEProneHazardMult float64
	// ErrProneHazardExp couples the per-drive error-proneness factor to
	// the hazard (h *= errProne^exp). This makes failure partially
	// predictable from a drive's lifetime error history at *any*
	// lookahead, which is why the paper's AUC stays near 0.77 even at
	// N=30 (Figure 12) while the final-days ramp only helps small N.
	ErrProneHazardExp float64

	// Workload. Daily writes are
	//
	//	WriteScale * activity * (1 - YoungWriteDeficit*exp(-age/WriteRampDays)) * LN(1, WriteSigma)
	//
	// where activity is a per-drive lognormal factor. Young drives see
	// *fewer* writes than mature ones (Figure 7) — the paper uses this
	// to rule out burn-in stress as the cause of infant mortality.
	WriteScale        float64 // mature median writes/day
	YoungWriteDeficit float64 // fractional write deficit at age 0
	WriteRampDays     float64 // e-folding of the young deficit
	WriteSigma        float64 // day-to-day lognormal sigma
	ActivitySigma     float64 // per-drive activity lognormal sigma
	ReadsPerWrite     float64 // mean reads per write
	WritesPerErase    float64 // block-erase granularity
	WritesPerPECycle  float64 // cumulative writes per P/E cycle

	// Error processes: presence probability per drive-day and count
	// magnitude when present. All presence probabilities (except
	// correctable) are multiplied by a per-drive lognormal
	// error-proneness factor, which induces the mild positive Spearman
	// correlations among cumulative counts (Table 2).
	CorrectableMean   float64 // Poisson mean of correctable "events"/day
	CorrectableScale  float64 // bits corrected per event (lognormal median)
	UEProneProb       float64 // share of drives that are UE-prone
	UEProneDayProb    float64 // P(UE day) for prone drives
	UEBaseDayProb     float64 // P(UE day) for other drives
	FinalReadGivenUE  float64 // P(final read error day | UE day)
	FinalReadRatio    float64 // final read count as a fraction of UE count
	EraseErrBase      float64 // erase-error day probability at zero wear
	EraseErrWear      float64 // additional probability per unit PE/3000
	WriteErrDayProb   float64 // model-dependent (MLC-B is 10x the others)
	ReadErrDayProb    float64
	MetaDayProb       float64
	ResponseDayProb   float64
	TimeoutDayProb    float64
	FinalWriteDayProb float64
	ErrorProneSigma   float64 // lognormal sigma of the proneness factor

	// Bad blocks.
	FactoryBadBlockMean float64 // Poisson mean of factory bad blocks
	GrownPerErrorProb   float64 // P(retire block) per erase/UE error event
	GrownBackgroundProb float64 // per-day background block retirement

	// Failure symptom classes (Section 4.2): Asymptomatic failures show
	// no non-transparent errors and grow no bad blocks over their whole
	// life (26% of failures in the paper); severe failures produce
	// orders-of-magnitude error bursts and are the signature of infant
	// failures (Figure 10).
	AsymptomaticProb float64
	SevereProb       float64 // of the symptomatic share
	RampMeanDays     float64 // mean symptom-ramp length before failure
	RampUEDayProb    float64 // extra P(UE day) at ramp peak (kept modest:
	// most failed drives never see a UE even in their final week, §4.2)
	RampUEBurstMin    float64 // Pareto minimum of ramp UE counts
	RampUEBurstAlpha  float64 // Pareto tail index of ramp UE counts
	YoungSeverityMult float64 // extra burst multiplier for infant failures
	ReadOnlyProb      float64 // P(drive enters read-only mode during ramp)
	CorrRampBoost     float64 // correctable-error swell factor at ramp peak
	WorkloadDipFrac   float64 // throughput suppression at ramp peak
	// YoungSymptomBoost scales the ramp's UE probability, correctable
	// swell, ramp length, and read-only probability for infant failures
	// (age <= 90 days): their symptoms are earlier and stronger, which
	// is why the paper finds young failures fundamentally more
	// predictable (§5.3, Figure 15).
	YoungSymptomBoost float64

	// Swap pipeline (Section 3).
	InactivityProb   float64 // P(soft-removal inactivity period after failure)
	InactivityMean   float64 // mean length of that period (days, geometric)
	NonReportProb    float64 // P(non-reporting gap before the swap)
	SwapWithin1Prob  float64 // P(swap within 1 day)   — Figure 4 mixture
	SwapWeekProb     float64 // P(swap in 2..7 days)
	SwapTailLogMu    float64 // lognormal tail of the non-op period
	SwapTailLogSigma float64
	NeverReturnProb  float64 // intrinsic share of swapped drives never repaired
	RepairLogMuDays  float64 // lognormal time-to-repair (Figure 5)
	RepairLogSigma   float64

	// Reporting.
	ReportProb float64 // per-day probability a report is logged
}

// FleetConfig configures a full multi-model fleet generation run.
type FleetConfig struct {
	Seed        uint64
	HorizonDays int32 // trace length; the paper's spans six years (2190)
	Models      []ModelConfig
	Workers     int // parallelism; <= 0 means all CPUs

	// Deployment: EarlyFrac of drives arrive uniformly in
	// [0, EarlyWindow); the rest arrive uniformly in
	// [EarlyWindow, HorizonDays-60). This reproduces Figure 1's
	// max-age CDF in which over half the drives are observed 4–6 years.
	EarlyFrac   float64
	EarlyWindow int32
}

// defaultModel returns the shared parameter base for one model.
func defaultModel(m trace.Model, drives int) ModelConfig {
	c := ModelConfig{
		Model:  m,
		Drives: drives,

		InfantDecayDays:   35,
		WearCoef:          0.3,
		UEProneHazardMult: 2.5,
		ErrProneHazardExp: 1.0,

		WriteScale:        1.0e8,
		YoungWriteDeficit: 0.55,
		WriteRampDays:     180,
		WriteSigma:        0.5,
		ActivitySigma:     0.45,
		ReadsPerWrite:     1.8,
		WritesPerErase:    64,
		WritesPerPECycle:  2.2e8,

		CorrectableMean:   1.8,
		CorrectableScale:  3000,
		UEProneProb:       0.15,
		UEProneDayProb:    0.013,
		UEBaseDayProb:     0.00012,
		FinalReadGivenUE:  0.62,
		FinalReadRatio:    0.45,
		EraseErrBase:      0.0003,
		EraseErrWear:      0.0012,
		WriteErrDayProb:   0.00013,
		ReadErrDayProb:    0.0001,
		MetaDayProb:       2.0e-5,
		ResponseDayProb:   2.5e-6,
		TimeoutDayProb:    1.1e-5,
		FinalWriteDayProb: 3.0e-5,
		ErrorProneSigma:   0.8,

		FactoryBadBlockMean: 3,
		GrownPerErrorProb:   0.06,
		GrownBackgroundProb: 0.0008,

		AsymptomaticProb:  0.26,
		SevereProb:        0.40,
		RampMeanDays:      4,
		RampUEDayProb:     0.25,
		RampUEBurstMin:    50,
		RampUEBurstAlpha:  0.9,
		YoungSeverityMult: 80,
		ReadOnlyProb:      0.18,
		CorrRampBoost:     15,
		WorkloadDipFrac:   0.5,
		YoungSymptomBoost: 2.2,

		InactivityProb:   0.36,
		InactivityMean:   3,
		NonReportProb:    0.80,
		SwapWithin1Prob:  0.20,
		SwapWeekProb:     0.60,
		SwapTailLogMu:    3.4, // median ~30 days for the tail component
		SwapTailLogSigma: 1.3,
		NeverReturnProb:  0.30,
		RepairLogMuDays:  6.0, // median ~400 days
		RepairLogSigma:   1.2,

		ReportProb: 0.97,
	}
	return c
}

// DefaultModelConfig returns the calibrated configuration for one of the
// paper's three drive models.
func DefaultModelConfig(m trace.Model, drives int) ModelConfig {
	c := defaultModel(m, drives)
	switch m {
	case trace.MLCA: // 6.95% failed
		c.BaseHazard = 2.8e-5
		c.InfantHazard = 3.8e-4
		c.WriteErrDayProb = 0.00012
	case trace.MLCB: // 14.3% failed; 10x write-error incidence (Table 1)
		c.BaseHazard = 6.1e-5
		c.InfantHazard = 7.8e-4
		c.WriteErrDayProb = 0.0013
	case trace.MLCD: // 12.5% failed
		c.BaseHazard = 5.2e-5
		c.InfantHazard = 6.8e-4
		c.WriteErrDayProb = 0.00016
	}
	return c
}

// DefaultConfig returns a full-fleet configuration with drivesPerModel
// drives of each of the three models over a six-year horizon.
func DefaultConfig(seed uint64, drivesPerModel int) FleetConfig {
	return FleetConfig{
		Seed:        seed,
		HorizonDays: 2190,
		Models: []ModelConfig{
			DefaultModelConfig(trace.MLCA, drivesPerModel),
			DefaultModelConfig(trace.MLCB, drivesPerModel),
			DefaultModelConfig(trace.MLCD, drivesPerModel),
		},
		EarlyFrac:   0.55,
		EarlyWindow: 500,
	}
}

// Validate checks the configuration for structural errors.
func (c *FleetConfig) Validate() error {
	if c.HorizonDays < 90 {
		return fmt.Errorf("fleetsim: horizon %d too short (need >= 90 days)", c.HorizonDays)
	}
	if len(c.Models) == 0 {
		return fmt.Errorf("fleetsim: no models configured")
	}
	if c.EarlyFrac < 0 || c.EarlyFrac > 1 {
		return fmt.Errorf("fleetsim: EarlyFrac %v outside [0,1]", c.EarlyFrac)
	}
	if c.EarlyWindow <= 0 || c.EarlyWindow >= c.HorizonDays-60 {
		return fmt.Errorf("fleetsim: EarlyWindow %d outside (0, horizon-60)", c.EarlyWindow)
	}
	for i := range c.Models {
		m := &c.Models[i]
		if m.Drives < 0 {
			return fmt.Errorf("fleetsim: model %v has negative drive count", m.Model)
		}
		for name, p := range map[string]float64{
			"AsymptomaticProb": m.AsymptomaticProb,
			"SevereProb":       m.SevereProb,
			"UEProneProb":      m.UEProneProb,
			"NonReportProb":    m.NonReportProb,
			"InactivityProb":   m.InactivityProb,
			"NeverReturnProb":  m.NeverReturnProb,
			"ReportProb":       m.ReportProb,
		} {
			if p < 0 || p > 1 {
				return fmt.Errorf("fleetsim: model %v: %s = %v outside [0,1]", m.Model, name, p)
			}
		}
		if m.WritesPerPECycle <= 0 {
			return fmt.Errorf("fleetsim: model %v: WritesPerPECycle must be positive", m.Model)
		}
		if m.SwapWithin1Prob+m.SwapWeekProb > 1 {
			return fmt.Errorf("fleetsim: model %v: swap mixture exceeds 1", m.Model)
		}
	}
	return nil
}
