package fleetsim

import (
	"math"

	"ssdfail/internal/trace"
)

// SymptomClass labels how a failure announces itself in the log.
type SymptomClass uint8

const (
	// Asymptomatic failures show no non-transparent errors and grow no
	// bad blocks over the drive's whole life (26% of failures, §4.2).
	Asymptomatic SymptomClass = iota
	// Moderate failures show a degradation signature in the final days.
	Moderate
	// Severe failures add orders-of-magnitude error bursts; infant
	// failures are strongly biased toward this behaviour (Figure 10).
	Severe
)

// String returns the lowercase class name.
func (c SymptomClass) String() string {
	switch c {
	case Asymptomatic:
		return "asymptomatic"
	case Moderate:
		return "moderate"
	case Severe:
		return "severe"
	}
	return "unknown"
}

// FailureTruth records the simulator's ground truth for one failure, used
// by tests to validate the trace-only reconstruction in internal/failure.
type FailureTruth struct {
	FailDay      int32 // last day of operational activity
	SwapDay      int32 // physical swap day, or -1 if beyond the horizon
	ReturnDay    int32 // re-entry day after repair, or -1 if never observed
	AgeAtFailure int32
	Class        SymptomClass
}

// DriveTruth is the ground truth for one drive.
type DriveTruth struct {
	DriveID  uint32
	UEProne  bool
	Failures []FailureTruth
}

// driveState carries the latent per-drive factors and running counters.
type driveState struct {
	cfg *ModelConfig
	rng *RNG

	activity float64 // per-drive workload factor
	errProne float64 // per-drive error-proneness factor
	ueProne  bool
	class    SymptomClass
	readOnly bool

	// Per-operational-period ramp parameters (young failures get
	// boosted symptoms, §5.3).
	ueRampProb float64
	corrBoost  float64

	pe        float64
	cumReads  uint64
	cumWrites uint64
	cumErases uint64
	cumErrors [trace.NumErrorKinds]uint64
	factoryBB uint32
	grownBB   uint32
}

// capU32 clamps a float64 count into the uint32 counter range.
func capU32(v float64) uint32 {
	if v < 0 {
		return 0
	}
	if v > 2e9 {
		return 2e9
	}
	return uint32(v)
}

// rampIntensity is the degradation intensity at `off` days before the
// failure (off = 0 is the failure day): ~1 on the last day, decaying
// with a ~1.8-day constant, so the signature concentrates in the final
// two days as the paper observes (Figure 11, Observation #11).
func rampIntensity(off int32) float64 {
	return math.Exp(-float64(off) / 1.8)
}

// expectedCumWrites approximates the drive's cumulative writes at the
// given age, used to estimate wear inside the failure hazard before the
// day-by-day workload is drawn.
func (st *driveState) expectedCumWrites(age int32) float64 {
	c := st.cfg
	a := float64(age)
	return c.WriteScale * st.activity *
		(a - c.YoungWriteDeficit*c.WriteRampDays*(1-math.Exp(-a/c.WriteRampDays)))
}

// hazardAt returns the per-day failure probability at the given age.
func (st *driveState) hazardAt(age int32) float64 {
	c := st.cfg
	peExp := st.expectedCumWrites(age) / c.WritesPerPECycle
	h := c.InfantHazard*math.Exp(-float64(age)/c.InfantDecayDays) +
		c.BaseHazard*(1+c.WearCoef*peExp/1500)
	if st.ueProne {
		h *= c.UEProneHazardMult
	}
	if c.ErrProneHazardExp > 0 {
		h *= math.Pow(st.errProne, c.ErrProneHazardExp)
	}
	if h > 0.5 {
		h = 0.5
	}
	return h
}

// sampleFailureDay walks the hazard forward from startDay and returns
// the day the drive fails, or horizon if it survives the trace.
func (st *driveState) sampleFailureDay(startDay, arrival, horizon int32) int32 {
	for d := startDay; d < horizon; d++ {
		if st.rng.Bernoulli(st.hazardAt(d - arrival)) {
			return d
		}
	}
	return horizon
}

// workload draws one day of read/write/erase activity for a drive of the
// given age. rampOff >= 0 marks a day inside the pre-failure window of a
// symptomatic failure; degradation suppresses throughput (the paper's
// mature-failure models lean on read/write counts, Figure 16).
func (st *driveState) workload(age, rampOff int32) (reads, writes, erases uint64) {
	c := st.cfg
	ramp := 1 - c.YoungWriteDeficit*math.Exp(-float64(age)/c.WriteRampDays)
	mu := c.WriteScale * st.activity * ramp
	// Occasional idle day on healthy drives, never on the failure day
	// itself (the failure day is by definition the last *active* day).
	if rampOff != 0 && st.rng.Bernoulli(0.01) {
		return 0, 0, 0
	}
	if rampOff >= 0 && st.class != Asymptomatic {
		mu *= 1 - c.WorkloadDipFrac*rampIntensity(rampOff)
	}
	w := mu * st.rng.LogNormal(-0.5*c.WriteSigma*c.WriteSigma, c.WriteSigma)
	rd := w * c.ReadsPerWrite * st.rng.LogNormal(-0.5*0.09, 0.3)
	return uint64(rd), uint64(w), uint64(w / c.WritesPerErase)
}

// errorsForDay draws the ten error counters for one day. wear is
// PE/3000; rampOff >= 0 marks a pre-failure day; sev scales burst sizes.
func (st *driveState) errorsForDay(writes uint64, wear float64, rampOff int32, sev float64) [trace.NumErrorKinds]uint32 {
	c := st.cfg
	r := st.rng
	var e [trace.NumErrorKinds]uint32

	inRamp := rampOff >= 0 && st.class != Asymptomatic
	intensity := 0.0
	if inRamp {
		intensity = rampIntensity(rampOff)
	}

	// Correctable errors: common, workload-driven, large counts; they
	// swell as the drive degrades (the dominant pre-failure signal —
	// most failed drives never see a UE at all, Observation #9).
	workFactor := float64(writes) / c.WriteScale
	if workFactor > 5 {
		workFactor = 5
	}
	if events := r.Poisson(c.CorrectableMean * (0.2 + workFactor)); events > 0 || inRamp {
		bits := float64(events) * r.LogNormal(math.Log(c.CorrectableScale), 1.5)
		if inRamp {
			bits = (bits + c.CorrectableScale) * (1 + st.corrBoost*intensity)
		}
		e[trace.ErrCorrectable] = capU32(bits)
	}

	// Non-transparent and remaining transparent errors are suppressed
	// entirely for asymptomatic-class drives.
	if st.class == Asymptomatic {
		return e
	}

	pUE := c.UEBaseDayProb * st.errProne
	if st.ueProne {
		pUE = c.UEProneDayProb * st.errProne
	}
	if inRamp {
		pUE += st.ueRampProb * intensity
	}
	if r.Bernoulli(pUE) {
		burst := r.Pareto(1, 1.1)
		if inRamp {
			burst += r.Pareto(c.RampUEBurstMin, c.RampUEBurstAlpha) * sev * (0.2 + intensity)
		}
		e[trace.ErrUncorrectable] = capU32(burst)
		if r.Bernoulli(c.FinalReadGivenUE) {
			fr := float64(e[trace.ErrUncorrectable]) * c.FinalReadRatio
			if fr < 1 {
				fr = 1
			}
			e[trace.ErrFinalRead] = capU32(fr)
		}
	}
	if r.Bernoulli((c.EraseErrBase + c.EraseErrWear*wear) * st.errProne) {
		e[trace.ErrErase] = capU32(1 + float64(r.Poisson(1.0)))
	}
	if r.Bernoulli(c.WriteErrDayProb * st.errProne) {
		e[trace.ErrWrite] = capU32(1 + float64(r.Poisson(0.8)))
	}
	if r.Bernoulli(c.ReadErrDayProb * st.errProne) {
		e[trace.ErrRead] = capU32(1 + float64(r.Poisson(0.8)))
	}
	if r.Bernoulli(c.MetaDayProb * st.errProne) {
		e[trace.ErrMeta] = capU32(1 + float64(r.Poisson(0.3)))
	}
	if r.Bernoulli(c.ResponseDayProb * st.errProne) {
		e[trace.ErrResponse] = capU32(1 + float64(r.Poisson(0.3)))
	}
	if r.Bernoulli(c.TimeoutDayProb * st.errProne) {
		e[trace.ErrTimeout] = capU32(1 + float64(r.Poisson(0.3)))
	}
	if r.Bernoulli(c.FinalWriteDayProb * st.errProne) {
		e[trace.ErrFinalWrite] = capU32(1 + float64(r.Poisson(0.3)))
	}
	return e
}

// growBadBlocks updates the grown bad-block counter from the day's
// error counts.
func (st *driveState) growBadBlocks(e *[trace.NumErrorKinds]uint32) {
	if st.class == Asymptomatic {
		return
	}
	c := st.cfg
	events := uint64(e[trace.ErrErase]) + uint64(e[trace.ErrUncorrectable])
	if events > 500 {
		events = 500
	}
	grown := st.rng.Binomial(events, c.GrownPerErrorProb)
	if st.rng.Bernoulli(c.GrownBackgroundProb * st.errProne) {
		grown++
	}
	if grown > 0 {
		st.grownBB += uint32(grown)
	}
}

// simulateDrive generates the full observational record and ground truth
// for one drive. The RNG must be exclusive to this drive.
func simulateDrive(fc *FleetConfig, cfg *ModelConfig, id uint32, rng *RNG) (trace.Drive, DriveTruth) {
	st := &driveState{cfg: cfg, rng: rng}
	st.activity = rng.LogNormal(0, cfg.ActivitySigma)
	st.errProne = rng.LogNormal(0, cfg.ErrorProneSigma)
	st.factoryBB = uint32(rng.Poisson(cfg.FactoryBadBlockMean))
	// Symptom class is a latent property of the drive (manufacturing
	// defects either corrupt data paths progressively or kill the
	// device silently).
	if rng.Bernoulli(cfg.AsymptomaticProb) {
		st.class = Asymptomatic
	} else if rng.Bernoulli(cfg.SevereProb) {
		st.class = Severe
	} else {
		st.class = Moderate
	}
	if st.class != Asymptomatic {
		st.ueProne = rng.Bernoulli(cfg.UEProneProb)
	}

	var arrival int32
	if rng.Bernoulli(fc.EarlyFrac) {
		arrival = int32(rng.Intn(int(fc.EarlyWindow)))
	} else {
		arrival = fc.EarlyWindow + int32(rng.Intn(int(fc.HorizonDays-60-fc.EarlyWindow)))
	}

	d := trace.Drive{ID: id, Model: cfg.Model}
	truth := DriveTruth{DriveID: id, UEProne: st.ueProne}

	day := arrival
	for day < fc.HorizonDays {
		// One operational period: pre-sample when it ends in failure.
		failDay := st.sampleFailureDay(day, arrival, fc.HorizonDays)
		failAge := failDay - arrival
		rampLen := int32(0)
		sev := 1.0
		st.ueRampProb = cfg.RampUEDayProb
		st.corrBoost = cfg.CorrRampBoost
		readOnlyProb := cfg.ReadOnlyProb
		rampMean := cfg.RampMeanDays
		if failDay < fc.HorizonDays && st.class != Asymptomatic {
			if failAge <= 90 && cfg.YoungSymptomBoost > 1 {
				// Infant failures announce themselves earlier and
				// louder (§5.3 / Figure 15).
				st.ueRampProb *= cfg.YoungSymptomBoost
				if st.ueRampProb > 0.6 {
					st.ueRampProb = 0.6
				}
				st.corrBoost *= cfg.YoungSymptomBoost
				readOnlyProb *= cfg.YoungSymptomBoost
				if readOnlyProb > 0.6 {
					readOnlyProb = 0.6
				}
				rampMean *= 1.5
			}
			rampLen = 1 + int32(rng.Geometric(1/rampMean))
			if rampLen > 14 {
				rampLen = 14
			}
			if st.class == Severe {
				sev = 10
			}
			if failAge <= 90 {
				sev *= cfg.YoungSeverityMult
			}
		}
		readOnlyFrom := int32(math.MaxInt32)
		if rampLen > 0 && rng.Bernoulli(readOnlyProb) {
			readOnlyFrom = failDay - int32(rng.Intn(int(rampLen)))
		}

		for ; day < fc.HorizonDays && day <= failDay; day++ {
			age := day - arrival
			rampOff := int32(-1)
			if failDay < fc.HorizonDays && failDay-day < rampLen {
				rampOff = failDay - day
			}
			reads, writes, erases := st.workload(age, rampOff)
			st.pe += float64(writes) / cfg.WritesPerPECycle
			st.cumReads += reads
			st.cumWrites += writes
			st.cumErases += erases
			errs := st.errorsForDay(writes, st.pe/3000, rampOff, sev)
			st.growBadBlocks(&errs)
			for k := 0; k < trace.NumErrorKinds; k++ {
				st.cumErrors[k] += uint64(errs[k])
			}
			if day >= readOnlyFrom {
				st.readOnly = true
			}
			if rng.Bernoulli(cfg.ReportProb) || day == failDay {
				d.Days = append(d.Days, st.record(day, age, reads, writes, erases, errs))
			}
		}
		if failDay >= fc.HorizonDays {
			break // survived the trace
		}

		// --- Failure at failDay (the last day of operational activity). ---
		ft := FailureTruth{FailDay: failDay, AgeAtFailure: failAge, Class: st.class,
			SwapDay: -1, ReturnDay: -1}

		// Post-failure pipeline: optional soft-removal inactivity
		// reports, optional reporting up to the swap, then the swap
		// itself and the repair process.
		nonOp := st.nonOpLength()
		swapDay := failDay + nonOp
		inactDays := int32(0)
		if rng.Bernoulli(cfg.InactivityProb) {
			inactDays = 1 + int32(rng.Geometric(1/cfg.InactivityMean))
		}
		reportUntil := failDay + inactDays
		if !rng.Bernoulli(cfg.NonReportProb) {
			reportUntil = swapDay // keeps reporting dead days until the swap
		}
		for dd := failDay + 1; dd <= reportUntil && dd < fc.HorizonDays && dd < swapDay; dd++ {
			if rng.Bernoulli(cfg.ReportProb) {
				rec := st.record(dd, dd-arrival, 0, 0, 0, [trace.NumErrorKinds]uint32{})
				rec.Dead = true
				d.Days = append(d.Days, rec)
			}
		}

		if swapDay >= fc.HorizonDays {
			// Swap falls beyond the trace: the failure is right-censored
			// and invisible to trace-only analysis, as in the real log.
			truth.Failures = append(truth.Failures, ft)
			break
		}
		ft.SwapDay = swapDay
		d.Swaps = append(d.Swaps, trace.SwapEvent{Day: swapDay})

		if rng.Bernoulli(cfg.NeverReturnProb) {
			truth.Failures = append(truth.Failures, ft)
			break
		}
		repair := int32(math.Ceil(rng.LogNormal(cfg.RepairLogMuDays, cfg.RepairLogSigma)))
		if repair < 1 {
			repair = 1
		}
		returnDay := swapDay + repair
		if returnDay >= fc.HorizonDays-1 {
			truth.Failures = append(truth.Failures, ft)
			break
		}
		ft.ReturnDay = returnDay
		truth.Failures = append(truth.Failures, ft)

		// The drive re-enters the field repaired: symptoms reset, wear
		// and lifetime counters persist (the drive-lifetime clock keeps
		// running through the repair, as the paper's timestamps do).
		st.readOnly = false
		day = returnDay
	}

	return d, truth
}

// record materializes one DayRecord from the current state.
func (st *driveState) record(day, age int32, reads, writes, erases uint64, errs [trace.NumErrorKinds]uint32) trace.DayRecord {
	rec := trace.DayRecord{
		Day: day, Age: age,
		Reads: reads, Writes: writes, Erases: erases,
		CumReads: st.cumReads, CumWrites: st.cumWrites, CumErases: st.cumErases,
		PECycles:         st.pe,
		FactoryBadBlocks: st.factoryBB,
		GrownBadBlocks:   st.grownBB,
		Errors:           errs,
		ReadOnly:         st.readOnly,
	}
	rec.CumErrors = st.cumErrors
	return rec
}

// nonOpLength draws the length of the non-operational period between the
// failure and the physical swap (Figure 4's mixture: ~20% within a day,
// ~80% within a week, a long lognormal tail beyond).
func (st *driveState) nonOpLength() int32 {
	c := st.cfg
	u := st.rng.Float64()
	switch {
	case u < c.SwapWithin1Prob:
		return 1
	case u < c.SwapWithin1Prob+c.SwapWeekProb:
		return 2 + int32(st.rng.Intn(6))
	default:
		tail := st.rng.LogNormal(c.SwapTailLogMu, c.SwapTailLogSigma)
		if tail > 600 {
			tail = 600
		}
		return 8 + int32(tail)
	}
}
