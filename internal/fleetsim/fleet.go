package fleetsim

import (
	"fmt"

	"ssdfail/internal/parallel"
	"ssdfail/internal/trace"
)

// Truth is the simulator's ground truth for a generated fleet, indexed
// the same way as Fleet.Drives. Analysis code must not consume it; it
// exists so tests can validate the trace-only reconstruction.
type Truth struct {
	Drives []DriveTruth
}

// FailureCount returns the total number of ground-truth failures.
func (t *Truth) FailureCount() int {
	var n int
	for i := range t.Drives {
		n += len(t.Drives[i].Failures)
	}
	return n
}

// Generate simulates a fleet under the given configuration. Drive IDs are
// assigned sequentially starting at 1, grouped by model in config order.
// Generation is deterministic for a fixed seed regardless of the worker
// count: each drive consumes an RNG stream derived from (seed, driveID).
func Generate(cfg FleetConfig) (*trace.Fleet, *Truth, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	total := 0
	for i := range cfg.Models {
		total += cfg.Models[i].Drives
	}
	fleet := &trace.Fleet{Horizon: cfg.HorizonDays, Drives: make([]trace.Drive, total)}
	truth := &Truth{Drives: make([]DriveTruth, total)}

	// Flatten (model, index) pairs so the parallel loop is one range.
	modelOf := make([]*ModelConfig, total)
	idx := 0
	for i := range cfg.Models {
		for j := 0; j < cfg.Models[i].Drives; j++ {
			modelOf[idx] = &cfg.Models[i]
			idx++
		}
	}

	root := NewRNG(cfg.Seed)
	parallel.For(cfg.Workers, total, func(i int) {
		id := uint32(i + 1)
		rng := root.Derive(uint64(id))
		fleet.Drives[i], truth.Drives[i] = simulateDrive(&cfg, modelOf[i], id, rng)
	})

	if err := fleet.Validate(); err != nil {
		return nil, nil, fmt.Errorf("fleetsim: generated fleet failed validation: %w", err)
	}
	return fleet, truth, nil
}
