package fleetsim

import (
	"bytes"
	"crypto/sha256"
	"math"
	"reflect"
	"runtime"
	"testing"

	"ssdfail/internal/trace"
)

// testConfig returns a small fleet for fast tests: 3 models x drives,
// ~3-year horizon.
func testConfig(seed uint64, drives int) FleetConfig {
	cfg := DefaultConfig(seed, drives)
	cfg.HorizonDays = 1100
	cfg.EarlyWindow = 300
	return cfg
}

func TestGenerateValidates(t *testing.T) {
	cfg := testConfig(1, 40)
	fleet, truth, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if got := len(fleet.Drives); got != 120 {
		t.Fatalf("drive count = %d, want 120", got)
	}
	if len(truth.Drives) != 120 {
		t.Fatalf("truth count = %d", len(truth.Drives))
	}
	if err := fleet.Validate(); err != nil {
		t.Fatalf("fleet invalid: %v", err)
	}
	counts := fleet.CountByModel()
	for _, m := range trace.Models {
		if counts[m] != 40 {
			t.Errorf("model %v count = %d, want 40", m, counts[m])
		}
	}
}

func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	cfg1 := testConfig(99, 30)
	cfg1.Workers = 1
	f1, t1, err := Generate(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	cfg8 := testConfig(99, 30)
	cfg8.Workers = 8
	f8, t8, err := Generate(cfg8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f1, f8) {
		t.Error("fleet differs between 1 and 8 workers")
	}
	if !reflect.DeepEqual(t1, t8) {
		t.Error("truth differs between 1 and 8 workers")
	}
}

// TestGenerateByteIdenticalAcrossGOMAXPROCS is the strongest form of
// the determinism contract: the same seed must produce a byte-identical
// serialized fleet whether the runtime schedules generation on one OS
// thread or all of them. DeepEqual across Workers settings (above)
// can't see scheduler-dependent effects inside the default worker pool;
// hashing the wire bytes under different GOMAXPROCS can.
func TestGenerateByteIdenticalAcrossGOMAXPROCS(t *testing.T) {
	generate := func(procs int) []byte {
		t.Helper()
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		cfg := testConfig(1234, 25)
		cfg.Workers = 0 // resolve to all CPUs, i.e. whatever GOMAXPROCS says
		fleet, _, err := Generate(cfg)
		if err != nil {
			t.Fatalf("Generate at GOMAXPROCS=%d: %v", procs, err)
		}
		var buf bytes.Buffer
		if err := trace.WriteBinary(&buf, fleet); err != nil {
			t.Fatalf("WriteBinary at GOMAXPROCS=%d: %v", procs, err)
		}
		return buf.Bytes()
	}

	serial := generate(1)
	parallel := generate(runtime.NumCPU())
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("serialized fleet differs across GOMAXPROCS: sha256 %x (1 proc, %d bytes) vs %x (%d procs, %d bytes)",
			sha256.Sum256(serial), len(serial),
			sha256.Sum256(parallel), runtime.NumCPU(), len(parallel))
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	f1, _, err := Generate(testConfig(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	f2, _, err := Generate(testConfig(2, 10))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(f1, f2) {
		t.Error("different seeds produced identical fleets")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	bad := []func(*FleetConfig){
		func(c *FleetConfig) { c.HorizonDays = 10 },
		func(c *FleetConfig) { c.Models = nil },
		func(c *FleetConfig) { c.EarlyFrac = 1.5 },
		func(c *FleetConfig) { c.EarlyWindow = c.HorizonDays },
		func(c *FleetConfig) { c.Models[0].Drives = -1 },
		func(c *FleetConfig) { c.Models[0].ReportProb = 2 },
		func(c *FleetConfig) { c.Models[0].WritesPerPECycle = 0 },
		func(c *FleetConfig) { c.Models[0].SwapWithin1Prob = 0.9; c.Models[0].SwapWeekProb = 0.9 },
	}
	for i, mutate := range bad {
		cfg := testConfig(1, 5)
		mutate(&cfg)
		if _, _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: Generate accepted invalid config", i)
		}
	}
}

// bigTestFleet is shared by the statistical-shape tests below.
var bigFleet *trace.Fleet
var bigTruth *Truth

func getBigFleet(t *testing.T) (*trace.Fleet, *Truth) {
	t.Helper()
	if bigFleet == nil {
		cfg := DefaultConfig(7, 250) // full six-year horizon
		f, tr, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bigFleet, bigTruth = f, tr
	}
	return bigFleet, bigTruth
}

func TestFailureIncidenceBands(t *testing.T) {
	fleet, _ := getBigFleet(t)
	// Paper Table 3: MLC-A 6.95%, MLC-B 14.3%, MLC-D 12.5% of drives
	// swapped at least once. Allow generous bands for a 250-drive sample.
	bands := map[trace.Model][2]float64{
		trace.MLCA: {0.02, 0.13},
		trace.MLCB: {0.07, 0.23},
		trace.MLCD: {0.06, 0.21},
	}
	for _, m := range trace.Models {
		sub := fleet.FilterModel(m)
		failed := 0
		for i := range sub.Drives {
			if sub.Drives[i].Failed() {
				failed++
			}
		}
		frac := float64(failed) / float64(len(sub.Drives))
		if b := bands[m]; frac < b[0] || frac > b[1] {
			t.Errorf("%v failed fraction = %.3f, want in [%.2f, %.2f]", m, frac, b[0], b[1])
		}
	}
	// Ordering: MLC-A must fail least, as in the paper.
	fracOf := func(m trace.Model) float64 {
		sub := fleet.FilterModel(m)
		failed := 0
		for i := range sub.Drives {
			if sub.Drives[i].Failed() {
				failed++
			}
		}
		return float64(failed) / float64(len(sub.Drives))
	}
	if fracOf(trace.MLCA) >= fracOf(trace.MLCB) {
		t.Errorf("MLC-A failure rate should be below MLC-B")
	}
}

func TestInfantMortalityShare(t *testing.T) {
	_, truth := getBigFleet(t)
	young, total := 0, 0
	for i := range truth.Drives {
		for _, f := range truth.Drives[i].Failures {
			total++
			if f.AgeAtFailure <= 90 {
				young++
			}
		}
	}
	if total < 30 {
		t.Fatalf("too few failures to test: %d", total)
	}
	frac := float64(young) / float64(total)
	// Paper: ~25% of failures within 90 days (Figure 6).
	if frac < 0.12 || frac > 0.45 {
		t.Errorf("infant failure share = %.3f, want ~0.25", frac)
	}
}

func TestAsymptomaticFailures(t *testing.T) {
	fleet, truth := getBigFleet(t)
	// Paper §4.2: 26% of failures occur on drives with no non-transparent
	// errors and no grown bad blocks.
	clean, total := 0, 0
	for i := range truth.Drives {
		if len(truth.Drives[i].Failures) == 0 {
			continue
		}
		total++
		d := &fleet.Drives[i]
		last := d.Last()
		if last == nil {
			continue
		}
		if last.CumNonTransparentErrors() == 0 && last.GrownBadBlocks == 0 {
			clean++
		}
	}
	if total < 30 {
		t.Fatalf("too few failed drives: %d", total)
	}
	frac := float64(clean) / float64(total)
	if frac < 0.10 || frac > 0.45 {
		t.Errorf("asymptomatic failed-drive share = %.3f, want ~0.26", frac)
	}
}

func TestCorrectableErrorIncidence(t *testing.T) {
	fleet, _ := getBigFleet(t)
	days, withCorr := 0, 0
	withUE := 0
	for i := range fleet.Drives {
		for j := range fleet.Drives[i].Days {
			r := &fleet.Drives[i].Days[j]
			days++
			if r.Errors[trace.ErrCorrectable] > 0 {
				withCorr++
			}
			if r.Errors[trace.ErrUncorrectable] > 0 {
				withUE++
			}
		}
	}
	corrFrac := float64(withCorr) / float64(days)
	ueFrac := float64(withUE) / float64(days)
	// Paper Table 1: correctable ~0.77-0.83, uncorrectable ~0.0022-0.0026.
	if corrFrac < 0.65 || corrFrac > 0.92 {
		t.Errorf("correctable day incidence = %.3f, want ~0.8", corrFrac)
	}
	if ueFrac < 0.0008 || ueFrac > 0.008 {
		t.Errorf("uncorrectable day incidence = %.5f, want ~0.0024", ueFrac)
	}
}

func TestFinalReadCoupledToUE(t *testing.T) {
	fleet, _ := getBigFleet(t)
	frWithoutUE := 0
	frTotal := 0
	for i := range fleet.Drives {
		for j := range fleet.Drives[i].Days {
			r := &fleet.Drives[i].Days[j]
			if r.Errors[trace.ErrFinalRead] > 0 {
				frTotal++
				if r.Errors[trace.ErrUncorrectable] == 0 {
					frWithoutUE++
				}
			}
		}
	}
	if frTotal == 0 {
		t.Fatal("no final read errors generated")
	}
	if frWithoutUE > 0 {
		t.Errorf("%d/%d final-read days lack a UE; they should be coupled", frWithoutUE, frTotal)
	}
}

func TestYoungDrivesWriteLess(t *testing.T) {
	fleet, _ := getBigFleet(t)
	var youngSum, youngN, matureSum, matureN float64
	for i := range fleet.Drives {
		for j := range fleet.Drives[i].Days {
			r := &fleet.Drives[i].Days[j]
			if !r.Active() {
				continue
			}
			if r.Age < 60 {
				youngSum += float64(r.Writes)
				youngN++
			} else if r.Age > 400 {
				matureSum += float64(r.Writes)
				matureN++
			}
		}
	}
	if youngN == 0 || matureN == 0 {
		t.Fatal("missing age strata")
	}
	if youngSum/youngN >= matureSum/matureN {
		t.Errorf("young drives should write less: young=%.3g mature=%.3g",
			youngSum/youngN, matureSum/matureN)
	}
}

func TestPEFailureDecoupling(t *testing.T) {
	fleet, truth := getBigFleet(t)
	// Paper Figure 8: ~98% of failures occur below 1500 P/E cycles.
	below := 0
	total := 0
	for i := range truth.Drives {
		for _, ft := range truth.Drives[i].Failures {
			d := &fleet.Drives[i]
			idx := d.RecordOn(ft.FailDay)
			if idx < 0 {
				idx = d.LastRecordBefore(ft.FailDay)
			}
			if idx < 0 {
				continue
			}
			total++
			if d.Days[idx].PECycles < 1500 {
				below++
			}
		}
	}
	if total < 30 {
		t.Fatalf("too few failures with records: %d", total)
	}
	if frac := float64(below) / float64(total); frac < 0.80 {
		t.Errorf("failures below 1500 P/E = %.3f, want >= 0.80", frac)
	}
}

func TestSwapPipelineShape(t *testing.T) {
	fleet, truth := getBigFleet(t)
	// Ground-truth swap day minus fail day: ~20% within 1 day, most
	// within a week, long tail beyond 100 days (Figure 4).
	var within1, within7, beyond50, n int
	for i := range truth.Drives {
		for _, ft := range truth.Drives[i].Failures {
			if ft.SwapDay < 0 {
				continue
			}
			gap := ft.SwapDay - ft.FailDay
			n++
			if gap <= 1 {
				within1++
			}
			if gap <= 7 {
				within7++
			}
			if gap > 50 {
				beyond50++
			}
		}
	}
	if n < 30 {
		t.Fatalf("too few observed swaps: %d", n)
	}
	if f := float64(within1) / float64(n); f < 0.08 || f > 0.40 {
		t.Errorf("swaps within 1 day = %.3f, want ~0.20", f)
	}
	if f := float64(within7) / float64(n); f < 0.60 || f > 0.95 {
		t.Errorf("swaps within 7 days = %.3f, want ~0.80", f)
	}
	if beyond50 == 0 {
		t.Error("expected a long tail of non-operational periods")
	}
	_ = fleet
}

func TestRepairCensoring(t *testing.T) {
	_, truth := getBigFleet(t)
	// About half of swapped drives never re-enter (Figure 5 / Table 5).
	returned, swapped := 0, 0
	for i := range truth.Drives {
		for _, ft := range truth.Drives[i].Failures {
			if ft.SwapDay < 0 {
				continue
			}
			swapped++
			if ft.ReturnDay >= 0 {
				returned++
			}
		}
	}
	if swapped < 30 {
		t.Fatalf("too few swaps: %d", swapped)
	}
	frac := float64(returned) / float64(swapped)
	if frac < 0.25 || frac > 0.75 {
		t.Errorf("returned fraction = %.3f, want ~0.5", frac)
	}
}

func TestRepeatFailures(t *testing.T) {
	_, truth := getBigFleet(t)
	multi, failedDrives := 0, 0
	for i := range truth.Drives {
		n := len(truth.Drives[i].Failures)
		if n >= 1 {
			failedDrives++
		}
		if n >= 2 {
			multi++
		}
	}
	if failedDrives == 0 {
		t.Fatal("no failed drives")
	}
	// Paper Table 4: ~10% of failed drives fail more than once.
	frac := float64(multi) / float64(failedDrives)
	if frac > 0.35 {
		t.Errorf("repeat-failure share = %.3f, unexpectedly high", frac)
	}
}

func TestSymptomRampRaisesPreFailureErrors(t *testing.T) {
	fleet, truth := getBigFleet(t)
	// P(UE in last 2 days before failure) should be well above the
	// baseline UE day-incidence (Figure 11).
	var lastDaysUE, lastDaysN float64
	for i := range truth.Drives {
		d := &fleet.Drives[i]
		for _, ft := range truth.Drives[i].Failures {
			for off := int32(0); off < 2; off++ {
				idx := d.RecordOn(ft.FailDay - off)
				if idx < 0 {
					continue
				}
				lastDaysN++
				if d.Days[idx].Errors[trace.ErrUncorrectable] > 0 {
					lastDaysUE++
				}
			}
		}
	}
	if lastDaysN < 30 {
		t.Fatalf("too few pre-failure days: %v", lastDaysN)
	}
	rate := lastDaysUE / lastDaysN
	if rate < 0.08 {
		t.Errorf("pre-failure UE day rate = %.3f, want >> baseline ~0.002", rate)
	}
}

func TestTruthConsistentWithSwaps(t *testing.T) {
	fleet, truth := getBigFleet(t)
	for i := range truth.Drives {
		d := &fleet.Drives[i]
		observed := 0
		for _, ft := range truth.Drives[i].Failures {
			if ft.SwapDay >= 0 {
				if d.RecordOn(ft.FailDay) < 0 && d.LastRecordBefore(ft.FailDay) < 0 {
					t.Errorf("drive %d: failure at %d has no records at or before it", d.ID, ft.FailDay)
				}
				observed++
			}
			if ft.ReturnDay >= 0 && ft.SwapDay < 0 {
				t.Errorf("drive %d: return without swap", d.ID)
			}
		}
		if observed != len(d.Swaps) {
			t.Errorf("drive %d: %d truth swaps vs %d trace swaps", d.ID, observed, len(d.Swaps))
		}
	}
}

func TestFailDayIsLastActiveDay(t *testing.T) {
	fleet, truth := getBigFleet(t)
	// All recorded days strictly after a failure and before the swap
	// must be inactive (zero reads/writes).
	for i := range truth.Drives {
		d := &fleet.Drives[i]
		for _, ft := range truth.Drives[i].Failures {
			end := ft.SwapDay
			if end < 0 {
				end = math.MaxInt32
			}
			for j := range d.Days {
				r := &d.Days[j]
				if r.Day > ft.FailDay && int32(r.Day) < end && r.Active() {
					t.Fatalf("drive %d: active day %d inside non-operational period (fail %d, swap %d)",
						d.ID, r.Day, ft.FailDay, ft.SwapDay)
				}
			}
		}
	}
}
