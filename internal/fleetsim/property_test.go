package fleetsim

import (
	"testing"
	"testing/quick"

	"ssdfail/internal/failure"
)

// Config-space property tests: random (but sane) parameter perturbations
// must never produce an invalid fleet, and the downstream reconstruction
// must stay consistent with it.

// perturbedConfig builds a valid config with randomized knobs.
func perturbedConfig(seed uint64) FleetConfig {
	rng := NewRNG(seed)
	cfg := DefaultConfig(seed, 8+rng.Intn(20))
	cfg.HorizonDays = int32(300 + rng.Intn(1200))
	cfg.EarlyWindow = cfg.HorizonDays / 4
	for i := range cfg.Models {
		m := &cfg.Models[i]
		m.BaseHazard *= 0.3 + 2*rng.Float64()
		m.InfantHazard *= 0.3 + 2*rng.Float64()
		m.AsymptomaticProb = rng.Float64() * 0.6
		m.SevereProb = rng.Float64()
		m.UEProneProb = rng.Float64() * 0.5
		m.NonReportProb = rng.Float64()
		m.InactivityProb = rng.Float64()
		m.NeverReturnProb = rng.Float64()
		m.ReportProb = 0.5 + rng.Float64()*0.5
		m.WriteSigma = 0.1 + rng.Float64()
		m.RampMeanDays = 1 + rng.Float64()*6
		m.YoungSymptomBoost = 1 + rng.Float64()*3
		m.WorkloadDipFrac = rng.Float64() * 0.9
	}
	return cfg
}

func TestGenerateValidUnderRandomConfigs(t *testing.T) {
	prop := func(seed uint64) bool {
		cfg := perturbedConfig(seed)
		fleet, truth, err := Generate(cfg)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if fleet.Validate() != nil {
			return false
		}
		// Every observed swap in truth must appear in the trace.
		for di := range truth.Drives {
			observed := 0
			for _, ft := range truth.Drives[di].Failures {
				if ft.SwapDay >= 0 {
					observed++
				}
			}
			if observed != len(fleet.Drives[di].Swaps) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructionConsistentUnderRandomConfigs(t *testing.T) {
	prop := func(seed uint64) bool {
		cfg := perturbedConfig(seed ^ 0xabcdef)
		fleet, truth, err := Generate(cfg)
		if err != nil {
			return false
		}
		an := failure.Analyze(fleet)
		// Reconstructed events match the observed truth swaps count.
		truthSwaps := 0
		for di := range truth.Drives {
			for _, ft := range truth.Drives[di].Failures {
				if ft.SwapDay >= 0 {
					truthSwaps++
				}
			}
		}
		if truthSwaps != len(an.Events) {
			return false
		}
		// The reconstructed failure day never falls after the truth day
		// (reports may be dropped, shifting it earlier).
		for di := range truth.Drives {
			evIdx := 0
			for _, ft := range truth.Drives[di].Failures {
				if ft.SwapDay < 0 {
					continue
				}
				e := &an.Events[an.PerDrive[di][evIdx]]
				evIdx++
				if e.FailRecIdx >= 0 && e.FailDay > ft.FailDay {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
