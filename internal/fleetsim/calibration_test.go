package fleetsim

import (
	"testing"

	"ssdfail/internal/stats"
	"ssdfail/internal/trace"
)

// Distribution-level calibration checks using the KS machinery: two
// independently seeded fleets must be draws from the same population,
// and the raw RNG must be uniform.

func TestRNGUniformKS(t *testing.T) {
	r := NewRNG(99)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	if d := stats.KSUniform(xs); d > 0.015 {
		t.Errorf("RNG uniform KS statistic = %v", d)
	}
}

func TestSeedsDrawFromSamePopulation(t *testing.T) {
	gen := func(seed uint64) []float64 {
		cfg := DefaultConfig(seed, 150)
		cfg.HorizonDays = 1200
		cfg.EarlyWindow = 350
		fleet, _, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for i := range fleet.Drives {
			if last := fleet.Drives[i].Last(); last != nil {
				out = append(out, float64(last.CumWrites))
			}
		}
		return out
	}
	a := gen(1001)
	b := gen(2002)
	d := stats.KSStatistic(a, b)
	p := stats.KSPValue(d, len(a), len(b))
	if p < 0.001 {
		t.Errorf("cumulative-writes distributions differ across seeds: d=%v p=%v", d, p)
	}
}

func TestWorkloadLognormalShape(t *testing.T) {
	// Daily writes of mature drives should match the configured
	// lognormal within KS distance against a fresh sample from the
	// same generative formula.
	cfg := DefaultModelConfig(trace.MLCA, 1)
	rng := NewRNG(5)
	st := &driveState{cfg: &cfg, rng: rng, activity: 1}
	var sim []float64
	for len(sim) < 4000 {
		_, w, _ := st.workload(1000, -1)
		if w > 0 {
			sim = append(sim, float64(w))
		}
	}
	ref := make([]float64, 4000)
	r2 := NewRNG(6)
	for i := range ref {
		ref[i] = cfg.WriteScale * r2.LogNormal(-0.5*cfg.WriteSigma*cfg.WriteSigma, cfg.WriteSigma)
	}
	d := stats.KSStatistic(sim, ref)
	if p := stats.KSPValue(d, len(sim), len(ref)); p < 0.001 {
		t.Errorf("mature write distribution diverges from its model: d=%v p=%v", d, p)
	}
}
