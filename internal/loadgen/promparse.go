package loadgen

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseMetrics parses a Prometheus text-format (0.0.4) exposition into a
// flat map keyed by full series name — `name` or `name{label="v",...}` —
// exactly the keying used by the daemon's own Metrics.Snapshot, so a
// scraped view and an in-process view compare with plain map equality.
// Comment and blank lines are skipped; any other unparseable line is an
// error because conformance arithmetic on a half-read scrape would
// produce false verdicts.
func ParseMetrics(text string) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return nil, fmt.Errorf("loadgen: unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("loadgen: bad value in metrics line %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out, nil
}

// metricDelta returns final[series] - base[series], treating absent
// series as zero (a counter that never fired is simply not exposed by
// some registries; the daemon exposes created series only).
func metricDelta(base, final map[string]float64, series string) float64 {
	return final[series] - base[series]
}
