package loadgen

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// Chaos turns a load run into a fault drill: actions fire at fractions
// of the scheduled record volume, keyed off the runner's live
// accepted-records counter rather than wall time, so "kill a node at
// 30% load" means the same thing on a fast laptop and a slow CI box.

// ChaosAction is one fault (or heal) to inject mid-run.
type ChaosAction struct {
	// AtFraction is the accepted-records fraction of the scheduled total
	// at which the action fires, in [0, 1).
	AtFraction float64
	// Name labels the action in the log.
	Name string
	// Do injects the fault. An error aborts the chaos plan (not the
	// load run) and is reported by RunChaos.
	Do func() error
}

// ChaosLogEntry records one fired action for the run report.
type ChaosLogEntry struct {
	Name string `json:"name"`
	// AtRecords is the accepted-record count when the action fired.
	AtRecords uint64 `json:"at_records"`
	// Elapsed is wall time since the chaos plan started.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// ChaosPlan is an ordered set of actions over one run.
type ChaosPlan struct {
	// Actions must be sorted by AtFraction (Validate checks).
	Actions []ChaosAction
	// Poll is the progress poll cadence (0 = 5ms).
	Poll time.Duration

	fired atomic.Int32
	log   []ChaosLogEntry
}

// Validate checks ordering and bounds.
func (p *ChaosPlan) Validate() error {
	prev := -1.0
	for i, a := range p.Actions {
		if a.AtFraction < 0 || a.AtFraction >= 1 {
			return fmt.Errorf("loadgen: chaos action %d (%s): fraction %.3f outside [0, 1)", i, a.Name, a.AtFraction)
		}
		if a.AtFraction < prev {
			return fmt.Errorf("loadgen: chaos action %d (%s): fractions must be non-decreasing", i, a.Name)
		}
		if a.Do == nil {
			return fmt.Errorf("loadgen: chaos action %d (%s): nil Do", i, a.Name)
		}
		prev = a.AtFraction
	}
	return nil
}

// Fired reports how many actions have fired so far (safe concurrently).
func (p *ChaosPlan) Fired() int { return int(p.fired.Load()) }

// Log returns the fired-action log; call only after RunChaos returns.
func (p *ChaosPlan) Log() []ChaosLogEntry { return p.log }

// RunChaos drives the plan against a live run: it polls the runner's
// accepted-records progress and fires each action once its fraction of
// totalRecords is reached. Call it in a goroutine alongside Runner.Run
// with the same context; it returns when all actions fired, the context
// ended, or an action failed.
func (p *ChaosPlan) RunChaos(ctx context.Context, r *Runner, totalRecords int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	poll := p.Poll
	if poll <= 0 {
		poll = 5 * time.Millisecond
	}
	start := time.Now()
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for i := range p.Actions {
		a := &p.Actions[i]
		threshold := uint64(a.AtFraction * float64(totalRecords))
		for r.AcceptedSoFar() < threshold {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-ticker.C:
			}
		}
		at := r.AcceptedSoFar()
		if err := a.Do(); err != nil {
			return fmt.Errorf("loadgen: chaos action %s: %w", a.Name, err)
		}
		p.log = append(p.log, ChaosLogEntry{
			Name:           a.Name,
			AtRecords:      at,
			ElapsedSeconds: time.Since(start).Seconds(),
		})
		p.fired.Add(1)
	}
	return nil
}
