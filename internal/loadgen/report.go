package loadgen

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Report is the machine-readable outcome of one run — the schema of
// BENCH_serve.json. Latency fields are nanoseconds; the schedule hash
// makes any two reports comparable: equal hashes mean the daemon was
// driven with byte-identical request sequences.
type Report struct {
	Seed           uint64 `json:"seed"`
	Mode           Mode   `json:"mode"`
	Streams        int    `json:"streams"`
	DrivesPerModel int    `json:"drives_per_model"`
	Days           int32  `json:"days"`
	BatchSize      int    `json:"batch_size"`
	Wire           string `json:"wire"`
	ScheduleSHA256 string `json:"schedule_sha256"`

	ScheduledRequests int `json:"scheduled_requests"`
	ScheduledRecords  int `json:"scheduled_records"`

	WallSeconds     float64 `json:"wall_seconds"`
	RequestsSent    uint64  `json:"requests_sent"`
	RequestsPerSec  float64 `json:"requests_per_sec"`
	RecordsPerSec   float64 `json:"records_per_sec"`
	AcceptedRecords uint64  `json:"accepted_records"`
	RejectedRecords uint64  `json:"rejected_records"`
	DroppedRecords  uint64  `json:"dropped_records"`
	ShedRequests    uint64  `json:"shed_requests"`
	// ShedRetries counts re-sends after a 429 (Retry-After honored,
	// capped exponential backoff); TransientRetries counts re-sends
	// after transport errors or 502/503/504 in cluster mode.
	ShedRetries      uint64 `json:"shed_retries"`
	TransientRetries uint64 `json:"transient_retries"`
	TransportErrors  int    `json:"transport_errors"`

	Reloads    int `json:"reloads"`
	Watchlists int `json:"watchlists"`

	// Endpoints maps handler name to its latency summary; Codes maps
	// handler name to status-code counts (JSON keys must be strings).
	Endpoints map[string]Quantiles         `json:"endpoints"`
	Codes     map[string]map[string]uint64 `json:"codes"`

	Conformance ConformanceReport `json:"conformance"`
}

// ConformanceReport summarizes the verification verdict.
type ConformanceReport struct {
	Checked    bool     `json:"checked"`
	Pass       bool     `json:"pass"`
	Violations []string `json:"violations,omitempty"`
	// DrivesVerified is how many replayed drives had their end state
	// checked against schedule ground truth.
	DrivesVerified int `json:"drives_verified"`
}

// NewReport assembles the report from a finished run. Pass violations
// (and checked=true) when Verify ran; a nil violations slice with
// checked=true means a clean pass.
func NewReport(res *Result, violations []string, checked bool) *Report {
	cfg := res.Sched.Cfg
	rep := &Report{
		Seed:              cfg.Seed,
		Mode:              cfg.Mode,
		Streams:           cfg.Streams,
		DrivesPerModel:    cfg.DrivesPerModel,
		Days:              cfg.Days,
		BatchSize:         cfg.BatchSize,
		Wire:              cfg.Wire,
		ScheduleSHA256:    res.Sched.Hash,
		ScheduledRequests: res.Sched.TotalRequests,
		ScheduledRecords:  res.Sched.TotalRecords,
		WallSeconds:       res.Wall.Seconds(),
		RequestsSent:      res.Requests,
		AcceptedRecords:   res.AcceptedRecords,
		RejectedRecords:   res.RejectedRecords,
		DroppedRecords:    res.DroppedRecords,
		ShedRetries:       res.ShedRetries,
		TransientRetries:  res.TransientRetries,
		TransportErrors:   len(res.TransportErrors),
		Reloads:           len(res.Reloads),
		Watchlists:        len(res.Watchlists),
		Endpoints:         make(map[string]Quantiles),
		Codes:             make(map[string]map[string]uint64),
	}
	if s := res.Wall.Seconds(); s > 0 {
		rep.RequestsPerSec = float64(res.Requests) / s
		rep.RecordsPerSec = float64(res.AcceptedRecords) / s
	}
	for name, h := range res.Hists {
		rep.Endpoints[name] = h.Summary()
	}
	for handler, byCode := range res.Codes {
		m := make(map[string]uint64, len(byCode))
		for code, n := range byCode {
			m[strconv.Itoa(code)] = n
			if code == http.StatusTooManyRequests {
				rep.ShedRequests += n
			}
		}
		rep.Codes[handler] = m
	}
	rep.Conformance = ConformanceReport{
		Checked:        checked,
		Pass:           checked && len(violations) == 0,
		Violations:     violations,
		DrivesVerified: len(res.Sched.Drives),
	}
	return rep
}

// MarshalIndent renders the report as indented JSON, ready to write to
// BENCH_serve.json.
func (rep *Report) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}
