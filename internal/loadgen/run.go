package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Runner executes a Schedule against a live daemon.
type Runner struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8377".
	BaseURL string
	// Client is the HTTP client to use; nil means a dedicated client
	// with a connection pool sized to the stream count.
	Client *http.Client
	// MaxShedRetries bounds how many times a shed (429) or — with
	// RetryTransient — transiently failed ingest batch is retried
	// before its records are declared dropped. 0 means 64. Every
	// attempt is counted: retries show up in the request totals and the
	// shed accounting, never silently.
	MaxShedRetries int
	// RetryTransient additionally retries ingest batches that fail at
	// the transport layer or with 502/503/504 — cluster mode, where a
	// node restart or partition makes such failures expected and the
	// store's duplicate rejection makes re-sends benign. Off (the
	// strict single-node default), any transport error is a recorded
	// failure.
	RetryTransient bool
	// Seed seeds the per-stream retry jitter (0 = 1). Two runs with the
	// same seed back off identically given identical server behavior.
	Seed uint64

	// progress counts records accepted so far, readable mid-run by the
	// chaos harness to trigger faults at load fractions.
	progress atomic.Uint64
}

// AcceptedSoFar reports records accepted across all streams so far;
// safe to call while Run is in flight.
func (r *Runner) AcceptedSoFar() uint64 { return r.progress.Load() }

// WatchObs is one successful watchlist response: which model version
// answered, and when the request started. Conformance checks that the
// version is at least as new as every reload that finished before the
// request began — the observable half of "a hot swap never serves a
// mixed or stale batch".
type WatchObs struct {
	Version int
	Start   time.Time
}

// ReloadObs is one successful hot reload: the new version and when the
// swap was confirmed complete.
type ReloadObs struct {
	Version int
	Done    time.Time
}

// Result is everything measured and tracked during a run, sufficient
// for both the benchmark report and the conformance verdict.
type Result struct {
	Sched *Schedule
	Wall  time.Duration

	// Hists holds one latency histogram per op kind (keyed by handler
	// name), merged across streams.
	Hists map[string]*Histogram
	// Codes counts responses by handler name and status code; transport
	// failures count under code 0.
	Codes map[string]map[int]uint64
	// Requests is the total attempts sent, including shed retries and
	// the harness's own baseline/verification requests.
	Requests uint64

	// Record-level accounting, from response bodies.
	AcceptedRecords uint64
	RejectedRecords uint64
	// DroppedRecords counts records in batches still shed after the
	// retry budget: offered but never accepted nor rejected.
	DroppedRecords uint64
	// ShedRetries counts ingest-batch re-sends after a 429, and
	// TransientRetries after a transport error or 502/503/504 (cluster
	// mode). Both surface in the conformance report so retried load is
	// visible, never silently folded into the totals.
	ShedRetries      uint64
	TransientRetries uint64

	Watchlists []WatchObs
	Reloads    []ReloadObs

	// BaselineVersion is the model version before load; baseline and
	// final metric scrapes bracket the run for delta accounting.
	BaselineVersion int
	BaselineMetrics map[string]float64
	FinalVersion    int
	FinalMetrics    map[string]float64

	// TransportErrors holds up to a handful of transport-level failure
	// messages for diagnostics.
	TransportErrors []string
}

// streamState is the per-stream (single-goroutine) measurement state,
// merged after all streams join.
type streamState struct {
	hists    map[OpKind]*Histogram
	codes    map[OpKind]map[int]uint64
	requests uint64

	accepted uint64
	rejected uint64
	dropped  uint64

	shedRetries      uint64
	transientRetries uint64

	rng *rand.Rand

	watch    []WatchObs
	reloads  []ReloadObs
	errs     []string
	lastVers int
}

func newStreamState(seed, stream uint64) *streamState {
	if seed == 0 {
		seed = 1
	}
	return &streamState{
		hists: make(map[OpKind]*Histogram),
		codes: make(map[OpKind]map[int]uint64),
		rng:   rand.New(rand.NewPCG(seed, stream)),
	}
}

func (st *streamState) record(kind OpKind, code int, d time.Duration) {
	h := st.hists[kind]
	if h == nil {
		h = &Histogram{}
		st.hists[kind] = h
	}
	h.RecordDuration(d)
	byCode := st.codes[kind]
	if byCode == nil {
		byCode = make(map[int]uint64)
		st.codes[kind] = byCode
	}
	byCode[code]++
	st.requests++
}

const maxTransportErrorDetail = 8

func (st *streamState) fail(err error) {
	if len(st.errs) < maxTransportErrorDetail {
		st.errs = append(st.errs, err.Error())
	}
}

// ingestReply and versionReply are the response-body slices the client
// cares about; extra fields are ignored.
type ingestReply struct {
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
}
type versionReply struct {
	Version      int `json:"version"`
	ModelVersion int `json:"model_version"`
}

// do fires one request and returns status code, body, latency, and the
// server's Retry-After hint (0 when absent). A transport failure
// returns code 0 and a nil body.
func (r *Runner) do(ctx context.Context, op *Op) (int, []byte, time.Duration, time.Duration, error) {
	var rd io.Reader
	if op.Body != nil {
		rd = bytes.NewReader(op.Body)
	}
	req, err := http.NewRequestWithContext(ctx, op.Kind.Method(), r.BaseURL+op.Path, rd)
	if err != nil {
		return 0, nil, 0, 0, err
	}
	if op.Body != nil {
		req.Header.Set("Content-Type", op.Kind.ContentType())
	}
	start := time.Now()
	resp, err := r.Client.Do(req)
	if err != nil {
		return 0, nil, time.Since(start), 0, err
	}
	retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"))
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	dur := time.Since(start)
	if err != nil {
		return resp.StatusCode, nil, dur, retryAfter, err
	}
	return resp.StatusCode, body, dur, retryAfter, nil
}

// parseRetryAfter interprets the delay-seconds form of Retry-After;
// the HTTP-date form (which this fleet never sends) reads as absent.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

const (
	defaultShedRetries = 64
	retryBackoffBase   = 2 * time.Millisecond
	retryBackoffMax    = time.Second
)

// retryDelay is the wait before retry attempt n (0-based): a capped
// exponential with seeded jitter in [d/2, d], floored by the server's
// Retry-After hint when one was sent. The server's hint wins even past
// the cap — it knows its own shed horizon better than the client does.
func retryDelay(rng *rand.Rand, attempt int, retryAfter time.Duration) time.Duration {
	d := retryBackoffMax
	if attempt < 20 {
		if exp := retryBackoffBase << uint(attempt); exp < d {
			d = exp
		}
	}
	d = d/2 + time.Duration(rng.Int64N(int64(d/2)+1))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// sleepRetry waits out a backoff, reporting false if the run was
// canceled first.
func sleepRetry(ctx context.Context, d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

// execute runs one op on a stream, including the retry loop for ingest
// batches, and folds the outcome into the stream state. Sheds (429) are
// always retried with Retry-After-aware backoff; transport errors and
// 502/503/504 are retried too when RetryTransient is set.
func (r *Runner) execute(ctx context.Context, st *streamState, op *Op) {
	retries := r.MaxShedRetries
	if retries <= 0 {
		retries = defaultShedRetries
	}
	for attempt := 0; ; attempt++ {
		code, body, dur, retryAfter, err := r.do(ctx, op)
		st.record(op.Kind, code, dur)
		if err != nil {
			if r.RetryTransient && op.Kind.ingest() && attempt < retries {
				st.transientRetries++
				if !sleepRetry(ctx, retryDelay(st.rng, attempt, 0)) {
					st.dropped += uint64(op.Records)
					return
				}
				continue
			}
			st.fail(fmt.Errorf("%s %s: %w", op.Kind, op.Path, err))
			return
		}
		shed := code == http.StatusTooManyRequests
		transient := r.RetryTransient && (code == http.StatusBadGateway ||
			code == http.StatusServiceUnavailable || code == http.StatusGatewayTimeout)
		if (shed || transient) && op.Kind.ingest() && attempt < retries {
			if shed {
				st.shedRetries++
			} else {
				st.transientRetries++
			}
			if !sleepRetry(ctx, retryDelay(st.rng, attempt, retryAfter)) {
				st.dropped += uint64(op.Records)
				return
			}
			continue
		}
		r.observe(st, op, code, body)
		return
	}
}

// observe folds a final (non-retried) response into the stream state.
func (r *Runner) observe(st *streamState, op *Op, code int, body []byte) {
	switch op.Kind {
	case OpIngestBatch, OpIngestBin:
		if code == http.StatusTooManyRequests {
			st.dropped += uint64(op.Records)
			return
		}
		var rep ingestReply
		if json.Unmarshal(body, &rep) == nil {
			st.accepted += uint64(rep.Accepted)
			st.rejected += uint64(rep.Rejected)
			r.progress.Add(uint64(rep.Accepted))
			if miss := op.Records - rep.Accepted - rep.Rejected; miss > 0 {
				st.dropped += uint64(miss)
			}
		} else {
			st.dropped += uint64(op.Records)
		}
	case OpWatchlist:
		if code == http.StatusOK {
			var rep versionReply
			if json.Unmarshal(body, &rep) == nil {
				// Start is stamped by the caller; see runStream.
				st.watch = append(st.watch, WatchObs{Version: rep.ModelVersion})
			}
		}
	case OpReload:
		if code == http.StatusOK {
			var rep versionReply
			if json.Unmarshal(body, &rep) == nil {
				st.reloads = append(st.reloads, ReloadObs{Version: rep.Version, Done: time.Now()})
			}
		}
	case OpModel:
		if code == http.StatusOK {
			var rep versionReply
			if json.Unmarshal(body, &rep) == nil {
				st.lastVers = rep.Version
			}
		}
	}
}

// runStream drives one stream to completion: closed-loop back-to-back,
// or open-loop honoring each op's arrival offset.
func (r *Runner) runStream(ctx context.Context, st *streamState, stream *Stream, start time.Time, open bool) {
	for i := range stream.Ops {
		if ctx.Err() != nil {
			for j := i; j < len(stream.Ops); j++ {
				st.dropped += uint64(stream.Ops[j].Records)
			}
			return
		}
		op := &stream.Ops[i]
		if open {
			if wait := time.Until(start.Add(op.At)); wait > 0 {
				select {
				case <-time.After(wait):
				case <-ctx.Done():
				}
			}
		}
		watchStart := time.Now()
		before := len(st.watch)
		r.execute(ctx, st, op)
		// Stamp the request start on any watchlist observation the op
		// produced (execute can't know it before sending).
		for j := before; j < len(st.watch); j++ {
			st.watch[j].Start = watchStart
		}
	}
}

// Run executes the schedule: a baseline scrape and model read, then all
// streams concurrently, leaving the Result ready for Verify. Every
// request the harness itself makes is counted in the same accounting as
// scheduled load, so the daemon's request counters remain exactly
// explainable.
func (r *Runner) Run(ctx context.Context, sched *Schedule) (*Result, error) {
	if r.Client == nil {
		r.Client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        sched.Cfg.Streams + 2,
				MaxIdleConnsPerHost: sched.Cfg.Streams + 2,
			},
		}
	}
	res := &Result{
		Sched: sched,
		Hists: make(map[string]*Histogram),
		Codes: make(map[string]map[int]uint64),
	}

	harness := newStreamState(r.Seed, ^uint64(0))
	base, err := r.scrapeMetrics(ctx, harness)
	if err != nil {
		return nil, fmt.Errorf("loadgen: baseline metrics scrape: %w", err)
	}
	res.BaselineMetrics = base
	v0, err := r.readVersion(ctx, harness)
	if err != nil {
		return nil, fmt.Errorf("loadgen: baseline model read: %w", err)
	}
	res.BaselineVersion = v0

	states := make([]*streamState, len(sched.Streams))
	start := time.Now()
	var wg sync.WaitGroup
	for s := range sched.Streams {
		states[s] = newStreamState(r.Seed, uint64(s))
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			r.runStream(ctx, states[s], &sched.Streams[s], start, sched.Cfg.Mode == ModeOpen)
		}(s)
	}
	wg.Wait()
	res.Wall = time.Since(start)

	res.merge(harness)
	for _, st := range states {
		res.merge(st)
	}
	return res, ctx.Err()
}

// merge folds one stream's state into the result.
func (res *Result) merge(st *streamState) {
	for kind, h := range st.hists {
		name := kind.String()
		dst := res.Hists[name]
		if dst == nil {
			dst = &Histogram{}
			res.Hists[name] = dst
		}
		dst.Merge(h)
	}
	for kind, byCode := range st.codes {
		name := kind.String()
		dst := res.Codes[name]
		if dst == nil {
			dst = make(map[int]uint64)
			res.Codes[name] = dst
		}
		for code, n := range byCode {
			dst[code] += n
		}
	}
	res.Requests += st.requests
	res.AcceptedRecords += st.accepted
	res.RejectedRecords += st.rejected
	res.DroppedRecords += st.dropped
	res.ShedRetries += st.shedRetries
	res.TransientRetries += st.transientRetries
	res.Watchlists = append(res.Watchlists, st.watch...)
	res.Reloads = append(res.Reloads, st.reloads...)
	res.TransportErrors = append(res.TransportErrors, st.errs...)
}

// scrapeMetrics fetches and parses /metrics, counting the request.
func (r *Runner) scrapeMetrics(ctx context.Context, st *streamState) (map[string]float64, error) {
	op := Op{Kind: OpMetrics, Path: "/metrics"}
	code, body, dur, _, err := r.do(ctx, &op)
	st.record(OpMetrics, code, dur)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("metrics returned %d", code)
	}
	return ParseMetrics(string(body))
}

// readVersion fetches the serving model version, counting the request.
func (r *Runner) readVersion(ctx context.Context, st *streamState) (int, error) {
	op := Op{Kind: OpModel, Path: "/v1/model"}
	code, body, dur, _, err := r.do(ctx, &op)
	st.record(OpModel, code, dur)
	if err != nil {
		return 0, err
	}
	if code != http.StatusOK {
		return 0, fmt.Errorf("model returned %d", code)
	}
	var rep versionReply
	if err := json.Unmarshal(body, &rep); err != nil {
		return 0, err
	}
	return rep.Version, nil
}
