package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// VerifyOptions tunes the conformance pass.
type VerifyOptions struct {
	// History is the daemon's per-drive retention depth, used to predict
	// the exact day count each drive must report. 0 skips the exact
	// count check (unknown remote configuration) and requires only that
	// a feature window exists.
	History int
	// MaxViolations caps the returned list; 0 means 64. The count in
	// the final summary line is always exact.
	MaxViolations int
	// Cluster relaxes the single-daemon exactness checks for runs driven
	// through ssdrouter under chaos: rejections (failover re-sends are
	// rejected benignly by the store's duplicate detection), transport
	// errors (bridged by the client's transient retries), and the exact
	// metrics accounting (the router's rollup is a different contract)
	// stop being violations. What stays exact is the loss oracle: every
	// drive's end state must match the schedule precisely, so any
	// accepted-then-lost record still fails the run.
	Cluster bool
}

// Verify runs the end-to-end conformance pass against the daemon after
// a Run: every replayed drive's end state, exact metrics accounting for
// the driven load, and hot-swap version monotonicity. It returns the
// list of violations (empty means conformant). The harness's own
// verification requests are folded into the result's accounting before
// the metrics checks, so they too must be accounted for by the daemon —
// the final scrape is fetched last and, by the daemon's
// observe-after-serve semantics, does not include itself.
func (r *Runner) Verify(ctx context.Context, res *Result, opts VerifyOptions) ([]string, error) {
	if opts.MaxViolations <= 0 {
		opts.MaxViolations = 64
	}
	var v violations
	v.max = opts.MaxViolations

	// Offered records must be fully explained before per-drive state can
	// be exact: the schedule replays a validated trace, so any rejection
	// or drop is itself a failure of daemon or harness. Under chaos,
	// rejections and transport errors are the expected residue of
	// failover re-sends; drops are still records that never landed.
	if res.RejectedRecords > 0 && !opts.Cluster {
		v.addf("daemon rejected %d records from a pre-validated trace", res.RejectedRecords)
	}
	if res.DroppedRecords > 0 {
		v.addf("%d records dropped (shed beyond the retry budget or aborted)", res.DroppedRecords)
	}
	if n := len(res.TransportErrors); n > 0 && !opts.Cluster {
		v.addf("%d transport errors (first: %s) — exact accounting impossible", n, res.TransportErrors[0])
	}

	harness := newStreamState(r.Seed, ^uint64(0)-1)
	r.verifyDrives(ctx, res, harness, opts, &v)

	finalVersion, err := r.readVersion(ctx, harness)
	if err != nil {
		return nil, fmt.Errorf("loadgen: final model read: %w", err)
	}
	res.FinalVersion = finalVersion
	verifyVersions(res, &v)

	// The final scrape must be the last request of the whole session:
	// everything before it — including this harness state — is then
	// visible in its counters, and only the scrape itself is not.
	finalMetrics, err := r.scrapeMetrics(ctx, harness)
	if err != nil {
		return nil, fmt.Errorf("loadgen: final metrics scrape: %w", err)
	}
	res.FinalMetrics = finalMetrics
	res.merge(harness)
	if !opts.Cluster {
		verifyAccounting(res, &v)
	}

	return v.list, nil
}

// violations accumulates findings with a cap on detail.
type violations struct {
	list  []string
	total int
	max   int
}

func (v *violations) addf(format string, args ...any) {
	v.total++
	if len(v.list) < v.max {
		v.list = append(v.list, fmt.Sprintf(format, args...))
	} else if len(v.list) == v.max {
		v.list = append(v.list, fmt.Sprintf("... and more (%d so far)", v.total))
	} else {
		v.list[v.max] = fmt.Sprintf("... and %d more", v.total-v.max)
	}
}

// driveReply is the slice of GET /v1/drive/{id} the verifier checks.
type driveReply struct {
	Model string `json:"model"`
	Days  int    `json:"days"`
	Last  *struct {
		Day int32 `json:"day"`
		Age int32 `json:"age"`
	} `json:"last"`
	Score *float64 `json:"score"`
}

// verifyDrives checks that every drive the schedule replayed is present,
// carries the expected newest record, retains the expected feature
// window, and is scoreable by the serving model.
func (r *Runner) verifyDrives(ctx context.Context, res *Result, st *streamState, opts VerifyOptions, v *violations) {
	ids := make([]uint32, 0, len(res.Sched.Drives))
	for id := range res.Sched.Drives {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		want := res.Sched.Drives[id]
		op := Op{Kind: OpDrive, Path: "/v1/drive/" + strconv.FormatUint(uint64(id), 10)}
		code, body, dur, _, err := r.do(ctx, &op)
		st.record(OpDrive, code, dur)
		if err != nil {
			st.fail(err)
			v.addf("drive %d: transport error: %v", id, err)
			continue
		}
		if code != http.StatusOK {
			v.addf("drive %d: status %d, want 200", id, code)
			continue
		}
		var rep driveReply
		if err := json.Unmarshal(body, &rep); err != nil {
			v.addf("drive %d: unparseable response: %v", id, err)
			continue
		}
		if rep.Model != want.Model {
			v.addf("drive %d: model %q, want %q", id, rep.Model, want.Model)
		}
		if rep.Last == nil {
			v.addf("drive %d: no last record", id)
		} else if rep.Last.Day != want.LastDay || rep.Last.Age != want.LastAge {
			v.addf("drive %d: last (day %d, age %d), want (day %d, age %d)",
				id, rep.Last.Day, rep.Last.Age, want.LastDay, want.LastAge)
		}
		if opts.History > 0 {
			wantDays := want.Records
			if wantDays > opts.History {
				wantDays = opts.History
			}
			if rep.Days != wantDays {
				v.addf("drive %d: retains %d days, want %d (%d sent, history %d)",
					id, rep.Days, wantDays, want.Records, opts.History)
			}
		} else if rep.Days < 1 {
			v.addf("drive %d: retains no records", id)
		}
		if rep.Score == nil {
			v.addf("drive %d: not scoreable (no score in response)", id)
		}
	}
}

// verifyVersions checks hot-swap observability: the final version equals
// baseline plus completed reloads, reload versions are strictly
// increasing, and no watchlist response was served by a model older
// than a reload that had already completed when the request began.
func verifyVersions(res *Result, v *violations) {
	v0 := res.BaselineVersion
	if want := v0 + len(res.Reloads); res.FinalVersion != want {
		v.addf("final model version %d, want %d (baseline %d + %d reloads)",
			res.FinalVersion, want, v0, len(res.Reloads))
	}
	prev := v0
	for i, rl := range res.Reloads {
		if rl.Version <= prev {
			v.addf("reload %d: version %d not greater than previous %d", i, rl.Version, prev)
		}
		prev = rl.Version
	}
	for i, w := range res.Watchlists {
		min := v0
		for _, rl := range res.Reloads {
			if rl.Done.Before(w.Start) && rl.Version > min {
				min = rl.Version
			}
		}
		if w.Version < min {
			v.addf("watchlist %d: served by model version %d, but version %d had already completed loading",
				i, w.Version, min)
		}
		if w.Version > res.FinalVersion {
			v.addf("watchlist %d: version %d exceeds final version %d", i, w.Version, res.FinalVersion)
		}
	}
}

// verifyAccounting compares the daemon's counter deltas over the run
// against the client's own books. The driven load must be exactly
// explained: requests by handler and code, accepted records, rejections
// by reason, and sheds by handler.
func verifyAccounting(res *Result, v *violations) {
	base, final := res.BaselineMetrics, res.FinalMetrics

	if d := metricDelta(base, final, "ssdserved_ingest_records_total"); d != float64(res.AcceptedRecords) {
		v.addf("ingest_records_total advanced by %.0f, client saw %d accepted", d, res.AcceptedRecords)
	}

	var rejected float64
	for series := range final {
		if strings.HasPrefix(series, "ssdserved_ingest_rejected_total{") {
			rejected += metricDelta(base, final, series)
		}
	}
	if rejected != float64(res.RejectedRecords) {
		v.addf("ingest_rejected_total advanced by %.0f, client saw %d rejected", rejected, res.RejectedRecords)
	}

	// Requests by handler and code, both directions: every client-side
	// count must match the daemon's delta, and every daemon-side series
	// that moved must be explained by the client. The metrics handler
	// runs one short because the final scrape cannot count itself.
	expected := make(map[string]float64)
	for handler, byCode := range res.Codes {
		for code, n := range byCode {
			if code == 0 {
				continue // transport failure; never reached a handler
			}
			series := fmt.Sprintf(`ssdserved_http_requests_total{handler=%q,code=%q}`,
				handler, strconv.Itoa(code))
			expected[series] += float64(n)
		}
	}
	expected[`ssdserved_http_requests_total{handler="metrics",code="200"}`]--
	for series := range final {
		if strings.HasPrefix(series, "ssdserved_http_requests_total{") {
			if _, ok := expected[series]; !ok {
				expected[series] = 0
			}
		}
	}
	series := make([]string, 0, len(expected))
	for s := range expected {
		series = append(series, s)
	}
	sort.Strings(series)
	for _, s := range series {
		if d := metricDelta(base, final, s); d != expected[s] {
			v.addf("%s advanced by %.0f, client accounts for %.0f", s, d, expected[s])
		}
	}

	// Remediation ticks: the daemon's evaluation counter must advance by
	// exactly the number of ticks the client drove to completion (a 409
	// from a remediation-disabled daemon is not a tick).
	remedyOK := float64(res.Codes["remedy_evaluate"][http.StatusOK])
	if d := metricDelta(base, final, "ssdremedy_evaluations_total"); d != remedyOK {
		v.addf("ssdremedy_evaluations_total advanced by %.0f, client completed %.0f evaluations", d, remedyOK)
	}

	// Sheds: the daemon's 429s by handler are exactly the client's.
	shed := make(map[string]float64)
	for handler, byCode := range res.Codes {
		if n := byCode[http.StatusTooManyRequests]; n > 0 {
			shed[handler] = float64(n)
		}
	}
	shedSeries := make([]string, 0, len(final))
	for s := range final {
		if strings.HasPrefix(s, "ssdserved_load_shed_total{") {
			shedSeries = append(shedSeries, s)
		}
	}
	sort.Strings(shedSeries)
	for _, s := range shedSeries {
		handler := strings.TrimSuffix(strings.TrimPrefix(s, `ssdserved_load_shed_total{handler="`), `"}`)
		if d := metricDelta(base, final, s); d != shed[handler] {
			v.addf("%s advanced by %.0f, client saw %.0f sheds", s, d, shed[handler])
		}
		delete(shed, handler)
	}
	missed := make([]string, 0, len(shed))
	for handler := range shed {
		missed = append(missed, handler)
	}
	sort.Strings(missed)
	for _, handler := range missed {
		v.addf("client saw %.0f sheds for %s but no load_shed series moved", shed[handler], handler)
	}
}
