package loadgen

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"time"

	"ssdfail/internal/fleetsim"
	"ssdfail/internal/serve"
	"ssdfail/internal/trace"
)

// Mode selects how the runner paces requests.
type Mode string

const (
	// ModeClosed drives each stream in a closed loop: the next request
	// fires as soon as the previous response lands. Measures capacity.
	ModeClosed Mode = "closed"
	// ModeOpen drives each stream on a precomputed arrival schedule
	// (seeded exponential inter-arrivals): requests fire at their
	// scheduled offset regardless of how fast responses come back.
	// Measures latency under a fixed offered load without coordinated
	// omission from the client side.
	ModeOpen Mode = "open"
)

// Config parameterizes schedule construction. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// Seed fixes everything: the simulated fleet being replayed, probe
	// placement, probe targets, and open-loop arrival times. Two builds
	// with equal Config produce byte-identical schedules.
	Seed uint64
	Mode Mode
	// Streams is the number of concurrent request streams. Drives are
	// partitioned across streams (drive index mod Streams) and each
	// stream is strictly sequential, so every drive's day ordering —
	// which the daemon's store enforces — is preserved by construction.
	Streams int
	// DrivesPerModel and HorizonDays size the fleetsim fleet whose tail
	// is replayed.
	DrivesPerModel int
	HorizonDays    int32
	// Days is the replay window: records from the last Days days of the
	// trace become ingest traffic.
	Days int32
	// BatchSize is the number of records per POST /v1/ingest/batch.
	BatchSize int
	// ProbeEvery interleaves one read-path probe (watchlist, drive
	// inspection, model info, or metrics scrape) after every ProbeEvery
	// ingest batches.
	ProbeEvery int
	// RatePerStream is the open-loop offered load in requests/second per
	// stream (ignored in closed-loop mode).
	RatePerStream float64
	// ReloadMidRun inserts one POST /v1/model/reload at the midpoint of
	// stream 0, so every run exercises a hot swap under load.
	ReloadMidRun bool
	// RemedyEvery interleaves one POST /v1/remedy/evaluate (a
	// remediation policy tick) after every RemedyEvery ingest batches on
	// stream 0, so a remediation-enabled daemon is exercised under load.
	// 0 schedules none. Against a daemon without -remedy the ticks
	// answer 409, which still conformance-checks the accounting.
	RemedyEvery int
	// DriveIDOffset shifts every replayed drive's ID. Conformance needs
	// drives and days the daemon has not already ingested — the store
	// (correctly) rejects regressing days and model changes — so repeat
	// runs against a long-lived daemon should each use a disjoint offset.
	DriveIDOffset uint32
	// Wire selects the ingest wire format: WireJSON (default) batches to
	// POST /v1/ingest/batch, WireBinary frames the same records for
	// POST /v1/ingest/bin. Everything else about the schedule — records,
	// ordering, probes — is identical, so a JSON and a binary run drive
	// the daemon into the same end state.
	Wire string
	// DriftWriteMult > 0 injects a mid-run distribution shift: a second
	// fleetsim cohort whose models run DriftWriteMult times the write
	// workload, entering the replay at the DriftAfterFrac point of the
	// window (default 0.5) on a disjoint ID range (DriftIDOffset above
	// DriveIDOffset). The ingested write distribution steps when the
	// cohort comes online — the trigger the continuous-learning
	// trainer's KS drift check is built to catch. 0 disables.
	DriftWriteMult float64
	// DriftAfterFrac is the fraction of the replay window after which
	// the drift cohort's records begin (only with DriftWriteMult > 0).
	DriftAfterFrac float64
	// DriftDrivesPerModel sizes the drift cohort (default
	// DrivesPerModel).
	DriftDrivesPerModel int
	// HazardMult scales every model's failure hazards (base and infant)
	// in both the base fleet and the drift cohort. Short replay windows
	// of a calibrated fleet contain almost no failures; training-loop
	// tests raise this so the window carries enough labeled failures to
	// retrain from. 0 means 1 (calibrated rates).
	HazardMult float64
}

// DriftIDOffset separates the drift cohort's drive IDs from the base
// fleet's within one schedule (both are additionally shifted by
// Config.DriveIDOffset).
const DriftIDOffset = 1 << 18

// Wire formats for Config.Wire.
const (
	WireJSON   = "json"
	WireBinary = "binary"
)

// DefaultConfig returns a schedule sized for a laptop-scale soak: a
// 3-model fleet replayed over its final month.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:           seed,
		Mode:           ModeClosed,
		Streams:        4,
		DrivesPerModel: 24,
		HorizonDays:    365,
		Days:           30,
		BatchSize:      16,
		ProbeEvery:     8,
		RatePerStream:  200,
		ReloadMidRun:   true,
	}
}

func (c Config) withDefaults() (Config, error) {
	d := DefaultConfig(c.Seed)
	if c.Mode == "" {
		c.Mode = d.Mode
	}
	if c.Mode != ModeClosed && c.Mode != ModeOpen {
		return c, fmt.Errorf("loadgen: unknown mode %q", c.Mode)
	}
	if c.Streams <= 0 {
		c.Streams = d.Streams
	}
	if c.DrivesPerModel <= 0 {
		c.DrivesPerModel = d.DrivesPerModel
	}
	if c.HorizonDays <= 0 {
		c.HorizonDays = d.HorizonDays
	}
	if c.Days <= 0 {
		c.Days = d.Days
	}
	if c.Days > c.HorizonDays {
		c.Days = c.HorizonDays
	}
	if c.BatchSize <= 0 {
		c.BatchSize = d.BatchSize
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = d.ProbeEvery
	}
	if c.RatePerStream <= 0 {
		c.RatePerStream = d.RatePerStream
	}
	if c.HorizonDays < 90 {
		return c, fmt.Errorf("loadgen: horizon %d too short (fleetsim needs >= 90)", c.HorizonDays)
	}
	if c.Wire == "" {
		c.Wire = WireJSON
	}
	if c.Wire != WireJSON && c.Wire != WireBinary {
		return c, fmt.Errorf("loadgen: unknown wire format %q", c.Wire)
	}
	if c.DriftWriteMult < 0 {
		return c, fmt.Errorf("loadgen: negative drift write multiplier %g", c.DriftWriteMult)
	}
	if c.HazardMult < 0 {
		return c, fmt.Errorf("loadgen: negative hazard multiplier %g", c.HazardMult)
	}
	if c.HazardMult == 0 {
		c.HazardMult = 1
	}
	if c.DriftWriteMult > 0 {
		if c.DriftAfterFrac <= 0 || c.DriftAfterFrac >= 1 {
			c.DriftAfterFrac = 0.5
		}
		if c.DriftDrivesPerModel <= 0 {
			c.DriftDrivesPerModel = c.DrivesPerModel
		}
	}
	return c, nil
}

// OpKind identifies one request type. String values match the daemon's
// handler labels so client-side accounting lines up with the
// ssdserved_http_requests_total{handler=...} series one-to-one.
type OpKind uint8

const (
	OpIngestBatch OpKind = iota
	OpWatchlist
	OpDrive
	OpModel
	OpMetrics
	OpReload
	OpRemedyEvaluate
	OpIngestBin // appended last: OpKind values feed the schedule hash
)

var opNames = [...]string{"ingest_batch", "watchlist", "drive", "model", "metrics", "model_reload", "remedy_evaluate", "ingest_bin"}

func (k OpKind) String() string { return opNames[k] }

// Method returns the HTTP method for the op kind.
func (k OpKind) Method() string {
	switch k {
	case OpIngestBatch, OpIngestBin, OpReload, OpRemedyEvaluate:
		return "POST"
	default:
		return "GET"
	}
}

// ContentType returns the body MIME type for ops that carry one.
func (k OpKind) ContentType() string {
	if k == OpIngestBin {
		return "application/octet-stream"
	}
	return "application/json"
}

// ingest reports whether the op carries drive-day records, i.e. shares
// the ingest retry and accounting semantics regardless of wire format.
func (k OpKind) ingest() bool { return k == OpIngestBatch || k == OpIngestBin }

// Op is one scheduled request: everything needed to fire it is
// precomputed at build time, so the hot loop does no marshaling and no
// RNG draws.
type Op struct {
	Kind OpKind
	// At is the offset from run start at which the op becomes eligible
	// (open-loop only; zero in closed-loop schedules).
	At   time.Duration
	Path string
	// Body is the pre-marshaled JSON payload (ingest batches only).
	Body []byte
	// Records is the number of drive-day records in an ingest batch.
	Records int
}

// Stream is one strictly sequential lane of requests.
type Stream struct{ Ops []Op }

// DriveExpect is what the daemon must report for one drive after every
// scheduled ingest for it has been accepted.
type DriveExpect struct {
	Model   string
	Records int
	LastDay int32
	LastAge int32
}

// Schedule is a fully materialized load plan: per-stream op lists plus
// the ground truth needed to check the daemon's end state against what
// was driven into it.
type Schedule struct {
	Cfg     Config
	Streams []Stream
	// Drives maps every replayed drive to its expected end state.
	Drives map[uint32]DriveExpect
	// Reloads is the number of scheduled model-reload ops.
	Reloads int
	// RemedyTicks is the number of scheduled remediation evaluations.
	RemedyTicks int
	// Hash is the SHA-256 of the canonical schedule serialization; equal
	// configs yield equal hashes, making reproducibility checkable.
	Hash string

	TotalRequests int
	TotalRecords  int
}

// scheduleRNG namespaces the RNG streams drawn from the seed so probe
// placement and open-loop arrivals cannot alias each other or the
// fleet simulation.
const (
	rngStreamProbes   = 0x10ad<<8 | 1
	rngStreamArrivals = 0x10ad<<8 | 2
)

// Build generates the fleet, slices the replay window, and materializes
// every request of every stream.
func Build(cfg Config) (*Schedule, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	fleet, err := buildFleet(cfg)
	if err != nil {
		return nil, err
	}

	sched := &Schedule{
		Cfg:     cfg,
		Streams: make([]Stream, cfg.Streams),
		Drives:  make(map[uint32]DriveExpect),
	}

	// Partition drives across streams, then lay each stream's records
	// out fleet-style: ordered by (day, drive), so the daemon sees the
	// whole partition reporting day by day. Per-drive day order — the
	// store's hard invariant — is preserved because a drive lives in
	// exactly one stream and its trace days are strictly increasing.
	type rec struct {
		id    uint32
		model trace.Model
		day   int32
		r     *trace.DayRecord
	}
	windowStart := fleet.Horizon - cfg.Days
	perStream := make([][]rec, cfg.Streams)
	addDrive := func(idx int, d *trace.Drive, idOffset uint32, from int32) {
		id := d.ID + idOffset
		s := idx % cfg.Streams
		n := 0
		var last *trace.DayRecord
		for j := range d.Days {
			if d.Days[j].Day < from {
				continue
			}
			perStream[s] = append(perStream[s], rec{id, d.Model, d.Days[j].Day, &d.Days[j]})
			last = &d.Days[j]
			n++
		}
		if n > 0 {
			sched.Drives[id] = DriveExpect{
				Model:   d.Model.String(),
				Records: n,
				LastDay: last.Day,
				LastAge: last.Age,
			}
		}
	}
	for i := range fleet.Drives {
		addDrive(i, &fleet.Drives[i], cfg.DriveIDOffset, windowStart)
	}
	if cfg.DriftWriteMult > 0 {
		// The drift cohort: a write-shifted fleet whose drives come
		// online partway through the replay window, stepping the
		// ingested write distribution mid-run. Cohort drives continue
		// the base fleet's stream round-robin so every stream sees the
		// shift, and per-drive day ordering still holds because each
		// drive lives in exactly one stream.
		drift, err := buildDriftFleet(cfg)
		if err != nil {
			return nil, err
		}
		driftStart := windowStart + int32(cfg.DriftAfterFrac*float64(cfg.Days))
		for j := range drift.Drives {
			addDrive(len(fleet.Drives)+j, &drift.Drives[j], cfg.DriveIDOffset+DriftIDOffset, driftStart)
		}
	}

	root := fleetsim.NewRNG(cfg.Seed)
	for s := range perStream {
		recs := perStream[s]
		sort.SliceStable(recs, func(a, b int) bool {
			if recs[a].day != recs[b].day {
				return recs[a].day < recs[b].day
			}
			return recs[a].id < recs[b].id
		})
		probeRNG := root.Derive(uint64(rngStreamProbes)<<32 | uint64(s))
		var ops []Op
		var seen []uint32 // drives with at least one batch already scheduled
		inSeen := make(map[uint32]bool)
		batches := 0
		for off := 0; off < len(recs); off += cfg.BatchSize {
			end := off + cfg.BatchSize
			if end > len(recs) {
				end = len(recs)
			}
			kind, path := OpIngestBatch, "/v1/ingest/batch"
			var body []byte
			if cfg.Wire == WireBinary {
				kind, path = OpIngestBin, "/v1/ingest/bin"
				body = serve.AppendBinHeader(nil, end-off)
				for _, r := range recs[off:end] {
					body = serve.AppendBinRecord(body, r.id, r.model, r.r)
				}
			} else {
				batch := make([]serve.IngestRecord, 0, end-off)
				for _, r := range recs[off:end] {
					batch = append(batch, serve.WireRecord(r.id, r.model, r.r))
				}
				body, err = json.Marshal(batch)
				if err != nil {
					return nil, fmt.Errorf("loadgen: marshaling batch: %w", err)
				}
			}
			for _, r := range recs[off:end] {
				if !inSeen[r.id] {
					inSeen[r.id] = true
					seen = append(seen, r.id)
				}
			}
			ops = append(ops, Op{
				Kind:    kind,
				Path:    path,
				Body:    body,
				Records: end - off,
			})
			batches++
			if batches%cfg.ProbeEvery == 0 {
				ops = append(ops, probeOp(probeRNG, seen))
			}
			if s == 0 && cfg.RemedyEvery > 0 && batches%cfg.RemedyEvery == 0 {
				ops = append(ops, Op{Kind: OpRemedyEvaluate, Path: "/v1/remedy/evaluate"})
				sched.RemedyTicks++
			}
		}
		sched.Streams[s].Ops = ops
	}

	if cfg.ReloadMidRun && len(sched.Streams[0].Ops) > 0 {
		ops := sched.Streams[0].Ops
		mid := len(ops) / 2
		ops = append(ops[:mid:mid], append([]Op{{Kind: OpReload, Path: "/v1/model/reload"}}, ops[mid:]...)...)
		sched.Streams[0].Ops = ops
		sched.Reloads = 1
	}

	if cfg.Mode == ModeOpen {
		for s := range sched.Streams {
			arrRNG := root.Derive(uint64(rngStreamArrivals)<<32 | uint64(s))
			var at float64 // seconds
			for i := range sched.Streams[s].Ops {
				at += arrRNG.Exp(1 / cfg.RatePerStream)
				sched.Streams[s].Ops[i].At = time.Duration(at * float64(time.Second))
			}
		}
	}

	for s := range sched.Streams {
		sched.TotalRequests += len(sched.Streams[s].Ops)
		for i := range sched.Streams[s].Ops {
			sched.TotalRecords += sched.Streams[s].Ops[i].Records
		}
	}
	sched.Hash = sched.hash()
	return sched, nil
}

// probeOp picks one read-path probe. The drive-inspection probe always
// targets a drive whose first batch is already scheduled earlier in the
// same stream, so in a sequential replay it can never race its own
// ingest.
func probeOp(rng *fleetsim.RNG, seen []uint32) Op {
	switch rng.Intn(4) {
	case 0:
		return Op{Kind: OpWatchlist, Path: "/v1/watchlist"}
	case 1:
		if len(seen) > 0 {
			id := seen[rng.Intn(len(seen))]
			return Op{Kind: OpDrive, Path: "/v1/drive/" + strconv.FormatUint(uint64(id), 10)}
		}
		return Op{Kind: OpModel, Path: "/v1/model"}
	case 2:
		return Op{Kind: OpModel, Path: "/v1/model"}
	default:
		return Op{Kind: OpMetrics, Path: "/metrics"}
	}
}

// buildFleet sizes a fleetsim configuration from the schedule config.
// The deployment window scales with the horizon so short load-test
// fleets still validate.
func buildFleet(cfg Config) (*trace.Fleet, error) {
	fc := fleetsim.FleetConfig{
		Seed:        cfg.Seed,
		HorizonDays: cfg.HorizonDays,
		Models: []fleetsim.ModelConfig{
			fleetsim.DefaultModelConfig(trace.MLCA, cfg.DrivesPerModel),
			fleetsim.DefaultModelConfig(trace.MLCB, cfg.DrivesPerModel),
			fleetsim.DefaultModelConfig(trace.MLCD, cfg.DrivesPerModel),
		},
		EarlyFrac:   0.55,
		EarlyWindow: cfg.HorizonDays / 3,
	}
	scaleHazards(fc.Models, cfg.HazardMult)
	fleet, _, err := fleetsim.Generate(fc)
	if err != nil {
		return nil, fmt.Errorf("loadgen: generating fleet: %w", err)
	}
	return fleet, nil
}

// scaleHazards applies Config.HazardMult to every model's failure
// hazards.
func scaleHazards(models []fleetsim.ModelConfig, mult float64) {
	if mult == 1 {
		return
	}
	for i := range models {
		models[i].BaseHazard *= mult
		models[i].InfantHazard *= mult
	}
}

// buildDriftFleet generates the write-shifted drift cohort: the same
// three models with WriteScale multiplied, on a seed derived from the
// schedule seed so cohort traces are uncorrelated with the base
// fleet's.
func buildDriftFleet(cfg Config) (*trace.Fleet, error) {
	models := []fleetsim.ModelConfig{
		fleetsim.DefaultModelConfig(trace.MLCA, cfg.DriftDrivesPerModel),
		fleetsim.DefaultModelConfig(trace.MLCB, cfg.DriftDrivesPerModel),
		fleetsim.DefaultModelConfig(trace.MLCD, cfg.DriftDrivesPerModel),
	}
	for i := range models {
		models[i].WriteScale *= cfg.DriftWriteMult
	}
	scaleHazards(models, cfg.HazardMult)
	fc := fleetsim.FleetConfig{
		Seed:        cfg.Seed ^ 0xd21f7,
		HorizonDays: cfg.HorizonDays,
		Models:      models,
		EarlyFrac:   0.55,
		EarlyWindow: cfg.HorizonDays / 3,
	}
	fleet, _, err := fleetsim.Generate(fc)
	if err != nil {
		return nil, fmt.Errorf("loadgen: generating drift cohort: %w", err)
	}
	return fleet, nil
}

// hash computes the SHA-256 of the canonical serialization: every op of
// every stream in order, covering kind, arrival offset, path, and body.
// Anything that changes what the daemon would see changes the hash.
func (s *Schedule) hash() string {
	h := sha256.New()
	var buf [8]byte
	for i := range s.Streams {
		fmt.Fprintf(h, "stream %d\n", i)
		for _, op := range s.Streams[i].Ops {
			h.Write([]byte{byte(op.Kind)})
			putInt64(&buf, int64(op.At))
			h.Write(buf[:])
			h.Write([]byte(op.Path))
			h.Write([]byte{0})
			h.Write(op.Body)
			h.Write([]byte{0})
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func putInt64(buf *[8]byte, v int64) {
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
}
