package loadgen

import "testing"

func TestParseMetrics(t *testing.T) {
	text := `# HELP x_total Things.
# TYPE x_total counter
x_total 41
x_by{handler="ingest",code="200"} 7
x_gauge 2.5
x_big 1e+06

`
	m, err := ParseMetrics(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 4 {
		t.Fatalf("parsed %d series, want 4: %v", len(m), m)
	}
	if m["x_total"] != 41 || m[`x_by{handler="ingest",code="200"}`] != 7 ||
		m["x_gauge"] != 2.5 || m["x_big"] != 1e6 {
		t.Fatalf("bad values: %v", m)
	}

	if _, err := ParseMetrics("not a metric line"); err == nil {
		t.Fatal("garbage line accepted")
	}
	if _, err := ParseMetrics("x_total forty"); err == nil {
		t.Fatal("non-numeric value accepted")
	}
}

func TestMetricDelta(t *testing.T) {
	base := map[string]float64{"a": 10}
	final := map[string]float64{"a": 15, "b": 3}
	if d := metricDelta(base, final, "a"); d != 5 {
		t.Fatalf("delta a = %v", d)
	}
	if d := metricDelta(base, final, "b"); d != 3 {
		t.Fatalf("delta b = %v (absent baseline must read as zero)", d)
	}
}
