package loadgen

import (
	"encoding/json"
	"testing"
	"time"

	"ssdfail/internal/serve"
)

func testConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.DrivesPerModel = 6
	cfg.HorizonDays = 120
	cfg.Days = 10
	cfg.Streams = 3
	cfg.BatchSize = 8
	return cfg
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(testConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(testConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash {
		t.Fatalf("same config, different hashes:\n%s\n%s", a.Hash, b.Hash)
	}
	if a.TotalRequests != b.TotalRequests || a.TotalRecords != b.TotalRecords {
		t.Fatalf("same config, different totals: %d/%d vs %d/%d",
			a.TotalRequests, a.TotalRecords, b.TotalRequests, b.TotalRecords)
	}
	// The hash covers bodies: spot-check full op equality too.
	for s := range a.Streams {
		if len(a.Streams[s].Ops) != len(b.Streams[s].Ops) {
			t.Fatalf("stream %d: %d vs %d ops", s, len(a.Streams[s].Ops), len(b.Streams[s].Ops))
		}
		for i := range a.Streams[s].Ops {
			oa, ob := &a.Streams[s].Ops[i], &b.Streams[s].Ops[i]
			if oa.Kind != ob.Kind || oa.At != ob.At || oa.Path != ob.Path || string(oa.Body) != string(ob.Body) {
				t.Fatalf("stream %d op %d differs", s, i)
			}
		}
	}

	c, err := Build(testConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	if c.Hash == a.Hash {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestBuildHashCoversArrivals(t *testing.T) {
	closed, err := Build(testConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	openCfg := testConfig(42)
	openCfg.Mode = ModeOpen
	open, err := Build(openCfg)
	if err != nil {
		t.Fatal(err)
	}
	if open.Hash == closed.Hash {
		t.Fatal("open-loop arrival offsets did not change the schedule hash")
	}
	// Open-loop arrivals must be strictly positive and non-decreasing
	// within each stream.
	for s := range open.Streams {
		var prev time.Duration
		for i, op := range open.Streams[s].Ops {
			if op.At <= prev {
				t.Fatalf("stream %d op %d: arrival %v not after %v", s, i, op.At, prev)
			}
			prev = op.At
		}
	}
}

// TestBuildPreservesPerDriveOrder decodes every scheduled batch and
// checks the property the daemon's store enforces: within a stream, a
// drive's records appear in strictly increasing day order, and no drive
// appears in more than one stream.
func TestBuildPreservesPerDriveOrder(t *testing.T) {
	sched, err := Build(testConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Drives) == 0 {
		t.Fatal("schedule replays no drives")
	}
	owner := make(map[uint32]int)
	lastDay := make(map[uint32]int32)
	records := make(map[uint32]int)
	reloads := 0
	for s := range sched.Streams {
		for _, op := range sched.Streams[s].Ops {
			switch op.Kind {
			case OpReload:
				reloads++
			case OpIngestBatch:
				var batch []serve.IngestRecord
				if err := json.Unmarshal(op.Body, &batch); err != nil {
					t.Fatalf("stream %d: bad batch body: %v", s, err)
				}
				if len(batch) != op.Records {
					t.Fatalf("op.Records = %d, body has %d", op.Records, len(batch))
				}
				for _, ir := range batch {
					if prev, ok := owner[ir.DriveID]; ok && prev != s {
						t.Fatalf("drive %d appears in streams %d and %d", ir.DriveID, prev, s)
					}
					owner[ir.DriveID] = s
					if last, ok := lastDay[ir.DriveID]; ok && ir.Day <= last {
						t.Fatalf("drive %d: day %d scheduled after day %d", ir.DriveID, ir.Day, last)
					}
					lastDay[ir.DriveID] = ir.Day
					records[ir.DriveID]++
				}
			}
		}
	}
	if reloads != sched.Reloads || reloads != 1 {
		t.Fatalf("reload ops = %d, sched.Reloads = %d, want 1", reloads, sched.Reloads)
	}
	// The ground-truth table must agree with what was actually laid out.
	for id, want := range sched.Drives {
		if records[id] != want.Records {
			t.Errorf("drive %d: %d records scheduled, expect table says %d", id, records[id], want.Records)
		}
		if lastDay[id] != want.LastDay {
			t.Errorf("drive %d: last scheduled day %d, expect table says %d", id, lastDay[id], want.LastDay)
		}
	}
	for id := range records {
		if _, ok := sched.Drives[id]; !ok {
			t.Errorf("drive %d scheduled but missing from expect table", id)
		}
	}
}

// TestBuildRemedyCadence checks the remediation-tick hook: ticks land
// only on stream 0, at the configured batch cadence, are counted in
// RemedyTicks, and change the schedule hash.
func TestBuildRemedyCadence(t *testing.T) {
	plain, err := Build(testConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(42)
	cfg.RemedyEvery = 2
	sched, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Hash == plain.Hash {
		t.Fatal("remedy ticks did not change the schedule hash")
	}
	ticks := 0
	for s := range sched.Streams {
		batches := 0
		for _, op := range sched.Streams[s].Ops {
			switch op.Kind {
			case OpIngestBatch:
				batches++
			case OpRemedyEvaluate:
				if s != 0 {
					t.Fatalf("remedy tick on stream %d, want only stream 0", s)
				}
				if op.Kind.Method() != "POST" || op.Path != "/v1/remedy/evaluate" {
					t.Fatalf("remedy op = %+v", op)
				}
				if batches == 0 || batches%cfg.RemedyEvery != 0 {
					t.Fatalf("remedy tick after %d batches, want a multiple of %d", batches, cfg.RemedyEvery)
				}
				ticks++
			}
		}
	}
	if ticks == 0 || ticks != sched.RemedyTicks {
		t.Fatalf("ticks laid out = %d, sched.RemedyTicks = %d, want equal and nonzero", ticks, sched.RemedyTicks)
	}
	// Everything else is unchanged: remedy ticks add requests but no
	// records.
	if sched.TotalRecords != plain.TotalRecords {
		t.Fatalf("records = %d, want %d", sched.TotalRecords, plain.TotalRecords)
	}
	if sched.TotalRequests != plain.TotalRequests+ticks {
		t.Fatalf("requests = %d, want %d + %d ticks", sched.TotalRequests, plain.TotalRequests, ticks)
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	cfg := testConfig(1)
	cfg.Mode = "sideways"
	if _, err := Build(cfg); err == nil {
		t.Fatal("unknown mode accepted")
	}
	cfg = testConfig(1)
	cfg.HorizonDays = 89
	if _, err := Build(cfg); err == nil {
		t.Fatal("sub-90-day horizon accepted")
	}
}

// TestBuildDriftCohort pins the drift-injection schedule: the cohort
// lives on a disjoint ID range, its records begin exactly at the
// DriftAfterFrac point of the replay window, the base fleet's replay is
// untouched, and drift-free configs keep their schedule hash.
func TestBuildDriftCohort(t *testing.T) {
	base := testConfig(42)
	plain, err := Build(base)
	if err != nil {
		t.Fatal(err)
	}

	drifted := base
	drifted.DriftWriteMult = 8
	drifted.DriftAfterFrac = 0.5
	drifted.DriftDrivesPerModel = 4
	sched, err := Build(drifted)
	if err != nil {
		t.Fatal(err)
	}

	driftStart := drifted.HorizonDays - drifted.Days + int32(0.5*float64(drifted.Days))
	var cohort, baseDrives int
	for id, exp := range sched.Drives {
		if id >= DriftIDOffset {
			cohort++
			if exp.LastDay < driftStart {
				t.Fatalf("cohort drive %d last day %d, before drift start %d", id, exp.LastDay, driftStart)
			}
			continue
		}
		baseDrives++
		// The base fleet's expected end state is identical with and
		// without the cohort.
		if want, ok := plain.Drives[id]; !ok || want != exp {
			t.Fatalf("base drive %d end state changed by drift cohort: %+v vs %+v", id, exp, want)
		}
	}
	if cohort == 0 {
		t.Fatal("no drift cohort drives scheduled")
	}
	if baseDrives != len(plain.Drives) {
		t.Fatalf("base fleet shrank: %d vs %d drives", baseDrives, len(plain.Drives))
	}

	// Cohort records never predate the drift start. Decode every JSON
	// ingest batch and check the cohort IDs' days.
	for s := range sched.Streams {
		for _, op := range sched.Streams[s].Ops {
			if op.Kind != OpIngestBatch {
				continue
			}
			var batch []serve.IngestRecord
			if err := json.Unmarshal(op.Body, &batch); err != nil {
				t.Fatal(err)
			}
			for _, r := range batch {
				if r.DriveID >= DriftIDOffset && r.Day < driftStart {
					t.Fatalf("cohort record for drive %d at day %d, before drift start %d", r.DriveID, r.Day, driftStart)
				}
			}
		}
	}

	// Drift changes the schedule (and so its hash); determinism holds
	// per config; drift-free builds are unaffected by the new fields.
	if sched.Hash == plain.Hash {
		t.Fatal("drift cohort left the schedule hash unchanged")
	}
	again, err := Build(drifted)
	if err != nil {
		t.Fatal(err)
	}
	if again.Hash != sched.Hash {
		t.Fatal("drifted schedule not deterministic")
	}

	bad := base
	bad.DriftWriteMult = -1
	if _, err := Build(bad); err == nil {
		t.Fatal("negative drift multiplier accepted")
	}
	bad = base
	bad.HazardMult = -2
	if _, err := Build(bad); err == nil {
		t.Fatal("negative hazard multiplier accepted")
	}
}

// TestBuildHazardMult: raising the hazard changes the replayed fleet
// (more failures, fewer surviving records) but stays deterministic,
// and the neutral values 0 and 1 build identical schedules.
func TestBuildHazardMult(t *testing.T) {
	base := testConfig(42)
	plain, err := Build(base)
	if err != nil {
		t.Fatal(err)
	}
	neutral := base
	neutral.HazardMult = 1
	same, err := Build(neutral)
	if err != nil {
		t.Fatal(err)
	}
	if same.Hash != plain.Hash {
		t.Fatal("HazardMult 1 changed the schedule")
	}
	boosted := base
	boosted.HazardMult = 50
	hot, err := Build(boosted)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Hash == plain.Hash {
		t.Fatal("HazardMult 50 left the fleet unchanged")
	}
	hot2, err := Build(boosted)
	if err != nil {
		t.Fatal(err)
	}
	if hot2.Hash != hot.Hash {
		t.Fatal("boosted schedule not deterministic")
	}
}
