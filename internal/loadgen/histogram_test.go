package loadgen

import (
	"math"
	"sort"
	"testing"

	"ssdfail/internal/fleetsim"
)

func TestBucketIndexBounds(t *testing.T) {
	// Every value must land in a bucket whose upper bound is >= the
	// value and whose relative overshoot is within the design error.
	rng := fleetsim.NewRNG(11)
	values := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1 << 40, math.MaxInt64}
	for i := 0; i < 2000; i++ {
		values = append(values, int64(rng.Uint64()>>1))
	}
	for _, v := range values {
		idx := bucketIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("value %d: bucket %d out of range", v, idx)
		}
		up := bucketUpper(idx)
		if up < v {
			t.Fatalf("value %d: bucket upper %d below value", v, up)
		}
		if v >= histSub {
			if rel := float64(up-v) / float64(v); rel > 1.0/histSub {
				t.Fatalf("value %d: upper %d overshoots by %.4f (> %.4f)", v, up, rel, 1.0/histSub)
			}
		} else if up != v {
			t.Fatalf("small value %d: bucket upper %d not exact", v, up)
		}
	}
	// Bucket uppers must be non-decreasing in index or quantile walks
	// would report out-of-order values.
	for i := 1; i < histBuckets; i++ {
		if bucketUpper(i) < bucketUpper(i-1) {
			t.Fatalf("bucketUpper not monotone at %d: %d < %d", i, bucketUpper(i), bucketUpper(i-1))
		}
	}
}

func TestHistogramQuantilesAgainstExactData(t *testing.T) {
	rng := fleetsim.NewRNG(7)
	var h Histogram
	data := make([]int64, 0, 10000)
	for i := 0; i < 10000; i++ {
		// Log-normal-ish latencies spanning ~4 decades.
		v := int64(rng.LogNormal(13, 1.5)) // median ~exp(13) ns ≈ 0.44ms
		data = append(data, v)
		h.Record(v)
	}
	sort.Slice(data, func(a, b int) bool { return data[a] < data[b] })
	if h.Count() != uint64(len(data)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(data))
	}
	if h.Min() != data[0] || h.Max() != data[len(data)-1] {
		t.Fatalf("min/max = %d/%d, want %d/%d", h.Min(), h.Max(), data[0], data[len(data)-1])
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		// Same rank convention as Quantile: the round(q·n)-th smallest.
		rank := int(q*float64(len(data)) + 0.5)
		exact := data[rank-1]
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("q%.3f = %d below exact %d", q, got, exact)
		}
		if float64(got) > float64(exact)*(1+1.0/histSub)+1 {
			t.Errorf("q%.3f = %d overshoots exact %d by more than %.1f%%", q, got, exact, 100.0/histSub)
		}
	}
	var sum float64
	for _, v := range data {
		sum += float64(v)
	}
	if mean := sum / float64(len(data)); math.Abs(h.Mean()-mean) > 1e-6*mean {
		t.Errorf("mean = %v, want %v", h.Mean(), mean)
	}
}

func TestHistogramMergeEqualsCombinedRecording(t *testing.T) {
	rng := fleetsim.NewRNG(3)
	var a, b, all Histogram
	for i := 0; i < 5000; i++ {
		v := int64(rng.Uint64() % (1 << 30))
		all.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merge count/min/max mismatch")
	}
	if a.counts != all.counts {
		t.Fatalf("merged bucket counts differ from combined recording")
	}
	for _, q := range []float64{0.5, 0.99, 0.999, 1} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("q%v: merged %d, combined %d", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

func TestHistogramEmptyAndEdge(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-5) // clamps
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative clamp: min=%d max=%d n=%d", h.Min(), h.Max(), h.Count())
	}
	h.Record(1000)
	// Quantile never exceeds the observed max even when the bucket's
	// nominal upper bound does.
	if q := h.Quantile(0.999); q > 1000 {
		t.Fatalf("q999 = %d exceeds max 1000", q)
	}
	s := h.Summary()
	if s.Count != 2 || s.Max != 1000 {
		t.Fatalf("summary = %+v", s)
	}
}
