package loadgen

// Wire-equivalence suite: the same schedule driven over the JSON wire
// and the binary wire must leave the daemon in byte-identical state.
// "Identical" is checked at three layers — the store's per-drive end
// state, the raw WAL segment bytes (the binary path appends client
// frames verbatim; the JSON path re-encodes, and the two must agree to
// the byte), and the rendered watchlist — at two GOMAXPROCS settings,
// since the scoring path parallelizes internally.

import (
	"bytes"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"ssdfail/internal/core"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/ml/forest"
	"ssdfail/internal/serve"
	"ssdfail/internal/wal"
)

// fixModelPath is a small trained predictor on disk, built once for the
// package: the equivalence runs boot real serve.Servers against it.
var fixModelPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "ssdloadgen-test")
	if err != nil {
		log.Fatal(err)
	}
	cfg := fleetsim.DefaultConfig(7, 60)
	cfg.HorizonDays = 400
	cfg.EarlyWindow = 150
	fleet, _, err := fleetsim.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fcfg := forest.DefaultConfig()
	fcfg.Trees = 10
	fcfg.Seed = 7
	pred, err := core.NewStudy(fleet).TrainPredictor(core.PredictorOptions{
		Lookahead: 3, Factory: forest.NewFactory(fcfg), Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fixModelPath = filepath.Join(dir, "model.bin")
	if err := pred.Save(fixModelPath); err != nil {
		log.Fatal(err)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// wireEndState is everything the equivalence check compares after one
// full replay of a schedule into a fresh WAL-backed daemon.
type wireEndState struct {
	drives    []serve.DriveSnapshot
	wal       []byte
	watchlist []byte
}

// replaySchedule drives every op of every stream, in order, directly
// through the server's handler — sequential by construction, so the WAL
// append order is the schedule order on both wires.
func replaySchedule(t *testing.T, wire string) wireEndState {
	t.Helper()
	cfg := testConfig(77)
	cfg.Wire = wire
	sched, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	srv, err := serve.New(serve.Config{
		ModelPath:       fixModelPath,
		WALDir:          dir,
		SnapshotEvery:   -1,            // keep every frame: the WAL bytes are the oracle
		WALSyncEvery:    wal.SyncNever, // content, not durability, is under test
		WALSyncInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	for s := range sched.Streams {
		for i := range sched.Streams[s].Ops {
			op := &sched.Streams[s].Ops[i]
			var rd *bytes.Reader
			req := httptest.NewRequest(op.Kind.Method(), op.Path, nil)
			if op.Body != nil {
				rd = bytes.NewReader(op.Body)
				req = httptest.NewRequest(op.Kind.Method(), op.Path, rd)
				req.Header.Set("Content-Type", op.Kind.ContentType())
			}
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, req)
			if op.Kind.ingest() && rr.Code != http.StatusAccepted {
				t.Fatalf("%s wire: stream %d op %d: status %d: %s", wire, s, i, rr.Code, rr.Body.String())
			}
		}
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/watchlist?threshold=0&k=100000", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("%s wire: watchlist status %d", wire, rr.Code)
	}
	drives := srv.Store().Drives()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(segs)
	var walBytes []byte
	for _, seg := range segs {
		b, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		walBytes = append(walBytes, b...)
	}
	if len(walBytes) == 0 {
		t.Fatalf("%s wire: no WAL bytes written", wire)
	}
	return wireEndState{drives: drives, wal: walBytes, watchlist: rr.Body.Bytes()}
}

func TestWireEquivalence(t *testing.T) {
	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)

			js := replaySchedule(t, WireJSON)
			bin := replaySchedule(t, WireBinary)

			if len(js.drives) == 0 {
				t.Fatal("JSON replay tracked no drives")
			}
			if !reflect.DeepEqual(js.drives, bin.drives) {
				t.Error("per-drive end state differs between JSON and binary wires")
			}
			if !bytes.Equal(js.wal, bin.wal) {
				t.Errorf("WAL contents differ: %d bytes via JSON, %d via binary",
					len(js.wal), len(bin.wal))
			}
			if !bytes.Equal(js.watchlist, bin.watchlist) {
				t.Errorf("watchlist output differs:\njson:   %s\nbinary: %s",
					js.watchlist, bin.watchlist)
			}
		})
	}
}
