// Package loadgen is the deterministic traffic harness for ssdserved:
// it replays fleetsim-generated fleets against a live daemon over HTTP
// in closed-loop (fixed concurrency) or open-loop (fixed arrival rate)
// mode, records per-endpoint latency histograms and error accounting,
// and — optionally — runs an end-to-end conformance pass that turns "it
// survived the load" into checked invariants: every accepted ingest is
// scoreable with the expected feature window, /metrics counters exactly
// account for the driven load (accepted + shed + rejected), and a
// mid-run hot model swap is only ever observed monotonically.
//
// Schedules are built entirely up front from a seed; two builds with the
// same configuration are byte-identical (verified by a SHA-256 over the
// whole schedule), so any perf number produced through this harness is
// reproducible: same seed, same requests, same bytes, same order.
package loadgen

import (
	"fmt"
	"math/bits"
	"time"
)

// Histogram is a fixed-bucket HDR-style latency histogram over
// non-negative int64 values (nanoseconds). Buckets are 32 linear
// sub-buckets per power of two, so any recorded value is resolved to
// better than 1/32 ≈ 3.2% relative error while the whole range
// 0ns..~290s fits in a fixed array with no allocation per record.
//
// It is not safe for concurrent use: each load stream records into its
// own histogram and the runner merges them at the end.
type Histogram struct {
	counts [histBuckets]uint64
	count  uint64
	sum    int64
	min    int64
	max    int64
}

const (
	histSubBits = 5 // 32 linear sub-buckets per octave
	histSub     = 1 << histSubBits
	// 58 octaves above the linear range cover values up to 2^63-1.
	histBuckets = (64 - histSubBits) * histSub
)

// bucketIndex maps a value to its bucket. Values below histSub resolve
// exactly; above, the top histSubBits+1 bits select (octave, sub).
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSub {
		return int(u)
	}
	shift := uint(bits.Len64(u)) - (histSubBits + 1)
	sub := u >> shift // in [histSub, 2*histSub)
	return int(shift)*histSub + int(sub)
}

// bucketUpper returns the largest value that maps to bucket i — the
// value reported for quantiles falling in that bucket, so quantiles are
// conservative (never under-reported).
func bucketUpper(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	shift := uint(i/histSub - 1)
	sub := uint64(i%histSub + histSub)
	return int64((sub+1)<<shift - 1)
}

// Record adds one observation (negative values clamp to zero).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += v
}

// RecordDuration adds one duration observation in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(d.Nanoseconds()) }

// Merge adds every observation of o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the exact mean of observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min and Max return the exact extremes (0 when empty).
func (h *Histogram) Min() int64 { return h.min }
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns the value at quantile q in [0, 1]: the upper bound of
// the bucket containing the ceil(q·count)-th observation, except q of
// exactly 1, which returns the exact maximum. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	if q < 0 {
		q = 0
	}
	target := uint64(q*float64(h.count) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max // bucket bound can exceed the true extreme
			}
			return u
		}
	}
	return h.max
}

// Quantiles is the serialized latency summary of one endpoint, in
// nanoseconds. P-values are bucket upper bounds (≤3.2% high); Mean, Min,
// and Max are exact.
type Quantiles struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_ns"`
	Min   int64   `json:"min_ns"`
	P50   int64   `json:"p50_ns"`
	P90   int64   `json:"p90_ns"`
	P99   int64   `json:"p99_ns"`
	P999  int64   `json:"p999_ns"`
	Max   int64   `json:"max_ns"`
}

// Summary extracts the report quantiles.
func (h *Histogram) Summary() Quantiles {
	return Quantiles{
		Count: h.count,
		Mean:  h.Mean(),
		Min:   h.min,
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.max,
	}
}

func (q Quantiles) String() string {
	ms := func(ns int64) string { return fmt.Sprintf("%.3fms", float64(ns)/1e6) }
	return fmt.Sprintf("n=%d p50=%s p90=%s p99=%s p999=%s max=%s",
		q.Count, ms(q.P50), ms(q.P90), ms(q.P99), ms(q.P999), ms(q.Max))
}
