package eval

import (
	"math"
	"testing"

	"ssdfail/internal/fleetsim"
)

func TestBrierScore(t *testing.T) {
	// Perfect predictions score 0.
	if got := BrierScore([]float64{1, 0, 1}, []int8{1, 0, 1}); got != 0 {
		t.Errorf("perfect Brier = %v", got)
	}
	// Constant 0.5 scores 0.25.
	if got := BrierScore([]float64{0.5, 0.5}, []int8{1, 0}); got != 0.25 {
		t.Errorf("coin-flip Brier = %v", got)
	}
	// Confidently wrong scores 1.
	if got := BrierScore([]float64{0, 1}, []int8{1, 0}); got != 1 {
		t.Errorf("inverted Brier = %v", got)
	}
	if !math.IsNaN(BrierScore(nil, nil)) {
		t.Error("empty Brier should be NaN")
	}
}

func TestReliabilityCurvePerfectCalibration(t *testing.T) {
	// Labels drawn with probability equal to the score: the observed
	// rate per bin must track the predicted rate.
	rng := fleetsim.NewRNG(3)
	n := 200000
	scores := make([]float64, n)
	y := make([]int8, n)
	for i := range scores {
		scores[i] = rng.Float64()
		if rng.Bernoulli(scores[i]) {
			y[i] = 1
		}
	}
	pred, obs := ReliabilityCurve(scores, y, 10)
	for b := range pred {
		if math.IsNaN(pred[b]) {
			continue
		}
		if math.Abs(pred[b]-obs[b]) > 0.02 {
			t.Errorf("bin %d: predicted %.3f observed %.3f", b, pred[b], obs[b])
		}
	}
	if ece := ExpectedCalibrationError(scores, y, 10); ece > 0.01 {
		t.Errorf("ECE of calibrated scores = %v", ece)
	}
}

func TestReliabilityCurveMiscalibrated(t *testing.T) {
	// Scores say 0.9 but the true rate is 0.5.
	rng := fleetsim.NewRNG(4)
	n := 20000
	scores := make([]float64, n)
	y := make([]int8, n)
	for i := range scores {
		scores[i] = 0.9
		if rng.Bernoulli(0.5) {
			y[i] = 1
		}
	}
	if ece := ExpectedCalibrationError(scores, y, 10); ece < 0.3 {
		t.Errorf("ECE of miscalibrated scores = %v, want ~0.4", ece)
	}
}

func TestReliabilityCurveEmptyBins(t *testing.T) {
	pred, obs := ReliabilityCurve([]float64{0.05}, []int8{0}, 10)
	if math.IsNaN(pred[0]) || pred[0] != 0.05 {
		t.Errorf("bin 0 predicted = %v", pred[0])
	}
	for b := 1; b < 10; b++ {
		if !math.IsNaN(pred[b]) || !math.IsNaN(obs[b]) {
			t.Fatalf("empty bin %d not NaN", b)
		}
	}
	// Out-of-range scores clamp into edge bins without panicking.
	pred, _ = ReliabilityCurve([]float64{-0.5, 1.5}, []int8{0, 1}, 4)
	if math.IsNaN(pred[0]) || math.IsNaN(pred[3]) {
		t.Error("clamped scores should land in edge bins")
	}
	if !math.IsNaN(ExpectedCalibrationError(nil, nil, 5)) {
		t.Error("empty ECE should be NaN")
	}
}
