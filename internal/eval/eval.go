// Package eval implements the paper's evaluation methodology (§5.1):
// ROC curves and AUC (robust to the ~1:10,000 class imbalance of the
// trace), drive-partitioned k-fold cross-validation with majority-class
// downsampling, train-on-A/test-on-B transfer evaluation (Table 7), and
// hyperparameter grid search.
package eval

import (
	"errors"
	"math"
	"sort"

	"ssdfail/internal/dataset"
	"ssdfail/internal/failure"
	"ssdfail/internal/ml"
	"ssdfail/internal/parallel"
	"ssdfail/internal/trace"
)

// AUC returns the area under the ROC curve computed by the rank
// (Mann-Whitney U) method with midrank handling of tied scores. It
// returns 0.5 when either class is absent.
func AUC(scores []float64, y []int8) float64 {
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	var rankSum, nPos, nNeg float64
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			if y[idx[k]] == 1 {
				rankSum += mid
				nPos++
			} else {
				nNeg++
			}
		}
		i = j + 1
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	return (rankSum - nPos*(nPos+1)/2) / (nPos * nNeg)
}

// ROC is a receiver operating characteristic curve: parallel slices of
// false positive rate, true positive rate, and the score threshold at
// each point, ordered from the strictest threshold to the loosest.
type ROC struct {
	FPR, TPR, Threshold []float64
}

// ComputeROC builds the full ROC curve from scores and labels.
func ComputeROC(scores []float64, y []int8) *ROC {
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	var nPos, nNeg float64
	for _, v := range y {
		if v == 1 {
			nPos++
		} else {
			nNeg++
		}
	}
	roc := &ROC{FPR: []float64{0}, TPR: []float64{0}, Threshold: []float64{math.Inf(1)}}
	var tp, fp float64
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		for k := i; k <= j; k++ {
			if y[idx[k]] == 1 {
				tp++
			} else {
				fp++
			}
		}
		var fpr, tpr float64
		if nNeg > 0 {
			fpr = fp / nNeg
		}
		if nPos > 0 {
			tpr = tp / nPos
		}
		roc.FPR = append(roc.FPR, fpr)
		roc.TPR = append(roc.TPR, tpr)
		roc.Threshold = append(roc.Threshold, scores[idx[i]])
		i = j + 1
	}
	return roc
}

// AUC integrates the curve by the trapezoid rule; it matches the rank
// AUC of the same scores.
func (r *ROC) AUC() float64 {
	var area float64
	for i := 1; i < len(r.FPR); i++ {
		area += (r.FPR[i] - r.FPR[i-1]) * (r.TPR[i] + r.TPR[i-1]) / 2
	}
	return area
}

// TPRAtFPR interpolates the curve's TPR at the given false positive rate.
func (r *ROC) TPRAtFPR(fpr float64) float64 {
	for i := 1; i < len(r.FPR); i++ {
		if r.FPR[i] >= fpr {
			if r.FPR[i] == r.FPR[i-1] {
				return r.TPR[i]
			}
			frac := (fpr - r.FPR[i-1]) / (r.FPR[i] - r.FPR[i-1])
			return r.TPR[i-1] + frac*(r.TPR[i]-r.TPR[i-1])
		}
	}
	return 1
}

// ConfusionAt returns (TPR, FPR) for binary predictions at the given
// score threshold: predicted positive when score >= threshold.
func ConfusionAt(scores []float64, y []int8, threshold float64) (tpr, fpr float64) {
	c := ConfusionSweep(scores, y, []float64{threshold})[0]
	return c.TPR, c.FPR
}

// Confusion is the binary confusion summary at one score threshold.
type Confusion struct {
	Threshold float64
	TPR, FPR  float64
}

// ConfusionSweep evaluates the confusion at every threshold in one
// sorted pass: the class totals are counted once and the score array is
// walked once, instead of the O(len(thresholds) * n) rescan that calling
// ConfusionAt in a loop used to cost. Results are returned in the
// caller's threshold order.
func ConfusionSweep(scores []float64, y []int8, thresholds []float64) []Confusion {
	out := make([]Confusion, len(thresholds))
	if len(thresholds) == 0 {
		return out
	}
	var nPos, nNeg float64
	for _, v := range y {
		if v == 1 {
			nPos++
		} else {
			nNeg++
		}
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	// Visit thresholds from strictest (highest) to loosest so the score
	// walk never rewinds.
	order := make([]int, len(thresholds))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return thresholds[order[a]] > thresholds[order[b]] })
	var tp, fp float64
	j := 0
	for _, ti := range order {
		thr := thresholds[ti]
		for j < len(idx) && scores[idx[j]] >= thr {
			if y[idx[j]] == 1 {
				tp++
			} else {
				fp++
			}
			j++
		}
		c := Confusion{Threshold: thr}
		if nPos > 0 {
			c.TPR = tp / nPos
		}
		if nNeg > 0 {
			c.FPR = fp / nNeg
		}
		out[ti] = c
	}
	return out
}

// Result summarizes one cross-validated evaluation.
type Result struct {
	AUCs []float64 // one per fold
	Mean float64
	Std  float64 // standard deviation across folds, as reported in Table 6
}

// Summarize folds per-fold AUCs into a Result (mean ± sample std), the
// aggregation used by every CV table. Exported for the expgrid engine.
func Summarize(aucs []float64) Result { return summarize(aucs) }

func summarize(aucs []float64) Result {
	r := Result{AUCs: aucs}
	if len(aucs) == 0 {
		return r
	}
	var s float64
	for _, a := range aucs {
		s += a
	}
	r.Mean = s / float64(len(aucs))
	var v float64
	for _, a := range aucs {
		d := a - r.Mean
		v += d * d
	}
	if len(aucs) > 1 {
		r.Std = math.Sqrt(v / float64(len(aucs)-1))
	}
	return r
}

// CVOptions configures cross-validated failure prediction.
type CVOptions struct {
	Folds     int // number of drive-partitioned folds (the paper uses 5)
	Lookahead int // prediction window N in days
	Seed      uint64
	// DownsampleRatio is the negatives-per-positive ratio for training
	// (the paper uses 1:1). <= 0 disables downsampling.
	DownsampleRatio float64
	// TestNegSampleProb subsamples negatives in the *test* fold (AUC is
	// a rank statistic, so uniform negative subsampling is unbiased).
	// <= 0 or >= 1 keeps all test rows.
	TestNegSampleProb float64
	// AgeMin/AgeMax restrict both training and test rows to an age band
	// (inclusive); AgeMax < 0 means unbounded. Implements §5.3.
	AgeMin, AgeMax int32
	// WindowDays > 0 appends trailing-window features to every row
	// (dataset.Options.WindowDays).
	WindowDays int32
	Workers    int
}

// normalize fills defaults.
func (o *CVOptions) normalize() {
	if o.Folds <= 0 {
		o.Folds = 5
	}
	if o.Lookahead <= 0 {
		o.Lookahead = 1
	}
	if o.DownsampleRatio == 0 {
		o.DownsampleRatio = 1
	}
	if o.AgeMax == 0 {
		o.AgeMax = -1
	}
}

// CrossValidate runs drive-partitioned k-fold cross-validation of the
// classifier on the fleet and returns per-fold AUCs. Folds are evaluated
// in parallel; all sampling is deterministic given the seed.
func CrossValidate(f *trace.Fleet, an *failure.Analysis, opts CVOptions, factory ml.Factory) (Result, error) {
	opts.normalize()
	folds := dataset.Folds(len(f.Drives), opts.Folds, opts.Seed)
	aucs := make([]float64, opts.Folds)
	errs := make([]error, opts.Folds)
	parallel.For(opts.Workers, opts.Folds, func(k int) {
		train := dataset.Extract(f, an, dataset.Options{
			Lookahead: opts.Lookahead,
			Seed:      opts.Seed + uint64(k),
			AgeMin:    opts.AgeMin, AgeMax: opts.AgeMax,
			WindowDays:   opts.WindowDays,
			IncludeDrive: func(di int) bool { return folds[di] != k },
		})
		if opts.DownsampleRatio > 0 {
			train = dataset.Downsample(train, opts.DownsampleRatio, opts.Seed+uint64(k))
		}
		test := dataset.Extract(f, an, dataset.Options{
			Lookahead:          opts.Lookahead,
			Seed:               opts.Seed + 1000 + uint64(k),
			NegativeSampleProb: opts.TestNegSampleProb,
			AgeMin:             opts.AgeMin, AgeMax: opts.AgeMax,
			WindowDays:   opts.WindowDays,
			IncludeDrive: func(di int) bool { return folds[di] == k },
		})
		if train.Positives() == 0 || test.Positives() == 0 {
			errs[k] = errors.New("eval: a fold has no positive examples; use more drives or fewer folds")
			return
		}
		clf := factory()
		if err := clf.Fit(train); err != nil {
			errs[k] = err
			return
		}
		scores := ml.ScoreBatch(clf, test)
		aucs[k] = AUC(scores, test.Y)
	})
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	return summarize(aucs), nil
}

// TrainTest trains on one fleet and evaluates on another (Table 7's
// cross-model transfer). It returns the test AUC.
func TrainTest(trainFleet, testFleet *trace.Fleet, trainAn, testAn *failure.Analysis,
	opts CVOptions, factory ml.Factory) (float64, error) {
	opts.normalize()
	train := dataset.Extract(trainFleet, trainAn, dataset.Options{
		Lookahead: opts.Lookahead,
		Seed:      opts.Seed,
		AgeMin:    opts.AgeMin, AgeMax: opts.AgeMax,
		WindowDays: opts.WindowDays,
	})
	if opts.DownsampleRatio > 0 {
		train = dataset.Downsample(train, opts.DownsampleRatio, opts.Seed)
	}
	test := dataset.Extract(testFleet, testAn, dataset.Options{
		Lookahead:          opts.Lookahead,
		Seed:               opts.Seed + 1000,
		NegativeSampleProb: opts.TestNegSampleProb,
		AgeMin:             opts.AgeMin, AgeMax: opts.AgeMax,
		WindowDays: opts.WindowDays,
	})
	if train.Positives() == 0 || test.Positives() == 0 {
		return 0, errors.New("eval: train or test has no positives")
	}
	clf := factory()
	if err := clf.Fit(train); err != nil {
		return 0, err
	}
	return AUC(ml.ScoreBatch(clf, test), test.Y), nil
}

// GridPoint is one hyperparameter configuration in a grid search.
type GridPoint struct {
	Label   string
	Factory ml.Factory
}

// GridSearch cross-validates every grid point and returns the index of
// the configuration with the best mean AUC, along with all results.
func GridSearch(f *trace.Fleet, an *failure.Analysis, opts CVOptions, grid []GridPoint) (best int, results []Result, err error) {
	results = make([]Result, len(grid))
	best = -1
	for i, g := range grid {
		r, err := CrossValidate(f, an, opts, g.Factory)
		if err != nil {
			return -1, nil, err
		}
		results[i] = r
		if best < 0 || r.Mean > results[best].Mean {
			best = i
		}
	}
	return best, results, nil
}

// TPRByAgeMonth computes the cross-validated true positive rate as a
// function of drive age in months at a fixed score threshold (Figure 14).
// scores, y, ages must be parallel slices; months with no positives are
// NaN.
func TPRByAgeMonth(scores []float64, y []int8, ages []int32, threshold float64, maxMonths int) []float64 {
	return TPRByAgeMonths(scores, y, ages, []float64{threshold}, maxMonths)[0]
}

// TPRByAgeMonths computes one TPR-by-age curve per threshold in a single
// pass over the scores: the per-month positive totals are counted once
// for all thresholds, instead of once per threshold as the old
// per-threshold loop did (Figure 14 sweeps three).
func TPRByAgeMonths(scores []float64, y []int8, ages []int32, thresholds []float64, maxMonths int) [][]float64 {
	tp := make([][]float64, len(thresholds))
	for ti := range tp {
		tp[ti] = make([]float64, maxMonths)
	}
	pos := make([]float64, maxMonths)
	for i, s := range scores {
		if y[i] != 1 {
			continue
		}
		m := int(ages[i] / 30)
		if m >= maxMonths {
			m = maxMonths - 1
		}
		pos[m]++
		for ti, thr := range thresholds {
			if s >= thr {
				tp[ti][m]++
			}
		}
	}
	out := make([][]float64, len(thresholds))
	for ti := range out {
		out[ti] = make([]float64, maxMonths)
		for m := range out[ti] {
			if pos[m] > 0 {
				out[ti][m] = tp[ti][m] / pos[m]
			} else {
				out[ti][m] = math.NaN()
			}
		}
	}
	return out
}
