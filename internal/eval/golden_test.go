package eval

import (
	"math"
	"testing"
)

// Golden-value tests: every case below is computed by hand from the
// definitions in §5.1, so a change in numerical behaviour (tie
// handling, one-class conventions, threshold orientation) fails with
// the exact expected number in the message.

const goldenTol = 1e-12

func approx(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= goldenTol
}

func TestAUCGoldenValues(t *testing.T) {
	cases := []struct {
		name   string
		scores []float64
		y      []int8
		want   float64
	}{
		// Perfect ranking: both positives above both negatives.
		{"perfect", []float64{0.9, 0.8, 0.2, 0.1}, []int8{1, 1, 0, 0}, 1.0},
		// Inverted ranking: positives below every negative.
		{"inverted", []float64{0.9, 0.8, 0.2, 0.1}, []int8{0, 0, 1, 1}, 0.0},
		// One positive tied with one of three negatives: of the 3
		// pos/neg pairs, 2 wins + 1 tie (half credit) = 2.5/3.
		{"tie-pos-neg", []float64{0.5, 0.5, 0.3, 0.1}, []int8{1, 0, 0, 0}, 2.5 / 3},
		// All scores identical: every pair ties, AUC is chance.
		{"all-tied", []float64{0.4, 0.4, 0.4, 0.4}, []int8{1, 0, 1, 0}, 0.5},
		// Single class present: convention is 0.5.
		{"one-class-pos", []float64{0.9, 0.1}, []int8{1, 1}, 0.5},
		{"one-class-neg", []float64{0.9, 0.1}, []int8{0, 0}, 0.5},
		{"empty", nil, nil, 0.5},
		// Hand-worked mixed case: scores {.1-,.2+,.3-,.4+,.5-,.6+}
		// (sign = label). Pairs: 3x3 = 9; wins for positives:
		// .2>{.1}=1, .4>{.1,.3}=2, .6>{.1,.3,.5}=3 -> 6/9.
		{"mixed", []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}, []int8{0, 1, 0, 1, 0, 1}, 6.0 / 9},
	}
	for _, c := range cases {
		if got := AUC(c.scores, c.y); !approx(got, c.want) {
			t.Errorf("%s: AUC = %v, want %v", c.name, got, c.want)
		}
	}
}

// bruteForceAUC computes AUC as the normalized Mann-Whitney U statistic
// by explicit pair counting: wins + ties/2 over all (pos, neg) pairs.
func bruteForceAUC(scores []float64, y []int8) float64 {
	var wins, pairs float64
	for i := range scores {
		if y[i] != 1 {
			continue
		}
		for j := range scores {
			if y[j] == 1 {
				continue
			}
			pairs++
			switch {
			case scores[i] > scores[j]:
				wins++
			case scores[i] == scores[j]:
				wins += 0.5
			}
		}
	}
	if pairs == 0 {
		return 0.5
	}
	return wins / pairs
}

// TestAUCMatchesMannWhitneyU cross-checks the rank-based AUC against
// O(n^2) pair counting on randomized score sets, including heavy ties.
func TestAUCMatchesMannWhitneyU(t *testing.T) {
	state := uint64(12345)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	for trial := 0; trial < 50; trial++ {
		n := 20 + trial*7
		scores := make([]float64, n)
		y := make([]int8, n)
		for i := range scores {
			// Quantize to one decimal so ties are common.
			scores[i] = math.Round(next()*10) / 10
			if next() < 0.3 {
				y[i] = 1
			}
		}
		got, want := AUC(scores, y), bruteForceAUC(scores, y)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d (n=%d): rank AUC %v != pair-count AUC %v", trial, n, got, want)
		}
	}
}

func TestConfusionSweepGoldenValues(t *testing.T) {
	// 3 positives at {0.9, 0.6, 0.2}, 3 negatives at {0.8, 0.4, 0.1}.
	scores := []float64{0.9, 0.8, 0.6, 0.4, 0.2, 0.1}
	y := []int8{1, 0, 1, 0, 1, 0}
	// Thresholds deliberately out of order: results must come back in
	// caller order regardless of the internal sweep direction.
	thresholds := []float64{0.5, 0.85, 0.15}
	got := ConfusionSweep(scores, y, thresholds)
	want := []Confusion{
		{Threshold: 0.5, TPR: 2.0 / 3, FPR: 1.0 / 3}, // >=0.5: pos {.9,.6}, neg {.8}
		{Threshold: 0.85, TPR: 1.0 / 3, FPR: 0},      // >=0.85: pos {.9}
		{Threshold: 0.15, TPR: 1.0, FPR: 2.0 / 3},    // >=0.15: all pos, neg {.8,.4}
	}
	for i, w := range want {
		if got[i].Threshold != w.Threshold || !approx(got[i].TPR, w.TPR) || !approx(got[i].FPR, w.FPR) {
			t.Errorf("sweep[%d] = %+v, want %+v", i, got[i], w)
		}
	}
	// The sweep must agree with the single-threshold path exactly.
	for _, thr := range thresholds {
		tpr, fpr := ConfusionAt(scores, y, thr)
		sw := ConfusionSweep(scores, y, []float64{thr})[0]
		if !approx(tpr, sw.TPR) || !approx(fpr, sw.FPR) {
			t.Errorf("thr %v: ConfusionAt (%v, %v) != sweep (%v, %v)", thr, tpr, fpr, sw.TPR, sw.FPR)
		}
	}
}

func TestConfusionSweepOneClass(t *testing.T) {
	// No positives: TPR must be 0 (not NaN) at every threshold.
	got := ConfusionSweep([]float64{0.9, 0.1}, []int8{0, 0}, []float64{0.5})
	if got[0].TPR != 0 || !approx(got[0].FPR, 0.5) {
		t.Errorf("neg-only sweep = %+v, want TPR 0, FPR 0.5", got[0])
	}
	// No negatives: FPR must be 0.
	got = ConfusionSweep([]float64{0.9, 0.1}, []int8{1, 1}, []float64{0.5})
	if got[0].FPR != 0 || !approx(got[0].TPR, 0.5) {
		t.Errorf("pos-only sweep = %+v, want FPR 0, TPR 0.5", got[0])
	}
}

func TestTPRByAgeMonthsGolden(t *testing.T) {
	// Month 0: positives scored {0.9, 0.2}; month 1: positive {0.8};
	// month 2: no positives (NaN). Negatives must not affect TPR.
	scores := []float64{0.9, 0.2, 0.8, 0.95, 0.99}
	y := []int8{1, 1, 1, 0, 0}
	ages := []int32{5, 20, 40, 10, 70}
	got := TPRByAgeMonths(scores, y, ages, []float64{0.5, 0.85}, 3)
	want := [][]float64{
		{0.5, 1, math.NaN()}, // thr 0.5: month0 1/2, month1 1/1
		{0.5, 0, math.NaN()}, // thr 0.85: month0 1/2 (0.9), month1 0/1
	}
	for ti := range want {
		for m := range want[ti] {
			if !approx(got[ti][m], want[ti][m]) {
				t.Errorf("thr[%d] month %d = %v, want %v", ti, m, got[ti][m], want[ti][m])
			}
		}
	}
	// Single-threshold wrapper must agree with the batched sweep.
	single := TPRByAgeMonth(scores, y, ages, 0.5, 3)
	for m := range single {
		if !approx(single[m], got[0][m]) {
			t.Errorf("TPRByAgeMonth month %d = %v, sweep gives %v", m, single[m], got[0][m])
		}
	}
}

func TestBrierScoreGolden(t *testing.T) {
	cases := []struct {
		name   string
		scores []float64
		y      []int8
		want   float64
	}{
		{"perfect", []float64{1, 0}, []int8{1, 0}, 0},
		{"constant-half", []float64{0.5, 0.5, 0.5, 0.5}, []int8{1, 0, 1, 0}, 0.25},
		// ((0.8-1)^2 + (0.3-0)^2) / 2 = (0.04 + 0.09) / 2.
		{"mixed", []float64{0.8, 0.3}, []int8{1, 0}, 0.065},
		{"empty", nil, nil, math.NaN()},
	}
	for _, c := range cases {
		if got := BrierScore(c.scores, c.y); !approx(got, c.want) {
			t.Errorf("%s: Brier = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestReliabilityCurveGolden(t *testing.T) {
	// Two bins: [0, 0.5) holds {0.1, 0.3} with one positive; [0.5, 1]
	// holds {0.7, 0.9, 1.0} with two positives.
	scores := []float64{0.1, 0.3, 0.7, 0.9, 1.0}
	y := []int8{0, 1, 1, 0, 1}
	pred, obs := ReliabilityCurve(scores, y, 2)
	wantPred := []float64{0.2, (0.7 + 0.9 + 1.0) / 3}
	wantObs := []float64{0.5, 2.0 / 3}
	for b := range wantPred {
		if !approx(pred[b], wantPred[b]) || !approx(obs[b], wantObs[b]) {
			t.Errorf("bin %d: (%v, %v), want (%v, %v)", b, pred[b], obs[b], wantPred[b], wantObs[b])
		}
	}
	// An empty bin reports NaN for both coordinates.
	pred, obs = ReliabilityCurve([]float64{0.9}, []int8{1}, 2)
	if !math.IsNaN(pred[0]) || !math.IsNaN(obs[0]) {
		t.Errorf("empty bin = (%v, %v), want NaN", pred[0], obs[0])
	}
}

func TestExpectedCalibrationErrorGolden(t *testing.T) {
	// Same two-bin setup as above: gaps |0.2-0.5| = 0.3 (2 rows) and
	// |0.8666…-0.6666…| = 0.2 (3 rows) -> weighted (2*0.3 + 3*0.2)/5.
	scores := []float64{0.1, 0.3, 0.7, 0.9, 1.0}
	y := []int8{0, 1, 1, 0, 1}
	want := (2*0.3 + 3*0.2) / 5
	if got := ExpectedCalibrationError(scores, y, 2); !approx(got, want) {
		t.Errorf("ECE = %v, want %v", got, want)
	}
	// Perfectly calibrated constant predictor: zero gap.
	if got := ExpectedCalibrationError([]float64{0.5, 0.5}, []int8{1, 0}, 1); !approx(got, 0) {
		t.Errorf("calibrated ECE = %v, want 0", got)
	}
}
