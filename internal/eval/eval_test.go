package eval

import (
	"math"
	"testing"
	"testing/quick"

	"ssdfail/internal/failure"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/ml/forest"
	"ssdfail/internal/ml/mltest"
	"ssdfail/internal/ml/tree"
)

func TestAUCKnownValues(t *testing.T) {
	if got := AUC([]float64{0.1, 0.4, 0.35, 0.8}, []int8{0, 0, 1, 1}); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("AUC = %v, want 0.75", got)
	}
	if got := AUC([]float64{0.9, 0.8, 0.1}, []int8{1, 1, 0}); got != 1 {
		t.Errorf("perfect AUC = %v", got)
	}
	if got := AUC([]float64{0.5, 0.5}, []int8{0, 1}); got != 0.5 {
		t.Errorf("tied AUC = %v", got)
	}
	if got := AUC([]float64{0.5}, []int8{1}); got != 0.5 {
		t.Errorf("single-class AUC = %v", got)
	}
}

// Property: rank AUC agrees with the independent reference in mltest.
func TestAUCMatchesReferenceProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := fleetsim.NewRNG(seed)
		n := 10 + int(seed%200)
		scores := make([]float64, n)
		y := make([]int8, n)
		for i := range scores {
			scores[i] = math.Round(rng.Float64()*20) / 20 // induce ties
			y[i] = int8(rng.Intn(2))
		}
		return math.Abs(AUC(scores, y)-mltest.AUC(scores, y)) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: trapezoid AUC of the ROC curve equals the rank AUC.
func TestROCTrapezoidMatchesRankAUC(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := fleetsim.NewRNG(seed)
		n := 20 + int(seed%100)
		scores := make([]float64, n)
		y := make([]int8, n)
		pos := false
		neg := false
		for i := range scores {
			scores[i] = math.Round(rng.Float64()*10) / 10
			y[i] = int8(rng.Intn(2))
			if y[i] == 1 {
				pos = true
			} else {
				neg = true
			}
		}
		if !pos || !neg {
			return true
		}
		roc := ComputeROC(scores, y)
		return math.Abs(roc.AUC()-AUC(scores, y)) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestROCShape(t *testing.T) {
	roc := ComputeROC([]float64{0.9, 0.7, 0.5, 0.3}, []int8{1, 0, 1, 0})
	// Curve starts at (0,0) and ends at (1,1), monotone nondecreasing.
	if roc.FPR[0] != 0 || roc.TPR[0] != 0 {
		t.Errorf("curve should start at origin")
	}
	last := len(roc.FPR) - 1
	if roc.FPR[last] != 1 || roc.TPR[last] != 1 {
		t.Errorf("curve should end at (1,1), got (%v,%v)", roc.FPR[last], roc.TPR[last])
	}
	for i := 1; i < len(roc.FPR); i++ {
		if roc.FPR[i] < roc.FPR[i-1] || roc.TPR[i] < roc.TPR[i-1] {
			t.Fatal("ROC curve not monotone")
		}
	}
}

func TestTPRAtFPR(t *testing.T) {
	roc := &ROC{FPR: []float64{0, 0.5, 1}, TPR: []float64{0, 0.8, 1}}
	if got := roc.TPRAtFPR(0.25); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("TPRAtFPR(0.25) = %v, want 0.4", got)
	}
	if got := roc.TPRAtFPR(2); got != 1 {
		t.Errorf("TPRAtFPR beyond range = %v", got)
	}
}

func TestConfusionAt(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.3, 0.1}
	y := []int8{1, 0, 1, 0}
	tpr, fpr := ConfusionAt(scores, y, 0.5)
	if tpr != 0.5 || fpr != 0.5 {
		t.Errorf("ConfusionAt(0.5) = %v, %v", tpr, fpr)
	}
	tpr, fpr = ConfusionAt(scores, y, 0.05)
	if tpr != 1 || fpr != 1 {
		t.Errorf("loose threshold = %v, %v", tpr, fpr)
	}
	tpr, fpr = ConfusionAt(nil, nil, 0.5)
	if tpr != 0 || fpr != 0 {
		t.Errorf("empty confusion = %v, %v", tpr, fpr)
	}
}

func TestCrossValidateOnSimulatedFleet(t *testing.T) {
	cfg := fleetsim.DefaultConfig(31, 80)
	cfg.HorizonDays = 1100
	cfg.EarlyWindow = 300
	fleet, _, err := fleetsim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	an := failure.Analyze(fleet)
	opts := CVOptions{Folds: 3, Lookahead: 1, Seed: 1, DownsampleRatio: 1,
		TestNegSampleProb: 0.2, AgeMax: -1}
	res, err := CrossValidate(fleet, an, opts,
		forest.NewFactory(forest.Config{Trees: 30, MaxDepth: 10, MinLeaf: 2, Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AUCs) != 3 {
		t.Fatalf("fold count = %d", len(res.AUCs))
	}
	// A forest on simulated data with symptom ramps should comfortably
	// beat chance (the bound is loose: an 80-drive-per-model fleet has
	// high fold-to-fold variance).
	if res.Mean < 0.62 {
		t.Errorf("CV mean AUC = %.3f, want >= 0.62", res.Mean)
	}
	if res.Std < 0 || res.Std > 0.3 {
		t.Errorf("CV std = %.3f", res.Std)
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	cfg := fleetsim.DefaultConfig(32, 80)
	cfg.HorizonDays = 1100
	cfg.EarlyWindow = 300
	fleet, _, err := fleetsim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	an := failure.Analyze(fleet)
	opts := CVOptions{Folds: 3, Lookahead: 1, Seed: 9, DownsampleRatio: 1,
		TestNegSampleProb: 0.2, AgeMax: -1}
	fac := tree.NewFactory(tree.Config{MaxDepth: 8, MinLeaf: 2, MinSplit: 4})
	r1, err := CrossValidate(fleet, an, opts, fac)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := CrossValidate(fleet, an, opts, fac)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.AUCs {
		if r1.AUCs[i] != r2.AUCs[i] {
			t.Fatal("cross-validation not deterministic")
		}
	}
}

func TestGridSearchPicksBest(t *testing.T) {
	cfg := fleetsim.DefaultConfig(33, 80)
	cfg.HorizonDays = 1100
	cfg.EarlyWindow = 300
	fleet, _, err := fleetsim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	an := failure.Analyze(fleet)
	opts := CVOptions{Folds: 3, Lookahead: 1, Seed: 2, DownsampleRatio: 1,
		TestNegSampleProb: 0.2, AgeMax: -1}
	grid := []GridPoint{
		{Label: "depth=1", Factory: tree.NewFactory(tree.Config{MaxDepth: 1})},
		{Label: "depth=10", Factory: tree.NewFactory(tree.Config{MaxDepth: 10, MinLeaf: 2, MinSplit: 4})},
	}
	best, results, err := GridSearch(fleet, an, opts, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || best < 0 {
		t.Fatalf("best=%d results=%v", best, results)
	}
	if results[best].Mean < results[1-best].Mean {
		t.Error("GridSearch did not pick the best mean")
	}
}

func TestTPRByAgeMonth(t *testing.T) {
	scores := []float64{0.9, 0.2, 0.8, 0.95}
	y := []int8{1, 1, 0, 1}
	ages := []int32{10, 40, 10, 3000}
	got := TPRByAgeMonth(scores, y, ages, 0.5, 3)
	if got[0] != 1 { // one positive in month 0, predicted
		t.Errorf("month 0 TPR = %v", got[0])
	}
	if got[1] != 0 { // one positive in month 1, missed
		t.Errorf("month 1 TPR = %v", got[1])
	}
	// Age beyond range clamps into the last bucket.
	if got[2] != 1 {
		t.Errorf("clamped month TPR = %v", got[2])
	}
}

func TestTPRByAgeMonthEmptyMonths(t *testing.T) {
	got := TPRByAgeMonth([]float64{0.9}, []int8{0}, []int32{5}, 0.5, 2)
	for _, v := range got {
		if !math.IsNaN(v) {
			t.Errorf("months without positives should be NaN, got %v", got)
		}
	}
}
