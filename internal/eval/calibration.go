package eval

import "math"

// Calibration utilities: the paper thresholds the random forest's
// probability output for binary decisions (Figure 14), which is only
// meaningful if the scores behave like probabilities. These helpers
// quantify that.

// ReliabilityCurve bins scores into nbins equal-width probability bins
// and returns, per bin, the mean predicted score and the observed
// positive rate (NaN for empty bins). A well-calibrated classifier's
// curve hugs the diagonal.
func ReliabilityCurve(scores []float64, y []int8, nbins int) (predicted, observed []float64) {
	if nbins <= 0 {
		nbins = 10
	}
	sum := make([]float64, nbins)
	pos := make([]float64, nbins)
	cnt := make([]float64, nbins)
	for i, s := range scores {
		b := int(s * float64(nbins))
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		sum[b] += s
		cnt[b]++
		if y[i] == 1 {
			pos[b]++
		}
	}
	predicted = make([]float64, nbins)
	observed = make([]float64, nbins)
	for b := 0; b < nbins; b++ {
		if cnt[b] > 0 {
			predicted[b] = sum[b] / cnt[b]
			observed[b] = pos[b] / cnt[b]
		} else {
			predicted[b] = math.NaN()
			observed[b] = math.NaN()
		}
	}
	return predicted, observed
}

// BrierScore returns the mean squared error between scores and labels —
// a proper scoring rule combining calibration and refinement (lower is
// better; 0.25 is the score of a constant 0.5 prediction).
func BrierScore(scores []float64, y []int8) float64 {
	if len(scores) == 0 {
		return math.NaN()
	}
	var s float64
	for i, p := range scores {
		d := p - float64(y[i])
		s += d * d
	}
	return s / float64(len(scores))
}

// ExpectedCalibrationError summarizes the reliability curve: the
// bin-count-weighted mean absolute gap between predicted and observed
// positive rates.
func ExpectedCalibrationError(scores []float64, y []int8, nbins int) float64 {
	if nbins <= 0 {
		nbins = 10
	}
	if len(scores) == 0 {
		return math.NaN()
	}
	gap := make([]float64, nbins)
	pos := make([]float64, nbins)
	sum := make([]float64, nbins)
	cnt := make([]float64, nbins)
	for i, s := range scores {
		b := int(s * float64(nbins))
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		sum[b] += s
		cnt[b]++
		if y[i] == 1 {
			pos[b]++
		}
	}
	var ece float64
	for b := 0; b < nbins; b++ {
		if cnt[b] == 0 {
			continue
		}
		gap[b] = math.Abs(sum[b]/cnt[b] - pos[b]/cnt[b])
		ece += gap[b] * cnt[b]
	}
	return ece / float64(len(scores))
}
