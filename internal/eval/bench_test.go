package eval

import (
	"math"
	"testing"
)

// benchData builds n pooled scores with a ~3% positive rate and ages
// spread over two years, matching the shape of Figure 13–15 inputs.
func benchData(n int) (scores []float64, y []int8, ages []int32) {
	state := uint64(42)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	scores = make([]float64, n)
	y = make([]int8, n)
	ages = make([]int32, n)
	for i := range scores {
		scores[i] = next()
		if next() < 0.03 {
			y[i] = 1
		}
		ages[i] = int32(next() * 730)
	}
	return
}

// benchThresholds is a Figure-14-style dense sweep: the regression these
// benchmarks guard is the per-threshold recount of class totals, whose
// cost scales with len(thresholds) * n instead of n.
var benchThresholds = func() []float64 {
	var t []float64
	for v := 0.05; v < 1; v += 0.05 {
		t = append(t, math.Round(v*100)/100)
	}
	return t
}()

func BenchmarkConfusionSweep(b *testing.B) {
	scores, y, _ := benchData(200000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConfusionSweep(scores, y, benchThresholds)
	}
}

func BenchmarkConfusionPerThreshold(b *testing.B) {
	// The pre-hoist shape: one full pass per threshold.
	scores, y, _ := benchData(200000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, thr := range benchThresholds {
			ConfusionAt(scores, y, thr)
		}
	}
}

func BenchmarkTPRByAgeMonths(b *testing.B) {
	scores, y, ages := benchData(200000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TPRByAgeMonths(scores, y, ages, benchThresholds, 25)
	}
}

func BenchmarkTPRByAgeMonthPerThreshold(b *testing.B) {
	// The pre-hoist shape Figure 14 used: one call per threshold.
	scores, y, ages := benchData(200000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, thr := range benchThresholds {
			TPRByAgeMonth(scores, y, ages, thr, 25)
		}
	}
}
