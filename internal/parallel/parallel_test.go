package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 5, 100, 1000} {
			hits := make([]int32, n)
			For(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	got := Map(4, 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapSlice(t *testing.T) {
	in := []string{"a", "bb", "ccc"}
	got := MapSlice(2, in, func(s string) int { return len(s) })
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MapSlice = %v, want %v", got, want)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(4, 0, func(int) int { return 1 }); len(got) != 0 {
		t.Fatalf("Map over 0 items returned %v", got)
	}
}

func TestReduceSum(t *testing.T) {
	merge := func(a, b int64) int64 { return a + b }
	for _, workers := range []int{0, 1, 3, 16} {
		got := Reduce(workers, 1000, func(i int) int64 { return int64(i) }, merge)
		if got != 999*1000/2 {
			t.Fatalf("workers=%d: Reduce = %d", workers, got)
		}
	}
}

func TestReduceEmpty(t *testing.T) {
	got := Reduce(4, 0, func(int) int { return 7 }, func(a, b int) int { return a + b })
	if got != 0 {
		t.Fatalf("Reduce over empty = %d, want 0", got)
	}
}

func TestReduceDeterministicAcrossWorkerCounts(t *testing.T) {
	// Integer sums are associative and commutative, so every worker
	// count must give the identical result.
	fn := func(i int) int64 { return int64(i*i - 3*i + 1) }
	merge := func(a, b int64) int64 { return a + b }
	want := Reduce(1, 777, fn, merge)
	for _, workers := range []int{2, 3, 8, 32} {
		if got := Reduce(workers, 777, fn, merge); got != want {
			t.Fatalf("workers=%d: %d != %d", workers, got, want)
		}
	}
}

func TestPool(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var counter int64
	for i := 0; i < 500; i++ {
		p.Submit(func() { atomic.AddInt64(&counter, 1) })
	}
	p.Wait()
	if counter != 500 {
		t.Fatalf("pool ran %d tasks, want 500", counter)
	}
	// Pool must be reusable after Wait.
	for i := 0; i < 100; i++ {
		p.Submit(func() { atomic.AddInt64(&counter, 1) })
	}
	p.Wait()
	if counter != 600 {
		t.Fatalf("pool ran %d tasks after reuse, want 600", counter)
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Submit(func() {})
	p.Close()
	p.Close() // must not panic
}

func TestClampWorkers(t *testing.T) {
	if w := clampWorkers(-1, 100); w != DefaultWorkers() {
		t.Errorf("clampWorkers(-1, 100) = %d", w)
	}
	if w := clampWorkers(8, 3); w != 3 {
		t.Errorf("clampWorkers(8, 3) = %d, want 3", w)
	}
	if w := clampWorkers(8, 0); w != 1 {
		t.Errorf("clampWorkers(8, 0) = %d, want 1", w)
	}
}

// Property: For with any worker count computes the same multiset of
// results as a serial loop.
func TestForEquivalentToSerialProperty(t *testing.T) {
	prop := func(nRaw uint16, workersRaw uint8) bool {
		n := int(nRaw % 500)
		workers := int(workersRaw%16) + 1
		par := make([]int64, n)
		For(workers, n, func(i int) { par[i] = int64(i) * 3 })
		for i := 0; i < n; i++ {
			if par[i] != int64(i)*3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
