// Package parallel provides the small shared-memory parallel runtime used
// by the simulator, the random forest, and the evaluation harness: a
// chunked parallel-for, a parallel map, and a reusable worker pool.
//
// All helpers are deterministic in the sense that they never reorder
// results: output slot i always corresponds to input slot i, so callers
// that seed per-item RNGs get identical results at any worker count.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the worker count used when a caller passes
// workers <= 0: the number of usable CPUs.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// clampWorkers resolves the worker count for n items.
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// For runs fn(i) for every i in [0, n) using the given number of workers
// (<= 0 means DefaultWorkers). Iterations are distributed dynamically in
// contiguous chunks so uneven per-item costs balance out.
func For(workers, n int, fn func(i int)) {
	workers = clampWorkers(workers, n)
	if n == 0 {
		return
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Chunk size balances scheduling overhead against load balance.
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				start := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// Map applies fn to every index in [0, n) and collects the results in
// order. It is For with an output slice.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// MapSlice applies fn to every element of in and collects results in order.
func MapSlice[S, T any](workers int, in []S, fn func(S) T) []T {
	return Map(workers, len(in), func(i int) T { return fn(in[i]) })
}

// Reduce computes a parallel reduction: fn maps each index to a partial
// value of type T and merge folds partials together. merge must be
// associative; the zero value of T must be its identity. The reduction
// tree shape is fixed by the worker count, so results are deterministic
// for a given workers value (and exactly equal at any workers value when
// merge is also commutative over the partials, e.g. integer sums).
func Reduce[T any](workers, n int, fn func(i int) T, merge func(a, b T) T) T {
	workers = clampWorkers(workers, n)
	var zero T
	if n == 0 {
		return zero
	}
	partials := make([]T, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			acc := zero
			// Static block partition keeps each partial's fold order fixed.
			lo := w * n / workers
			hi := (w + 1) * n / workers
			for i := lo; i < hi; i++ {
				acc = merge(acc, fn(i))
			}
			partials[w] = acc
		}(w)
	}
	wg.Wait()
	acc := zero
	for _, p := range partials {
		acc = merge(acc, p)
	}
	return acc
}

// Pool is a reusable fixed-size worker pool for irregular task graphs
// (e.g. growing forest trees while the caller streams in work).
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup
	once  sync.Once
}

// NewPool starts a pool with the given number of workers (<= 0 means
// DefaultWorkers).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	p := &Pool{tasks: make(chan func(), workers*2)}
	for i := 0; i < workers; i++ {
		go func() {
			for t := range p.tasks {
				t()
				p.wg.Done()
			}
		}()
	}
	return p
}

// Submit enqueues a task. It must not be called after Close.
func (p *Pool) Submit(task func()) {
	p.wg.Add(1)
	p.tasks <- task
}

// Wait blocks until all submitted tasks have completed.
func (p *Pool) Wait() { p.wg.Wait() }

// Close waits for outstanding tasks and shuts the workers down. A pool
// cannot be reused after Close; Close is idempotent.
func (p *Pool) Close() {
	p.once.Do(func() {
		p.wg.Wait()
		close(p.tasks)
	})
}
