package remedy

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ssdfail/internal/sparepool"
	"ssdfail/internal/trace"
)

// Engine walks every drive of a fleet through the remediation state
// machine. It owns no clock and no RNG: each Evaluate call is one tick,
// and every decision is a pure function of the scores and failures fed
// in so far. All methods are safe for concurrent use; decisions within
// one tick are made in a deterministic order (failures first, then
// score updates by drive ID, then FIFO drain admission, then drain
// completion by drive ID).
type Engine struct {
	mu     sync.Mutex
	policy Policy
	pool   *sparepool.Pool
	log    *EventLog

	tick       uint64
	drives     map[uint32]*driveState
	registered [trace.NumModels]int // drives ever seen, per model
	draining   [trace.NumModels]int
	stats      Stats
}

// driveState is one drive's remediation bookkeeping.
type driveState struct {
	id    uint32
	model trace.Model
	state State
	score float64 // last reported score

	breaches int // consecutive evaluations at/above threshold
	clears   int // consecutive evaluations below threshold

	cordonTick uint64 // FIFO key for drain admission
	drainDone  uint64 // tick at which the drain completes
	spare      int    // spare ID once swapped

	swapBlockedLogged bool // swap_blocked emitted once per drive
	failedAfterSwap   bool // ground-truth failure arrived post-swap
}

// NewEngine builds an engine actuating against pool, logging to log
// (nil = in-memory ring only).
func NewEngine(policy Policy, pool *sparepool.Pool, log *EventLog) (*Engine, error) {
	p, err := policy.withDefaults()
	if err != nil {
		return nil, err
	}
	if pool == nil {
		return nil, errors.New("remedy: nil spare pool")
	}
	if log == nil {
		log = NewEventLog(nil, 0)
	}
	return &Engine{
		policy: p,
		pool:   pool,
		log:    log,
		drives: make(map[uint32]*driveState),
	}, nil
}

// Register makes a drive known to the engine before any score arrives,
// entering it into its model's rate-limit denominator. Evaluate
// registers unseen drives implicitly; scenarios register the whole
// fleet up front so denominators are exact from tick one.
func (e *Engine) Register(id uint32, model trace.Model) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, err := e.lookup(id, model)
	return err
}

// lookup returns the drive's state, creating it on first sight, and
// rejects a drive whose model changed (the store upstream enforces the
// same invariant; a mismatch here means the caller mixed fleets).
func (e *Engine) lookup(id uint32, model trace.Model) (*driveState, error) {
	if int(model) >= trace.NumModels {
		return nil, fmt.Errorf("remedy: drive %d has invalid model %d", id, model)
	}
	d, ok := e.drives[id]
	if !ok {
		d = &driveState{id: id, model: model}
		e.drives[id] = d
		e.registered[model]++
		return d, nil
	}
	if d.model != model {
		return nil, fmt.Errorf("remedy: drive %d model changed from %s to %s", id, d.model, model)
	}
	return d, nil
}

// drainCap is the per-model drain slot count: floor(MaxDrainFraction x
// registered). The denominator is drives ever registered — not drives
// currently alive — so the cap can never shrink below the number of
// drains already admitted and the <= k% invariant is stable under
// failures.
func (e *Engine) drainCap(model trace.Model) int {
	return int(e.policy.MaxDrainFraction * float64(e.registered[model]))
}

// emit books an event into the log and the pass's decision list.
func (e *Engine) emit(out []Event, ev Event) []Event {
	e.log.Append(ev)
	return append(out, ev)
}

// Evaluate advances the engine by one tick: ground-truth failures are
// applied first, then every drive's score updates its hysteresis
// streaks (cordoning and uncordoning), then cordoned drives are
// admitted to drain slots FIFO by cordon time under the per-model rate
// limit, then due drains complete by allocating spares. It returns the
// decisions made this tick, in order.
//
// Drives absent from scores keep their streaks frozen (no report is
// not a clear); drives already draining, swapped, or failed only have
// their last-seen score refreshed.
func (e *Engine) Evaluate(scores []Score, failures []uint32) ([]Event, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tick++
	e.stats.Evaluations++
	var out []Event

	// Failures first: a drive that died this tick must not also be
	// cordoned or swapped this tick.
	sortedFails := append([]uint32(nil), failures...)
	sort.Slice(sortedFails, func(a, b int) bool { return sortedFails[a] < sortedFails[b] })
	for _, id := range sortedFails {
		ev, err := e.failLocked(id)
		if err != nil {
			return out, err
		}
		out = append(out, ev)
	}

	// Score updates in drive-ID order (last score wins on duplicates,
	// which the stable sort preserves).
	sorted := append([]Score(nil), scores...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].DriveID < sorted[b].DriveID })
	for i := range sorted {
		sc := &sorted[i]
		d, err := e.lookup(sc.DriveID, sc.Model)
		if err != nil {
			return out, err
		}
		d.score = sc.Score
		breach := sc.Score >= e.policy.Threshold
		switch d.state {
		case StateHealthy:
			if breach {
				d.clears = 0
				d.breaches++
				if d.breaches >= e.policy.CordonAfter {
					d.state = StateCordoned
					d.cordonTick = e.tick
					d.breaches, d.clears = 0, 0
					e.stats.Cordons++
					out = e.emit(out, Event{Tick: e.tick, Action: ActionCordon,
						Drive: d.id, Model: d.model, Score: d.score})
				}
			} else {
				d.breaches = 0
			}
		case StateCordoned:
			if breach {
				d.clears = 0
			} else {
				d.clears++
				if d.clears >= e.policy.UncordonAfter {
					d.state = StateHealthy
					d.breaches, d.clears = 0, 0
					e.stats.Uncordons++
					out = e.emit(out, Event{Tick: e.tick, Action: ActionUncordon,
						Drive: d.id, Model: d.model, Score: d.score})
				}
			}
		}
	}

	// Drain admission: cordoned drives FIFO by (cordon tick, drive ID),
	// so a long-waiting drive is never starved by a lower ID.
	var waiting []*driveState
	for _, d := range e.drives {
		if d.state == StateCordoned {
			waiting = append(waiting, d)
		}
	}
	sort.Slice(waiting, func(a, b int) bool {
		if waiting[a].cordonTick != waiting[b].cordonTick {
			return waiting[a].cordonTick < waiting[b].cordonTick
		}
		return waiting[a].id < waiting[b].id
	})
	for _, d := range waiting {
		if e.draining[d.model] < e.drainCap(d.model) {
			d.state = StateDraining
			d.drainDone = e.tick + uint64(e.policy.DrainTicks)
			e.draining[d.model]++
			e.stats.DrainStarts++
			out = e.emit(out, Event{Tick: e.tick, Action: ActionDrainStart,
				Drive: d.id, Model: d.model, Score: d.score})
		} else {
			e.stats.RateLimitedTicks++
		}
	}

	// Drain completion in drive-ID order: due drains try the pool.
	var due []*driveState
	for _, d := range e.drives {
		if d.state == StateDraining && e.tick >= d.drainDone {
			due = append(due, d)
		}
	}
	sort.Slice(due, func(a, b int) bool { return due[a].id < due[b].id })
	for _, d := range due {
		spare, err := e.pool.Allocate(d.id)
		if err != nil {
			if errors.Is(err, sparepool.ErrExhausted) {
				e.stats.PoolExhaustedTicks++
				if !d.swapBlockedLogged {
					d.swapBlockedLogged = true
					out = e.emit(out, Event{Tick: e.tick, Action: ActionSwapBlocked,
						Drive: d.id, Model: d.model, Score: d.score})
				}
				continue // keep the slot; retry next tick
			}
			return out, err
		}
		d.state = StateSwapped
		d.spare = spare
		e.draining[d.model]--
		e.stats.Swaps++
		e.stats.SwapCost += e.policy.SwapCost
		out = e.emit(out, Event{Tick: e.tick, Action: ActionSwap,
			Drive: d.id, Model: d.model, Score: d.score,
			Spare: spare, Cost: e.policy.SwapCost})
	}
	return out, nil
}

// Fail records a ground-truth failure outside an evaluation pass (the
// serve layer's POST /v1/remedy/fail); the event is stamped with the
// last completed tick. Scenario runs pass failures to Evaluate instead
// so each one lands inside its tick.
func (e *Engine) Fail(id uint32) (Event, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.failLocked(id)
}

// failLocked applies one failure: books the loss (or the save), frees
// any drain slot, and emits the fail event.
func (e *Engine) failLocked(id uint32) (Event, error) {
	d, ok := e.drives[id]
	if !ok {
		return Event{}, fmt.Errorf("remedy: failure reported for unknown drive %d", id)
	}
	if d.state == StateFailed || d.failedAfterSwap {
		return Event{}, fmt.Errorf("remedy: drive %d already failed", id)
	}
	e.stats.Failures++
	ev := Event{Tick: e.tick, Action: ActionFail, Drive: d.id, Model: d.model, Score: d.score}
	if d.state == StateSwapped {
		// The body that failed was already replaced: the prediction
		// arrived in time and the swap cost bought back a loss. The
		// drive stays in StateSwapped; the flag marks it justified.
		d.failedAfterSwap = true
		e.stats.PreventedLosses++
	} else {
		if d.state == StateDraining {
			e.draining[d.model]--
		}
		d.state = StateFailed
		e.stats.DataLosses++
		e.stats.LossCost += e.policy.LossCost
		ev.Cost = e.policy.LossCost
	}
	e.log.Append(ev)
	return ev, nil
}

// Tick returns the number of completed evaluation passes.
func (e *Engine) Tick() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tick
}

// Policy returns the engine's (normalized) operating point.
func (e *Engine) Policy() Policy {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.policy
}

// Stats returns the lifetime decision accounting.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Log exposes the engine's event log.
func (e *Engine) Log() *EventLog { return e.log }

// StateCounts returns how many drives sit in each lifecycle state.
func (e *Engine) StateCounts() [numStates]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	var c [numStates]int
	for _, d := range e.drives {
		c[d.state]++
	}
	return c
}

// ModelCounts reports, per drive model, the registered population,
// drives currently draining, and the drain cap in force.
type ModelCounts struct {
	Model      trace.Model
	Registered int
	Draining   int
	DrainCap   int
}

// ByModel returns the rate limiter's books for every model with at
// least one registered drive, in model order.
func (e *Engine) ByModel() []ModelCounts {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []ModelCounts
	for _, m := range trace.Models {
		if e.registered[m] == 0 {
			continue
		}
		out = append(out, ModelCounts{
			Model:      m,
			Registered: e.registered[m],
			Draining:   e.draining[m],
			DrainCap:   e.drainCap(m),
		})
	}
	return out
}

// DriveInfo is one drive's externally visible remediation state.
type DriveInfo struct {
	ID       uint32
	Model    trace.Model
	State    State
	Score    float64
	Breaches int
	Clears   int
	Spare    int
	// FailedAfterSwap marks a swapped drive whose ground-truth failure
	// later arrived — the label the learning loop can consume.
	FailedAfterSwap bool
}

// Drives returns every drive's state, sorted by drive ID.
func (e *Engine) Drives() []DriveInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]DriveInfo, 0, len(e.drives))
	for _, d := range e.drives {
		out = append(out, DriveInfo{
			ID: d.id, Model: d.model, State: d.state, Score: d.score,
			Breaches: d.breaches, Clears: d.clears, Spare: d.spare,
			FailedAfterSwap: d.failedAfterSwap,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Summary closes the books: realized cost versus the do-nothing
// counterfactual, and the premature-swap count — swapped drives whose
// failure never arrived (so far).
func (e *Engine) Summary() Summary {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := Summary{Stats: e.stats}
	for _, d := range e.drives {
		s.ByState[d.state]++
		if d.state == StateSwapped && !d.failedAfterSwap {
			s.PrematureSwaps++
		}
	}
	s.TotalCost = e.stats.TotalCost()
	s.DoNothingCost = float64(e.stats.Failures) * e.policy.LossCost
	s.Savings = s.DoNothingCost - s.TotalCost
	return s
}
