package remedy

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"ssdfail/internal/trace"
)

// ScoreSource feeds an evaluation pass with the fleet's current
// scores. Scenario runs synthesize scores from the scenario file; the
// live path pulls them from a running ssdserved watchlist.
type ScoreSource interface {
	Fetch(ctx context.Context) ([]Score, error)
}

// HTTPSource pulls scores from a running ssdserved daemon's
// /v1/watchlist endpoint. It requests threshold=0 and k=0 — the whole
// scored fleet, not just the members above the operating point —
// because the policy engine needs margins on both sides of the
// threshold to run its hysteresis.
type HTTPSource struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8377".
	BaseURL string
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
	// MaxBodyBytes caps the response read; 0 means 64 MiB.
	MaxBodyBytes int64
}

// watchlistReply is the slice of the watchlist response the engine
// consumes (per-item score plus identity; envelope ignored beyond
// items).
type watchlistReply struct {
	Items []struct {
		DriveID uint32  `json:"drive_id"`
		Model   string  `json:"model"`
		Score   float64 `json:"score"`
	} `json:"items"`
}

// Fetch pulls one full-fleet score pass.
func (s *HTTPSource) Fetch(ctx context.Context) ([]Score, error) {
	u, err := url.Parse(s.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("remedy: source url: %w", err)
	}
	u.Path = "/v1/watchlist"
	u.RawQuery = "threshold=0&k=0"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, err
	}
	client := s.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("remedy: fetching watchlist: %w", err)
	}
	defer resp.Body.Close()
	maxBody := s.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 64 << 20
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return nil, fmt.Errorf("remedy: reading watchlist: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("remedy: watchlist returned %d: %s", resp.StatusCode, body)
	}
	var rep watchlistReply
	if err := json.Unmarshal(body, &rep); err != nil {
		return nil, fmt.Errorf("remedy: unparseable watchlist: %w", err)
	}
	out := make([]Score, 0, len(rep.Items))
	for _, it := range rep.Items {
		m, err := trace.ParseModel(it.Model)
		if err != nil {
			return nil, fmt.Errorf("remedy: watchlist drive %d: %w", it.DriveID, err)
		}
		out = append(out, Score{DriveID: it.DriveID, Model: m, Score: it.Score})
	}
	return out, nil
}
