package remedy

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite scenario golden event logs")

// scenariosDir is the committed scenario corpus, relative to this
// package.
const scenariosDir = "../../scenarios"

func listScenarios(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(scenariosDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no scenarios under %s", scenariosDir)
	}
	sort.Strings(paths)
	return paths
}

// TestCommittedScenariosAgainstGoldens runs every scenario in
// scenarios/, requires all of its assertions to hold, and diffs the
// event log byte for byte against scenarios/golden/<name>.eventlog.
// Run with -update to rewrite the goldens after an intentional engine
// change.
func TestCommittedScenariosAgainstGoldens(t *testing.T) {
	for _, path := range listScenarios(t) {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			sc, err := LoadScenario(path)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("assertion violations:\n%s", joinLines(res.Violations))
			}
			golden := filepath.Join(scenariosDir, "golden", sc.Name+".eventlog")
			if *updateGolden {
				if err := os.WriteFile(golden, res.EventLog, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create it)", err)
			}
			if !bytes.Equal(res.EventLog, want) {
				t.Fatalf("event log drifted from golden %s:\n--- got ---\n%s--- want ---\n%s",
					golden, res.EventLog, want)
			}
		})
	}
}

// TestCommittedScenariosDeterministicAcrossGOMAXPROCS replays each
// committed scenario at GOMAXPROCS 1 and at the machine's full width
// and requires byte-identical event logs — the acceptance criterion
// the CI job re-checks from the CLI.
func TestCommittedScenariosDeterministicAcrossGOMAXPROCS(t *testing.T) {
	for _, path := range listScenarios(t) {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			sc, err := LoadScenario(path)
			if err != nil {
				t.Fatal(err)
			}
			runAt := func(procs int) []byte {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				res, err := Run(sc)
				if err != nil {
					t.Fatal(err)
				}
				return res.EventLog
			}
			narrow := runAt(1)
			wide := runAt(runtime.NumCPU())
			if !bytes.Equal(narrow, wide) {
				t.Fatalf("event log differs between GOMAXPROCS=1 and %d:\n--- narrow ---\n%s--- wide ---\n%s",
					runtime.NumCPU(), narrow, wide)
			}
			if len(narrow) == 0 {
				t.Fatal("scenario produced no events; determinism check vacuous")
			}
		})
	}
}

func joinLines(lines []string) string {
	var b bytes.Buffer
	for _, l := range lines {
		b.WriteString("  " + l + "\n")
	}
	return b.String()
}
