package remedy

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"ssdfail/internal/trace"
)

// Action is the kind of one remediation decision.
type Action string

const (
	// ActionCordon: a healthy drive breached the threshold for
	// CordonAfter consecutive evaluations and takes no new data.
	ActionCordon Action = "cordon"
	// ActionUncordon: a cordoned drive cleared the threshold for
	// UncordonAfter consecutive evaluations and serves again.
	ActionUncordon Action = "uncordon"
	// ActionDrainStart: the rate limiter admitted a cordoned drive
	// into one of its model's drain slots.
	ActionDrainStart Action = "drain_start"
	// ActionSwap: the drain completed and a spare was allocated.
	ActionSwap Action = "swap"
	// ActionSwapBlocked: the drain completed but the pool was empty;
	// emitted once per drive, retried silently each tick after.
	ActionSwapBlocked Action = "swap_blocked"
	// ActionFail: the drive actually failed (ground truth arrived).
	ActionFail Action = "fail"
)

// Event is one remediation decision, the unit of the replayable log.
// Time is the evaluation tick, not a wall clock: the engine owns no
// clock, so two runs over the same score sequence produce the same
// events — byte for byte once encoded.
type Event struct {
	Tick   uint64
	Action Action
	Drive  uint32
	Model  trace.Model
	// Score is the drive's score at the decision (the breaching score
	// for cordon, the clearing score for uncordon, last known
	// otherwise). Fail events carry the last score the engine saw —
	// a symptom-free failure (paper §4) fails with a low one.
	Score float64
	// Spare is the allocated spare ID on swap events, 0 otherwise.
	Spare int
	// Cost is the charge this event booked (SwapCost on swap,
	// LossCost on an unremediated fail), 0 otherwise.
	Cost float64
}

// fmtFloat renders a float in the shortest round-trippable form, so
// encoded events are canonical.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// String renders the canonical single-line encoding:
//
//	t=12 action=cordon drive=1003 model=MLC-A score=0.95
//
// Fields appear in fixed order; spare and cost only when nonzero.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%d action=%s drive=%d model=%s score=%s",
		e.Tick, e.Action, e.Drive, e.Model, fmtFloat(e.Score))
	if e.Spare != 0 {
		fmt.Fprintf(&b, " spare=%d", e.Spare)
	}
	if e.Cost != 0 {
		fmt.Fprintf(&b, " cost=%s", fmtFloat(e.Cost))
	}
	return b.String()
}

// EventLog collects the engine's decisions: every event goes to the
// optional sink as one canonical line, and the most recent ringCap
// events stay queryable in memory (the serve layer's /v1/remedy/log).
// Safe for concurrent use.
type EventLog struct {
	mu      sync.Mutex
	sink    io.Writer
	ring    []Event
	ringCap int
	start   int // ring read position
	total   uint64
	sinkErr error
}

// DefaultRingCap bounds the in-memory tail when none is given.
const DefaultRingCap = 256

// NewEventLog builds a log writing lines to sink (nil = in-memory ring
// only) keeping the last ringCap events queryable (0 = DefaultRingCap).
func NewEventLog(sink io.Writer, ringCap int) *EventLog {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &EventLog{sink: sink, ringCap: ringCap}
}

// Append records one event.
func (l *EventLog) Append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.ring) < l.ringCap {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.start] = e
		l.start = (l.start + 1) % l.ringCap
	}
	if l.sink != nil && l.sinkErr == nil {
		if _, err := io.WriteString(l.sink, e.String()+"\n"); err != nil {
			// Latch the first failure: a partially written log must not
			// masquerade as a replayable artifact. Err surfaces it.
			l.sinkErr = err
		}
	}
}

// Recent returns up to n of the most recent events, oldest first
// (n <= 0 returns the whole retained tail).
func (l *EventLog) Recent(n int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	size := len(l.ring)
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Event, 0, n)
	for i := size - n; i < size; i++ {
		out = append(out, l.ring[(l.start+i)%size])
	}
	return out
}

// Total returns how many events were ever appended.
func (l *EventLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Err reports the first sink write failure, if any.
func (l *EventLog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinkErr
}
