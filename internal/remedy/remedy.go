// Package remedy is the remediation control plane that closes the loop
// the paper leaves open: §5 motivates failure prediction with proactive
// drive management, and the serving layer already ranks drives by
// failure score at the Figure 15 low-FPR operating point — but a
// watchlist nobody acts on protects no data. This package is the
// actuator: a policy engine that consumes per-drive scores, walks each
// drive through a cordon → drain → swap state machine against a live
// spare pool (internal/sparepool.Pool), and accounts for what acting
// early costs versus what not acting loses.
//
// The engine is deliberately boring in exactly the ways a control plane
// must be:
//
//   - Hysteresis: one noisy score never cordons a drive. A drive must
//     breach the threshold on CordonAfter consecutive evaluations to be
//     cordoned, and sit below it for UncordonAfter consecutive
//     evaluations to be released, so a flapping score cannot thrash the
//     fleet.
//   - Rate limits: draining drives stop serving, so the engine never
//     admits more than MaxDrainFraction of one drive model into the
//     draining state at once — a mispredicting model cannot take down
//     its whole population. Admission is FIFO by cordon time.
//   - Cost accounting at the operating point: every swap is charged
//     SwapCost; every failure of an unremediated drive is charged
//     LossCost. The summary compares the total against the do-nothing
//     counterfactual, which is the paper's premature-swap versus
//     data-loss trade made concrete.
//   - Determinism: the engine has no clock and no RNG. Time is the
//     evaluation tick; every decision is a pure function of the score
//     sequence, so a remediation run replays bit-identically (the event
//     log is the proof, and scenario goldens diff it byte for byte).
//
// Scenarios (scenario.go) drive the engine from declarative JSON files
// — fleet, policy, timed score/fault events, assertions — executed by
// Run (runner.go) and the ssdremedy CLI. The serving daemon embeds the
// same engine behind /v1/remedy/* (internal/serve).
package remedy

import (
	"fmt"

	"ssdfail/internal/trace"
)

// State is a drive's position in the remediation lifecycle.
type State uint8

const (
	// StateHealthy drives serve normally; scores are watched.
	StateHealthy State = iota
	// StateCordoned drives take no new data; the drive breached the
	// threshold on CordonAfter consecutive evaluations and waits for a
	// drain slot (rate limiter) — or for its score to clear.
	StateCordoned
	// StateDraining drives are migrating data off; the drain occupies
	// one of the model's rate-limited slots for DrainTicks evaluations.
	StateDraining
	// StateSwapped drives have been replaced by a spare from the pool.
	StateSwapped
	// StateFailed drives failed in place before remediation finished.
	StateFailed
	numStates
)

var stateNames = [numStates]string{"healthy", "cordoned", "draining", "swapped", "failed"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// ParseState converts a state name back to a State.
func ParseState(name string) (State, error) {
	for i, n := range stateNames {
		if n == name {
			return State(i), nil
		}
	}
	return 0, fmt.Errorf("remedy: unknown state %q", name)
}

// Score is one drive's failure score from an evaluation pass — the
// shape the serve layer's watchlist produces.
type Score struct {
	DriveID uint32
	Model   trace.Model
	Score   float64
}

// Policy is the remediation operating point.
type Policy struct {
	// Threshold is the score at or above which a drive counts as
	// breaching. The paper's Figure 15 low-FPR operating point (0.9)
	// is the recommended default: act on few drives, almost all of
	// which really are about to fail.
	Threshold float64
	// CordonAfter is the hysteresis m: consecutive breaching
	// evaluations required before a healthy drive is cordoned. >= 1.
	CordonAfter int
	// UncordonAfter is the release hysteresis: consecutive clear
	// evaluations required before a cordoned (not yet draining) drive
	// returns to healthy. 0 means CordonAfter.
	UncordonAfter int
	// MaxDrainFraction is the rate limit k: the fraction of one drive
	// model's live population allowed in StateDraining at once. The
	// per-model cap is floor(k * live); a cap of zero admits nothing.
	MaxDrainFraction float64
	// DrainTicks is how many evaluations a drain occupies its slot
	// before the swap is attempted. 0 swaps on the admission tick.
	DrainTicks int
	// SwapCost and LossCost price the trade the threshold tunes:
	// each swap (premature or justified) costs SwapCost, each failure
	// of a drive not yet swapped costs LossCost.
	SwapCost float64
	// LossCost is the cost of losing a drive's data in place.
	LossCost float64
}

// DefaultPolicy is the Figure 15 low-FPR operating point with mild
// hysteresis and a 10% per-model drain cap.
func DefaultPolicy() Policy {
	return Policy{
		Threshold:        0.9,
		CordonAfter:      3,
		UncordonAfter:    0,
		MaxDrainFraction: 0.1,
		DrainTicks:       2,
		SwapCost:         1,
		LossCost:         20,
	}
}

// withDefaults normalizes the zero-ish fields and validates ranges.
func (p Policy) withDefaults() (Policy, error) {
	if p.CordonAfter <= 0 {
		p.CordonAfter = 1
	}
	if p.UncordonAfter <= 0 {
		p.UncordonAfter = p.CordonAfter
	}
	if p.Threshold < 0 || p.Threshold > 1 {
		return p, fmt.Errorf("remedy: threshold %v outside [0, 1]", p.Threshold)
	}
	if p.MaxDrainFraction < 0 || p.MaxDrainFraction > 1 {
		return p, fmt.Errorf("remedy: max drain fraction %v outside [0, 1]", p.MaxDrainFraction)
	}
	if p.DrainTicks < 0 {
		return p, fmt.Errorf("remedy: negative drain ticks %d", p.DrainTicks)
	}
	if p.SwapCost < 0 || p.LossCost < 0 {
		return p, fmt.Errorf("remedy: negative cost (swap %v, loss %v)", p.SwapCost, p.LossCost)
	}
	return p, nil
}

// Stats is the engine's lifetime decision accounting.
type Stats struct {
	Evaluations uint64
	Cordons     uint64
	Uncordons   uint64
	DrainStarts uint64
	Swaps       uint64
	Failures    uint64
	// DataLosses is failures of drives not yet swapped (the model was
	// too late, too conservative, or rate-limited); PreventedLosses is
	// failures of drives that had already been swapped.
	DataLosses      uint64
	PreventedLosses uint64
	// RateLimitedTicks counts (drive, evaluation) pairs where a
	// cordoned drive was denied drain admission by the per-model cap.
	RateLimitedTicks uint64
	// PoolExhaustedTicks counts (drive, evaluation) pairs where a
	// completed drain could not swap for lack of a spare.
	PoolExhaustedTicks uint64
	// SwapCost and LossCost are the accumulated charges.
	SwapCost float64
	LossCost float64
}

// TotalCost is the policy's realized cost: swaps plus data losses.
func (s Stats) TotalCost() float64 { return s.SwapCost + s.LossCost }

// Summary is the end-of-run verdict the cost model exists to produce.
type Summary struct {
	Stats Stats
	// PrematureSwaps is swapped drives whose failure never arrived:
	// the false-positive half of the Figure 15 trade, each one a
	// healthy drive replaced for nothing but SwapCost.
	PrematureSwaps uint64
	// TotalCost = SwapCost + LossCost actually charged.
	TotalCost float64
	// DoNothingCost is the counterfactual: every failure that occurred
	// (prevented or not) charged at LossCost with zero swaps.
	DoNothingCost float64
	// Savings = DoNothingCost - TotalCost. Positive means the policy
	// paid for itself at this operating point.
	Savings float64
	// ByState counts drives per lifecycle state.
	ByState [numStates]int
}
