package remedy

import (
	"bytes"
	"fmt"
	"sort"

	"ssdfail/internal/sparepool"
	"ssdfail/internal/trace"
)

// RunResult is one scenario execution: the event log (the replayable
// artifact — byte-identical across reruns and GOMAXPROCS), the closing
// summary, and any assertion violations.
type RunResult struct {
	Scenario *Scenario
	Summary  Summary
	Pool     sparepool.PoolStats
	// EventLog is the canonical line encoding of every decision.
	EventLog []byte
	// Violations is empty when every assertion held.
	Violations []string
}

// Run executes a validated scenario from tick 1 through sc.Ticks:
// each tick applies that tick's events (scores pin, failures inject,
// restocks arrive), evaluates the whole live fleet, and checks the
// per-tick invariants; end-state assertions are checked after the
// final tick. The runner is single-threaded on purpose — determinism
// is load-bearing (scenario goldens diff the log byte for byte), and a
// control plane's decision loop is never the throughput bottleneck.
func Run(sc *Scenario) (*RunResult, error) {
	pool, err := sparepool.NewPool(sc.Spares)
	if err != nil {
		return nil, err
	}
	var logBuf bytes.Buffer
	engine, err := NewEngine(sc.Policy.Resolve(), pool, NewEventLog(&logBuf, 0))
	if err != nil {
		return nil, err
	}

	// Register the declared fleet and pin every drive to the base
	// score; scores persist until an event changes them.
	type driveRef struct {
		id    uint32
		model trace.Model
	}
	var fleet []driveRef
	scores := make(map[uint32]float64)
	failed := make(map[uint32]bool)
	for _, g := range sc.Fleet {
		for k := 0; k < g.Count; k++ {
			id := g.FirstID + uint32(k)
			fleet = append(fleet, driveRef{id: id, model: g.model})
			scores[id] = sc.BaseScore
			if err := engine.Register(id, g.model); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(fleet, func(a, b int) bool { return fleet[a].id < fleet[b].id })

	// Index events by tick once; ties within a tick apply in file order.
	eventsAt := make(map[int][]*ScenarioEvent)
	for i := range sc.Events {
		ev := &sc.Events[i]
		eventsAt[ev.At] = append(eventsAt[ev.At], ev)
	}

	res := &RunResult{Scenario: sc}
	viol := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	// Spares consumed by swaps come back through the repair pipeline
	// after the configured delay; returns are credited at the start of
	// their tick, before that tick's scripted events and evaluation.
	repairDue := make(map[int]int)

	for tick := 1; tick <= sc.Ticks; tick++ {
		if n := repairDue[tick]; n > 0 {
			if err := pool.Restock(n); err != nil {
				return nil, err
			}
			delete(repairDue, tick)
		}
		var failures []uint32
		for _, ev := range eventsAt[tick] {
			switch {
			case ev.SetScore != nil:
				scores[ev.SetScore.Drive] = ev.SetScore.Score
			case ev.SetModelScore != nil:
				for _, d := range fleet {
					if d.model == ev.SetModelScore.model {
						scores[d.id] = ev.SetModelScore.Score
					}
				}
			case ev.Fail != nil:
				if failed[ev.Fail.Drive] {
					return nil, fmt.Errorf("remedy: scenario %s: drive %d failed twice",
						sc.Name, ev.Fail.Drive)
				}
				failed[ev.Fail.Drive] = true
				failures = append(failures, ev.Fail.Drive)
			case ev.Restock != nil:
				if err := pool.Restock(ev.Restock.Count); err != nil {
					return nil, err
				}
			}
		}

		// Score every drive still reporting (failed drives go silent).
		pass := make([]Score, 0, len(fleet))
		for _, d := range fleet {
			if failed[d.id] {
				continue
			}
			pass = append(pass, Score{DriveID: d.id, Model: d.model, Score: scores[d.id]})
		}
		events, err := engine.Evaluate(pass, failures)
		if err != nil {
			return nil, fmt.Errorf("remedy: scenario %s: tick %d: %w", sc.Name, tick, err)
		}
		if sc.RepairReturnDelayTicks > 0 {
			swaps := 0
			for _, ev := range events {
				if ev.Action == ActionSwap {
					swaps++
				}
			}
			if swaps > 0 {
				repairDue[tick+sc.RepairReturnDelayTicks] += swaps
			}
		}

		// Per-tick invariants: the rate limiter's promise is checked
		// from outside the engine, every tick, not just at the end.
		counts := engine.ByModel()
		for i := range sc.Assertions {
			a := &sc.Assertions[i]
			if a.Type != "max_draining" {
				continue
			}
			frac := engine.Policy().MaxDrainFraction
			if a.Fraction != nil {
				frac = *a.Fraction
			}
			for _, mc := range counts {
				if mc.Model != a.model {
					continue
				}
				limit := int(frac * float64(mc.Registered))
				if mc.Draining > limit {
					viol("tick %d: %d %s drives draining, cap %d (%.0f%% of %d)",
						tick, mc.Draining, mc.Model, limit, frac*100, mc.Registered)
				}
			}
		}
	}

	res.Summary = engine.Summary()
	res.Pool = pool.Stats()
	if err := engine.Log().Err(); err != nil {
		return nil, fmt.Errorf("remedy: scenario %s: event log: %w", sc.Name, err)
	}
	res.EventLog = logBuf.Bytes()

	checkEndAssertions(sc, engine, res, viol)
	return res, nil
}

// checkEndAssertions evaluates the end-state half of the assertion set.
func checkEndAssertions(sc *Scenario, engine *Engine, res *RunResult, viol func(string, ...any)) {
	var drives map[uint32]DriveInfo
	bounds := func(a *Assertion, name string, got float64) {
		if a.Min != nil && got < *a.Min {
			viol("%s = %s, want >= %s", name, fmtFloat(got), fmtFloat(*a.Min))
		}
		if a.Max != nil && got > *a.Max {
			viol("%s = %s, want <= %s", name, fmtFloat(got), fmtFloat(*a.Max))
		}
	}
	for i := range sc.Assertions {
		a := &sc.Assertions[i]
		switch a.Type {
		case "state":
			if drives == nil {
				drives = make(map[uint32]DriveInfo)
				for _, d := range engine.Drives() {
					drives[d.ID] = d
				}
			}
			if got := drives[a.Drive].State; got != a.wantState {
				viol("drive %d ends in state %s, want %s", a.Drive, got, a.wantState)
			}
		case "counter":
			bounds(a, a.Counter, counterNames[a.Counter](res.Summary))
		case "cost":
			bounds(a, "total cost", res.Summary.TotalCost)
		case "savings":
			bounds(a, "savings", res.Summary.Savings)
		case "pool_free":
			bounds(a, "pool free", float64(res.Pool.Free))
		}
	}
}

// FormatSummary renders the closing books as a small fixed-order
// report, suitable for CLI output and log tails.
func FormatSummary(s Summary, pool sparepool.PoolStats) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "evaluations=%d cordons=%d uncordons=%d drain_starts=%d swaps=%d\n",
		s.Stats.Evaluations, s.Stats.Cordons, s.Stats.Uncordons, s.Stats.DrainStarts, s.Stats.Swaps)
	fmt.Fprintf(&b, "failures=%d prevented=%d data_losses=%d premature_swaps=%d\n",
		s.Stats.Failures, s.Stats.PreventedLosses, s.Stats.DataLosses, s.PrematureSwaps)
	fmt.Fprintf(&b, "rate_limited_ticks=%d pool_exhausted_ticks=%d pool_free=%d pool_in_use=%d\n",
		s.Stats.RateLimitedTicks, s.Stats.PoolExhaustedTicks, pool.Free, pool.InUse)
	fmt.Fprintf(&b, "cost=%s (swap=%s loss=%s) do_nothing=%s savings=%s\n",
		fmtFloat(s.TotalCost), fmtFloat(s.Stats.SwapCost), fmtFloat(s.Stats.LossCost),
		fmtFloat(s.DoNothingCost), fmtFloat(s.Savings))
	return b.String()
}
