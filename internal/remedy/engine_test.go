package remedy

import (
	"strings"
	"testing"

	"ssdfail/internal/sparepool"
	"ssdfail/internal/trace"
)

// newEngine builds an engine with n spares for tests, failing the test
// on construction errors.
func newEngine(t *testing.T, p Policy, spares int) (*Engine, *sparepool.Pool) {
	t.Helper()
	pool, err := sparepool.NewPool(spares)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(p, pool, nil)
	if err != nil {
		t.Fatal(err)
	}
	return e, pool
}

// feed evaluates one pass with the given (id, score) pairs all on
// model MLCA, failing the test on error.
func feed(t *testing.T, e *Engine, pairs ...any) []Event {
	t.Helper()
	var scores []Score
	for i := 0; i < len(pairs); i += 2 {
		scores = append(scores, Score{
			DriveID: uint32(pairs[i].(int)),
			Model:   trace.MLCA,
			Score:   pairs[i+1].(float64),
		})
	}
	evs, err := e.Evaluate(scores, nil)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

func actions(evs []Event) []Action {
	out := make([]Action, len(evs))
	for i, ev := range evs {
		out[i] = ev.Action
	}
	return out
}

func TestHysteresisCordonsAfterConsecutiveBreaches(t *testing.T) {
	p := Policy{Threshold: 0.9, CordonAfter: 3, MaxDrainFraction: 0} // no draining
	e, _ := newEngine(t, p, 0)

	// Two breaches, a dip, then three breaches: only the third
	// consecutive breach cordons.
	for i, score := range []float64{0.95, 0.95, 0.1, 0.95, 0.99} {
		evs := feed(t, e, 1, score)
		if len(evs) != 0 {
			t.Fatalf("pass %d: unexpected events %v", i, actions(evs))
		}
	}
	evs := feed(t, e, 1, 0.93)
	if len(evs) != 1 || evs[0].Action != ActionCordon {
		t.Fatalf("events = %v, want [cordon]", actions(evs))
	}
	if evs[0].Tick != 6 || evs[0].Drive != 1 || evs[0].Score != 0.93 {
		t.Fatalf("cordon event = %+v", evs[0])
	}
	if st := e.Stats(); st.Cordons != 1 || st.Evaluations != 6 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHysteresisUncordonsAfterConsecutiveClears(t *testing.T) {
	p := Policy{Threshold: 0.9, CordonAfter: 1, UncordonAfter: 2, MaxDrainFraction: 0}
	e, _ := newEngine(t, p, 0)

	feed(t, e, 1, 0.95) // cordon
	// One clear, a breach (resets), then two clears: uncordon on the
	// second consecutive clear.
	if evs := feed(t, e, 1, 0.5); len(evs) != 0 {
		t.Fatalf("one clear must not uncordon: %v", actions(evs))
	}
	if evs := feed(t, e, 1, 0.95); len(evs) != 0 {
		t.Fatalf("breach mid-clears must not act: %v", actions(evs))
	}
	feed(t, e, 1, 0.5)
	evs := feed(t, e, 1, 0.4)
	if len(evs) != 1 || evs[0].Action != ActionUncordon {
		t.Fatalf("events = %v, want [uncordon]", actions(evs))
	}
	counts := e.StateCounts()
	if counts[StateHealthy] != 1 || counts[StateCordoned] != 0 {
		t.Fatalf("state counts = %v", counts)
	}
}

func TestCordonDrainSwapLifecycle(t *testing.T) {
	p := Policy{Threshold: 0.9, CordonAfter: 1, MaxDrainFraction: 1,
		DrainTicks: 2, SwapCost: 1.5, LossCost: 10}
	e, pool := newEngine(t, p, 1)

	// Tick 1: breach -> cordon and drain admission in the same pass.
	evs := feed(t, e, 1, 0.99)
	if got := actions(evs); len(got) != 2 || got[0] != ActionCordon || got[1] != ActionDrainStart {
		t.Fatalf("tick 1 events = %v, want [cordon drain_start]", got)
	}
	// Tick 2: still draining (drainDone = 1+2 = 3).
	if evs := feed(t, e, 1, 0.99); len(evs) != 0 {
		t.Fatalf("tick 2 events = %v, want none", actions(evs))
	}
	// Tick 3: drain due -> swap, spare 1 allocated, cost booked.
	evs = feed(t, e, 1, 0.99)
	if len(evs) != 1 || evs[0].Action != ActionSwap {
		t.Fatalf("tick 3 events = %v, want [swap]", actions(evs))
	}
	if evs[0].Spare != 1 || evs[0].Cost != 1.5 {
		t.Fatalf("swap event = %+v", evs[0])
	}
	if st := pool.Stats(); st.InUse != 1 || st.Free != 0 {
		t.Fatalf("pool = %+v", st)
	}
	st := e.Stats()
	if st.Swaps != 1 || st.SwapCost != 1.5 || st.DrainStarts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// A swapped drive's later scores change nothing.
	if evs := feed(t, e, 1, 0.99); len(evs) != 0 {
		t.Fatalf("swapped drive acted again: %v", actions(evs))
	}
}

func TestZeroDrainTicksSwapsOnAdmissionTick(t *testing.T) {
	p := Policy{Threshold: 0.9, CordonAfter: 1, MaxDrainFraction: 1, DrainTicks: 0, SwapCost: 1}
	e, _ := newEngine(t, p, 1)
	evs := feed(t, e, 1, 0.95)
	got := actions(evs)
	if len(got) != 3 || got[0] != ActionCordon || got[1] != ActionDrainStart || got[2] != ActionSwap {
		t.Fatalf("events = %v, want [cordon drain_start swap]", got)
	}
}

func TestRateLimitNeverExceedsModelCap(t *testing.T) {
	// 10 drives, 20% cap -> at most 2 draining at once. DrainTicks
	// large so drains never complete during the test.
	p := Policy{Threshold: 0.9, CordonAfter: 1, MaxDrainFraction: 0.2, DrainTicks: 100}
	e, _ := newEngine(t, p, 10)
	var scores []Score
	for id := 1; id <= 10; id++ {
		scores = append(scores, Score{DriveID: uint32(id), Model: trace.MLCA, Score: 0.99})
	}
	for tick := 0; tick < 5; tick++ {
		if _, err := e.Evaluate(scores, nil); err != nil {
			t.Fatal(err)
		}
		for _, mc := range e.ByModel() {
			if mc.Draining > mc.DrainCap {
				t.Fatalf("tick %d: %d draining > cap %d", tick, mc.Draining, mc.DrainCap)
			}
		}
	}
	counts := e.StateCounts()
	if counts[StateDraining] != 2 || counts[StateCordoned] != 8 {
		t.Fatalf("state counts = %v, want 2 draining, 8 cordoned", counts)
	}
	if st := e.Stats(); st.RateLimitedTicks == 0 {
		t.Fatal("rate-limited deferrals were not counted")
	}
}

func TestRateLimitAdmissionIsFIFOByCordonTick(t *testing.T) {
	// Cap 1: drive 5 cordons first (tick 1), drive 1 second (tick 2).
	// When the slot frees, drive 5 — the longer waiter — wins despite
	// its higher ID.
	p := Policy{Threshold: 0.9, CordonAfter: 1, MaxDrainFraction: 0.5, DrainTicks: 1, SwapCost: 1}
	e, _ := newEngine(t, p, 2)
	// Two drives registered -> cap = floor(0.5*2) = 1.
	feed(t, e, 5, 0.95, 1, 0.1) // tick 1: drive 5 cordons and drains
	feed(t, e, 5, 0.95, 1, 0.95)
	// tick 2: drive 1 cordons, slot occupied by 5; tick 2 >= drainDone(2) -> 5 swaps.
	// tick 3: slot free, drive 1 admitted.
	evs := feed(t, e, 1, 0.95)
	var drainStarts []uint32
	for _, ev := range e.Log().Recent(0) {
		if ev.Action == ActionDrainStart {
			drainStarts = append(drainStarts, ev.Drive)
		}
	}
	if len(drainStarts) != 2 || drainStarts[0] != 5 || drainStarts[1] != 1 {
		t.Fatalf("drain admission order = %v, want [5 1] (FIFO by cordon tick); tick-3 events %v",
			drainStarts, actions(evs))
	}
}

func TestPoolExhaustionBlocksSwapUntilRestock(t *testing.T) {
	p := Policy{Threshold: 0.9, CordonAfter: 1, MaxDrainFraction: 1, DrainTicks: 0, SwapCost: 1}
	e, pool := newEngine(t, p, 0)

	evs := feed(t, e, 1, 0.95)
	got := actions(evs)
	if len(got) != 3 || got[2] != ActionSwapBlocked {
		t.Fatalf("events = %v, want [... swap_blocked]", got)
	}
	// Retries are silent (no repeated swap_blocked spam) but counted.
	if evs := feed(t, e, 1, 0.95); len(evs) != 0 {
		t.Fatalf("retry emitted events: %v", actions(evs))
	}
	if st := e.Stats(); st.PoolExhaustedTicks != 2 {
		t.Fatalf("pool exhausted ticks = %d, want 2", st.PoolExhaustedTicks)
	}
	// Restock; the parked drain completes on the next evaluation.
	if err := pool.Restock(1); err != nil {
		t.Fatal(err)
	}
	evs = feed(t, e, 1, 0.95)
	if len(evs) != 1 || evs[0].Action != ActionSwap {
		t.Fatalf("post-restock events = %v, want [swap]", actions(evs))
	}
}

func TestFailureAccounting(t *testing.T) {
	p := Policy{Threshold: 0.9, CordonAfter: 1, MaxDrainFraction: 1,
		DrainTicks: 0, SwapCost: 1, LossCost: 20}
	e, _ := newEngine(t, p, 4)

	// Drive 1 swaps, then its ground-truth failure arrives: prevented.
	feed(t, e, 1, 0.95, 2, 0.1, 3, 0.1)
	if _, err := e.Evaluate(nil, []uint32{1}); err != nil {
		t.Fatal(err)
	}
	// Drive 2 fails unremediated: data loss at LossCost.
	evs, err := e.Evaluate(nil, []uint32{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Action != ActionFail || evs[0].Cost != 20 {
		t.Fatalf("fail events = %+v", evs)
	}
	st := e.Stats()
	if st.Failures != 2 || st.PreventedLosses != 1 || st.DataLosses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LossCost != 20 || st.SwapCost != 1 {
		t.Fatalf("costs = swap %v loss %v", st.SwapCost, st.LossCost)
	}
	s := e.Summary()
	if s.TotalCost != 21 || s.DoNothingCost != 40 || s.Savings != 19 {
		t.Fatalf("summary = %+v", s)
	}
	if s.PrematureSwaps != 0 {
		t.Fatalf("premature swaps = %d, want 0 (the swap was justified)", s.PrematureSwaps)
	}

	// Drive 3 swaps and never fails: a premature swap in the summary.
	feed(t, e, 3, 0.95)
	if s := e.Summary(); s.PrematureSwaps != 1 {
		t.Fatalf("premature swaps = %d, want 1", s.PrematureSwaps)
	}
}

func TestFailureWhileDrainingFreesTheSlot(t *testing.T) {
	p := Policy{Threshold: 0.9, CordonAfter: 1, MaxDrainFraction: 0.5, DrainTicks: 100, LossCost: 5}
	e, _ := newEngine(t, p, 2)
	// Two drives -> cap 1. Drive 1 drains; drive 2 waits.
	feed(t, e, 1, 0.95, 2, 0.95)
	counts := e.StateCounts()
	if counts[StateDraining] != 1 || counts[StateCordoned] != 1 {
		t.Fatalf("state counts = %v", counts)
	}
	// Drive 1 dies mid-drain: slot frees, drive 2 admitted same tick.
	if _, err := e.Evaluate([]Score{{DriveID: 2, Model: trace.MLCA, Score: 0.95}}, []uint32{1}); err != nil {
		t.Fatal(err)
	}
	counts = e.StateCounts()
	if counts[StateDraining] != 1 || counts[StateFailed] != 1 {
		t.Fatalf("state counts after mid-drain failure = %v", counts)
	}
}

func TestFailErrors(t *testing.T) {
	e, _ := newEngine(t, Policy{Threshold: 0.9, CordonAfter: 1}, 0)
	if _, err := e.Fail(99); err == nil {
		t.Fatal("failure of unknown drive should error")
	}
	feed(t, e, 1, 0.1)
	if _, err := e.Fail(1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Fail(1); err == nil {
		t.Fatal("double failure should error")
	}
}

func TestModelChangeRejected(t *testing.T) {
	e, _ := newEngine(t, Policy{Threshold: 0.9, CordonAfter: 1}, 0)
	feed(t, e, 1, 0.1)
	_, err := e.Evaluate([]Score{{DriveID: 1, Model: trace.MLCB, Score: 0.5}}, nil)
	if err == nil || !strings.Contains(err.Error(), "model changed") {
		t.Fatalf("err = %v, want model-change rejection", err)
	}
}

func TestPolicyValidation(t *testing.T) {
	pool, _ := sparepool.NewPool(0)
	for _, p := range []Policy{
		{Threshold: -0.1},
		{Threshold: 1.5},
		{Threshold: 0.9, MaxDrainFraction: 2},
		{Threshold: 0.9, DrainTicks: -1},
		{Threshold: 0.9, SwapCost: -1},
	} {
		if _, err := NewEngine(p, pool, nil); err == nil {
			t.Errorf("policy %+v should be rejected", p)
		}
	}
	if _, err := NewEngine(DefaultPolicy(), nil, nil); err == nil {
		t.Error("nil pool should be rejected")
	}
}

func TestEventCanonicalEncoding(t *testing.T) {
	ev := Event{Tick: 12, Action: ActionSwap, Drive: 1003, Model: trace.MLCA,
		Score: 0.95, Spare: 4, Cost: 1.5}
	want := "t=12 action=swap drive=1003 model=MLC-A score=0.95 spare=4 cost=1.5"
	if got := ev.String(); got != want {
		t.Fatalf("encoding = %q, want %q", got, want)
	}
	// Zero spare and cost are omitted.
	ev2 := Event{Tick: 3, Action: ActionCordon, Drive: 7, Model: trace.MLCD, Score: 0.912345}
	want2 := "t=3 action=cordon drive=7 model=MLC-D score=0.912345"
	if got := ev2.String(); got != want2 {
		t.Fatalf("encoding = %q, want %q", got, want2)
	}
}

func TestEventLogRing(t *testing.T) {
	l := NewEventLog(nil, 3)
	for i := 1; i <= 5; i++ {
		l.Append(Event{Tick: uint64(i), Action: ActionCordon, Drive: uint32(i)})
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d", l.Total())
	}
	recent := l.Recent(0)
	if len(recent) != 3 || recent[0].Tick != 3 || recent[2].Tick != 5 {
		t.Fatalf("recent = %+v, want ticks 3..5 oldest first", recent)
	}
	if two := l.Recent(2); len(two) != 2 || two[0].Tick != 4 {
		t.Fatalf("recent(2) = %+v", two)
	}
}
