package remedy

import (
	"strings"
	"testing"
)

// validScenario is a minimal well-formed scenario document the error
// cases below mutate.
const validScenario = `{
  "name": "smoke",
  "fleet": [{"model": "MLC-A", "count": 4, "first_id": 1}],
  "policy": {"threshold": 0.9, "cordon_after": 1, "max_drain_fraction": 1, "drain_ticks": 0},
  "spares": 2,
  "ticks": 5,
  "base_score": 0.1,
  "events": [
    {"at": 2, "set_score": {"drive": 1, "score": 0.95}},
    {"at": 4, "fail": {"drive": 2}}
  ],
  "assertions": [
    {"type": "state", "drive": 1, "want": "swapped"},
    {"type": "counter", "counter": "swaps", "min": 1, "max": 1}
  ]
}`

func TestParseScenarioValid(t *testing.T) {
	sc, err := ParseScenario([]byte(validScenario))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "smoke" || sc.Ticks != 5 || len(sc.Events) != 2 {
		t.Fatalf("parsed = %+v", sc)
	}
	p := sc.Policy.Resolve()
	if p.Threshold != 0.9 || p.MaxDrainFraction != 1 {
		t.Fatalf("resolved policy = %+v", p)
	}
	// Unset fields fall back to DefaultPolicy.
	if def := DefaultPolicy(); p.SwapCost != def.SwapCost || p.LossCost != def.LossCost {
		t.Fatalf("policy overlay lost defaults: %+v", p)
	}
}

func TestParseScenarioErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(string) string
		wantErr string
	}{
		{"unknown field", func(s string) string {
			return strings.Replace(s, `"spares"`, `"sparess"`, 1)
		}, "unknown field"},
		{"trailing data", func(s string) string {
			return s + "{}"
		}, "trailing data"},
		{"no name", func(s string) string {
			return strings.Replace(s, `"smoke"`, `""`, 1)
		}, "no name"},
		{"zero ticks", func(s string) string {
			return strings.Replace(s, `"ticks": 5`, `"ticks": 0`, 1)
		}, "ticks must be positive"},
		{"bad model", func(s string) string {
			return strings.Replace(s, `"MLC-A"`, `"MLC-Z"`, 1)
		}, "MLC-Z"},
		{"duplicate drives", func(s string) string {
			return strings.Replace(s, `{"model": "MLC-A", "count": 4, "first_id": 1}`,
				`{"model": "MLC-A", "count": 4, "first_id": 1}, {"model": "MLC-B", "count": 1, "first_id": 2}`, 1)
		}, "declared twice"},
		{"event past end", func(s string) string {
			return strings.Replace(s, `"at": 4`, `"at": 9`, 1)
		}, "outside [1, 5]"},
		{"event with two actions", func(s string) string {
			return strings.Replace(s, `"fail": {"drive": 2}`,
				`"fail": {"drive": 2}, "restock": {"count": 1}`, 1)
		}, "exactly one action"},
		{"event with no action", func(s string) string {
			return strings.Replace(s, `{"at": 4, "fail": {"drive": 2}}`, `{"at": 4}`, 1)
		}, "exactly one action"},
		{"score for undeclared drive", func(s string) string {
			return strings.Replace(s, `"set_score": {"drive": 1`, `"set_score": {"drive": 99`, 1)
		}, "undeclared drive 99"},
		{"bad state name", func(s string) string {
			return strings.Replace(s, `"swapped"`, `"vaporized"`, 1)
		}, "vaporized"},
		{"unknown counter", func(s string) string {
			return strings.Replace(s, `"counter": "swaps"`, `"counter": "swapz"`, 1)
		}, `unknown counter "swapz"`},
		{"min above max", func(s string) string {
			return strings.Replace(s, `"min": 1, "max": 1`, `"min": 3, "max": 1`, 1)
		}, "min 3 > max 1"},
		{"bad policy", func(s string) string {
			return strings.Replace(s, `"threshold": 0.9`, `"threshold": 1.9`, 1)
		}, "threshold"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseScenario([]byte(tc.mutate(validScenario)))
			if err == nil {
				t.Fatalf("mutation accepted; want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestRunSmokeScenario(t *testing.T) {
	sc, err := ParseScenario([]byte(validScenario))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Summary.Stats.Swaps != 1 || res.Summary.Stats.DataLosses != 1 {
		t.Fatalf("summary = %+v", res.Summary)
	}
	if res.Pool.InUse != 1 || res.Pool.Free != 1 {
		t.Fatalf("pool = %+v", res.Pool)
	}
	log := string(res.EventLog)
	for _, want := range []string{
		"t=2 action=cordon drive=1",
		"t=2 action=drain_start drive=1",
		"t=2 action=swap drive=1",
		"t=4 action=fail drive=2",
	} {
		if !strings.Contains(log, want) {
			t.Fatalf("event log missing %q:\n%s", want, log)
		}
	}
}

func TestRunReportsAssertionViolations(t *testing.T) {
	doc := strings.Replace(validScenario,
		`{"type": "counter", "counter": "swaps", "min": 1, "max": 1}`,
		`{"type": "counter", "counter": "swaps", "min": 5}`, 1)
	sc, err := ParseScenario([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 || !strings.Contains(res.Violations[0], "swaps = 1, want >= 5") {
		t.Fatalf("violations = %v", res.Violations)
	}
}

func TestRunRejectsDoubleFailEvent(t *testing.T) {
	doc := strings.Replace(validScenario,
		`{"at": 4, "fail": {"drive": 2}}`,
		`{"at": 3, "fail": {"drive": 2}}, {"at": 4, "fail": {"drive": 2}}`, 1)
	sc, err := ParseScenario([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(sc); err == nil || !strings.Contains(err.Error(), "failed twice") {
		t.Fatalf("err = %v, want double-fail rejection", err)
	}
}

func TestRunIsByteIdentical(t *testing.T) {
	sc, err := ParseScenario([]byte(validScenario))
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if string(again.EventLog) != string(first.EventLog) {
			t.Fatalf("run %d diverged:\n--- first ---\n%s--- again ---\n%s",
				i, first.EventLog, again.EventLog)
		}
	}
	if len(first.EventLog) == 0 {
		t.Fatal("empty event log; determinism check vacuous")
	}
}
