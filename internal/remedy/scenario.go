package remedy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ssdfail/internal/trace"
)

// A scenario is a declarative, replayable remediation workload: a fleet
// definition, a policy, a timed sequence of score and fault events, and
// assertions about what the engine must (and must not) have done. The
// format is strict JSON decoded by the standard library — unknown
// fields are errors, so a typo'd key fails loudly instead of silently
// asserting nothing.

// Scenario is one scenario file, fully decoded and validated.
type Scenario struct {
	// Name identifies the scenario in reports and golden paths.
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Fleet declares the drive population, grouped by model.
	Fleet []FleetGroup `json:"fleet"`
	// Policy is the operating point under test. Omitted numeric fields
	// fall back to DefaultPolicy values field by field.
	Policy PolicySpec `json:"policy"`
	// Spares stocks the pool at tick zero.
	Spares int `json:"spares"`
	// RepairReturnDelayTicks, when positive, models the repair pipeline:
	// every spare a swap consumes re-enters the pool this many ticks
	// later, so sustained remediation is bounded by repair throughput
	// instead of explicit restock events. Returns that would land past
	// the scenario horizon never arrive.
	RepairReturnDelayTicks int `json:"repair_return_delay_ticks,omitempty"`
	// Ticks is the number of evaluation passes to run.
	Ticks int `json:"ticks"`
	// BaseScore is every drive's score until an event changes it.
	BaseScore float64 `json:"base_score"`
	// Events mutate scores, inject failures, and restock spares at
	// given ticks.
	Events []ScenarioEvent `json:"events"`
	// Assertions are checked during and after the run.
	Assertions []Assertion `json:"assertions"`
}

// FleetGroup declares a contiguous block of drives of one model.
type FleetGroup struct {
	Model   string `json:"model"`
	Count   int    `json:"count"`
	FirstID uint32 `json:"first_id"`

	model trace.Model // resolved by Validate
}

// PolicySpec mirrors Policy with pointer fields so a scenario can state
// only what it cares about; nil fields take the DefaultPolicy value.
type PolicySpec struct {
	Threshold        *float64 `json:"threshold,omitempty"`
	CordonAfter      *int     `json:"cordon_after,omitempty"`
	UncordonAfter    *int     `json:"uncordon_after,omitempty"`
	MaxDrainFraction *float64 `json:"max_drain_fraction,omitempty"`
	DrainTicks       *int     `json:"drain_ticks,omitempty"`
	SwapCost         *float64 `json:"swap_cost,omitempty"`
	LossCost         *float64 `json:"loss_cost,omitempty"`
}

// Resolve overlays the spec on DefaultPolicy.
func (ps PolicySpec) Resolve() Policy {
	p := DefaultPolicy()
	if ps.Threshold != nil {
		p.Threshold = *ps.Threshold
	}
	if ps.CordonAfter != nil {
		p.CordonAfter = *ps.CordonAfter
	}
	if ps.UncordonAfter != nil {
		p.UncordonAfter = *ps.UncordonAfter
	}
	if ps.MaxDrainFraction != nil {
		p.MaxDrainFraction = *ps.MaxDrainFraction
	}
	if ps.DrainTicks != nil {
		p.DrainTicks = *ps.DrainTicks
	}
	if ps.SwapCost != nil {
		p.SwapCost = *ps.SwapCost
	}
	if ps.LossCost != nil {
		p.LossCost = *ps.LossCost
	}
	return p
}

// ScenarioEvent is one timed mutation. Exactly one of the action
// fields must be set.
type ScenarioEvent struct {
	// At is the tick (1-based) the event applies on, before that
	// tick's evaluation pass.
	At int `json:"at"`
	// SetScore pins one drive's score until changed again.
	SetScore *ScoreEvent `json:"set_score,omitempty"`
	// SetModelScore pins every drive of a model to one score.
	SetModelScore *ModelScoreEvent `json:"set_model_score,omitempty"`
	// Fail injects a ground-truth drive failure.
	Fail *FailEvent `json:"fail,omitempty"`
	// Restock adds spares to the pool.
	Restock *RestockEvent `json:"restock,omitempty"`
}

// ScoreEvent pins one drive's score.
type ScoreEvent struct {
	Drive uint32  `json:"drive"`
	Score float64 `json:"score"`
}

// ModelScoreEvent pins a whole model's score.
type ModelScoreEvent struct {
	Model string  `json:"model"`
	Score float64 `json:"score"`

	model trace.Model
}

// FailEvent injects a failure.
type FailEvent struct {
	Drive uint32 `json:"drive"`
}

// RestockEvent adds spares.
type RestockEvent struct {
	Count int `json:"count"`
}

// Assertion is one check against the run. Type selects the check:
//
//	"state"        — drive ends the run in state want
//	"counter"      — named engine counter ends within [min, max]
//	"cost"         — total realized cost ends within [min, max]
//	"savings"      — savings vs do-nothing ends within [min, max]
//	"pool_free"    — spares on hand end within [min, max]
//	"max_draining" — at every tick, draining drives of model stay
//	                 <= floor(fraction x registered); fraction omitted
//	                 means the policy's MaxDrainFraction
//
// Min/max are inclusive; a nil bound is unchecked.
type Assertion struct {
	Type     string   `json:"type"`
	Drive    uint32   `json:"drive,omitempty"`
	Want     string   `json:"want,omitempty"`
	Counter  string   `json:"counter,omitempty"`
	Model    string   `json:"model,omitempty"`
	Fraction *float64 `json:"fraction,omitempty"`
	Min      *float64 `json:"min,omitempty"`
	Max      *float64 `json:"max,omitempty"`

	wantState State
	model     trace.Model
}

// counterNames maps assertion counter names to Stats accessors.
var counterNames = map[string]func(Summary) float64{
	"cordons":      func(s Summary) float64 { return float64(s.Stats.Cordons) },
	"uncordons":    func(s Summary) float64 { return float64(s.Stats.Uncordons) },
	"drain_starts": func(s Summary) float64 { return float64(s.Stats.DrainStarts) },
	"swaps":        func(s Summary) float64 { return float64(s.Stats.Swaps) },
	"failures":     func(s Summary) float64 { return float64(s.Stats.Failures) },
	"data_losses":  func(s Summary) float64 { return float64(s.Stats.DataLosses) },
	"prevented_losses": func(s Summary) float64 {
		return float64(s.Stats.PreventedLosses)
	},
	"premature_swaps": func(s Summary) float64 { return float64(s.PrematureSwaps) },
	"rate_limited":    func(s Summary) float64 { return float64(s.Stats.RateLimitedTicks) },
	"pool_exhausted":  func(s Summary) float64 { return float64(s.Stats.PoolExhaustedTicks) },
}

// ParseScenario decodes and validates one scenario document.
func ParseScenario(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("remedy: parsing scenario: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return nil, fmt.Errorf("remedy: trailing data after scenario document")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// LoadScenario reads and parses a scenario file.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := ParseScenario(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// Validate checks structural invariants and resolves model names and
// state names so the runner never re-parses strings.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("remedy: scenario has no name")
	}
	if sc.Ticks <= 0 {
		return fmt.Errorf("remedy: scenario %s: ticks must be positive", sc.Name)
	}
	if sc.Spares < 0 {
		return fmt.Errorf("remedy: scenario %s: negative spares", sc.Name)
	}
	if sc.RepairReturnDelayTicks < 0 {
		return fmt.Errorf("remedy: scenario %s: negative repair_return_delay_ticks", sc.Name)
	}
	if len(sc.Fleet) == 0 {
		return fmt.Errorf("remedy: scenario %s: empty fleet", sc.Name)
	}
	if _, err := sc.Policy.Resolve().withDefaults(); err != nil {
		return fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	drives := make(map[uint32]trace.Model)
	for i := range sc.Fleet {
		g := &sc.Fleet[i]
		m, err := trace.ParseModel(g.Model)
		if err != nil {
			return fmt.Errorf("remedy: scenario %s: fleet group %d: %w", sc.Name, i, err)
		}
		g.model = m
		if g.Count <= 0 {
			return fmt.Errorf("remedy: scenario %s: fleet group %d: count must be positive", sc.Name, i)
		}
		for k := 0; k < g.Count; k++ {
			id := g.FirstID + uint32(k)
			if _, dup := drives[id]; dup {
				return fmt.Errorf("remedy: scenario %s: drive %d declared twice", sc.Name, id)
			}
			drives[id] = m
		}
	}
	for i := range sc.Events {
		ev := &sc.Events[i]
		if ev.At < 1 || ev.At > sc.Ticks {
			return fmt.Errorf("remedy: scenario %s: event %d at tick %d outside [1, %d]",
				sc.Name, i, ev.At, sc.Ticks)
		}
		set := 0
		if ev.SetScore != nil {
			set++
			if _, ok := drives[ev.SetScore.Drive]; !ok {
				return fmt.Errorf("remedy: scenario %s: event %d scores undeclared drive %d",
					sc.Name, i, ev.SetScore.Drive)
			}
		}
		if ev.SetModelScore != nil {
			set++
			m, err := trace.ParseModel(ev.SetModelScore.Model)
			if err != nil {
				return fmt.Errorf("remedy: scenario %s: event %d: %w", sc.Name, i, err)
			}
			ev.SetModelScore.model = m
		}
		if ev.Fail != nil {
			set++
			if _, ok := drives[ev.Fail.Drive]; !ok {
				return fmt.Errorf("remedy: scenario %s: event %d fails undeclared drive %d",
					sc.Name, i, ev.Fail.Drive)
			}
		}
		if ev.Restock != nil {
			set++
			if ev.Restock.Count <= 0 {
				return fmt.Errorf("remedy: scenario %s: event %d: restock count must be positive",
					sc.Name, i)
			}
		}
		if set != 1 {
			return fmt.Errorf("remedy: scenario %s: event %d must set exactly one action, has %d",
				sc.Name, i, set)
		}
	}
	for i := range sc.Assertions {
		a := &sc.Assertions[i]
		switch a.Type {
		case "state":
			st, err := ParseState(a.Want)
			if err != nil {
				return fmt.Errorf("remedy: scenario %s: assertion %d: %w", sc.Name, i, err)
			}
			a.wantState = st
			if _, ok := drives[a.Drive]; !ok {
				return fmt.Errorf("remedy: scenario %s: assertion %d names undeclared drive %d",
					sc.Name, i, a.Drive)
			}
		case "counter":
			if _, ok := counterNames[a.Counter]; !ok {
				return fmt.Errorf("remedy: scenario %s: assertion %d: unknown counter %q",
					sc.Name, i, a.Counter)
			}
		case "cost", "savings", "pool_free":
			// Bounds-only assertions; nothing to resolve.
		case "max_draining":
			m, err := trace.ParseModel(a.Model)
			if err != nil {
				return fmt.Errorf("remedy: scenario %s: assertion %d: %w", sc.Name, i, err)
			}
			a.model = m
			if a.Fraction != nil && (*a.Fraction < 0 || *a.Fraction > 1) {
				return fmt.Errorf("remedy: scenario %s: assertion %d: fraction %v outside [0, 1]",
					sc.Name, i, *a.Fraction)
			}
		default:
			return fmt.Errorf("remedy: scenario %s: assertion %d: unknown type %q",
				sc.Name, i, a.Type)
		}
		if a.Min != nil && a.Max != nil && *a.Min > *a.Max {
			return fmt.Errorf("remedy: scenario %s: assertion %d: min %v > max %v",
				sc.Name, i, *a.Min, *a.Max)
		}
	}
	return nil
}
