package remedy

import (
	"fmt"
	"math/rand"
	"testing"

	"ssdfail/internal/sparepool"
	"ssdfail/internal/trace"
)

// propFleet is a mixed-model fleet for the property runs: drive IDs
// are assigned round-robin across models so no model owns a contiguous
// ID block.
type propDrive struct {
	id    uint32
	model trace.Model
}

func propFleet(n int) []propDrive {
	fleet := make([]propDrive, n)
	for i := range fleet {
		fleet[i] = propDrive{id: uint32(i + 1), model: trace.Models[i%trace.NumModels]}
	}
	return fleet
}

// TestPropertyDrainNeverExceedsModelCap drives the engine with seeded
// random score streams and failures and asserts, after every single
// evaluation pass, that no model ever has more drives draining than
// floor(MaxDrainFraction x registered). This is the rate limiter's
// contract, checked from outside the engine.
func TestPropertyDrainNeverExceedsModelCap(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			p := Policy{
				Threshold:        0.5 + rng.Float64()*0.4,
				CordonAfter:      1 + rng.Intn(4),
				UncordonAfter:    1 + rng.Intn(4),
				MaxDrainFraction: rng.Float64() * 0.5,
				DrainTicks:       rng.Intn(6),
				SwapCost:         1,
				LossCost:         20,
			}
			fleet := propFleet(12 + rng.Intn(24))
			pool, err := sparepool.NewPool(rng.Intn(len(fleet)))
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewEngine(p, pool, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range fleet {
				if err := e.Register(d.id, d.model); err != nil {
					t.Fatal(err)
				}
			}
			dead := make(map[uint32]bool)
			for tick := 0; tick < 200; tick++ {
				var scores []Score
				var failures []uint32
				for _, d := range fleet {
					if dead[d.id] {
						continue
					}
					// Occasionally a live drive dies this tick.
					if rng.Float64() < 0.005 {
						dead[d.id] = true
						failures = append(failures, d.id)
						continue
					}
					// Most drives report most ticks; silence is legal.
					if rng.Float64() < 0.9 {
						scores = append(scores, Score{
							DriveID: d.id, Model: d.model, Score: rng.Float64(),
						})
					}
				}
				if _, err := e.Evaluate(scores, failures); err != nil {
					t.Fatalf("tick %d: %v", tick, err)
				}
				for _, mc := range e.ByModel() {
					want := int(p.MaxDrainFraction * float64(mc.Registered))
					if mc.DrainCap != want {
						t.Fatalf("tick %d: %s cap = %d, want floor(%v*%d) = %d",
							tick, mc.Model, mc.DrainCap, p.MaxDrainFraction, mc.Registered, want)
					}
					if mc.Draining > mc.DrainCap {
						t.Fatalf("tick %d: %s has %d draining, cap %d",
							tick, mc.Model, mc.Draining, mc.DrainCap)
					}
				}
			}
		})
	}
}

// TestPropertyNoCordonBeforeConsecutiveBreaches replays seeded flapping
// score streams and checks every cordon event against an independent
// shadow record of each drive's recent scores: a cordon may only fire
// when the drive's last CordonAfter reported scores were all at or
// above the threshold.
func TestPropertyNoCordonBeforeConsecutiveBreaches(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			p := Policy{
				Threshold:        0.7,
				CordonAfter:      2 + rng.Intn(4),
				UncordonAfter:    1 + rng.Intn(3),
				MaxDrainFraction: 1,
				DrainTicks:       1,
				SwapCost:         1,
				LossCost:         20,
			}
			fleet := propFleet(9)
			pool, err := sparepool.NewPool(len(fleet))
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewEngine(p, pool, nil)
			if err != nil {
				t.Fatal(err)
			}
			// recent[id] holds the drive's reported scores, newest last.
			recent := make(map[uint32][]float64)
			for tick := 0; tick < 300; tick++ {
				var scores []Score
				for _, d := range fleet {
					// Flap hard around the threshold.
					s := 0.7 + (rng.Float64()-0.5)*0.3
					scores = append(scores, Score{DriveID: d.id, Model: d.model, Score: s})
					recent[d.id] = append(recent[d.id], s)
					if len(recent[d.id]) > p.CordonAfter {
						recent[d.id] = recent[d.id][1:]
					}
				}
				evs, err := e.Evaluate(scores, nil)
				if err != nil {
					t.Fatalf("tick %d: %v", tick, err)
				}
				for _, ev := range evs {
					if ev.Action != ActionCordon {
						continue
					}
					window := recent[ev.Drive]
					if len(window) < p.CordonAfter {
						t.Fatalf("tick %d: drive %d cordoned after only %d reports, need %d",
							tick, ev.Drive, len(window), p.CordonAfter)
					}
					for _, s := range window {
						if s < p.Threshold {
							t.Fatalf("tick %d: drive %d cordoned with a sub-threshold score %v in its last %d reports %v",
								tick, ev.Drive, s, p.CordonAfter, window)
						}
					}
				}
			}
			if e.Stats().Cordons == 0 {
				t.Fatal("flapping stream produced no cordons at all; property vacuous")
			}
		})
	}
}

// TestPropertyEvaluateDeterministic feeds the identical seeded stream
// to two independent engines and requires byte-identical event logs —
// the replayability contract the scenario goldens rely on.
func TestPropertyEvaluateDeterministic(t *testing.T) {
	run := func(seed, shuffleSeed int64) string {
		rng := rand.New(rand.NewSource(seed))
		shuf := rand.New(rand.NewSource(shuffleSeed))
		p := Policy{Threshold: 0.8, CordonAfter: 2, UncordonAfter: 2,
			MaxDrainFraction: 0.25, DrainTicks: 2, SwapCost: 1, LossCost: 20}
		fleet := propFleet(18)
		pool, _ := sparepool.NewPool(6)
		log := NewEventLog(nil, 4096)
		e, err := NewEngine(p, pool, log)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range fleet {
			if err := e.Register(d.id, d.model); err != nil {
				t.Fatal(err)
			}
		}
		dead := make(map[uint32]bool)
		for tick := 0; tick < 150; tick++ {
			var scores []Score
			var failures []uint32
			for _, d := range fleet {
				if dead[d.id] {
					continue
				}
				if rng.Float64() < 0.01 {
					dead[d.id] = true
					failures = append(failures, d.id)
					continue
				}
				scores = append(scores, Score{DriveID: d.id, Model: d.model, Score: rng.Float64()})
			}
			// Shuffle the pass with a run-specific source: input order
			// must not leak into decisions, so the two runs feed the
			// same scores in different orders.
			shuf.Shuffle(len(scores), func(i, j int) { scores[i], scores[j] = scores[j], scores[i] })
			if _, err := e.Evaluate(scores, failures); err != nil {
				t.Fatalf("tick %d: %v", tick, err)
			}
		}
		var out string
		for _, ev := range log.Recent(0) {
			out += ev.String() + "\n"
		}
		return out
	}
	for seed := int64(7); seed < 12; seed++ {
		a, b := run(seed, seed+1000), run(seed, seed+2000)
		if a != b {
			t.Fatalf("seed %d: two identical runs diverged:\n--- first ---\n%s--- second ---\n%s", seed, a, b)
		}
		if a == "" {
			t.Fatalf("seed %d: run produced no events; determinism check vacuous", seed)
		}
	}
}
