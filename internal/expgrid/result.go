package expgrid

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
)

// TaskResult is the outcome of one grid task.
type TaskResult struct {
	Key                 TaskKey
	AUC                 float64
	TrainRows, TrainPos int
	TestRows, TestPos   int
	Seconds             float64
	Error               string // empty on success
	// Populated only when Spec.KeepScores is set: test scores with row
	// provenance, in base-matrix row order.
	Scores   []float64
	Y        []int8
	Ages     []int32
	DriveIdx []int32
}

// Stats summarizes one engine run.
type Stats struct {
	Workers         int     `json:"workers"`
	Tasks           int     `json:"tasks"`
	WallSeconds     float64 `json:"wall_seconds"`
	TasksPerSec     float64 `json:"tasks_per_sec"`
	CacheHits       int64   `json:"cache_hits"`
	CacheMisses     int64   `json:"cache_misses"`
	CacheEvictions  int64   `json:"cache_evictions"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	PeakMatrixBytes int64   `json:"peak_matrix_bytes"`
}

// Result holds every task's outcome in canonical enumeration order
// (scope-major, then lookahead, classifier, fold) plus run statistics.
type Result struct {
	Tasks []TaskResult
	Stats Stats
}

// Err returns the first task error in canonical order, or nil.
func (r *Result) Err() error {
	for i := range r.Tasks {
		if r.Tasks[i].Error != "" {
			return errors.New(r.Tasks[i].Error)
		}
	}
	return nil
}

// Cell returns the per-fold AUCs of one (scope, classifier, lookahead)
// cell in fold order, and whether the cell exists in the result.
func (r *Result) Cell(scope, classifier string, lookahead int) ([]float64, bool) {
	var aucs []float64
	for i := range r.Tasks {
		k := &r.Tasks[i].Key
		if k.Scope == scope && k.Classifier == classifier && k.Lookahead == lookahead {
			aucs = append(aucs, r.Tasks[i].AUC)
		}
	}
	return aucs, len(aucs) > 0
}

// AUCTable renders every task's AUC as a canonical-order map from the
// task key's string form to the exact float64 (shortest round-trip
// formatting). Two runs of the same spec produce byte-identical tables
// if and only if every AUC is bit-identical — the determinism contract
// checked by tests and the grid benchmark.
func (r *Result) AUCTable() []byte {
	var buf bytes.Buffer
	buf.WriteString("{\n")
	for i := range r.Tasks {
		t := &r.Tasks[i]
		if i > 0 {
			buf.WriteString(",\n")
		}
		fmt.Fprintf(&buf, "  %q: %s", t.Key.String(), strconv.FormatFloat(t.AUC, 'g', -1, 64))
	}
	buf.WriteString("\n}\n")
	return buf.Bytes()
}

// BenchRun is one worker-count measurement in a BenchReport.
type BenchRun struct {
	Stats
	SpeedupOverOneWorker float64 `json:"speedup_over_1_worker,omitempty"`
}

// BenchReport is the schema of BENCH_train.json: the training-grid
// performance trajectory recorded by BenchmarkExperimentGrid and by
// ssdpredict -train-bench.
type BenchReport struct {
	Kind           string     `json:"kind"` // "ssdfail_train_grid"
	GoMaxProcs     int        `json:"go_max_procs"`
	NumCPU         int        `json:"num_cpu"`
	DrivesPerModel int        `json:"drives_per_model"`
	TotalDrives    int        `json:"total_drives"`
	DriveDays      int        `json:"drive_days"`
	Scopes         int        `json:"scopes"`
	Classifiers    int        `json:"classifiers"`
	Lookaheads     []int      `json:"lookaheads"`
	Folds          int        `json:"folds"`
	TasksPerRun    int        `json:"tasks_per_run"`
	Runs           []BenchRun `json:"runs"`
	// AUCsIdentical reports whether every run produced a byte-identical
	// AUC table — the determinism cross-check.
	AUCsIdentical bool `json:"aucs_identical"`
}

// FillSpeedups computes each run's speedup over the workers=1 run, if
// one is present.
func (b *BenchReport) FillSpeedups() {
	var base float64
	for _, r := range b.Runs {
		if r.Workers == 1 {
			base = r.WallSeconds
		}
	}
	if base <= 0 {
		return
	}
	for i := range b.Runs {
		if b.Runs[i].WallSeconds > 0 {
			b.Runs[i].SpeedupOverOneWorker = base / b.Runs[i].WallSeconds
		}
	}
}

// WriteFile writes the report as indented JSON.
func (b *BenchReport) WriteFile(path string) error {
	b.Kind = "ssdfail_train_grid"
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
