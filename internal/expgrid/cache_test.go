package expgrid

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"ssdfail/internal/dataset"
)

// fakeMatrix returns a matrix of n rows with a marker value.
func fakeMatrix(n int, marker float64) *dataset.Matrix {
	m := &dataset.Matrix{Width: 1}
	for i := 0; i < n; i++ {
		m.X = append(m.X, marker)
		m.Y = append(m.Y, 0)
		m.DriveIdx = append(m.DriveIdx, int32(i))
		m.Day = append(m.Day, int32(i))
		m.Age = append(m.Age, int32(i))
	}
	return m
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewMatrixCache(0) // 0 normalizes nowhere here: unbounded only when <= 0
	var builds int64
	var wg sync.WaitGroup
	const callers = 16
	out := make([]*dataset.Matrix, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := c.GetOrBuild("k", func() (*dataset.Matrix, error) {
				atomic.AddInt64(&builds, 1)
				return fakeMatrix(10, 7), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			out[i] = m
		}()
	}
	wg.Wait()
	if builds != 1 {
		t.Fatalf("builder ran %d times, want 1", builds)
	}
	for i := 1; i < callers; i++ {
		if out[i] != out[0] {
			t.Fatal("callers received different matrix instances")
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != callers-1 {
		t.Errorf("stats = %+v, want 1 miss / %d hits", st, callers-1)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	one := matrixBytes(fakeMatrix(100, 0))
	c := NewMatrixCache(2*one + one/2) // room for two matrices
	build := func(marker float64) func() (*dataset.Matrix, error) {
		return func() (*dataset.Matrix, error) { return fakeMatrix(100, marker), nil }
	}
	mustGet := func(key string, marker float64) {
		t.Helper()
		if _, err := c.GetOrBuild(key, build(marker)); err != nil {
			t.Fatal(err)
		}
	}
	mustGet("a", 1)
	mustGet("b", 2)
	mustGet("a", 1) // refresh a; b is now LRU
	mustGet("c", 3) // evicts b
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.CurrentBytes != 2*one {
		t.Fatalf("current bytes = %d, want %d", st.CurrentBytes, 2*one)
	}
	if st.PeakBytes != 3*one {
		t.Fatalf("peak bytes = %d, want %d", st.PeakBytes, 3*one)
	}
	// b rebuilds (miss) and its insertion evicts a — now the LRU behind
	// c and the fresh b.
	before := c.Stats().Misses
	mustGet("b", 2)
	if got := c.Stats().Misses; got != before+1 {
		t.Fatalf("b should have been evicted: misses %d, want %d", got, before+1)
	}
	mustGet("c", 3)
	if got := c.Stats().Misses; got != before+1 {
		t.Fatal("c should still be resident")
	}
	mustGet("a", 1)
	if got := c.Stats().Misses; got != before+2 {
		t.Fatal("a should have been evicted by b's reinsertion")
	}
}

func TestCacheOversizedEntryStillCaches(t *testing.T) {
	c := NewMatrixCache(1) // smaller than any matrix
	if _, err := c.GetOrBuild("big", func() (*dataset.Matrix, error) {
		return fakeMatrix(50, 1), nil
	}); err != nil {
		t.Fatal(err)
	}
	// The newest entry survives even over budget.
	if _, err := c.GetOrBuild("big", func() (*dataset.Matrix, error) {
		t.Fatal("rebuilt resident oversized entry")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheBuildErrorNotCached(t *testing.T) {
	c := NewMatrixCache(-1)
	boom := errors.New("boom")
	if _, err := c.GetOrBuild("k", func() (*dataset.Matrix, error) { return nil, boom }); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	// Next call retries the build.
	m, err := c.GetOrBuild("k", func() (*dataset.Matrix, error) { return fakeMatrix(5, 1), nil })
	if err != nil || m == nil {
		t.Fatalf("retry failed: %v", err)
	}
}
