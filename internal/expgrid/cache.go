package expgrid

import (
	"container/list"
	"sync"

	"ssdfail/internal/dataset"
)

// MatrixCache is a byte-bounded LRU over materialized feature matrices.
// Windowed feature extraction is the dominant cost of the grid and is
// shared by every (classifier, fold) task of a (scope, lookahead) cell,
// so the cache computes each base matrix once and hands out read-only
// references. Concurrent requests for the same key are coalesced
// (single-flight): one caller builds, the rest wait.
//
// Eviction removes a matrix from the cache's accounting only; tasks that
// already hold a reference keep using it (matrices are immutable), and
// the garbage collector reclaims the memory when the last reference
// drops. A later request for an evicted key rebuilds it, which is always
// safe because builders are required to be deterministic pure functions
// of the key.
type MatrixCache struct {
	mu      sync.Mutex
	maxB    int64 // byte budget; <= 0 means unbounded
	curB    int64
	peakB   int64
	entries map[string]*cacheEntry
	lru     *list.List // front = most recently used; holds ready entries only

	hits, misses, evictions int64
}

type cacheEntry struct {
	key   string
	ready chan struct{} // closed when m/err are set
	m     *dataset.Matrix
	err   error
	bytes int64
	elem  *list.Element // nil until ready and while evicted
}

// NewMatrixCache returns a cache bounded to maxBytes (<= 0 = unbounded).
func NewMatrixCache(maxBytes int64) *MatrixCache {
	return &MatrixCache{
		maxB:    maxBytes,
		entries: make(map[string]*cacheEntry),
		lru:     list.New(),
	}
}

// matrixBytes estimates the resident size of a matrix.
func matrixBytes(m *dataset.Matrix) int64 {
	if m == nil {
		return 0
	}
	return int64(len(m.X))*8 + int64(len(m.Y)) + int64(len(m.DriveIdx)+len(m.Day)+len(m.Age))*4
}

// GetOrBuild returns the matrix for key, building it with build on a
// miss. build must be a deterministic function of the key only: the
// cache may call it from any goroutine and may call it again after an
// eviction, and every call must produce an identical matrix. A build
// error is returned to every waiter of that flight but is not cached.
func (c *MatrixCache) GetOrBuild(key string, build func() (*dataset.Matrix, error)) (*dataset.Matrix, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, e.err
		}
		c.touch(e)
		return e.m, nil
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	m, err := build()
	c.mu.Lock()
	e.m, e.err = m, err
	if err != nil {
		// Do not cache failures; let a later caller retry.
		delete(c.entries, key)
	} else {
		e.bytes = matrixBytes(m)
		e.elem = c.lru.PushFront(e)
		c.curB += e.bytes
		if c.curB > c.peakB {
			c.peakB = c.curB
		}
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready)
	return m, err
}

// touch records a hit and refreshes the entry's LRU position.
func (c *MatrixCache) touch(e *cacheEntry) {
	c.mu.Lock()
	c.hits++
	if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
	c.mu.Unlock()
}

// evictLocked drops least-recently-used ready entries until the cache
// fits its budget. The newest entry is never evicted, so a single
// matrix larger than the whole budget still caches (and is replaced by
// the next insertion).
func (c *MatrixCache) evictLocked() {
	if c.maxB <= 0 {
		return
	}
	for c.curB > c.maxB && c.lru.Len() > 1 {
		back := c.lru.Back()
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		e.elem = nil
		delete(c.entries, e.key)
		c.curB -= e.bytes
		c.evictions++
	}
}

// CacheStats is a point-in-time snapshot of cache counters.
type CacheStats struct {
	Hits, Misses, Evictions int64
	CurrentBytes, PeakBytes int64
}

// Stats returns a snapshot of the cache counters.
func (c *MatrixCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		CurrentBytes: c.curB, PeakBytes: c.peakB,
	}
}
