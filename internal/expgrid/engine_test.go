package expgrid

import (
	"bytes"
	"sync"
	"testing"

	"ssdfail/internal/dataset"
	"ssdfail/internal/failure"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/ml"
	"ssdfail/internal/ml/forest"
	"ssdfail/internal/ml/logreg"
	"ssdfail/internal/ml/tree"
	"ssdfail/internal/trace"
)

var (
	fixOnce  sync.Once
	fixFleet *trace.Fleet
	fixAn    *failure.Analysis
	fixErr   error
)

// fixture builds one small shared fleet for all engine tests.
func fixture(t *testing.T) (*trace.Fleet, *failure.Analysis) {
	t.Helper()
	fixOnce.Do(func() {
		fc := fleetsim.DefaultConfig(11, 90)
		fc.HorizonDays = 1095
		if fc.EarlyWindow >= fc.HorizonDays-60 {
			fc.EarlyWindow = (fc.HorizonDays - 60) / 3
		}
		fixFleet, _, fixErr = fleetsim.Generate(fc)
		if fixErr == nil {
			fixAn = failure.Analyze(fixFleet)
		}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixFleet, fixAn
}

// testClassifiers returns two cheap deterministic classifiers.
func testClassifiers(trees int) []ClassifierSpec {
	return []ClassifierSpec{
		{Label: "Logistic Reg.", New: func(seed uint64) ml.Classifier {
			cfg := logreg.DefaultConfig()
			cfg.Seed = seed
			return logreg.New(cfg)
		}},
		{Label: "Random Forest", New: func(seed uint64) ml.Classifier {
			cfg := forest.DefaultConfig()
			cfg.Trees = trees
			cfg.Seed = seed
			cfg.Workers = 1
			return forest.New(cfg)
		}},
	}
}

func testSpec(t *testing.T) Spec {
	f, an := fixture(t)
	return Spec{
		Scopes:            []Scope{{Name: "all", Fleet: f, An: an}},
		Classifiers:       testClassifiers(10),
		Lookaheads:        []int{1, 2},
		Folds:             3,
		Seed:              42,
		TestNegSampleProb: 0.2,
	}
}

// TestEngineDeterminismAcrossWorkers is the tentpole guarantee: the AUC
// table must be byte-identical at one worker and at high concurrency,
// run after run.
func TestEngineDeterminismAcrossWorkers(t *testing.T) {
	var tables [][]byte
	for _, workers := range []int{1, 2, 4, 4} {
		spec := testSpec(t)
		spec.Workers = workers
		res, err := Run(spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := res.Err(); err != nil {
			t.Fatalf("workers=%d: task error: %v", workers, err)
		}
		tables = append(tables, res.AUCTable())
	}
	for i := 1; i < len(tables); i++ {
		if !bytes.Equal(tables[0], tables[i]) {
			t.Fatalf("AUC table differs between run 0 (workers=1) and run %d:\n%s\nvs\n%s",
				i, tables[0], tables[i])
		}
	}
}

// TestEngineResultShape checks canonical ordering, cell retrieval, and
// that AUCs look like discriminative classifier output on this fleet.
func TestEngineResultShape(t *testing.T) {
	spec := testSpec(t)
	spec.Workers = 2
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantTasks := 1 * len(spec.Classifiers) * len(spec.Lookaheads) * spec.Folds
	if len(res.Tasks) != wantTasks {
		t.Fatalf("got %d tasks, want %d", len(res.Tasks), wantTasks)
	}
	// Canonical order: lookahead-major over classifiers over folds.
	i := 0
	for _, n := range spec.Lookaheads {
		for _, cs := range spec.Classifiers {
			for k := 0; k < spec.Folds; k++ {
				got := res.Tasks[i].Key
				want := TaskKey{Scope: "all", Classifier: cs.Label, Lookahead: n, Fold: k}
				if got != want {
					t.Fatalf("task %d key = %v, want %v", i, got, want)
				}
				i++
			}
		}
	}
	for _, cs := range spec.Classifiers {
		aucs, ok := res.Cell("all", cs.Label, 1)
		if !ok || len(aucs) != spec.Folds {
			t.Fatalf("cell (all, %s, 1): ok=%v n=%d", cs.Label, ok, len(aucs))
		}
		for _, a := range aucs {
			if a < 0.55 || a > 1 {
				t.Errorf("%s fold AUC %.3f outside sane range", cs.Label, a)
			}
		}
	}
	if res.Stats.Tasks != wantTasks || res.Stats.WallSeconds <= 0 || res.Stats.TasksPerSec <= 0 {
		t.Errorf("stats incomplete: %+v", res.Stats)
	}
}

// TestEngineCacheReuse pins the cache contract: one miss per
// (scope, lookahead) cell, everything else hits.
func TestEngineCacheReuse(t *testing.T) {
	spec := testSpec(t)
	spec.Workers = 2
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	cells := int64(len(spec.Lookaheads)) // one scope
	tasks := int64(len(res.Tasks))
	if res.Stats.CacheMisses != cells {
		t.Errorf("cache misses = %d, want %d (one per cell)", res.Stats.CacheMisses, cells)
	}
	if res.Stats.CacheHits != tasks-cells {
		t.Errorf("cache hits = %d, want %d", res.Stats.CacheHits, tasks-cells)
	}
	if res.Stats.PeakMatrixBytes <= 0 {
		t.Error("peak matrix bytes not tracked")
	}
	if res.Stats.CacheHitRate <= 0 || res.Stats.CacheHitRate >= 1 {
		t.Errorf("cache hit rate = %v, want in (0,1)", res.Stats.CacheHitRate)
	}
}

// TestEngineTinyCacheStillDeterministic forces evictions and rebuilds
// mid-run and requires results identical to an unbounded-cache run —
// the rebuild-determinism contract of MatrixCache.
func TestEngineTinyCacheStillDeterministic(t *testing.T) {
	unbounded := testSpec(t)
	unbounded.Workers = 2
	unbounded.CacheBytes = -1
	want, err := Run(unbounded)
	if err != nil {
		t.Fatal(err)
	}
	tiny := testSpec(t)
	tiny.Workers = 2
	tiny.CacheBytes = 1 // evict after every insert
	got, err := Run(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.CacheEvictions == 0 {
		t.Error("tiny cache recorded no evictions")
	}
	if !bytes.Equal(want.AUCTable(), got.AUCTable()) {
		t.Fatal("AUC table changed under cache eviction pressure")
	}
}

// TestSplitRowsFoldHygiene checks the §5 methodology invariants on the
// engine's row splitter: train and test never share a drive, test holds
// exactly the fold's rows, and downsampling keeps every positive.
func TestSplitRowsFoldHygiene(t *testing.T) {
	f, an := fixture(t)
	base := dataset.Extract(f, an, dataset.Options{
		Lookahead: 1, NegativeSampleProb: 0.2, Seed: 9, AgeMax: -1,
	})
	folds := dataset.Folds(len(f.Drives), 3, 42)
	for k := 0; k < 3; k++ {
		train, test := splitRows(base, folds, k, 1234, 1)
		seen := make(map[int32]string)
		for _, i := range train {
			seen[base.DriveIdx[i]] = "train"
			if folds[base.DriveIdx[i]] == k {
				t.Fatalf("fold %d: train row %d belongs to test fold", k, i)
			}
		}
		for _, i := range test {
			if folds[base.DriveIdx[i]] != k {
				t.Fatalf("fold %d: test row %d belongs to fold %d", k, i, folds[base.DriveIdx[i]])
			}
			if seen[base.DriveIdx[i]] == "train" {
				t.Fatalf("fold %d: drive %d appears in both train and test", k, base.DriveIdx[i])
			}
		}
		// Every positive outside the fold must survive downsampling, and
		// every fold row must be in test.
		wantTest := 0
		wantPos := 0
		for i := 0; i < base.Len(); i++ {
			if folds[base.DriveIdx[i]] == k {
				wantTest++
			} else if base.Y[i] == 1 {
				wantPos++
			}
		}
		if len(test) != wantTest {
			t.Fatalf("fold %d: test has %d rows, want %d", k, len(test), wantTest)
		}
		gotPos := 0
		for _, i := range train {
			if base.Y[i] == 1 {
				gotPos++
			}
		}
		if gotPos != wantPos {
			t.Fatalf("fold %d: train kept %d positives, want all %d", k, gotPos, wantPos)
		}
		// 1:1 downsampling: negatives within 3x of positives (hash
		// sampling is approximate on small counts).
		gotNeg := len(train) - gotPos
		if wantPos > 20 && (gotNeg < wantPos/3 || gotNeg > wantPos*3) {
			t.Errorf("fold %d: train negatives %d far from 1:1 against %d positives", k, gotNeg, wantPos)
		}
	}
}

// TestEngineKeepScores checks pooled-score provenance: per-task scores
// align with labels and ages, and cover only the task's test fold.
func TestEngineKeepScores(t *testing.T) {
	spec := testSpec(t)
	spec.Classifiers = []ClassifierSpec{{Label: "Decision Tree", New: func(seed uint64) ml.Classifier {
		cfg := tree.DefaultConfig()
		cfg.Seed = seed
		return tree.New(cfg)
	}}}
	spec.Lookaheads = []int{1}
	spec.Workers = 2
	spec.KeepScores = true
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	f, _ := fixture(t)
	folds := dataset.Folds(len(f.Drives), spec.Folds, spec.Seed)
	total := 0
	for i := range res.Tasks {
		tr := &res.Tasks[i]
		if len(tr.Scores) != tr.TestRows || len(tr.Y) != tr.TestRows ||
			len(tr.Ages) != tr.TestRows || len(tr.DriveIdx) != tr.TestRows {
			t.Fatalf("task %v: provenance slices disagree with TestRows=%d", tr.Key, tr.TestRows)
		}
		for _, di := range tr.DriveIdx {
			if folds[di] != tr.Key.Fold {
				t.Fatalf("task %v: pooled row from drive %d of fold %d", tr.Key, di, folds[di])
			}
		}
		total += tr.TestRows
	}
	if total == 0 {
		t.Fatal("no pooled scores")
	}
}

// TestSpecValidation rejects malformed grids.
func TestSpecValidation(t *testing.T) {
	f, an := fixture(t)
	cases := []Spec{
		{},
		{Scopes: []Scope{{Name: "all", Fleet: f, An: an}}},
		{Scopes: []Scope{{Name: "all"}}, Classifiers: testClassifiers(5)},
		{Scopes: []Scope{{Name: "a", Fleet: f, An: an}, {Name: "a", Fleet: f, An: an}},
			Classifiers: testClassifiers(5)},
		{Scopes: []Scope{{Name: "all", Fleet: f, An: an}},
			Classifiers: []ClassifierSpec{{Label: "x", New: nil}}},
		{Scopes: []Scope{{Name: "all", Fleet: f, An: an}},
			Classifiers: testClassifiers(5), Lookaheads: []int{0}},
	}
	for i, spec := range cases {
		if _, err := Run(spec); err == nil {
			t.Errorf("case %d: Run accepted invalid spec", i)
		}
	}
}
