package expgrid

import "fmt"

// TaskKey identifies one unit of work in the §5 experiment grid: train
// and evaluate one classifier on one cross-validation fold of one
// (fleet scope, lookahead) slice. The key is the unit of determinism —
// every random choice a task makes (classifier initialization, training
// downsampling) is seeded from the key alone, so results are independent
// of which worker runs the task, in what order, and at what concurrency.
type TaskKey struct {
	Scope      string // fleet scope: "all" or a drive model name
	Classifier string // classifier label, e.g. "Random Forest"
	Lookahead  int    // prediction window N in days
	Fold       int    // cross-validation fold index
}

// String returns the canonical form of the key. It is part of the seed
// derivation contract: changing it silently reseeds the whole grid, so
// the format is pinned by tests.
func (k TaskKey) String() string {
	return fmt.Sprintf("%s/%s/N=%d/fold=%d", k.Scope, k.Classifier, k.Lookahead, k.Fold)
}

// fnv1a64 hashes s with the 64-bit FNV-1a function.
func fnv1a64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// mix64 is the SplitMix64 finalizer: a bijective avalanche so that keys
// differing in a single character produce uncorrelated seeds.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Seed derives the task's classifier seed from the base grid seed and
// the full canonical key.
func (k TaskKey) Seed(base uint64) uint64 {
	return mix64(base ^ fnv1a64(k.String()))
}

// SampleSeed derives the seed for train-set downsampling. It omits the
// classifier so that every classifier evaluated on the same
// (scope, lookahead, fold) cell trains on the same rows — the paired
// design that makes Table 6's per-column comparisons meaningful.
func (k TaskKey) SampleSeed(base uint64) uint64 {
	flat := TaskKey{Scope: k.Scope, Lookahead: k.Lookahead, Fold: k.Fold}
	return mix64(base ^ fnv1a64(flat.String()) ^ 0x5a17)
}

// hash01 maps (seed, row index) to a uniform float64 in [0, 1) without
// any sequential RNG state, so per-row sampling decisions are
// order-independent and identical at any worker count.
func hash01(seed uint64, i int) float64 {
	x := mix64(seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
	return float64(x>>11) / (1 << 53)
}

// DeriveSeed is the repo-wide seed-derivation contract exported for
// consumers outside the grid: mix a base seed with a canonical string
// key through the same FNV-1a + SplitMix64 pipeline the grid's tasks
// use. The continuous-learning trainer keys retrain seeds on the
// snapshot LSN ("learn/retrain/lsn=<lsn>"), so retraining from the same
// WAL prefix reproduces the same model at any worker count.
func DeriveSeed(base uint64, key string) uint64 {
	return mix64(base ^ fnv1a64(key))
}

// Hash01 is the exported form of the grid's stateless per-index uniform
// draw: it maps (seed, index) to [0, 1) with no sequential RNG state,
// so membership decisions (e.g. the trainer's held-out drive partition,
// keyed by drive ID) are stable as the population grows and identical
// at any worker count.
func Hash01(seed uint64, i int) float64 { return hash01(seed, i) }
