package expgrid

import (
	"math"
	"testing"
)

// TestTaskKeyCanonicalForm pins the canonical string, which is part of
// the seed-derivation contract: changing it reseeds every experiment and
// must show up as a deliberate golden-file update, not a silent drift.
func TestTaskKeyCanonicalForm(t *testing.T) {
	k := TaskKey{Scope: "all", Classifier: "Random Forest", Lookahead: 7, Fold: 3}
	if got, want := k.String(), "all/Random Forest/N=7/fold=3"; got != want {
		t.Fatalf("canonical form = %q, want %q", got, want)
	}
}

// TestTaskSeedStability pins derived seeds for a few keys so that any
// change to the hash or the canonical form fails loudly.
func TestTaskSeedStability(t *testing.T) {
	cases := []struct {
		key  TaskKey
		base uint64
	}{
		{TaskKey{Scope: "all", Classifier: "Random Forest", Lookahead: 1, Fold: 0}, 42},
		{TaskKey{Scope: "MLC-A", Classifier: "k-NN", Lookahead: 7, Fold: 4}, 42},
		{TaskKey{Scope: "all", Classifier: "SVM", Lookahead: 2, Fold: 1}, 7},
	}
	for _, c := range cases {
		s1, s2 := c.key.Seed(c.base), c.key.Seed(c.base)
		if s1 != s2 {
			t.Fatalf("%v: Seed not stable: %d vs %d", c.key, s1, s2)
		}
		if c.key.SampleSeed(c.base) != c.key.SampleSeed(c.base) {
			t.Fatalf("%v: SampleSeed not stable", c.key)
		}
	}
	// Distinctness: different keys and bases must not collide.
	seen := make(map[uint64]TaskKey)
	for _, c := range cases {
		s := c.key.Seed(c.base)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between %v and %v", prev, c.key)
		}
		seen[s] = c.key
	}
	// Classifier-independence of the sampling seed: every classifier in
	// the same cell trains on the same rows.
	a := TaskKey{Scope: "all", Classifier: "SVM", Lookahead: 2, Fold: 1}
	b := TaskKey{Scope: "all", Classifier: "k-NN", Lookahead: 2, Fold: 1}
	if a.SampleSeed(42) != b.SampleSeed(42) {
		t.Error("SampleSeed depends on classifier; paired comparison broken")
	}
	if a.Seed(42) == b.Seed(42) {
		t.Error("classifier seed should differ across classifiers")
	}
}

// TestHash01Uniform sanity-checks the stateless row hash: range, mean,
// and independence from evaluation order.
func TestHash01Uniform(t *testing.T) {
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		v := hash01(99, i)
		if v < 0 || v >= 1 {
			t.Fatalf("hash01 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("hash01 mean = %v, want ~0.5", mean)
	}
	if hash01(99, 5) != hash01(99, 5) {
		t.Error("hash01 not deterministic")
	}
	if hash01(99, 5) == hash01(100, 5) {
		t.Error("hash01 ignores seed")
	}
}
