// Package expgrid is a parallel, deterministic experiment engine for the
// paper's §5 prediction grid. It decomposes the grid — fleet scopes ×
// classifiers × lookahead windows × drive-partitioned CV folds — into
// independent tasks, schedules them dynamically over the shared
// internal/parallel worker pool, and guarantees bit-identical results at
// any worker count: every random choice is keyed by the task's stable
// TaskKey, never by execution order.
//
// The dominant cost of the grid is windowed feature extraction, which is
// identical for every classifier and fold of a (scope, lookahead) cell.
// The engine extracts each cell's base matrix once, caches it in a
// byte-bounded LRU (MatrixCache), and derives per-task train/test sets
// by slicing rows with stateless per-row hashes — so a 6-classifier ×
// 5-fold cell pays for one extraction instead of sixty.
//
// See DESIGN.md §11 for the task decomposition, the seed-derivation
// contract, and the cache-bound policy.
package expgrid

import (
	"errors"
	"fmt"
	"time"

	"ssdfail/internal/dataset"
	"ssdfail/internal/eval"
	"ssdfail/internal/failure"
	"ssdfail/internal/ml"
	"ssdfail/internal/parallel"
	"ssdfail/internal/trace"
)

// DefaultCacheBytes bounds the matrix cache when Spec.CacheBytes is 0:
// large enough to hold the working set of a paper-scale run at two
// concurrent lookaheads, small enough for CI runners.
const DefaultCacheBytes int64 = 1 << 31 // 2 GiB

// Scope is one fleet slice the grid evaluates on — the whole fleet
// ("all") for Table 6, or a single drive model's view for Table 7's
// diagonal.
type Scope struct {
	Name  string
	Fleet *trace.Fleet
	An    *failure.Analysis
}

// ClassifierSpec names a classifier and constructs fresh instances. New
// receives the task seed (derived from the TaskKey) and must return a
// classifier whose Fit is deterministic given that seed — including
// across the classifier's own internal worker count.
type ClassifierSpec struct {
	Label string
	New   func(seed uint64) ml.Classifier
}

// Spec describes a full experiment grid.
type Spec struct {
	Scopes      []Scope
	Classifiers []ClassifierSpec
	Lookaheads  []int
	Folds       int    // drive-partitioned CV folds (default 5)
	Seed        uint64 // base seed; all task seeds derive from it

	// DownsampleRatio is the training negatives-per-positive ratio
	// (default 1, the paper's 1:1).
	DownsampleRatio float64
	// TestNegSampleProb subsamples negatives uniformly in the cached
	// base matrix (<= 0 or >= 1 keeps all). Test folds use the base
	// matrix rows directly — AUC is a rank statistic, so uniform
	// negative subsampling is unbiased — and training downsampling
	// draws from the same thinned pool.
	TestNegSampleProb float64
	// AgeMin/AgeMax restrict rows to an age band (inclusive);
	// AgeMax < 0 means unbounded (0 is normalized to unbounded).
	AgeMin, AgeMax int32
	// WindowDays > 0 appends trailing-window features (dataset.Options).
	WindowDays int32

	Workers    int   // concurrent tasks; <= 0 = all CPUs
	CacheBytes int64 // matrix cache budget; 0 = DefaultCacheBytes, < 0 = unbounded
	// KeepScores retains each task's test scores and row provenance in
	// its TaskResult (for pooled-score figures).
	KeepScores bool
}

// normalized returns a copy of s with defaults filled in.
func (s Spec) normalized() Spec {
	if s.Folds <= 0 {
		s.Folds = 5
	}
	if len(s.Lookaheads) == 0 {
		s.Lookaheads = []int{1}
	}
	if s.DownsampleRatio == 0 {
		s.DownsampleRatio = 1
	}
	if s.AgeMax == 0 {
		s.AgeMax = -1
	}
	if s.CacheBytes == 0 {
		s.CacheBytes = DefaultCacheBytes
	}
	return s
}

// validate rejects specs the engine cannot run deterministically.
func (s *Spec) validate() error {
	if len(s.Scopes) == 0 {
		return errors.New("expgrid: no scopes")
	}
	if len(s.Classifiers) == 0 {
		return errors.New("expgrid: no classifiers")
	}
	seen := make(map[string]bool)
	for _, sc := range s.Scopes {
		if sc.Fleet == nil || sc.An == nil {
			return fmt.Errorf("expgrid: scope %q missing fleet or analysis", sc.Name)
		}
		if seen[sc.Name] {
			return fmt.Errorf("expgrid: duplicate scope %q", sc.Name)
		}
		seen[sc.Name] = true
	}
	labels := make(map[string]bool)
	for _, cs := range s.Classifiers {
		if cs.New == nil {
			return fmt.Errorf("expgrid: classifier %q has no constructor", cs.Label)
		}
		if labels[cs.Label] {
			return fmt.Errorf("expgrid: duplicate classifier label %q", cs.Label)
		}
		labels[cs.Label] = true
	}
	for _, n := range s.Lookaheads {
		if n < 1 {
			return fmt.Errorf("expgrid: lookahead %d < 1", n)
		}
	}
	return nil
}

// task pairs a key with the indices needed to run it.
type task struct {
	key      TaskKey
	scopeIdx int
	clfIdx   int
}

// enumerate lists the grid's tasks in canonical order: scope-major, then
// lookahead, classifier, fold. Grouping a cell's tasks together maximizes
// matrix-cache locality under the LRU bound; the order has no effect on
// results, only on scheduling.
func enumerate(s *Spec) []task {
	var out []task
	for si, sc := range s.Scopes {
		for _, n := range s.Lookaheads {
			for ci, cs := range s.Classifiers {
				for k := 0; k < s.Folds; k++ {
					out = append(out, task{
						key:      TaskKey{Scope: sc.Name, Classifier: cs.Label, Lookahead: n, Fold: k},
						scopeIdx: si,
						clfIdx:   ci,
					})
				}
			}
		}
	}
	return out
}

// cellKey is the matrix-cache key of a (scope, lookahead) cell under the
// spec's extraction options.
func cellKey(s *Spec, scope string, lookahead int) string {
	return fmt.Sprintf("%s|N=%d|w=%d|age=%d..%d|q=%g|seed=%d",
		scope, lookahead, s.WindowDays, s.AgeMin, s.AgeMax, s.TestNegSampleProb, s.Seed)
}

// buildBase extracts the cell's base matrix: every drive of the scope,
// all positives, negatives uniformly thinned to TestNegSampleProb. The
// extraction seed depends only on (spec seed, scope, lookahead), so the
// matrix is identical no matter which task triggers the build.
func buildBase(s *Spec, sc *Scope, lookahead int) (*dataset.Matrix, error) {
	m := dataset.Extract(sc.Fleet, sc.An, dataset.Options{
		Lookahead:          lookahead,
		NegativeSampleProb: s.TestNegSampleProb,
		Seed:               mix64(s.Seed ^ fnv1a64(cellKey(s, sc.Name, lookahead))),
		AgeMin:             s.AgeMin,
		AgeMax:             s.AgeMax,
		WindowDays:         s.WindowDays,
	})
	if m.Len() == 0 {
		return nil, fmt.Errorf("expgrid: scope %q N=%d extracts no rows", sc.Name, lookahead)
	}
	return m, nil
}

// splitRows partitions the base matrix's rows for fold k: test rows are
// the fold's drives (all of them — the base matrix already carries the
// test-time negative subsampling), train rows are the other drives with
// negatives downsampled to ratio negatives per positive by stateless
// per-row hashing. Row decisions depend only on (sampleSeed, row index),
// never on visit order.
func splitRows(m *dataset.Matrix, folds []int, k int, sampleSeed uint64, ratio float64) (train, test []int) {
	var pos, neg int
	for i := 0; i < m.Len(); i++ {
		if folds[m.DriveIdx[i]] != k {
			if m.Y[i] == 1 {
				pos++
			} else {
				neg++
			}
		}
	}
	p := 1.0
	if ratio > 0 && neg > 0 {
		p = float64(pos) * ratio / float64(neg)
	}
	for i := 0; i < m.Len(); i++ {
		if folds[m.DriveIdx[i]] == k {
			test = append(test, i)
			continue
		}
		if m.Y[i] == 1 || p >= 1 || hash01(sampleSeed, i) < p {
			train = append(train, i)
		}
	}
	return train, test
}

// Run executes the grid and returns per-task results in canonical order
// plus run statistics. Tasks that fail record their error and do not
// abort the rest of the grid; Result.Err() surfaces the first failure.
func Run(spec Spec) (*Result, error) {
	spec = spec.normalized()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	tasks := enumerate(&spec)
	cache := NewMatrixCache(spec.CacheBytes)

	// Fold assignment per scope, shared by all of the scope's tasks.
	scopeFolds := make([][]int, len(spec.Scopes))
	for si, sc := range spec.Scopes {
		scopeFolds[si] = dataset.Folds(len(sc.Fleet.Drives), spec.Folds, spec.Seed)
	}

	results := make([]TaskResult, len(tasks))
	start := time.Now() //ssdlint:allow nondeterminism wall time feeds only throughput Stats, never task results
	pool := parallel.NewPool(spec.Workers)
	for i := range tasks {
		i := i
		pool.Submit(func() {
			results[i] = runTask(&spec, cache, scopeFolds, tasks[i])
		})
	}
	pool.Close()
	wall := time.Since(start) //ssdlint:allow nondeterminism wall time feeds only throughput Stats, never task results

	cs := cache.Stats()
	workers := spec.Workers
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	stats := Stats{
		Workers:         workers,
		Tasks:           len(tasks),
		WallSeconds:     wall.Seconds(),
		TasksPerSec:     float64(len(tasks)) / wall.Seconds(),
		CacheHits:       cs.Hits,
		CacheMisses:     cs.Misses,
		CacheEvictions:  cs.Evictions,
		PeakMatrixBytes: cs.PeakBytes,
	}
	if cs.Hits+cs.Misses > 0 {
		stats.CacheHitRate = float64(cs.Hits) / float64(cs.Hits+cs.Misses)
	}
	return &Result{Tasks: results, Stats: stats}, nil
}

// runTask executes one grid task end to end.
func runTask(spec *Spec, cache *MatrixCache, scopeFolds [][]int, t task) TaskResult {
	res := TaskResult{Key: t.key}
	taskStart := time.Now() //ssdlint:allow nondeterminism per-task wall time is diagnostic output, never a model input
	//ssdlint:allow nondeterminism per-task wall time is diagnostic output, never a model input
	defer func() { res.Seconds = time.Since(taskStart).Seconds() }()

	sc := &spec.Scopes[t.scopeIdx]
	base, err := cache.GetOrBuild(cellKey(spec, sc.Name, t.key.Lookahead), func() (*dataset.Matrix, error) {
		return buildBase(spec, sc, t.key.Lookahead)
	})
	if err != nil {
		res.Error = err.Error()
		return res
	}

	trainRows, testRows := splitRows(base, scopeFolds[t.scopeIdx], t.key.Fold,
		t.key.SampleSeed(spec.Seed), spec.DownsampleRatio)
	train := base.Subset(trainRows)
	test := base.Subset(testRows)
	res.TrainRows, res.TestRows = train.Len(), test.Len()
	res.TrainPos, res.TestPos = train.Positives(), test.Positives()
	if res.TrainPos == 0 || res.TestPos == 0 {
		res.Error = fmt.Sprintf("expgrid: %s: fold lacks positives (train %d, test %d); use more drives or fewer folds",
			t.key, res.TrainPos, res.TestPos)
		return res
	}

	clf := spec.Classifiers[t.clfIdx].New(t.key.Seed(spec.Seed))
	if err := clf.Fit(train); err != nil {
		res.Error = fmt.Sprintf("expgrid: %s: %v", t.key, err)
		return res
	}
	scores := ml.ScoreBatch(clf, test)
	res.AUC = eval.AUC(scores, test.Y)
	if spec.KeepScores {
		res.Scores = scores
		res.Y = append([]int8(nil), test.Y...)
		res.Ages = append([]int32(nil), test.Age...)
		res.DriveIdx = append([]int32(nil), test.DriveIdx...)
	}
	return res
}
