package faultfs

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestProxyForwardsAndPartitions(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "pong")
	}))
	defer backend.Close()

	p, err := NewProxy(backend.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Short-timeout client with keep-alives off, so each request dials a
	// fresh connection and partitioned state applies immediately.
	client := &http.Client{
		Timeout:   300 * time.Millisecond,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	url := "http://" + p.Addr() + "/"

	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("through healthy proxy: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "pong" {
		t.Fatalf("body = %q", body)
	}

	// Partitioned: the connection is accepted then starved — the client
	// discovers the fault only via its own deadline, like a real
	// network partition.
	p.Partition()
	if !p.Partitioned() {
		t.Fatal("Partitioned() = false after Partition()")
	}
	start := time.Now()
	if _, err := client.Get(url); err == nil {
		t.Fatal("request through partitioned proxy succeeded")
	}
	if d := time.Since(start); d < 200*time.Millisecond {
		t.Errorf("partitioned request failed after %v; want a timeout, not a refusal", d)
	}

	// Healed: new connections forward again.
	p.Heal()
	resp, err = client.Get(url)
	if err != nil {
		t.Fatalf("through healed proxy: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "pong" {
		t.Fatalf("post-heal body = %q", body)
	}

	accepted, blackholed, copied := p.Stats()
	if accepted < 3 || blackholed != 1 || copied == 0 {
		t.Errorf("stats accepted=%d blackholed=%d copied=%d", accepted, blackholed, copied)
	}
}

func TestProxyPartitionSeversExistingConns(t *testing.T) {
	backend, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	go func() {
		for {
			c, err := backend.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c) // echo
		}
	}()

	p, err := NewProxy(backend.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(conn, buf); err != nil || string(buf) != "hi" {
		t.Fatalf("echo through proxy: %q, %v", buf, err)
	}

	p.Partition()
	conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read on a severed connection succeeded")
	}
}
