// Package faultfs abstracts the small filesystem surface the WAL needs
// behind an interface, so tests can inject faults — failed writes,
// short writes, delays, and whole-process "crashes" — at a precisely
// chosen operation. Three implementations are provided: OS (the real
// filesystem), Mem (an in-memory filesystem for hermetic fast tests),
// and Injector (a wrapper that applies a deterministic fault plan to
// any inner FS).
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// FS is the filesystem surface used by the durability layer.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]fs.DirEntry, error)
	MkdirAll(path string, perm os.FileMode) error
	Stat(name string) (os.FileInfo, error)
	Truncate(name string, size int64) error
	// SyncDir flushes directory metadata (created/renamed/removed
	// entries) to stable storage.
	SyncDir(name string) error
}

// File is one open file handle.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// ---------------------------------------------------------------------------
// Real filesystem.

type osFS struct{}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(o, n string) error                   { return os.Rename(o, n) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) Stat(name string) (os.FileInfo, error)  { return os.Stat(name) }
func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }
func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ---------------------------------------------------------------------------
// In-memory filesystem.

// memFS is a flat in-memory filesystem keyed by cleaned path. It backs
// the crash-recovery tests: after a simulated crash the file contents
// are exactly the bytes written before the kill point.
type memFS struct {
	mu    sync.Mutex
	files map[string]*memNode
	dirs  map[string]bool
}

type memNode struct {
	mu   sync.Mutex
	data []byte
}

// Mem returns an empty in-memory filesystem.
func Mem() FS {
	return &memFS{files: map[string]*memNode{}, dirs: map[string]bool{"/": true, ".": true}}
}

func (m *memFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	name = filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.files[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		n = &memNode{}
		m.files[name] = n
	} else if flag&os.O_TRUNC != 0 {
		n.mu.Lock()
		n.data = n.data[:0]
		n.mu.Unlock()
	}
	return &memFile{node: n, append: flag&os.O_APPEND != 0, writable: flag&(os.O_WRONLY|os.O_RDWR|os.O_APPEND) != 0}, nil
}

func (m *memFS) Rename(o, n string) error {
	o, n = filepath.Clean(o), filepath.Clean(n)
	m.mu.Lock()
	defer m.mu.Unlock()
	node, ok := m.files[o]
	if !ok {
		return &os.PathError{Op: "rename", Path: o, Err: os.ErrNotExist}
	}
	m.files[n] = node
	delete(m.files, o)
	return nil
}

func (m *memFS) Remove(name string) error {
	name = filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

func (m *memFS) ReadDir(name string) ([]fs.DirEntry, error) {
	name = filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for p := range m.files {
		if filepath.Dir(p) == name {
			names = append(names, filepath.Base(p))
		}
	}
	if len(names) == 0 && !m.dirs[name] {
		return nil, &os.PathError{Op: "readdir", Path: name, Err: os.ErrNotExist}
	}
	sort.Strings(names)
	out := make([]fs.DirEntry, len(names))
	for i, b := range names {
		out[i] = memDirEntry(b)
	}
	return out, nil
}

func (m *memFS) MkdirAll(path string, perm os.FileMode) error {
	path = filepath.Clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	for p := path; ; p = filepath.Dir(p) {
		m.dirs[p] = true
		if p == filepath.Dir(p) {
			break
		}
	}
	return nil
}

func (m *memFS) Stat(name string) (os.FileInfo, error) {
	name = filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.files[name]
	if !ok {
		return nil, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
	}
	n.mu.Lock()
	size := int64(len(n.data))
	n.mu.Unlock()
	return memFileInfo{name: filepath.Base(name), size: size}, nil
}

func (m *memFS) Truncate(name string, size int64) error {
	name = filepath.Clean(name)
	m.mu.Lock()
	n, ok := m.files[name]
	m.mu.Unlock()
	if !ok {
		return &os.PathError{Op: "truncate", Path: name, Err: os.ErrNotExist}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if size < 0 || size > int64(len(n.data)) {
		if size < 0 {
			return &os.PathError{Op: "truncate", Path: name, Err: os.ErrInvalid}
		}
		n.data = append(n.data, make([]byte, size-int64(len(n.data)))...)
		return nil
	}
	n.data = n.data[:size]
	return nil
}

func (m *memFS) SyncDir(string) error { return nil }

type memFile struct {
	node     *memNode
	pos      int
	append   bool
	writable bool
	closed   bool
}

func (f *memFile) Read(p []byte) (int, error) {
	if f.closed {
		return 0, os.ErrClosed
	}
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	if f.pos >= len(f.node.data) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[f.pos:])
	f.pos += n
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	if f.closed {
		return 0, os.ErrClosed
	}
	if !f.writable {
		return 0, os.ErrPermission
	}
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	if f.append {
		f.node.data = append(f.node.data, p...)
		return len(p), nil
	}
	// Write at the current position, extending as needed.
	for int64(f.pos)+int64(len(p)) > int64(len(f.node.data)) {
		f.node.data = append(f.node.data, 0)
	}
	copy(f.node.data[f.pos:], p)
	f.pos += len(p)
	return len(p), nil
}

func (f *memFile) Sync() error {
	if f.closed {
		return os.ErrClosed
	}
	return nil
}

func (f *memFile) Close() error {
	if f.closed {
		return os.ErrClosed
	}
	f.closed = true
	return nil
}

type memDirEntry string

func (e memDirEntry) Name() string               { return string(e) }
func (e memDirEntry) IsDir() bool                { return false }
func (e memDirEntry) Type() fs.FileMode          { return 0 }
func (e memDirEntry) Info() (fs.FileInfo, error) { return memFileInfo{name: string(e)}, nil }

type memFileInfo struct {
	name string
	size int64
}

func (i memFileInfo) Name() string       { return i.name }
func (i memFileInfo) Size() int64        { return i.size }
func (i memFileInfo) Mode() os.FileMode  { return 0o644 }
func (i memFileInfo) ModTime() time.Time { return time.Time{} }
func (i memFileInfo) IsDir() bool        { return false }
func (i memFileInfo) Sys() any           { return nil }

// ---------------------------------------------------------------------------
// Fault injection.

// Op classifies filesystem operations for fault targeting.
type Op uint8

const (
	OpAny Op = iota
	OpOpen
	OpRead
	OpWrite
	OpSync
	OpClose
	OpRename
	OpRemove
	OpReadDir
	OpStat
	OpTruncate
	OpMkdir
	OpSyncDir
	numOps
)

var opNames = [numOps]string{
	"any", "open", "read", "write", "sync", "close",
	"rename", "remove", "readdir", "stat", "truncate", "mkdir", "syncdir",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Mode is what happens when a fault triggers.
type Mode uint8

const (
	// ModeFail returns the fault's error without performing the op.
	ModeFail Mode = iota
	// ModeShortWrite writes only Bytes bytes of a write, then errors.
	ModeShortWrite
	// ModeDelay sleeps Delay, then performs the op normally.
	ModeDelay
	// ModeCrash behaves like ModeFail (or ModeShortWrite when Bytes > 0
	// on a write) and additionally fails every subsequent operation:
	// the process "died" and only the bytes already written survive.
	ModeCrash
)

// ErrInjected is the default error returned by triggered faults.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned by every operation after a ModeCrash fault.
var ErrCrashed = errors.New("faultfs: filesystem crashed")

// Fault describes one deterministic fault: the Nth operation (1-based)
// matching Op triggers Mode.
type Fault struct {
	Op    Op
	N     int
	Mode  Mode
	Err   error         // returned error; nil means ErrInjected
	Bytes int           // ModeShortWrite / ModeCrash: bytes written before failing
	Delay time.Duration // ModeDelay
}

// Injector wraps an FS and applies a fault plan. All counting is global
// across files and goroutine-safe, so the Nth write means the Nth write
// anywhere in the wrapped filesystem.
type Injector struct {
	inner FS

	mu      sync.Mutex
	counts  [numOps]int
	faults  []Fault
	crashed bool
}

// New wraps inner with an (initially empty) fault plan.
func New(inner FS) *Injector { return &Injector{inner: inner} }

// Add arms one fault. Multiple faults may be armed; each triggers once.
func (in *Injector) Add(f Fault) {
	if f.Err == nil {
		f.Err = ErrInjected
	}
	in.mu.Lock()
	in.faults = append(in.faults, f)
	in.mu.Unlock()
}

// Crash arms a crash at the nth write operation: the write stores only
// partial bytes of its buffer (clamped to the buffer length), then this
// and every later operation fails with ErrCrashed.
func (in *Injector) Crash(nthWrite, partial int) {
	in.Add(Fault{Op: OpWrite, N: nthWrite, Mode: ModeCrash, Err: ErrCrashed, Bytes: partial})
}

// Count returns how many operations of the given kind have been
// attempted (including failed ones).
func (in *Injector) Count(op Op) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[op]
}

// Crashed reports whether a ModeCrash fault has triggered.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// step counts one operation and returns the triggered fault, if any.
func (in *Injector) step(op Op) (Fault, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counts[op]++
	if in.crashed {
		return Fault{Mode: ModeFail, Err: ErrCrashed}, true
	}
	n := in.counts[op]
	for i, f := range in.faults {
		if f.Op != op && f.Op != OpAny {
			continue
		}
		if f.N != n {
			continue
		}
		if f.Mode == ModeCrash {
			in.crashed = true
		}
		in.faults = append(in.faults[:i], in.faults[i+1:]...)
		return f, true
	}
	return Fault{}, false
}

// do runs fn unless a fault fails the operation first.
func (in *Injector) do(op Op, fn func() error) error {
	f, ok := in.step(op)
	if !ok {
		return fn()
	}
	switch f.Mode {
	case ModeDelay:
		time.Sleep(f.Delay)
		return fn()
	default:
		return f.Err
	}
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	var f File
	err := in.do(OpOpen, func() error {
		var e error
		f, e = in.inner.OpenFile(name, flag, perm)
		return e
	})
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

func (in *Injector) Rename(o, n string) error {
	return in.do(OpRename, func() error { return in.inner.Rename(o, n) })
}

func (in *Injector) Remove(name string) error {
	return in.do(OpRemove, func() error { return in.inner.Remove(name) })
}

func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	var out []fs.DirEntry
	err := in.do(OpReadDir, func() error {
		var e error
		out, e = in.inner.ReadDir(name)
		return e
	})
	return out, err
}

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	return in.do(OpMkdir, func() error { return in.inner.MkdirAll(path, perm) })
}

func (in *Injector) Stat(name string) (os.FileInfo, error) {
	var fi os.FileInfo
	err := in.do(OpStat, func() error {
		var e error
		fi, e = in.inner.Stat(name)
		return e
	})
	return fi, err
}

func (in *Injector) Truncate(name string, size int64) error {
	return in.do(OpTruncate, func() error { return in.inner.Truncate(name, size) })
}

func (in *Injector) SyncDir(name string) error {
	return in.do(OpSyncDir, func() error { return in.inner.SyncDir(name) })
}

type injFile struct {
	in *Injector
	f  File
}

func (f *injFile) Read(p []byte) (int, error) {
	var n int
	err := f.in.do(OpRead, func() error {
		var e error
		n, e = f.f.Read(p)
		return e
	})
	return n, err
}

func (f *injFile) Write(p []byte) (int, error) {
	fault, ok := f.in.step(OpWrite)
	if !ok {
		return f.f.Write(p)
	}
	switch fault.Mode {
	case ModeDelay:
		time.Sleep(fault.Delay)
		return f.f.Write(p)
	case ModeShortWrite, ModeCrash:
		k := fault.Bytes
		if k > len(p) {
			k = len(p)
		}
		n := 0
		if k > 0 {
			n, _ = f.f.Write(p[:k])
		}
		return n, fault.Err
	default:
		return 0, fault.Err
	}
}

func (f *injFile) Sync() error {
	return f.in.do(OpSync, func() error { return f.f.Sync() })
}

func (f *injFile) Close() error {
	return f.in.do(OpClose, func() error { return f.f.Close() })
}

// DescribeFault renders a fault plan entry for test failure messages.
func DescribeFault(f Fault) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s#%d", f.Op, f.N)
	switch f.Mode {
	case ModeShortWrite:
		fmt.Fprintf(&sb, " short-write(%d)", f.Bytes)
	case ModeDelay:
		fmt.Fprintf(&sb, " delay(%v)", f.Delay)
	case ModeCrash:
		fmt.Fprintf(&sb, " crash(partial=%d)", f.Bytes)
	default:
		sb.WriteString(" fail")
	}
	return sb.String()
}
