package faultfs

import (
	"errors"
	"io"
	"os"
	"testing"
	"time"
)

func TestMemFSBasics(t *testing.T) {
	fs := Mem()
	if err := fs.MkdirAll("/d/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fs.OpenFile("/d/sub/a.log", os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"hello ", "world"} {
		if _, err := f.Write([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	fi, err := fs.Stat("/d/sub/a.log")
	if err != nil || fi.Size() != 11 {
		t.Fatalf("stat: %v size %d", err, fi.Size())
	}
	r, err := fs.OpenFile("/d/sub/a.log", os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(r)
	r.Close()
	if err != nil || string(data) != "hello world" {
		t.Fatalf("read %q err %v", data, err)
	}

	if err := fs.Truncate("/d/sub/a.log", 5); err != nil {
		t.Fatal(err)
	}
	if fi, _ := fs.Stat("/d/sub/a.log"); fi.Size() != 5 {
		t.Fatalf("size after truncate = %d", fi.Size())
	}
	if err := fs.Rename("/d/sub/a.log", "/d/sub/b.log"); err != nil {
		t.Fatal(err)
	}
	entries, err := fs.ReadDir("/d/sub")
	if err != nil || len(entries) != 1 || entries[0].Name() != "b.log" {
		t.Fatalf("readdir: %v err %v", entries, err)
	}
	if err := fs.Remove("/d/sub/b.log"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.OpenFile("/d/sub/b.log", os.O_RDONLY, 0); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("open removed: %v", err)
	}
	if _, err := fs.ReadDir("/nope"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("readdir missing dir: %v", err)
	}
}

func TestInjectorFailNthAndShortWrite(t *testing.T) {
	in := New(Mem())
	in.Add(Fault{Op: OpWrite, N: 2, Mode: ModeFail})
	in.Add(Fault{Op: OpWrite, N: 3, Mode: ModeShortWrite, Bytes: 2})
	f, err := in.OpenFile("/x", os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := f.Write([]byte("bbbb")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2: %v, want injected", err)
	}
	n, err := f.Write([]byte("cccc"))
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("write 3: n=%d err=%v, want short write of 2", n, err)
	}
	if _, err := f.Write([]byte("dddd")); err != nil {
		t.Fatalf("write 4: %v", err)
	}
	f.Close()
	if fi, _ := in.Stat("/x"); fi.Size() != 10 { // aaaa + cc + dddd
		t.Fatalf("size = %d, want 10", fi.Size())
	}
	if got := in.Count(OpWrite); got != 4 {
		t.Fatalf("write count = %d, want 4", got)
	}
}

func TestInjectorCrashStopsEverything(t *testing.T) {
	in := New(Mem())
	in.Crash(2, 1)
	f, err := in.OpenFile("/x", os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("zz"))
	if n != 1 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash write: n=%d err=%v", n, err)
	}
	if !in.Crashed() {
		t.Fatal("not crashed")
	}
	if _, err := f.Write([]byte("more")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: %v", err)
	}
	if _, err := in.OpenFile("/y", os.O_WRONLY|os.O_CREATE, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open: %v", err)
	}
	if _, err := in.ReadDir("/"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash readdir: %v", err)
	}
}

func TestInjectorDelay(t *testing.T) {
	in := New(Mem())
	in.Add(Fault{Op: OpSync, N: 1, Mode: ModeDelay, Delay: 20 * time.Millisecond})
	f, err := in.OpenFile("/x", os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("sync returned after %v, want >= 20ms", d)
	}
}
