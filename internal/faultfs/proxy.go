package faultfs

// Proxy extends fault injection beyond the filesystem to the network:
// a TCP forwarder that sits between cluster processes and can be
// partitioned mid-run. It lets the chaos harness cut a node off from
// routers and clients the way a switch failure would — connections
// blackhole rather than refuse, so the far side discovers the
// partition only through its own deadlines — while the node itself
// keeps running (and, crucially, its follower can keep replicating
// over a different path).

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Proxy is a TCP forwarder with partition injection. While
// partitioned, new connections are accepted and then starved
// (blackholed) and existing proxied connections are severed; Heal
// restores normal forwarding for connections made afterwards.
type Proxy struct {
	target string
	ln     net.Listener

	mu          sync.Mutex
	partitioned bool
	conns       map[net.Conn]struct{} // accepted client conns, incl. blackholed
	closed      bool

	accepted    atomic.Uint64
	blackholed  atomic.Uint64
	bytesCopied atomic.Uint64
}

// NewProxy listens on 127.0.0.1:0 and forwards to target (host:port).
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, ln: ln, conns: make(map[net.Conn]struct{})}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (host:port).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Partition cuts the link: existing connections are severed and new
// ones blackhole until Heal.
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.partitioned = true
	for c := range p.conns {
		c.Close() //ssdlint:allow droppederr severing a connection is the fault being injected; the error is the point
		delete(p.conns, c)
	}
	p.mu.Unlock()
}

// Heal restores forwarding for new connections. Connections accepted
// while partitioned stay blackholed — a real network heal does not
// resurrect dead flows either.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.partitioned = false
	p.mu.Unlock()
}

// Partitioned reports the current fault state.
func (p *Proxy) Partitioned() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.partitioned
}

// Close stops the listener and severs everything.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		c.Close() //ssdlint:allow droppederr teardown of an injected-fault conn; nothing durable is at stake
		delete(p.conns, c)
	}
	p.mu.Unlock()
	return p.ln.Close()
}

// Stats reports accepted, blackholed, and forwarded-byte counts.
func (p *Proxy) Stats() (accepted, blackholed, bytesCopied uint64) {
	return p.accepted.Load(), p.blackholed.Load(), p.bytesCopied.Load()
}

func (p *Proxy) acceptLoop() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.accepted.Add(1)
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close() //ssdlint:allow droppederr teardown race with Close; nothing durable is at stake
			return
		}
		p.conns[client] = struct{}{}
		partitioned := p.partitioned
		p.mu.Unlock()
		if partitioned {
			// Blackhole: hold the connection open, never read or forward.
			// The peer's write buffers fill and its deadlines expire —
			// the honest shape of a network partition, unlike a RST.
			p.blackholed.Add(1)
			continue
		}
		go p.forward(client)
	}
}

func (p *Proxy) forward(client net.Conn) {
	upstream, err := net.Dial("tcp", p.target)
	if err != nil {
		p.drop(client)
		return
	}
	p.mu.Lock()
	if p.partitioned || p.closed {
		p.mu.Unlock()
		upstream.Close() //ssdlint:allow droppederr partition raced the dial; the conn is being severed anyway
		p.drop(client)
		return
	}
	p.conns[upstream] = struct{}{}
	p.mu.Unlock()

	done := make(chan struct{}, 2)
	pump := func(dst, src net.Conn) {
		n, _ := io.Copy(dst, src) //ssdlint:allow droppederr a severed proxy conn errors by design; byte count still recorded
		p.bytesCopied.Add(uint64(n))
		done <- struct{}{}
	}
	go pump(upstream, client)
	go pump(client, upstream)
	<-done
	// Half-close is enough for HTTP/1.1 keep-alive semantics here; once
	// either direction ends, sever both and forget the pair.
	p.drop(client)
	p.drop(upstream)
	<-done
}

func (p *Proxy) drop(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.Close() //ssdlint:allow droppederr severing a proxied conn; nothing durable is at stake
}
