package dataset

import (
	"testing"

	"ssdfail/internal/failure"
	"ssdfail/internal/trace"
)

// windowFleet builds one drive with a known error/activity history.
func windowFleet() (*trace.Fleet, *failure.Analysis) {
	d := trace.Drive{ID: 1, Model: trace.MLCA}
	// Days 10..16, with UEs on days 12 and 15, a gap at 13, growing bad
	// blocks, and day 14 idle.
	add := func(day int32, writes uint64, ue uint32, grown uint32) {
		var rec trace.DayRecord
		rec.Day = day
		rec.Age = day - 10
		rec.Writes = writes
		rec.Reads = writes / 2
		rec.Errors[trace.ErrUncorrectable] = ue
		rec.CumErrors[trace.ErrUncorrectable] = 1000 // cumulative, not asserted here
		rec.GrownBadBlocks = grown
		d.Days = append(d.Days, rec)
	}
	add(10, 100, 0, 0)
	add(11, 100, 0, 1)
	add(12, 100, 5, 2)
	add(14, 0, 0, 2) // idle day
	add(15, 100, 3, 4)
	add(16, 100, 0, 4)
	f := &trace.Fleet{Horizon: 100, Drives: []trace.Drive{d}}
	return f, failure.Analyze(f)
}

func TestWindowedExtractWidth(t *testing.T) {
	f, an := windowFleet()
	m := Extract(f, an, Options{Lookahead: 1, AgeMax: -1, WindowDays: 3})
	if m.W() != NumFeatures+NumWindowFeatures {
		t.Fatalf("width = %d, want %d", m.W(), NumFeatures+NumWindowFeatures)
	}
	if m.Len() != 6 {
		t.Fatalf("rows = %d, want 6", m.Len())
	}
	// Plain extraction keeps the standard width.
	plain := Extract(f, an, Options{Lookahead: 1, AgeMax: -1})
	if plain.W() != NumFeatures {
		t.Fatalf("plain width = %d", plain.W())
	}
}

func TestWindowAggregates(t *testing.T) {
	f, an := windowFleet()
	m := Extract(f, an, Options{Lookahead: 1, AgeMax: -1, WindowDays: 3})
	// Find the row for day 16; its 3-day window covers days 14..16
	// (records at 14, 15, 16).
	for i := 0; i < m.Len(); i++ {
		if m.Day[i] != 16 {
			continue
		}
		x := m.Row(i)
		w := x[NumFeatures:]
		if w[WReportDays] != 3 {
			t.Errorf("report days = %v, want 3", w[WReportDays])
		}
		if w[WActiveDays] != 2 { // day 14 is idle
			t.Errorf("active days = %v, want 2", w[WActiveDays])
		}
		if w[WSumWrites] != 200 {
			t.Errorf("window writes = %v, want 200", w[WSumWrites])
		}
		if w[WSumUncorrectable] != 3 { // only day 15's UEs are inside
			t.Errorf("window UE = %v, want 3", w[WSumUncorrectable])
		}
		if w[WGrownBBDelta] != 2 { // grown 2 -> 4 across the window
			t.Errorf("window BB delta = %v, want 2", w[WGrownBBDelta])
		}
		return
	}
	t.Fatal("row for day 16 not found")
}

func TestWindowHandlesGapsAndStart(t *testing.T) {
	f, an := windowFleet()
	m := Extract(f, an, Options{Lookahead: 1, AgeMax: -1, WindowDays: 3})
	// Day 10 (first record): window is just itself.
	for i := 0; i < m.Len(); i++ {
		if m.Day[i] != 10 {
			continue
		}
		w := m.Row(i)[NumFeatures:]
		if w[WReportDays] != 1 || w[WSumWrites] != 100 || w[WGrownBBDelta] != 0 {
			t.Fatalf("first-day window = %v", w)
		}
		return
	}
	t.Fatal("row for day 10 not found")
}

func TestWindowedScalerAndSubset(t *testing.T) {
	f, an := windowFleet()
	m := Extract(f, an, Options{Lookahead: 1, AgeMax: -1, WindowDays: 3})
	s := FitScaler(m)
	if len(s.Mean) != m.W() {
		t.Fatalf("scaler width = %d, want %d", len(s.Mean), m.W())
	}
	scaled := s.Apply(m)
	if scaled.W() != m.W() {
		t.Fatal("Apply lost the width")
	}
	sub := m.Subset([]int{0, 2})
	if sub.W() != m.W() || sub.Len() != 2 {
		t.Fatalf("subset width %d len %d", sub.W(), sub.Len())
	}
	for f2 := 0; f2 < m.W(); f2++ {
		if sub.Row(1)[f2] != m.Row(2)[f2] {
			t.Fatal("subset row content mismatch")
		}
	}
}

func TestAllFeatureNames(t *testing.T) {
	base := AllFeatureNames(NumFeatures)
	if len(base) != NumFeatures {
		t.Fatalf("base names = %d", len(base))
	}
	wide := AllFeatureNames(NumFeatures + NumWindowFeatures)
	if len(wide) != NumFeatures+NumWindowFeatures {
		t.Fatalf("wide names = %d", len(wide))
	}
	if wide[NumFeatures] != "window report days" {
		t.Errorf("first window name = %q", wide[NumFeatures])
	}
	seen := map[string]bool{}
	for _, n := range wide {
		if seen[n] {
			t.Errorf("duplicate name %q", n)
		}
		seen[n] = true
	}
}
