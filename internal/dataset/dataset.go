// Package dataset turns a fleet trace plus its failure reconstruction
// into supervised learning matrices, following the paper's Section 5.1
// methodology: for every workload and error statistic the feature vector
// carries both the day-of-prediction value and the lifetime cumulative
// value; the label marks whether a swap-inducing failure occurs within
// the next N days; folds partition by drive ID so no drive's days are
// split across train and test; and the majority class can be
// downsampled to a 1:1 ratio for training.
package dataset

import (
	"math"

	"ssdfail/internal/failure"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/trace"
)

// Feature indices. The first block mirrors the daily statistics, the
// second their cumulative counterparts, then drive state and age.
const (
	FReadCount = iota
	FWriteCount
	FEraseCount
	FCumReadCount
	FCumWriteCount
	FCumEraseCount
	FPECycles
	FBadBlockDelta // grown bad blocks added since the previous report
	FCumBadBlockCount
	FStatusDead
	FStatusReadOnly
	FErrBase                                      // 10 daily error counts start here
	FCumErrBase  = FErrBase + trace.NumErrorKinds // 10 cumulative error counts
	FDriveAge    = FCumErrBase + trace.NumErrorKinds
	FCorrErrRate = FDriveAge + 1 // correctable errors per operation
	NumFeatures  = FCorrErrRate + 1
)

// FeatureNames returns the display names of all features, in index order,
// using the paper's Figure 16 naming style.
func FeatureNames() []string {
	names := make([]string, NumFeatures)
	names[FReadCount] = "read count"
	names[FWriteCount] = "write count"
	names[FEraseCount] = "erase count"
	names[FCumReadCount] = "cum read count"
	names[FCumWriteCount] = "cum write count"
	names[FCumEraseCount] = "cum erase count"
	names[FPECycles] = "pe cycle count"
	names[FBadBlockDelta] = "bad block delta"
	names[FCumBadBlockCount] = "cum bad block count"
	names[FStatusDead] = "status dead"
	names[FStatusReadOnly] = "status read only"
	for k := 0; k < trace.NumErrorKinds; k++ {
		kind := trace.ErrorKind(k).String()
		names[FErrBase+k] = kind + " error"
		names[FCumErrBase+k] = "cum " + kind + " error"
	}
	names[FDriveAge] = "drive age"
	names[FCorrErrRate] = "corr err rate"
	return names
}

// Matrix is a dense feature matrix with labels and row provenance.
// Rows are stored flat in row-major order. Width is the row stride; the
// zero value means the standard NumFeatures layout, while extensions
// (e.g. trailing-window features) may use wider rows.
type Matrix struct {
	X        []float64
	Y        []int8  // 1 = failure within lookahead, 0 = not
	DriveIdx []int32 // index into the source fleet's Drives
	Day      []int32 // fleet day of the row
	Age      []int32 // drive age of the row
	Width    int     // row stride; 0 means NumFeatures
}

// W returns the row stride.
func (m *Matrix) W() int {
	if m.Width == 0 {
		return NumFeatures
	}
	return m.Width
}

// Len returns the number of rows.
func (m *Matrix) Len() int { return len(m.Y) }

// Row returns the i-th feature vector (a view, not a copy).
func (m *Matrix) Row(i int) []float64 {
	w := m.W()
	return m.X[i*w : (i+1)*w]
}

// Reset empties the matrix for reuse, keeping the row stride and the
// allocated capacity of its slices.
func (m *Matrix) Reset() {
	m.X = m.X[:0]
	m.Y = m.Y[:0]
	m.DriveIdx = m.DriveIdx[:0]
	m.Day = m.Day[:0]
	m.Age = m.Age[:0]
}

// Positives returns the number of positive rows.
func (m *Matrix) Positives() int {
	n := 0
	for _, y := range m.Y {
		if y == 1 {
			n++
		}
	}
	return n
}

// appendRow extracts the feature vector for one record.
func (m *Matrix) appendRow(di int32, r, prev *trace.DayRecord, label int8) {
	base := len(m.X)
	m.X = append(m.X, make([]float64, NumFeatures)...)
	x := m.X[base : base+NumFeatures]

	x[FReadCount] = float64(r.Reads)
	x[FWriteCount] = float64(r.Writes)
	x[FEraseCount] = float64(r.Erases)
	x[FCumReadCount] = float64(r.CumReads)
	x[FCumWriteCount] = float64(r.CumWrites)
	x[FCumEraseCount] = float64(r.CumErases)
	x[FPECycles] = r.PECycles
	if prev != nil && r.GrownBadBlocks >= prev.GrownBadBlocks {
		x[FBadBlockDelta] = float64(r.GrownBadBlocks - prev.GrownBadBlocks)
	} else {
		x[FBadBlockDelta] = float64(r.GrownBadBlocks)
	}
	x[FCumBadBlockCount] = float64(r.BadBlocks())
	if r.Dead {
		x[FStatusDead] = 1
	}
	if r.ReadOnly {
		x[FStatusReadOnly] = 1
	}
	for k := 0; k < trace.NumErrorKinds; k++ {
		x[FErrBase+k] = float64(r.Errors[k])
		x[FCumErrBase+k] = float64(r.CumErrors[k])
	}
	x[FDriveAge] = float64(r.Age)
	x[FCorrErrRate] = float64(r.Errors[trace.ErrCorrectable]) / (float64(r.Reads+r.Writes) + 1)

	m.Y = append(m.Y, label)
	m.DriveIdx = append(m.DriveIdx, di)
	m.Day = append(m.Day, r.Day)
	m.Age = append(m.Age, r.Age)
}

// AppendFeatureRow appends the feature vector of a single record with a
// zero label and no provenance, for scoring live drives outside the
// extraction pipeline. prev may be nil.
func (m *Matrix) AppendFeatureRow(r, prev *trace.DayRecord) {
	m.appendRow(-1, r, prev, 0)
}

// Options controls extraction.
type Options struct {
	// Lookahead N: a row is positive when a reconstructed failure occurs
	// within [day, day+N-1]. Must be >= 1.
	Lookahead int
	// NegativeSampleProb keeps each negative row with this probability
	// (<= 0 or >= 1 keeps all). Positives are always kept. Sampling is
	// deterministic given Seed.
	NegativeSampleProb float64
	Seed               uint64
	// IncludeDrive filters drives (fold selection); nil includes all.
	IncludeDrive func(driveIdx int) bool
	// AgeMin/AgeMax restrict rows to an age band (inclusive); use a
	// negative AgeMax for no upper bound. This implements the paper's
	// §5.3 age-partitioned training.
	AgeMin, AgeMax int32
	// WindowDays > 0 appends trailing-window aggregate features over
	// that many days to every row (see window.go) — an extension beyond
	// the paper that targets its large-N future work.
	WindowDays int32
}

// Extract builds the matrix for a fleet given its failure analysis.
// Rows are emitted only for operational days: reports that fall strictly
// inside a reconstructed non-operational window (after a failure, before
// the corresponding repair re-entry) are skipped, since those days are
// after the event being predicted.
func Extract(f *trace.Fleet, an *failure.Analysis, o Options) *Matrix {
	if o.Lookahead < 1 {
		o.Lookahead = 1
	}
	m := &Matrix{}
	if o.WindowDays > 0 {
		m.Width = NumFeatures + NumWindowFeatures
	}
	rng := fleetsim.NewRNG(o.Seed ^ 0x5ca1ab1e)
	keepNeg := o.NegativeSampleProb > 0 && o.NegativeSampleProb < 1

	for di := range f.Drives {
		if o.IncludeDrive != nil && !o.IncludeDrive(di) {
			continue
		}
		d := &f.Drives[di]
		events := an.PerDrive[di]
		var prev *trace.DayRecord
		ei := 0 // next event whose FailDay >= current day
		for j := range d.Days {
			r := &d.Days[j]
			for ei < len(events) && an.Events[events[ei]].FailDay < r.Day {
				ei++
			}
			// Skip days inside a non-operational window.
			if inNonOpWindow(an, events, r.Day) {
				prev = r
				continue
			}
			if r.Age < o.AgeMin || (o.AgeMax >= 0 && r.Age > o.AgeMax) {
				prev = r
				continue
			}
			var label int8
			if ei < len(events) {
				fd := an.Events[events[ei]].FailDay
				if fd-r.Day < int32(o.Lookahead) {
					label = 1
				}
			}
			if label == 0 && keepNeg && !rng.Bernoulli(o.NegativeSampleProb) {
				prev = r
				continue
			}
			m.appendRow(int32(di), r, prev, label)
			if o.WindowDays > 0 {
				m.appendWindow(d, j, o.WindowDays)
			}
			prev = r
		}
	}
	return m
}

// inNonOpWindow reports whether day falls strictly inside any event's
// (FailDay, ReturnDay-or-infinity) window for the drive.
func inNonOpWindow(an *failure.Analysis, events []int, day int32) bool {
	for _, ei := range events {
		e := &an.Events[ei]
		if day <= e.FailDay {
			continue
		}
		if e.ReturnDay < 0 || day < e.ReturnDay {
			return true
		}
	}
	return false
}

// Downsample returns a matrix with all positive rows and negatives
// sampled uniformly to approximately ratio negatives per positive (the
// paper uses 1:1). Deterministic given seed.
func Downsample(m *Matrix, ratio float64, seed uint64) *Matrix {
	pos := m.Positives()
	neg := m.Len() - pos
	if pos == 0 || neg == 0 {
		return m
	}
	want := float64(pos) * ratio
	p := want / float64(neg)
	if p >= 1 {
		return m
	}
	rng := fleetsim.NewRNG(seed ^ 0xd0d0)
	out := &Matrix{}
	for i := 0; i < m.Len(); i++ {
		if m.Y[i] == 1 || rng.Bernoulli(p) {
			out.copyRow(m, i)
		}
	}
	return out
}

// copyRow appends row i of src to m, propagating the row width.
func (m *Matrix) copyRow(src *Matrix, i int) {
	m.Width = src.Width
	m.X = append(m.X, src.Row(i)...)
	m.Y = append(m.Y, src.Y[i])
	m.DriveIdx = append(m.DriveIdx, src.DriveIdx[i])
	m.Day = append(m.Day, src.Day[i])
	m.Age = append(m.Age, src.Age[i])
}

// Subset returns a new matrix holding the given rows of m.
func (m *Matrix) Subset(rows []int) *Matrix {
	out := &Matrix{}
	for _, i := range rows {
		out.copyRow(m, i)
	}
	return out
}

// Folds assigns each of nDrives drives to one of k folds, shuffling
// deterministically by seed. The paper partitions folds by drive ID so
// that the highly correlated days of a single drive never span the
// train/test split.
func Folds(nDrives, k int, seed uint64) []int {
	rng := fleetsim.NewRNG(seed ^ 0xf01d5)
	perm := make([]int, nDrives)
	for i := range perm {
		perm[i] = i
	}
	for i := nDrives - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	fold := make([]int, nDrives)
	for pos, di := range perm {
		fold[di] = pos % k
	}
	return fold
}

// Scaler standardizes features to zero mean and unit variance, with the
// statistics estimated on the training set only.
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler estimates per-feature means and standard deviations.
func FitScaler(m *Matrix) *Scaler {
	w := m.W()
	s := &Scaler{Mean: make([]float64, w), Std: make([]float64, w)}
	n := float64(m.Len())
	if n == 0 {
		for f := range s.Std {
			s.Std[f] = 1
		}
		return s
	}
	for i := 0; i < m.Len(); i++ {
		row := m.Row(i)
		for f, v := range row {
			s.Mean[f] += v
		}
	}
	for f := range s.Mean {
		s.Mean[f] /= n
	}
	for i := 0; i < m.Len(); i++ {
		row := m.Row(i)
		for f, v := range row {
			d := v - s.Mean[f]
			s.Std[f] += d * d
		}
	}
	for f := range s.Std {
		s.Std[f] = math.Sqrt(s.Std[f] / n)
		if s.Std[f] < 1e-12 {
			s.Std[f] = 1
		}
	}
	return s
}

// Transform standardizes a single feature vector in place.
func (s *Scaler) Transform(row []float64) {
	for f := range row {
		row[f] = (row[f] - s.Mean[f]) / s.Std[f]
	}
}

// Apply returns a standardized copy of the matrix.
func (s *Scaler) Apply(m *Matrix) *Matrix {
	out := &Matrix{
		X:        make([]float64, len(m.X)),
		Y:        m.Y,
		DriveIdx: m.DriveIdx,
		Day:      m.Day,
		Age:      m.Age,
		Width:    m.Width,
	}
	copy(out.X, m.X)
	for i := 0; i < out.Len(); i++ {
		s.Transform(out.Row(i))
	}
	return out
}
