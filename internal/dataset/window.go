package dataset

import "ssdfail/internal/trace"

// Trailing-window features — an extension beyond the paper (its stated
// future work is improving prediction for large lookahead N using drive
// activity over time, §7). Each row gains aggregates over the trailing
// WindowDays of reports, giving the models a short history instead of a
// single day.

// Window feature offsets, relative to NumFeatures.
const (
	WReportDays = iota // reports seen in the window
	WActiveDays        // of which active (reads or writes)
	WSumWrites
	WSumReads
	WSumCorrectable
	WSumUncorrectable
	WSumFinalRead
	WSumErase
	WSumNonTransparent
	WGrownBBDelta // grown bad blocks added across the window
	NumWindowFeatures
)

// WindowFeatureNames returns display names for the window features.
func WindowFeatureNames() []string {
	return []string{
		"window report days", "window active days", "window writes",
		"window reads", "window correctable", "window uncorrectable",
		"window final read", "window erase err", "window non-transparent",
		"window bad block delta",
	}
}

// AllFeatureNames returns the names for a matrix of the given width:
// the standard features, optionally followed by the window block.
func AllFeatureNames(width int) []string {
	names := FeatureNames()
	if width > NumFeatures {
		names = append(names, WindowFeatureNames()...)
	}
	return names[:width]
}

// appendWindow computes the trailing-window aggregates for record j of
// drive d (the window covers days (Day[j]-windowDays, Day[j]]).
func (m *Matrix) appendWindow(d *trace.Drive, j int, windowDays int32) {
	var w [NumWindowFeatures]float64
	r := &d.Days[j]
	firstBB := r.GrownBadBlocks
	for k := j; k >= 0 && d.Days[k].Day > r.Day-windowDays; k-- {
		rec := &d.Days[k]
		w[WReportDays]++
		if rec.Active() {
			w[WActiveDays]++
		}
		w[WSumWrites] += float64(rec.Writes)
		w[WSumReads] += float64(rec.Reads)
		w[WSumCorrectable] += float64(rec.Errors[trace.ErrCorrectable])
		w[WSumUncorrectable] += float64(rec.Errors[trace.ErrUncorrectable])
		w[WSumFinalRead] += float64(rec.Errors[trace.ErrFinalRead])
		w[WSumErase] += float64(rec.Errors[trace.ErrErase])
		w[WSumNonTransparent] += float64(rec.NonTransparentErrors())
		firstBB = rec.GrownBadBlocks
	}
	w[WGrownBBDelta] = float64(r.GrownBadBlocks - firstBB)
	m.X = append(m.X, w[:]...)
}
