package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"ssdfail/internal/failure"
	"ssdfail/internal/fleetsim"
	"ssdfail/internal/trace"
)

// smallFleet builds a deterministic two-drive fleet: drive 0 fails on
// day 14 (swap day 16), drive 1 never fails.
func smallFleet() (*trace.Fleet, *failure.Analysis) {
	mk := func(id uint32, days []int32, active map[int32]bool, swaps ...int32) trace.Drive {
		d := trace.Drive{ID: id, Model: trace.MLCA}
		first := days[0]
		var cumW uint64
		for _, day := range days {
			rec := trace.DayRecord{Day: day, Age: day - first}
			if active[day] {
				rec.Reads, rec.Writes = 50, 100
				cumW += 100
			}
			rec.CumWrites = cumW
			rec.Errors[trace.ErrUncorrectable] = uint32(day % 3)
			rec.CumErrors[trace.ErrUncorrectable] = uint64(day * 2)
			d.Days = append(d.Days, rec)
		}
		for _, s := range swaps {
			d.Swaps = append(d.Swaps, trace.SwapEvent{Day: s})
		}
		return d
	}
	allActive := map[int32]bool{10: true, 11: true, 12: true, 13: true, 14: true, 15: false, 20: true, 21: true}
	d0 := mk(1, []int32{10, 11, 12, 13, 14, 15}, allActive, 16)
	d1 := mk(2, []int32{10, 11, 12, 13, 14, 20, 21}, allActive)
	f := &trace.Fleet{Horizon: 100, Drives: []trace.Drive{d0, d1}}
	return f, failure.Analyze(f)
}

func TestFeatureNamesComplete(t *testing.T) {
	names := FeatureNames()
	if len(names) != NumFeatures {
		t.Fatalf("names = %d, want %d", len(names), NumFeatures)
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" {
			t.Errorf("feature %d has no name", i)
		}
		if seen[n] {
			t.Errorf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
	if names[FDriveAge] != "drive age" {
		t.Errorf("FDriveAge name = %q", names[FDriveAge])
	}
	if names[FCumErrBase+int(trace.ErrUncorrectable)] != "cum uncorrectable error" {
		t.Errorf("cum UE name = %q", names[FCumErrBase+int(trace.ErrUncorrectable)])
	}
}

func TestExtractLabelsLookahead1(t *testing.T) {
	f, an := smallFleet()
	m := Extract(f, an, Options{Lookahead: 1, AgeMax: -1})
	// Drive 0 fail day = 14 (last active before swap 16). With N=1 only
	// day 14 is positive. Day 15 is inside the non-op window -> dropped.
	// Drive 1 contributes 7 negative rows.
	if m.Len() != 5+7 {
		t.Fatalf("rows = %d, want 12", m.Len())
	}
	if got := m.Positives(); got != 1 {
		t.Fatalf("positives = %d, want 1", got)
	}
	for i := 0; i < m.Len(); i++ {
		if m.Y[i] == 1 && (m.DriveIdx[i] != 0 || m.Day[i] != 14) {
			t.Errorf("positive row at drive %d day %d", m.DriveIdx[i], m.Day[i])
		}
	}
}

func TestExtractLabelsLookahead3(t *testing.T) {
	f, an := smallFleet()
	m := Extract(f, an, Options{Lookahead: 3, AgeMax: -1})
	// Days 12, 13, 14 of drive 0 are positive (fail day - day < 3).
	if got := m.Positives(); got != 3 {
		t.Fatalf("positives = %d, want 3", got)
	}
	for i := 0; i < m.Len(); i++ {
		want := int8(0)
		if m.DriveIdx[i] == 0 && m.Day[i] >= 12 && m.Day[i] <= 14 {
			want = 1
		}
		if m.Y[i] != want {
			t.Errorf("day %d drive %d: label %d, want %d", m.Day[i], m.DriveIdx[i], m.Y[i], want)
		}
	}
}

func TestExtractFeatureValues(t *testing.T) {
	f, an := smallFleet()
	m := Extract(f, an, Options{Lookahead: 1, AgeMax: -1})
	// Find drive 0 day 12.
	for i := 0; i < m.Len(); i++ {
		if m.DriveIdx[i] == 0 && m.Day[i] == 12 {
			x := m.Row(i)
			if x[FWriteCount] != 100 {
				t.Errorf("write count = %v", x[FWriteCount])
			}
			if x[FCumWriteCount] != 300 {
				t.Errorf("cum write count = %v", x[FCumWriteCount])
			}
			if x[FDriveAge] != 2 {
				t.Errorf("drive age = %v", x[FDriveAge])
			}
			if x[FErrBase+int(trace.ErrUncorrectable)] != 0 {
				t.Errorf("daily UE = %v", x[FErrBase+int(trace.ErrUncorrectable)])
			}
			if x[FCumErrBase+int(trace.ErrUncorrectable)] != 24 {
				t.Errorf("cum UE = %v", x[FCumErrBase+int(trace.ErrUncorrectable)])
			}
			return
		}
	}
	t.Fatal("row for drive 0 day 12 not found")
}

func TestExtractIncludeDrive(t *testing.T) {
	f, an := smallFleet()
	m := Extract(f, an, Options{Lookahead: 1, AgeMax: -1,
		IncludeDrive: func(di int) bool { return di == 1 }})
	for i := 0; i < m.Len(); i++ {
		if m.DriveIdx[i] != 1 {
			t.Fatalf("row from excluded drive %d", m.DriveIdx[i])
		}
	}
	if m.Positives() != 0 {
		t.Error("drive 1 has no failures")
	}
}

func TestExtractAgeBand(t *testing.T) {
	f, an := smallFleet()
	m := Extract(f, an, Options{Lookahead: 1, AgeMin: 2, AgeMax: 4})
	for i := 0; i < m.Len(); i++ {
		if m.Age[i] < 2 || m.Age[i] > 4 {
			t.Fatalf("row age %d outside [2,4]", m.Age[i])
		}
	}
	if m.Len() == 0 {
		t.Fatal("age band dropped everything")
	}
}

func TestExtractNegativeSampling(t *testing.T) {
	f, an := smallFleet()
	full := Extract(f, an, Options{Lookahead: 1, AgeMax: -1})
	half := Extract(f, an, Options{Lookahead: 1, AgeMax: -1, NegativeSampleProb: 0.5, Seed: 3})
	if half.Positives() != full.Positives() {
		t.Error("sampling must keep all positives")
	}
	if half.Len() >= full.Len() {
		t.Error("sampling did not reduce rows")
	}
	// Deterministic given the seed.
	again := Extract(f, an, Options{Lookahead: 1, AgeMax: -1, NegativeSampleProb: 0.5, Seed: 3})
	if again.Len() != half.Len() {
		t.Error("sampling not deterministic")
	}
}

func TestDownsample(t *testing.T) {
	f, an := smallFleet()
	m := Extract(f, an, Options{Lookahead: 3, AgeMax: -1}) // 3 pos, 9 neg
	ds := Downsample(m, 1.0, 7)
	if ds.Positives() != 3 {
		t.Errorf("downsample lost positives: %d", ds.Positives())
	}
	neg := ds.Len() - ds.Positives()
	if neg > 7 {
		t.Errorf("negatives after 1:1 downsample = %d", neg)
	}
	// Ratio >= all negatives keeps everything.
	if got := Downsample(m, 100, 7); got.Len() != m.Len() {
		t.Error("oversized ratio should keep all rows")
	}
	// All-positive and all-negative inputs pass through.
	onlyPos := m.Subset([]int{0, 1})
	if got := Downsample(onlyPos, 1, 7); got.Len() != 2 {
		t.Error("degenerate input should pass through")
	}
}

func TestSubset(t *testing.T) {
	f, an := smallFleet()
	m := Extract(f, an, Options{Lookahead: 1, AgeMax: -1})
	sub := m.Subset([]int{0, 2})
	if sub.Len() != 2 {
		t.Fatalf("subset len = %d", sub.Len())
	}
	for f := 0; f < NumFeatures; f++ {
		if sub.Row(1)[f] != m.Row(2)[f] {
			t.Fatalf("subset row mismatch at feature %d", f)
		}
	}
	if sub.Day[1] != m.Day[2] || sub.DriveIdx[1] != m.DriveIdx[2] {
		t.Error("subset provenance mismatch")
	}
}

func TestFoldsBalancedAndDeterministic(t *testing.T) {
	folds := Folds(103, 5, 42)
	if len(folds) != 103 {
		t.Fatalf("len = %d", len(folds))
	}
	counts := make([]int, 5)
	for _, f := range folds {
		if f < 0 || f >= 5 {
			t.Fatalf("fold %d out of range", f)
		}
		counts[f]++
	}
	for k, c := range counts {
		if c < 20 || c > 21 {
			t.Errorf("fold %d has %d drives", k, c)
		}
	}
	again := Folds(103, 5, 42)
	for i := range folds {
		if folds[i] != again[i] {
			t.Fatal("folds not deterministic")
		}
	}
	other := Folds(103, 5, 43)
	same := true
	for i := range folds {
		if folds[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical folds")
	}
}

func TestScaler(t *testing.T) {
	f, an := smallFleet()
	m := Extract(f, an, Options{Lookahead: 1, AgeMax: -1})
	s := FitScaler(m)
	scaled := s.Apply(m)
	// Column means ~0 and stds ~1 for non-constant features.
	for feat := 0; feat < NumFeatures; feat++ {
		var mean float64
		for i := 0; i < scaled.Len(); i++ {
			mean += scaled.Row(i)[feat]
		}
		mean /= float64(scaled.Len())
		if math.Abs(mean) > 1e-9 {
			t.Errorf("feature %d mean after scaling = %v", feat, mean)
		}
	}
	// Original is untouched.
	if m.Row(0)[FDriveAge] != 0 && scaled.Row(0)[FDriveAge] == m.Row(0)[FDriveAge] {
		t.Error("Apply mutated the original")
	}
}

func TestScalerEmptyAndConstant(t *testing.T) {
	empty := &Matrix{}
	s := FitScaler(empty)
	for f := range s.Std {
		if s.Std[f] != 1 {
			t.Fatal("empty scaler should have unit stds")
		}
	}
	row := make([]float64, NumFeatures)
	s.Transform(row) // must not panic or divide by zero
	for _, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("transform produced non-finite value")
		}
	}
}

func TestNonOpWindowRowsExcluded(t *testing.T) {
	// Generate a real fleet and verify no emitted row falls in a
	// reconstructed non-operational window.
	cfg := fleetsim.DefaultConfig(5, 60)
	cfg.HorizonDays = 900
	cfg.EarlyWindow = 250
	fleet, _, err := fleetsim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	an := failure.Analyze(fleet)
	m := Extract(fleet, an, Options{Lookahead: 2, AgeMax: -1})
	for i := 0; i < m.Len(); i++ {
		di := int(m.DriveIdx[i])
		for _, ei := range an.PerDrive[di] {
			e := an.Events[ei]
			if m.Day[i] > e.FailDay && (e.ReturnDay < 0 || m.Day[i] < e.ReturnDay) {
				t.Fatalf("row at drive %d day %d lies in non-op window (%d, %d)",
					di, m.Day[i], e.FailDay, e.ReturnDay)
			}
		}
	}
	if m.Positives() == 0 {
		t.Error("expected some positive rows from a real fleet")
	}
}

// Property: labels agree with a brute-force re-derivation.
func TestLabelConsistencyProperty(t *testing.T) {
	cfg := fleetsim.DefaultConfig(11, 25)
	cfg.HorizonDays = 700
	cfg.EarlyWindow = 200
	fleet, _, err := fleetsim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	an := failure.Analyze(fleet)
	failDays := an.FailDaysByDrive()
	prop := func(nRaw uint8) bool {
		n := int(nRaw%10) + 1
		m := Extract(fleet, an, Options{Lookahead: n, AgeMax: -1})
		for i := 0; i < m.Len(); i++ {
			want := int8(0)
			for _, fd := range failDays[m.DriveIdx[i]] {
				if fd >= m.Day[i] && fd-m.Day[i] < int32(n) {
					want = 1
				}
			}
			if m.Y[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
