package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

// TestFoldsPropertyDisjointCover checks, over randomized (nDrives, k,
// seed) triples, the invariants that make drive-partitioned CV valid:
// every drive lands in exactly one fold, every fold index is in range,
// and fold sizes are balanced to within one drive.
func TestFoldsPropertyDisjointCover(t *testing.T) {
	prop := func(nDrives16 uint16, k8 uint8, seed uint64) bool {
		nDrives := int(nDrives16%500) + 1
		k := int(k8%10) + 2
		folds := Folds(nDrives, k, seed)
		if len(folds) != nDrives {
			t.Logf("len(folds) = %d, want %d", len(folds), nDrives)
			return false
		}
		counts := make([]int, k)
		for di, f := range folds {
			if f < 0 || f >= k {
				t.Logf("drive %d assigned out-of-range fold %d (k=%d)", di, f, k)
				return false
			}
			counts[f]++
		}
		// Sizes covering all drives (each drive appears once by
		// construction of the slice) must differ by at most one.
		lo, hi := nDrives, 0
		for _, c := range counts {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if hi-lo > 1 {
			t.Logf("unbalanced folds: sizes %v", counts)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFoldsPropertyDeterministic checks that the assignment is a pure
// function of (nDrives, k, seed) and that different seeds actually
// shuffle (for any non-trivial fleet).
func TestFoldsPropertyDeterministic(t *testing.T) {
	prop := func(nDrives16 uint16, k8 uint8, seed uint64) bool {
		nDrives := int(nDrives16%500) + 20
		k := int(k8%8) + 2
		a := Folds(nDrives, k, seed)
		b := Folds(nDrives, k, seed)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	// Distinct seeds should give distinct permutations almost surely.
	a, b := Folds(200, 5, 1), Folds(200, 5, 2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical fold assignments for 200 drives")
	}
}

// propertyMatrix builds a synthetic matrix with nRows rows over nDrives
// drives, labelling a row positive when its hash-like mix of inputs
// crosses posFrac.
func propertyMatrix(nRows, nDrives int, posFrac float64, seed uint64) *Matrix {
	m := &Matrix{Width: 2}
	state := seed | 1
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	for i := 0; i < nRows; i++ {
		m.X = append(m.X, next(), next())
		var y int8
		if next() < posFrac {
			y = 1
		}
		m.Y = append(m.Y, y)
		m.DriveIdx = append(m.DriveIdx, int32(i%nDrives))
		m.Day = append(m.Day, int32(i))
		m.Age = append(m.Age, int32(i/nDrives))
	}
	return m
}

// TestDownsamplePropertyPreservesPositives checks the paper's 1:1
// downsampling invariants over randomized matrices: every positive row
// survives, negatives only ever shrink, and the achieved ratio is close
// to the requested one.
func TestDownsamplePropertyPreservesPositives(t *testing.T) {
	prop := func(nRows16 uint16, posFrac8 uint8, seed uint64) bool {
		nRows := int(nRows16%4000) + 500
		posFrac := 0.01 + float64(posFrac8%40)/100 // 1%–40% positives
		m := propertyMatrix(nRows, 50, posFrac, seed)
		pos, neg := m.Positives(), m.Len()-m.Positives()
		out := Downsample(m, 1, seed)
		outPos, outNeg := out.Positives(), out.Len()-out.Positives()
		if outPos != pos {
			t.Logf("downsampling dropped positives: %d -> %d", pos, outPos)
			return false
		}
		if outNeg > neg {
			t.Logf("downsampling grew negatives: %d -> %d", neg, outNeg)
			return false
		}
		if pos >= neg {
			// Requested ratio unreachable: matrix must pass through whole.
			return out.Len() == m.Len()
		}
		// Binomial sampling: allow five standard deviations around the
		// requested 1:1 count.
		p := float64(pos) / float64(neg)
		slack := 5*math.Sqrt(float64(neg)*p*(1-p)) + 1
		if math.Abs(float64(outNeg)-float64(pos)) > slack {
			t.Logf("ratio off: %d positives vs %d sampled negatives (slack %.0f)", pos, outNeg, slack)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDownsamplePropertyRowIntegrity checks that surviving rows are
// verbatim copies (features and provenance) of input rows, in input
// order — downsampling must never rewrite or reorder data.
func TestDownsamplePropertyRowIntegrity(t *testing.T) {
	m := propertyMatrix(3000, 40, 0.05, 99)
	out := Downsample(m, 1, 7)
	src := 0
	for i := 0; i < out.Len(); i++ {
		// Find the next input row matching this output row's provenance.
		for src < m.Len() && !(m.DriveIdx[src] == out.DriveIdx[i] && m.Day[src] == out.Day[i]) {
			src++
		}
		if src == m.Len() {
			t.Fatalf("output row %d has no matching input row in order", i)
		}
		if m.Y[src] != out.Y[i] || m.Age[src] != out.Age[i] {
			t.Fatalf("output row %d mutated labels/provenance", i)
		}
		a, b := m.Row(src), out.Row(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("output row %d mutated feature %d", i, j)
			}
		}
		src++
	}
}
