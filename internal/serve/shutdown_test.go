package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"ssdfail/internal/trace"
)

// TestShutdownDrainsInflightBatch checks the drain contract: a batch
// ingest that is mid-flight when graceful shutdown begins must run to
// completion with every accepted record WAL-durable, while requests
// arriving after the drain are cleanly refused — recovery never sees
// partial state from either.
func TestShutdownDrainsInflightBatch(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{
		ModelPath:     fixModelPath,
		WALDir:        dir,
		WALSyncEvery:  1,
		SyncSnapshots: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	const batchSize = 200
	batch := make([]IngestRecord, batchSize)
	for i := range batch {
		rec := crashRec(i, 0)
		batch[i] = WireRecord(uint32(5000+i), trace.Model(i%trace.NumModels), &rec)
	}
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}

	handlerStarted := make(chan struct{})
	var once sync.Once
	inner := s.Handler()
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		once.Do(func() { close(handlerStarted) })
		inner.ServeHTTP(w, r)
	})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Shutdown

	// Stream the batch body through a pipe so the request is provably
	// in-flight — headers and half the body delivered — before shutdown
	// begins.
	pr, pw := io.Pipe()
	type result struct {
		resp *http.Response
		err  error
	}
	respCh := make(chan result, 1)
	go func() {
		req, rerr := http.NewRequest(http.MethodPost, "http://"+ln.Addr().String()+"/v1/ingest/batch", pr)
		if rerr != nil {
			respCh <- result{err: rerr}
			return
		}
		resp, rerr := http.DefaultClient.Do(req)
		respCh <- result{resp: resp, err: rerr}
	}()
	if _, err := pw.Write(body[:len(body)/2]); err != nil {
		t.Fatal(err)
	}
	select {
	case <-handlerStarted:
	case <-time.After(10 * time.Second):
		t.Fatal("batch handler never started")
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(context.Background()) }()
	time.Sleep(50 * time.Millisecond) // let Shutdown enter its drain wait

	if _, err := pw.Write(body[len(body)/2:]); err != nil {
		t.Fatal(err)
	}
	pw.Close() //nolint:errcheck // signals EOF

	res := <-respCh
	if res.err != nil {
		t.Fatalf("in-flight batch failed during drain: %v", res.err)
	}
	defer res.resp.Body.Close()
	if res.resp.StatusCode != http.StatusAccepted {
		t.Fatalf("in-flight batch status = %d, want %d", res.resp.StatusCode, http.StatusAccepted)
	}
	var summary struct {
		Accepted int `json:"accepted"`
		Rejected int `json:"rejected"`
	}
	if err := json.NewDecoder(res.resp.Body).Decode(&summary); err != nil {
		t.Fatal(err)
	}
	if summary.Accepted != batchSize || summary.Rejected != 0 {
		t.Fatalf("drained batch accepted %d / rejected %d, want %d / 0",
			summary.Accepted, summary.Rejected, batchSize)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// After the drain the daemon is gone: a late request is refused
	// outright rather than half-applied.
	late, err := http.Post("http://"+ln.Addr().String()+"/v1/ingest/batch",
		"application/json", bytes.NewReader(body))
	if err == nil {
		late.Body.Close()
		t.Fatalf("request after shutdown succeeded with status %d", late.StatusCode)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("closing durability layer: %v", err)
	}

	// Recover from the WAL: exactly the drained batch, nothing else.
	store2 := NewStore(0, 0)
	j2, err := OpenJournal(store2, JournalOptions{Dir: dir, SyncEvery: 1})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer j2.Close()
	if got := store2.Len(); got != batchSize {
		t.Fatalf("recovered %d drives, want %d", got, batchSize)
	}
	for i := range batch {
		snap, ok := store2.Get(uint32(5000 + i))
		if !ok {
			t.Fatalf("drive %d lost after drain", 5000+i)
		}
		want := crashRec(i, 0)
		if len(snap.Recent) != 1 || snap.Recent[0] != want {
			t.Fatalf("drive %d recovered %+v, want [%+v]", 5000+i, snap.Recent, want)
		}
	}
}
