package serve

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"ssdfail/internal/trace"
)

// rec builds a consistent daily report for tests: day and age advance
// together and cumulative counters grow with the day.
func rec(day int32) trace.DayRecord {
	r := trace.DayRecord{
		Day: day, Age: day + 10,
		Reads: 100, Writes: 50, Erases: 10,
		CumReads: uint64(day) * 100, CumWrites: uint64(day) * 50, CumErases: uint64(day) * 10,
		PECycles: float64(day) * 0.5,
	}
	for k := 0; k < trace.NumErrorKinds; k++ {
		r.CumErrors[k] = uint64(day)
	}
	return r
}

func TestStoreUpsertAndHistory(t *testing.T) {
	s := NewStore(4, 3)
	for day := int32(1); day <= 5; day++ {
		if err := s.Upsert(7, trace.MLCA, rec(day)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if s.Records() != 3 {
		t.Fatalf("Records = %d, want 3 (history cap)", s.Records())
	}
	snap, ok := s.Get(7)
	if !ok {
		t.Fatal("drive 7 missing")
	}
	if len(snap.Recent) != 3 {
		t.Fatalf("recent = %d records, want 3", len(snap.Recent))
	}
	for i, want := range []int32{3, 4, 5} {
		if snap.Recent[i].Day != want {
			t.Fatalf("recent[%d].Day = %d, want %d", i, snap.Recent[i].Day, want)
		}
	}
	if _, ok := s.Get(8); ok {
		t.Fatal("nonexistent drive found")
	}
}

func TestStoreRejectsInvariantViolations(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*trace.DayRecord)
		model  trace.Model
		want   string
	}{
		{"stale day", func(r *trace.DayRecord) { r.Day = 5; r.Age = 15 }, trace.MLCA, "not after last"},
		{"day age mismatch", func(r *trace.DayRecord) { r.Age = 99 }, trace.MLCA, "day delta"},
		{"model change", func(r *trace.DayRecord) {}, trace.MLCB, "model changed"},
		{"factory bb change", func(r *trace.DayRecord) { r.FactoryBadBlocks = 9 }, trace.MLCA, "factory bad blocks"},
		{"grown bb decrease", func(r *trace.DayRecord) { r.GrownBadBlocks = 0 }, trace.MLCA, "grown bad blocks"},
		{"pe decrease", func(r *trace.DayRecord) { r.PECycles = 0.1 }, trace.MLCA, "P/E cycles"},
		{"cum ops decrease", func(r *trace.DayRecord) { r.CumReads = 1 }, trace.MLCA, "op counter decreased"},
		{"cum errors decrease", func(r *trace.DayRecord) { r.CumErrors[0] = 0 }, trace.MLCA, "count decreased"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewStore(1, 4)
			first := rec(5)
			first.GrownBadBlocks = 2
			if err := s.Upsert(1, trace.MLCA, first); err != nil {
				t.Fatal(err)
			}
			next := rec(6)
			next.GrownBadBlocks = 2
			tc.mutate(&next)
			err := s.Upsert(1, tc.model, next)
			if err == nil {
				t.Fatal("violation accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
			// The rejected report must not have replaced the state.
			snap, _ := s.Get(1)
			if got := len(snap.Recent); got != 1 || snap.Recent[0].Day != 5 {
				t.Fatalf("state changed after rejection: %d records, last day %d", got, snap.Recent[0].Day)
			}
		})
	}
}

func TestStoreConcurrentUpserts(t *testing.T) {
	s := NewStore(8, 4)
	const goroutines = 8
	const drivesPer = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < drivesPer; i++ {
				id := uint32(g*drivesPer + i)
				for day := int32(1); day <= 3; day++ {
					if err := s.Upsert(id, trace.MLCD, rec(day)); err != nil {
						panic(fmt.Sprintf("drive %d: %v", id, err))
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != goroutines*drivesPer {
		t.Fatalf("Len = %d, want %d", s.Len(), goroutines*drivesPer)
	}
	units := s.ScoreUnits(0)
	if len(units) != goroutines*drivesPer {
		t.Fatalf("ScoreUnits = %d, want %d", len(units), goroutines*drivesPer)
	}
	for i := range units {
		if units[i].Last.Day != 3 || !units[i].HasPrev || units[i].Prev.Day != 2 {
			t.Fatalf("unit %d: last day %d prev day %d hasPrev %v",
				i, units[i].Last.Day, units[i].Prev.Day, units[i].HasPrev)
		}
	}
}

func TestStoreScoreUnitsSince(t *testing.T) {
	s := NewStore(2, 4)
	if err := s.Upsert(1, trace.MLCA, rec(10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Upsert(2, trace.MLCA, rec(20)); err != nil {
		t.Fatal(err)
	}
	if got := len(s.ScoreUnits(0)); got != 2 {
		t.Fatalf("since 0: %d units, want 2", got)
	}
	units := s.ScoreUnits(15)
	if len(units) != 1 || units[0].ID != 2 {
		t.Fatalf("since 15: got %+v, want only drive 2", units)
	}
	if units[0].HasPrev {
		t.Fatal("single-report drive claims a previous record")
	}
}
