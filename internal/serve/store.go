package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ssdfail/internal/trace"
)

// Store defaults.
const (
	// DefaultShards spreads drive state over this many independently
	// locked shards so concurrent ingest and fleet snapshots contend
	// only per shard.
	DefaultShards = 64
	// DefaultHistory is how many recent daily reports each drive keeps.
	// The standard feature pipeline needs the report being scored plus
	// the previous one (for the bad-block delta); the extra slack keeps
	// a rolling window available for trailing-window features and the
	// drive-inspection endpoint.
	DefaultHistory = 8
)

// Store is a sharded in-memory map of per-drive rolling state. All
// methods are safe for concurrent use.
type Store struct {
	shards  []storeShard
	mask    uint32
	history int
	drives  atomic.Int64
	records atomic.Int64
}

type storeShard struct {
	mu sync.RWMutex
	m  map[uint32]*driveState
}

type driveState struct {
	model  trace.Model
	recent []trace.DayRecord // ascending by Day, at most history entries
}

// NewStore builds a store with the given shard count (rounded up to a
// power of two; <= 0 means DefaultShards) and per-drive history depth
// (<= 1 means DefaultHistory).
func NewStore(shards, history int) *Store {
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if history <= 1 {
		history = DefaultHistory
	}
	s := &Store{shards: make([]storeShard, n), mask: uint32(n - 1), history: history}
	for i := range s.shards {
		s.shards[i].m = make(map[uint32]*driveState)
	}
	return s
}

// shard maps a drive ID to its shard with a multiplicative hash, so
// sequentially assigned IDs still spread across shards.
func (s *Store) shard(id uint32) *storeShard {
	return &s.shards[(id*2654435761)&s.mask]
}

// Upsert appends one daily report to a drive's rolling state, creating
// the drive on first sight. It enforces the per-drive invariants of
// trace.Drive.Validate incrementally against the drive's latest
// retained report: strictly increasing day, matching day/age deltas,
// constant model and factory bad blocks, and monotone cumulative
// counters. A violating report is rejected and the state unchanged.
func (s *Store) Upsert(id uint32, model trace.Model, rec trace.DayRecord) error {
	return s.UpsertCommit(id, model, rec, nil)
}

// UpsertCommit is Upsert with a commit hook: after the record passes
// validation but before it mutates any state, commit (when non-nil) is
// invoked while the shard lock is still held. A commit error aborts the
// upsert with the store unchanged. The durability layer journals the
// record in the hook, so the write-ahead log's append order matches the
// store's apply order per drive and a record is never applied without
// first being logged.
func (s *Store) UpsertCommit(id uint32, model trace.Model, rec trace.DayRecord, commit func() error) error {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.m[id]
	if ok {
		if st.model != model {
			return fmt.Errorf("serve: drive %d model changed from %s to %s", id, st.model, model)
		}
		if len(st.recent) > 0 {
			last := &st.recent[len(st.recent)-1]
			if rec.Day <= last.Day {
				return fmt.Errorf("serve: drive %d day %d not after last ingested day %d", id, rec.Day, last.Day)
			}
			if rec.Day-last.Day != rec.Age-last.Age {
				return fmt.Errorf("serve: drive %d day delta %d != age delta %d",
					id, rec.Day-last.Day, rec.Age-last.Age)
			}
			if rec.FactoryBadBlocks != last.FactoryBadBlocks {
				return fmt.Errorf("serve: drive %d factory bad blocks changed", id)
			}
			if rec.GrownBadBlocks < last.GrownBadBlocks {
				return fmt.Errorf("serve: drive %d grown bad blocks decreased", id)
			}
			if rec.PECycles < last.PECycles {
				return fmt.Errorf("serve: drive %d P/E cycles decreased", id)
			}
			if rec.CumReads < last.CumReads || rec.CumWrites < last.CumWrites || rec.CumErases < last.CumErases {
				return fmt.Errorf("serve: drive %d cumulative op counter decreased", id)
			}
			for k := 0; k < trace.NumErrorKinds; k++ {
				if rec.CumErrors[k] < last.CumErrors[k] {
					return fmt.Errorf("serve: drive %d cumulative %s count decreased", id, trace.ErrorKind(k))
				}
			}
		}
	}
	if commit != nil {
		if err := commit(); err != nil {
			return err
		}
	}
	if !ok {
		st = &driveState{model: model, recent: make([]trace.DayRecord, 0, 2)}
		sh.m[id] = st
		s.drives.Add(1)
	}
	if len(st.recent) == s.history {
		copy(st.recent, st.recent[1:])
		st.recent[len(st.recent)-1] = rec
	} else {
		st.recent = append(st.recent, rec)
		s.records.Add(1)
	}
	return nil
}

// DriveSnapshot is a copy of one drive's rolling state.
type DriveSnapshot struct {
	ID     uint32
	Model  trace.Model
	Recent []trace.DayRecord
}

// Get returns a copy of the drive's state.
func (s *Store) Get(id uint32) (DriveSnapshot, bool) {
	sh := s.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	st, ok := sh.m[id]
	if !ok {
		return DriveSnapshot{}, false
	}
	return DriveSnapshot{
		ID:     id,
		Model:  st.model,
		Recent: append([]trace.DayRecord(nil), st.recent...),
	}, true
}

// Drives copies the full rolling state of every tracked drive, sorted
// by drive ID. Shards are drained one at a time under their read lock,
// so ingest proceeds on other shards concurrently; the copy is the unit
// the durability layer snapshots, and the sort makes two snapshots of
// the same state byte-identical.
func (s *Store) Drives() []DriveSnapshot {
	out := make([]DriveSnapshot, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, st := range sh.m {
			out = append(out, DriveSnapshot{
				ID:     id,
				Model:  st.model,
				Recent: append([]trace.DayRecord(nil), st.recent...),
			})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Restore installs one drive's rolling state wholesale, replacing any
// existing state for that drive and trimming to the history cap. It is
// the recovery-time inverse of Drives and performs no invariant
// validation: the snapshot was validated when its records were first
// ingested.
func (s *Store) Restore(d DriveSnapshot) {
	recent := d.Recent
	if len(recent) > s.history {
		recent = recent[len(recent)-s.history:]
	}
	sh := s.shard(d.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.m[d.ID]
	if !ok {
		st = &driveState{}
		sh.m[d.ID] = st
		s.drives.Add(1)
	} else {
		s.records.Add(-int64(len(st.recent)))
	}
	st.model = d.Model
	st.recent = append([]trace.DayRecord(nil), recent...)
	s.records.Add(int64(len(st.recent)))
}

// Len returns the number of drives currently tracked.
func (s *Store) Len() int { return int(s.drives.Load()) }

// Records returns the number of daily reports currently retained.
func (s *Store) Records() int { return int(s.records.Load()) }

// ScoreUnit is the scoring input for one drive: its latest report plus
// the previous one, copied out of the store so scoring never holds a
// shard lock.
type ScoreUnit struct {
	ID         uint32
	Model      trace.Model
	Last, Prev trace.DayRecord
	HasPrev    bool
}

// ScoreUnits snapshots the whole fleet for batch scoring. Drives whose
// latest report is older than sinceDay are skipped (sinceDay <= 0 keeps
// everything) — the paper's watchlist only considers drives still
// reporting. Shards are drained one at a time under their read lock, so
// ingest proceeds on other shards concurrently.
func (s *Store) ScoreUnits(sinceDay int32) []ScoreUnit {
	units := make([]ScoreUnit, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, st := range sh.m {
			n := len(st.recent)
			if n == 0 || st.recent[n-1].Day < sinceDay {
				continue
			}
			u := ScoreUnit{ID: id, Model: st.model, Last: st.recent[n-1]}
			if n > 1 {
				u.Prev = st.recent[n-2]
				u.HasPrev = true
			}
			//ssdlint:allow maporder scoring order is irrelevant: Rank sorts by score with an ID tie-break before anything is emitted
			units = append(units, u)
		}
		sh.mu.RUnlock()
	}
	return units
}
