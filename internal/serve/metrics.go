package serve

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A minimal Prometheus text-format (version 0.0.4) metrics registry on
// the standard library: counters, gauges (incl. callback gauges),
// histograms, and a labeled counter family. Instrument updates are
// lock-free atomics; registration and scraping take the registry lock.
//
// Every family registers a collector that emits (series, value) samples;
// the text exposition and the Snapshot accessor are two renderings of
// the same sample stream, so a scrape and a programmatic snapshot can
// never disagree about what a counter reads.

// MetricsContentType is the Content-Type of the exposition format.
const MetricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a cumulative histogram with fixed upper bounds.
type Histogram struct {
	bounds []float64 // sorted upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// DurationBuckets is the default latency bucket layout, in seconds.
var DurationBuckets = []float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// emitFunc receives one sample: the full series name (metric name plus
// any label set or _bucket/_sum/_count suffix, exactly as exposed in the
// text format) and its current value.
type emitFunc func(series string, v float64)

// metric is one registered family.
type metric struct {
	name, help, typ string
	collect         func(emit emitFunc)
}

// Metrics is the registry handed to the scrape endpoint.
type Metrics struct {
	mu      sync.Mutex
	metrics []*metric
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

func (ms *Metrics) register(m *metric) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.metrics = append(ms.metrics, m)
}

// NewCounter registers and returns a counter.
func (ms *Metrics) NewCounter(name, help string) *Counter {
	c := &Counter{}
	ms.register(&metric{name: name, help: help, typ: "counter",
		collect: func(emit emitFunc) { emit(name, float64(c.Value())) }})
	return c
}

// NewCounterFunc registers a counter whose value is read at scrape
// time, for monotone counts maintained elsewhere (e.g. WAL fsyncs).
func (ms *Metrics) NewCounterFunc(name, help string, fn func() uint64) {
	ms.register(&metric{name: name, help: help, typ: "counter",
		collect: func(emit emitFunc) { emit(name, float64(fn())) }})
}

// NewGauge registers and returns a settable gauge.
func (ms *Metrics) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	ms.register(&metric{name: name, help: help, typ: "gauge",
		collect: func(emit emitFunc) { emit(name, g.Value()) }})
	return g
}

// NewGaugeFunc registers a gauge whose value is computed at scrape time.
func (ms *Metrics) NewGaugeFunc(name, help string, fn func() float64) {
	ms.register(&metric{name: name, help: help, typ: "gauge",
		collect: func(emit emitFunc) { emit(name, fn()) }})
}

// NewHistogram registers and returns a histogram with the given upper
// bounds (the +Inf bucket is implicit).
func (ms *Metrics) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	ms.register(&metric{name: name, help: help, typ: "histogram",
		collect: func(emit emitFunc) {
			var cum uint64
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				emit(fmt.Sprintf("%s_bucket{le=%q}", name, formatBound(b)), float64(cum))
			}
			emit(name+`_bucket{le="+Inf"}`, float64(h.Count()))
			emit(name+"_sum", h.Sum())
			emit(name+"_count", float64(h.Count()))
		}})
	return h
}

func formatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b), "0"), ".")
}

// CounterVec is a family of counters keyed by label values (e.g. HTTP
// handler and status code). Series are created lazily on first use and
// reported sorted by label set, so two scrapes of the same state are
// byte-identical regardless of which series happened to be touched
// first.
type CounterVec struct {
	labels []string
	mu     sync.Mutex
	series map[string]*Counter
}

// NewCounterVec registers and returns a labeled counter family.
func (ms *Metrics) NewCounterVec(name, help string, labels ...string) *CounterVec {
	cv := &CounterVec{labels: labels, series: make(map[string]*Counter)}
	ms.register(&metric{name: name, help: help, typ: "counter",
		collect: func(emit emitFunc) {
			cv.mu.Lock()
			defer cv.mu.Unlock()
			keys := make([]string, 0, len(cv.series))
			for key := range cv.series {
				keys = append(keys, key)
			}
			sort.Strings(keys)
			for _, key := range keys {
				emit(name+key, float64(cv.series[key].Value()))
			}
		}})
	return cv
}

// With returns the counter for the given label values, creating it on
// first use. The number of values must match the declared label names.
func (cv *CounterVec) With(values ...string) *Counter {
	if len(values) != len(cv.labels) {
		panic("serve: label value count mismatch")
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range cv.labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, l, escapeLabel(values[i]))
	}
	sb.WriteByte('}')
	key := sb.String()
	cv.mu.Lock()
	defer cv.mu.Unlock()
	c, ok := cv.series[key]
	if !ok {
		c = &Counter{}
		cv.series[key] = c
	}
	return c
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// snapshotLocked copies the family list under the registry lock.
func (ms *Metrics) families() []*metric {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return append([]*metric(nil), ms.metrics...)
}

// Snapshot returns the current value of every series, keyed by its full
// exposition name — including label sets and histogram suffixes, e.g.
//
//	ssdserved_ingest_records_total
//	ssdserved_load_shed_total{handler="ingest"}
//	ssdserved_http_request_duration_seconds_count
//
// It reads through the same collectors as the text exposition, so a
// snapshot and a scrape taken on a quiesced server agree exactly. Tests
// and conformance harnesses use it to check counters against externally
// driven load without parsing text.
func (ms *Metrics) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, m := range ms.families() {
		m.collect(func(series string, v float64) { out[series] = v })
	}
	return out
}

// formatValue renders a sample: integral values (counters, bucket
// counts) as plain decimal integers, everything else via the shortest
// round-trip float form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1<<53 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTo writes the exposition text for every registered family in
// registration order.
func (ms *Metrics) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	for _, m := range ms.families() {
		fmt.Fprintf(cw, "# HELP %s %s\n", m.name, m.help)
		fmt.Fprintf(cw, "# TYPE %s %s\n", m.name, m.typ)
		m.collect(func(series string, v float64) {
			fmt.Fprintf(cw, "%s %s\n", series, formatValue(v))
		})
	}
	err := cw.w.(*bufio.Writer).Flush()
	return cw.n, err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
