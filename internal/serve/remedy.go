package serve

import (
	"fmt"
	"net/http"

	"ssdfail/internal/remedy"
	"ssdfail/internal/sparepool"
)

// remedyPlane is the serve-side face of the remediation control plane:
// the policy engine, its spare pool, and the evaluation counter wired
// into /metrics. The engine itself owns no clock — each POST
// /v1/remedy/evaluate is one tick, so the cadence (a cron, an operator,
// ssdremedy -live) lives outside the daemon and replays are exact.
type remedyPlane struct {
	engine *remedy.Engine
	pool   *sparepool.Pool
}

// initRemedy builds the plane and registers its metrics when
// cfg.RemedyPolicy is set.
func (s *Server) initRemedy() error {
	if s.cfg.RemedyPolicy == nil {
		return nil
	}
	pool, err := sparepool.NewPool(s.cfg.RemedySpares)
	if err != nil {
		return fmt.Errorf("serve: remedy spare pool: %w", err)
	}
	engine, err := remedy.NewEngine(*s.cfg.RemedyPolicy, pool, remedy.NewEventLog(nil, s.cfg.RemedyLogCap))
	if err != nil {
		return fmt.Errorf("serve: remedy engine: %w", err)
	}
	s.remedy = &remedyPlane{engine: engine, pool: pool}

	m := s.metrics
	stat := func(name, help string, get func(remedy.Stats) uint64) {
		m.NewCounterFunc("ssdremedy_"+name, help,
			func() uint64 { return get(engine.Stats()) })
	}
	stat("evaluations_total", "Remediation evaluation passes (ticks).",
		func(st remedy.Stats) uint64 { return st.Evaluations })
	stat("cordons_total", "Drives cordoned after sustained breach.",
		func(st remedy.Stats) uint64 { return st.Cordons })
	stat("uncordons_total", "Cordoned drives released after sustained recovery.",
		func(st remedy.Stats) uint64 { return st.Uncordons })
	stat("drain_starts_total", "Drains admitted under the per-model rate limit.",
		func(st remedy.Stats) uint64 { return st.DrainStarts })
	stat("swaps_total", "Drives swapped onto spares.",
		func(st remedy.Stats) uint64 { return st.Swaps })
	stat("failures_total", "Ground-truth drive failures reported.",
		func(st remedy.Stats) uint64 { return st.Failures })
	stat("data_losses_total", "Failures of drives not yet swapped.",
		func(st remedy.Stats) uint64 { return st.DataLosses })
	stat("prevented_losses_total", "Failures of drives already swapped in time.",
		func(st remedy.Stats) uint64 { return st.PreventedLosses })
	stat("rate_limited_ticks_total", "Drain admissions deferred by the per-model cap.",
		func(st remedy.Stats) uint64 { return st.RateLimitedTicks })
	stat("pool_exhausted_ticks_total", "Swap attempts deferred by an empty spare pool.",
		func(st remedy.Stats) uint64 { return st.PoolExhaustedTicks })
	for st := remedy.StateHealthy; st <= remedy.StateFailed; st++ {
		st := st
		m.NewGaugeFunc("ssdremedy_drives_"+st.String(),
			fmt.Sprintf("Drives currently in remediation state %q.", st),
			func() float64 { return float64(engine.StateCounts()[st]) })
	}
	m.NewGaugeFunc("ssdremedy_spares_free",
		"Spares on hand in the pool.",
		func() float64 { return float64(pool.Stats().Free) })
	m.NewGaugeFunc("ssdremedy_spares_in_use",
		"Spares allocated to swapped drives.",
		func() float64 { return float64(pool.Stats().InUse) })
	return nil
}

// remedyEnabled answers 409 (mirroring /v1/snapshot without a WAL) when
// the control plane is not configured.
func (s *Server) remedyEnabled(w http.ResponseWriter) bool {
	if s.remedy == nil {
		writeError(w, http.StatusConflict, "remediation disabled: daemon runs without a remedy policy")
		return false
	}
	return true
}

// eventJSON is the wire shape of one remediation decision.
type eventJSON struct {
	Tick   uint64  `json:"tick"`
	Action string  `json:"action"`
	Drive  uint32  `json:"drive_id"`
	Model  string  `json:"model"`
	Score  float64 `json:"score"`
	Spare  int     `json:"spare,omitempty"`
	Cost   float64 `json:"cost,omitempty"`
}

func toEventJSON(evs []remedy.Event) []eventJSON {
	out := make([]eventJSON, len(evs))
	for i, ev := range evs {
		out[i] = eventJSON{Tick: ev.Tick, Action: string(ev.Action),
			Drive: ev.Drive, Model: ev.Model.String(), Score: ev.Score,
			Spare: ev.Spare, Cost: ev.Cost}
	}
	return out
}

// handleRemedyEvaluate runs one policy tick: a full-fleet scoring pass
// (under the same concurrency bound as the watchlist) feeds the engine,
// which cordons, drains, and swaps against the spare pool. The response
// carries the tick's decisions.
func (s *Server) handleRemedyEvaluate(w http.ResponseWriter, r *http.Request) {
	if !s.remedyEnabled(w) {
		return
	}
	pred, info, ok := s.registry.Current()
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	if !s.acquire(w, "remedy_evaluate", s.scoreSem) {
		return
	}
	defer func() { <-s.scoreSem }()
	begin := s.now()
	units := s.store.ScoreUnits(0)
	scored := s.scorer.Score(pred, units)
	s.scoreDur.Observe(s.now().Sub(begin).Seconds())
	s.scoredDrives.Add(uint64(len(scored)))
	if r.Context().Err() != nil {
		writeError(w, http.StatusServiceUnavailable, "request deadline exceeded during scoring")
		return
	}
	pass := make([]remedy.Score, len(scored))
	for i, sc := range scored {
		pass[i] = remedy.Score{DriveID: sc.ID, Model: sc.Model, Score: sc.Score}
	}
	events, err := s.remedy.engine.Evaluate(pass, nil)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"tick":          s.remedy.engine.Tick(),
		"model_version": info.Version,
		"fleet_size":    len(pass),
		"decisions":     toEventJSON(events),
	})
}

// handleRemedyStatus reports the engine's books: policy, tick, summary,
// per-model rate-limiter state, and the spare pool.
func (s *Server) handleRemedyStatus(w http.ResponseWriter, r *http.Request) {
	if !s.remedyEnabled(w) {
		return
	}
	engine := s.remedy.engine
	sum := engine.Summary()
	byModel := engine.ByModel()
	models := make([]map[string]any, len(byModel))
	for i, mc := range byModel {
		models[i] = map[string]any{
			"model":      mc.Model.String(),
			"registered": mc.Registered,
			"draining":   mc.Draining,
			"drain_cap":  mc.DrainCap,
		}
	}
	states := map[string]int{}
	for st := remedy.StateHealthy; st <= remedy.StateFailed; st++ {
		states[st.String()] = sum.ByState[st]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"tick":            engine.Tick(),
		"policy":          engine.Policy(),
		"states":          states,
		"by_model":        models,
		"stats":           sum.Stats,
		"premature_swaps": sum.PrematureSwaps,
		"total_cost":      sum.TotalCost,
		"do_nothing_cost": sum.DoNothingCost,
		"savings":         sum.Savings,
		"pool":            s.remedy.pool.Stats(),
	})
}

// handleRemedyDrives lists every drive's remediation state, sorted by
// drive ID.
func (s *Server) handleRemedyDrives(w http.ResponseWriter, r *http.Request) {
	if !s.remedyEnabled(w) {
		return
	}
	drives := s.remedy.engine.Drives()
	type driveJSON struct {
		DriveID         uint32  `json:"drive_id"`
		Model           string  `json:"model"`
		State           string  `json:"state"`
		Score           float64 `json:"score"`
		Breaches        int     `json:"breaches"`
		Clears          int     `json:"clears"`
		Spare           int     `json:"spare,omitempty"`
		FailedAfterSwap bool    `json:"failed_after_swap,omitempty"`
	}
	out := make([]driveJSON, len(drives))
	for i, d := range drives {
		out[i] = driveJSON{DriveID: d.ID, Model: d.Model.String(),
			State: d.State.String(), Score: d.Score,
			Breaches: d.Breaches, Clears: d.Clears,
			Spare: d.Spare, FailedAfterSwap: d.FailedAfterSwap}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":  len(out),
		"drives": out,
	})
}

// handleRemedyLog returns the most recent decisions from the in-memory
// ring, oldest first. ?n= bounds the count (0 or absent = everything
// retained).
func (s *Server) handleRemedyLog(w http.ResponseWriter, r *http.Request) {
	if !s.remedyEnabled(w) {
		return
	}
	n, err := queryInt(r, "n", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if n < 0 {
		writeError(w, http.StatusBadRequest, "bad n: must be non-negative")
		return
	}
	log := s.remedy.engine.Log()
	events := log.Recent(n)
	writeJSON(w, http.StatusOK, map[string]any{
		"total":  log.Total(),
		"count":  len(events),
		"events": toEventJSON(events),
	})
}

// remedyFailRequest is the body of POST /v1/remedy/fail: a ground-truth
// failure report for one drive.
type remedyFailRequest struct {
	DriveID uint32 `json:"drive_id"`
}

// handleRemedyFail records a ground-truth drive failure, closing the
// loop on cost accounting: a swapped drive's failure becomes a
// prevented loss, any other drive's a data loss.
func (s *Server) handleRemedyFail(w http.ResponseWriter, r *http.Request) {
	if !s.remedyEnabled(w) {
		return
	}
	var req remedyFailRequest
	if code, err := s.decodeJSON(w, r, &req); err != nil {
		writeError(w, code, err.Error())
		return
	}
	ev, err := s.remedy.engine.Fail(req.DriveID)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"event": toEventJSON([]remedy.Event{ev})[0],
	})
}
