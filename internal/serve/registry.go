package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ssdfail/internal/core"
	"ssdfail/internal/dataset"
)

// ModelInfo describes the currently served predictor.
type ModelInfo struct {
	Version      int       `json:"version"` // reload generation, 1 = startup load
	Path         string    `json:"path"`
	SHA256       string    `json:"sha256"`
	SizeBytes    int       `json:"size_bytes"`
	LoadedAt     time.Time `json:"loaded_at"`
	ModelName    string    `json:"model_name"`
	Lookahead    int       `json:"lookahead"`
	FeatureWidth int       `json:"feature_width"`
}

type modelEntry struct {
	pred *core.Predictor
	info ModelInfo
}

// Registry holds the live predictor behind an atomic pointer. Scoring
// paths grab the current entry once per request and keep using it even
// if a reload swaps in a newer model mid-flight; Load is serialized so
// concurrent reload requests cannot interleave version numbers.
type Registry struct {
	path string
	now  func() time.Time // LoadedAt stamps; tests inject a fixed clock
	mu   sync.Mutex       // serializes Load
	cur  atomic.Pointer[modelEntry]
}

// NewRegistry points a registry at a predictor file written by
// core.Predictor.Save. Nothing is loaded until Load is called. now
// stamps ModelInfo.LoadedAt; nil uses the wall clock, servers pass
// their injected clock so reload timestamps follow the same time
// source as everything else they report.
func NewRegistry(path string, now func() time.Time) *Registry {
	if now == nil {
		now = time.Now // binding the wall clock as the default seam
	}
	return &Registry{path: path, now: now}
}

// Load reads, validates, and atomically publishes the predictor file.
// On any error the previously published model keeps serving. The new
// model must report a feature width matching the serving pipeline's
// standard row layout — a width mismatch would panic at score time.
func (r *Registry) Load() (ModelInfo, error) {
	// Read, decode, and validate before taking the lock: the mutex only
	// serializes the version bump and publish, and a slow disk must not
	// stall a concurrent reload's error return.
	data, err := os.ReadFile(r.path)
	if err != nil {
		return ModelInfo{}, fmt.Errorf("serve: reading model: %w", err)
	}
	pred, err := core.DecodePredictor(data)
	if err != nil {
		return ModelInfo{}, fmt.Errorf("serve: decoding model: %w", err)
	}
	if w := pred.FeatureWidth(); w != dataset.NumFeatures {
		return ModelInfo{}, fmt.Errorf(
			"serve: model expects feature width %d, serving pipeline produces %d",
			w, dataset.NumFeatures)
	}
	sum := sha256.Sum256(data)
	r.mu.Lock()
	defer r.mu.Unlock()
	version := 1
	if old := r.cur.Load(); old != nil {
		version = old.info.Version + 1
	}
	info := ModelInfo{
		Version:      version,
		Path:         r.path,
		SHA256:       hex.EncodeToString(sum[:]),
		SizeBytes:    len(data),
		LoadedAt:     r.now(),
		ModelName:    pred.ModelName(),
		Lookahead:    pred.Lookahead,
		FeatureWidth: pred.FeatureWidth(),
	}
	r.cur.Store(&modelEntry{pred: pred, info: info})
	return info, nil
}

// Current returns the live predictor and its metadata, or ok=false when
// no model has been loaded yet.
func (r *Registry) Current() (*core.Predictor, ModelInfo, bool) {
	e := r.cur.Load()
	if e == nil {
		return nil, ModelInfo{}, false
	}
	return e.pred, e.info, true
}
