package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"testing"

	"ssdfail/internal/core"
	"ssdfail/internal/dataset"
	"ssdfail/internal/trace"
	"ssdfail/internal/wal"
)

// binFleetBatch builds a /v1/ingest/bin body holding, for every drive
// with at least offset+1 reports, the report offset steps back from its
// last one — the binary twin of fleetDay.
func binFleetBatch(offset int) (body []byte, count int) {
	var frames []byte
	for di := range fixFleet.Drives {
		d := &fixFleet.Drives[di]
		j := len(d.Days) - 1 - offset
		if j < 0 {
			continue
		}
		frames = AppendBinRecord(frames, d.ID, d.Model, &d.Days[j])
		count++
	}
	body = AppendBinHeader(make([]byte, 0, BinHeaderSize+len(frames)), count)
	return append(body, frames...), count
}

func postBin(t *testing.T, baseURL string, body []byte) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/ingest/bin", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("non-JSON reply (status %d): %q", resp.StatusCode, data)
	}
	return resp.StatusCode, m
}

func replyInt(t *testing.T, m map[string]any, key string) int {
	t.Helper()
	v, ok := m[key].(float64)
	if !ok {
		t.Fatalf("reply field %q missing or not a number: %v", key, m[key])
	}
	return int(v)
}

func TestBinaryIngestEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, nil)

	// Two consecutive fleet days, previous day first, like the JSON
	// round-trip test — but over the binary wire.
	for _, offset := range []int{1, 0} {
		body, n := binFleetBatch(offset)
		code, m := postBin(t, ts.URL, body)
		if code != http.StatusAccepted {
			t.Fatalf("offset %d: status %d: %v", offset, code, m)
		}
		if got := replyInt(t, m, "accepted"); got != n {
			t.Fatalf("offset %d: accepted %d of %d", offset, got, n)
		}
		if got := replyInt(t, m, "rejected"); got != 0 {
			t.Fatalf("offset %d: rejected %d, want 0", offset, got)
		}
		if m["errors"] != nil {
			t.Fatalf("offset %d: errors = %v, want null", offset, m["errors"])
		}
	}

	// The store must hold exactly what the wire carried.
	d := &fixFleet.Drives[0]
	snap, ok := s.store.Get(d.ID)
	if !ok {
		t.Fatalf("drive %d not in store after binary ingest", d.ID)
	}
	last := &d.Days[len(d.Days)-1]
	got := &snap.Recent[len(snap.Recent)-1]
	if got.Day != last.Day || got.Age != last.Age || got.GrownBadBlocks != last.GrownBadBlocks {
		t.Fatalf("drive %d: stored last record %+v, want %+v", d.ID, got, last)
	}
	if snap.Model != d.Model {
		t.Fatalf("drive %d: model %v, want %v", d.ID, snap.Model, d.Model)
	}

	// And the ingested drives must be scoreable over HTTP.
	resp := getJSON(t, fmt.Sprintf("%s/v1/drive/%d", ts.URL, d.ID), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/drive/%d: status %d", d.ID, resp.StatusCode)
	}

	// Replaying an already-applied day conflicts on every record: 422,
	// with the error list capped at 10.
	body, n := binFleetBatch(0)
	code, m := postBin(t, ts.URL, body)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("duplicate batch: status %d, want 422", code)
	}
	if got := replyInt(t, m, "rejected"); got != n {
		t.Fatalf("duplicate batch: rejected %d, want %d", got, n)
	}
	errs, ok := m["errors"].([]any)
	if !ok || len(errs) == 0 || len(errs) > 10 {
		t.Fatalf("duplicate batch: errors = %v, want 1..10 entries", m["errors"])
	}
}

func TestBinaryIngestRejectsBadBatches(t *testing.T) {
	valid, count := binFleetBatch(1)
	if count < 3 {
		t.Fatalf("fixture fleet too small: %d records", count)
	}
	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		f(b)
		return b
	}

	t.Run("transport-errors", func(t *testing.T) {
		_, ts := newTestServer(t, nil)
		cases := []struct {
			name string
			body []byte
			want int
		}{
			{"empty-body", nil, http.StatusBadRequest},
			{"short-header", valid[:BinHeaderSize-4], http.StatusBadRequest},
			{"bad-magic", mutate(func(b []byte) { b[0] = 'X' }), http.StatusBadRequest},
			{"bad-version", mutate(func(b []byte) {
				binary.LittleEndian.PutUint32(b[4:], 9)
			}), http.StatusBadRequest},
			{"count-overflow", mutate(func(b []byte) {
				binary.LittleEndian.PutUint32(b[8:], uint32(count)+1)
			}), http.StatusBadRequest},
			{"count-undercount", mutate(func(b []byte) {
				binary.LittleEndian.PutUint32(b[8:], uint32(count)-1)
			}), http.StatusBadRequest},
			{"truncated-tail", valid[:len(valid)-1], http.StatusBadRequest},
			// The frame's length prefix claims far more than one record;
			// NextFrame must refuse before trusting it.
			{"huge-length-prefix", mutate(func(b []byte) {
				binary.LittleEndian.PutUint32(b[BinHeaderSize:], 0xFFFFFF00)
			}), http.StatusBadRequest},
		}
		for _, tc := range cases {
			code, m := postBin(t, ts.URL, tc.body)
			if code != tc.want {
				t.Errorf("%s: status %d, want %d (%v)", tc.name, code, tc.want, m)
			}
			// None of these shapes may apply anything.
			if acc, ok := m["accepted"].(float64); ok && acc != 0 {
				t.Errorf("%s: accepted %v records from a rejected batch", tc.name, acc)
			}
		}
	})

	t.Run("crc-flip-mid-batch", func(t *testing.T) {
		_, ts := newTestServer(t, nil)
		// Corrupt the second frame's payload without fixing its CRC:
		// frame 0 lands, the rest of the body is untrusted.
		body := mutate(func(b []byte) {
			b[BinHeaderSize+BinFrameSize+trace.FrameOverhead+20] ^= 0xFF
		})
		code, m := postBin(t, ts.URL, body)
		if code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400: %v", code, m)
		}
		if got := replyInt(t, m, "accepted"); got != 1 {
			t.Errorf("accepted = %d, want 1 (frame before the corruption)", got)
		}
		if got := replyInt(t, m, "dropped"); got != count-1 {
			t.Errorf("dropped = %d, want %d", got, count-1)
		}
	})

	t.Run("non-canonical-flags", func(t *testing.T) {
		_, ts := newTestServer(t, nil)
		// Set a reserved flag bit and fix the CRC so the frame itself is
		// sound: the record must be rejected per-record (the journaled
		// bytes would otherwise differ from the canonical re-encoding).
		d := &fixFleet.Drives[0]
		frame := AppendBinRecord(nil, d.ID, d.Model, &d.Days[len(d.Days)-1])
		payload := frame[trace.FrameOverhead:]
		payload[BinRecordSize-1] |= 4
		binary.LittleEndian.PutUint32(frame[4:], trace.FrameCRC(payload))
		body := append(AppendBinHeader(nil, 1), frame...)
		code, m := postBin(t, ts.URL, body)
		if code != http.StatusUnprocessableEntity {
			t.Fatalf("status %d, want 422: %v", code, m)
		}
		if got := replyInt(t, m, "rejected"); got != 1 {
			t.Errorf("rejected = %d, want 1", got)
		}
		errs, ok := m["errors"].([]any)
		if !ok || len(errs) != 1 {
			t.Fatalf("errors = %v, want exactly one entry", m["errors"])
		}
	})

	t.Run("empty-batch", func(t *testing.T) {
		_, ts := newTestServer(t, nil)
		code, m := postBin(t, ts.URL, AppendBinHeader(nil, 0))
		if code != http.StatusAccepted {
			t.Fatalf("status %d, want 202: %v", code, m)
		}
		if got := replyInt(t, m, "accepted"); got != 0 {
			t.Errorf("accepted = %d, want 0", got)
		}
	})
}

// TestBinaryIngestSteadyStateAllocs pins the tentpole contract: once a
// drive's history ring is warm and the WAL buffer has reached its flush
// capacity, ingesting a binary batch — decode, validate, store commit,
// journal append, response render — allocates nothing, with and without
// a journal.
func TestBinaryIngestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector; alloc counts are only meaningful without -race")
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"store-only", nil},
		{"journaled", func(c *Config) {
			c.WALDir = t.TempDir()
			c.SnapshotEvery = -1 // snapshots copy the store; not the path under test
			c.WALSyncEvery = wal.SyncNever
			c.WALSyncInterval = -1
			c.WALSegmentBytes = 1 << 30 // rotation opens files; keep one segment
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{ModelPath: fixModelPath}
			if tc.mutate != nil {
				tc.mutate(&cfg)
			}
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { s.Close() })

			// A fixed 16-drive batch; each run advances every record one
			// day in place and re-stamps the frame CRCs, so every run is
			// a fresh, fully valid batch against the same body buffer.
			const n = 16
			model := fixFleet.Drives[0].Model
			var frames []byte
			for i := 0; i < n; i++ {
				rec := trace.DayRecord{
					Day: 1000, Age: 40,
					Reads: 5, Writes: 3, Erases: 1,
					CumReads: 500, CumWrites: 300, CumErases: 100,
					PECycles: 12.5, FactoryBadBlocks: 4, GrownBadBlocks: 2,
				}
				rec.Errors[0] = 1
				rec.CumErrors[0] = 9
				frames = AppendBinRecord(frames, uint32(1<<20+i), model, &rec)
			}
			body := append(AppendBinHeader(make([]byte, 0, BinHeaderSize+len(frames)), n), frames...)

			ctx := context.Background()
			var fail string
			run := func() {
				for i := 0; i < n; i++ {
					off := BinHeaderSize + i*BinFrameSize
					p := body[off+trace.FrameOverhead : off+BinFrameSize]
					// The store requires matching day/age deltas; bump both.
					binary.LittleEndian.PutUint32(p[5:], binary.LittleEndian.Uint32(p[5:])+1)
					binary.LittleEndian.PutUint32(p[9:], binary.LittleEndian.Uint32(p[9:])+1)
					binary.LittleEndian.PutUint32(body[off+4:], trace.FrameCRC(p))
				}
				st := s.acquireBinState()
				res := s.runBinBatch(ctx, body, st)
				if fail == "" && (res.code != http.StatusAccepted || res.accepted != n || res.rejected != 0) {
					fail = fmt.Sprintf("batch not cleanly accepted: code=%d accepted=%d rejected=%d resp=%s",
						res.code, res.accepted, res.rejected, st.resp)
				}
				s.releaseBinState(st)
			}

			// Warm until the history rings are full (shifts in place from
			// then on) and, when journaled, the WAL buffer has grown past
			// its flush threshold so appends reuse capacity.
			for i := 0; i < 32; i++ {
				run()
			}
			if fail != "" {
				t.Fatal(fail)
			}
			if a := testing.AllocsPerRun(100, run); a != 0 {
				t.Errorf("steady-state binary ingest: %.1f allocs/op, want 0", a)
			}
			if fail != "" {
				t.Fatal(fail)
			}
		})
	}
}

// TestPredictorFlatScoreGolden proves the serving predictor's three
// scoring entry points — allocating single-record, scratch-reusing, and
// the flattened matrix block path — bit-identical on the package's
// fixture model, and pins the two hot entry points to zero allocations.
func TestPredictorFlatScoreGolden(t *testing.T) {
	pred, err := core.LoadPredictor(fixModelPath)
	if err != nil {
		t.Fatal(err)
	}
	var m dataset.Matrix
	type pair struct{ r, prev *trace.DayRecord }
	var pairs []pair
	for di := range fixFleet.Drives {
		d := &fixFleet.Drives[di]
		if len(d.Days) < 2 {
			continue
		}
		p := pair{r: &d.Days[len(d.Days)-1], prev: &d.Days[len(d.Days)-2]}
		pairs = append(pairs, p)
		m.AppendFeatureRow(p.r, p.prev)
	}
	if len(pairs) == 0 {
		t.Fatal("fixture fleet has no drives with two reports")
	}
	out := make([]float64, len(pairs))
	pred.ScoreMatrix(&m, out)
	var scratch dataset.Matrix
	for i, p := range pairs {
		want := pred.ScoreRecord(p.r, p.prev)
		if got := pred.ScoreInto(&scratch, p.r, p.prev); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("drive %d: ScoreInto = %v, ScoreRecord = %v", i, got, want)
		}
		if math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Fatalf("drive %d: ScoreMatrix = %v, ScoreRecord = %v", i, out[i], want)
		}
	}

	p := pairs[0]
	var sink float64
	if a := testing.AllocsPerRun(100, func() { sink += pred.ScoreInto(&scratch, p.r, p.prev) }); a != 0 {
		t.Errorf("ScoreInto: %.1f allocs/op, want 0", a)
	}
	if a := testing.AllocsPerRun(50, func() { pred.ScoreMatrix(&m, out) }); a != 0 {
		t.Errorf("ScoreMatrix: %.1f allocs/op, want 0", a)
	}
	_ = sink
}

// FuzzDecodeIngestFrame throws arbitrary bodies at the full binary
// batch path of a journaled server. Invariants: no panic, the reply is
// always valid JSON, the accounting never exceeds the declared count,
// and only the four documented status codes come back.
func FuzzDecodeIngestFrame(f *testing.F) {
	s, err := New(Config{
		ModelPath:       fixModelPath,
		WALDir:          f.TempDir(),
		SnapshotEvery:   -1,
		WALSyncEvery:    wal.SyncNever,
		WALSyncInterval: -1,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { s.Close() })

	valid, _ := binFleetBatch(1)
	two := valid[:BinHeaderSize+2*BinFrameSize]
	two = append([]byte(nil), two...)
	binary.LittleEndian.PutUint32(two[8:], 2)
	f.Add(append([]byte(nil), two...))
	f.Add([]byte{})
	f.Add(two[:BinHeaderSize])
	f.Add(two[:len(two)-3])
	for _, i := range []int{0, 5, 9, BinHeaderSize, BinHeaderSize + 6, len(two) - 1} {
		mut := append([]byte(nil), two...)
		mut[i] ^= 0x40
		f.Add(mut)
	}
	huge := append([]byte(nil), two...)
	binary.LittleEndian.PutUint32(huge[BinHeaderSize:], 0xFFFFFFF0)
	f.Add(huge)
	over := append([]byte(nil), two...)
	binary.LittleEndian.PutUint32(over[8:], math.MaxUint32)
	f.Add(over)
	flags := append([]byte(nil), two...)
	flags[BinHeaderSize+BinFrameSize-1] |= 0x80
	binary.LittleEndian.PutUint32(flags[BinHeaderSize+4:],
		trace.FrameCRC(flags[BinHeaderSize+trace.FrameOverhead:BinHeaderSize+BinFrameSize]))
	f.Add(flags)

	f.Fuzz(func(t *testing.T, data []byte) {
		st := s.acquireBinState()
		defer s.releaseBinState(st)
		res := s.runBinBatch(context.Background(), data, st)
		if !json.Valid(st.resp) {
			t.Fatalf("reply is not valid JSON: %q", st.resp)
		}
		if res.accepted < 0 || res.rejected < 0 || res.dropped < 0 {
			t.Fatalf("negative accounting: %+v", res)
		}
		if count, _, err := ParseBinHeader(data); err == nil {
			if res.accepted+res.rejected+res.dropped > count {
				t.Fatalf("accounting %d+%d+%d exceeds declared count %d",
					res.accepted, res.rejected, res.dropped, count)
			}
		}
		switch res.code {
		case http.StatusAccepted, http.StatusBadRequest,
			http.StatusUnprocessableEntity, http.StatusServiceUnavailable:
		default:
			t.Fatalf("unexpected status %d", res.code)
		}
	})
}
