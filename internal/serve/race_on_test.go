//go:build race

package serve

// raceEnabled reports whether this test binary was built with the race
// detector. Allocation-count assertions are skipped under race:
// sync.Pool deliberately drops items at random in race mode, so the
// pooled ingest path shows spurious allocations there.
const raceEnabled = true
