package serve

// BenchmarkIngestWire drives full HTTP-handler ingest — routing,
// instrumentation, body read, decode, store commit, response render —
// over both wire formats at 1 and 4 concurrent workers, and (when
// SSDFAIL_INGEST_REPORT names a report file) merges an "ingest" section
// with ingest_throughput and allocs_per_op series into it, so CI's
// BENCH_serve.json carries the JSON-vs-binary comparison next to the
// load-conformance latency quantiles.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"ssdfail/internal/trace"
)

const benchBatchRecords = 16

// benchResults accumulates one row per wire/workers configuration; the
// final (longest) run of each sub-benchmark overwrites earlier probes.
var (
	benchResults = map[string]map[string]any{}
	benchOrder   = []string{"json/1", "json/4", "binary/1", "binary/4"}
)

// benchWriter is a ResponseWriter that discards the body; the recorder
// equivalent allocates a fresh buffer per request, which would drown
// the path under test.
type benchWriter struct {
	h    http.Header
	code int
}

func (w *benchWriter) Header() http.Header         { return w.h }
func (w *benchWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *benchWriter) WriteHeader(c int)           { w.code = c }

// benchLane is one worker's private request state: a disjoint set of
// drive IDs, a reusable body advanced one day per iteration, and a
// pre-built request whose reader is rewound instead of reallocated.
type benchLane struct {
	body []byte
	rd   *bytes.Reader
	req  *http.Request
	w    *benchWriter
	step func()
}

// putU8Digits writes v as exactly eight ASCII digits. Day and age in
// the JSON lane bodies start at 10,000,000 so the width never changes
// and the patch is an in-place overwrite.
func putU8Digits(b []byte, v uint32) {
	for i := 7; i >= 0; i-- {
		b[i] = '0' + byte(v%10)
		v /= 10
	}
}

const benchDayBase = 10_000_000

// newJSONLane builds a 16-record JSON batch for worker w and a step
// function that advances every record's day and age by one, patching
// the fixed-width digits in place.
func newJSONLane(w int) *benchLane {
	recs := make([]IngestRecord, benchBatchRecords)
	for i := range recs {
		recs[i] = IngestRecord{
			DriveID: uint32(3<<20 + w*1024 + i),
			Model:   "MLC-A",
			Day:     benchDayBase, Age: benchDayBase,
			Reads: 5, Writes: 3, Erases: 1,
			CumReads: 500, CumWrites: 300, CumErases: 100,
			PECycles: 12.5, FactoryBadBlocks: 4, GrownBadBlocks: 2,
		}
	}
	body, err := json.Marshal(recs)
	if err != nil {
		panic(err)
	}
	var dayOffs, ageOffs []int
	for pos := 0; ; {
		i := bytes.Index(body[pos:], []byte(`"day":`))
		if i < 0 {
			break
		}
		dayOffs = append(dayOffs, pos+i+len(`"day":`))
		pos += i + 1
	}
	for pos := 0; ; {
		i := bytes.Index(body[pos:], []byte(`"age":`))
		if i < 0 {
			break
		}
		ageOffs = append(ageOffs, pos+i+len(`"age":`))
		pos += i + 1
	}
	if len(dayOffs) != benchBatchRecords || len(ageOffs) != benchBatchRecords {
		panic("unexpected JSON layout")
	}
	day := uint32(benchDayBase)
	l := laneRequest(body, "/v1/ingest/batch", "application/json")
	l.step = func() {
		day++
		for _, off := range dayOffs {
			putU8Digits(l.body[off:], day)
		}
		for _, off := range ageOffs {
			putU8Digits(l.body[off:], day)
		}
	}
	return l
}

// newBinaryLane builds the same logical batch on the binary wire; the
// step function bumps day and age inside each frame payload and
// re-stamps the frame CRC.
func newBinaryLane(w int) *benchLane {
	var frames []byte
	for i := 0; i < benchBatchRecords; i++ {
		rec := trace.DayRecord{
			Day: benchDayBase, Age: benchDayBase,
			Reads: 5, Writes: 3, Erases: 1,
			CumReads: 500, CumWrites: 300, CumErases: 100,
			PECycles: 12.5, FactoryBadBlocks: 4, GrownBadBlocks: 2,
		}
		frames = AppendBinRecord(frames, uint32(3<<20+w*1024+i), trace.MLCA, &rec)
	}
	body := append(AppendBinHeader(make([]byte, 0, BinHeaderSize+len(frames)), benchBatchRecords), frames...)
	l := laneRequest(body, "/v1/ingest/bin", "application/octet-stream")
	l.step = func() {
		for i := 0; i < benchBatchRecords; i++ {
			off := BinHeaderSize + i*BinFrameSize
			p := l.body[off+trace.FrameOverhead : off+BinFrameSize]
			binary.LittleEndian.PutUint32(p[5:], binary.LittleEndian.Uint32(p[5:])+1)
			binary.LittleEndian.PutUint32(p[9:], binary.LittleEndian.Uint32(p[9:])+1)
			binary.LittleEndian.PutUint32(l.body[off+4:], trace.FrameCRC(p))
		}
	}
	return l
}

func laneRequest(body []byte, path, contentType string) *benchLane {
	rd := bytes.NewReader(body)
	req := httptest.NewRequest(http.MethodPost, path, rd)
	req.Header.Set("Content-Type", contentType)
	return &benchLane{
		body: body,
		rd:   rd,
		req:  req,
		w:    &benchWriter{h: make(http.Header, 4)},
	}
}

func BenchmarkIngestWire(b *testing.B) {
	for _, wire := range []string{"json", "binary"} {
		for _, workers := range []int{1, 4} {
			key := fmt.Sprintf("%s/%d", wire, workers)
			b.Run(fmt.Sprintf("wire=%s/workers=%d", wire, workers), func(b *testing.B) {
				s, err := New(Config{ModelPath: fixModelPath})
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				h := s.Handler()
				lanes := make([]*benchLane, workers)
				for w := range lanes {
					if wire == "json" {
						lanes[w] = newJSONLane(w)
					} else {
						lanes[w] = newBinaryLane(w)
					}
				}
				serveOne := func(l *benchLane) {
					l.step()
					l.rd.Reset(l.body)
					l.w.code = 0
					h.ServeHTTP(l.w, l.req)
					if l.w.code != http.StatusAccepted {
						panic(fmt.Sprintf("%s: status %d", key, l.w.code))
					}
				}
				// Warm the history rings and pools so the measured region
				// is the steady state.
				for _, l := range lanes {
					for i := 0; i < 32; i++ {
						serveOne(l)
					}
				}
				iters := make([]int, workers)
				for i := 0; i < b.N; i++ {
					iters[i%workers]++
				}
				var ms0, ms1 runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&ms0)
				b.ReportAllocs()
				b.ResetTimer()
				start := time.Now()
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						l := lanes[w]
						for i := 0; i < iters[w]; i++ {
							serveOne(l)
						}
					}(w)
				}
				wg.Wait()
				elapsed := time.Since(start)
				b.StopTimer()
				runtime.ReadMemStats(&ms1)

				rps := float64(b.N*benchBatchRecords) / elapsed.Seconds()
				allocs := float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N)
				b.ReportMetric(rps, "rec/s")
				benchResults[key] = map[string]any{
					"wire":                  wire,
					"workers":               workers,
					"ingest_throughput_rps": rps,
					"allocs_per_op":         allocs,
				}
			})
		}
	}
	writeIngestBenchReport(b)
}

// BenchmarkBinBatchProcess isolates the zero-allocation core — decode,
// validate, commit, render — without the HTTP layer, on the store-only
// configuration. This is the 0 B/op line the alloc tests pin.
func BenchmarkBinBatchProcess(b *testing.B) {
	s, err := New(Config{ModelPath: fixModelPath})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	l := newBinaryLane(0)
	ctx := b.Context()
	run := func() {
		l.step()
		st := s.acquireBinState()
		res := s.runBinBatch(ctx, l.body, st)
		if res.code != http.StatusAccepted {
			panic(fmt.Sprintf("status %d: %s", res.code, st.resp))
		}
		s.releaseBinState(st)
	}
	for i := 0; i < 32; i++ {
		run()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// writeIngestBenchReport merges the collected series into the JSON
// report named by SSDFAIL_INGEST_REPORT (read-modify-write, so the
// ssdload conformance report written earlier in the CI job survives).
func writeIngestBenchReport(b *testing.B) {
	path := os.Getenv("SSDFAIL_INGEST_REPORT")
	if path == "" {
		return
	}
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			b.Fatalf("existing report %s is not JSON: %v", path, err)
		}
	}
	series := make([]map[string]any, 0, len(benchOrder))
	for _, key := range benchOrder {
		if row, ok := benchResults[key]; ok {
			series = append(series, row)
		}
	}
	ingest := map[string]any{
		"batch_records": benchBatchRecords,
		"series":        series,
	}
	if j, ok := benchResults["json/1"]; ok {
		if bin, ok := benchResults["binary/1"]; ok {
			ingest["binary_speedup_workers1"] =
				bin["ingest_throughput_rps"].(float64) / j["ingest_throughput_rps"].(float64)
		}
	}
	doc["ingest"] = ingest
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatalf("encoding ingest report: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatalf("writing ingest report: %v", err)
	}
}
