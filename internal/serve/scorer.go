package serve

import (
	"sort"
	"sync"

	"ssdfail/internal/core"
	"ssdfail/internal/dataset"
	"ssdfail/internal/parallel"
	"ssdfail/internal/trace"
)

// Scored is one drive's score from a fleet scoring pass.
type Scored struct {
	ID    uint32      `json:"drive_id"`
	Model trace.Model `json:"-"`
	Score float64     `json:"score"`
	Day   int32       `json:"day"`
	Age   int32       `json:"age"`
}

// Scorer scores fleet snapshots across a fixed number of workers using
// the repo's chunked parallel-for. Units are featurized into pooled
// per-block matrices and scored through the predictor's matrix path
// (flattened forest traversal over feature blocks), so a full-fleet
// pass allocates per block-in-flight, not per drive.
type Scorer struct {
	workers int
	scratch sync.Pool // *scoreScratch

	// observe, when set (tests only, same package), is called for every
	// unit scored with the predictor actually used. The hot-swap
	// concurrency test uses it to prove that no batch ever mixes two
	// models: within one Score call every unit must report the same
	// predictor pointer, no matter how many reloads land mid-batch.
	observe func(p *core.Predictor, unit int)
}

// scoreScratch is the pooled per-block working set: one feature matrix
// holding up to scoreBlockRows rows and the score vector it fills.
type scoreScratch struct {
	m   dataset.Matrix
	out []float64
}

// scoreBlockRows is how many drives one worker featurizes and scores at
// a time. Big enough that the flattened forest amortizes its per-tree
// loop across a cache-resident block, small enough to keep every worker
// busy on mid-sized fleets.
const scoreBlockRows = 256

// NewScorer builds a scorer with the given worker count (<= 0 means all
// CPUs, resolved at score time by internal/parallel).
func NewScorer(workers int) *Scorer {
	return &Scorer{scratch: sync.Pool{New: func() any { return &scoreScratch{} }}, workers: workers}
}

// Workers returns the configured worker count (0 = all CPUs).
func (sc *Scorer) Workers() int { return sc.workers }

// Score scores every unit with the given predictor. Output slot i
// corresponds to units[i], so results are deterministic at any worker
// count.
func (sc *Scorer) Score(p *core.Predictor, units []ScoreUnit) []Scored {
	out := make([]Scored, len(units))
	blocks := (len(units) + scoreBlockRows - 1) / scoreBlockRows
	parallel.For(sc.workers, blocks, func(bi int) {
		lo := bi * scoreBlockRows
		hi := min(lo+scoreBlockRows, len(units))
		s := sc.scratch.Get().(*scoreScratch)
		s.m.Reset()
		for i := lo; i < hi; i++ {
			u := &units[i]
			var prev *trace.DayRecord
			if u.HasPrev {
				prev = &u.Prev
			}
			s.m.AppendFeatureRow(&u.Last, prev)
		}
		if cap(s.out) < hi-lo {
			s.out = make([]float64, hi-lo)
		}
		s.out = s.out[:hi-lo]
		p.ScoreMatrix(&s.m, s.out)
		for i := lo; i < hi; i++ {
			u := &units[i]
			if sc.observe != nil {
				sc.observe(p, i)
			}
			out[i] = Scored{ID: u.ID, Model: u.Model, Score: s.out[i-lo], Day: u.Last.Day, Age: u.Last.Age}
		}
		sc.scratch.Put(s)
	})
	return out
}

// Rank sorts scores descending (ties broken by drive ID for stable
// output), drops entries below threshold, and truncates to the top k
// (k <= 0 keeps all). It reorders items in place and returns the
// ranked prefix.
func Rank(items []Scored, threshold float64, k int) []Scored {
	sort.Slice(items, func(a, b int) bool {
		if items[a].Score != items[b].Score {
			return items[a].Score > items[b].Score
		}
		return items[a].ID < items[b].ID
	})
	cut := len(items)
	for cut > 0 && items[cut-1].Score < threshold {
		cut--
	}
	items = items[:cut]
	if k > 0 && len(items) > k {
		items = items[:k]
	}
	return items
}
